// Kernel-layer microbenchmark: GFLOP/s of the blocked/packed GEMM backend
// vs the scalar naive reference, for all three access patterns (A·B, A·Bᵀ,
// Aᵀ·B) over square and skewed shapes. Prints a table and writes
// BENCH_kernels.json next to the working directory.
//
// Usage: bench_kernels [--threads N] [--out PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "nn/kernels/kernels.h"
#include "obs/timer.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace bigcity {
namespace {

using KernelFn = void (*)(const float*, const float*, float*, int64_t,
                          int64_t, int64_t, bool);

struct Shape {
  int64_t n, k, m;
};

struct Result {
  std::string pattern;
  Shape shape;
  double naive_gflops = 0;
  double blocked_gflops = 0;
};

/// Times one kernel on one shape; returns GFLOP/s (2*N*K*M flops/run).
/// Repeats until ~80 ms have elapsed so small shapes are not noise.
double MeasureGflops(KernelFn fn, const Shape& s, const std::vector<float>& a,
                     const std::vector<float>& b, std::vector<float>* c) {
  const double flops = 2.0 * static_cast<double>(s.n) *
                       static_cast<double>(s.k) * static_cast<double>(s.m);
  fn(a.data(), b.data(), c->data(), s.n, s.k, s.m, false);  // Warm-up.
  int runs = 0;
  obs::WallTimer watch;
  do {
    fn(a.data(), b.data(), c->data(), s.n, s.k, s.m, false);
    ++runs;
  } while (watch.ElapsedSeconds() < 0.08);
  return flops * runs / watch.ElapsedSeconds() / 1e9;
}

Result MeasurePattern(const std::string& pattern, KernelFn naive,
                      KernelFn blocked, const Shape& s, util::Rng* rng) {
  // Operand sizes per pattern: AB a[n,k] b[k,m]; ABt a[n,k] b[m,k];
  // AtB a[n,k] b[n,m] -> c[k,m]. Allocate the max so one buffer set serves.
  const size_t a_size = static_cast<size_t>(s.n * s.k);
  const size_t b_size =
      static_cast<size_t>(pattern == "AtB" ? s.n * s.m : s.k * s.m);
  const size_t c_size =
      static_cast<size_t>(pattern == "AtB" ? s.k * s.m : s.n * s.m);
  std::vector<float> a(a_size), b(b_size), c(c_size);
  for (auto& v : a) v = rng->Uniform() - 0.5f;
  for (auto& v : b) v = rng->Uniform() - 0.5f;
  Result r;
  r.pattern = pattern;
  r.shape = s;
  r.naive_gflops = MeasureGflops(naive, s, a, b, &c);
  r.blocked_gflops = MeasureGflops(blocked, s, a, b, &c);
  return r;
}

void WriteJson(const std::string& path, const std::vector<Result>& results,
               int threads) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"threads\": %d,\n  \"results\": [\n", threads);
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"pattern\": \"%s\", \"n\": %lld, \"k\": %lld, \"m\": %lld, "
        "\"naive_gflops\": %.3f, \"blocked_gflops\": %.3f, "
        "\"speedup\": %.2f}%s\n",
        r.pattern.c_str(), static_cast<long long>(r.shape.n),
        static_cast<long long>(r.shape.k), static_cast<long long>(r.shape.m),
        r.naive_gflops, r.blocked_gflops, r.blocked_gflops / r.naive_gflops,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace bigcity

int main(int argc, char** argv) {
  using namespace bigcity;  // NOLINT — bench brevity.
  std::string out = "BENCH_kernels.json";
  int threads = nn::kernels::NumThreads();
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      threads = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out = argv[i + 1];
    } else {
      std::fprintf(stderr,
                   "usage: bench_kernels [--threads N] [--out PATH]\n");
      return 2;
    }
  }
  nn::kernels::SetNumThreads(threads);
  threads = nn::kernels::NumThreads();
  std::printf("Kernel-layer GEMM benchmark (%d thread%s).\n", threads,
              threads == 1 ? "" : "s");

  const std::vector<Shape> shapes = {
      {64, 64, 64},   {128, 128, 128}, {256, 256, 256},
      {192, 48, 768}, {768, 48, 192},  {37, 111, 59},
  };
  util::Rng rng(17);
  std::vector<Result> results;
  for (const Shape& s : shapes) {
    results.push_back(MeasurePattern("AB", nn::kernels::GemmABNaive,
                                     nn::kernels::GemmABBlocked, s, &rng));
    results.push_back(MeasurePattern("ABt", nn::kernels::GemmABtNaive,
                                     nn::kernels::GemmABtBlocked, s, &rng));
    results.push_back(MeasurePattern("AtB", nn::kernels::GemmAtBNaive,
                                     nn::kernels::GemmAtBBlocked, s, &rng));
  }

  util::TablePrinter table(
      {"Pattern", "N", "K", "M", "Naive GF/s", "Blocked GF/s", "Speedup"});
  for (const Result& r : results) {
    table.AddRow({r.pattern, std::to_string(r.shape.n),
                  std::to_string(r.shape.k), std::to_string(r.shape.m),
                  util::TablePrinter::Num(r.naive_gflops, 2),
                  util::TablePrinter::Num(r.blocked_gflops, 2),
                  util::TablePrinter::Num(
                      r.blocked_gflops / r.naive_gflops, 2)});
  }
  table.Print();
  WriteJson(out, results, threads);
  return 0;
}
