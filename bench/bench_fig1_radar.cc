// Reproduces Fig. 1: the performance radar of BIGCity across the eight ST
// tasks, against a strong task-specific baseline per task (START for
// trajectory tasks, RNTrajRec for recovery, SSTBAN for traffic tasks).
// Values are normalized so the task-specific baseline = 1.00; bars > 1.00
// mean BIGCity wins on that axis.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/recovery/seq2seq_recovery.h"
#include "baselines/traffic/norm_attn_models.h"
#include "baselines/traffic/traffic_harness.h"
#include "baselines/traj/start_encoder.h"
#include "baselines/traj/traj_harness.h"
#include "bench/common.h"
#include "data/masking.h"
#include "nn/ops.h"
#include "train/metrics.h"

namespace bigcity {
namespace {

struct Axis {
  std::string task;
  double ours;      // Higher-is-better score for BIGCity.
  double baseline;  // Same for the task-specific baseline.
};

void PrintRadar(const std::vector<Axis>& axes) {
  std::printf("\n%-10s %10s %10s %8s  %s\n", "Task", "Baseline", "BIGCity",
              "Ratio", "BIGCity vs baseline (#=0.1)");
  for (const auto& axis : axes) {
    const double ratio =
        axis.baseline > 0 ? axis.ours / axis.baseline : 0.0;
    const int bars = std::clamp(static_cast<int>(ratio * 10.0 + 0.5), 0, 30);
    std::printf("%-10s %10.3f %10.3f %8.2f  %s%s\n", axis.task.c_str(),
                axis.baseline, axis.ours, ratio,
                std::string(static_cast<size_t>(bars), '#').c_str(),
                ratio >= 1.0 ? "  <= wins" : "");
  }
}

}  // namespace
}  // namespace bigcity

int main() {
  using namespace bigcity;  // NOLINT — bench brevity.
  std::printf("Fig. 1 reproduction: per-task radar (XA). Error metrics are "
              "inverted (1/MAE, 1/MAPE) so larger = better on every "
              "axis.\n");
  data::CityDataset dataset(bench::BenchCity("XA"));
  std::vector<Axis> axes;

  // BIGCity: one cached co-trained model for all eight tasks.
  auto model = bench::TrainedBigCity(&dataset, core::BigCityConfig{},
                                     bench::BenchTrainConfig(), "bigcity_XA");
  train::Evaluator evaluator(model.get(), bench::BenchEvalConfig());
  const auto ours_tte = evaluator.EvaluateTravelTime();
  const auto ours_clas = evaluator.EvaluateUserClassification();
  const auto ours_next = evaluator.EvaluateNextHop();
  const auto ours_simi = evaluator.EvaluateSimilarity();
  const auto ours_reco = evaluator.EvaluateRecovery(0.85);
  const auto ours_one = evaluator.EvaluateTrafficPrediction(1);
  const auto ours_multi = evaluator.EvaluateTrafficPrediction(6);
  const auto ours_tsi = evaluator.EvaluateTrafficImputation(0.25);

  {  // START for the four non-generative trajectory tasks.
    util::Rng rng(21);
    baselines::StartEncoder start(&dataset, 32, &rng);
    baselines::TrajHarnessConfig config;
    config.pretrain_epochs = 2;
    config.task_epochs = 2;
    config.max_train_samples = 150;
    config.eval = bench::BenchEvalConfig();
    baselines::TrajTaskHarness harness(&start, config);
    harness.Pretrain();
    axes.push_back({"TTE", 1.0 / std::max(0.01, ours_tte.mae),
                    1.0 / std::max(0.01, harness.TrainAndEvalTravelTime().mae)});
    axes.push_back({"CLAS", ours_clas.macro_f1,
                    harness.TrainAndEvalUserClassification().macro_f1});
    axes.push_back({"Next", ours_next.accuracy,
                    harness.TrainAndEvalNextHop().accuracy});
    axes.push_back(
        {"Simi", ours_simi.hr10, harness.EvalSimilarity().hr10});
  }
  {  // RNTrajRec for recovery (85% mask).
    util::Rng rng(22);
    baselines::RnTrajRec recoverer(&dataset, 32, &rng);
    std::vector<data::Trajectory> corpus;
    for (const auto& trip : dataset.train()) {
      if (trip.length() >= 8) corpus.push_back(trip);
      if (corpus.size() >= 120) break;
    }
    recoverer.Train(corpus, 0.85);
    util::Rng mask_rng(23);
    std::vector<int> predictions, targets;
    int used = 0;
    for (const auto& trip : dataset.test()) {
      if (trip.length() < 10 || ++used > 50) continue;
      auto kept = data::DownsampleKeepIndices(trip.length(), 0.85, &mask_rng);
      auto dropped = data::ComplementIndices(trip.length(), kept);
      if (dropped.empty()) continue;
      auto predicted = recoverer.Recover(trip, kept);
      for (size_t k = 0; k < dropped.size(); ++k) {
        predictions.push_back(predicted[k]);
        targets.push_back(
            trip.points[static_cast<size_t>(dropped[k])].segment);
      }
    }
    const double baseline_acc =
        predictions.empty() ? 0.0 : train::Accuracy(predictions, targets);
    axes.push_back({"Reco", ours_reco.accuracy, baseline_acc});
  }
  {  // SSTBAN for the three traffic tasks.
    baselines::TrafficHarnessConfig config;
    config.epochs = 6;
    config.train_samples = 60;
    config.eval_samples = 40;
    baselines::TrafficTaskHarness harness(&dataset, config);
    util::Rng rng(24);
    baselines::Sstban one(&dataset, config.window, data::kTrafficChannels,
                          data::kTrafficChannels, 32, &rng);
    axes.push_back({"O-Step", 1.0 / std::max(0.01, ours_one.mae),
                    1.0 / std::max(0.01, harness.TrainAndEvalPrediction(
                                             &one, 1).mae)});
    baselines::Sstban multi(&dataset, config.window, data::kTrafficChannels,
                            6 * data::kTrafficChannels, 32, &rng);
    axes.push_back({"M-Step", 1.0 / std::max(0.01, ours_multi.mae),
                    1.0 / std::max(0.01, harness.TrainAndEvalPrediction(
                                             &multi, 6).mae)});
    baselines::Sstban impute(&dataset, config.window,
                             data::kTrafficChannels + 1,
                             config.window * data::kTrafficChannels, 32,
                             &rng);
    axes.push_back({"TSI", 1.0 / std::max(0.01, ours_tsi.mae),
                    1.0 / std::max(0.01, harness.TrainAndEvalImputation(
                                             &impute, 0.25).mae)});
  }

  // Normalize so each baseline axis = 1.0.
  for (auto& axis : axes) {
    if (axis.baseline > 0) {
      axis.ours /= axis.baseline;
      axis.baseline = 1.0;
    }
  }
  PrintRadar(axes);
  return 0;
}
