// Reproduces Fig. 6: efficiency and scalability.
//   (a) inference time to embed N trajectories (BIGCity vs an RNN baseline
//       vs a self-attention baseline) — BIGCity scales linearly;
//   (b) average per-query search time as the database grows — embedding
//       search is near-constant per query while classic DP measures
//       (DTW/LCSS/Frechet/EDR) grow with database size;
//   (c) mean rank of the ground truth as data size grows — BIGCity stays
//       robust while classic measures degrade.
// Per-item kernels are measured with google-benchmark; the sweeps print
// paper-style series tables.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "baselines/similarity/classic_similarity.h"
#include "baselines/traj/rnn_encoders.h"
#include "baselines/traj/start_encoder.h"
#include "bench/common.h"
#include "nn/ops.h"
#include "obs/timer.h"
#include "util/table_printer.h"

namespace bigcity {
namespace {

struct Pools {
  data::CityDataset* dataset = nullptr;
  core::BigCityModel* model = nullptr;
  baselines::Trajectory2Vec* rnn = nullptr;
  baselines::StartEncoder* attn = nullptr;
  std::vector<data::Trajectory> queries, database;  // Odd/even halves.
};

Pools* g_pools = nullptr;

data::Trajectory EveryOther(const data::Trajectory& trip, int parity) {
  data::Trajectory result;
  result.user_id = trip.user_id;
  for (int l = parity; l < trip.length(); l += 2) {
    result.points.push_back(trip.points[static_cast<size_t>(l)]);
  }
  return result;
}

double Cosine(const nn::Tensor& a, const nn::Tensor& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    dot += static_cast<double>(a.data()[i]) * b.data()[i];
    na += static_cast<double>(a.data()[i]) * a.data()[i];
    nb += static_cast<double>(b.data()[i]) * b.data()[i];
  }
  return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
}

// --- google-benchmark kernels: per-trajectory costs -------------------------

void BM_BigCityEmbed(benchmark::State& state) {
  const auto& trip = g_pools->queries[0];
  for (auto _ : state) {
    g_pools->model->BeginStep();
    benchmark::DoNotOptimize(g_pools->model->Embed(trip));
  }
}
BENCHMARK(BM_BigCityEmbed);

void BM_RnnEmbed(benchmark::State& state) {
  const auto& trip = g_pools->queries[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_pools->rnn->Embed(trip));
  }
}
BENCHMARK(BM_RnnEmbed);

void BM_SelfAttnEmbed(benchmark::State& state) {
  const auto& trip = g_pools->queries[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_pools->attn->Embed(trip));
  }
}
BENCHMARK(BM_SelfAttnEmbed);

void BM_DtwPair(benchmark::State& state) {
  auto a = baselines::ToPointSequence(g_pools->dataset->network(),
                                      g_pools->queries[0]);
  auto b = baselines::ToPointSequence(g_pools->dataset->network(),
                                      g_pools->database[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::DtwDistance(a, b));
  }
}
BENCHMARK(BM_DtwPair);

// --- Sweeps ------------------------------------------------------------------

/// (a) Representation-generation time vs number of samples.
void SweepInference() {
  util::TablePrinter table({"#samples", "BIGCity (s)", "RNN (s)",
                            "Self-Attn (s)"});
  for (int n : {100, 200, 400}) {
    obs::WallTimer watch;
    for (int i = 0; i < n; ++i) {
      g_pools->model->BeginStep();
      g_pools->model
          ->Embed(g_pools->queries[static_cast<size_t>(i) %
                                   g_pools->queries.size()])
          .data();
    }
    const double ours = watch.ElapsedSeconds();
    watch.Restart();
    for (int i = 0; i < n; ++i) {
      g_pools->rnn
          ->Embed(g_pools->queries[static_cast<size_t>(i) %
                                   g_pools->queries.size()])
          .data();
    }
    const double rnn = watch.ElapsedSeconds();
    watch.Restart();
    for (int i = 0; i < n; ++i) {
      g_pools->attn
          ->Embed(g_pools->queries[static_cast<size_t>(i) %
                                   g_pools->queries.size()])
          .data();
    }
    const double attn = watch.ElapsedSeconds();
    table.AddRow({std::to_string(n), bench::Fmt(ours, 2),
                  bench::Fmt(rnn, 2), bench::Fmt(attn, 2)});
  }
  std::printf("\n(a) Inference efficiency: time to generate N "
              "representations\n");
  table.Print();
}

/// (b)+(c) Search time and mean rank vs database size.
void SweepSearch() {
  util::TablePrinter time_table({"DB size", "BIGCity (ms/query)",
                                 "DTW (ms/query)", "LCSS (ms/query)",
                                 "Frechet (ms/query)", "EDR (ms/query)"});
  util::TablePrinter rank_table({"DB size", "BIGCity", "DTW", "LCSS",
                                 "Frechet", "EDR"});
  const int max_queries = 30;
  for (size_t db_size : {20u, 60u, 120u}) {
    const size_t usable =
        std::min({db_size, g_pools->database.size(), g_pools->queries.size()});
    const int num_queries =
        std::min<int>(max_queries, static_cast<int>(usable));

    // Embedding search: database embeddings precomputed once (as a real
    // system would), queries embedded + ranked by cosine.
    std::vector<nn::Tensor> db_embeddings;
    for (size_t d = 0; d < usable; ++d) {
      g_pools->model->BeginStep();
      db_embeddings.push_back(
          g_pools->model->Embed(g_pools->database[d]).Detached());
    }
    obs::WallTimer watch;
    double ours_rank = 0;
    for (int q = 0; q < num_queries; ++q) {
      g_pools->model->BeginStep();
      nn::Tensor query =
          g_pools->model->Embed(g_pools->queries[static_cast<size_t>(q)])
              .Detached();
      std::vector<std::pair<double, size_t>> scored;
      for (size_t d = 0; d < usable; ++d) {
        scored.emplace_back(Cosine(query, db_embeddings[d]), d);
      }
      std::sort(scored.begin(), scored.end(), std::greater<>());
      for (size_t r = 0; r < scored.size(); ++r) {
        if (scored[r].second == static_cast<size_t>(q)) {
          ours_rank += static_cast<double>(r + 1);
          break;
        }
      }
    }
    const double ours_ms = watch.ElapsedMillis() / num_queries;
    ours_rank /= num_queries;

    std::vector<std::string> time_row = {std::to_string(usable),
                                         bench::Fmt(ours_ms, 2)};
    std::vector<std::string> rank_row = {std::to_string(usable),
                                         bench::Fmt(ours_rank, 1)};
    for (const auto& measure : baselines::AllClassicMeasures()) {
      obs::WallTimer classic_watch;
      double mean_rank = 0;
      for (int q = 0; q < num_queries; ++q) {
        auto query_points = baselines::ToPointSequence(
            g_pools->dataset->network(),
            g_pools->queries[static_cast<size_t>(q)]);
        std::vector<std::pair<double, size_t>> scored;
        for (size_t d = 0; d < usable; ++d) {
          auto db_points = baselines::ToPointSequence(
              g_pools->dataset->network(), g_pools->database[d]);
          scored.emplace_back(measure.similarity(query_points, db_points), d);
        }
        std::sort(scored.begin(), scored.end(), std::greater<>());
        for (size_t r = 0; r < scored.size(); ++r) {
          if (scored[r].second == static_cast<size_t>(q)) {
            mean_rank += static_cast<double>(r + 1);
            break;
          }
        }
      }
      time_row.push_back(
          bench::Fmt(classic_watch.ElapsedMillis() / num_queries, 2));
      rank_row.push_back(bench::Fmt(mean_rank / num_queries, 1));
    }
    time_table.AddRow(time_row);
    rank_table.AddRow(rank_row);
  }
  std::printf("\n(b) Average search time per query vs database size\n");
  time_table.Print();
  std::printf("\n(c) Mean rank of the ground truth vs database size (lower "
              "is better)\n");
  rank_table.Print();
}

}  // namespace
}  // namespace bigcity

int main(int argc, char** argv) {
  using namespace bigcity;  // NOLINT — bench brevity.
  std::printf("Fig. 6 reproduction: efficiency and scalability (XA).\n");
  data::CityDataset dataset(bench::BenchCity("XA"));
  auto model = bench::TrainedBigCity(&dataset, core::BigCityConfig{},
                                     bench::BenchTrainConfig(), "bigcity_XA");
  util::Rng rng(31);
  baselines::Trajectory2Vec rnn(&dataset, 32, &rng);
  baselines::StartEncoder attn(&dataset, 32, &rng);

  Pools pools;
  pools.dataset = &dataset;
  pools.model = model.get();
  pools.rnn = &rnn;
  pools.attn = &attn;
  for (const auto& trip : dataset.test()) {
    if (trip.length() < 8) continue;
    data::Trajectory clipped = baselines::ClipForBaseline(trip, 24);
    pools.queries.push_back(EveryOther(clipped, 0));
    pools.database.push_back(EveryOther(clipped, 1));
  }
  for (const auto& trip : dataset.train()) {
    if (pools.database.size() >= 150) break;
    if (trip.length() < 8) continue;
    data::Trajectory clipped = baselines::ClipForBaseline(trip, 24);
    pools.queries.push_back(EveryOther(clipped, 0));
    pools.database.push_back(EveryOther(clipped, 1));
  }
  g_pools = &pools;

  std::printf("\nPer-item kernel costs (google-benchmark):\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  SweepInference();
  SweepSearch();
  g_pools = nullptr;
  return 0;
}
