#include "bench/common.h"

#include <filesystem>

#include "obs/obs.h"
#include "obs/timer.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/table_printer.h"

namespace bigcity::bench {

data::CityDatasetConfig BenchCity(const std::string& name) {
  if (name == "BJ") return data::ScaleConfig(data::BeijingLikeConfig(), 0.35);
  if (name == "XA") return data::ScaleConfig(data::XianLikeConfig(), 0.45);
  if (name == "CD") return data::ScaleConfig(data::ChengduLikeConfig(), 0.4);
  BIGCITY_CHECK(false) << "unknown bench city " << name;
  return {};
}

train::TrainConfig BenchTrainConfig() {
  train::TrainConfig config;
  config.stage1_epochs = 3;
  config.stage2_epochs = 12;
  config.max_stage1_sequences = 250;
  config.max_task_samples = 160;
  return config;
}

train::EvalConfig BenchEvalConfig() {
  train::EvalConfig config;
  config.max_samples = 120;
  config.max_queries = 50;
  config.traffic_samples = 80;
  return config;
}

std::unique_ptr<core::BigCityModel> TrainedBigCity(
    const data::CityDataset* dataset, const core::BigCityConfig& model_config,
    const train::TrainConfig& train_config, const std::string& cache_key) {
  auto model = std::make_unique<core::BigCityModel>(dataset, model_config);
  const std::string cache_dir = "bench_cache";
  const std::string path = cache_dir + "/" + cache_key + ".bin";
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);

  if (std::filesystem::exists(path)) {
    // The trained tree includes LoRA adapters: attach them first so the
    // parameter trees match, then load.
    util::Rng lora_rng(train_config.seed ^ 0xabc);
    model->backbone()->EnableLora(&lora_rng);
    if (model->LoadStateFromFile(path).ok()) {
      BIGCITY_LOG(Info) << "loaded cached model " << path;
      return model;
    }
    BIGCITY_LOG(Warning) << "stale cache " << path << ", retraining";
    model = std::make_unique<core::BigCityModel>(dataset, model_config);
  }

  obs::WallTimer watch;
  {
    BIGCITY_TIMED_SCOPE_NAMED("bench.train_us", "bench.train", "bench");
    train::Trainer trainer(model.get(), train_config);
    if (auto status = trainer.RunAll(); !status.ok()) {
      BIGCITY_CHECK(false) << "bench training failed: " << status.ToString();
    }
  }
  BIGCITY_LOG(Info) << "trained BIGCity (" << cache_key << ") in "
                    << watch.ElapsedSeconds() << "s";
  if (auto status = model->SaveStateToFile(path); !status.ok()) {
    BIGCITY_LOG(Warning) << "cache save failed: " << status.ToString();
  }
  return model;
}

std::string Fmt(double value, int decimals) {
  return util::TablePrinter::Num(value, decimals);
}

}  // namespace bigcity::bench
