// Reproduces Fig. 5: parameter sensitivity of the LoRA configuration —
// adapter rate n (fraction of backbone blocks carrying adapters) and rank
// r. The paper's findings to reproduce: performance improves with n;
// r helps up to ~8-16 then degrades; the paper picks n=1, r=8.
#include <cstdio>

#include "bench/common.h"
#include "obs/timer.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace bigcity {
namespace {

struct SweepPoint {
  double rate;
  int64_t rank;
  double tte_inv_mae;  // 10 / MAE, as in the paper's inverted axis.
  double next_acc;
  double next_mrr5;
  double simi_hr1;
  double simi_hr5;
};

SweepPoint RunConfig(const data::CityDataset& dataset, double rate,
                     int64_t rank) {
  core::BigCityConfig config;
  config.num_layers = 3;  // So n = 1/3, 2/3, 1 are all distinct.
  config.lora_rate = rate;
  config.lora_rank = rank;
  train::TrainConfig train_config;
  train_config.stage1_epochs = 1;
  train_config.stage2_epochs = 3;
  train_config.max_stage1_sequences = 100;
  train_config.max_task_samples = 80;
  train_config.tasks = {core::Task::kNextHop,
                        core::Task::kTravelTimeEstimation};
  core::BigCityModel model(&dataset, config);
  train::Trainer trainer(&model, train_config);
  BIGCITY_CHECK(trainer.RunAll().ok());

  train::EvalConfig eval_config;
  eval_config.max_samples = 80;
  eval_config.max_queries = 40;
  train::Evaluator evaluator(&model, eval_config);
  SweepPoint point;
  point.rate = rate;
  point.rank = rank;
  point.tte_inv_mae = 10.0 / std::max(0.01, evaluator.EvaluateTravelTime().mae);
  auto next = evaluator.EvaluateNextHop();
  point.next_acc = next.accuracy;
  point.next_mrr5 = next.mrr5;
  auto simi = evaluator.EvaluateSimilarity();
  point.simi_hr1 = simi.hr1;
  point.simi_hr5 = simi.hr5;
  return point;
}

}  // namespace
}  // namespace bigcity

int main() {
  using namespace bigcity;  // NOLINT — bench brevity.
  std::printf("Fig. 5 reproduction: LoRA sensitivity (rate n x rank r) on a "
              "reduced XA dataset.\nMetrics: 10/MAE (TTE), ACC & MRR@5 "
              "(next hop), HR@1 & HR@5 (similar search).\n");
  auto city = bench::BenchCity("XA");
  city = data::ScaleConfig(city, 0.5);  // Sweep budget: 12 trainings.
  data::CityDataset dataset(city);

  util::TablePrinter table({"n", "r", "10/MAE↑", "ACC↑", "MRR@5↑",
                            "HR@1↑", "HR@5↑"});
  const double rates[] = {1.0 / 3.0, 2.0 / 3.0, 1.0};
  const int64_t ranks[] = {4, 8, 16, 32};
  for (double rate : rates) {
    for (int64_t rank : ranks) {
      obs::WallTimer watch;
      auto point = RunConfig(dataset, rate, rank);
      table.AddRow({bench::Fmt(rate, 2), std::to_string(rank),
                    bench::Fmt(point.tte_inv_mae, 2),
                    bench::Fmt(point.next_acc), bench::Fmt(point.next_mrr5),
                    bench::Fmt(point.simi_hr1), bench::Fmt(point.simi_hr5)});
      std::fprintf(stderr, "[fig5] n=%.2f r=%lld done in %.1fs\n", rate,
                   static_cast<long long>(rank), watch.ElapsedSeconds());
    }
    table.AddSeparator();
  }
  table.Print();
  return 0;
}
