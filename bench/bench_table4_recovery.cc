// Reproduces Table IV: trajectory recovery (accuracy and Macro-F1 on the
// masked positions) at 85% / 90% / 95% mask ratios on BJ / XA / CD —
// BIGCity vs Linear+HMM, DTHR+HMM, MTrajRec, RNTrajRec.
#include <cstdio>
#include <functional>
#include <memory>

#include "baselines/recovery/hmm_recovery.h"
#include "baselines/recovery/seq2seq_recovery.h"
#include "baselines/traj/traj_encoder.h"
#include "bench/common.h"
#include "data/masking.h"
#include "nn/ops.h"
#include "obs/timer.h"
#include "train/metrics.h"
#include "util/table_printer.h"

namespace bigcity {
namespace {

constexpr double kMaskRatios[] = {0.85, 0.90, 0.95};

using Recoverer = std::function<std::vector<int>(const data::Trajectory&,
                                                 const std::vector<int>&)>;

/// Road-network-constrained greedy decode, as the neural recovery papers
/// use (MTrajRec's "constraint mask"): walking the sequence left to right,
/// each dropped position may only take a successor of the previous segment
/// (or stay), and the learned logits rank those candidates.
std::vector<int> ConstrainedDecode(const roadnet::RoadNetwork& network,
                                   const nn::Tensor& logits,  // [K, I]
                                   const data::Trajectory& original,
                                   const std::vector<int>& kept) {
  std::vector<bool> is_kept(static_cast<size_t>(original.length()), false);
  for (int index : kept) is_kept[static_cast<size_t>(index)] = true;
  std::vector<int> result;
  int previous = original.points.front().segment;
  int row = 0;
  for (int l = 0; l < original.length(); ++l) {
    if (is_kept[static_cast<size_t>(l)]) {
      previous = original.points[static_cast<size_t>(l)].segment;
      continue;
    }
    // Candidates: successors of the previous segment, plus staying put.
    std::vector<int> candidates = network.successors(previous);
    candidates.push_back(previous);
    int best = candidates.front();
    float best_score = -1e30f;
    for (int candidate : candidates) {
      const float score = logits.at(row, candidate);
      if (score > best_score) {
        best_score = score;
        best = candidate;
      }
    }
    result.push_back(best);
    previous = best;
    ++row;
  }
  return result;
}

struct Scores {
  double accuracy[3] = {0, 0, 0};
  double macro_f1[3] = {0, 0, 0};
};

/// Evaluates one recovery function at all three mask ratios.
Scores Evaluate(const data::CityDataset& dataset, const Recoverer& recover,
                int max_trips) {
  Scores scores;
  for (int ratio_index = 0; ratio_index < 3; ++ratio_index) {
    util::Rng rng(4040 + ratio_index);
    std::vector<int> predictions, targets;
    int used = 0;
    for (const auto& raw : dataset.test()) {
      if (raw.length() < 10) continue;
      if (++used > max_trips) break;
      data::Trajectory trip = baselines::ClipForBaseline(raw, 24);
      auto kept = data::DownsampleKeepIndices(
          trip.length(), kMaskRatios[ratio_index], &rng);
      auto dropped = data::ComplementIndices(trip.length(), kept);
      if (dropped.empty()) continue;
      auto predicted = recover(trip, kept);
      for (size_t k = 0; k < dropped.size(); ++k) {
        predictions.push_back(predicted[k]);
        targets.push_back(
            trip.points[static_cast<size_t>(dropped[k])].segment);
      }
    }
    if (predictions.empty()) continue;
    scores.accuracy[ratio_index] = train::Accuracy(predictions, targets);
    scores.macro_f1[ratio_index] = train::MacroF1(
        predictions, targets, dataset.network().num_segments());
  }
  return scores;
}

void RunCity(const std::string& city, util::TablePrinter* acc_table,
             util::TablePrinter* f1_table) {
  data::CityDataset dataset(bench::BenchCity(city));
  constexpr int kMaxTrips = 40;
  std::vector<std::pair<std::string, Scores>> results;

  {  // Non-learned HMM baselines.
    baselines::LinearHmmRecovery linear(&dataset);
    results.emplace_back(
        "Linear+HMM",
        Evaluate(dataset,
                 [&](const auto& t, const auto& k) {
                   return linear.Recover(t, k);
                 },
                 kMaxTrips));
    baselines::DthrHmmRecovery dthr(&dataset);
    results.emplace_back(
        "DTHR+HMM",
        Evaluate(dataset,
                 [&](const auto& t, const auto& k) {
                   return dthr.Recover(t, k);
                 },
                 kMaxTrips));
  }
  {  // Neural recovery baselines (trained at a 0.9 mask ratio).
    util::Rng rng(7);
    std::vector<data::Trajectory> corpus;
    for (const auto& trip : dataset.train()) {
      if (trip.length() >= 8) corpus.push_back(trip);
      if (corpus.size() >= 100) break;
    }
    baselines::MTrajRec mtraj(&dataset, 32, &rng);
    mtraj.Train(corpus, 0.9);
    results.emplace_back(
        "MTrajRec",
        Evaluate(dataset,
                 [&](const auto& t, const auto& k) {
                   return ConstrainedDecode(dataset.network(),
                                            mtraj.DroppedLogits(t, k), t, k);
                 },
                 kMaxTrips));
    baselines::RnTrajRec rntraj(&dataset, 32, &rng);
    rntraj.Train(corpus, 0.9);
    results.emplace_back(
        "RNTrajRec",
        Evaluate(dataset,
                 [&](const auto& t, const auto& k) {
                   return ConstrainedDecode(dataset.network(),
                                            rntraj.DroppedLogits(t, k), t, k);
                 },
                 kMaxTrips));
  }
  {  // BIGCity (cached from earlier benches when available).
    auto model = bench::TrainedBigCity(&dataset, core::BigCityConfig{},
                                       bench::BenchTrainConfig(),
                                       "bigcity_" + city);
    results.emplace_back(
        "Ours", Evaluate(dataset,
                         [&](const auto& t, const auto& k) {
                           model->BeginStep();
                           nn::Tensor logits = model->RecoverLogits(t, k);
                           return ConstrainedDecode(dataset.network(), logits,
                                                    t, k);
                         },
                         kMaxTrips));
  }

  for (auto& [name, scores] : results) {
    acc_table->AddRow({city, name, bench::Fmt(scores.accuracy[0]),
                       bench::Fmt(scores.accuracy[1]),
                       bench::Fmt(scores.accuracy[2])});
    f1_table->AddRow({city, name, bench::Fmt(scores.macro_f1[0]),
                      bench::Fmt(scores.macro_f1[1]),
                      bench::Fmt(scores.macro_f1[2])});
  }
  acc_table->AddSeparator();
  f1_table->AddSeparator();
}

}  // namespace
}  // namespace bigcity

int main() {
  std::printf("Table IV reproduction: trajectory recovery at 85/90/95%% "
              "mask ratios (synthetic bench-scale cities; compare shape).\n");
  bigcity::util::TablePrinter acc({"Data", "Model", "85%", "90%", "95%"});
  bigcity::util::TablePrinter f1({"Data", "Model", "85%", "90%", "95%"});
  for (const std::string city : {"BJ", "XA", "CD"}) {
    bigcity::RunCity(city, &acc, &f1);
  }
  std::printf("\n--- Accuracy (masked positions) ---\n");
  acc.Print();
  std::printf("\n--- Macro-F1 (masked positions) ---\n");
  f1.Print();
  return 0;
}
