#ifndef BIGCITY_BENCH_COMMON_H_
#define BIGCITY_BENCH_COMMON_H_

#include <memory>
#include <string>

#include "core/bigcity_model.h"
#include "data/dataset.h"
#include "train/evaluator.h"
#include "train/trainer.h"

namespace bigcity::bench {

/// Bench-scale dataset presets: the paper's three cities shrunk to sizes a
/// single CPU core trains in about a minute each. Relative character is
/// preserved (BJ largest + no dynamic features; XA/CD mid-sized).
data::CityDatasetConfig BenchCity(const std::string& name);

/// Standard BIGCity training budget for the benches.
train::TrainConfig BenchTrainConfig();

/// Standard evaluation budget.
train::EvalConfig BenchEvalConfig();

/// Trains a BIGCity model with the given configs, caching the trained
/// weights under bench_cache/<cache_key>.bin so later bench binaries skip
/// re-training. A stale/mismatched cache is silently retrained.
std::unique_ptr<core::BigCityModel> TrainedBigCity(
    const data::CityDataset* dataset, const core::BigCityConfig& model_config,
    const train::TrainConfig& train_config, const std::string& cache_key);

/// Formats a metric like the paper's tables (3 decimals, or 2 for times).
std::string Fmt(double value, int decimals = 3);

}  // namespace bigcity::bench

#endif  // BIGCITY_BENCH_COMMON_H_
