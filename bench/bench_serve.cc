// Closed-loop load benchmark for the inference serving runtime: N clients
// per worker issue back-to-back next-hop requests at 1x/2x/4x the worker
// count and the harness reports throughput, latency percentiles, and the
// shed rate per load level, plus a "reload under load" section measuring
// the same numbers across a live hot-swap (a version published mid-run at
// 2x load; DESIGN.md §4.12). Prints a table and writes BENCH_serve.json
// in the working directory.
//
// The queue is deliberately sized at the worker count so the 2x/4x levels
// overload it: the interesting number is how the runtime degrades (fast
// kResourceExhausted sheds, bounded latency for admitted work), not peak
// throughput.
//
// Usage: bench_serve [--city XA|BJ|CD] [--workers N] [--requests N]
//                    [--threads N] [--fast] [--out PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "nn/kernels/kernels.h"
#include "obs/timer.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "util/table_printer.h"

namespace {

struct LevelResult {
  int multiplier = 1;
  int clients = 0;
  int issued = 0;
  int ok = 0;
  int shed = 0;
  int other = 0;
  double seconds = 0;
  std::vector<double> latencies_us;  // Completed (OK) requests only.

  double Percentile(double q) const {
    if (latencies_us.empty()) return 0;
    const size_t rank = std::min(
        latencies_us.size() - 1,
        static_cast<size_t>(q * static_cast<double>(latencies_us.size())));
    return latencies_us[rank];
  }
  double Throughput() const { return seconds > 0 ? ok / seconds : 0; }
  double ShedRate() const {
    return issued > 0 ? static_cast<double>(shed) / issued : 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bigcity;  // NOLINT — bench brevity.
  std::string out = "BENCH_serve.json";
  std::string city = "XA";
  int workers = 2;
  int requests_per_client = 32;
  int threads = nn::kernels::NumThreads();
  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (i + 1 < argc && std::strcmp(argv[i], "--city") == 0) {
      city = argv[++i];
    } else if (i + 1 < argc && std::strcmp(argv[i], "--workers") == 0) {
      workers = std::atoi(argv[++i]);
    } else if (i + 1 < argc && std::strcmp(argv[i], "--requests") == 0) {
      requests_per_client = std::atoi(argv[++i]);
    } else if (i + 1 < argc && std::strcmp(argv[i], "--threads") == 0) {
      threads = std::atoi(argv[++i]);
    } else if (i + 1 < argc && std::strcmp(argv[i], "--out") == 0) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--city XA|BJ|CD] [--workers N] "
                   "[--requests N] [--threads N] [--fast] [--out PATH]\n");
      return 2;
    }
  }
  if (fast) requests_per_client = std::min(requests_per_client, 8);
  nn::kernels::SetNumThreads(threads);
  threads = nn::kernels::NumThreads();

  data::CityDataset dataset(bench::BenchCity(city));
  core::BigCityConfig model_config;
  model_config.threads = threads;
  if (fast) {
    model_config.d_model = 32;
    model_config.num_heads = 2;
    model_config.num_layers = 1;
    model_config.spatial_dim = 16;
    model_config.gat_hidden = 16;
  }
  std::printf("BIGCity serving benchmark (%s, %d worker%s, %d kernel "
              "thread%s%s).\n",
              city.c_str(), workers, workers == 1 ? "" : "s", threads,
              threads == 1 ? "" : "s", fast ? ", fast" : "");

  serve::ServeOptions options;
  options.num_workers = workers;
  options.queue_capacity = workers;  // Tight bound: overload must shed.
  serve::InferenceServer server(&dataset, model_config, options);
  if (auto status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  const std::vector<data::Trajectory>& pool = dataset.test();
  std::vector<LevelResult> levels;
  for (int multiplier : {1, 2, 4}) {
    LevelResult level;
    level.multiplier = multiplier;
    level.clients = multiplier * workers;
    std::vector<std::vector<double>> per_client_latencies(
        static_cast<size_t>(level.clients));
    std::atomic<int> ok{0}, shed{0}, other{0};
    obs::WallTimer watch;
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(level.clients));
    for (int c = 0; c < level.clients; ++c) {
      clients.emplace_back([&, c] {
        auto& latencies = per_client_latencies[static_cast<size_t>(c)];
        latencies.reserve(static_cast<size_t>(requests_per_client));
        for (int r = 0; r < requests_per_client; ++r) {
          serve::Request request;
          request.task = core::Task::kNextHop;
          request.trajectory =
              pool[static_cast<size_t>(c * requests_per_client + r) %
                   pool.size()];
          serve::Response response = server.ServeSync(std::move(request));
          if (response.status.ok()) {
            ok++;
            latencies.push_back(response.total_us);
          } else if (response.outcome == serve::Outcome::kShed) {
            shed++;
          } else {
            other++;
          }
        }
      });
    }
    for (auto& client : clients) client.join();
    level.seconds = watch.ElapsedSeconds();
    level.issued = level.clients * requests_per_client;
    level.ok = ok.load();
    level.shed = shed.load();
    level.other = other.load();
    for (auto& latencies : per_client_latencies) {
      level.latencies_us.insert(level.latencies_us.end(), latencies.begin(),
                                latencies.end());
    }
    std::sort(level.latencies_us.begin(), level.latencies_us.end());
    levels.push_back(std::move(level));
  }
  server.Stop();

  // --- Reload under load -------------------------------------------------
  // 2x clients hammer a second server while a new version is published
  // mid-run: the canary/rolling swap must complete with every request
  // still getting a definite outcome, and the latency percentiles across
  // the whole phase (staging, canary, swap) are the interesting number.
  LevelResult reload;
  reload.multiplier = 2;
  reload.clients = 2 * workers;
  bool swap_completed = false;
  int served_by_new_version = 0;
  {
    const std::string model_dir =
        (std::filesystem::temp_directory_path() / "bigcity_bench_reload")
            .string();
    std::filesystem::remove_all(model_dir);
    std::filesystem::create_directories(model_dir);
    serve::ServeOptions reload_options = options;
    // A real deployment swaps under a latency SLO; give every request the
    // deadline the JSON reports so "p99 within deadline" is checkable.
    reload_options.default_deadline_ms = 250;
    reload_options.rollout.model_dir = model_dir;
    reload_options.rollout.poll_interval_ms = 20;
    // The latency criterion is effectively disabled (the staged replica
    // keeps hitting cold per-trajectory caches for the whole canary
    // window under this pool, which is exactly the false-positive the
    // gate's slow-start exists for, magnified by 2x overload): this is a
    // throughput bench measuring swap mechanics, not gate sensitivity —
    // rollout_test and chaos_soak cover the gate.
    reload_options.rollout.canary_min_requests = 32;
    reload_options.rollout.canary_slow_start_samples = 16;
    reload_options.rollout.canary_latency_inflation = 1000.0;
    serve::InferenceServer reload_server(&dataset, model_config,
                                         reload_options);
    if (auto status = reload_server.Start(); !status.ok()) {
      std::fprintf(stderr, "reload server start failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::vector<std::vector<double>> per_client_latencies(
        static_cast<size_t>(reload.clients));
    std::atomic<bool> stop{false};
    std::atomic<int> ok{0}, shed{0}, other{0}, issued{0}, new_version{0};
    obs::WallTimer watch;
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(reload.clients));
    for (int c = 0; c < reload.clients; ++c) {
      clients.emplace_back([&, c] {
        auto& latencies = per_client_latencies[static_cast<size_t>(c)];
        for (int r = 0; !stop.load(std::memory_order_relaxed); ++r) {
          serve::Request request;
          request.task = core::Task::kNextHop;
          request.trajectory =
              pool[static_cast<size_t>(c * 131 + r) % pool.size()];
          issued++;
          serve::Response response = reload_server.ServeSync(
              std::move(request));
          if (response.status.ok()) {
            ok++;
            latencies.push_back(response.total_us);
            if (response.model_version == 1) new_version++;
          } else if (response.outcome == serve::Outcome::kShed) {
            shed++;
            // Back off instead of spin-retrying into the full queue, so
            // the issue rate (and hence the shed rate) stays a property
            // of the 2x overload, not of how fast sheds bounce.
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          } else {
            other++;
          }
        }
      });
    }
    // Let the load settle, then publish a same-architecture variant and
    // wait for the rollout to promote it.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    core::BigCityConfig variant_config = model_config;
    variant_config.seed = model_config.seed + 17;
    auto published = serve::PublishModel(
        model_dir, core::BigCityModel(&dataset, variant_config));
    if (published.ok()) {
      swap_completed =
          reload_server.WaitForStableVersion(published.value(), 60000);
    } else {
      std::fprintf(stderr, "reload publish failed: %s\n",
                   published.status().ToString().c_str());
    }
    // A short post-swap tail so the percentiles include new-version serving.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    stop.store(true, std::memory_order_relaxed);
    for (auto& client : clients) client.join();
    reload_server.Stop();
    reload.seconds = watch.ElapsedSeconds();
    reload.issued = issued.load();
    reload.ok = ok.load();
    reload.shed = shed.load();
    reload.other = other.load();
    served_by_new_version = new_version.load();
    for (auto& latencies : per_client_latencies) {
      reload.latencies_us.insert(reload.latencies_us.end(),
                                 latencies.begin(), latencies.end());
    }
    std::sort(reload.latencies_us.begin(), reload.latencies_us.end());
    std::filesystem::remove_all(model_dir);
  }
  if (reload.ok + reload.shed + reload.other != reload.issued) {
    std::fprintf(stderr,
                 "reload: %d requests without a definite outcome\n",
                 reload.issued - reload.ok - reload.shed - reload.other);
    return 1;
  }

  util::TablePrinter table(
      {"Load", "Clients", "Issued", "OK", "Shed rate", "Req/s", "p50 ms",
       "p95 ms", "p99 ms"});
  for (const LevelResult& level : levels) {
    table.AddRow({std::to_string(level.multiplier) + "x",
                  util::TablePrinter::Num(level.clients, 0),
                  util::TablePrinter::Num(level.issued, 0),
                  util::TablePrinter::Num(level.ok, 0),
                  util::TablePrinter::Num(level.ShedRate(), 3),
                  util::TablePrinter::Num(level.Throughput(), 1),
                  util::TablePrinter::Num(level.Percentile(0.5) / 1e3, 2),
                  util::TablePrinter::Num(level.Percentile(0.95) / 1e3, 2),
                  util::TablePrinter::Num(level.Percentile(0.99) / 1e3, 2)});
  }
  table.AddRow({"2x+swap",
                util::TablePrinter::Num(reload.clients, 0),
                util::TablePrinter::Num(reload.issued, 0),
                util::TablePrinter::Num(reload.ok, 0),
                util::TablePrinter::Num(reload.ShedRate(), 3),
                util::TablePrinter::Num(reload.Throughput(), 1),
                util::TablePrinter::Num(reload.Percentile(0.5) / 1e3, 2),
                util::TablePrinter::Num(reload.Percentile(0.95) / 1e3, 2),
                util::TablePrinter::Num(reload.Percentile(0.99) / 1e3, 2)});
  table.Print();
  std::printf("reload under load: swap %s, %d responses served by the new "
              "version\n",
              swap_completed ? "completed" : "DID NOT COMPLETE",
              served_by_new_version);

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"city\": \"%s\",\n"
               "  \"workers\": %d,\n"
               "  \"kernel_threads\": %d,\n"
               "  \"queue_capacity\": %d,\n"
               "  \"requests_per_client\": %d,\n"
               "  \"levels\": [\n",
               city.c_str(), workers, threads, workers, requests_per_client);
  for (size_t i = 0; i < levels.size(); ++i) {
    const LevelResult& level = levels[i];
    std::fprintf(f,
                 "    {\"load_multiplier\": %d, \"clients\": %d, "
                 "\"issued\": %d, \"ok\": %d, \"shed\": %d, \"other\": %d, "
                 "\"seconds\": %.4f, \"throughput_rps\": %.2f, "
                 "\"shed_rate\": %.4f, \"p50_us\": %.1f, \"p95_us\": %.1f, "
                 "\"p99_us\": %.1f}%s\n",
                 level.multiplier, level.clients, level.issued, level.ok,
                 level.shed, level.other, level.seconds, level.Throughput(),
                 level.ShedRate(), level.Percentile(0.5),
                 level.Percentile(0.95), level.Percentile(0.99),
                 i + 1 < levels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"reload\": {\"load_multiplier\": 2, \"clients\": %d, "
               "\"issued\": %d, \"ok\": %d, \"shed\": %d, \"other\": %d, "
               "\"seconds\": %.4f, \"throughput_rps\": %.2f, "
               "\"shed_rate\": %.4f, \"p50_us\": %.1f, \"p95_us\": %.1f, "
               "\"p99_us\": %.1f, \"deadline_ms\": 250, "
               "\"swap_completed\": %s, "
               "\"served_by_new_version\": %d}\n",
               reload.clients, reload.issued, reload.ok, reload.shed,
               reload.other, reload.seconds, reload.Throughput(),
               reload.ShedRate(), reload.Percentile(0.5),
               reload.Percentile(0.95), reload.Percentile(0.99),
               swap_completed ? "true" : "false", served_by_new_version);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
