// Closed-loop load benchmark for the inference serving runtime: N clients
// per worker issue back-to-back next-hop requests at 1x/2x/4x the worker
// count and the harness reports throughput, latency percentiles, and the
// shed rate per load level, plus
//   - a batching A/B: an autoregressive walk workload (clients decode
//     trajectories hop by hop) at the same three load levels against a
//     batching-off server (no batcher, no tokenizer rep cache, no KV
//     sessions) and a batching-on server (DESIGN.md §4.14), both with a
//     deadline and a queue wide enough to admit the whole closed loop,
//     reporting the 4x-load throughput ratio and the mean batch size, and
//   - a "reload under load" section measuring the same numbers across a
//     live hot-swap (a version published mid-run at 2x load; §4.12).
// Prints tables and writes BENCH_serve.json in the working directory;
// tools/bench_gate --serve-current/--serve-baseline gates the batching
// section's ratios against bench/baselines/BENCH_serve.json.
//
// The primary levels' queue is deliberately sized at the worker count so
// the 2x/4x levels overload it: the interesting number is how the runtime
// degrades (fast kResourceExhausted sheds, bounded latency for admitted
// work), not peak throughput. The A/B queue is sized at the 4x client
// count instead — batching exists to absorb exactly the backlog the tight
// queue would shed.
//
// Usage: bench_serve [--city XA|BJ|CD] [--workers N] [--requests N]
//                    [--threads N] [--batch-max N] [--batch-window-us F]
//                    [--deadline-ms F] [--no-batching] [--fast] [--out PATH]
//                    [--trace-out PATH]
//
// --trace-out arms request-scoped tracing for the whole run and writes a
// chrome://tracing JSON at exit: each request renders as one connected
// flow (submit -> batch forward -> finish) across threads, which
// ci/validate_artifacts.py trace asserts on the 4x-load smoke.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "nn/kernels/kernels.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "util/fault_injection.h"
#include "util/table_printer.h"

namespace {

struct LevelResult {
  int multiplier = 1;
  int clients = 0;
  int issued = 0;
  int ok = 0;
  int shed = 0;
  int other = 0;
  double seconds = 0;
  double batch_size_sum = 0;         // Over OK responses.
  std::vector<double> latencies_us;  // Completed (OK) requests only.

  double Percentile(double q) const {
    if (latencies_us.empty()) return 0;
    const size_t rank = std::min(
        latencies_us.size() - 1,
        static_cast<size_t>(q * static_cast<double>(latencies_us.size())));
    return latencies_us[rank];
  }
  double Throughput() const { return seconds > 0 ? ok / seconds : 0; }
  double ShedRate() const {
    return issued > 0 ? static_cast<double>(shed) / issued : 0;
  }
  double MeanBatchSize() const { return ok > 0 ? batch_size_sum / ok : 0; }
};

/// One closed-loop level: `multiplier * workers` clients each issue
/// `requests_per_client` back-to-back sync requests from the pool.
LevelResult RunLevel(bigcity::serve::InferenceServer& server,
                     const std::vector<bigcity::data::Trajectory>& pool,
                     int multiplier, int workers, int requests_per_client) {
  using namespace bigcity;  // NOLINT — bench brevity.
  LevelResult level;
  level.multiplier = multiplier;
  level.clients = multiplier * workers;
  std::vector<std::vector<double>> per_client_latencies(
      static_cast<size_t>(level.clients));
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::atomic<uint64_t> batch_sum{0};
  obs::WallTimer watch;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(level.clients));
  for (int c = 0; c < level.clients; ++c) {
    clients.emplace_back([&, c] {
      auto& latencies = per_client_latencies[static_cast<size_t>(c)];
      latencies.reserve(static_cast<size_t>(requests_per_client));
      for (int r = 0; r < requests_per_client; ++r) {
        serve::Request request;
        request.task = core::Task::kNextHop;
        request.trajectory =
            pool[static_cast<size_t>(c * requests_per_client + r) %
                 pool.size()];
        serve::Response response = server.ServeSync(std::move(request));
        if (response.status.ok()) {
          ok++;
          batch_sum += static_cast<uint64_t>(response.batch_size);
          latencies.push_back(response.total_us);
        } else if (response.outcome == serve::Outcome::kShed) {
          shed++;
        } else {
          other++;
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  level.seconds = watch.ElapsedSeconds();
  level.issued = level.clients * requests_per_client;
  level.ok = ok.load();
  level.shed = shed.load();
  level.other = other.load();
  level.batch_size_sum = static_cast<double>(batch_sum.load());
  for (auto& latencies : per_client_latencies) {
    level.latencies_us.insert(level.latencies_us.end(), latencies.begin(),
                              latencies.end());
  }
  std::sort(level.latencies_us.begin(), level.latencies_us.end());
  return level;
}

/// Autoregressive closed-loop level: each client decodes trajectories hop
/// by hop — request r extends request r-1 by one point, the workload the
/// KV sessions and batched prefill exist for. Both A/B arms run this same
/// walk, so the only variable is the engine.
LevelResult RunLevelWalk(bigcity::serve::InferenceServer& server,
                         const std::vector<bigcity::data::Trajectory>& pool,
                         int multiplier, int workers, int requests_per_client,
                         int max_prefix) {
  using namespace bigcity;  // NOLINT — bench brevity.
  LevelResult level;
  level.multiplier = multiplier;
  level.clients = multiplier * workers;
  std::vector<std::vector<double>> per_client_latencies(
      static_cast<size_t>(level.clients));
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::atomic<uint64_t> batch_sum{0};
  obs::WallTimer watch;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(level.clients));
  for (int c = 0; c < level.clients; ++c) {
    clients.emplace_back([&, c] {
      auto& latencies = per_client_latencies[static_cast<size_t>(c)];
      latencies.reserve(static_cast<size_t>(requests_per_client));
      size_t next_traj = static_cast<size_t>(c);
      int mine = 0;
      while (mine < requests_per_client) {
        const data::Trajectory& full = pool[next_traj % pool.size()];
        next_traj += static_cast<size_t>(level.clients);
        const int cap = std::min(full.length(), max_prefix);
        if (cap < 2) continue;
        for (int len = 2; len <= cap && mine < requests_per_client; ++len) {
          serve::Request request;
          request.task = core::Task::kNextHop;
          request.trajectory = full;
          request.trajectory.points.resize(static_cast<size_t>(len));
          ++mine;
          serve::Response response = server.ServeSync(std::move(request));
          if (response.status.ok()) {
            ok++;
            batch_sum += static_cast<uint64_t>(response.batch_size);
            latencies.push_back(response.total_us);
          } else if (response.outcome == serve::Outcome::kShed) {
            shed++;
          } else {
            other++;
          }
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  level.seconds = watch.ElapsedSeconds();
  level.issued = level.clients * requests_per_client;
  level.ok = ok.load();
  level.shed = shed.load();
  level.other = other.load();
  level.batch_size_sum = static_cast<double>(batch_sum.load());
  for (auto& latencies : per_client_latencies) {
    level.latencies_us.insert(level.latencies_us.end(), latencies.begin(),
                              latencies.end());
  }
  std::sort(level.latencies_us.begin(), level.latencies_us.end());
  return level;
}

uint64_t CounterValue(const char* name) {
  return bigcity::obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

/// Cache/batch counter deltas over one A/B arm (all zero in obs-off
/// builds, where the probes compile out; the validator treats that build
/// flavor accordingly).
struct ArmCounters {
  uint64_t kv_hit = 0, kv_miss = 0, tok_hit = 0, tok_miss = 0;
  uint64_t batch_fallback = 0;

  static ArmCounters Capture() {
    ArmCounters counters;
    counters.kv_hit = CounterValue("serve.cache.kv.hit");
    counters.kv_miss = CounterValue("serve.cache.kv.miss");
    counters.tok_hit = CounterValue("serve.cache.tokenizer.hit");
    counters.tok_miss = CounterValue("serve.cache.tokenizer.miss");
    counters.batch_fallback = CounterValue("serve.batch.fallback");
    return counters;
  }
  ArmCounters DeltaSince(const ArmCounters& before) const {
    ArmCounters delta;
    delta.kv_hit = kv_hit - before.kv_hit;
    delta.kv_miss = kv_miss - before.kv_miss;
    delta.tok_hit = tok_hit - before.tok_hit;
    delta.tok_miss = tok_miss - before.tok_miss;
    delta.batch_fallback = batch_fallback - before.batch_fallback;
    return delta;
  }
};

void PrintJsonLevel(std::FILE* f, const char* indent, const LevelResult& level,
                    bool trailing_comma) {
  std::fprintf(f,
               "%s{\"load_multiplier\": %d, \"clients\": %d, "
               "\"issued\": %d, \"ok\": %d, \"shed\": %d, \"other\": %d, "
               "\"seconds\": %.4f, \"throughput_rps\": %.2f, "
               "\"shed_rate\": %.4f, \"mean_batch_size\": %.2f, "
               "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f}%s\n",
               indent, level.multiplier, level.clients, level.issued,
               level.ok, level.shed, level.other, level.seconds,
               level.Throughput(), level.ShedRate(), level.MeanBatchSize(),
               level.Percentile(0.5), level.Percentile(0.95),
               level.Percentile(0.99), trailing_comma ? "," : "");
}

void AddTableRow(bigcity::util::TablePrinter* table, const std::string& label,
                 const LevelResult& level) {
  using bigcity::util::TablePrinter;
  table->AddRow({label, TablePrinter::Num(level.clients, 0),
                 TablePrinter::Num(level.issued, 0),
                 TablePrinter::Num(level.ok, 0),
                 TablePrinter::Num(level.ShedRate(), 3),
                 TablePrinter::Num(level.MeanBatchSize(), 2),
                 TablePrinter::Num(level.Throughput(), 1),
                 TablePrinter::Num(level.Percentile(0.5) / 1e3, 2),
                 TablePrinter::Num(level.Percentile(0.95) / 1e3, 2),
                 TablePrinter::Num(level.Percentile(0.99) / 1e3, 2)});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bigcity;  // NOLINT — bench brevity.
  std::string out = "BENCH_serve.json";
  std::string city = "XA";
  int workers = 2;
  int requests_per_client = 32;
  int threads = nn::kernels::NumThreads();
  int batch_max = 8;
  double batch_window_us = 200.0;
  double deadline_ms = 250.0;
  bool batching = true;
  bool fast = false;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strcmp(argv[i], "--no-batching") == 0) {
      batching = false;
    } else if (i + 1 < argc && std::strcmp(argv[i], "--city") == 0) {
      city = argv[++i];
    } else if (i + 1 < argc && std::strcmp(argv[i], "--workers") == 0) {
      workers = std::atoi(argv[++i]);
    } else if (i + 1 < argc && std::strcmp(argv[i], "--requests") == 0) {
      requests_per_client = std::atoi(argv[++i]);
    } else if (i + 1 < argc && std::strcmp(argv[i], "--threads") == 0) {
      threads = std::atoi(argv[++i]);
    } else if (i + 1 < argc && std::strcmp(argv[i], "--batch-max") == 0) {
      batch_max = std::atoi(argv[++i]);
    } else if (i + 1 < argc &&
               std::strcmp(argv[i], "--batch-window-us") == 0) {
      batch_window_us = std::atof(argv[++i]);
    } else if (i + 1 < argc && std::strcmp(argv[i], "--deadline-ms") == 0) {
      deadline_ms = std::atof(argv[++i]);
    } else if (i + 1 < argc && std::strcmp(argv[i], "--out") == 0) {
      out = argv[++i];
    } else if (i + 1 < argc && std::strcmp(argv[i], "--trace-out") == 0) {
      trace_out = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: bench_serve [--city XA|BJ|CD] [--workers N] "
          "[--requests N] [--threads N] [--batch-max N] "
          "[--batch-window-us F] [--deadline-ms F] [--no-batching] "
          "[--fast] [--out PATH] [--trace-out PATH]\n");
      return 2;
    }
  }
  if (fast) requests_per_client = std::min(requests_per_client, 8);
  if (!trace_out.empty()) {
    // Arm before the servers exist so submit-side spans trace too. A 1M
    // ring keeps every span of a --fast smoke; a full run keeps the tail.
    obs::TraceBuffer::Global().SetCapacity(size_t{1} << 20);
    obs::SetTracingEnabled(true);
  }
  nn::kernels::SetNumThreads(threads);
  threads = nn::kernels::NumThreads();

  data::CityDataset dataset(bench::BenchCity(city));
  core::BigCityConfig model_config;
  model_config.threads = threads;
  if (fast) {
    model_config.d_model = 32;
    model_config.num_heads = 2;
    model_config.num_layers = 1;
    model_config.spatial_dim = 16;
    model_config.gat_hidden = 16;
  }
  std::printf("BIGCity serving benchmark (%s, %d worker%s, %d kernel "
              "thread%s%s%s).\n",
              city.c_str(), workers, workers == 1 ? "" : "s", threads,
              threads == 1 ? "" : "s", fast ? ", fast" : "",
              batching ? "" : ", batching off");

  serve::ServeOptions options;
  options.num_workers = workers;
  options.queue_capacity = workers;  // Tight bound: overload must shed.
  options.batching = batching;
  options.batch_max = batch_max;
  options.batch_window_us = batch_window_us;
  serve::InferenceServer server(&dataset, model_config, options);
  if (auto status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  const std::vector<data::Trajectory>& pool = dataset.test();
  std::vector<LevelResult> levels;
  for (int multiplier : {1, 2, 4}) {
    levels.push_back(
        RunLevel(server, pool, multiplier, workers, requests_per_client));
  }
  server.Stop();

  // --- Batching A/B ------------------------------------------------------
  // An autoregressive closed loop (clients decode trajectories hop by
  // hop), twice: once against the pre-batching runtime shape (no batcher,
  // no shared tokenizer cache, no KV sessions) and once with the
  // continuous-batching engine (batched prefill + KV extension decodes).
  // Both arms get the serving deadline and a queue wide enough to admit
  // every 4x client, so the only variable is the engine — the headline
  // number is the 4x throughput ratio.
  serve::ServeOptions ab_options = options;
  ab_options.queue_capacity = 4 * workers;
  ab_options.default_deadline_ms = deadline_ms;
  // The A/B runs a serve-scale backbone (the paper's is GPT-2-sized; the
  // default config here is sized for single-core training): the engine
  // targets the regime where forwards are dominated by transformer
  // compute, which a d_model-64 two-layer stack never reaches — its
  // requests are all tokenizer, head, and queueing overhead. --fast keeps
  // the tiny config so CI smoke stays cheap.
  core::BigCityConfig ab_config = model_config;
  if (!fast) {
    ab_config.d_model = 256;
    ab_config.num_heads = 8;
    ab_config.num_layers = 6;
  }
  std::vector<LevelResult> arm_off, arm_on;
  ArmCounters on_counters;
  for (int arm = 0; arm < 2; ++arm) {
    serve::ServeOptions arm_options = ab_options;
    const bool arm_batching = arm == 1;
    arm_options.batching = arm_batching;
    if (arm_batching) {
      // Every 4x client's walk may land on any worker; size each worker's
      // session store to hold them all.
      arm_options.kv_sessions = std::max(arm_options.kv_sessions,
                                         4 * workers);
    } else {
      arm_options.tokenizer_cache_slices = 0;
      arm_options.kv_sessions = 0;
    }
    serve::InferenceServer ab_server(&dataset, ab_config, arm_options);
    if (auto status = ab_server.Start(); !status.ok()) {
      std::fprintf(stderr, "A/B server start failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::vector<LevelResult>& arm_levels = arm_batching ? arm_on : arm_off;
    const ArmCounters before = ArmCounters::Capture();
    for (int multiplier : {1, 2, 4}) {
      arm_levels.push_back(RunLevelWalk(ab_server, pool, multiplier, workers,
                                        requests_per_client,
                                        model_config.max_trajectory_tokens));
    }
    if (arm_batching) on_counters = ArmCounters::Capture().DeltaSince(before);
    ab_server.Stop();
  }
  const LevelResult& off_4x = arm_off.back();
  const LevelResult& on_4x = arm_on.back();
  const double speedup_4x = off_4x.Throughput() > 0
                                ? on_4x.Throughput() / off_4x.Throughput()
                                : 0;
  const bool p99_within_deadline =
      on_4x.Percentile(0.99) <= deadline_ms * 1e3;

  // --- Reload under load -------------------------------------------------
  // 2x clients hammer a second server while a new version is published
  // mid-run: the canary/rolling swap must complete with every request
  // still getting a definite outcome, and the latency percentiles across
  // the whole phase (staging, canary, swap) are the interesting number.
  LevelResult reload;
  reload.multiplier = 2;
  reload.clients = 2 * workers;
  bool swap_completed = false;
  int served_by_new_version = 0;
  {
    const std::string model_dir =
        (std::filesystem::temp_directory_path() / "bigcity_bench_reload")
            .string();
    std::filesystem::remove_all(model_dir);
    std::filesystem::create_directories(model_dir);
    serve::ServeOptions reload_options = options;
    // A real deployment swaps under a latency SLO; give every request the
    // deadline the JSON reports so "p99 within deadline" is checkable.
    reload_options.default_deadline_ms = 250;
    reload_options.rollout.model_dir = model_dir;
    reload_options.rollout.poll_interval_ms = 20;
    // The latency criterion is effectively disabled (the staged replica
    // keeps hitting cold per-trajectory caches for the whole canary
    // window under this pool, which is exactly the false-positive the
    // gate's slow-start exists for, magnified by 2x overload): this is a
    // throughput bench measuring swap mechanics, not gate sensitivity —
    // rollout_test and chaos_soak cover the gate.
    reload_options.rollout.canary_min_requests = 32;
    reload_options.rollout.canary_slow_start_samples = 16;
    reload_options.rollout.canary_latency_inflation = 1000.0;
    serve::InferenceServer reload_server(&dataset, model_config,
                                         reload_options);
    if (auto status = reload_server.Start(); !status.ok()) {
      std::fprintf(stderr, "reload server start failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::vector<std::vector<double>> per_client_latencies(
        static_cast<size_t>(reload.clients));
    std::atomic<bool> stop{false};
    std::atomic<int> ok{0}, shed{0}, other{0}, issued{0}, new_version{0};
    obs::WallTimer watch;
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(reload.clients));
    for (int c = 0; c < reload.clients; ++c) {
      clients.emplace_back([&, c] {
        auto& latencies = per_client_latencies[static_cast<size_t>(c)];
        for (int r = 0; !stop.load(std::memory_order_relaxed); ++r) {
          serve::Request request;
          request.task = core::Task::kNextHop;
          request.trajectory =
              pool[static_cast<size_t>(c * 131 + r) % pool.size()];
          issued++;
          serve::Response response = reload_server.ServeSync(
              std::move(request));
          if (response.status.ok()) {
            ok++;
            latencies.push_back(response.total_us);
            if (response.model_version == 1) new_version++;
          } else if (response.outcome == serve::Outcome::kShed) {
            shed++;
            // Back off instead of spin-retrying into the full queue, so
            // the issue rate (and hence the shed rate) stays a property
            // of the 2x overload, not of how fast sheds bounce.
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          } else {
            other++;
          }
        }
      });
    }
    // Let the load settle, then publish a same-architecture variant and
    // wait for the rollout to promote it.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    core::BigCityConfig variant_config = model_config;
    variant_config.seed = model_config.seed + 17;
    auto published = serve::PublishModel(
        model_dir, core::BigCityModel(&dataset, variant_config));
    if (published.ok()) {
      swap_completed =
          reload_server.WaitForStableVersion(published.value(), 60000);
    } else {
      std::fprintf(stderr, "reload publish failed: %s\n",
                   published.status().ToString().c_str());
    }
    // A short post-swap tail so the percentiles include new-version serving.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    stop.store(true, std::memory_order_relaxed);
    for (auto& client : clients) client.join();
    reload_server.Stop();
    reload.seconds = watch.ElapsedSeconds();
    reload.issued = issued.load();
    reload.ok = ok.load();
    reload.shed = shed.load();
    reload.other = other.load();
    served_by_new_version = new_version.load();
    for (auto& latencies : per_client_latencies) {
      reload.latencies_us.insert(reload.latencies_us.end(),
                                 latencies.begin(), latencies.end());
    }
    std::sort(reload.latencies_us.begin(), reload.latencies_us.end());
    std::filesystem::remove_all(model_dir);
  }
  if (reload.ok + reload.shed + reload.other != reload.issued) {
    std::fprintf(stderr,
                 "reload: %d requests without a definite outcome\n",
                 reload.issued - reload.ok - reload.shed - reload.other);
    return 1;
  }

  // --- Hang under load ---------------------------------------------------
  // 2x clients hammer a watchdog-enabled server while one worker is wedged
  // mid-request by the stall fault: the watchdog must reap the hung worker
  // (its in-flight requests fail fast with kDeadlineExceeded), spin up a
  // replacement, and throughput must recover to the pre-hang baseline —
  // recovery_ms is the headline number.
  LevelResult hang;
  hang.multiplier = 2;
  hang.clients = 2 * workers;
  double prehang_rps = 0, posthang_rps = 0, recovery_ms = -1;
  uint64_t hang_reaps = 0, hang_replacements = 0;
  int hang_deadline = 0;
  const double hang_threshold_ms = 100;
  {
    serve::ServeOptions hang_options = options;
    // Queue wide enough for the closed loop so sheds don't muddy the
    // throughput signal; the variable under test is the reap.
    hang_options.queue_capacity = 4 * workers;
    hang_options.hang_threshold_ms = hang_threshold_ms;
    hang_options.watchdog_poll_ms = 5;
    serve::InferenceServer hang_server(&dataset, model_config, hang_options);
    if (auto status = hang_server.Start(); !status.ok()) {
      std::fprintf(stderr, "hang server start failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::vector<std::vector<double>> per_client_latencies(
        static_cast<size_t>(hang.clients));
    std::atomic<bool> stop{false};
    std::atomic<int> ok{0}, shed{0}, other{0}, issued{0}, deadline_failed{0};
    obs::WallTimer watch;
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(hang.clients));
    for (int c = 0; c < hang.clients; ++c) {
      clients.emplace_back([&, c] {
        auto& latencies = per_client_latencies[static_cast<size_t>(c)];
        for (int r = 0; !stop.load(std::memory_order_relaxed); ++r) {
          serve::Request request;
          request.task = core::Task::kNextHop;
          request.trajectory =
              pool[static_cast<size_t>(c * 131 + r) % pool.size()];
          issued++;
          serve::Response response =
              hang_server.ServeSync(std::move(request));
          if (response.status.ok()) {
            ok++;
            latencies.push_back(response.total_us);
          } else if (response.outcome == serve::Outcome::kShed) {
            shed++;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          } else if (response.status.code() ==
                     util::StatusCode::kDeadlineExceeded) {
            deadline_failed++;
          } else {
            other++;
          }
        }
      });
    }
    // OK-responses-per-second over one observation window of the loop.
    auto ok_rate = [&ok](double window_ms) {
      const int before = ok.load(std::memory_order_relaxed);
      obs::WallTimer window;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(window_ms));
      const double seconds = window.ElapsedSeconds();
      return seconds > 0
                 ? (ok.load(std::memory_order_relaxed) - before) / seconds
                 : 0.0;
    };
    // Baseline: the smaller of two windows, so one lucky window can't set
    // an unreachable recovery bar.
    prehang_rps = std::min(ok_rate(300), ok_rate(300));
    // Wedge one worker far past the threshold; Disarm below releases the
    // parked thread once the reap is confirmed.
    util::FaultInjection::Arm(util::kFaultServeWorkerStall, 0, 1, 60000);
    obs::WallTimer reap_watch;
    while (hang_server.watchdog_reaps() == 0 &&
           reap_watch.ElapsedSeconds() < 10) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    util::FaultInjection::Disarm(util::kFaultServeWorkerStall);
    if (hang_server.watchdog_reaps() == 0) {
      std::fprintf(stderr, "hang: wedged worker was never reaped\n");
      stop.store(true, std::memory_order_relaxed);
      for (auto& client : clients) client.join();
      hang_server.Stop();
      return 1;
    }
    obs::WallTimer recovery_watch;
    while (recovery_watch.ElapsedSeconds() < 10) {
      if (ok_rate(100) >= 0.9 * prehang_rps) {
        recovery_ms = recovery_watch.ElapsedSeconds() * 1e3;
        break;
      }
    }
    posthang_rps = ok_rate(300);
    stop.store(true, std::memory_order_relaxed);
    for (auto& client : clients) client.join();
    hang_reaps = hang_server.watchdog_reaps();
    hang_replacements = hang_server.watchdog_replacements();
    hang_server.Stop();
    hang.seconds = watch.ElapsedSeconds();
    hang.issued = issued.load();
    hang.ok = ok.load();
    hang.shed = shed.load();
    hang.other = other.load();
    hang_deadline = deadline_failed.load();
    for (auto& latencies : per_client_latencies) {
      hang.latencies_us.insert(hang.latencies_us.end(), latencies.begin(),
                               latencies.end());
    }
    std::sort(hang.latencies_us.begin(), hang.latencies_us.end());
  }
  if (hang.ok + hang.shed + hang.other + hang_deadline != hang.issued) {
    std::fprintf(stderr, "hang: %d requests without a definite outcome\n",
                 hang.issued - hang.ok - hang.shed - hang.other -
                     hang_deadline);
    return 1;
  }

  util::TablePrinter table(
      {"Load", "Clients", "Issued", "OK", "Shed rate", "Batch", "Req/s",
       "p50 ms", "p95 ms", "p99 ms"});
  for (const LevelResult& level : levels) {
    AddTableRow(&table, std::to_string(level.multiplier) + "x", level);
  }
  for (const LevelResult& level : arm_off) {
    AddTableRow(&table, std::to_string(level.multiplier) + "x off", level);
  }
  for (const LevelResult& level : arm_on) {
    AddTableRow(&table, std::to_string(level.multiplier) + "x on", level);
  }
  AddTableRow(&table, "2x+swap", reload);
  AddTableRow(&table, "2x+hang", hang);
  table.Print();
  std::printf("batching A/B at 4x load: %.1f -> %.1f req/s (%.2fx), mean "
              "batch %.2f, p99 %s %.0fms deadline\n",
              off_4x.Throughput(), on_4x.Throughput(), speedup_4x,
              on_4x.MeanBatchSize(),
              p99_within_deadline ? "within" : "OVER", deadline_ms);
  std::printf("batching-on caches: kv %llu hit / %llu miss, tokenizer "
              "%llu hit / %llu miss, %llu batch fallbacks\n",
              static_cast<unsigned long long>(on_counters.kv_hit),
              static_cast<unsigned long long>(on_counters.kv_miss),
              static_cast<unsigned long long>(on_counters.tok_hit),
              static_cast<unsigned long long>(on_counters.tok_miss),
              static_cast<unsigned long long>(on_counters.batch_fallback));
  std::printf("reload under load: swap %s, %d responses served by the new "
              "version\n",
              swap_completed ? "completed" : "DID NOT COMPLETE",
              served_by_new_version);
  if (recovery_ms >= 0) {
    std::printf("hang under load: %.1f -> %.1f req/s, recovered to 90%% of "
                "baseline in %.0f ms (%llu reap%s, %llu replacement%s, "
                "%d reaped requests)\n",
                prehang_rps, posthang_rps, recovery_ms,
                static_cast<unsigned long long>(hang_reaps),
                hang_reaps == 1 ? "" : "s",
                static_cast<unsigned long long>(hang_replacements),
                hang_replacements == 1 ? "" : "s", hang_deadline);
  } else {
    std::printf("hang under load: %.1f -> %.1f req/s, DID NOT RECOVER to "
                "90%% of baseline within 10s (%llu reaps)\n",
                prehang_rps, posthang_rps,
                static_cast<unsigned long long>(hang_reaps));
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"city\": \"%s\",\n"
               "  \"workers\": %d,\n"
               "  \"kernel_threads\": %d,\n"
               "  \"queue_capacity\": %d,\n"
               "  \"requests_per_client\": %d,\n"
               "  \"levels\": [\n",
               city.c_str(), workers, threads, workers, requests_per_client);
  for (size_t i = 0; i < levels.size(); ++i) {
    PrintJsonLevel(f, "    ", levels[i], i + 1 < levels.size());
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"batching\": {\n"
               "    \"batch_max\": %d,\n"
               "    \"batch_window_us\": %.1f,\n"
               "    \"deadline_ms\": %.1f,\n"
               "    \"queue_capacity\": %d,\n"
               "    \"d_model\": %lld,\n"
               "    \"num_layers\": %lld,\n"
               "    \"off\": [\n",
               batch_max, batch_window_us, deadline_ms,
               ab_options.queue_capacity,
               static_cast<long long>(ab_config.d_model),
               static_cast<long long>(ab_config.num_layers));
  for (size_t i = 0; i < arm_off.size(); ++i) {
    PrintJsonLevel(f, "      ", arm_off[i], i + 1 < arm_off.size());
  }
  std::fprintf(f, "    ],\n    \"on\": [\n");
  for (size_t i = 0; i < arm_on.size(); ++i) {
    PrintJsonLevel(f, "      ", arm_on[i], i + 1 < arm_on.size());
  }
  std::fprintf(f,
               "    ],\n"
               "    \"speedup_4x\": %.3f,\n"
               "    \"mean_batch_size_4x\": %.3f,\n"
               "    \"p99_within_deadline\": %s,\n"
               "    \"counters\": {\"serve.cache.kv.hit\": %llu, "
               "\"serve.cache.kv.miss\": %llu, "
               "\"serve.cache.tokenizer.hit\": %llu, "
               "\"serve.cache.tokenizer.miss\": %llu, "
               "\"serve.batch.fallback\": %llu}\n"
               "  },\n",
               speedup_4x, on_4x.MeanBatchSize(),
               p99_within_deadline ? "true" : "false",
               static_cast<unsigned long long>(on_counters.kv_hit),
               static_cast<unsigned long long>(on_counters.kv_miss),
               static_cast<unsigned long long>(on_counters.tok_hit),
               static_cast<unsigned long long>(on_counters.tok_miss),
               static_cast<unsigned long long>(on_counters.batch_fallback));
  std::fprintf(f,
               "  \"reload\": {\"load_multiplier\": 2, \"clients\": %d, "
               "\"issued\": %d, \"ok\": %d, \"shed\": %d, \"other\": %d, "
               "\"seconds\": %.4f, \"throughput_rps\": %.2f, "
               "\"shed_rate\": %.4f, \"p50_us\": %.1f, \"p95_us\": %.1f, "
               "\"p99_us\": %.1f, \"deadline_ms\": 250, "
               "\"swap_completed\": %s, "
               "\"served_by_new_version\": %d},\n",
               reload.clients, reload.issued, reload.ok, reload.shed,
               reload.other, reload.seconds, reload.Throughput(),
               reload.ShedRate(), reload.Percentile(0.5),
               reload.Percentile(0.95), reload.Percentile(0.99),
               swap_completed ? "true" : "false", served_by_new_version);
  std::fprintf(f,
               "  \"hang\": {\"load_multiplier\": 2, \"clients\": %d, "
               "\"issued\": %d, \"ok\": %d, \"shed\": %d, "
               "\"reaped\": %d, \"other\": %d, \"seconds\": %.4f, "
               "\"hang_threshold_ms\": %.1f, "
               "\"prehang_rps\": %.2f, \"posthang_rps\": %.2f, "
               "\"recovery_ms\": %.1f, \"recovered\": %s, "
               "\"reaps\": %llu, \"replacements\": %llu, "
               "\"p50_us\": %.1f, \"p99_us\": %.1f}\n",
               hang.clients, hang.issued, hang.ok, hang.shed, hang_deadline,
               hang.other, hang.seconds, hang_threshold_ms, prehang_rps,
               posthang_rps, recovery_ms,
               recovery_ms >= 0 ? "true" : "false",
               static_cast<unsigned long long>(hang_reaps),
               static_cast<unsigned long long>(hang_replacements),
               hang.Percentile(0.5), hang.Percentile(0.99));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  if (!trace_out.empty()) {
    std::string error;
    if (!obs::TraceBuffer::Global().WriteJson(trace_out, &error)) {
      std::fprintf(stderr, "trace export failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("wrote trace (%zu events, %llu dropped) to %s\n",
                obs::TraceBuffer::Global().size(),
                static_cast<unsigned long long>(
                    obs::TraceBuffer::Global().dropped()),
                trace_out.c_str());
  }
  return 0;
}
