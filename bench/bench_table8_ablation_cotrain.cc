// Reproduces Table VIII: ablations on multi-task co-training (XA). Stage-2
// prompt tuning runs with different task subsets; metrics are next-hop ACC,
// TTE MAE, and multi-step traffic MAPE. The paper's finding: the more
// heterogeneous the co-trained tasks, the larger the gains.
#include <cstdio>
#include <optional>

#include "bench/common.h"
#include "util/table_printer.h"

namespace bigcity {
namespace {

struct Result {
  std::optional<double> next_acc, tte_mae, mstep_mape;
};

Result RunSubset(const data::CityDataset& dataset,
                 const std::vector<core::Task>& tasks,
                 const std::string& cache_key) {
  train::TrainConfig train_config = bench::BenchTrainConfig();
  train_config.tasks = tasks;
  train_config.stage2_epochs = 3;
  train_config.max_task_samples = 80;
  auto model = bench::TrainedBigCity(&dataset, core::BigCityConfig{},
                                     train_config, cache_key);
  train::EvalConfig eval_config = bench::BenchEvalConfig();
  eval_config.max_samples = 90;
  train::Evaluator evaluator(model.get(), eval_config);
  Result result;
  auto trained = [&](core::Task task) {
    return std::find(tasks.begin(), tasks.end(), task) != tasks.end();
  };
  if (trained(core::Task::kNextHop)) {
    result.next_acc = evaluator.EvaluateNextHop().accuracy;
  }
  if (trained(core::Task::kTravelTimeEstimation)) {
    result.tte_mae = evaluator.EvaluateTravelTime().mae;
  }
  if (trained(core::Task::kTrafficMultiStep)) {
    result.mstep_mape = evaluator.EvaluateTrafficPrediction(6).mape;
  }
  std::fprintf(stderr, "[table8] subset %s evaluated\n", cache_key.c_str());
  return result;
}

std::string Cell(const std::optional<double>& value, int decimals) {
  return value.has_value() ? bench::Fmt(*value, decimals) : "-";
}

}  // namespace
}  // namespace bigcity

int main() {
  using bigcity::core::Task;
  std::printf("Table VIII reproduction: ablations on stage-2 co-training "
              "task subsets (XA).\n");
  bigcity::data::CityDataset dataset(bigcity::bench::BenchCity("XA"));

  bigcity::util::TablePrinter table(
      {"Tasks", "ACC↑ (Next)", "MAE↓ (TTE)", "MAPE↓ (M-Step)"});
  struct Subset {
    std::string name;
    std::vector<Task> tasks;
    std::string key;
  };
  const std::vector<Subset> subsets = {
      {"Next", {Task::kNextHop}, "cotrain_next"},
      {"TTE", {Task::kTravelTimeEstimation}, "cotrain_tte"},
      {"MS", {Task::kTrafficMultiStep}, "cotrain_ms"},
      {"MS+Next", {Task::kTrafficMultiStep, Task::kNextHop}, "cotrain_msnext"},
      {"TTE+Next",
       {Task::kTravelTimeEstimation, Task::kNextHop},
       "cotrain_ttenext"},
      {"All",
       {Task::kNextHop, Task::kTravelTimeEstimation, Task::kTrafficMultiStep},
       "cotrain_all3"},
  };
  for (const auto& subset : subsets) {
    auto result = bigcity::RunSubset(dataset, subset.tasks, subset.key);
    table.AddRow({subset.name, bigcity::Cell(result.next_acc, 3),
                  bigcity::Cell(result.tte_mae, 2),
                  bigcity::Cell(result.mstep_mape, 2)});
  }
  table.Print();
  return 0;
}
