// Reproduces Table IX: training-efficiency comparison on XA — memory
// footprint (parameter bytes; the CPU analogue of the paper's GPU usage),
// stage-1 (representation pre-training) and stage-2 (task tuning) epoch
// times for Traj2vec, Toast, START, and BIGCity. The paper's finding to
// reproduce: BIGCity has by far the most parameters yet moderate epoch
// times, because only the LoRA adapters train.
#include <cstdio>
#include <memory>

#include "baselines/traj/attn_encoders.h"
#include "baselines/traj/rnn_encoders.h"
#include "baselines/traj/start_encoder.h"
#include "baselines/traj/traj_harness.h"
#include "bench/common.h"
#include "obs/timer.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace bigcity {
namespace {

struct EfficiencyRow {
  std::string model;
  int64_t parameters = 0;
  int64_t trainable = 0;
  double stage1_seconds = 0;  // Representation-training epoch.
  double stage2_seconds = 0;  // Task-tuning epoch.
};

template <typename Encoder>
EfficiencyRow MeasureBaseline(const std::string& name,
                              const data::CityDataset& dataset) {
  util::Rng rng(5);
  Encoder encoder(&dataset, 32, &rng);
  EfficiencyRow row;
  row.model = name;
  row.parameters = encoder.NumParameters();
  int64_t trainable = 0;
  for (auto& p : encoder.TrainableParameters()) trainable += p.numel();
  row.trainable = trainable;

  baselines::TrajHarnessConfig config;
  config.pretrain_epochs = 1;
  config.task_epochs = 1;
  config.max_train_samples = 150;
  config.eval.max_samples = 10;  // Timing run; evaluation cost irrelevant.
  baselines::TrajTaskHarness harness(&encoder, config);
  obs::WallTimer watch;
  harness.Pretrain();
  row.stage1_seconds = watch.ElapsedSeconds();
  watch.Restart();
  harness.TrainAndEvalTravelTime();
  row.stage2_seconds = watch.ElapsedSeconds();
  std::fprintf(stderr, "[table9] %s measured\n", name.c_str());
  return row;
}

}  // namespace
}  // namespace bigcity

int main() {
  using namespace bigcity;  // NOLINT — bench brevity.
  std::printf("Table IX reproduction: efficiency on XA. Stage-1 = "
              "representation training epoch, Stage-2 = task tuning "
              "epoch.\n");
  data::CityDataset dataset(bench::BenchCity("XA"));

  std::vector<EfficiencyRow> rows;
  rows.push_back(
      MeasureBaseline<baselines::Trajectory2Vec>("Traj2vec", dataset));
  rows.push_back(MeasureBaseline<baselines::Toast>("Toast", dataset));
  rows.push_back(MeasureBaseline<baselines::StartEncoder>("START", dataset));

  {
    core::BigCityModel model(&dataset, core::BigCityConfig{});
    train::TrainConfig config = bench::BenchTrainConfig();
    config.stage1_epochs = 1;
    config.stage2_epochs = 1;
    config.max_stage1_sequences = 150;
    config.max_task_samples = 25;  // ~150 samples over 6 tasks + recovery.
    train::Trainer trainer(&model, config);
    BIGCITY_CHECK(trainer.PretrainBackbone().ok());
    BIGCITY_CHECK(trainer.RunStage1().ok());
    BIGCITY_CHECK(trainer.RunStage2().ok());
    EfficiencyRow row;
    row.model = "BIGCity";
    row.parameters = model.NumParameters();
    int64_t trainable = 0;
    for (auto& p : model.TrainableParameters()) trainable += p.numel();
    row.trainable = trainable;  // After stage 2: LoRA + heads only.
    row.stage1_seconds = trainer.stage1_seconds_per_epoch();
    row.stage2_seconds = trainer.stage2_seconds_per_epoch();
    rows.push_back(row);
  }

  util::TablePrinter table({"Model", "Params", "Trainable", "Memory (MB)",
                            "Stage-1 (s/epoch)", "Stage-2 (s/epoch)"});
  for (const auto& row : rows) {
    table.AddRow({row.model, std::to_string(row.parameters),
                  std::to_string(row.trainable),
                  bench::Fmt(static_cast<double>(row.parameters) * 4.0 /
                                 (1024.0 * 1024.0),
                             2),
                  bench::Fmt(row.stage1_seconds, 2),
                  bench::Fmt(row.stage2_seconds, 2)});
  }
  table.Print();
  std::printf("\n(150 training sequences per epoch for every model; "
              "BIGCity's stage-2 trains only LoRA adapters + heads.)\n");
  return 0;
}
