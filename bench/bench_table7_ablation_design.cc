// Reproduces Table VII: ablations on the model design (XA dataset).
//   w/o-Dyn+Fus : no dynamic encoder, no fusion encoder
//   w/o-Dyn     : no dynamic encoder
//   w/o-Sta+Fus : no static encoder, no fusion encoder
//   w/o-Sta     : no static encoder
//   w/o-Pro     : no task-oriented prompt text
// Tasks whose required encoder is ablated are reported as '-' (as in the
// paper). GAP rows show the relative degradation vs full BIGCity.
#include <cstdio>
#include <optional>

#include "bench/common.h"
#include "util/table_printer.h"

namespace bigcity {
namespace {

struct VariantResult {
  std::string name;
  // Trajectory tasks (absent when the static encoder is ablated).
  std::optional<double> tte_mae, clas_ma_f1, next_acc, simi_hr10, reco_acc;
  // Traffic tasks (absent when the dynamic encoder is ablated).
  std::optional<double> tsi_mape, mstep_mape;
};

VariantResult RunVariant(const data::CityDataset& dataset,
                         const std::string& name,
                         const core::BigCityConfig& config,
                         const std::string& cache_key) {
  // The full model uses the shared bench budget (and cache); ablated
  // variants use a slightly reduced budget.
  train::TrainConfig train_config = bench::BenchTrainConfig();
  if (cache_key != "bigcity_XA") {
    train_config.stage1_epochs = 1;
    train_config.max_stage1_sequences = 120;
    train_config.stage2_epochs = 3;
    train_config.max_task_samples = 60;
  }
  auto model =
      bench::TrainedBigCity(&dataset, config, train_config, cache_key);
  train::EvalConfig eval_config = bench::BenchEvalConfig();
  eval_config.max_samples = 60;
  eval_config.traffic_samples = 50;
  train::Evaluator evaluator(model.get(), eval_config);

  VariantResult result;
  result.name = name;
  if (config.use_static_encoder) {
    result.tte_mae = evaluator.EvaluateTravelTime().mae;
    result.clas_ma_f1 = evaluator.EvaluateUserClassification().macro_f1;
    result.next_acc = evaluator.EvaluateNextHop().accuracy;
    result.simi_hr10 = evaluator.EvaluateSimilarity().hr10;
    result.reco_acc = evaluator.EvaluateRecovery(0.85).accuracy;
  }
  if (config.use_dynamic_encoder &&
      dataset.config().has_dynamic_features) {
    result.tsi_mape = evaluator.EvaluateTrafficImputation(0.25).mape;
    result.mstep_mape = evaluator.EvaluateTrafficPrediction(6).mape;
  }
  std::fprintf(stderr, "[table7] %s evaluated\n", name.c_str());
  return result;
}

std::string Cell(const std::optional<double>& value, int decimals = 3) {
  return value.has_value() ? bench::Fmt(*value, decimals) : "-";
}

std::string Gap(const std::optional<double>& variant,
                const std::optional<double>& full, bool lower_is_better) {
  if (!variant.has_value() || !full.has_value() || *full == 0) return "-";
  const double gap = lower_is_better ? (*variant - *full) / *full
                                     : (*full - *variant) / *full;
  return bench::Fmt(100.0 * gap, 1) + "%";
}

}  // namespace
}  // namespace bigcity

int main() {
  using bigcity::core::BigCityConfig;
  std::printf("Table VII reproduction: ablations on model designs (XA).\n");
  bigcity::data::CityDataset dataset(bigcity::bench::BenchCity("XA"));

  BigCityConfig full_config;
  auto full = bigcity::RunVariant(dataset, "BIGCity", full_config,
                                  "bigcity_XA");

  std::vector<bigcity::VariantResult> variants;
  {
    BigCityConfig config;
    config.use_dynamic_encoder = false;
    config.use_fusion_encoder = false;
    variants.push_back(bigcity::RunVariant(dataset, "w/o-Dyn+Fus", config,
                                           "ablate_dyn_fus"));
  }
  {
    BigCityConfig config;
    config.use_dynamic_encoder = false;
    variants.push_back(
        bigcity::RunVariant(dataset, "w/o-Dyn", config, "ablate_dyn"));
  }
  {
    BigCityConfig config;
    config.use_static_encoder = false;
    config.use_fusion_encoder = false;
    variants.push_back(bigcity::RunVariant(dataset, "w/o-Sta+Fus", config,
                                           "ablate_sta_fus"));
  }
  {
    BigCityConfig config;
    config.use_static_encoder = false;
    variants.push_back(
        bigcity::RunVariant(dataset, "w/o-Sta", config, "ablate_sta"));
  }
  {
    BigCityConfig config;
    config.use_prompts = false;
    variants.push_back(
        bigcity::RunVariant(dataset, "w/o-Pro", config, "ablate_pro"));
  }

  bigcity::util::TablePrinter table(
      {"Variant", "TTE MAE↓", "CLAS Ma-F1↑", "Next ACC↑", "Simi HR10↑",
       "Reco ACC↑", "TSI MAPE↓", "M-Step MAPE↓"});
  auto add = [&](const bigcity::VariantResult& r) {
    table.AddRow({r.name, bigcity::Cell(r.tte_mae, 2),
                  bigcity::Cell(r.clas_ma_f1), bigcity::Cell(r.next_acc),
                  bigcity::Cell(r.simi_hr10), bigcity::Cell(r.reco_acc),
                  bigcity::Cell(r.tsi_mape, 2),
                  bigcity::Cell(r.mstep_mape, 2)});
    table.AddRow({"  GAP", bigcity::Gap(r.tte_mae, full.tte_mae, true),
                  bigcity::Gap(r.clas_ma_f1, full.clas_ma_f1, false),
                  bigcity::Gap(r.next_acc, full.next_acc, false),
                  bigcity::Gap(r.simi_hr10, full.simi_hr10, false),
                  bigcity::Gap(r.reco_acc, full.reco_acc, false),
                  bigcity::Gap(r.tsi_mape, full.tsi_mape, true),
                  bigcity::Gap(r.mstep_mape, full.mstep_mape, true)});
  };
  for (const auto& variant : variants) add(variant);
  table.AddSeparator();
  add(full);
  table.Print();
  return 0;
}
