// End-to-end training throughput benchmark: runs the standard bench-scale
// BIGCity training budget and reports tokens/sec, GEMM GFLOP/s, and the
// tensor-memory high-water mark. Prints a table and writes
// BENCH_train.json in the working directory.
//
// Usage: bench_train [--city XA|BJ|CD] [--threads N] [--out PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/common.h"
#include "nn/kernels/kernels.h"
#include "obs/obs.h"
#include "obs/timer.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace bigcity;  // NOLINT — bench brevity.
  std::string out = "BENCH_train.json";
  std::string city = "XA";
  int threads = nn::kernels::NumThreads();
  bool plans = true;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      threads = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--city") == 0) {
      city = argv[i + 1];
    } else if (std::strcmp(argv[i], "--plans") == 0) {
      plans = std::strcmp(argv[i + 1], "off") != 0;
    } else {
      std::fprintf(stderr,
                   "usage: bench_train [--city XA|BJ|CD] [--threads N] "
                   "[--plans on|off] [--out PATH]\n");
      return 2;
    }
  }
  nn::kernels::SetNumThreads(threads);
  threads = nn::kernels::NumThreads();
  std::printf("BIGCity end-to-end training benchmark (%s, %d thread%s).\n",
              city.c_str(), threads, threads == 1 ? "" : "s");

  data::CityDataset dataset(bench::BenchCity(city));
  core::BigCityConfig model_config;
  model_config.threads = threads;
  core::BigCityModel model(&dataset, model_config);
  train::TrainConfig train_config = bench::BenchTrainConfig();
  train_config.plans = plans;
  train::Trainer trainer(&model, train_config);

  // Count only training work: dataset + model construction already ran.
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t flops_before =
      registry.GetCounter("kernels.gemm.flops")->Value();
  const uint64_t tokens_before = registry.GetCounter("train.tokens")->Value();
  obs::WallTimer watch;
  if (auto status = trainer.RunAll(); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const double seconds = watch.ElapsedSeconds();
  const double gemm_flops = static_cast<double>(
      registry.GetCounter("kernels.gemm.flops")->Value() - flops_before);
  const double tokens = static_cast<double>(
      registry.GetCounter("train.tokens")->Value() - tokens_before);
  // Peak/churn include construction (the tracker is process-global); the
  // peak is hit mid-training regardless, which is the number that matters.
  auto& memory = obs::MemoryTracker::Global();
  const long long peak_bytes = memory.peak_bytes();
  const long long alloc_bytes = memory.alloc_bytes();
  const long long allocs = memory.alloc_count();

  util::TablePrinter table({"Metric", "Value"});
  table.AddRow({"Train seconds", util::TablePrinter::Num(seconds, 2)});
  table.AddRow({"Tokens/sec", util::TablePrinter::Num(tokens / seconds, 1)});
  table.AddRow(
      {"GEMM GFLOP/s", util::TablePrinter::Num(gemm_flops / seconds / 1e9, 2)});
  table.AddRow({"Peak tensor MB",
                util::TablePrinter::Num(peak_bytes / (1024.0 * 1024.0), 1)});
  table.AddRow({"Plan cache hit/miss",
                util::TablePrinter::Num(static_cast<double>(
                    registry.GetCounter("plan.cache.hit")->Value()), 0) +
                    "/" +
                    util::TablePrinter::Num(static_cast<double>(
                        registry.GetCounter("plan.cache.miss")->Value()), 0)});
  table.Print();

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"city\": \"%s\",\n"
               "  \"threads\": %d,\n"
               "  \"train_seconds\": %.3f,\n"
               "  \"tokens\": %.0f,\n"
               "  \"tokens_per_sec\": %.1f,\n"
               "  \"gemm_flops\": %.0f,\n"
               "  \"gemm_gflops_per_sec\": %.3f,\n"
               "  \"peak_live_bytes\": %lld,\n"
               "  \"alloc_bytes\": %lld,\n"
               "  \"allocs\": %lld\n"
               "}\n",
               city.c_str(), threads, seconds, tokens, tokens / seconds,
               gemm_flops, gemm_flops / seconds / 1e9, peak_bytes, alloc_bytes,
               allocs);
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
