// Reproduces Table V: traffic-state tasks on XA and CD — one-step
// prediction, multi-step (6-slice) prediction, and 25% imputation
// (MAE / MAPE / RMSE on speed, m/s) — BIGCity vs the seven traffic
// baselines. Each baseline is trained separately per task; BIGCity uses
// one co-trained parameter set.
#include <cstdio>
#include <functional>
#include <memory>

#include "baselines/traffic/graph_tcn_models.h"
#include "baselines/traffic/norm_attn_models.h"
#include "baselines/traffic/recurrent_models.h"
#include "baselines/traffic/traffic_harness.h"
#include "bench/common.h"
#include "obs/timer.h"
#include "util/table_printer.h"

namespace bigcity {
namespace {

constexpr int64_t kHidden = 24;

using ModelFactory = std::function<std::unique_ptr<baselines::TrafficModel>(
    const data::CityDataset*, int window, int in_channels, int out_dim,
    util::Rng*)>;

template <typename Model>
ModelFactory Factory() {
  return [](const data::CityDataset* dataset, int window, int in_channels,
            int out_dim, util::Rng* rng) {
    return std::unique_ptr<baselines::TrafficModel>(std::make_unique<Model>(
        dataset, window, in_channels, out_dim, kHidden, rng));
  };
}

void AddRow(util::TablePrinter* table, const std::string& data,
            const std::string& model, const train::RegressionMetrics& one,
            const train::RegressionMetrics& multi,
            const train::RegressionMetrics& imputed) {
  table->AddRow({data, model, bench::Fmt(one.mae), bench::Fmt(one.mape, 2),
                 bench::Fmt(one.rmse), bench::Fmt(multi.mae),
                 bench::Fmt(multi.mape, 2), bench::Fmt(multi.rmse),
                 bench::Fmt(imputed.mae), bench::Fmt(imputed.mape, 2),
                 bench::Fmt(imputed.rmse)});
}

void RunCity(const std::string& city, util::TablePrinter* table) {
  data::CityDataset dataset(bench::BenchCity(city));
  baselines::TrafficHarnessConfig harness_config;
  harness_config.epochs = 3;
  harness_config.train_samples = 20;
  harness_config.eval_samples = 30;
  baselines::TrafficTaskHarness harness(&dataset, harness_config);
  const int window = harness_config.window;
  const int channels = data::kTrafficChannels;

  const std::vector<std::pair<std::string, ModelFactory>> factories = {
      {"DCR", Factory<baselines::Dcrnn>()},
      {"GWN", Factory<baselines::GraphWaveNet>()},
      {"MTG", Factory<baselines::Mtgnn>()},
      {"TrG", Factory<baselines::TrGnn>()},
      {"STG", Factory<baselines::StgOde>()},
      {"STN", Factory<baselines::StNorm>()},
      {"SST", Factory<baselines::Sstban>()},
  };
  for (const auto& [name, factory] : factories) {
    obs::WallTimer watch;
    util::Rng rng(99);
    auto one_model = factory(&dataset, window, channels, 1 * channels, &rng);
    auto one = harness.TrainAndEvalPrediction(one_model.get(), 1);
    auto multi_model = factory(&dataset, window, channels, 6 * channels, &rng);
    auto multi = harness.TrainAndEvalPrediction(multi_model.get(), 6);
    auto impute_model =
        factory(&dataset, window, channels + 1, window * channels, &rng);
    auto imputed = harness.TrainAndEvalImputation(impute_model.get(), 0.25);
    AddRow(table, city, name, one, multi, imputed);
    std::fprintf(stderr, "[table5 %s] %s done in %.1fs\n", city.c_str(),
                 name.c_str(), watch.ElapsedSeconds());
  }

  auto model = bench::TrainedBigCity(&dataset, core::BigCityConfig{},
                                     bench::BenchTrainConfig(),
                                     "bigcity_" + city);
  train::Evaluator evaluator(model.get(), bench::BenchEvalConfig());
  AddRow(table, city, "Ours", evaluator.EvaluateTrafficPrediction(1),
         evaluator.EvaluateTrafficPrediction(6),
         evaluator.EvaluateTrafficImputation(0.25));
  table->AddSeparator();
}

}  // namespace
}  // namespace bigcity

int main() {
  std::printf("Table V reproduction: traffic-state tasks (speed channel, "
              "m/s).\nColumns: One-Step | Multi-Step (6) | Imputation "
              "(25%%).\n");
  bigcity::util::TablePrinter table(
      {"Data", "Model", "MAE", "MAPE", "RMSE", "MAE", "MAPE", "RMSE", "MAE",
       "MAPE", "RMSE"});
  for (const std::string city : {"XA", "CD"}) {
    bigcity::RunCity(city, &table);
  }
  table.Print();
  return 0;
}
