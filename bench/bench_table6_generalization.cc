// Reproduces Table VI: cross-city generalization. The backbone trained on
// BJ is combined with a target-city tokenizer whose last MLP (plus heads)
// is fine-tuned on XA / CD; performance loss vs the fully-trained BIGCity
// should stay within a few percent.
#include <cstdio>

#include "bench/common.h"
#include "train/transfer.h"
#include "util/table_printer.h"

namespace bigcity {
namespace {

std::string Loss(double full, double transferred, bool lower_is_better) {
  if (full == 0) return "n/a";
  const double loss = lower_is_better ? (transferred - full) / full
                                      : (full - transferred) / full;
  return bench::Fmt(100.0 * loss, 2) + "%";
}

void RunTarget(const std::string& city, core::BigCityModel* source,
               util::TablePrinter* table) {
  data::CityDataset dataset(bench::BenchCity(city));

  // Fully-trained reference (cached from other benches when available).
  auto full = bench::TrainedBigCity(&dataset, core::BigCityConfig{},
                                    bench::BenchTrainConfig(),
                                    "bigcity_" + city);
  train::Evaluator full_eval(full.get(), bench::BenchEvalConfig());
  auto full_tte = full_eval.EvaluateTravelTime();
  auto full_next = full_eval.EvaluateNextHop();
  auto full_clas = full_eval.EvaluateUserClassification();

  // Transferred: BJ backbone + target tokenizer, tokenizer-MLP + heads
  // fine-tuned only.
  core::BigCityModel transferred(&dataset, core::BigCityConfig{});
  util::Rng rng(1);
  transferred.backbone()->EnableLora(&rng);
  train::TransferBackbone(source, &transferred);
  train::TrainConfig fine_tune = bench::BenchTrainConfig();
  fine_tune.stage2_epochs = 3;
  train::FineTuneTransferred(&transferred, fine_tune);
  train::Evaluator transfer_eval(&transferred, bench::BenchEvalConfig());
  auto t_tte = transfer_eval.EvaluateTravelTime();
  auto t_next = transfer_eval.EvaluateNextHop();
  auto t_clas = transfer_eval.EvaluateUserClassification();

  table->AddRow({city, "BIGCity", bench::Fmt(full_tte.mae, 2),
                 bench::Fmt(full_tte.rmse, 2), bench::Fmt(full_next.accuracy),
                 bench::Fmt(full_next.mrr5), bench::Fmt(full_clas.micro_f1),
                 bench::Fmt(full_clas.macro_f1)});
  table->AddRow({city, "BIG-BJ", bench::Fmt(t_tte.mae, 2),
                 bench::Fmt(t_tte.rmse, 2), bench::Fmt(t_next.accuracy),
                 bench::Fmt(t_next.mrr5), bench::Fmt(t_clas.micro_f1),
                 bench::Fmt(t_clas.macro_f1)});
  table->AddRow({city, "Loss", Loss(full_tte.mae, t_tte.mae, true),
                 Loss(full_tte.rmse, t_tte.rmse, true),
                 Loss(full_next.accuracy, t_next.accuracy, false),
                 Loss(full_next.mrr5, t_next.mrr5, false),
                 Loss(full_clas.micro_f1, t_clas.micro_f1, false),
                 Loss(full_clas.macro_f1, t_clas.macro_f1, false)});
  table->AddSeparator();
}

}  // namespace
}  // namespace bigcity

int main() {
  std::printf("Table VI reproduction: cross-city generalization (backbone "
              "trained on BJ, tokenizer-MLP + heads fine-tuned on target).\n");
  bigcity::data::CityDataset source_city(bigcity::bench::BenchCity("BJ"));
  auto source = bigcity::bench::TrainedBigCity(
      &source_city, bigcity::core::BigCityConfig{},
      bigcity::bench::BenchTrainConfig(), "bigcity_BJ");

  bigcity::util::TablePrinter table({"Data", "Model", "TTE MAE↓",
                                     "TTE RMSE↓", "Next ACC↑", "Next MRR@5↑",
                                     "CLAS Mi-F1↑", "CLAS Ma-F1↑"});
  for (const std::string city : {"XA", "CD"}) {
    bigcity::RunTarget(city, source.get(), &table);
  }
  table.Print();
  std::printf("\n'Loss' rows: relative degradation of the transferred model "
              "(positive = worse than fully-trained).\n");
  return 0;
}
