// Reproduces Table III: trajectory non-generative tasks (travel time
// estimation, trajectory classification, next-hop prediction, most-similar
// search) on the BJ / XA / CD cities — BIGCity vs the seven trajectory-
// representation baselines. Baselines are pre-trained self-supervised and
// fine-tuned per task; BIGCity serves all tasks with one parameter set.
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "baselines/traj/attn_encoders.h"
#include "baselines/traj/jgrm_encoder.h"
#include "baselines/traj/rnn_encoders.h"
#include "baselines/traj/start_encoder.h"
#include "baselines/traj/traj_harness.h"
#include "bench/common.h"
#include "obs/timer.h"
#include "util/table_printer.h"

namespace bigcity {
namespace {

constexpr int64_t kBaselineDim = 32;

struct Row {
  std::string model;
  train::RegressionMetrics tte;
  // Classification: binary (BJ) or user linkage (XA/CD).
  train::BinaryClassMetrics binary;
  train::MultiClassMetrics users;
  train::RankingMetrics next;
  train::SimilarityMetrics simi;
};

using EncoderFactory = std::function<std::unique_ptr<baselines::TrajEncoder>(
    const data::CityDataset*, util::Rng*)>;

template <typename Encoder>
EncoderFactory Factory() {
  return [](const data::CityDataset* dataset, util::Rng* rng) {
    return std::unique_ptr<baselines::TrajEncoder>(
        std::make_unique<Encoder>(dataset, kBaselineDim, rng));
  };
}

void PrintCityTable(const std::string& city, bool user_classification,
                    const std::vector<Row>& rows) {
  std::vector<std::string> header = {"Model", "MAE↓", "RMSE↓", "MAPE↓"};
  if (user_classification) {
    header.insert(header.end(), {"Mi-F1↑", "Ma-F1↑", "Ma-Re↑"});
  } else {
    header.insert(header.end(), {"ACC↑", "F1↑", "AUC↑"});
  }
  header.insert(header.end(),
                {"ACC↑", "MRR@5↑", "NDC@5↑", "HR@1↑", "HR@5↑", "HR@10↑"});
  util::TablePrinter table(header);
  for (const auto& row : rows) {
    std::vector<std::string> cells = {
        row.model, bench::Fmt(row.tte.mae, 3), bench::Fmt(row.tte.rmse, 3),
        bench::Fmt(row.tte.mape, 2)};
    if (user_classification) {
      cells.insert(cells.end(), {bench::Fmt(row.users.micro_f1),
                                 bench::Fmt(row.users.macro_f1),
                                 bench::Fmt(row.users.macro_recall)});
    } else {
      cells.insert(cells.end(), {bench::Fmt(row.binary.accuracy),
                                 bench::Fmt(row.binary.f1),
                                 bench::Fmt(row.binary.auc)});
    }
    cells.insert(cells.end(),
                 {bench::Fmt(row.next.accuracy), bench::Fmt(row.next.mrr5),
                  bench::Fmt(row.next.ndcg5), bench::Fmt(row.simi.hr1),
                  bench::Fmt(row.simi.hr5), bench::Fmt(row.simi.hr10)});
    table.AddRow(cells);
  }
  std::printf("\n=== Table III (%s): Travel Time Estimation | Trajectory "
              "Classification | Next Hop | Most Similar Search ===\n",
              city.c_str());
  table.Print();
}

void RunCity(const std::string& city) {
  data::CityDataset dataset(bench::BenchCity(city));
  const bool user_classification = dataset.config().has_dynamic_features;
  std::vector<Row> rows;

  // Baselines: one encoder instance per model; self-supervised pre-train
  // once, then per-task fine-tuning inside the harness.
  const std::vector<std::pair<std::string, EncoderFactory>> factories = {
      {"Tr2v", Factory<baselines::Trajectory2Vec>()},
      {"T2v", Factory<baselines::T2Vec>()},
      {"TBR", Factory<baselines::TremBr>()},
      {"Toa", Factory<baselines::Toast>()},
      {"JCL", Factory<baselines::Jclrnt>()},
      {"STA", Factory<baselines::StartEncoder>()},
      {"JRM", Factory<baselines::JgrmEncoder>()},
  };
  for (const auto& [name, factory] : factories) {
    obs::WallTimer watch;
    util::Rng rng(2024);
    auto encoder = factory(&dataset, &rng);
    baselines::TrajHarnessConfig config;
    config.pretrain_epochs = 2;
    config.task_epochs = 2;
    config.max_train_samples = 150;
    config.eval = bench::BenchEvalConfig();
    baselines::TrajTaskHarness harness(encoder.get(), config);
    harness.Pretrain();
    Row row;
    row.model = name;
    row.tte = harness.TrainAndEvalTravelTime();
    if (user_classification) {
      row.users = harness.TrainAndEvalUserClassification();
    } else {
      row.binary = harness.TrainAndEvalBinaryClassification();
    }
    row.next = harness.TrainAndEvalNextHop();
    row.simi = harness.EvalSimilarity();
    rows.push_back(row);
    std::fprintf(stderr, "[table3 %s] %s done in %.1fs\n", city.c_str(),
                 name.c_str(), watch.ElapsedSeconds());
  }

  // BIGCity: single co-trained model, no per-task fine-tuning.
  auto model = bench::TrainedBigCity(&dataset, core::BigCityConfig{},
                                     bench::BenchTrainConfig(),
                                     "bigcity_" + city);
  train::Evaluator evaluator(model.get(), bench::BenchEvalConfig());
  Row ours;
  ours.model = "Ours";
  ours.tte = evaluator.EvaluateTravelTime();
  if (user_classification) {
    ours.users = evaluator.EvaluateUserClassification();
  } else {
    ours.binary = evaluator.EvaluateBinaryClassification();
  }
  ours.next = evaluator.EvaluateNextHop();
  ours.simi = evaluator.EvaluateSimilarity();
  rows.push_back(ours);

  PrintCityTable(city, user_classification, rows);
}

}  // namespace
}  // namespace bigcity

int main() {
  std::printf("Table III reproduction: trajectory-based non-generative "
              "tasks.\nNOTE: synthetic bench-scale cities; compare SHAPE "
              "(which model wins, rough ratios), not absolute values.\n");
  for (const std::string city : {"BJ", "XA", "CD"}) {
    bigcity::RunCity(city);
  }
  return 0;
}
