#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml: every CI job runs this script
# with its job name, so "works in CI" and "works locally" are the same code
# path by construction.
#
# usage: ci/run_ci.sh [release|sanitize|tsan|obs-off|all]
#
# Jobs:
#   release  Release build, full ctest (includes the bench_gate perf smoke
#            with its kernel/train/serve gates), format_check, a 2-epoch
#            bigcity_cli train smoke on --threads 2 that validates the
#            trace / run-report / metrics outputs, a high-concurrency serve
#            smoke (bench_serve --fast + bigcity_cli serve) that validates
#            BENCH_serve.json and the serve metrics snapshot — including
#            that the continuous batcher actually coalesced (mean batch
#            size > 1) and that the hang-injection section saw the watchdog
#            reap + replace a wedged worker — and a fixed-seed rollout
#            smoke (chaos_soak) validating the hot-swap/canary/rollback and
#            self-healing (stall/leak) invariants and report JSON. Artifact
#            JSON checks live in ci/validate_artifacts.py.
#   sanitize Debug build with ASan+UBSan running the resilience_check,
#            kernels_check, and serve_check suites (the latter includes the
#            watchdog/overload tests) plus a short --threads 2 CLI smoke
#            and a short rollout smoke whose schedule includes the
#            leak-site memory-pressure scenario.
#   tsan     RelWithDebInfo build with TSan running the serve_check suite
#            (server, batcher, KV session store, thread pool, watchdog)
#            plus a short batched serve smoke — the batching engine's
#            cross-thread handoffs (batcher queues, shared tokenizer/KV
#            caches, promise completion) and the watchdog's hang-injection
#            reap/replace path must be clean under the race detector.
#   obs-off  Release build with -DBIGCITY_OBS=OFF proving every probe
#            compiles out and the full suite still passes.
set -euo pipefail
cd "$(dirname "$0")/.."

JOB="${1:-all}"
PAR="${CI_PARALLELISM:-$(nproc)}"

log() { printf '\n=== %s ===\n' "$*"; }

# Validates the observability artifacts of a CLI train smoke run.
check_obs_outputs() {
  local dir="$1"
  local span
  grep -q '"traceEvents"' "$dir/trace.json"
  for span in data forward backward optim; do
    grep -q "\"name\":\"$span\"" "$dir/trace.json" ||
      { echo "missing $span span in trace.json" >&2; return 1; }
  done
  grep -q '"tokens_per_sec"' "$dir/report.jsonl"
  grep -q '"gemm_flops"' "$dir/report.jsonl"
  grep -q '"event":"summary"' "$dir/report.jsonl"
  grep -q '"event":"health"' "$dir/report.jsonl"
  grep -q '"kernels.gemm.flops"' "$dir/metrics.json"
  grep -q '"p95"' "$dir/metrics.json"
  # Execution plans (DESIGN.md §4.13) must actually engage: a training
  # smoke with plans on replays from the cache after one capture per stage.
  grep -q '"plan.cache.hit"' "$dir/metrics.json"
  grep -q '"plan.arena.bytes"' "$dir/metrics.json"
  grep -q '"ops"' "$dir/profile.json"
  grep -q '"modules"' "$dir/profile.json"
  # Every artifact must be machine-readable, not just grep-able: the JSON
  # files parse whole, the report parses line by line.
  if command -v python3 > /dev/null; then
    python3 ci/validate_artifacts.py train "$dir"
  fi
  echo "obs outputs ok: $(wc -l < "$dir/report.jsonl") report records"
}

train_smoke() {
  local build="$1" job="$2"; shift 2
  # Persistent artifact dir (uploaded by CI, .gitignored locally) instead
  # of a temp dir, so the trace/report/metrics/profile of every smoke run
  # are inspectable after the job finishes.
  local out="ci-artifacts/$job"
  rm -rf "$out"
  mkdir -p "$out"
  "$build/tools/bigcity_cli" train --city XA --scale 0.2 --threads 2 \
    --save "$out/model.bin" --trace-out "$out/trace.json" \
    --run-report "$out/report.jsonl" --metrics-out "$out/metrics.json" \
    --profile "$out/profile.json" --health-every 5 "$@"
  check_obs_outputs "$out"
}

# High-concurrency serve smoke: closed-loop bench at 1x/2x/4x load (at 4x
# the client count is 4x the worker count, so the continuous batcher must
# coalesce — the validator asserts mean batch size > 1) plus a CLI serve
# replay, validating that BENCH_serve.json and the serve metrics snapshot
# are machine-readable and carry the batching/cache fields.
serve_smoke() {
  local build="$1" job="$2"
  local out="ci-artifacts/$job"
  mkdir -p "$out"
  log "$job: serve smoke (bench_serve --fast, 4 workers x 3 load levels)"
  (cd "$out" && "../../$build/bench/bench_serve" --fast --workers 4 \
    --requests 8 --trace-out serve_trace.json)
  grep -q '"shed_rate"' "$out/BENCH_serve.json"
  grep -q '"throughput_rps"' "$out/BENCH_serve.json"
  grep -q '"p95_us"' "$out/BENCH_serve.json"
  grep -q '"mean_batch_size"' "$out/BENCH_serve.json"
  # The hang-injection section ran: a wedged worker was reaped and
  # replaced, and throughput recovered (asserted by the watchdog check).
  grep -q '"recovery_ms"' "$out/BENCH_serve.json"
  log "$job: serve smoke (bigcity_cli serve replay)"
  "$build/tools/bigcity_cli" generate --city XA --scale 0.05 \
    --out "$out/serve_trips.csv"
  "$build/tools/bigcity_cli" serve --city XA --scale 0.05 \
    --requests "$out/serve_trips.csv" --task next --workers 2 --queue 64 \
    --metrics-out "$out/serve_metrics.json" \
    --telemetry-out "$out/serve_telemetry.jsonl" --telemetry-interval-ms 200
  grep -q '"serve.submitted"' "$out/serve_metrics.json"
  grep -q '"serve.e2e_us"' "$out/serve_metrics.json"
  # Per-worker inference plans engaged during the replay.
  grep -q '"plan.cache.hit"' "$out/serve_metrics.json"
  # Batching engaged during the replay, and the shared tokenizer rep
  # cache saw hits across workers.
  grep -q '"serve.batch.size"' "$out/serve_metrics.json"
  grep -q '"serve.cache.tokenizer.hit"' "$out/serve_metrics.json"
  # Live SLO telemetry (DESIGN.md §4.15): the exporter streamed deltas and
  # the snapshot carries the slo.* gauges + batch-wait histogram; the
  # dashboard subcommands render both artifacts.
  grep -q '"event":"telemetry"' "$out/serve_telemetry.jsonl"
  grep -q '"slo.' "$out/serve_metrics.json"
  grep -q '"serve.batch.wait_us"' "$out/serve_metrics.json"
  "$build/tools/bigcity_cli" metrics --in "$out/serve_metrics.json" \
    > "$out/metrics_render.txt"
  grep -q 'serve.e2e_us' "$out/metrics_render.txt"
  "$build/tools/bigcity_cli" top --in "$out/serve_telemetry.jsonl" \
    > "$out/top_render.txt"
  grep -q 'QPS' "$out/top_render.txt"
  if command -v python3 > /dev/null; then
    python3 ci/validate_artifacts.py serve "$out"
    python3 ci/validate_artifacts.py trace "$out"
    python3 ci/validate_artifacts.py watchdog "$out"
  fi
  echo "serve smoke ok"
}

# Model-lifecycle + self-healing gate: a fixed-seed chaos soak (hot-swap,
# canary, rollback, quarantine, wedged-worker stall, injected memory leak
# under mixed-task load) capped well under 150s, then a
# machine-readability + invariant check of its JSON report.
rollout_smoke() {
  local build="$1" job="$2" seconds="$3"
  local out="ci-artifacts/$job"
  mkdir -p "$out"
  log "$job: rollout smoke (chaos_soak --seconds $seconds, fixed seed)"
  timeout 150 "$build/tools/chaos_soak" --seconds "$seconds" --seed 7 \
    --model-dir "$out/chaos_models" --json "$out/chaos_report.json"
  if command -v python3 > /dev/null; then
    python3 ci/validate_artifacts.py rollout "$out"
    python3 ci/validate_artifacts.py watchdog "$out"
  fi
  echo "rollout smoke ok"
}

run_release() {
  log "release: configure + build"
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-ci-release -j"$PAR"
  log "release: full test suite"
  ctest --test-dir build-ci-release --output-on-failure -j"$PAR"
  log "release: format check"
  cmake --build build-ci-release --target format_check
  log "release: CLI train smoke (--threads 2, obs outputs)"
  train_smoke build-ci-release release --epochs1 1 --epochs2 1
  serve_smoke build-ci-release release
  rollout_smoke build-ci-release release 30
}

run_sanitize() {
  log "sanitize: configure + build (ASan+UBSan, Debug)"
  cmake -B build-ci-asan -S . -DCMAKE_BUILD_TYPE=Debug \
    "-DBIGCITY_SANITIZE=address;undefined"
  log "sanitize: resilience suite"
  cmake --build build-ci-asan -j"$PAR" --target resilience_check
  log "sanitize: kernel suite"
  cmake --build build-ci-asan -j"$PAR" --target kernels_check
  log "sanitize: serving suite (admission/deadline/retry/breaker/degrade)"
  cmake --build build-ci-asan -j"$PAR" --target serve_check
  log "sanitize: CLI train smoke (--threads 2)"
  cmake --build build-ci-asan -j"$PAR" --target bigcity_cli
  # Pretrain + one stage-1 epoch only: Debug+ASan makes stage 2 too slow
  # for a smoke, and the guarded-step / kernel paths are all hit by here.
  train_smoke build-ci-asan sanitize --epochs1 1 --epochs2 0
  # Short budget: the soak always completes one full schedule cycle (all
  # nine event kinds, including the stall-reap and leak-shed scenarios)
  # even when Debug+ASan eats the whole time budget.
  cmake --build build-ci-asan -j"$PAR" --target chaos_soak
  rollout_smoke build-ci-asan sanitize 3
}

run_tsan() {
  log "tsan: configure + build (TSan, RelWithDebInfo)"
  # RelWithDebInfo, not Debug: TSan already costs 5-15x and the serving
  # suite spins real worker/batcher/watcher threads under load.
  cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DBIGCITY_SANITIZE=thread
  log "tsan: serving suite (server, batcher, KV sessions, thread pool)"
  cmake --build build-ci-tsan -j"$PAR" --target serve_check
  log "tsan: batched serve smoke (bench_serve --fast, 4 workers)"
  cmake --build build-ci-tsan -j"$PAR" --target bench_serve
  local out="ci-artifacts/tsan"
  rm -rf "$out"
  mkdir -p "$out"
  # The smoke drives the full engine — admission, batcher coalescing,
  # shared tokenizer/KV caches, hot-swap reload — with every cross-thread
  # handoff under the race detector. TSan aborts the run on a report.
  (cd "$out" && "../../build-ci-tsan/bench/bench_serve" --fast --workers 4 \
    --requests 4 --trace-out serve_trace.json)
  grep -q '"mean_batch_size"' "$out/BENCH_serve.json"
  # Request flows must stay connected even under TSan interleavings (no
  # serve_metrics.json here, so the validator checks the trace alone), and
  # the hang-injection section's reap/replace must hold under the race
  # detector too.
  if command -v python3 > /dev/null; then
    python3 ci/validate_artifacts.py trace "$out"
    python3 ci/validate_artifacts.py watchdog "$out"
  fi
  echo "tsan smoke ok"
}

run_obs_off() {
  log "obs-off: configure + build (-DBIGCITY_OBS=OFF)"
  cmake -B build-ci-obsoff -S . -DCMAKE_BUILD_TYPE=Release -DBIGCITY_OBS=OFF
  cmake --build build-ci-obsoff -j"$PAR"
  log "obs-off: full test suite"
  # bench_gate is excluded: its speedup baselines are recorded under the
  # OBS=ON release build (tools/bench_gate --write-baseline), where probe
  # overhead in the naive reference inflates the blocked-kernel speedup.
  # The ratios are not comparable across OBS flavors.
  ctest --test-dir build-ci-obsoff --output-on-failure -j"$PAR" -E bench_gate
}

case "$JOB" in
  release) run_release ;;
  sanitize) run_sanitize ;;
  tsan) run_tsan ;;
  obs-off) run_obs_off ;;
  all)
    run_release
    run_sanitize
    run_tsan
    run_obs_off
    ;;
  *)
    echo "usage: ci/run_ci.sh [release|sanitize|tsan|obs-off|all]" >&2
    exit 2
    ;;
esac

log "ci job '$JOB' passed"
