#!/usr/bin/env python3
"""Machine-readability + invariant checks for CI smoke artifacts.

usage: validate_artifacts.py <train|serve|rollout> <artifact-dir>

Each subcommand validates the JSON artifacts one ci/run_ci.sh smoke
leaves in its ci-artifacts/<job> directory. The checks go beyond
grep-ability: every file must parse whole, and the fields the serving
and training subsystems promise (DESIGN.md §4.9-§4.14) must be present
and non-trivial.
"""
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def validate_train(d):
    """Trace/report/metrics/profile of a bigcity_cli train smoke."""
    for name in ("trace.json", "metrics.json", "profile.json"):
        load(f"{d}/{name}")
    with open(f"{d}/report.jsonl") as f:
        records = [json.loads(line) for line in f]
    assert any(r.get("event") == "epoch" for r in records)
    assert any(r.get("event") == "health" for r in records)
    assert records[-1]["event"] == "summary"
    assert "queue_wait_p95_us" in records[-1]
    metrics = load(f"{d}/metrics.json")
    assert metrics["counters"]["plan.cache.hit"] > 0, "plan cache never hit"
    print(f"train json validation ok: {len(records)} report records")


def validate_serve(d):
    """BENCH_serve.json (bench_serve) + serve_metrics.json (CLI replay)."""
    bench = load(f"{d}/BENCH_serve.json")
    levels = bench["levels"]
    assert [l["load_multiplier"] for l in levels] == [1, 2, 4], levels
    for l in levels:
        assert l["ok"] + l["shed"] + l["other"] == l["issued"], l
        assert l["throughput_rps"] >= 0 and 0 <= l["shed_rate"] <= 1, l
    # The batcher must actually coalesce under backlog: at 4x load the
    # smoke's client count exceeds the worker count, so per-request
    # forwards (mean batch size 1.0) mean the batching engine is off or
    # broken.
    assert levels[-1]["mean_batch_size"] > 1, levels[-1]
    batching = bench["batching"]
    assert batching["mean_batch_size_4x"] > 1, batching
    assert batching["p99_within_deadline"] is True, batching
    counters = batching["counters"]
    assert counters["serve.cache.tokenizer.hit"] > 0, counters
    assert counters["serve.cache.kv.hit"] > 0, counters
    reload_ = bench["reload"]
    assert reload_["swap_completed"] is True, reload_
    assert reload_["served_by_new_version"] > 0, reload_
    assert (reload_["ok"] + reload_["shed"] + reload_["other"]
            == reload_["issued"])
    assert reload_["p99_us"] > 0 and 0 <= reload_["shed_rate"] <= 1, reload_
    # The hot-swap must not push admitted-request p99 past the serving SLO.
    assert reload_["p99_us"] <= reload_["deadline_ms"] * 1000, reload_
    metrics = load(f"{d}/serve_metrics.json")
    batch_size = metrics["histograms"]["serve.batch.size"]
    assert batch_size["count"] > 0, batch_size
    assert batch_size["sum"] / batch_size["count"] > 1, batch_size
    assert metrics["counters"]["serve.cache.tokenizer.hit"] > 0, (
        metrics["counters"])
    print(f"serve json validation ok: {len(levels)} load levels + reload, "
          f"mean batch size {batch_size['sum'] / batch_size['count']:.2f}")


def validate_rollout(d):
    """chaos_soak report: lifecycle invariants + event coverage."""
    report = load(f"{d}/chaos_report.json")
    assert report["pass"] is True, report["violations"]
    assert not report["violations"]
    req = report["requests"]
    assert req["submitted"] > 0 and req["broken_promises"] == 0, req
    assert req["other_failures"] == 0, req
    ev = report["events"]
    # One full schedule cycle minimum: every event kind must have run.
    assert all(v >= 1 for v in ev.values()), ev
    counters = report["metrics"]["counters"]
    for name in ("serve.rollout.published", "serve.rollout.staged",
                 "serve.rollout.completed", "serve.rollout.rolled_back",
                 "serve.rollout.quarantined"):
        assert counters.get(name, 0) >= 1, (name, counters)
    gauges = report["metrics"]["gauges"]
    assert ("serve.rollout.state" in gauges
            and "serve.rollout.generation" in gauges)
    assert any(k.startswith("serve.breaker.state.") for k in gauges), gauges
    print(f"rollout json validation ok: {req['submitted']} requests, "
          f"{sum(ev.values())} chaos events")


def main():
    if len(sys.argv) != 3 or sys.argv[1] not in ("train", "serve", "rollout"):
        print("usage: validate_artifacts.py <train|serve|rollout> "
              "<artifact-dir>", file=sys.stderr)
        return 2
    {"train": validate_train,
     "serve": validate_serve,
     "rollout": validate_rollout}[sys.argv[1]](sys.argv[2])
    return 0


if __name__ == "__main__":
    sys.exit(main())
