#!/usr/bin/env python3
"""Machine-readability + invariant checks for CI smoke artifacts.

usage: validate_artifacts.py <train|serve|rollout|trace|watchdog> <artifact-dir>

Each subcommand validates the JSON artifacts one ci/run_ci.sh smoke
leaves in its ci-artifacts/<job> directory. The checks go beyond
grep-ability: every file must parse whole, and the fields the serving
and training subsystems promise (DESIGN.md §4.9-§4.15) must be present
and non-trivial.
"""
import json
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def validate_train(d):
    """Trace/report/metrics/profile of a bigcity_cli train smoke."""
    for name in ("trace.json", "metrics.json", "profile.json"):
        load(f"{d}/{name}")
    with open(f"{d}/report.jsonl") as f:
        records = [json.loads(line) for line in f]
    assert any(r.get("event") == "epoch" for r in records)
    assert any(r.get("event") == "health" for r in records)
    assert records[-1]["event"] == "summary"
    assert "queue_wait_p95_us" in records[-1]
    metrics = load(f"{d}/metrics.json")
    assert metrics["counters"]["plan.cache.hit"] > 0, "plan cache never hit"
    print(f"train json validation ok: {len(records)} report records")


def validate_serve(d):
    """BENCH_serve.json (bench_serve) + serve_metrics.json (CLI replay)."""
    bench = load(f"{d}/BENCH_serve.json")
    levels = bench["levels"]
    assert [l["load_multiplier"] for l in levels] == [1, 2, 4], levels
    for l in levels:
        assert l["ok"] + l["shed"] + l["other"] == l["issued"], l
        assert l["throughput_rps"] >= 0 and 0 <= l["shed_rate"] <= 1, l
    # The batcher must actually coalesce under backlog: at 4x load the
    # smoke's client count exceeds the worker count, so per-request
    # forwards (mean batch size 1.0) mean the batching engine is off or
    # broken.
    assert levels[-1]["mean_batch_size"] > 1, levels[-1]
    batching = bench["batching"]
    assert batching["mean_batch_size_4x"] > 1, batching
    assert batching["p99_within_deadline"] is True, batching
    counters = batching["counters"]
    assert counters["serve.cache.tokenizer.hit"] > 0, counters
    assert counters["serve.cache.kv.hit"] > 0, counters
    reload_ = bench["reload"]
    assert reload_["swap_completed"] is True, reload_
    assert reload_["served_by_new_version"] > 0, reload_
    assert (reload_["ok"] + reload_["shed"] + reload_["other"]
            == reload_["issued"])
    assert reload_["p99_us"] > 0 and 0 <= reload_["shed_rate"] <= 1, reload_
    # The hot-swap must not push admitted-request p99 past the serving SLO.
    assert reload_["p99_us"] <= reload_["deadline_ms"] * 1000, reload_
    metrics = load(f"{d}/serve_metrics.json")
    batch_size = metrics["histograms"]["serve.batch.size"]
    assert batch_size["count"] > 0, batch_size
    assert batch_size["sum"] / batch_size["count"] > 1, batch_size
    assert metrics["counters"]["serve.cache.tokenizer.hit"] > 0, (
        metrics["counters"])
    print(f"serve json validation ok: {len(levels)} load levels + reload, "
          f"mean batch size {batch_size['sum'] / batch_size['count']:.2f}")


def validate_rollout(d):
    """chaos_soak report: lifecycle invariants + event coverage."""
    report = load(f"{d}/chaos_report.json")
    assert report["pass"] is True, report["violations"]
    assert not report["violations"]
    req = report["requests"]
    assert req["submitted"] > 0 and req["broken_promises"] == 0, req
    assert req["other_failures"] == 0, req
    ev = report["events"]
    # One full schedule cycle minimum: every event kind must have run.
    assert all(v >= 1 for v in ev.values()), ev
    counters = report["metrics"]["counters"]
    for name in ("serve.rollout.published", "serve.rollout.staged",
                 "serve.rollout.completed", "serve.rollout.rolled_back",
                 "serve.rollout.quarantined"):
        assert counters.get(name, 0) >= 1, (name, counters)
    gauges = report["metrics"]["gauges"]
    assert ("serve.rollout.state" in gauges
            and "serve.rollout.generation" in gauges)
    assert any(k.startswith("serve.breaker.state.") for k in gauges), gauges
    print(f"rollout json validation ok: {req['submitted']} requests, "
          f"{sum(ev.values())} chaos events")


def validate_watchdog(d):
    """Self-healing artifacts (DESIGN.md §4.16): the bench hang section
    and/or the chaos report's watchdog block must show a hung worker
    reaped, a replacement spun up, every reaped request definite, and
    memory pressure resolved under budget.
    """
    checked = []
    bench_path = f"{d}/BENCH_serve.json"
    if os.path.exists(bench_path):
        hang = load(bench_path)["hang"]
        assert hang["reaps"] >= 1 and hang["replacements"] >= 1, hang
        assert hang["recovered"] is True, hang
        # Reaped requests fail definitively; nothing may vanish.
        assert (hang["ok"] + hang["shed"] + hang["reaped"] + hang["other"]
                == hang["issued"]), hang
        assert hang["other"] == 0, hang
        assert hang["prehang_rps"] > 0, hang
        checked.append(f"bench hang: {hang['reaps']} reaps, recovery "
                       f"{hang['recovery_ms']:.0f} ms")
    chaos_path = f"{d}/chaos_report.json"
    if os.path.exists(chaos_path):
        report = load(chaos_path)
        wd = report["watchdog"]
        assert wd["reaps"] >= 1 and wd["replacements"] >= 1, wd
        assert wd["overload_sheds"] >= 1, wd
        assert wd["peak_sampled_bytes"] < wd["mem_budget_bytes"], wd
        assert wd["overload_state"] == "normal", wd
        ev = report["events"]
        assert ev["worker_reaps"] >= 1 and ev["leak_sheds"] >= 1, ev
        counters = report["metrics"]["counters"]
        for name in ("serve.watchdog.hangs", "serve.watchdog.reaped",
                     "serve.watchdog.replacements", "serve.overload.shed",
                     "serve.overload.entered_shedding",
                     "serve.overload.recovered"):
            assert counters.get(name, 0) >= 1, (name, counters)
        gauges = report["metrics"]["gauges"]
        for name in ("serve.overload.state", "serve.overload.budget_bytes",
                     "serve.overload.peak_bytes"):
            assert name in gauges, (name, sorted(gauges))
        checked.append(f"chaos watchdog: {wd['reaps']} reaps, peak "
                       f"{wd['peak_sampled_bytes']} / budget "
                       f"{wd['mem_budget_bytes']} bytes")
    assert checked, f"no watchdog artifacts (BENCH_serve/chaos_report) in {d}"
    print("watchdog validation ok: " + "; ".join(checked))


def validate_trace(d):
    """serve_trace.json (bench_serve --trace-out): request-scoped flows
    must render connected in chrome://tracing, and the serve metrics
    snapshot (when present) must carry the slo.* gauges (DESIGN.md §4.15).
    """
    trace = load(f"{d}/serve_trace.json")
    events = trace["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    flows = [e for e in events if e["ph"] in ("s", "t", "f")]
    assert spans and flows, (len(spans), len(flows))
    assert any("trace_id" in e.get("args", {}) for e in spans), \
        "no span is stamped with a trace id"

    by_id = {}
    for e in flows:
        by_id.setdefault(e["id"], set()).add(e["ph"])
    connected = [i for i, phases in by_id.items()
                 if {"s", "t", "f"} <= phases]
    assert connected, f"no fully connected flow among {len(by_id)} ids"

    # Spot-check connection details on a bounded sample: the flow must
    # cross threads, every marker must land inside a slice on its thread
    # (chrome anchors the arrows to those slices), and the finish marker
    # must bind to its enclosing slice.
    spans_by_tid = {}
    for e in spans:
        spans_by_tid.setdefault(e["tid"], []).append(e)
    for flow_id in connected[:25]:
        markers = [e for e in flows if e["id"] == flow_id]
        assert len({e["tid"] for e in markers}) >= 2, markers
        for m in markers:
            assert any(s["ts"] <= m["ts"] <= s["ts"] + s["dur"]
                       for s in spans_by_tid.get(m["tid"], [])), m
            if m["ph"] == "f":
                assert m.get("bp") == "e", m

    metrics_path = f"{d}/serve_metrics.json"
    if os.path.exists(metrics_path):
        metrics = load(metrics_path)
        gauges = metrics["gauges"]
        tasks = {k.split(".")[1] for k in gauges if k.startswith("slo.")}
        assert tasks, "no slo.* gauges in serve metrics"
        for task in tasks:
            for field in ("success_rate", "burn_rate", "p50_us", "p99_us",
                          "p99_within_objective", "window_requests"):
                assert f"slo.{task}.{field}" in gauges, (task, field)
        assert "serve.batch.wait_us" in metrics["histograms"], \
            sorted(metrics["histograms"])
    print(f"trace json validation ok: {len(connected)} connected flows "
          f"over {len(by_id)} ids, {len(spans)} spans")


def main():
    commands = {"train": validate_train,
                "serve": validate_serve,
                "rollout": validate_rollout,
                "trace": validate_trace,
                "watchdog": validate_watchdog}
    if len(sys.argv) != 3 or sys.argv[1] not in commands:
        print("usage: validate_artifacts.py "
              "<train|serve|rollout|trace|watchdog> "
              "<artifact-dir>", file=sys.stderr)
        return 2
    commands[sys.argv[1]](sys.argv[2])
    return 0


if __name__ == "__main__":
    sys.exit(main())
