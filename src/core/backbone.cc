#include "core/backbone.h"

#include <cmath>

#include "nn/kernels/fused.h"
#include "nn/ops.h"
#include "util/check.h"

namespace bigcity::core {

using nn::Tensor;

Backbone::Backbone(int text_vocab_size, const BigCityConfig& config,
                   util::Rng* rng)
    : config_(config) {
  text_embedding_ = std::make_unique<nn::EmbeddingTable>(
      text_vocab_size, config.d_model, rng);
  RegisterModule("text_embedding", text_embedding_.get());
  positional_ = RegisterParameter(
      "positional", Tensor::Randn({config.max_sequence, config.d_model}, rng,
                                  0.02f, /*requires_grad=*/true));
  transformer_ = std::make_unique<nn::Transformer>(
      config.d_model, config.num_heads, config.num_layers, rng,
      /*causal=*/true);
  RegisterModule("transformer", transformer_.get());
  clas_token_ = RegisterParameter(
      "clas_token", Tensor::Randn({1, config.d_model}, rng, 0.02f, true));
  reg_token_ = RegisterParameter(
      "reg_token", Tensor::Randn({1, config.d_model}, rng, 0.02f, true));
  mask_token_ = RegisterParameter(
      "mask_token", Tensor::Randn({1, config.d_model}, rng, 0.02f, true));
}

BackboneOutput Backbone::Forward(const PromptInput& prompt) const {
  std::vector<Tensor> parts;
  int64_t text_len = 0;
  if (!prompt.text_ids.empty()) {
    parts.push_back(text_embedding_->Forward(prompt.text_ids));
    text_len = static_cast<int64_t>(prompt.text_ids.size());
  }

  BIGCITY_CHECK(prompt.st_tokens.is_valid());
  const int64_t st_len = prompt.st_tokens.shape()[0];
  if (prompt.mask_positions.empty()) {
    parts.push_back(prompt.st_tokens);
  } else {
    std::vector<bool> is_masked(static_cast<size_t>(st_len), false);
    for (int m : prompt.mask_positions) {
      BIGCITY_CHECK(m >= 0 && m < st_len);
      is_masked[static_cast<size_t>(m)] = true;
    }
    // Replace masked rows with the learnable [MASK] vector, keeping runs of
    // unmasked rows as single slices.
    int64_t run_start = 0;
    for (int64_t l = 0; l <= st_len; ++l) {
      const bool boundary = l == st_len || is_masked[static_cast<size_t>(l)];
      if (boundary) {
        if (run_start < l) {
          parts.push_back(nn::SliceRows(prompt.st_tokens, run_start, l));
        }
        if (l < st_len) parts.push_back(mask_token_);
        run_start = l + 1;
      }
    }
  }

  const int64_t num_task = static_cast<int64_t>(prompt.task_tokens.size());
  for (TaskTokenKind kind : prompt.task_tokens) {
    parts.push_back(kind == TaskTokenKind::kClas ? clas_token_ : reg_token_);
  }

  Tensor input = nn::Concat(parts, /*axis=*/0);
  const int64_t total = input.shape()[0];
  BIGCITY_CHECK_LE(total, config_.max_sequence)
      << "prompt longer than positional table";
  Tensor positions = nn::SliceRows(positional_, 0, total);
  Tensor hidden = transformer_->Forward(nn::Add(input, positions));

  BackboneOutput output;
  output.st_outputs = nn::SliceRows(hidden, text_len, text_len + st_len);
  if (num_task > 0) {
    output.task_outputs =
        nn::SliceRows(hidden, total - num_task, total);
  }
  return output;
}

Tensor Backbone::TextLmLogits(const std::vector<int>& text_ids) const {
  BIGCITY_CHECK(!text_ids.empty());
  BIGCITY_CHECK_LE(static_cast<int64_t>(text_ids.size()),
                   config_.max_sequence);
  Tensor embedded = text_embedding_->Forward(text_ids);
  Tensor positions =
      nn::SliceRows(positional_, 0, static_cast<int64_t>(text_ids.size()));
  Tensor hidden = transformer_->Forward(nn::Add(embedded, positions));
  // Weight-tied output projection; MatMulNT avoids materializing the
  // transposed [D, V] copy of the embedding table.
  return nn::MatMulNT(hidden, text_embedding_->table());
}

void Backbone::EnableLora(util::Rng* rng) {
  const auto blocks = static_cast<int64_t>(
      std::ceil(config_.lora_rate * static_cast<double>(config_.num_layers)));
  transformer_->EnableLora(config_.lora_rank, config_.lora_alpha,
                           std::min(blocks, config_.num_layers), rng);
}

void Backbone::FreezeBase() {
  transformer_->FreezeBase();
  for (auto& p : text_embedding_->Parameters()) p.set_requires_grad(false);
  positional_.set_requires_grad(false);
  // Placeholder vectors stay trainable: they are part of the prompt
  // mechanism, not the pre-trained base.
}

}  // namespace bigcity::core
