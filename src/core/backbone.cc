#include "core/backbone.h"

#include <cmath>

#include "nn/kernels/fused.h"
#include "nn/ops.h"
#include "util/check.h"

namespace bigcity::core {

using nn::Tensor;

Backbone::Backbone(int text_vocab_size, const BigCityConfig& config,
                   util::Rng* rng)
    : config_(config) {
  text_embedding_ = std::make_unique<nn::EmbeddingTable>(
      text_vocab_size, config.d_model, rng);
  RegisterModule("text_embedding", text_embedding_.get());
  positional_ = RegisterParameter(
      "positional", Tensor::Randn({config.max_sequence, config.d_model}, rng,
                                  0.02f, /*requires_grad=*/true));
  transformer_ = std::make_unique<nn::Transformer>(
      config.d_model, config.num_heads, config.num_layers, rng,
      /*causal=*/true);
  RegisterModule("transformer", transformer_.get());
  clas_token_ = RegisterParameter(
      "clas_token", Tensor::Randn({1, config.d_model}, rng, 0.02f, true));
  reg_token_ = RegisterParameter(
      "reg_token", Tensor::Randn({1, config.d_model}, rng, 0.02f, true));
  mask_token_ = RegisterParameter(
      "mask_token", Tensor::Randn({1, config.d_model}, rng, 0.02f, true));
}

Tensor Backbone::AssembleInput(const PromptInput& prompt, int64_t* text_len,
                               int64_t* st_len) const {
  std::vector<Tensor> parts;
  *text_len = 0;
  if (!prompt.text_ids.empty()) {
    parts.push_back(text_embedding_->Forward(prompt.text_ids));
    *text_len = static_cast<int64_t>(prompt.text_ids.size());
  }

  BIGCITY_CHECK(prompt.st_tokens.is_valid());
  *st_len = prompt.st_tokens.shape()[0];
  if (prompt.mask_positions.empty()) {
    parts.push_back(prompt.st_tokens);
  } else {
    std::vector<bool> is_masked(static_cast<size_t>(*st_len), false);
    for (int m : prompt.mask_positions) {
      BIGCITY_CHECK(m >= 0 && m < *st_len);
      is_masked[static_cast<size_t>(m)] = true;
    }
    // Replace masked rows with the learnable [MASK] vector, keeping runs of
    // unmasked rows as single slices.
    int64_t run_start = 0;
    for (int64_t l = 0; l <= *st_len; ++l) {
      const bool boundary = l == *st_len || is_masked[static_cast<size_t>(l)];
      if (boundary) {
        if (run_start < l) {
          parts.push_back(nn::SliceRows(prompt.st_tokens, run_start, l));
        }
        if (l < *st_len) parts.push_back(mask_token_);
        run_start = l + 1;
      }
    }
  }

  for (TaskTokenKind kind : prompt.task_tokens) {
    parts.push_back(kind == TaskTokenKind::kClas ? clas_token_ : reg_token_);
  }

  Tensor input = nn::Concat(parts, /*axis=*/0);
  BIGCITY_CHECK_LE(input.shape()[0], config_.max_sequence)
      << "prompt longer than positional table";
  return input;
}

BackboneOutput Backbone::Forward(const PromptInput& prompt) const {
  int64_t text_len = 0, st_len = 0;
  Tensor input = AssembleInput(prompt, &text_len, &st_len);
  const int64_t total = input.shape()[0];
  const int64_t num_task = static_cast<int64_t>(prompt.task_tokens.size());
  Tensor positions = nn::SliceRows(positional_, 0, total);
  Tensor hidden = transformer_->Forward(nn::Add(input, positions));

  BackboneOutput output;
  output.st_outputs = nn::SliceRows(hidden, text_len, text_len + st_len);
  if (num_task > 0) {
    output.task_outputs =
        nn::SliceRows(hidden, total - num_task, total);
  }
  return output;
}

std::vector<BackboneOutput> Backbone::ForwardBatched(
    const std::vector<PromptInput>& prompts,
    const std::vector<nn::KvCache*>* caches) const {
  BIGCITY_CHECK(!prompts.empty());
  if (caches != nullptr) BIGCITY_CHECK_EQ(caches->size(), prompts.size());
  struct Layout {
    int64_t text_len, st_len, num_task, total, cached;
  };
  std::vector<Layout> layouts;
  layouts.reserve(prompts.size());
  std::vector<Tensor> inputs;
  inputs.reserve(prompts.size());
  std::vector<int64_t> lens;
  lens.reserve(prompts.size());
  for (size_t i = 0; i < prompts.size(); ++i) {
    const PromptInput& prompt = prompts[i];
    Layout layout{};
    Tensor input = AssembleInput(prompt, &layout.text_len, &layout.st_len);
    layout.num_task = static_cast<int64_t>(prompt.task_tokens.size());
    layout.total = input.shape()[0];
    // A sequence with a non-empty cache contributes only its uncached
    // suffix rows (a batched ForwardCached decode); everything else rides
    // whole. Positions are added per sequence before slicing (elementwise,
    // so batching-neutral); the concatenated rows then share every
    // row-wise layer downstream.
    layout.cached =
        caches != nullptr && (*caches)[i] != nullptr ? (*caches)[i]->length()
                                                     : 0;
    BIGCITY_CHECK_LT(layout.cached, layout.total)
        << "KV cache already covers the whole prompt; truncate it first";
    BIGCITY_CHECK_LE(layout.num_task, layout.total - layout.cached)
        << "task placeholders must lie in the uncached suffix";
    Tensor x =
        nn::Add(input, nn::SliceRows(positional_, 0, layout.total));
    inputs.push_back(layout.cached > 0
                         ? nn::SliceRows(x, layout.cached, layout.total)
                         : x);
    lens.push_back(layout.total - layout.cached);
    layouts.push_back(layout);
  }
  Tensor tall = inputs.size() == 1 ? inputs[0] : nn::Concat(inputs, 0);
  Tensor hidden = transformer_->ForwardBatched(tall, lens, caches);

  std::vector<BackboneOutput> outputs;
  outputs.reserve(prompts.size());
  int64_t off = 0;
  for (const Layout& layout : layouts) {
    const int64_t suffix_len = layout.total - layout.cached;
    BackboneOutput output;
    if (layout.cached == 0) {
      output.st_outputs =
          nn::SliceRows(hidden, off + layout.text_len,
                        off + layout.text_len + layout.st_len);
    }
    if (layout.num_task > 0) {
      output.task_outputs = nn::SliceRows(
          hidden, off + suffix_len - layout.num_task, off + suffix_len);
    }
    outputs.push_back(std::move(output));
    off += suffix_len;
  }
  return outputs;
}

BackboneOutput Backbone::ForwardCached(const PromptInput& prompt,
                                       nn::KvCache* cache) const {
  BIGCITY_CHECK(cache != nullptr);
  int64_t text_len = 0, st_len = 0;
  Tensor input = AssembleInput(prompt, &text_len, &st_len);
  const int64_t total = input.shape()[0];
  const int64_t num_task = static_cast<int64_t>(prompt.task_tokens.size());
  const int64_t cached = cache->length();
  BIGCITY_CHECK_LT(cached, total)
      << "KV cache already covers the whole prompt; truncate it first";
  Tensor x = nn::Add(input, nn::SliceRows(positional_, 0, total));
  Tensor suffix = cached > 0 ? nn::SliceRows(x, cached, total) : x;
  Tensor hidden = transformer_->ForwardCached(suffix, cache);

  const int64_t suffix_len = total - cached;
  BIGCITY_CHECK_LE(num_task, suffix_len)
      << "task placeholders must lie in the uncached suffix";
  BackboneOutput output;
  if (cached == 0) {
    output.st_outputs = nn::SliceRows(hidden, text_len, text_len + st_len);
  }
  if (num_task > 0) {
    output.task_outputs =
        nn::SliceRows(hidden, suffix_len - num_task, suffix_len);
  }
  return output;
}

Tensor Backbone::TextLmLogits(const std::vector<int>& text_ids) const {
  BIGCITY_CHECK(!text_ids.empty());
  BIGCITY_CHECK_LE(static_cast<int64_t>(text_ids.size()),
                   config_.max_sequence);
  Tensor embedded = text_embedding_->Forward(text_ids);
  Tensor positions =
      nn::SliceRows(positional_, 0, static_cast<int64_t>(text_ids.size()));
  Tensor hidden = transformer_->Forward(nn::Add(embedded, positions));
  // Weight-tied output projection; MatMulNT avoids materializing the
  // transposed [D, V] copy of the embedding table.
  return nn::MatMulNT(hidden, text_embedding_->table());
}

void Backbone::EnableLora(util::Rng* rng) {
  const auto blocks = static_cast<int64_t>(
      std::ceil(config_.lora_rate * static_cast<double>(config_.num_layers)));
  transformer_->EnableLora(config_.lora_rank, config_.lora_alpha,
                           std::min(blocks, config_.num_layers), rng);
}

void Backbone::FreezeBase() {
  transformer_->FreezeBase();
  for (auto& p : text_embedding_->Parameters()) p.set_requires_grad(false);
  positional_.set_requires_grad(false);
  // Placeholder vectors stay trainable: they are part of the prompt
  // mechanism, not the pre-trained base.
}

}  // namespace bigcity::core
