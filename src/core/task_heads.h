#ifndef BIGCITY_CORE_TASK_HEADS_H_
#define BIGCITY_CORE_TASK_HEADS_H_

#include <memory>

#include "core/config.h"
#include "data/traffic_state.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace bigcity::core {

/// The unified label space decoded by the classification head. All
/// classification-style tasks share one MLP_c over the concatenation of
/// segment ids, user ids, and pattern classes; each task reads its slice of
/// the logits. This keeps the output module task-agnostic (Sec. V-C).
struct LabelSpace {
  int num_segments = 0;
  int num_users = 0;
  int num_patterns = 2;

  int total() const { return num_segments + num_users + num_patterns; }
  int segment_offset() const { return 0; }
  int user_offset() const { return num_segments; }
  int pattern_offset() const { return num_segments + num_users; }
};

/// General-task heads (Eq. 11): MLP_c for classification, MLP_t for
/// timestamp regression, MLP_r for traffic-state regression.
class GeneralTaskHeads : public nn::Module {
 public:
  GeneralTaskHeads(int64_t d_model, const LabelSpace& labels,
                   util::Rng* rng);

  /// Full unified-label-space logits: z [K, d] -> [K, labels.total()].
  nn::Tensor ClasLogits(const nn::Tensor& z) const;
  /// Slices of the unified logits for each classification task.
  nn::Tensor SegmentLogits(const nn::Tensor& z) const;
  nn::Tensor UserLogits(const nn::Tensor& z) const;
  nn::Tensor PatternLogits(const nn::Tensor& z) const;

  /// Timestamp regression (normalized delta units): [K, 1].
  nn::Tensor TimeRegression(const nn::Tensor& z) const;
  /// Traffic-state regression: [K, kTrafficChannels].
  nn::Tensor StateRegression(const nn::Tensor& z) const;

  const LabelSpace& labels() const { return labels_; }

 private:
  LabelSpace labels_;
  std::unique_ptr<nn::Mlp> mlp_c_;
  std::unique_ptr<nn::Mlp> mlp_t_;
  std::unique_ptr<nn::Mlp> mlp_r_;
};

}  // namespace bigcity::core

#endif  // BIGCITY_CORE_TASK_HEADS_H_
