#include "core/task.h"

#include <array>

#include "util/check.h"

namespace bigcity::core {

namespace {
const std::array<std::string, kNumTasks>& Instructions() {
  static const std::array<std::string, kNumTasks>* kInstructions =
      new std::array<std::string, kNumTasks>{
          "where is the next hop position of the input trajectory",
          "which class does the input trajectory belong to",
          "give me the estimated time of arrival for the input trajectory",
          "represent the input trajectory for similarity search",
          "recover the masked positions of the input trajectory",
          "predict the traffic state of the next time slice",
          "predict the traffic states of the next six time slices",
          "impute the masked traffic states of the input series",
      };
  return *kInstructions;
}

const std::array<std::string, kNumTasks>& Names() {
  static const std::array<std::string, kNumTasks>* kNames =
      new std::array<std::string, kNumTasks>{
          "Next", "CLAS", "TTE", "Simi", "Reco", "O-Step", "M-Step", "TSI",
      };
  return *kNames;
}
}  // namespace

const std::string& InstructionFor(Task task) {
  const int index = static_cast<int>(task);
  BIGCITY_CHECK(index >= 0 && index < kNumTasks);
  return Instructions()[static_cast<size_t>(index)];
}

const std::string& TaskName(Task task) {
  const int index = static_cast<int>(task);
  BIGCITY_CHECK(index >= 0 && index < kNumTasks);
  return Names()[static_cast<size_t>(index)];
}

}  // namespace bigcity::core
