#ifndef BIGCITY_CORE_TEXT_TOKENIZER_H_
#define BIGCITY_CORE_TEXT_TOKENIZER_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace bigcity::core {

/// Fixed mobility-domain corpus used to (a) seed the tokenizer vocabulary
/// and (b) pre-train the backbone as a tiny language model (the stand-in
/// for GPT-2's pre-trained weights).
std::vector<std::string> InstructionCorpus();

/// Word-level text tokenizer for the task instructions — the in-repo
/// substitute for GPT-2's BPE tokenizer. The vocabulary is built from a
/// fixed instruction corpus at construction; unknown words map to <unk>.
class TextTokenizer {
 public:
  /// Builds the vocabulary from the given corpus lines (plus the task
  /// instruction templates, which are always included).
  explicit TextTokenizer(const std::vector<std::string>& extra_corpus = {});

  /// Lower-cases, strips punctuation, splits on whitespace, and maps each
  /// word to its id.
  std::vector<int> Encode(const std::string& text) const;

  int vocab_size() const { return static_cast<int>(id_to_word_.size()); }
  int unk_id() const { return unk_id_; }
  const std::string& Word(int id) const { return id_to_word_[id]; }

  /// Normalized word list of a text (exposed for tests).
  static std::vector<std::string> Normalize(const std::string& text);

 private:
  void AddWord(const std::string& word);

  std::unordered_map<std::string, int> word_to_id_;
  std::vector<std::string> id_to_word_;
  int unk_id_ = 0;
};

}  // namespace bigcity::core

#endif  // BIGCITY_CORE_TEXT_TOKENIZER_H_
