#include "core/task_heads.h"

#include "nn/ops.h"
#include "util/check.h"

namespace bigcity::core {

using nn::Tensor;

GeneralTaskHeads::GeneralTaskHeads(int64_t d_model, const LabelSpace& labels,
                                   util::Rng* rng)
    : labels_(labels) {
  BIGCITY_CHECK_GT(labels.num_segments, 0);
  mlp_c_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{d_model, 2 * d_model, labels.total()}, rng);
  mlp_t_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{d_model, d_model, 1}, rng);
  mlp_r_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{d_model, d_model, data::kTrafficChannels}, rng);
  RegisterModule("mlp_c", mlp_c_.get());
  RegisterModule("mlp_t", mlp_t_.get());
  RegisterModule("mlp_r", mlp_r_.get());
}

Tensor GeneralTaskHeads::ClasLogits(const Tensor& z) const {
  return mlp_c_->Forward(z);
}

Tensor GeneralTaskHeads::SegmentLogits(const Tensor& z) const {
  Tensor logits = ClasLogits(z);
  return nn::SliceCols(logits, labels_.segment_offset(),
                       labels_.segment_offset() + labels_.num_segments);
}

Tensor GeneralTaskHeads::UserLogits(const Tensor& z) const {
  BIGCITY_CHECK_GT(labels_.num_users, 0);
  Tensor logits = ClasLogits(z);
  return nn::SliceCols(logits, labels_.user_offset(),
                       labels_.user_offset() + labels_.num_users);
}

Tensor GeneralTaskHeads::PatternLogits(const Tensor& z) const {
  Tensor logits = ClasLogits(z);
  return nn::SliceCols(logits, labels_.pattern_offset(),
                       labels_.pattern_offset() + labels_.num_patterns);
}

Tensor GeneralTaskHeads::TimeRegression(const Tensor& z) const {
  return mlp_t_->Forward(z);
}

Tensor GeneralTaskHeads::StateRegression(const Tensor& z) const {
  return mlp_r_->Forward(z);
}

}  // namespace bigcity::core
