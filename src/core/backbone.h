#ifndef BIGCITY_CORE_BACKBONE_H_
#define BIGCITY_CORE_BACKBONE_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/transformer.h"

namespace bigcity::core {

/// Kind of a task placeholder token (Sec. V-A).
enum class TaskTokenKind { kClas, kReg };

/// One task-oriented prompt (Eq. 9): textual instruction tokens, the ST
/// token sequence (with [MASK]-ed positions), and the task placeholder
/// tokens whose outputs the heads decode.
struct PromptInput {
  std::vector<int> text_ids;           // X^(txt); may be empty (w/o-Pro).
  nn::Tensor st_tokens;                // X^(st): [L, d_model].
  std::vector<int> mask_positions;     // ST positions replaced by [MASK].
  std::vector<TaskTokenKind> task_tokens;  // X^(tsk).
};

/// Backbone outputs: Z (one row per task token) plus the transformed ST
/// token region V_st (used for representation/similarity tasks).
struct BackboneOutput {
  nn::Tensor task_outputs;  // [K, d_model]; invalid when K == 0.
  nn::Tensor st_outputs;    // [L, d_model].
};

/// The LLM-style backbone (Sec. V-B): a causal pre-LN transformer over the
/// combined prompt sequence with learned positions and learnable [CLAS],
/// [REG], [MASK] token vectors. LoRA adapters attach to Wq/Wk/Wv and the
/// FFN of each block; after pre-training the base weights freeze and only
/// the adapters (plus placeholder vectors) train.
class Backbone : public nn::Module {
 public:
  Backbone(int text_vocab_size, const BigCityConfig& config, util::Rng* rng);

  BackboneOutput Forward(const PromptInput& prompt) const;

  /// Batched forward over independent prompts: the assembled prompt
  /// sequences are row-concatenated, all row-wise layers (embeddings, LN,
  /// projections, FFN) run on the tall matrix, and attention runs per
  /// sequence — so outputs[i] is bit-identical to Forward(prompts[i]).
  /// When `caches` is given (one entry per prompt, entries may be null)
  /// each non-null EMPTY KvCache receives that prompt's full attention
  /// state — a batched prefill for later extension decodes — while a
  /// non-null cache that already holds a (truncated-to-shared) prefix
  /// makes that prompt decode only its suffix rows against the cached
  /// state, batched alongside the others. st_outputs is only populated
  /// for sequences decoded from row 0.
  std::vector<BackboneOutput> ForwardBatched(
      const std::vector<PromptInput>& prompts,
      const std::vector<nn::KvCache*>* caches = nullptr) const;

  /// KV-cached incremental forward: the first cache->length() positions of
  /// the assembled sequence were already processed into `cache` (by a
  /// previous ForwardCached over a prompt sharing that prefix; the caller
  /// guarantees the prefix tokens are identical, truncating the cache
  /// first if needed). Only the suffix rows run through the transformer.
  /// task_outputs is bit-identical to Forward(); st_outputs is only
  /// populated when the cache started empty.
  BackboneOutput ForwardCached(const PromptInput& prompt,
                               nn::KvCache* cache) const;

  /// Next-word logits over the text vocabulary for language-model
  /// pre-training (weight-tied to the text embedding).
  nn::Tensor TextLmLogits(const std::vector<int>& text_ids) const;

  /// Attaches LoRA adapters to ceil(lora_rate * num_layers) blocks.
  void EnableLora(util::Rng* rng);
  /// Freezes base transformer + embeddings; LoRA and placeholders train.
  void FreezeBase();

  nn::Transformer* transformer() { return transformer_.get(); }
  int64_t d_model() const { return config_.d_model; }

 private:
  /// Assembles [text][st tokens with MASK substitution][task placeholders]
  /// into one [total, d_model] matrix (no positional add). Outputs the
  /// text/st region lengths for slicing the transformer output.
  nn::Tensor AssembleInput(const PromptInput& prompt, int64_t* text_len,
                           int64_t* st_len) const;

  BigCityConfig config_;
  std::unique_ptr<nn::EmbeddingTable> text_embedding_;
  nn::Tensor positional_;   // [max_sequence, d_model].
  std::unique_ptr<nn::Transformer> transformer_;
  nn::Tensor clas_token_;   // [1, d_model].
  nn::Tensor reg_token_;
  nn::Tensor mask_token_;
};

}  // namespace bigcity::core

#endif  // BIGCITY_CORE_BACKBONE_H_
