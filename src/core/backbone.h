#ifndef BIGCITY_CORE_BACKBONE_H_
#define BIGCITY_CORE_BACKBONE_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/transformer.h"

namespace bigcity::core {

/// Kind of a task placeholder token (Sec. V-A).
enum class TaskTokenKind { kClas, kReg };

/// One task-oriented prompt (Eq. 9): textual instruction tokens, the ST
/// token sequence (with [MASK]-ed positions), and the task placeholder
/// tokens whose outputs the heads decode.
struct PromptInput {
  std::vector<int> text_ids;           // X^(txt); may be empty (w/o-Pro).
  nn::Tensor st_tokens;                // X^(st): [L, d_model].
  std::vector<int> mask_positions;     // ST positions replaced by [MASK].
  std::vector<TaskTokenKind> task_tokens;  // X^(tsk).
};

/// Backbone outputs: Z (one row per task token) plus the transformed ST
/// token region V_st (used for representation/similarity tasks).
struct BackboneOutput {
  nn::Tensor task_outputs;  // [K, d_model]; invalid when K == 0.
  nn::Tensor st_outputs;    // [L, d_model].
};

/// The LLM-style backbone (Sec. V-B): a causal pre-LN transformer over the
/// combined prompt sequence with learned positions and learnable [CLAS],
/// [REG], [MASK] token vectors. LoRA adapters attach to Wq/Wk/Wv and the
/// FFN of each block; after pre-training the base weights freeze and only
/// the adapters (plus placeholder vectors) train.
class Backbone : public nn::Module {
 public:
  Backbone(int text_vocab_size, const BigCityConfig& config, util::Rng* rng);

  BackboneOutput Forward(const PromptInput& prompt) const;

  /// Next-word logits over the text vocabulary for language-model
  /// pre-training (weight-tied to the text embedding).
  nn::Tensor TextLmLogits(const std::vector<int>& text_ids) const;

  /// Attaches LoRA adapters to ceil(lora_rate * num_layers) blocks.
  void EnableLora(util::Rng* rng);
  /// Freezes base transformer + embeddings; LoRA and placeholders train.
  void FreezeBase();

  nn::Transformer* transformer() { return transformer_.get(); }
  int64_t d_model() const { return config_.d_model; }

 private:
  BigCityConfig config_;
  std::unique_ptr<nn::EmbeddingTable> text_embedding_;
  nn::Tensor positional_;   // [max_sequence, d_model].
  std::unique_ptr<nn::Transformer> transformer_;
  nn::Tensor clas_token_;   // [1, d_model].
  nn::Tensor reg_token_;
  nn::Tensor mask_token_;
};

}  // namespace bigcity::core

#endif  // BIGCITY_CORE_BACKBONE_H_
