#include "core/text_tokenizer.h"

#include <cctype>

#include "core/task.h"

namespace bigcity::core {

std::vector<std::string> InstructionCorpus() {
  return {
      "the trajectory moves along road segments of the city network",
      "traffic speed drops during the morning and evening rush hours",
      "the next segment follows from the current position on the road",
      "travel time depends on segment length speed limit and congestion",
      "a user tends to take the same route between home and work",
      "the traffic state of a segment contains speed and flow",
      "masked positions of a sequence can be recovered from context",
      "the arrival time of a trip is the sum of segment travel times",
      "similar trajectories visit similar segments at similar times",
      "predict the future from the past states of the series",
      "highways are faster than arterial roads and local streets",
      "flow increases when many vehicles enter the segment",
      "the city road network is a directed graph of segments",
      "a time slice spans thirty minutes of the day",
      "imputation fills the missing states of the input series",
      "classification assigns the input trajectory to a class",
  };
}

TextTokenizer::TextTokenizer(const std::vector<std::string>& extra_corpus) {
  AddWord("<unk>");
  unk_id_ = 0;
  for (int t = 0; t < kNumTasks; ++t) {
    for (const auto& word : Normalize(InstructionFor(static_cast<Task>(t)))) {
      AddWord(word);
    }
  }
  for (const auto& line : extra_corpus) {
    for (const auto& word : Normalize(line)) AddWord(word);
  }
}

std::vector<std::string> TextTokenizer::Normalize(const std::string& text) {
  std::vector<std::string> words;
  std::string current;
  for (char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      words.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(current);
  return words;
}

std::vector<int> TextTokenizer::Encode(const std::string& text) const {
  std::vector<int> ids;
  for (const auto& word : Normalize(text)) {
    auto it = word_to_id_.find(word);
    ids.push_back(it == word_to_id_.end() ? unk_id_ : it->second);
  }
  return ids;
}

void TextTokenizer::AddWord(const std::string& word) {
  if (word_to_id_.contains(word)) return;
  word_to_id_.emplace(word, static_cast<int>(id_to_word_.size()));
  id_to_word_.push_back(word);
}

}  // namespace bigcity::core
