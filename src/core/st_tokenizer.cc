#include "core/st_tokenizer.h"

#include <algorithm>
#include <optional>

#include "nn/ops.h"
#include "obs/obs.h"
#include "util/check.h"

namespace bigcity::core {

using nn::Tensor;

std::optional<Tensor> SpatialRepCache::Get(uint64_t version, int slice) {
  BIGCITY_REQUEST_STAGE_TIMED(kCacheLookup);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : entries_) {
    if (entry.version == version && entry.slice == slice) {
      entry.tick = ++tick_;
      ++hits_;
      BIGCITY_COUNTER_INC("serve.cache.tokenizer.hit");
      return entry.rep;
    }
  }
  ++misses_;
  BIGCITY_COUNTER_INC("serve.cache.tokenizer.miss");
  return std::nullopt;
}

void SpatialRepCache::Put(uint64_t version, int slice, const Tensor& rep) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : entries_) {
    if (entry.version == version && entry.slice == slice) return;
  }
  if (entries_.size() >= capacity_) {
    auto oldest = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.tick < b.tick; });
    entries_.erase(oldest);
    BIGCITY_COUNTER_INC("serve.cache.tokenizer.evict");
  }
  entries_.push_back(Entry{version, slice, rep, ++tick_});
}

void SpatialRepCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

uint64_t SpatialRepCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t SpatialRepCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t SpatialRepCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

StTokenizer::StTokenizer(const roadnet::RoadNetwork* network,
                         const data::TrafficStateSeries* traffic,
                         const BigCityConfig& config, util::Rng* rng,
                         const roadnet::PoiLayer* poi)
    : network_(network), traffic_(traffic), config_(config) {
  BIGCITY_CHECK(network != nullptr);
  graph_ = network_->ToGraphEdges();
  static_features_ = network_->StaticFeatureMatrix();
  int64_t static_dim = roadnet::RoadNetwork::StaticFeatureDim();
  if (poi != nullptr) {
    // POI extension: append per-segment POI category features.
    static_features_ =
        nn::Concat({static_features_, poi->SegmentPoiFeatures()}, 1);
    static_dim += roadnet::kNumPoiCategories;
  }

  if (config_.use_static_encoder) {
    static_encoder_ = std::make_unique<nn::GatEncoder>(
        static_dim, config_.gat_hidden, config_.spatial_dim,
        config_.gat_heads, rng);
    RegisterModule("static_encoder", static_encoder_.get());
  }
  if (config_.use_dynamic_encoder && traffic_ != nullptr) {
    dynamic_encoder_ = std::make_unique<nn::GatEncoder>(
        config_.dynamic_window * data::kTrafficChannels, config_.gat_hidden,
        config_.spatial_dim, config_.gat_heads, rng);
    RegisterModule("dynamic_encoder", dynamic_encoder_.get());
  }
  if (config_.use_fusion_encoder) {
    fusion_ = std::make_unique<nn::LearnedQueryAttention>(
        network_->num_segments(), 2 * config_.spatial_dim, rng);
    RegisterModule("fusion", fusion_.get());
  }
  // Temporal integration: (s_{i,t} || iota_tau || delta) -> ST token.
  temporal_mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{2 * config_.spatial_dim + data::kTimeFeatureDim + 1,
                           config_.d_model, config_.d_model},
      rng);
  RegisterModule("temporal_mlp", temporal_mlp_.get());

  null_static_ = RegisterParameter(
      "null_static", Tensor::Randn({1, config_.spatial_dim}, rng, 0.02f,
                                   /*requires_grad=*/true));
  null_dynamic_ = RegisterParameter(
      "null_dynamic", Tensor::Randn({1, config_.spatial_dim}, rng, 0.02f,
                                    /*requires_grad=*/true));
}

void StTokenizer::BeginStep() {
  cached_static_ = Tensor();
  slice_cache_.clear();
}

Tensor StTokenizer::DynamicWindowFeatures(int slice) const {
  BIGCITY_CHECK(traffic_ != nullptr);
  const int num_segments = network_->num_segments();
  const int window = config_.dynamic_window;
  const int channels = data::kTrafficChannels;
  std::vector<float> data(static_cast<size_t>(num_segments) * window *
                          channels);
  for (int i = 0; i < num_segments; ++i) {
    for (int w = 0; w < window; ++w) {
      // Window W = (t - T' + 1, ..., t); clamp early slices.
      const int t = std::max(0, slice - (window - 1) + w);
      for (int c = 0; c < channels; ++c) {
        data[(static_cast<size_t>(i) * window + w) * channels + c] =
            traffic_->Get(t, i, c);
      }
    }
  }
  return Tensor::FromData({num_segments, window * channels},
                          std::move(data));
}

Tensor StTokenizer::SpatialRepresentations(int slice) {
  if (traffic_ == nullptr || dynamic_encoder_ == nullptr) slice = 0;
  if (auto it = slice_cache_.find(slice); it != slice_cache_.end()) {
    return it->second;
  }
  // In no-grad (serving) mode the caches persist across requests — and
  // thus across per-request plan scopes — so the whole fill is pinned to
  // the heap. In training mode the caches stay arena-backed: the trainer
  // clears them (BeginStep) before every step's arena rewind.
  std::optional<nn::ArenaPin> pin;
  if (!nn::GradEnabled()) pin.emplace();
  const int num_segments = network_->num_segments();

  // Serving: consult the cross-worker shared cache before paying for the
  // GAT passes. Entries are version-tagged, so a hot-swapped replica never
  // reads representations computed by different weights.
  const bool share = shared_reps_ != nullptr && !nn::GradEnabled();
  if (share) {
    if (auto hit = shared_reps_->Get(shared_version_, slice)) {
      slice_cache_.emplace(slice, *hit);
      return *hit;
    }
  }

  // Static representations H^(s) (Eq. 4) — slice-independent, cached once.
  if (!cached_static_.is_valid()) {
    if (static_encoder_ != nullptr) {
      cached_static_ = static_encoder_->Forward(static_features_, graph_);
    } else {
      // Ablation w/o-Sta: broadcast the learned null static vector.
      std::vector<int> zeros(static_cast<size_t>(num_segments), 0);
      cached_static_ = nn::Rows(null_static_, zeros);
    }
  }

  // Dynamic representations H^(d)_t (Eq. 5).
  Tensor dynamic;
  if (dynamic_encoder_ != nullptr && traffic_ != nullptr) {
    const int clamped =
        std::min(slice, traffic_->num_slices() - 1);
    dynamic = dynamic_encoder_->Forward(DynamicWindowFeatures(clamped),
                                        graph_);
  } else {
    // NULL dynamic features (Def. 8) / ablation w/o-Dyn.
    std::vector<int> zeros(static_cast<size_t>(num_segments), 0);
    dynamic = nn::Rows(null_dynamic_, zeros);
  }

  // Fusion (Eq. 6-7) over h_{i,t} = (h_i^(s) || h_{i,t}^(d)).
  Tensor fused = nn::Concat({cached_static_, dynamic}, /*axis=*/1);
  if (fusion_ != nullptr) fused = fusion_->Forward(fused);

  slice_cache_.emplace(slice, fused);
  if (share) shared_reps_->Put(shared_version_, slice, fused);
  return fused;
}

Tensor StTokenizer::Tokenize(const data::StUnitSequence& sequence) {
  return TokenizeWithHiddenTimes(
      sequence, std::vector<bool>(sequence.segments.size(), false));
}

Tensor StTokenizer::TokenizeWithHiddenTimes(
    const data::StUnitSequence& sequence,
    const std::vector<bool>& hide_time) {
  // Stage attribution for the serving breakdown; nested cache probes
  // subtract themselves, so tokenize and cache_lookup stay disjoint.
  BIGCITY_REQUEST_STAGE_TIMED(kTokenize);
  const int length = sequence.length();
  BIGCITY_CHECK_GT(length, 0);
  BIGCITY_CHECK_EQ(static_cast<int>(hide_time.size()), length);

  // Gather s_{i, t_l} for every position, grouping by slice so each slice's
  // representation matrix is computed once.
  std::vector<Tensor> position_reps;
  position_reps.reserve(static_cast<size_t>(length));
  for (int l = 0; l < length; ++l) {
    const int slice =
        traffic_ != nullptr ? traffic_->SliceOf(sequence.timestamps[
                                  static_cast<size_t>(l)])
                            : 0;
    Tensor reps = SpatialRepresentations(slice);
    position_reps.push_back(
        nn::Rows(reps, {sequence.segments[static_cast<size_t>(l)]}));
  }
  Tensor spatial = nn::Concat(position_reps, /*axis=*/0);  // [L, 2*Dh]

  // Time features iota_tau and delta_tau (Eq. 8).
  std::vector<float> time_data(static_cast<size_t>(length) *
                               (data::kTimeFeatureDim + 1));
  for (int l = 0; l < length; ++l) {
    float* row = time_data.data() +
                 static_cast<size_t>(l) * (data::kTimeFeatureDim + 1);
    if (!hide_time[static_cast<size_t>(l)]) {
      auto features =
          data::TimeFeatures(sequence.timestamps[static_cast<size_t>(l)]);
      std::copy(features.begin(), features.end(), row);
      const double delta =
          l == 0 ? 0.0
                 : sequence.timestamps[static_cast<size_t>(l)] -
                       sequence.timestamps[static_cast<size_t>(l - 1)];
      row[data::kTimeFeatureDim] = data::DeltaFeature(delta);
    }
    // Hidden times leave the row zeroed — the TTE prompt protocol.
  }
  Tensor time = Tensor::FromData({length, data::kTimeFeatureDim + 1},
                                 std::move(time_data));

  return temporal_mlp_->Forward(nn::Concat({spatial, time}, /*axis=*/1));
}

void StTokenizer::FreezeAllButTemporalMlp() {
  SetTrainable(false);
  temporal_mlp_->SetTrainable(true);
}

}  // namespace bigcity::core
