#ifndef BIGCITY_CORE_BIGCITY_MODEL_H_
#define BIGCITY_CORE_BIGCITY_MODEL_H_

#include <memory>
#include <vector>

#include "core/backbone.h"
#include "core/config.h"
#include "core/st_tokenizer.h"
#include "core/task.h"
#include "core/task_heads.h"
#include "core/text_tokenizer.h"
#include "data/dataset.h"
#include "nn/module.h"
#include "roadnet/poi.h"
#include "util/status.h"

namespace bigcity::core {

/// Stable fingerprint of the architecture-relevant BigCityConfig fields
/// (widths, depths, LoRA shape, task limits, ablation switches — not
/// runtime knobs like threads). Two configs with equal fingerprints
/// produce weight-compatible models; version manifests
/// (util::VersionManifest) carry it so the serving runtime can reject a
/// checkpoint built for a different architecture before loading a byte.
std::string ConfigFingerprint(const BigCityConfig& config);

/// The assembled BIGCity model (Fig. 2): Unified ST Tokenizer + Versatile
/// Model with Task-oriented Prompts (backbone LLM + general task heads).
/// One instance serves all eight tasks with a single parameter set; the
/// task to execute is selected by the textual instruction in the prompt.
class BigCityModel : public nn::Module {
 public:
  BigCityModel(const data::CityDataset* dataset, BigCityConfig config);

  // --- Trajectory tasks ------------------------------------------------

  /// Next-hop: logits over all segments for the segment following the
  /// given prefix. `prefix` must contain at least 2 points.
  nn::Tensor NextHopLogits(const data::Trajectory& prefix);

  /// TTE: predicted normalized time deltas [L-1, 1] for positions 1..L-1
  /// (every timestamp but the first is hidden from the model).
  nn::Tensor TravelTimeDeltas(const data::Trajectory& trajectory);

  /// Trajectory classification: user-linkage logits (XA/CD) or binary
  /// traffic-pattern logits (BJ), per the dataset's user count.
  nn::Tensor ClassifyLogits(const data::Trajectory& trajectory);
  bool classifies_users() const;

  /// Similarity-search representation: mean-pooled backbone ST outputs
  /// [1, d_model].
  nn::Tensor Embed(const data::Trajectory& trajectory);

  /// Recovery: segment logits [K, I] for the masked (dropped) positions of
  /// a downsampled trajectory. `kept` are the surviving indices within the
  /// original trajectory (sorted, including endpoints).
  nn::Tensor RecoverLogits(const data::Trajectory& original,
                           const std::vector<int>& kept);

  // --- Traffic-state tasks ---------------------------------------------

  /// Predicts the next `horizon` slices of one segment's states given
  /// slices [start, start+input_steps): [horizon, kTrafficChannels],
  /// normalized units.
  nn::Tensor PredictTraffic(int segment, int start_slice, int horizon);

  /// Imputes masked positions of a traffic window: [K, kTrafficChannels].
  nn::Tensor ImputeTraffic(int segment, int start_slice, int window,
                           const std::vector<int>& masked);

  // --- Batched inference entry points ------------------------------------
  //
  // Cross-request batching for the serving runtime: prompts are assembled
  // per request, row-concatenated through the backbone (row-wise layers run
  // as one tall GEMM; attention per sequence), and the task heads run once
  // over the stacked placeholder outputs. Every returned tensor is
  // bit-identical to the corresponding single-request method.

  /// One [1, I] logits tensor per prefix. When `caches` is given (one
  /// entry per prefix, entries may be null) each non-null empty KvCache
  /// receives that prefix's backbone attention state — a batched prefill —
  /// while a non-null cache holding the state of a served prefix of the
  /// same trajectory decodes only its suffix rows against it (a batched
  /// NextHopLogitsCached). Mixed batches are fine; results are
  /// bit-identical to the single-request methods either way.
  std::vector<nn::Tensor> BatchNextHopLogits(
      const std::vector<data::Trajectory>& prefixes,
      const std::vector<nn::KvCache*>* caches = nullptr);
  /// One [L_i - 1, 1] delta tensor per trajectory.
  std::vector<nn::Tensor> BatchTravelTimeDeltas(
      const std::vector<data::Trajectory>& trajectories);

  struct TrafficQuery {
    int segment;
    int start_slice;
    int horizon;
  };
  /// One [horizon_i, kTrafficChannels] tensor per query.
  std::vector<nn::Tensor> BatchPredictTraffic(
      const std::vector<TrafficQuery>& queries);

  /// Validated batch variants: screen every input exactly like the
  /// single-request Try* methods; any invalid member fails the whole batch
  /// (callers split and retry per item to attribute the error).
  util::Result<std::vector<nn::Tensor>> TryBatchNextHopLogits(
      const std::vector<data::Trajectory>& prefixes,
      const std::vector<nn::KvCache*>* caches = nullptr);
  util::Result<std::vector<nn::Tensor>> TryBatchTravelTimeDeltas(
      const std::vector<data::Trajectory>& trajectories);
  util::Result<std::vector<nn::Tensor>> TryBatchPredictTraffic(
      const std::vector<TrafficQuery>& queries);

  // --- KV-cached autoregressive decoding ----------------------------------

  /// Next-hop logits reusing the cached attention state of a previous call
  /// whose prompt shares this prefix's tokens (the caller guarantees the
  /// cached positions match, e.g. by keying the cache on the trajectory
  /// prefix). The cache is truncated to the shared region — text
  /// instruction plus the first L-1 ST tokens — and only the final ST
  /// token and the [CLAS] placeholder run through the transformer.
  /// Bit-identical to NextHopLogits; an empty cache degenerates to a full
  /// (still bit-identical) forward that populates the cache.
  nn::Tensor NextHopLogitsCached(const data::Trajectory& prefix,
                                 nn::KvCache* cache);
  util::Result<nn::Tensor> TryNextHopLogitsCached(
      const data::Trajectory& prefix, nn::KvCache* cache);

  // --- Validated (Status-returning) inference entry points --------------
  //
  // The serving runtime (src/serve) must survive malformed requests, so
  // each task has a Try* variant that validates the input against the
  // bound dataset (segment ranges, timestamp monotonicity, window bounds,
  // task-specific length minima) and returns kInvalidArgument instead of
  // CHECK-aborting the process. On success they delegate to the plain
  // method above — results are bit-identical.

  util::Result<nn::Tensor> TryNextHopLogits(const data::Trajectory& prefix);
  util::Result<nn::Tensor> TryTravelTimeDeltas(
      const data::Trajectory& trajectory);
  util::Result<nn::Tensor> TryClassifyLogits(
      const data::Trajectory& trajectory);
  util::Result<nn::Tensor> TryEmbed(const data::Trajectory& trajectory);
  util::Result<nn::Tensor> TryRecoverLogits(const data::Trajectory& original,
                                            const std::vector<int>& kept);
  util::Result<nn::Tensor> TryPredictTraffic(int segment, int start_slice,
                                             int horizon);
  util::Result<nn::Tensor> TryImputeTraffic(int segment, int start_slice,
                                            int window,
                                            const std::vector<int>& masked);

  // --- Stage-1 masked reconstruction (Sec. VI-A) ------------------------

  struct Reconstruction {
    nn::Tensor segment_logits;  // [K, I]
    nn::Tensor states;          // [K, C]
    nn::Tensor times;           // [K, 1] normalized delta units.
  };
  /// Masks the given positions of an ST-unit sequence and reconstructs
  /// them via ([CLAS], [REG]) placeholder pairs (Eq. 12-14).
  Reconstruction MaskedReconstruct(const data::StUnitSequence& sequence,
                                   const std::vector<int>& masked);

  // --- Plumbing -----------------------------------------------------------

  /// Must be called after every optimizer step (clears tokenizer caches).
  void BeginStep() { tokenizer_->BeginStep(); }

  /// Truncates long trajectories to config.max_trajectory_tokens by
  /// uniform subsampling that keeps both endpoints.
  data::Trajectory ClipTrajectory(const data::Trajectory& trajectory) const;

  StTokenizer* tokenizer() { return tokenizer_.get(); }
  Backbone* backbone() { return backbone_.get(); }
  GeneralTaskHeads* heads() { return heads_.get(); }
  const TextTokenizer& text_tokenizer() const { return *text_tokenizer_; }
  const BigCityConfig& config() const { return config_; }
  const data::CityDataset* dataset() const { return dataset_; }

  /// Swaps the dataset binding (cross-city transfer: new tokenizer data
  /// sources but retained backbone weights is done by constructing a new
  /// model and CopyStateFrom on the backbone).

 private:
  nn::Tensor StTokensFor(const data::StUnitSequence& sequence,
                         const std::vector<bool>& hide_time);
  PromptInput MakePrompt(Task task, nn::Tensor st_tokens) const;

  const data::CityDataset* dataset_;
  BigCityConfig config_;
  util::Rng rng_;
  std::unique_ptr<roadnet::PoiLayer> poi_layer_;  // Optional POI extension.
  std::unique_ptr<TextTokenizer> text_tokenizer_;
  std::unique_ptr<StTokenizer> tokenizer_;
  std::unique_ptr<Backbone> backbone_;
  std::unique_ptr<GeneralTaskHeads> heads_;
};

}  // namespace bigcity::core

#endif  // BIGCITY_CORE_BIGCITY_MODEL_H_
