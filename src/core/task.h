#ifndef BIGCITY_CORE_TASK_H_
#define BIGCITY_CORE_TASK_H_

#include <string>

namespace bigcity::core {

/// The eight ST analysis tasks BIGCity is co-trained on (Table I).
enum class Task {
  kNextHop = 0,            // Classification (segment id).
  kTrajClassification,     // Classification (user id or binary pattern).
  kTravelTimeEstimation,   // Regression (timestamps).
  kMostSimilarSearch,      // Comparison (representation based).
  kTrajRecovery,           // Generation (segment ids at [MASK]s).
  kTrafficOneStep,         // Regression (next slice state).
  kTrafficMultiStep,       // Regression (next H slice states).
  kTrafficImputation,      // Generation (masked slice states).
};

inline constexpr int kNumTasks = 8;

/// Fixed instruction template for each task (Fig. 3). The paper selects
/// these from ChatGPT-generated candidates; here they are fixed strings.
const std::string& InstructionFor(Task task);

/// Short display name ("Next", "TTE", ...).
const std::string& TaskName(Task task);

}  // namespace bigcity::core

#endif  // BIGCITY_CORE_TASK_H_
