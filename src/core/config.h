#ifndef BIGCITY_CORE_CONFIG_H_
#define BIGCITY_CORE_CONFIG_H_

#include <cstdint>

namespace bigcity::core {

/// Hyper-parameters of the BIGCity model. Defaults are sized for
/// single-CPU-core training; the architecture is scale-free.
struct BigCityConfig {
  // --- ST tokenizer (Sec. IV-B) ---
  int64_t spatial_dim = 32;     // D_h: static/dynamic representation width.
  int64_t gat_hidden = 32;      // Hidden width inside each GAT encoder.
  int64_t gat_heads = 2;
  int dynamic_window = 3;       // T': history slices for the dynamic encoder.

  // --- Backbone (Sec. V-B) ---
  int64_t d_model = 64;
  int64_t num_heads = 4;
  int64_t num_layers = 2;
  int64_t max_sequence = 128;   // Positional table length.

  // --- LoRA (Sec. V-B, Fig. 5) ---
  int64_t lora_rank = 8;
  float lora_alpha = 16.0f;
  double lora_rate = 1.0;       // Fraction n of blocks carrying adapters.

  // --- Task limits ---
  int max_trajectory_tokens = 24;  // Longer trips are subsampled.
  int traffic_input_steps = 12;
  int traffic_horizon = 6;

  // --- Ablation switches (Table VII) ---
  bool use_static_encoder = true;
  bool use_dynamic_encoder = true;
  bool use_fusion_encoder = true;
  bool use_prompts = true;

  // --- POI extension (the paper's future-work direction) ---
  /// When true, a synthetic POI layer augments the static segment features
  /// consumed by the static encoder.
  bool use_poi_features = false;
  int num_pois = 200;

  // --- Training ---
  float lambda_reg = 0.5f;   // lambda_1 in Eq. 16.
  float lambda_tim = 0.5f;   // lambda_2 in Eq. 16 / 17.
  float lambda_gen = 1.0f;   // lambda_3 in Eq. 17.

  /// Kernel-layer worker threads. 0 keeps the current global setting
  /// (default 1). Any value yields bit-identical results — partitioning is
  /// static, so this only trades wall-clock time.
  int threads = 0;

  uint64_t seed = 7;
};

}  // namespace bigcity::core

#endif  // BIGCITY_CORE_CONFIG_H_
