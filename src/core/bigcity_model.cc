#include "core/bigcity_model.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "data/validate.h"
#include "util/checkpoint.h"
#include "nn/kernels/kernels.h"
#include "nn/ops.h"
#include "util/check.h"

namespace bigcity::core {

using data::StUnitSequence;
using nn::Tensor;

std::string ConfigFingerprint(const BigCityConfig& config) {
  // Field order is part of the fingerprint contract: append-only. Runtime
  // knobs (threads, seed) are deliberately excluded — they do not change
  // the parameter set a checkpoint must match.
  std::string canonical;
  canonical += "spatial_dim=" + std::to_string(config.spatial_dim);
  canonical += ";gat_hidden=" + std::to_string(config.gat_hidden);
  canonical += ";gat_heads=" + std::to_string(config.gat_heads);
  canonical += ";dynamic_window=" + std::to_string(config.dynamic_window);
  canonical += ";d_model=" + std::to_string(config.d_model);
  canonical += ";num_heads=" + std::to_string(config.num_heads);
  canonical += ";num_layers=" + std::to_string(config.num_layers);
  canonical += ";max_sequence=" + std::to_string(config.max_sequence);
  canonical += ";lora_rank=" + std::to_string(config.lora_rank);
  canonical += ";lora_alpha=" + std::to_string(config.lora_alpha);
  canonical += ";lora_rate=" + std::to_string(config.lora_rate);
  canonical +=
      ";max_traj_tokens=" + std::to_string(config.max_trajectory_tokens);
  canonical +=
      ";traffic_input_steps=" + std::to_string(config.traffic_input_steps);
  canonical += ";traffic_horizon=" + std::to_string(config.traffic_horizon);
  canonical += ";static=" + std::to_string(config.use_static_encoder);
  canonical += ";dynamic=" + std::to_string(config.use_dynamic_encoder);
  canonical += ";fusion=" + std::to_string(config.use_fusion_encoder);
  canonical += ";prompts=" + std::to_string(config.use_prompts);
  canonical += ";poi=" + std::to_string(config.use_poi_features);
  canonical += ";num_pois=" + std::to_string(config.num_pois);
  const uint32_t crc =
      util::Crc32(canonical.data(), canonical.size());
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "cfg-%08x", crc);
  return buffer;
}

BigCityModel::BigCityModel(const data::CityDataset* dataset,
                           BigCityConfig config)
    : dataset_(dataset), config_(config), rng_(config.seed) {
  BIGCITY_CHECK(dataset != nullptr);
  if (config_.threads > 0) nn::kernels::SetNumThreads(config_.threads);
  text_tokenizer_ = std::make_unique<TextTokenizer>(InstructionCorpus());
  const data::TrafficStateSeries* traffic =
      dataset->config().has_dynamic_features ? &dataset->traffic() : nullptr;
  if (config_.use_poi_features) {
    poi_layer_ = std::make_unique<roadnet::PoiLayer>(
        &dataset->network(), config_.num_pois, config_.seed ^ 0x9090);
  }
  tokenizer_ = std::make_unique<StTokenizer>(&dataset->network(), traffic,
                                             config_, &rng_,
                                             poi_layer_.get());
  backbone_ = std::make_unique<Backbone>(text_tokenizer_->vocab_size(),
                                         config_, &rng_);
  LabelSpace labels;
  labels.num_segments = dataset->network().num_segments();
  labels.num_users = dataset->num_users();
  heads_ = std::make_unique<GeneralTaskHeads>(config_.d_model, labels, &rng_);
  RegisterModule("tokenizer", tokenizer_.get());
  RegisterModule("backbone", backbone_.get());
  RegisterModule("heads", heads_.get());
  // The module tree is static from here on (EnableLora adds parameters,
  // not modules), so profiler/health attribution paths can be assigned
  // once and match NamedParameters() prefixes for the model's lifetime.
  AssignModulePaths();
}

bool BigCityModel::classifies_users() const {
  return dataset_->config().has_dynamic_features;  // XA/CD style datasets.
}

data::Trajectory BigCityModel::ClipTrajectory(
    const data::Trajectory& trajectory) const {
  const int max_len = config_.max_trajectory_tokens;
  if (trajectory.length() <= max_len) return trajectory;
  data::Trajectory clipped;
  clipped.user_id = trajectory.user_id;
  clipped.pattern_label = trajectory.pattern_label;
  clipped.points.reserve(static_cast<size_t>(max_len));
  const double step = static_cast<double>(trajectory.length() - 1) /
                      static_cast<double>(max_len - 1);
  int previous = -1;
  for (int k = 0; k < max_len; ++k) {
    int index = static_cast<int>(k * step + 0.5);
    index = std::clamp(index, 0, trajectory.length() - 1);
    if (index == previous) continue;
    previous = index;
    clipped.points.push_back(
        trajectory.points[static_cast<size_t>(index)]);
  }
  return clipped;
}

Tensor BigCityModel::StTokensFor(const StUnitSequence& sequence,
                                 const std::vector<bool>& hide_time) {
  return tokenizer_->TokenizeWithHiddenTimes(sequence, hide_time);
}

PromptInput BigCityModel::MakePrompt(Task task, Tensor st_tokens) const {
  PromptInput prompt;
  if (config_.use_prompts) {
    prompt.text_ids = text_tokenizer_->Encode(InstructionFor(task));
  }
  prompt.st_tokens = std::move(st_tokens);
  return prompt;
}

// --- Trajectory tasks ------------------------------------------------------

Tensor BigCityModel::NextHopLogits(const data::Trajectory& prefix) {
  BIGCITY_CHECK_GE(prefix.length(), 1);
  StUnitSequence seq = StUnitSequence::FromTrajectory(prefix);
  PromptInput prompt = MakePrompt(
      Task::kNextHop,
      StTokensFor(seq, std::vector<bool>(seq.segments.size(), false)));
  prompt.task_tokens = {TaskTokenKind::kClas};
  BackboneOutput out = backbone_->Forward(prompt);
  return heads_->SegmentLogits(out.task_outputs);
}

Tensor BigCityModel::TravelTimeDeltas(const data::Trajectory& trajectory) {
  BIGCITY_CHECK_GE(trajectory.length(), 2);
  StUnitSequence seq = StUnitSequence::FromTrajectory(trajectory);
  // Hide every timestamp except the departure (Sec. VII-B protocol).
  std::vector<bool> hide(seq.segments.size(), true);
  hide[0] = false;
  PromptInput prompt =
      MakePrompt(Task::kTravelTimeEstimation, StTokensFor(seq, hide));
  prompt.task_tokens.assign(static_cast<size_t>(seq.length() - 1),
                            TaskTokenKind::kReg);
  BackboneOutput out = backbone_->Forward(prompt);
  return heads_->TimeRegression(out.task_outputs);
}

Tensor BigCityModel::ClassifyLogits(const data::Trajectory& trajectory) {
  StUnitSequence seq = StUnitSequence::FromTrajectory(trajectory);
  PromptInput prompt = MakePrompt(
      Task::kTrajClassification,
      StTokensFor(seq, std::vector<bool>(seq.segments.size(), false)));
  prompt.task_tokens = {TaskTokenKind::kClas};
  BackboneOutput out = backbone_->Forward(prompt);
  return classifies_users() ? heads_->UserLogits(out.task_outputs)
                            : heads_->PatternLogits(out.task_outputs);
}

Tensor BigCityModel::Embed(const data::Trajectory& trajectory) {
  StUnitSequence seq = StUnitSequence::FromTrajectory(trajectory);
  PromptInput prompt = MakePrompt(
      Task::kMostSimilarSearch,
      StTokensFor(seq, std::vector<bool>(seq.segments.size(), false)));
  BackboneOutput out = backbone_->Forward(prompt);
  return nn::MeanRows(out.st_outputs);
}

Tensor BigCityModel::RecoverLogits(const data::Trajectory& original,
                                   const std::vector<int>& kept) {
  const int length = original.length();
  BIGCITY_CHECK_GE(length, 2);
  BIGCITY_CHECK_GE(static_cast<int>(kept.size()), 2);

  // Tokens for the kept sub-trajectory; masked slots become [MASK] rows in
  // the backbone (Fig. 3d).
  data::Trajectory kept_trajectory;
  kept_trajectory.user_id = original.user_id;
  for (int index : kept) {
    BIGCITY_CHECK(index >= 0 && index < length);
    kept_trajectory.points.push_back(
        original.points[static_cast<size_t>(index)]);
  }
  StUnitSequence kept_seq = StUnitSequence::FromTrajectory(kept_trajectory);
  Tensor kept_tokens = StTokensFor(
      kept_seq, std::vector<bool>(kept_seq.segments.size(), false));

  // Interleave kept tokens with zero rows at masked positions; the backbone
  // replaces masked rows by the learnable [MASK] vector.
  std::vector<bool> is_kept(static_cast<size_t>(length), false);
  for (int index : kept) is_kept[static_cast<size_t>(index)] = true;
  std::vector<Tensor> rows;
  std::vector<int> mask_positions;
  Tensor zero_row = Tensor::Zeros({1, config_.d_model});
  int kept_cursor = 0;
  for (int l = 0; l < length; ++l) {
    if (is_kept[static_cast<size_t>(l)]) {
      rows.push_back(nn::SliceRows(kept_tokens, kept_cursor, kept_cursor + 1));
      ++kept_cursor;
    } else {
      rows.push_back(zero_row);
      mask_positions.push_back(l);
    }
  }
  BIGCITY_CHECK(!mask_positions.empty()) << "nothing to recover";

  PromptInput prompt =
      MakePrompt(Task::kTrajRecovery, nn::Concat(rows, /*axis=*/0));
  prompt.mask_positions = mask_positions;
  prompt.task_tokens.assign(mask_positions.size(), TaskTokenKind::kClas);
  BackboneOutput out = backbone_->Forward(prompt);
  return heads_->SegmentLogits(out.task_outputs);
}

// --- Validated entry points -------------------------------------------------
//
// Each Try* validates against the bound dataset and clips over-long
// trajectories (the backbone's positional table is finite), then delegates
// to the CHECK-based method — identical numerics on valid input.

namespace {

/// Shared trajectory screening: structural validity plus a task-specific
/// minimum length (checked before clipping; clipping preserves >= 2).
util::Status ScreenTrajectory(const data::Trajectory& trajectory,
                              int num_segments, int min_len,
                              const char* task) {
  if (auto s = data::ValidateTrajectory(trajectory, num_segments); !s.ok()) {
    return s;
  }
  if (trajectory.length() < min_len) {
    return util::Status::InvalidArgument(
        std::string(task) + " needs at least " + std::to_string(min_len) +
        " points, got " + std::to_string(trajectory.length()));
  }
  return util::Status::Ok();
}

}  // namespace

util::Result<Tensor> BigCityModel::TryNextHopLogits(
    const data::Trajectory& prefix) {
  if (auto s = ScreenTrajectory(prefix, dataset_->network().num_segments(),
                                1, "next-hop");
      !s.ok()) {
    return s;
  }
  return NextHopLogits(ClipTrajectory(prefix));
}

util::Result<Tensor> BigCityModel::TryTravelTimeDeltas(
    const data::Trajectory& trajectory) {
  if (auto s = ScreenTrajectory(trajectory,
                                dataset_->network().num_segments(), 2, "TTE");
      !s.ok()) {
    return s;
  }
  return TravelTimeDeltas(ClipTrajectory(trajectory));
}

util::Result<Tensor> BigCityModel::TryClassifyLogits(
    const data::Trajectory& trajectory) {
  if (auto s = ScreenTrajectory(trajectory,
                                dataset_->network().num_segments(), 1,
                                "classification");
      !s.ok()) {
    return s;
  }
  return ClassifyLogits(ClipTrajectory(trajectory));
}

util::Result<Tensor> BigCityModel::TryEmbed(
    const data::Trajectory& trajectory) {
  if (auto s = ScreenTrajectory(trajectory,
                                dataset_->network().num_segments(), 1,
                                "similarity embedding");
      !s.ok()) {
    return s;
  }
  return Embed(ClipTrajectory(trajectory));
}

util::Result<Tensor> BigCityModel::TryRecoverLogits(
    const data::Trajectory& original, const std::vector<int>& kept) {
  // Recovery indexes the *unclipped* trajectory, so length is bounded by
  // the positional table rather than silently subsampled.
  if (auto s = ScreenTrajectory(original,
                                dataset_->network().num_segments(), 2,
                                "recovery");
      !s.ok()) {
    return s;
  }
  if (original.length() > config_.max_trajectory_tokens) {
    return util::Status::InvalidArgument(
        "recovery trajectory length " + std::to_string(original.length()) +
        " exceeds max_trajectory_tokens " +
        std::to_string(config_.max_trajectory_tokens));
  }
  if (kept.size() < 2) {
    return util::Status::InvalidArgument("recovery needs >= 2 kept indices");
  }
  if (static_cast<int>(kept.size()) >= original.length()) {
    return util::Status::InvalidArgument(
        "recovery has no masked positions (kept covers the trajectory)");
  }
  int previous = -1;
  for (int index : kept) {
    if (index < 0 || index >= original.length()) {
      return util::Status::InvalidArgument(
          "kept index " + std::to_string(index) + " outside [0, " +
          std::to_string(original.length()) + ")");
    }
    if (index <= previous) {
      return util::Status::InvalidArgument(
          "kept indices must be strictly increasing");
    }
    previous = index;
  }
  return RecoverLogits(original, kept);
}

util::Result<Tensor> BigCityModel::TryPredictTraffic(int segment,
                                                     int start_slice,
                                                     int horizon) {
  if (horizon < 1 || horizon > static_cast<int>(config_.max_sequence)) {
    return util::Status::InvalidArgument("traffic horizon " +
                                         std::to_string(horizon) +
                                         " out of range");
  }
  if (auto s = data::ValidateTrafficWindow(dataset_->traffic(), segment,
                                           start_slice,
                                           config_.traffic_input_steps);
      !s.ok()) {
    return s;
  }
  return PredictTraffic(segment, start_slice, horizon);
}

util::Result<Tensor> BigCityModel::TryImputeTraffic(
    int segment, int start_slice, int window,
    const std::vector<int>& masked) {
  if (auto s = data::ValidateTrafficWindow(dataset_->traffic(), segment,
                                           start_slice, window);
      !s.ok()) {
    return s;
  }
  if (masked.empty()) {
    return util::Status::InvalidArgument("imputation mask is empty");
  }
  for (int index : masked) {
    if (index < 0 || index >= window) {
      return util::Status::InvalidArgument(
          "imputation mask index " + std::to_string(index) +
          " outside [0, " + std::to_string(window) + ")");
    }
  }
  return ImputeTraffic(segment, start_slice, window, masked);
}

// --- Traffic-state tasks -----------------------------------------------------

Tensor BigCityModel::PredictTraffic(int segment, int start_slice,
                                    int horizon) {
  BIGCITY_CHECK_GT(horizon, 0);
  StUnitSequence seq = StUnitSequence::FromTrafficSeries(
      dataset_->traffic(), segment, start_slice, config_.traffic_input_steps);
  PromptInput prompt = MakePrompt(
      horizon == 1 ? Task::kTrafficOneStep : Task::kTrafficMultiStep,
      StTokensFor(seq, std::vector<bool>(seq.segments.size(), false)));
  prompt.task_tokens.assign(static_cast<size_t>(horizon),
                            TaskTokenKind::kReg);
  BackboneOutput out = backbone_->Forward(prompt);
  return heads_->StateRegression(out.task_outputs);
}

Tensor BigCityModel::ImputeTraffic(int segment, int start_slice, int window,
                                   const std::vector<int>& masked) {
  BIGCITY_CHECK(!masked.empty());
  StUnitSequence seq = StUnitSequence::FromTrafficSeries(
      dataset_->traffic(), segment, start_slice, window);
  PromptInput prompt = MakePrompt(
      Task::kTrafficImputation,
      StTokensFor(seq, std::vector<bool>(seq.segments.size(), false)));
  prompt.mask_positions = masked;
  prompt.task_tokens.assign(masked.size(), TaskTokenKind::kReg);
  BackboneOutput out = backbone_->Forward(prompt);
  return heads_->StateRegression(out.task_outputs);
}

// --- Batched inference -------------------------------------------------------

std::vector<Tensor> BigCityModel::BatchNextHopLogits(
    const std::vector<data::Trajectory>& prefixes,
    const std::vector<nn::KvCache*>* caches) {
  BIGCITY_CHECK(!prefixes.empty());
  if (caches != nullptr) BIGCITY_CHECK_EQ(caches->size(), prefixes.size());
  std::vector<PromptInput> prompts;
  prompts.reserve(prefixes.size());
  for (size_t i = 0; i < prefixes.size(); ++i) {
    const data::Trajectory& prefix = prefixes[i];
    BIGCITY_CHECK_GE(prefix.length(), 1);
    StUnitSequence seq = StUnitSequence::FromTrajectory(prefix);
    PromptInput prompt = MakePrompt(
        Task::kNextHop,
        StTokensFor(seq, std::vector<bool>(seq.segments.size(), false)));
    prompt.task_tokens = {TaskTokenKind::kClas};
    // A member arriving with cached attention state decodes only its
    // suffix: truncate to the reusable region under the same rule as
    // NextHopLogitsCached (everything but the previous call's [CLAS] row,
    // capped at text + all but the last ST token).
    if (caches != nullptr && (*caches)[i] != nullptr &&
        (*caches)[i]->length() > 0) {
      const int64_t text_len = static_cast<int64_t>(prompt.text_ids.size());
      const int64_t shared_max =
          std::min<int64_t>((*caches)[i]->length() - 1,
                            text_len + static_cast<int64_t>(seq.length()) - 1);
      (*caches)[i]->Truncate(shared_max);
    }
    prompts.push_back(std::move(prompt));
  }
  std::vector<BackboneOutput> outs =
      backbone_->ForwardBatched(prompts, caches);
  std::vector<Tensor> stacked;
  stacked.reserve(outs.size());
  for (const BackboneOutput& out : outs) stacked.push_back(out.task_outputs);
  // One head GEMM over the stacked [B, d] placeholder outputs.
  Tensor logits = heads_->SegmentLogits(nn::Concat(stacked, /*axis=*/0));
  std::vector<Tensor> results;
  results.reserve(outs.size());
  for (int64_t i = 0; i < static_cast<int64_t>(outs.size()); ++i) {
    results.push_back(nn::SliceRows(logits, i, i + 1));
  }
  return results;
}

std::vector<Tensor> BigCityModel::BatchTravelTimeDeltas(
    const std::vector<data::Trajectory>& trajectories) {
  BIGCITY_CHECK(!trajectories.empty());
  std::vector<PromptInput> prompts;
  prompts.reserve(trajectories.size());
  std::vector<int64_t> counts;
  counts.reserve(trajectories.size());
  for (const data::Trajectory& trajectory : trajectories) {
    BIGCITY_CHECK_GE(trajectory.length(), 2);
    StUnitSequence seq = StUnitSequence::FromTrajectory(trajectory);
    std::vector<bool> hide(seq.segments.size(), true);
    hide[0] = false;
    PromptInput prompt =
        MakePrompt(Task::kTravelTimeEstimation, StTokensFor(seq, hide));
    prompt.task_tokens.assign(static_cast<size_t>(seq.length() - 1),
                              TaskTokenKind::kReg);
    counts.push_back(seq.length() - 1);
    prompts.push_back(std::move(prompt));
  }
  std::vector<BackboneOutput> outs = backbone_->ForwardBatched(prompts);
  std::vector<Tensor> stacked;
  stacked.reserve(outs.size());
  for (const BackboneOutput& out : outs) stacked.push_back(out.task_outputs);
  Tensor deltas = heads_->TimeRegression(nn::Concat(stacked, /*axis=*/0));
  std::vector<Tensor> results;
  results.reserve(outs.size());
  int64_t off = 0;
  for (int64_t count : counts) {
    results.push_back(nn::SliceRows(deltas, off, off + count));
    off += count;
  }
  return results;
}

std::vector<Tensor> BigCityModel::BatchPredictTraffic(
    const std::vector<TrafficQuery>& queries) {
  BIGCITY_CHECK(!queries.empty());
  std::vector<PromptInput> prompts;
  prompts.reserve(queries.size());
  for (const TrafficQuery& query : queries) {
    BIGCITY_CHECK_GT(query.horizon, 0);
    StUnitSequence seq = StUnitSequence::FromTrafficSeries(
        dataset_->traffic(), query.segment, query.start_slice,
        config_.traffic_input_steps);
    PromptInput prompt = MakePrompt(
        query.horizon == 1 ? Task::kTrafficOneStep : Task::kTrafficMultiStep,
        StTokensFor(seq, std::vector<bool>(seq.segments.size(), false)));
    prompt.task_tokens.assign(static_cast<size_t>(query.horizon),
                              TaskTokenKind::kReg);
    prompts.push_back(std::move(prompt));
  }
  std::vector<BackboneOutput> outs = backbone_->ForwardBatched(prompts);
  std::vector<Tensor> stacked;
  stacked.reserve(outs.size());
  for (const BackboneOutput& out : outs) stacked.push_back(out.task_outputs);
  Tensor states = heads_->StateRegression(nn::Concat(stacked, /*axis=*/0));
  std::vector<Tensor> results;
  results.reserve(outs.size());
  int64_t off = 0;
  for (const TrafficQuery& query : queries) {
    results.push_back(nn::SliceRows(states, off, off + query.horizon));
    off += query.horizon;
  }
  return results;
}

util::Result<std::vector<Tensor>> BigCityModel::TryBatchNextHopLogits(
    const std::vector<data::Trajectory>& prefixes,
    const std::vector<nn::KvCache*>* caches) {
  if (prefixes.empty()) {
    return util::Status::InvalidArgument("empty next-hop batch");
  }
  std::vector<data::Trajectory> clipped;
  clipped.reserve(prefixes.size());
  for (size_t i = 0; i < prefixes.size(); ++i) {
    const data::Trajectory& prefix = prefixes[i];
    if (auto s = ScreenTrajectory(prefix, dataset_->network().num_segments(),
                                  1, "next-hop");
        !s.ok()) {
      return s;
    }
    clipped.push_back(ClipTrajectory(prefix));
    if (caches != nullptr && (*caches)[i] != nullptr &&
        clipped.back().length() != prefix.length()) {
      // Clipping resamples interior points, so cached positions no longer
      // correspond to this member's tokens.
      (*caches)[i]->Clear();
    }
  }
  return BatchNextHopLogits(clipped, caches);
}

util::Result<std::vector<Tensor>> BigCityModel::TryBatchTravelTimeDeltas(
    const std::vector<data::Trajectory>& trajectories) {
  if (trajectories.empty()) {
    return util::Status::InvalidArgument("empty TTE batch");
  }
  std::vector<data::Trajectory> clipped;
  clipped.reserve(trajectories.size());
  for (const data::Trajectory& trajectory : trajectories) {
    if (auto s = ScreenTrajectory(trajectory,
                                  dataset_->network().num_segments(), 2,
                                  "TTE");
        !s.ok()) {
      return s;
    }
    clipped.push_back(ClipTrajectory(trajectory));
  }
  return BatchTravelTimeDeltas(clipped);
}

util::Result<std::vector<Tensor>> BigCityModel::TryBatchPredictTraffic(
    const std::vector<TrafficQuery>& queries) {
  if (queries.empty()) {
    return util::Status::InvalidArgument("empty traffic batch");
  }
  for (const TrafficQuery& query : queries) {
    if (query.horizon < 1 ||
        query.horizon > static_cast<int>(config_.max_sequence)) {
      return util::Status::InvalidArgument(
          "traffic horizon " + std::to_string(query.horizon) +
          " out of range");
    }
    if (auto s = data::ValidateTrafficWindow(dataset_->traffic(),
                                             query.segment, query.start_slice,
                                             config_.traffic_input_steps);
        !s.ok()) {
      return s;
    }
  }
  return BatchPredictTraffic(queries);
}

// --- KV-cached decoding ------------------------------------------------------

Tensor BigCityModel::NextHopLogitsCached(const data::Trajectory& prefix,
                                         nn::KvCache* cache) {
  BIGCITY_CHECK(cache != nullptr);
  BIGCITY_CHECK_GE(prefix.length(), 1);
  StUnitSequence seq = StUnitSequence::FromTrajectory(prefix);
  PromptInput prompt = MakePrompt(
      Task::kNextHop,
      StTokensFor(seq, std::vector<bool>(seq.segments.size(), false)));
  prompt.task_tokens = {TaskTokenKind::kClas};
  // The caller guarantees the cache was populated by a decode over some
  // served prefix of this trajectory, so every cached row except the last
  // — the previous call's [CLAS] placeholder, which sat where a new ST
  // token now goes — holds exactly this prompt's content at the same
  // position. The reusable region is additionally capped at the text
  // instruction plus all but the last ST token (a same-length re-serve
  // still re-decodes its final token and placeholder).
  const int64_t text_len = static_cast<int64_t>(prompt.text_ids.size());
  const int64_t shared_max = std::min<int64_t>(
      cache->length() > 0 ? cache->length() - 1 : 0,
      text_len + static_cast<int64_t>(seq.length()) - 1);
  if (cache->length() > shared_max) cache->Truncate(shared_max);
  BackboneOutput out = backbone_->ForwardCached(prompt, cache);
  return heads_->SegmentLogits(out.task_outputs);
}

util::Result<Tensor> BigCityModel::TryNextHopLogitsCached(
    const data::Trajectory& prefix, nn::KvCache* cache) {
  BIGCITY_CHECK(cache != nullptr);
  if (auto s = ScreenTrajectory(prefix, dataset_->network().num_segments(),
                                1, "next-hop");
      !s.ok()) {
    return s;
  }
  data::Trajectory clipped = ClipTrajectory(prefix);
  if (clipped.length() != prefix.length()) {
    // Clipping resamples interior points, so cached positions no longer
    // correspond to this prefix's tokens.
    cache->Clear();
  }
  return NextHopLogitsCached(clipped, cache);
}

// --- Stage-1 masked reconstruction ---------------------------------------------

BigCityModel::Reconstruction BigCityModel::MaskedReconstruct(
    const StUnitSequence& sequence, const std::vector<int>& masked) {
  BIGCITY_CHECK(!masked.empty());
  Tensor tokens = StTokensFor(
      sequence, std::vector<bool>(sequence.segments.size(), false));
  // Prompt without instruction text (pre-training stage) but with
  // ([CLAS], [REG]) placeholder pairs per mask (Eq. 12).
  PromptInput prompt;
  prompt.st_tokens = tokens;
  prompt.mask_positions = masked;
  for (size_t k = 0; k < masked.size(); ++k) {
    prompt.task_tokens.push_back(TaskTokenKind::kClas);
    prompt.task_tokens.push_back(TaskTokenKind::kReg);
  }
  BackboneOutput out = backbone_->Forward(prompt);
  // De-interleave CLAS / REG outputs.
  std::vector<int> clas_rows, reg_rows;
  for (int k = 0; k < static_cast<int>(masked.size()); ++k) {
    clas_rows.push_back(2 * k);
    reg_rows.push_back(2 * k + 1);
  }
  Tensor z_clas = nn::Rows(out.task_outputs, clas_rows);
  Tensor z_reg = nn::Rows(out.task_outputs, reg_rows);
  Reconstruction result;
  result.segment_logits = heads_->SegmentLogits(z_clas);
  result.states = heads_->StateRegression(z_reg);
  result.times = heads_->TimeRegression(z_reg);
  return result;
}

}  // namespace bigcity::core
