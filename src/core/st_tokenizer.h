#ifndef BIGCITY_CORE_ST_TOKENIZER_H_
#define BIGCITY_CORE_ST_TOKENIZER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "data/st_unit.h"
#include "data/traffic_state.h"
#include "nn/attention.h"
#include "nn/gat.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "roadnet/poi.h"
#include "roadnet/road_network.h"

namespace bigcity::core {

/// Thread-safe cross-replica cache of spatial representation matrices for
/// serving: every worker's tokenizer recomputes the same static+dynamic GAT
/// pass for a given traffic time slice, so the serving runtime shares one
/// heap-pinned [I, 2*Dh] matrix per (model version, slice) across all
/// workers. Keying by version invalidates naturally on hot-swap: a new
/// replica generation never reads representations produced by old weights.
/// Values are immutable after insertion (tensors are shared by handle), so
/// concurrent readers need no further synchronization. Bounded LRU.
class SpatialRepCache {
 public:
  explicit SpatialRepCache(size_t capacity = 64) : capacity_(capacity) {}

  /// Returns the cached representation for (version, slice), if present.
  std::optional<nn::Tensor> Get(uint64_t version, int slice);
  /// Inserts (first writer wins; concurrent duplicate computes are benign
  /// because every replica of a version produces identical values).
  void Put(uint64_t version, int slice, const nn::Tensor& rep);
  void Clear();

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;

 private:
  struct Entry {
    uint64_t version;
    int slice;
    nn::Tensor rep;
    uint64_t tick;
  };
  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::vector<Entry> entries_;
};

/// The Spatiotemporal Tokenizer (Sec. IV-B): converts ST-unit sequences into
/// ST-token sequences. Pipeline per Eq. 4-8:
///   1. Static encoder: GAT over the road network on static features.
///   2. Dynamic encoder: GAT over the same graph on a T'-slice window of
///      traffic states (per time slice).
///   3. Fusion encoder: learned-query cross attention over ALL segments
///      (long-range, unlike the adjacency-restricted GATs).
///   4. Temporal integration: MLP over (spatial rep || time features ||
///      delta-tau) producing the ST token.
///
/// Spatial representations are cached per time slice within one training
/// step ("ST feature library"); call BeginStep() whenever parameters have
/// changed so the cache (and its autograd graph) is rebuilt.
class StTokenizer : public nn::Module {
 public:
  /// `poi` is optional (the future-work POI extension): when given, its
  /// per-segment category features are appended to the static features.
  StTokenizer(const roadnet::RoadNetwork* network,
              const data::TrafficStateSeries* traffic,  // null => no dynamics
              const BigCityConfig& config, util::Rng* rng,
              const roadnet::PoiLayer* poi = nullptr);

  /// Clears the per-slice feature cache. Must be called after every
  /// optimizer step (and before evaluation batches that follow training).
  void BeginStep();

  /// Tokenizes a full ST-unit sequence -> [L, d_model].
  nn::Tensor Tokenize(const data::StUnitSequence& sequence);

  /// Tokenizes with per-position overrides used by the task prompts:
  /// positions in `hide_time` get zeroed time features and delta (TTE);
  /// this does NOT replace tokens with [MASK] — the backbone does that.
  nn::Tensor TokenizeWithHiddenTimes(const data::StUnitSequence& sequence,
                                     const std::vector<bool>& hide_time);

  /// Spatial representation s_{i,t} for every segment at a slice:
  /// [I, 2 * spatial_dim]. Exposed for baselines-style probing and tests.
  nn::Tensor SpatialRepresentations(int slice);

  /// Attaches a serving-time shared representation cache (not owned).
  /// `version` tags every entry this tokenizer reads or writes; pass the
  /// replica's model version so hot-swapped weights never alias. Only
  /// consulted in no-grad mode — training always recomputes.
  void SetSharedRepCache(SpatialRepCache* cache, uint64_t version) {
    shared_reps_ = cache;
    shared_version_ = version;
  }

  int64_t token_dim() const { return config_.d_model; }
  int64_t spatial_rep_dim() const { return 2 * config_.spatial_dim; }

  /// The final MLP (the only part fine-tuned in cross-city transfer).
  nn::Mlp* temporal_mlp() { return temporal_mlp_.get(); }

  /// Freezes everything except the temporal MLP (Table VI protocol).
  void FreezeAllButTemporalMlp();

  const BigCityConfig& config() const { return config_; }

 private:
  /// Builds the [I, T' * C] windowed dynamic feature matrix for slice t.
  nn::Tensor DynamicWindowFeatures(int slice) const;

  const roadnet::RoadNetwork* network_;
  const data::TrafficStateSeries* traffic_;
  BigCityConfig config_;

  nn::GraphEdges graph_;
  nn::Tensor static_features_;  // [I, static_dim] constant.

  std::unique_ptr<nn::GatEncoder> static_encoder_;
  std::unique_ptr<nn::GatEncoder> dynamic_encoder_;
  std::unique_ptr<nn::LearnedQueryAttention> fusion_;
  std::unique_ptr<nn::Mlp> temporal_mlp_;
  // Learned placeholders when an encoder is absent/ablated (paper: NULL
  // dynamic features on BJ).
  nn::Tensor null_static_;   // [1, spatial_dim]
  nn::Tensor null_dynamic_;  // [1, spatial_dim]

  // Per-step caches.
  nn::Tensor cached_static_;                       // [I, spatial_dim]
  std::unordered_map<int, nn::Tensor> slice_cache_;  // slice -> [I, 2*Dh]

  // Serving-time shared cache (not owned; null outside the server).
  SpatialRepCache* shared_reps_ = nullptr;
  uint64_t shared_version_ = 0;
};

}  // namespace bigcity::core

#endif  // BIGCITY_CORE_ST_TOKENIZER_H_
