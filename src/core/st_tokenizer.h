#ifndef BIGCITY_CORE_ST_TOKENIZER_H_
#define BIGCITY_CORE_ST_TOKENIZER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "data/st_unit.h"
#include "data/traffic_state.h"
#include "nn/attention.h"
#include "nn/gat.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "roadnet/poi.h"
#include "roadnet/road_network.h"

namespace bigcity::core {

/// The Spatiotemporal Tokenizer (Sec. IV-B): converts ST-unit sequences into
/// ST-token sequences. Pipeline per Eq. 4-8:
///   1. Static encoder: GAT over the road network on static features.
///   2. Dynamic encoder: GAT over the same graph on a T'-slice window of
///      traffic states (per time slice).
///   3. Fusion encoder: learned-query cross attention over ALL segments
///      (long-range, unlike the adjacency-restricted GATs).
///   4. Temporal integration: MLP over (spatial rep || time features ||
///      delta-tau) producing the ST token.
///
/// Spatial representations are cached per time slice within one training
/// step ("ST feature library"); call BeginStep() whenever parameters have
/// changed so the cache (and its autograd graph) is rebuilt.
class StTokenizer : public nn::Module {
 public:
  /// `poi` is optional (the future-work POI extension): when given, its
  /// per-segment category features are appended to the static features.
  StTokenizer(const roadnet::RoadNetwork* network,
              const data::TrafficStateSeries* traffic,  // null => no dynamics
              const BigCityConfig& config, util::Rng* rng,
              const roadnet::PoiLayer* poi = nullptr);

  /// Clears the per-slice feature cache. Must be called after every
  /// optimizer step (and before evaluation batches that follow training).
  void BeginStep();

  /// Tokenizes a full ST-unit sequence -> [L, d_model].
  nn::Tensor Tokenize(const data::StUnitSequence& sequence);

  /// Tokenizes with per-position overrides used by the task prompts:
  /// positions in `hide_time` get zeroed time features and delta (TTE);
  /// this does NOT replace tokens with [MASK] — the backbone does that.
  nn::Tensor TokenizeWithHiddenTimes(const data::StUnitSequence& sequence,
                                     const std::vector<bool>& hide_time);

  /// Spatial representation s_{i,t} for every segment at a slice:
  /// [I, 2 * spatial_dim]. Exposed for baselines-style probing and tests.
  nn::Tensor SpatialRepresentations(int slice);

  int64_t token_dim() const { return config_.d_model; }
  int64_t spatial_rep_dim() const { return 2 * config_.spatial_dim; }

  /// The final MLP (the only part fine-tuned in cross-city transfer).
  nn::Mlp* temporal_mlp() { return temporal_mlp_.get(); }

  /// Freezes everything except the temporal MLP (Table VI protocol).
  void FreezeAllButTemporalMlp();

  const BigCityConfig& config() const { return config_; }

 private:
  /// Builds the [I, T' * C] windowed dynamic feature matrix for slice t.
  nn::Tensor DynamicWindowFeatures(int slice) const;

  const roadnet::RoadNetwork* network_;
  const data::TrafficStateSeries* traffic_;
  BigCityConfig config_;

  nn::GraphEdges graph_;
  nn::Tensor static_features_;  // [I, static_dim] constant.

  std::unique_ptr<nn::GatEncoder> static_encoder_;
  std::unique_ptr<nn::GatEncoder> dynamic_encoder_;
  std::unique_ptr<nn::LearnedQueryAttention> fusion_;
  std::unique_ptr<nn::Mlp> temporal_mlp_;
  // Learned placeholders when an encoder is absent/ablated (paper: NULL
  // dynamic features on BJ).
  nn::Tensor null_static_;   // [1, spatial_dim]
  nn::Tensor null_dynamic_;  // [1, spatial_dim]

  // Per-step caches.
  nn::Tensor cached_static_;                       // [I, spatial_dim]
  std::unordered_map<int, nn::Tensor> slice_cache_;  // slice -> [I, 2*Dh]
};

}  // namespace bigcity::core

#endif  // BIGCITY_CORE_ST_TOKENIZER_H_
