#ifndef BIGCITY_OBS_TRACE_H_
#define BIGCITY_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace bigcity::obs {

/// One completed span or flow event. `name` and `category` must point at
/// storage that outlives the buffer (string literals in practice): events
/// are recorded on hot paths and must not allocate.
///
/// `phase` distinguishes the chrome://tracing event kind: 'X' is a
/// complete span (start + duration); 's'/'t'/'f' are flow start / step /
/// finish markers that chrome connects into one arrow chain per
/// `trace_id` across threads. Spans stamp the thread's active trace id
/// (see TraceIdScope) so a request's spans are greppable by id too.
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  uint64_t start_us = 0;     // Relative to the process trace epoch.
  uint64_t duration_us = 0;  // 0 for flow events.
  uint32_t thread_id = 0;
  uint64_t trace_id = 0;     // Request correlation id; 0 = unscoped.
  char phase = 'X';          // 'X' span, 's'/'t'/'f' flow event.
};

/// Microseconds since the process trace epoch (steady clock, first use).
uint64_t TraceNowMicros();

/// Small dense id for the calling thread (0 = first thread observed).
uint32_t TraceThreadId();

/// Process-unique request correlation id (never 0, never reused). One
/// relaxed fetch_add — cheap enough to allocate per request in every
/// build flavor.
uint64_t NextTraceId();

/// The calling thread's active trace id (0 when no request is in scope).
/// Spans recorded while a TraceIdScope is live are stamped with it.
uint64_t CurrentTraceId();
void SetCurrentTraceId(uint64_t trace_id);

/// RAII: makes `trace_id` the calling thread's active trace id for the
/// enclosing scope and restores the previous one on exit, so nested
/// request processing (e.g. batch fallback to the per-item path) stays
/// correctly attributed.
class TraceIdScope {
 public:
  explicit TraceIdScope(uint64_t trace_id) : previous_(CurrentTraceId()) {
    SetCurrentTraceId(trace_id);
  }
  ~TraceIdScope() { SetCurrentTraceId(previous_); }

  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;

 private:
  uint64_t previous_;
};

/// Records one flow event (`phase` must be 's', 't', or 'f') bound to
/// `trace_id` at the current time on the calling thread, when tracing is
/// enabled. chrome://tracing draws an arrow chain through the flow
/// events of one id, attaching each to the span enclosing its timestamp
/// on that thread — this is what renders a request as a single connected
/// flow from admission to response.
void RecordFlowEvent(const char* name, const char* category, char phase,
                     uint64_t trace_id);

/// Tracing is off by default; spans are inert until enabled (one relaxed
/// atomic load per span). Metrics are independent of this switch.
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

/// Bounded in-memory span sink. On overflow the OLDEST events are dropped
/// (the tail of a run is what post-mortems need), counted in dropped(),
/// and mirrored to the `trace.dropped` counter so a truncated trace is
/// detectable from the metrics snapshot and run report alone.
class TraceBuffer {
 public:
  static TraceBuffer& Global();

  explicit TraceBuffer(size_t capacity = 1 << 16);

  /// Drops all buffered events and resets the drop counter; capacity must
  /// be >= 1 (clamped).
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  void Record(const TraceEvent& event);

  /// Buffered events, oldest first.
  std::vector<TraceEvent> Events() const;
  size_t size() const;
  uint64_t dropped() const;
  void Clear();

  /// Writes the buffer as chrome://tracing / Perfetto "traceEvents" JSON:
  /// "X" complete events (with the trace id under "args" when stamped)
  /// plus "s"/"t"/"f" flow events carrying the trace id as the flow
  /// binding "id". Returns false and fills *error on I/O failure.
  bool WriteJson(const std::string& path, std::string* error = nullptr) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t capacity_;
  size_t head_ = 0;  // Index of the oldest event.
  size_t size_ = 0;
  uint64_t dropped_ = 0;
};

/// RAII span: records [construction, destruction) into the global
/// TraceBuffer when tracing is enabled, and optionally the duration (in
/// microseconds) into a histogram. Near-free when tracing is disabled and
/// no histogram is attached.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "app",
                     Histogram* duration_us_histogram = nullptr)
      : name_(name),
        category_(category),
        histogram_(duration_us_histogram),
        armed_(histogram_ != nullptr || TracingEnabled()),
        start_us_(armed_ ? TraceNowMicros() : 0) {}

  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  Histogram* histogram_;
  bool armed_;
  uint64_t start_us_;
};

}  // namespace bigcity::obs

#endif  // BIGCITY_OBS_TRACE_H_
