#ifndef BIGCITY_OBS_TRACE_H_
#define BIGCITY_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace bigcity::obs {

/// One completed span. `name` and `category` must point at storage that
/// outlives the buffer (string literals in practice): events are recorded
/// on hot paths and must not allocate.
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  uint64_t start_us = 0;     // Relative to the process trace epoch.
  uint64_t duration_us = 0;
  uint32_t thread_id = 0;
};

/// Microseconds since the process trace epoch (steady clock, first use).
uint64_t TraceNowMicros();

/// Small dense id for the calling thread (0 = first thread observed).
uint32_t TraceThreadId();

/// Tracing is off by default; spans are inert until enabled (one relaxed
/// atomic load per span). Metrics are independent of this switch.
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

/// Bounded in-memory span sink. On overflow the OLDEST events are dropped
/// (the tail of a run is what post-mortems need) and counted in dropped().
class TraceBuffer {
 public:
  static TraceBuffer& Global();

  explicit TraceBuffer(size_t capacity = 1 << 16);

  /// Drops all buffered events and resets the drop counter; capacity must
  /// be >= 1 (clamped).
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  void Record(const TraceEvent& event);

  /// Buffered events, oldest first.
  std::vector<TraceEvent> Events() const;
  size_t size() const;
  uint64_t dropped() const;
  void Clear();

  /// Writes the buffer as chrome://tracing / Perfetto "traceEvents" JSON
  /// ("X" complete events). Returns false and fills *error on I/O failure.
  bool WriteJson(const std::string& path, std::string* error = nullptr) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t capacity_;
  size_t head_ = 0;  // Index of the oldest event.
  size_t size_ = 0;
  uint64_t dropped_ = 0;
};

/// RAII span: records [construction, destruction) into the global
/// TraceBuffer when tracing is enabled, and optionally the duration (in
/// microseconds) into a histogram. Near-free when tracing is disabled and
/// no histogram is attached.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "app",
                     Histogram* duration_us_histogram = nullptr)
      : name_(name),
        category_(category),
        histogram_(duration_us_histogram),
        armed_(histogram_ != nullptr || TracingEnabled()),
        start_us_(armed_ ? TraceNowMicros() : 0) {}

  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  Histogram* histogram_;
  bool armed_;
  uint64_t start_us_;
};

}  // namespace bigcity::obs

#endif  // BIGCITY_OBS_TRACE_H_
