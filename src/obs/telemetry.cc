#include "obs/telemetry.h"

#include <chrono>
#include <cmath>
#include <utility>

namespace bigcity::obs {

namespace {

void AppendNumber(double value, std::string* out) {
  if (!std::isfinite(value)) {
    out->append("0");  // JSON has no Inf/NaN; clamp rather than corrupt.
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out->append(buffer);
}

uint64_t WallMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TelemetryExporter::~TelemetryExporter() { Stop(); }

void TelemetryExporter::SetPrelude(std::function<void()> prelude) {
  prelude_ = std::move(prelude);
}

bool TelemetryExporter::Start(const std::string& path, Options options,
                              std::string* error) {
  Stop();
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for append";
    return false;
  }
  options_ = options;
  options_.interval_ms = options_.interval_ms > 0 ? options_.interval_ms : 1.0;
  previous_ = MetricsSnapshot{};
  first_tick_ = true;
  ticks_.store(0, std::memory_order_relaxed);
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void TelemetryExporter::Stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  Tick();  // Final flush: deltas since the last periodic tick.
  std::fclose(file_);
  file_ = nullptr;
  running_ = false;
}

void TelemetryExporter::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(
          lock, std::chrono::duration<double, std::milli>(options_.interval_ms),
          [this] { return stop_; });
      if (stop_) return;
    }
    Tick();
  }
}

bool TelemetryExporter::Matches(const std::string& name) const {
  if (options_.prefixes.empty()) return true;
  for (const std::string& prefix : options_.prefixes) {
    if (name.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

void TelemetryExporter::Tick() {
  if (prelude_) prelude_();
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const uint64_t seq = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;

  std::string line;
  line.reserve(1024);
  line.append("{\"event\":\"telemetry\",\"seq\":");
  line.append(std::to_string(seq));
  line.append(",\"wall_ms\":");
  line.append(std::to_string(WallMillis()));
  line.append(",\"interval_ms\":");
  AppendNumber(options_.interval_ms, &line);

  line.append(",\"counters\":{");
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!Matches(name)) continue;
    uint64_t prev = 0;
    if (auto it = previous_.counters.find(name);
        it != previous_.counters.end()) {
      prev = it->second;
    }
    const uint64_t delta = value >= prev ? value - prev : value;
    if (delta == 0 && !first_tick_) continue;
    if (!first) line.append(",");
    first = false;
    line.append("\"").append(name).append("\":");
    line.append(std::to_string(delta));
  }

  line.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!Matches(name)) continue;
    if (!first) line.append(",");
    first = false;
    line.append("\"").append(name).append("\":");
    AppendNumber(value, &line);
  }

  line.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, data] : snapshot.histograms) {
    if (!Matches(name)) continue;
    MetricsSnapshot::HistogramData delta = data;
    if (auto it = previous_.histograms.find(name);
        it != previous_.histograms.end() &&
        it->second.buckets.size() == data.buckets.size() &&
        it->second.count <= data.count) {
      delta.count = data.count - it->second.count;
      delta.sum = data.sum - it->second.sum;
      for (size_t b = 0; b < delta.buckets.size(); ++b) {
        delta.buckets[b] =
            data.buckets[b] >= it->second.buckets[b]
                ? data.buckets[b] - it->second.buckets[b]
                : data.buckets[b];
      }
    }
    if (delta.count == 0 && !first_tick_) continue;
    if (!first) line.append(",");
    first = false;
    line.append("\"").append(name).append("\":{\"count\":");
    line.append(std::to_string(delta.count));
    line.append(",\"sum\":");
    AppendNumber(delta.sum, &line);
    line.append(",\"p50\":");
    AppendNumber(delta.Percentile(0.50), &line);
    line.append(",\"p95\":");
    AppendNumber(delta.Percentile(0.95), &line);
    line.append(",\"p99\":");
    AppendNumber(delta.Percentile(0.99), &line);
    line.append("}");
  }
  line.append("}}\n");

  std::fputs(line.c_str(), file_);
  std::fflush(file_);
  previous_ = snapshot;
  first_tick_ = false;
}

}  // namespace bigcity::obs
