#ifndef BIGCITY_OBS_MEMORY_H_
#define BIGCITY_OBS_MEMORY_H_

// Tensor memory accounting (DESIGN.md §4.10). The autograd layer reports
// every tensor payload allocation/free through the BIGCITY_MEM_* macros
// below; the tracker maintains live bytes, the high-water mark, and
// per-training-phase allocation churn with relaxed atomics only.
//
// This header is included by src/nn/tensor.h, so like obs.h it must be
// self-contained and compile in both BIGCITY_OBS flavors: with probes off
// every macro expands to nothing and the tracker is never touched.

#include <atomic>
#include <cstdint>

#if !defined(BIGCITY_OBS)
#define BIGCITY_OBS 1
#endif

namespace bigcity::obs {

/// Which part of a training step an allocation belongs to. The trainer
/// scopes each step section with ScopedMemPhase; allocations made outside
/// any scope (model construction, evaluation, ...) land in kOther.
enum class MemPhase : int {
  kOther = 0,
  kData = 1,
  kForward = 2,
  kBackward = 3,
  kOptim = 4,
};
inline constexpr int kNumMemPhases = 5;

/// Printable lowercase phase name ("other", "data", ...).
const char* MemPhaseName(MemPhase phase);

/// Process-wide tensor-byte accounting. All mutators are lock-free
/// (relaxed fetch_add plus one CAS loop for the peak); readers see a
/// merged point-in-time view that is exact whenever allocation is
/// quiescent (tensor creation is single-threaded in this codebase).
class MemoryTracker {
 public:
  static MemoryTracker& Global();

  /// Phase applied to this thread's subsequent OnAlloc calls.
  static MemPhase CurrentPhase();
  static void SetCurrentPhase(MemPhase phase);

  void OnAlloc(int64_t bytes);
  void OnFree(int64_t bytes);

  int64_t live_bytes() const;
  int64_t peak_bytes() const;
  /// Total bytes ever allocated / allocation count, overall or per phase.
  int64_t alloc_bytes() const;
  int64_t alloc_count() const;
  int64_t alloc_bytes(MemPhase phase) const;
  int64_t alloc_count(MemPhase phase) const;
  int64_t free_count() const;

  /// Mirrors the current totals into the global MetricsRegistry as
  /// mem.live_bytes / mem.peak_bytes gauges plus per-phase
  /// mem.alloc_bytes.<phase> / mem.allocs.<phase> gauges, so a metrics
  /// snapshot carries the memory picture without a second export path.
  void PublishGauges() const;

  /// Test hook: zeroes every total including the peak.
  void Reset();

 private:
  std::atomic<int64_t> live_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> frees_{0};
  std::atomic<int64_t> phase_bytes_[kNumMemPhases] = {};
  std::atomic<int64_t> phase_count_[kNumMemPhases] = {};
};

/// RAII phase scope for the calling thread; restores the previous phase on
/// destruction so scopes nest.
class ScopedMemPhase {
 public:
  explicit ScopedMemPhase(MemPhase phase)
      : previous_(MemoryTracker::CurrentPhase()) {
    MemoryTracker::SetCurrentPhase(phase);
  }
  ~ScopedMemPhase() { MemoryTracker::SetCurrentPhase(previous_); }

  ScopedMemPhase(const ScopedMemPhase&) = delete;
  ScopedMemPhase& operator=(const ScopedMemPhase&) = delete;

 private:
  MemPhase previous_;
};

}  // namespace bigcity::obs

#if BIGCITY_OBS

/// Accounts `bytes` of tensor payload coming alive / being destroyed.
#define BIGCITY_MEM_ALLOC(bytes) \
  ::bigcity::obs::MemoryTracker::Global().OnAlloc(bytes)
#define BIGCITY_MEM_FREE(bytes) \
  ::bigcity::obs::MemoryTracker::Global().OnFree(bytes)

/// Tags allocations for the rest of the enclosing scope with a MemPhase
/// enumerator name, e.g. BIGCITY_MEM_PHASE(kForward).
#define BIGCITY_MEM_PHASE(phase)                    \
  ::bigcity::obs::ScopedMemPhase bigcity_mem_phase_( \
      ::bigcity::obs::MemPhase::phase)

#else  // !BIGCITY_OBS

#define BIGCITY_MEM_ALLOC(bytes) \
  do {                           \
  } while (0)
#define BIGCITY_MEM_FREE(bytes) \
  do {                          \
  } while (0)
#define BIGCITY_MEM_PHASE(phase) \
  do {                           \
  } while (0)

#endif  // BIGCITY_OBS

#endif  // BIGCITY_OBS_MEMORY_H_
