#ifndef BIGCITY_OBS_SLO_H_
#define BIGCITY_OBS_SLO_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace bigcity::obs {

/// Service-level objective for one tracked task.
struct SloObjective {
  /// Minimum fraction of successful requests over the window. The error
  /// budget is 1 - success_rate; burn rate = observed error rate / budget,
  /// so 1.0 means the budget is being consumed exactly as provisioned and
  /// anything above it is overspend.
  double success_rate = 0.99;

  /// Latency objective the sliding-window p99 is judged against (µs).
  double p99_us = 250000.0;

  /// Sliding window length, in requests.
  size_t window = 512;
};

/// Per-task sliding-window SLO bookkeeping (DESIGN.md §4.15). Record() is
/// one mutex-guarded ring write per request; Publish() recomputes the
/// window statistics and exports them as `slo.<task>.*` gauges:
///
///   slo.<task>.success_rate          window success fraction [0, 1]
///   slo.<task>.burn_rate             error rate / error budget
///   slo.<task>.p50_us / .p99_us      window latency percentiles
///   slo.<task>.p99_within_objective  1 when p99 <= objective.p99_us
///   slo.<task>.window_requests       samples currently in the window
///
/// Consumers: the rollout canary gate reads MaxBurnRate() live (a canary
/// that burns error budget is rolled back), chaos_soak asserts snapshot
/// consistency as an invariant, and the TelemetryExporter ships the
/// gauges to `bigcity_cli top`. Gauges keep their last published value
/// between Publish() calls; Record() self-publishes every
/// kSelfPublishEvery records so the gauges stay live even without an
/// exporter ticking.
class SloTracker {
 public:
  struct TaskSnapshot {
    std::string name;
    SloObjective objective;
    uint64_t total = 0;          // Lifetime requests.
    uint64_t failures_total = 0; // Lifetime failures.
    uint64_t window_requests = 0;
    double success_rate = 1.0;   // Over the window; 1.0 when empty.
    double burn_rate = 0.0;
    double p50_us = 0;
    double p99_us = 0;
    bool p99_within_objective = true;
  };

  /// Registers a task and returns its dense handle (registration order).
  /// Re-registering an existing name replaces its objective and returns
  /// the existing handle; the window is kept.
  int RegisterTask(const std::string& name, SloObjective objective);

  /// Records one finished request. Out-of-range handles are ignored, so
  /// callers on shutdown paths need no registration check.
  void Record(int task, bool success, double latency_us);

  /// Recomputes every task's window statistics and sets the slo.* gauges.
  void Publish();

  TaskSnapshot Snapshot(int task) const;
  std::vector<TaskSnapshot> SnapshotAll() const;

  /// Highest burn rate among tasks with at least `min_requests` samples
  /// in their window (0 when none qualifies).
  double MaxBurnRate(uint64_t min_requests = 1) const;

  int num_tasks() const;

 private:
  struct TaskState {
    std::string name;
    SloObjective objective;
    std::vector<uint8_t> ok;       // Ring of outcomes, parallel arrays.
    std::vector<double> latency_us;
    size_t next = 0;
    size_t count = 0;
    uint64_t total = 0;
    uint64_t failures_total = 0;
    Gauge* success_rate_gauge = nullptr;
    Gauge* burn_rate_gauge = nullptr;
    Gauge* p50_gauge = nullptr;
    Gauge* p99_gauge = nullptr;
    Gauge* p99_within_gauge = nullptr;
    Gauge* window_gauge = nullptr;
  };

  static constexpr uint64_t kSelfPublishEvery = 64;

  TaskSnapshot SnapshotLocked(const TaskState& state) const;
  void PublishLocked(TaskState& state);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TaskState>> tasks_;
};

}  // namespace bigcity::obs

#endif  // BIGCITY_OBS_SLO_H_
