#ifndef BIGCITY_OBS_REPORT_H_
#define BIGCITY_OBS_REPORT_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace bigcity::obs {

/// Append-structured JSONL run report: one JSON object per line, fields in
/// insertion order. The trainer emits one record per finished epoch plus a
/// final summary, so a run's progress is machine-readable without parsing
/// logs.
class RunReport {
 public:
  /// One JSON object under construction. Keys are not escaped (callers use
  /// literal identifiers); string values are.
  class Record {
   public:
    Record& Str(const char* key, const std::string& value);
    Record& Num(const char* key, double value);
    Record& Int(const char* key, int64_t value);
    /// Appends `json_value` verbatim — for nested arrays/objects the
    /// caller already serialized (e.g. per-layer health samples). The
    /// caller is responsible for it being valid JSON.
    Record& Raw(const char* key, const std::string& json_value);
    const std::string& json() const { return json_; }

   private:
    void Key(const char* key);
    std::string json_;
  };

  RunReport() = default;
  ~RunReport() { Close(); }

  RunReport(const RunReport&) = delete;
  RunReport& operator=(const RunReport&) = delete;

  /// Truncates and opens `path`; returns false on failure (the report then
  /// stays inert and Write() is a no-op).
  bool Open(const std::string& path);
  bool is_open() const { return file_ != nullptr; }

  /// Appends one line and flushes, so a crashed run keeps every completed
  /// record.
  void Write(const Record& record);

  void Close();

 private:
  std::FILE* file_ = nullptr;
};

}  // namespace bigcity::obs

#endif  // BIGCITY_OBS_REPORT_H_
