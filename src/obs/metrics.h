#ifndef BIGCITY_OBS_METRICS_H_
#define BIGCITY_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bigcity::obs {

/// Shards per metric. Updates hash to a shard by a process-wide per-thread
/// index, so concurrent writers almost always touch distinct cache lines;
/// reads merge all shards. Power of two so the modulo is a mask.
inline constexpr int kMetricShards = 16;

namespace internal {

/// Stable shard index for the calling thread, in [0, kMetricShards).
int ThisThreadShard();

struct alignas(64) CounterShard {
  std::atomic<uint64_t> value{0};
};

}  // namespace internal

/// Monotonically increasing event count. Add() is lock-free (one relaxed
/// fetch_add on a per-thread-sharded cache line); Value() merges shards.
class Counter {
 public:
  void Add(uint64_t delta) {
    shards_[internal::ThisThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const;
  void Reset();

 private:
  internal::CounterShard shards_[kMetricShards];
};

/// Last-write-wins double value (e.g. current LR, queue depth).
class Gauge {
 public:
  void Set(double value);
  double Value() const;
  void Reset() { Set(0.0); }

 private:
  std::atomic<uint64_t> bits_{0};  // Bit pattern of the double.
};

/// Fixed-bucket histogram. Bucket i counts values <= bounds[i]; one extra
/// overflow bucket counts the rest. Record() is lock-free on the bucket and
/// count (relaxed fetch_add) with a CAS loop only for the double sum.
class Histogram {
 public:
  /// Strictly increasing upper bounds. Empty bounds = a single overflow
  /// bucket (count/sum only).
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  uint64_t Count() const;
  double Sum() const;
  double Mean() const;
  /// Merged per-bucket counts, size bounds().size() + 1 (last = overflow).
  std::vector<uint64_t> BucketCounts() const;
  const std::vector<double>& bounds() const { return bounds_; }
  void Reset();

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_bits{0};  // Bit pattern of the double sum.
  };

  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

/// Exponential microsecond-latency bounds (1us .. 10s), the default for
/// duration histograms.
const std::vector<double>& LatencyBoundsUs();

/// Estimated quantile `q` in [0, 1] from merged bucket counts: cumulative
/// walk with linear interpolation inside the containing bucket. Samples in
/// the overflow bucket clamp to the last finite bound; an empty histogram
/// (or one with no bounds) returns 0.
double HistogramPercentile(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& buckets, double q);

/// Point-in-time merged view of every registered metric.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0;

    double Percentile(double q) const {
      return HistogramPercentile(bounds, buckets, q);
    }
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;
};

/// Process-wide name -> metric registry. Get* registers on first use and
/// returns a stable pointer: callers cache it (the instrumentation macros
/// do so in a function-local static) and hit only the metric's lock-free
/// fast path afterwards. Reset() zeroes values but never invalidates
/// handles.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies only on first registration; later calls with the
  /// same name return the existing histogram unchanged.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = LatencyBoundsUs());

  MetricsSnapshot Snapshot() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace bigcity::obs

#endif  // BIGCITY_OBS_METRICS_H_
