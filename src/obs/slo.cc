#include "obs/slo.h"

#include <algorithm>
#include <cmath>

namespace bigcity::obs {

namespace {

/// Exact small-window quantile: rank = ceil(q * n) - 1 over the sorted
/// samples (the window is at most a few thousand doubles, so a copy +
/// nth_element per Publish is cheap and avoids bucket-resolution error in
/// the p99-vs-objective comparison).
double WindowPercentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  const size_t rank = std::min(
      samples.size() - 1,
      static_cast<size_t>(std::ceil(q * static_cast<double>(samples.size()))) -
          (q > 0 ? 1 : 0));
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<ptrdiff_t>(rank),
                   samples.end());
  return samples[rank];
}

}  // namespace

int SloTracker::RegisterTask(const std::string& name, SloObjective objective) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i]->name == name) {
      tasks_[i]->objective = objective;
      return static_cast<int>(i);
    }
  }
  auto state = std::make_unique<TaskState>();
  state->name = name;
  state->objective = objective;
  state->objective.window = std::max<size_t>(1, objective.window);
  state->ok.reserve(state->objective.window);
  state->latency_us.reserve(state->objective.window);
  MetricsRegistry& registry = MetricsRegistry::Global();
  const std::string prefix = "slo." + name + ".";
  state->success_rate_gauge = registry.GetGauge(prefix + "success_rate");
  state->burn_rate_gauge = registry.GetGauge(prefix + "burn_rate");
  state->p50_gauge = registry.GetGauge(prefix + "p50_us");
  state->p99_gauge = registry.GetGauge(prefix + "p99_us");
  state->p99_within_gauge = registry.GetGauge(prefix + "p99_within_objective");
  state->window_gauge = registry.GetGauge(prefix + "window_requests");
  tasks_.push_back(std::move(state));
  PublishLocked(*tasks_.back());  // Gauges exist (at defaults) from now on.
  return static_cast<int>(tasks_.size()) - 1;
}

void SloTracker::Record(int task, bool success, double latency_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (task < 0 || static_cast<size_t>(task) >= tasks_.size()) return;
  TaskState& state = *tasks_[static_cast<size_t>(task)];
  const size_t window = state.objective.window;
  if (state.ok.size() < window) {
    state.ok.push_back(success ? 1 : 0);
    state.latency_us.push_back(latency_us);
  } else {
    state.ok[state.next] = success ? 1 : 0;
    state.latency_us[state.next] = latency_us;
    state.next = (state.next + 1) % window;
  }
  state.count = state.ok.size();
  ++state.total;
  if (!success) ++state.failures_total;
  if (state.total % kSelfPublishEvery == 0) PublishLocked(state);
}

SloTracker::TaskSnapshot SloTracker::SnapshotLocked(
    const TaskState& state) const {
  TaskSnapshot snapshot;
  snapshot.name = state.name;
  snapshot.objective = state.objective;
  snapshot.total = state.total;
  snapshot.failures_total = state.failures_total;
  snapshot.window_requests = state.count;
  if (state.count > 0) {
    uint64_t successes = 0;
    for (uint8_t ok : state.ok) successes += ok;
    snapshot.success_rate =
        static_cast<double>(successes) / static_cast<double>(state.count);
    snapshot.p50_us = WindowPercentile(state.latency_us, 0.50);
    snapshot.p99_us = WindowPercentile(state.latency_us, 0.99);
  }
  const double error_rate = 1.0 - snapshot.success_rate;
  const double budget = 1.0 - state.objective.success_rate;
  if (budget > 0) {
    snapshot.burn_rate = error_rate / budget;
  } else {
    // A 100% objective has no budget: any failure is infinite burn,
    // reported as a large finite sentinel so gauges stay plottable.
    snapshot.burn_rate = error_rate > 0 ? 1e9 : 0.0;
  }
  snapshot.p99_within_objective = snapshot.p99_us <= state.objective.p99_us;
  return snapshot;
}

void SloTracker::PublishLocked(TaskState& state) {
  const TaskSnapshot snapshot = SnapshotLocked(state);
  state.success_rate_gauge->Set(snapshot.success_rate);
  state.burn_rate_gauge->Set(snapshot.burn_rate);
  state.p50_gauge->Set(snapshot.p50_us);
  state.p99_gauge->Set(snapshot.p99_us);
  state.p99_within_gauge->Set(snapshot.p99_within_objective ? 1.0 : 0.0);
  state.window_gauge->Set(static_cast<double>(snapshot.window_requests));
}

void SloTracker::Publish() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& state : tasks_) PublishLocked(*state);
}

SloTracker::TaskSnapshot SloTracker::Snapshot(int task) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (task < 0 || static_cast<size_t>(task) >= tasks_.size()) return {};
  return SnapshotLocked(*tasks_[static_cast<size_t>(task)]);
}

std::vector<SloTracker::TaskSnapshot> SloTracker::SnapshotAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TaskSnapshot> snapshots;
  snapshots.reserve(tasks_.size());
  for (const auto& state : tasks_) snapshots.push_back(SnapshotLocked(*state));
  return snapshots;
}

double SloTracker::MaxBurnRate(uint64_t min_requests) const {
  std::lock_guard<std::mutex> lock(mu_);
  double max_burn = 0;
  for (const auto& state : tasks_) {
    if (state->count < min_requests) continue;
    max_burn = std::max(max_burn, SnapshotLocked(*state).burn_rate);
  }
  return max_burn;
}

int SloTracker::num_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(tasks_.size());
}

}  // namespace bigcity::obs
