#ifndef BIGCITY_OBS_PROFILER_H_
#define BIGCITY_OBS_PROFILER_H_

// Autograd op profiler (DESIGN.md §4.10). Every primitive op in
// src/nn/ops.cc (and the fused kernels) opens a ScopedOp naming the op;
// layer Forward methods open a ScopedModule carrying their
// Module::NamedParameters()-style dotted path. Together they attribute
// every op invocation — forward and backward — to (module, op, direction)
// rows holding call counts, self/total wall time, FLOPs, and bytes moved.
//
// Two-tier activation, so the always-on tier stays within timing noise:
//   * BIGCITY_OBS=ON: ScopedOp/ScopedModule maintain thread-local tag
//     stacks (no clock reads) so autograd nodes always carry op/module
//     tags — that is what lets a non-finite guard trip name the offending
//     module even when nobody asked for a profile.
//   * ProfilerEnabled() (armed by `bigcity_cli --profile`): adds
//     timestamps, FLOP/byte costs, aggregation into the Profiler table,
//     and op spans in the chrome-trace buffer.
// BIGCITY_OBS=OFF compiles every probe below out to nothing.
//
// Like the rest of src/obs this header depends on nothing outside the
// obs library.

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#if !defined(BIGCITY_OBS)
#define BIGCITY_OBS 1
#endif

namespace bigcity::obs {

/// Arms/disarms timing + aggregation (one relaxed load per op when off).
void SetProfilerEnabled(bool enabled);
bool ProfilerEnabled();

namespace internal {

/// One live op invocation on the calling thread's op stack.
struct OpFrame {
  const char* op = "";
  const char* module = "";
  bool backward = false;
  bool timed = false;  // Profiler was enabled when the frame opened.
  uint64_t start_us = 0;
  uint64_t child_us = 0;  // Total time of directly nested ops.
  uint64_t flops = 0;
  uint64_t bytes = 0;
  // Estimated backward cost, stashed at forward time so the autograd
  // layer can bill the node's backward_fn without re-deriving shapes.
  uint64_t bwd_flops = 0;
  uint64_t bwd_bytes = 0;
};

/// Innermost live op on this thread, or nullptr outside any ScopedOp.
const OpFrame* CurrentOpFrame();

/// Innermost ScopedModule path on this thread ("" outside any scope).
const char* CurrentModulePath();

}  // namespace internal

/// Per-(module, op, direction) accumulated cost.
struct OpStats {
  std::string module;  // NamedParameters()-style dotted path, "" = untagged.
  std::string op;
  bool backward = false;
  uint64_t calls = 0;
  uint64_t self_us = 0;   // Wall time minus directly nested ops.
  uint64_t total_us = 0;  // Inclusive wall time.
  uint64_t flops = 0;
  uint64_t bytes = 0;
};

/// Per-module rollup. `self_us` covers ops attributed exactly to `module`;
/// `total_us` additionally includes every descendant path (dotted-prefix
/// children), so the root row equals the whole profiled op time.
struct ModuleStats {
  std::string module;
  uint64_t calls = 0;
  uint64_t self_us = 0;
  uint64_t total_us = 0;
  uint64_t flops = 0;
  uint64_t bytes = 0;
};

/// Process-wide profile aggregation. RecordOp is mutex-guarded; it is only
/// reached when ProfilerEnabled(), so the disabled path stays lock-free.
class Profiler {
 public:
  static Profiler& Global();

  void RecordOp(const char* op, const char* module, bool backward,
                uint64_t self_us, uint64_t total_us, uint64_t flops,
                uint64_t bytes);

  /// All rows, heaviest self time first.
  std::vector<OpStats> Rows() const;
  /// Module rollup, heaviest inclusive time first.
  std::vector<ModuleStats> ModuleRollup() const;
  /// Sum of self_us over all rows == total profiled wall time (self times
  /// partition inclusive time exactly, so this is double-count free).
  uint64_t TotalSelfUs() const;

  /// {"ops":[...],"modules":[...],"total_self_us":N}.
  std::string ToJson() const;
  /// Human-readable op table + module rollup (top `max_rows` each).
  void PrintTable(std::FILE* out, size_t max_rows = 32) const;

  void Reset();

 private:
  mutable std::mutex mu_;
  // Keyed by (module, op, backward); strings are copied on first insert so
  // rows never dangle on module destruction.
  std::map<std::tuple<std::string, std::string, bool>, OpStats> rows_;
};

/// RAII op scope. Always pushes a tag frame under BIGCITY_OBS=ON (cheap:
/// two thread-local writes, no clock); times and records only when
/// ProfilerEnabled(). `module` defaults to the innermost ScopedModule.
class ScopedOp {
 public:
  explicit ScopedOp(const char* op, bool backward = false,
                    const char* module = nullptr);
  ~ScopedOp();

  /// Estimated cost of this invocation (this direction).
  void SetCost(uint64_t flops, uint64_t bytes);
  /// Estimated cost of the matching backward pass, picked up by the
  /// autograd layer when it wraps the node's backward_fn.
  void SetBackwardCost(uint64_t flops, uint64_t bytes);

  ScopedOp(const ScopedOp&) = delete;
  ScopedOp& operator=(const ScopedOp&) = delete;
};

/// RAII module-attribution scope; ops opened inside attribute to `path`
/// (innermost scope wins). `path` must outlive the scope — in practice it
/// is Module::module_path().c_str() of a live module.
class ScopedModule {
 public:
  explicit ScopedModule(const char* path);
  ~ScopedModule();

  ScopedModule(const ScopedModule&) = delete;
  ScopedModule& operator=(const ScopedModule&) = delete;
};

}  // namespace bigcity::obs

#if BIGCITY_OBS

/// Opens an op scope for the rest of the enclosing block. One per
/// function body (fixed variable name, so cost macros can find it).
#define BIGCITY_PROFILE_OP(op_name) \
  ::bigcity::obs::ScopedOp bigcity_profile_op_((op_name))

/// Attaches forward / backward cost estimates to the enclosing
/// BIGCITY_PROFILE_OP. Arguments are not evaluated under BIGCITY_OBS=OFF,
/// so compute them inline in the macro call.
#define BIGCITY_PROFILE_OP_COST(flops, bytes) \
  bigcity_profile_op_.SetCost((flops), (bytes))
#define BIGCITY_PROFILE_OP_BWD_COST(flops, bytes) \
  bigcity_profile_op_.SetBackwardCost((flops), (bytes))

/// Attributes ops for the rest of the enclosing block to `path_cstr`.
#define BIGCITY_PROFILE_MODULE(path_cstr) \
  ::bigcity::obs::ScopedModule bigcity_profile_module_((path_cstr))

#else  // !BIGCITY_OBS

#define BIGCITY_PROFILE_OP(op_name) \
  do {                              \
  } while (0)
#define BIGCITY_PROFILE_OP_COST(flops, bytes) \
  do {                                        \
  } while (0)
#define BIGCITY_PROFILE_OP_BWD_COST(flops, bytes) \
  do {                                            \
  } while (0)
#define BIGCITY_PROFILE_MODULE(path_cstr) \
  do {                                    \
  } while (0)

#endif  // BIGCITY_OBS

#endif  // BIGCITY_OBS_PROFILER_H_
