#ifndef BIGCITY_OBS_TELEMETRY_H_
#define BIGCITY_OBS_TELEMETRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace bigcity::obs {

/// Snapshot-diff metrics exporter (DESIGN.md §4.15): a background thread
/// samples MetricsRegistry every interval and appends one JSONL record of
/// what *changed* — counter and histogram deltas over the interval (with
/// percentiles computed from the interval's bucket deltas, i.e. the
/// latency distribution of just those requests), gauges as absolute
/// last-written values. One line per tick:
///
///   {"event":"telemetry","seq":N,"wall_ms":...,"interval_ms":...,
///    "counters":{...},"gauges":{...},
///    "histograms":{"name":{"count":N,"sum":S,"p50":..,"p95":..,"p99":..}}}
///
/// Zero-delta counters and histograms are omitted after the first tick to
/// keep idle lines small; gauges are always emitted (a consumer must see
/// the current value even when nothing moved). `bigcity_cli top` tails
/// this file. Stop() takes a final tick before closing so a short run
/// still exports at least one record.
class TelemetryExporter {
 public:
  struct Options {
    double interval_ms = 1000.0;
    /// Metric-name prefixes to export; empty exports everything.
    std::vector<std::string> prefixes{"serve.", "slo."};
  };

  TelemetryExporter() = default;
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// Called (when set) before every snapshot, so lazily-published gauges
  /// (e.g. SloTracker::Publish) are fresh in the tick. Set before Start().
  void SetPrelude(std::function<void()> prelude);

  /// Opens `path` for append and launches the sampling thread. Returns
  /// false and fills *error when the file cannot be opened.
  bool Start(const std::string& path, Options options,
             std::string* error = nullptr);
  bool Start(const std::string& path) { return Start(path, Options()); }

  /// Final tick + join + close; idempotent, also run by the destructor.
  void Stop();

  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  bool running() const { return running_; }

 private:
  void Loop();
  void Tick();
  bool Matches(const std::string& name) const;

  Options options_;
  std::function<void()> prelude_;
  std::FILE* file_ = nullptr;
  MetricsSnapshot previous_;
  bool first_tick_ = true;
  std::atomic<uint64_t> ticks_{0};
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
};

}  // namespace bigcity::obs

#endif  // BIGCITY_OBS_TELEMETRY_H_
