#ifndef BIGCITY_OBS_STAGES_H_
#define BIGCITY_OBS_STAGES_H_

#include <algorithm>
#include <chrono>

namespace bigcity::obs {

/// Thread-local per-request stage attribution (DESIGN.md §4.15). The
/// serving worker clears the accumulator before a forward and reads it
/// afterwards to split the forward's wall time into sub-stages (tokenize,
/// cache lookup) that happen deep inside the model, without threading a
/// context object through every layer. Each worker processes one request
/// (or one batch) at a time, so thread-local is exactly request-local.
enum class RequestStage : int {
  kTokenize = 0,     // ST-tokenizer sequence building (GAT + fusion + MLP).
  kCacheLookup = 1,  // Shared rep-cache and KV-session store lookups.
};

inline constexpr int kNumRequestStages = 2;

namespace internal {
inline thread_local double g_request_stage_us[kNumRequestStages] = {};
}  // namespace internal

inline void RequestStagesClear() {
  for (int i = 0; i < kNumRequestStages; ++i) {
    internal::g_request_stage_us[i] = 0;
  }
}

inline void RequestStageAdd(RequestStage stage, double us) {
  internal::g_request_stage_us[static_cast<int>(stage)] += us;
}

inline double RequestStageValue(RequestStage stage) {
  return internal::g_request_stage_us[static_cast<int>(stage)];
}

/// RAII: adds the scope's wall time to `stage`, minus whatever any nested
/// RequestStageTimer (same stage or another) already claimed — so nested
/// timers partition instead of double-counting. Example: the tokenizer's
/// kTokenize scope excludes the kCacheLookup time of the shared rep-cache
/// probe it makes, and a recursive kTokenize scope contributes only once.
class RequestStageTimer {
 public:
  explicit RequestStageTimer(RequestStage stage)
      : stage_(static_cast<int>(stage)),
        start_(std::chrono::steady_clock::now()) {
    for (int i = 0; i < kNumRequestStages; ++i) {
      before_[i] = internal::g_request_stage_us[i];
    }
  }

  ~RequestStageTimer() {
    const double elapsed_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start_)
            .count();
    double nested_us = 0;
    for (int i = 0; i < kNumRequestStages; ++i) {
      nested_us += internal::g_request_stage_us[i] - before_[i];
    }
    internal::g_request_stage_us[stage_] +=
        std::max(0.0, elapsed_us - nested_us);
  }

  RequestStageTimer(const RequestStageTimer&) = delete;
  RequestStageTimer& operator=(const RequestStageTimer&) = delete;

 private:
  int stage_;
  std::chrono::steady_clock::time_point start_;
  double before_[kNumRequestStages];
};

}  // namespace bigcity::obs

#endif  // BIGCITY_OBS_STAGES_H_
