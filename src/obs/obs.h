#ifndef BIGCITY_OBS_OBS_H_
#define BIGCITY_OBS_OBS_H_

// Umbrella header + instrumentation macros for the observability layer
// (DESIGN.md §4.9). All hot-path instrumentation goes through these macros
// so a -DBIGCITY_OBS=OFF build compiles every probe out to nothing; the
// underlying classes (MetricsRegistry, TraceBuffer, RunReport, WallTimer)
// stay available in both build flavors for cold-path consumers like the
// trainer's run report.
//
// Metric handles are resolved once per call site (function-local static)
// and then hit only the metric's lock-free fast path. MetricsRegistry
// never invalidates handles, so this is safe across Reset().

#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/report.h"
#include "obs/slo.h"
#include "obs/stages.h"
#include "obs/telemetry.h"
#include "obs/timer.h"
#include "obs/trace.h"

#if !defined(BIGCITY_OBS)
#define BIGCITY_OBS 1
#endif

#define BIGCITY_OBS_CONCAT_INNER_(a, b) a##b
#define BIGCITY_OBS_CONCAT_(a, b) BIGCITY_OBS_CONCAT_INNER_(a, b)

#if BIGCITY_OBS

/// Counts `delta` events on counter `name` (a string literal).
#define BIGCITY_COUNTER_ADD(name, delta)                                   \
  do {                                                                     \
    static ::bigcity::obs::Counter* const BIGCITY_OBS_CONCAT_(             \
        obs_counter_, __LINE__) =                                          \
        ::bigcity::obs::MetricsRegistry::Global().GetCounter(name);        \
    BIGCITY_OBS_CONCAT_(obs_counter_, __LINE__)                            \
        ->Add(static_cast<uint64_t>(delta));                               \
  } while (0)

#define BIGCITY_COUNTER_INC(name) BIGCITY_COUNTER_ADD(name, 1)

/// Sets gauge `name` to `value`.
#define BIGCITY_GAUGE_SET(name, value)                                     \
  do {                                                                     \
    static ::bigcity::obs::Gauge* const BIGCITY_OBS_CONCAT_(obs_gauge_,    \
                                                            __LINE__) =    \
        ::bigcity::obs::MetricsRegistry::Global().GetGauge(name);          \
    BIGCITY_OBS_CONCAT_(obs_gauge_, __LINE__)                              \
        ->Set(static_cast<double>(value));                                 \
  } while (0)

/// Records `value` into histogram `name` (default latency buckets).
#define BIGCITY_HISTOGRAM_RECORD(name, value)                              \
  do {                                                                     \
    static ::bigcity::obs::Histogram* const BIGCITY_OBS_CONCAT_(           \
        obs_histogram_, __LINE__) =                                        \
        ::bigcity::obs::MetricsRegistry::Global().GetHistogram(name);      \
    BIGCITY_OBS_CONCAT_(obs_histogram_, __LINE__)                          \
        ->Record(static_cast<double>(value));                              \
  } while (0)

/// RAII trace span for the rest of the enclosing scope (trace buffer only).
#define BIGCITY_TRACE_SPAN(name, category)           \
  ::bigcity::obs::TraceSpan BIGCITY_OBS_CONCAT_(     \
      obs_span_, __LINE__)((name), (category))

/// RAII span that records its duration (µs) into histogram `hist_name`
/// and appears as `span_name` in the trace. This is the workhorse probe:
/// histogram always on, trace event only when tracing is enabled.
#define BIGCITY_TIMED_SCOPE_NAMED(hist_name, span_name, category)          \
  static ::bigcity::obs::Histogram* const BIGCITY_OBS_CONCAT_(             \
      obs_scope_histogram_, __LINE__) =                                    \
      ::bigcity::obs::MetricsRegistry::Global().GetHistogram(hist_name);   \
  ::bigcity::obs::TraceSpan BIGCITY_OBS_CONCAT_(obs_scope_, __LINE__)(     \
      (span_name), (category),                                             \
      BIGCITY_OBS_CONCAT_(obs_scope_histogram_, __LINE__))

/// Shorthand: histogram and span share one name.
#define BIGCITY_TIMED_SCOPE(name, category) \
  BIGCITY_TIMED_SCOPE_NAMED(name, name, category)

/// Makes `trace_id` the active trace id for the rest of the enclosing
/// scope: spans recorded inside are stamped with it (DESIGN.md §4.15).
#define BIGCITY_TRACE_ID_SCOPE(trace_id)             \
  ::bigcity::obs::TraceIdScope BIGCITY_OBS_CONCAT_(  \
      obs_trace_id_scope_, __LINE__)((trace_id))

/// Emits one chrome://tracing flow event (`phase` = 's' start, 't' step,
/// 'f' finish) bound to `trace_id`, linking the enclosing spans of one
/// request into a single connected flow across threads.
#define BIGCITY_TRACE_FLOW(name, category, phase, trace_id)             \
  do {                                                                  \
    if (::bigcity::obs::TracingEnabled()) {                             \
      ::bigcity::obs::RecordFlowEvent((name), (category), (phase),      \
                                      (trace_id));                      \
    }                                                                   \
  } while (0)

/// RAII: attributes the scope's wall time (minus nested stage scopes) to
/// the thread-local per-request stage accumulator; the serving worker
/// reads it after the forward to fill Response::stages.
#define BIGCITY_REQUEST_STAGE_TIMED(stage)                 \
  ::bigcity::obs::RequestStageTimer BIGCITY_OBS_CONCAT_(   \
      obs_stage_timer_, __LINE__)(::bigcity::obs::RequestStage::stage)

#else  // !BIGCITY_OBS

#define BIGCITY_COUNTER_ADD(name, delta) \
  do {                                   \
  } while (0)
#define BIGCITY_COUNTER_INC(name) \
  do {                            \
  } while (0)
#define BIGCITY_GAUGE_SET(name, value) \
  do {                                 \
  } while (0)
#define BIGCITY_HISTOGRAM_RECORD(name, value) \
  do {                                        \
  } while (0)
#define BIGCITY_TRACE_SPAN(name, category) \
  do {                                     \
  } while (0)
#define BIGCITY_TIMED_SCOPE_NAMED(hist_name, span_name, category) \
  do {                                                            \
  } while (0)
#define BIGCITY_TIMED_SCOPE(name, category) \
  do {                                      \
  } while (0)
#define BIGCITY_TRACE_ID_SCOPE(trace_id) \
  do {                                   \
  } while (0)
#define BIGCITY_TRACE_FLOW(name, category, phase, trace_id) \
  do {                                                      \
  } while (0)
#define BIGCITY_REQUEST_STAGE_TIMED(stage) \
  do {                                     \
  } while (0)

#endif  // BIGCITY_OBS

#endif  // BIGCITY_OBS_OBS_H_
