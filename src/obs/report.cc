#include "obs/report.h"

namespace bigcity::obs {

void RunReport::Record::Key(const char* key) {
  json_.push_back(json_.empty() ? '{' : ',');
  json_.push_back('"');
  json_.append(key);
  json_.append("\":");
}

RunReport::Record& RunReport::Record::Str(const char* key,
                                          const std::string& value) {
  Key(key);
  json_.push_back('"');
  for (char c : value) {
    if (c == '"' || c == '\\') {
      json_.push_back('\\');
      json_.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      json_.append(buffer);
    } else {
      json_.push_back(c);
    }
  }
  json_.push_back('"');
  return *this;
}

RunReport::Record& RunReport::Record::Num(const char* key, double value) {
  Key(key);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  json_.append(buffer);
  return *this;
}

RunReport::Record& RunReport::Record::Int(const char* key, int64_t value) {
  Key(key);
  json_.append(std::to_string(value));
  return *this;
}

RunReport::Record& RunReport::Record::Raw(const char* key,
                                          const std::string& json_value) {
  Key(key);
  json_.append(json_value);
  return *this;
}

bool RunReport::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "w");
  return file_ != nullptr;
}

void RunReport::Write(const Record& record) {
  if (file_ == nullptr) return;
  std::string line = record.json().empty() ? "{}" : record.json() + "}";
  line.push_back('\n');
  std::fputs(line.c_str(), file_);
  std::fflush(file_);
}

void RunReport::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace bigcity::obs
