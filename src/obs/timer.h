#ifndef BIGCITY_OBS_TIMER_H_
#define BIGCITY_OBS_TIMER_H_

#include <chrono>
#include <cstdint>

namespace bigcity::obs {

/// Wall-clock timer for code that needs the elapsed value itself (bench
/// GFLOP/s math, reported epoch times). Instrumentation that only *records*
/// a duration should use TraceSpan / BIGCITY_TIMED_SCOPE instead. Starts
/// running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bigcity::obs

#endif  // BIGCITY_OBS_TIMER_H_
