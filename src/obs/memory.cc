#include "obs/memory.h"

#include <string>

#include "obs/metrics.h"

namespace bigcity::obs {
namespace {

thread_local MemPhase current_phase = MemPhase::kOther;

}  // namespace

const char* MemPhaseName(MemPhase phase) {
  switch (phase) {
    case MemPhase::kData:
      return "data";
    case MemPhase::kForward:
      return "forward";
    case MemPhase::kBackward:
      return "backward";
    case MemPhase::kOptim:
      return "optim";
    case MemPhase::kOther:
      break;
  }
  return "other";
}

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

MemPhase MemoryTracker::CurrentPhase() { return current_phase; }

void MemoryTracker::SetCurrentPhase(MemPhase phase) { current_phase = phase; }

void MemoryTracker::OnAlloc(int64_t bytes) {
  const int phase = static_cast<int>(current_phase);
  phase_bytes_[phase].fetch_add(bytes, std::memory_order_relaxed);
  phase_count_[phase].fetch_add(1, std::memory_order_relaxed);
  const int64_t live =
      live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (live > peak &&
         !peak_.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::OnFree(int64_t bytes) {
  if (bytes == 0) return;
  live_.fetch_sub(bytes, std::memory_order_relaxed);
  frees_.fetch_add(1, std::memory_order_relaxed);
}

int64_t MemoryTracker::live_bytes() const {
  return live_.load(std::memory_order_relaxed);
}

int64_t MemoryTracker::peak_bytes() const {
  return peak_.load(std::memory_order_relaxed);
}

int64_t MemoryTracker::alloc_bytes() const {
  int64_t total = 0;
  for (const auto& bytes : phase_bytes_) {
    total += bytes.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t MemoryTracker::alloc_count() const {
  int64_t total = 0;
  for (const auto& count : phase_count_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t MemoryTracker::alloc_bytes(MemPhase phase) const {
  return phase_bytes_[static_cast<int>(phase)].load(std::memory_order_relaxed);
}

int64_t MemoryTracker::alloc_count(MemPhase phase) const {
  return phase_count_[static_cast<int>(phase)].load(std::memory_order_relaxed);
}

int64_t MemoryTracker::free_count() const {
  return frees_.load(std::memory_order_relaxed);
}

void MemoryTracker::PublishGauges() const {
  auto& registry = MetricsRegistry::Global();
  registry.GetGauge("mem.live_bytes")
      ->Set(static_cast<double>(live_bytes()));
  registry.GetGauge("mem.peak_bytes")
      ->Set(static_cast<double>(peak_bytes()));
  for (int phase = 0; phase < kNumMemPhases; ++phase) {
    const char* name = MemPhaseName(static_cast<MemPhase>(phase));
    registry.GetGauge(std::string("mem.alloc_bytes.") + name)
        ->Set(static_cast<double>(alloc_bytes(static_cast<MemPhase>(phase))));
    registry.GetGauge(std::string("mem.allocs.") + name)
        ->Set(static_cast<double>(alloc_count(static_cast<MemPhase>(phase))));
  }
}

void MemoryTracker::Reset() {
  live_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
  frees_.store(0, std::memory_order_relaxed);
  for (auto& bytes : phase_bytes_) bytes.store(0, std::memory_order_relaxed);
  for (auto& count : phase_count_) count.store(0, std::memory_order_relaxed);
}

}  // namespace bigcity::obs
