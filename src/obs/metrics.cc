#include "obs/metrics.h"

#include <bit>
#include <cstdio>

namespace bigcity::obs {

namespace internal {

int ThisThreadShard() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return shard;
}

}  // namespace internal

static_assert((kMetricShards & (kMetricShards - 1)) == 0,
              "shard count must be a power of two");

// --- Counter ----------------------------------------------------------------

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// --- Gauge ------------------------------------------------------------------

void Gauge::Set(double value) {
  bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
}

double Gauge::Value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), shards_(kMetricShards) {
  for (auto& shard : shards_) {
    shard.buckets = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Record(double value) {
  // Branchless-enough linear scan: duration histograms have ~20 buckets and
  // most samples land in the first few, so this beats a binary search.
  size_t bucket = 0;
  while (bucket < bounds_.size() && value > bounds_[bucket]) ++bucket;
  Shard& shard = shards_[static_cast<size_t>(internal::ThisThreadShard())];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  // Two threads can share a shard, so the double sum needs a CAS loop; it
  // is uncontended in the common case.
  uint64_t observed = shard.sum_bits.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t updated =
        std::bit_cast<uint64_t>(std::bit_cast<double>(observed) + value);
    if (shard.sum_bits.compare_exchange_weak(observed, updated,
                                             std::memory_order_relaxed)) {
      break;
    }
  }
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0;
  for (const auto& shard : shards_) {
    total +=
        std::bit_cast<double>(shard.sum_bits.load(std::memory_order_relaxed));
  }
  return total;
}

double Histogram::Mean() const {
  const uint64_t count = Count();
  return count == 0 ? 0.0 : Sum() / static_cast<double>(count);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (size_t b = 0; b < merged.size(); ++b) {
      merged[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

void Histogram::Reset() {
  for (auto& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum_bits.store(0, std::memory_order_relaxed);
  }
}

double HistogramPercentile(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& buckets, double q) {
  if (bounds.empty() || buckets.empty()) return 0.0;
  uint64_t total = 0;
  for (const uint64_t count : buckets) total += count;
  if (total == 0) return 0.0;
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    const uint64_t in_bucket = buckets[b];
    if (in_bucket > 0 &&
        static_cast<double>(cumulative + in_bucket) >= rank) {
      if (b >= bounds.size()) return bounds.back();  // Overflow bucket.
      const double lo = b == 0 ? 0.0 : bounds[b - 1];
      const double hi = bounds[b];
      const double frac =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + (hi - lo) * (frac < 0.0 ? 0.0 : frac);
    }
    cumulative += in_bucket;
  }
  return bounds.back();
}

const std::vector<double>& LatencyBoundsUs() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
      b.push_back(decade);
      b.push_back(2.0 * decade);
      b.push_back(5.0 * decade);
    }
    b.push_back(1e7);  // 10 s.
    return b;
  }();
  return bounds;
}

// --- Registry ---------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = histogram->bounds();
    data.buckets = histogram->BucketCounts();
    data.count = histogram->Count();
    data.sum = histogram->Sum();
    snapshot.histograms[name] = std::move(data);
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

// --- Snapshot JSON ----------------------------------------------------------

namespace {

void AppendEscaped(const std::string& text, std::string* out) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out->append(buffer);
    } else {
      out->push_back(c);
    }
  }
}

void AppendNumber(double value, std::string* out) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out->append(buffer);
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendEscaped(name, &out);
    out.append("\":");
    out.append(std::to_string(value));
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendEscaped(name, &out);
    out.append("\":");
    AppendNumber(value, &out);
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, data] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendEscaped(name, &out);
    out.append("\":{\"count\":");
    out.append(std::to_string(data.count));
    out.append(",\"sum\":");
    AppendNumber(data.sum, &out);
    out.append(",\"p50\":");
    AppendNumber(data.Percentile(0.50), &out);
    out.append(",\"p95\":");
    AppendNumber(data.Percentile(0.95), &out);
    out.append(",\"p99\":");
    AppendNumber(data.Percentile(0.99), &out);
    out.append(",\"bounds\":[");
    for (size_t b = 0; b < data.bounds.size(); ++b) {
      if (b > 0) out.push_back(',');
      AppendNumber(data.bounds[b], &out);
    }
    out.append("],\"buckets\":[");
    for (size_t b = 0; b < data.buckets.size(); ++b) {
      if (b > 0) out.push_back(',');
      out.append(std::to_string(data.buckets[b]));
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

}  // namespace bigcity::obs
