#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>

#include "obs/trace.h"

namespace bigcity::obs {
namespace {

std::atomic<bool> profiler_enabled{false};

thread_local std::vector<internal::OpFrame> op_stack;
thread_local std::vector<const char*> module_stack;

/// Splits "a.b.c" into its dotted prefixes "a", "a.b", "a.b.c".
void AppendPrefixes(const std::string& path,
                    std::vector<std::string>* prefixes) {
  for (size_t dot = path.find('.'); dot != std::string::npos;
       dot = path.find('.', dot + 1)) {
    prefixes->push_back(path.substr(0, dot));
  }
  prefixes->push_back(path);
}

void AppendEscaped(std::string* out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out->push_back(c);
    }
  }
}

}  // namespace

void SetProfilerEnabled(bool enabled) {
  profiler_enabled.store(enabled, std::memory_order_relaxed);
}

bool ProfilerEnabled() {
  return profiler_enabled.load(std::memory_order_relaxed);
}

namespace internal {

const OpFrame* CurrentOpFrame() {
  return op_stack.empty() ? nullptr : &op_stack.back();
}

const char* CurrentModulePath() {
  return module_stack.empty() ? "" : module_stack.back();
}

}  // namespace internal

ScopedOp::ScopedOp(const char* op, bool backward, const char* module) {
  internal::OpFrame frame;
  frame.op = op;
  frame.module = module != nullptr ? module : internal::CurrentModulePath();
  frame.backward = backward;
  if (ProfilerEnabled()) {
    frame.timed = true;
    frame.start_us = TraceNowMicros();
  }
  op_stack.push_back(frame);
}

ScopedOp::~ScopedOp() {
  const internal::OpFrame frame = op_stack.back();
  op_stack.pop_back();
  if (!frame.timed) return;
  const uint64_t end_us = TraceNowMicros();
  const uint64_t total_us = end_us - frame.start_us;
  const uint64_t self_us =
      total_us > frame.child_us ? total_us - frame.child_us : 0;
  if (!op_stack.empty()) op_stack.back().child_us += total_us;
  Profiler::Global().RecordOp(frame.op, frame.module, frame.backward, self_us,
                              total_us, frame.flops, frame.bytes);
  if (TracingEnabled()) {
    TraceEvent event;
    event.name = frame.op;  // String literal at every call site.
    event.category = frame.backward ? "op.bwd" : "op";
    event.start_us = frame.start_us;
    event.duration_us = total_us;
    event.thread_id = TraceThreadId();
    TraceBuffer::Global().Record(event);
  }
}

void ScopedOp::SetCost(uint64_t flops, uint64_t bytes) {
  internal::OpFrame& frame = op_stack.back();
  frame.flops = flops;
  frame.bytes = bytes;
}

void ScopedOp::SetBackwardCost(uint64_t flops, uint64_t bytes) {
  internal::OpFrame& frame = op_stack.back();
  frame.bwd_flops = flops;
  frame.bwd_bytes = bytes;
}

ScopedModule::ScopedModule(const char* path) { module_stack.push_back(path); }

ScopedModule::~ScopedModule() { module_stack.pop_back(); }

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

void Profiler::RecordOp(const char* op, const char* module, bool backward,
                        uint64_t self_us, uint64_t total_us, uint64_t flops,
                        uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  OpStats& row = rows_[std::make_tuple(std::string(module), std::string(op),
                                       backward)];
  if (row.calls == 0) {
    row.module = module;
    row.op = op;
    row.backward = backward;
  }
  ++row.calls;
  row.self_us += self_us;
  row.total_us += total_us;
  row.flops += flops;
  row.bytes += bytes;
}

std::vector<OpStats> Profiler::Rows() const {
  std::vector<OpStats> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows.reserve(rows_.size());
    for (const auto& [key, row] : rows_) rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), [](const OpStats& a, const OpStats& b) {
    return a.self_us > b.self_us;
  });
  return rows;
}

std::vector<ModuleStats> Profiler::ModuleRollup() const {
  const std::vector<OpStats> rows = Rows();
  std::map<std::string, ModuleStats> modules;
  std::vector<std::string> prefixes;
  for (const OpStats& row : rows) {
    // Self time lands on the exact path; inclusive time on the path and
    // every dotted ancestor, so parents subsume their children.
    ModuleStats& exact = modules[row.module];
    exact.module = row.module;
    exact.calls += row.calls;
    exact.self_us += row.self_us;
    exact.flops += row.flops;
    exact.bytes += row.bytes;
    prefixes.clear();
    AppendPrefixes(row.module, &prefixes);
    for (const std::string& prefix : prefixes) {
      ModuleStats& rollup = modules[prefix];
      rollup.module = prefix;
      rollup.total_us += row.self_us;
    }
  }
  std::vector<ModuleStats> result;
  result.reserve(modules.size());
  for (const auto& [path, stats] : modules) result.push_back(stats);
  std::sort(result.begin(), result.end(),
            [](const ModuleStats& a, const ModuleStats& b) {
              return a.total_us > b.total_us;
            });
  return result;
}

uint64_t Profiler::TotalSelfUs() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, row] : rows_) total += row.self_us;
  return total;
}

std::string Profiler::ToJson() const {
  const std::vector<OpStats> rows = Rows();
  const std::vector<ModuleStats> modules = ModuleRollup();
  std::string json = "{\"ops\":[";
  char buffer[160];
  bool first = true;
  for (const OpStats& row : rows) {
    if (!first) json.push_back(',');
    first = false;
    json.append("{\"op\":\"");
    AppendEscaped(&json, row.op);
    json.append("\",\"module\":\"");
    AppendEscaped(&json, row.module);
    std::snprintf(buffer, sizeof(buffer),
                  "\",\"dir\":\"%s\",\"calls\":%" PRIu64
                  ",\"self_us\":%" PRIu64 ",\"total_us\":%" PRIu64
                  ",\"flops\":%" PRIu64 ",\"bytes\":%" PRIu64 "}",
                  row.backward ? "bwd" : "fwd", row.calls, row.self_us,
                  row.total_us, row.flops, row.bytes);
    json.append(buffer);
  }
  json.append("],\"modules\":[");
  first = true;
  for (const ModuleStats& stats : modules) {
    if (!first) json.push_back(',');
    first = false;
    json.append("{\"module\":\"");
    AppendEscaped(&json, stats.module);
    std::snprintf(buffer, sizeof(buffer),
                  "\",\"calls\":%" PRIu64 ",\"self_us\":%" PRIu64
                  ",\"total_us\":%" PRIu64 ",\"flops\":%" PRIu64
                  ",\"bytes\":%" PRIu64 "}",
                  stats.calls, stats.self_us, stats.total_us, stats.flops,
                  stats.bytes);
    json.append(buffer);
  }
  std::snprintf(buffer, sizeof(buffer), "],\"total_self_us\":%" PRIu64 "}",
                TotalSelfUs());
  json.append(buffer);
  return json;
}

void Profiler::PrintTable(std::FILE* out, size_t max_rows) const {
  const std::vector<OpStats> rows = Rows();
  const uint64_t total_self = TotalSelfUs();
  std::fprintf(out,
               "--- op profile: %zu rows, %.1f ms total self time ---\n",
               rows.size(), total_self / 1e3);
  std::fprintf(out, "%-22s %-4s %-40s %8s %10s %10s %9s\n", "op", "dir",
               "module", "calls", "self_ms", "total_ms", "gflops");
  for (size_t i = 0; i < rows.size() && i < max_rows; ++i) {
    const OpStats& row = rows[i];
    std::fprintf(out, "%-22s %-4s %-40s %8" PRIu64 " %10.2f %10.2f %9.2f\n",
                 row.op.c_str(), row.backward ? "bwd" : "fwd",
                 row.module.empty() ? "(untagged)" : row.module.c_str(),
                 row.calls, row.self_us / 1e3, row.total_us / 1e3,
                 row.flops / 1e9);
  }
  const std::vector<ModuleStats> modules = ModuleRollup();
  std::fprintf(out, "--- module rollup (inclusive over dotted paths) ---\n");
  std::fprintf(out, "%-46s %8s %10s %10s %9s\n", "module", "calls", "self_ms",
               "incl_ms", "gflops");
  for (size_t i = 0; i < modules.size() && i < max_rows; ++i) {
    const ModuleStats& stats = modules[i];
    std::fprintf(out, "%-46s %8" PRIu64 " %10.2f %10.2f %9.2f\n",
                 stats.module.empty() ? "(untagged)" : stats.module.c_str(),
                 stats.calls, stats.self_us / 1e3, stats.total_us / 1e3,
                 stats.flops / 1e9);
  }
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  rows_.clear();
}

}  // namespace bigcity::obs
