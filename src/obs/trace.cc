#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#if !defined(BIGCITY_OBS)
#define BIGCITY_OBS 1
#endif

namespace bigcity::obs {

namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::atomic<bool> g_tracing_enabled{false};

thread_local uint64_t g_current_trace_id = 0;

void AppendEscaped(const char* text, std::string* out) {
  for (const char* c = text; *c != '\0'; ++c) {
    if (*c == '"' || *c == '\\') {
      out->push_back('\\');
      out->push_back(*c);
    } else if (static_cast<unsigned char>(*c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", *c);
      out->append(buffer);
    } else {
      out->push_back(*c);
    }
  }
}

}  // namespace

uint64_t TraceNowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

uint32_t TraceThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t CurrentTraceId() { return g_current_trace_id; }

void SetCurrentTraceId(uint64_t trace_id) { g_current_trace_id = trace_id; }

void RecordFlowEvent(const char* name, const char* category, char phase,
                     uint64_t trace_id) {
  if (!TracingEnabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_us = TraceNowMicros();
  event.thread_id = TraceThreadId();
  event.trace_id = trace_id;
  event.phase = phase;
  TraceBuffer::Global().Record(event);
}

void SetTracingEnabled(bool enabled) {
  if (enabled) TraceEpoch();  // Pin the epoch before the first span.
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

// --- TraceBuffer ------------------------------------------------------------

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void TraceBuffer::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.assign(capacity_, TraceEvent{});
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

size_t TraceBuffer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void TraceBuffer::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (size_ == capacity_) {
    // Overwrite the oldest slot; the newest capacity_ events survive.
    ring_[head_] = event;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
#if BIGCITY_OBS
    static Counter* const dropped_counter =
        MetricsRegistry::Global().GetCounter("trace.dropped");
    dropped_counter->Increment();
#endif
    return;
  }
  ring_[(head_ + size_) % capacity_] = event;
  ++size_;
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events;
  events.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    events.push_back(ring_[(head_ + i) % capacity_]);
  }
  return events;
}

size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

bool TraceBuffer::WriteJson(const std::string& path,
                            std::string* error) const {
  const std::vector<TraceEvent> events = Events();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", file);
  std::string line;
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    const bool flow = e.phase == 's' || e.phase == 't' || e.phase == 'f';
    line.clear();
    line.append("{\"name\":\"");
    AppendEscaped(e.name, &line);
    line.append("\",\"cat\":\"");
    AppendEscaped(e.category, &line);
    line.append("\",\"ph\":\"");
    line.push_back(flow ? e.phase : 'X');
    line.append("\",\"pid\":1,\"tid\":");
    line.append(std::to_string(e.thread_id));
    line.append(",\"ts\":");
    line.append(std::to_string(e.start_us));
    if (flow) {
      // Flow binding id; "bp":"e" makes the finish bind to the enclosing
      // slice (chrome's flow-end default binds to the *next* slice).
      line.append(",\"id\":");
      line.append(std::to_string(e.trace_id));
      if (e.phase == 'f') line.append(",\"bp\":\"e\"");
    } else {
      line.append(",\"dur\":");
      line.append(std::to_string(e.duration_us));
      if (e.trace_id != 0) {
        line.append(",\"args\":{\"trace_id\":");
        line.append(std::to_string(e.trace_id));
        line.append("}");
      }
    }
    line.append(i + 1 < events.size() ? "},\n" : "}\n");
    std::fputs(line.c_str(), file);
  }
  std::fputs("]}\n", file);
  const bool ok = std::fclose(file) == 0;
  if (!ok && error != nullptr) *error = "write to " + path + " failed";
  return ok;
}

// --- TraceSpan --------------------------------------------------------------

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  const uint64_t duration = TraceNowMicros() - start_us_;
  if (histogram_ != nullptr) {
    histogram_->Record(static_cast<double>(duration));
  }
  if (TracingEnabled()) {
    TraceEvent event;
    event.name = name_;
    event.category = category_;
    event.start_us = start_us_;
    event.duration_us = duration;
    event.thread_id = TraceThreadId();
    event.trace_id = CurrentTraceId();
    TraceBuffer::Global().Record(event);
  }
}

}  // namespace bigcity::obs
