#include "serve/rollout.h"

#include <algorithm>

namespace bigcity::serve {

const char* RolloutStateName(RolloutState state) {
  switch (state) {
    case RolloutState::kIdle:
      return "IDLE";
    case RolloutState::kStaged:
      return "STAGED";
    case RolloutState::kCanary:
      return "CANARY";
    case RolloutState::kRolling:
      return "ROLLING";
    case RolloutState::kStable:
      return "STABLE";
    case RolloutState::kRolledBack:
      return "ROLLED_BACK";
    case RolloutState::kQuarantined:
      return "QUARANTINED";
  }
  return "UNKNOWN";
}

void CohortStats::RecordSuccess(double forward_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  if (discard_latency_ > 0) {
    --discard_latency_;
    return;
  }
  if (latencies_.size() < kWindow) {
    latencies_.push_back(forward_us);
  } else {
    latencies_[next_] = forward_us;
    next_ = (next_ + 1) % kWindow;
  }
  ++latency_count_;
}

void CohortStats::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  ++failures_;
}

void CohortStats::RecordNonFinite() {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  ++failures_;
  ++nonfinite_;
}

CohortStats::Snapshot CohortStats::Get() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snapshot;
  snapshot.requests = requests_;
  snapshot.failures = failures_;
  snapshot.nonfinite = nonfinite_;
  snapshot.latency_samples = latency_count_;
  if (!latencies_.empty()) {
    std::vector<double> sorted = latencies_;
    const size_t rank = std::min(
        sorted.size() - 1,
        static_cast<size_t>(0.95 * static_cast<double>(sorted.size())));
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<ptrdiff_t>(rank),
                     sorted.end());
    snapshot.p95_us = sorted[rank];
  }
  return snapshot;
}

void CohortStats::Reset(int discard_latency_samples) {
  std::lock_guard<std::mutex> lock(mu_);
  requests_ = 0;
  failures_ = 0;
  nonfinite_ = 0;
  discard_latency_ = std::max(0, discard_latency_samples);
  latencies_.clear();
  next_ = 0;
  latency_count_ = 0;
}

GateVerdict EvaluateCanary(const CohortStats::Snapshot& stable,
                           const CohortStats::Snapshot& canary,
                           const RolloutOptions& options,
                           std::string* reason, double slo_burn_rate) {
  // Non-finite outputs fail immediately — no reason to wait for the full
  // window once the candidate has produced NaN/Inf.
  if (canary.nonfinite > static_cast<uint64_t>(options.canary_max_nonfinite)) {
    if (reason != nullptr) {
      *reason = "canary produced " + std::to_string(canary.nonfinite) +
                " non-finite outputs (limit " +
                std::to_string(options.canary_max_nonfinite) + ")";
    }
    return GateVerdict::kFail;
  }
  if (canary.requests < static_cast<uint64_t>(options.canary_min_requests)) {
    return GateVerdict::kNotReady;
  }
  // Error-budget burn during the canary window: burning faster than the
  // configured multiple of provisioned budget fails the candidate even
  // when the relative error-margin criterion below would tolerate it
  // (both cohorts degrading together is still an SLO violation).
  if (options.canary_max_burn_rate > 0 &&
      slo_burn_rate > options.canary_max_burn_rate) {
    if (reason != nullptr) {
      *reason = "slo burn rate " + std::to_string(slo_burn_rate) +
                " exceeds canary_max_burn_rate " +
                std::to_string(options.canary_max_burn_rate);
    }
    return GateVerdict::kFail;
  }
  if (canary.ErrorRate() > stable.ErrorRate() + options.canary_error_margin) {
    if (reason != nullptr) {
      *reason = "canary error rate " + std::to_string(canary.ErrorRate()) +
                " exceeds stable " + std::to_string(stable.ErrorRate()) +
                " by more than margin " +
                std::to_string(options.canary_error_margin);
    }
    return GateVerdict::kFail;
  }
  if (stable.latency_samples > 0 && canary.latency_samples > 0 &&
      stable.p95_us > 0 &&
      canary.p95_us > stable.p95_us * options.canary_latency_inflation) {
    if (reason != nullptr) {
      *reason = "canary p95 forward " + std::to_string(canary.p95_us) +
                "us exceeds stable p95 " + std::to_string(stable.p95_us) +
                "us x" + std::to_string(options.canary_latency_inflation);
    }
    return GateVerdict::kFail;
  }
  return GateVerdict::kPass;
}

}  // namespace bigcity::serve
