#ifndef BIGCITY_SERVE_ADMISSION_QUEUE_H_
#define BIGCITY_SERVE_ADMISSION_QUEUE_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace bigcity::serve {

/// Bounded MPMC admission queue with explicit load shedding: TryPush never
/// blocks — a full queue rejects immediately so overload turns into fast
/// kResourceExhausted responses instead of unbounded latency growth.
/// Pop blocks until an item, or until Close() with an empty queue (the
/// shutdown signal for workers). Header-only template so the item type
/// (request + promise + deadline bookkeeping) stays private to the server.
template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(size_t capacity)
      : capacity_(capacity), effective_capacity_(capacity) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// False when the queue is full or closed. Takes an rvalue reference so
  /// a rejected item is NOT consumed — the caller still owns it and can
  /// resolve its promise with the shed status.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const size_t bound = std::min(
          capacity_, effective_capacity_.load(std::memory_order_relaxed));
      if (closed_ || items_.size() >= bound) return false;
      items_.push_back(std::move(item));
    }
    ready_cv_.notify_one();
    return true;
  }

  /// Blocks for the next item; nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop; nullopt when the queue is currently empty. The
  /// batcher drains arrivals with this before deciding what to dispatch.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocks up to `timeout_us` for the next item. Returns nullopt on
  /// timeout, on close-with-empty-queue, or after a Kick() — callers
  /// re-evaluate their own dispatch state and loop.
  std::optional<T> PopFor(double timeout_us) {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t seen = kick_epoch_;
    ready_cv_.wait_for(lock,
                       std::chrono::duration<double, std::micro>(timeout_us),
                       [&] {
                         return closed_ || !items_.empty() ||
                                kick_epoch_ != seen;
                       });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Wakes every blocked PopFor() without delivering an item. The batcher
  /// kicks after dispatching a partial group so an idle worker takes over
  /// the leftover items' window timer instead of sleeping indefinitely.
  void Kick() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++kick_epoch_;
    }
    ready_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Stops admissions and wakes blocked Pop() calls. Items already queued
  /// are still handed out (drain-then-stop shutdown).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_cv_.notify_all();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Tightens (or restores) the admission bound without touching queued
  /// items; the constructor capacity stays the hard ceiling. The overload
  /// controller shrinks this under memory pressure so backlog stops
  /// growing before allocation failure.
  void SetEffectiveCapacity(size_t capacity) {
    effective_capacity_.store(std::max<size_t>(1, capacity),
                              std::memory_order_relaxed);
  }

  size_t effective_capacity() const {
    return std::min(capacity_,
                    effective_capacity_.load(std::memory_order_relaxed));
  }

 private:
  const size_t capacity_;
  std::atomic<size_t> effective_capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::deque<T> items_;
  uint64_t kick_epoch_ = 0;
  bool closed_ = false;
};

}  // namespace bigcity::serve

#endif  // BIGCITY_SERVE_ADMISSION_QUEUE_H_
