#include "serve/model_registry.h"

#include <fstream>
#include <utility>

#include "obs/obs.h"
#include "util/logging.h"

namespace bigcity::serve {

ModelRegistry::ModelRegistry(std::string dir, std::string expected_fingerprint)
    : dir_(std::move(dir)),
      expected_fingerprint_(std::move(expected_fingerprint)) {}

util::Status ModelRegistry::Validate(uint64_t version,
                                     VersionInfo* info) const {
  const std::string version_dir = util::VersionPath(dir_, version);
  util::Result<util::VersionManifest> manifest =
      util::ReadManifest(version_dir);
  if (!manifest.ok()) {
    return util::Status::InvalidArgument("manifest unreadable: " +
                                         manifest.status().message());
  }
  if (manifest.value().version != version) {
    return util::Status::InvalidArgument(
        "manifest names version " +
        std::to_string(manifest.value().version) + " but lives in " +
        util::VersionDirName(version));
  }
  if (manifest.value().config_fingerprint != expected_fingerprint_) {
    return util::Status::InvalidArgument(
        "config fingerprint mismatch: checkpoint built for \"" +
        manifest.value().config_fingerprint + "\", server runs \"" +
        expected_fingerprint_ + "\"");
  }
  const std::string weights = util::WeightsPath(version_dir);
  uint32_t crc = 0;
  uint64_t bytes = 0;
  if (auto s = util::FileCrc32(weights, &crc, &bytes); !s.ok()) {
    return util::Status::InvalidArgument("weights unreadable: " +
                                         s.message());
  }
  if (bytes != manifest.value().weight_bytes ||
      crc != manifest.value().weight_crc) {
    return util::Status::InvalidArgument(
        "weight file does not match manifest (size " + std::to_string(bytes) +
        " vs " + std::to_string(manifest.value().weight_bytes) + ", crc " +
        std::to_string(crc) + " vs " +
        std::to_string(manifest.value().weight_crc) + ")");
  }
  info->version = version;
  info->manifest = std::move(manifest).value();
  info->weights_path = weights;
  return util::Status::Ok();
}

util::Result<VersionInfo> ModelRegistry::PollOnce(uint64_t after) {
  util::Result<uint64_t> current = util::ReadCurrent(dir_);
  if (!current.ok()) {
    // No CURRENT yet (nothing ever published) or a corrupt pointer: both
    // mean "keep serving what you have".
    return util::Status::NotFound("no publishable version: " +
                                  current.status().message());
  }
  const uint64_t version = current.value();
  if (version <= after) {
    return util::Status::NotFound("CURRENT " + std::to_string(version) +
                                  " is not newer than " +
                                  std::to_string(after));
  }
  if (IsQuarantined(version)) {
    return util::Status::NotFound("CURRENT " + std::to_string(version) +
                                  " is quarantined");
  }
  {
    // Persisted marker from a previous process: adopt it.
    std::ifstream marker(
        util::QuarantinePath(util::VersionPath(dir_, version)));
    if (marker) {
      std::string reason((std::istreambuf_iterator<char>(marker)),
                         std::istreambuf_iterator<char>());
      Quarantine(version, reason.empty() ? "quarantined by previous run"
                                         : reason);
      return util::Status::NotFound("CURRENT " + std::to_string(version) +
                                    " carries a quarantine marker");
    }
  }
  VersionInfo info;
  if (util::Status status = Validate(version, &info); !status.ok()) {
    Quarantine(version, status.message());
    return util::Status::NotFound("CURRENT " + std::to_string(version) +
                                  " failed validation");
  }
  return info;
}

void ModelRegistry::Quarantine(uint64_t version, const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!quarantined_.emplace(version, reason).second) return;  // Known.
  }
  BIGCITY_COUNTER_INC("serve.rollout.quarantined");
  BIGCITY_LOG(Warning) << "quarantined model version " << version << ": "
                       << reason;
  // Best-effort persistent marker; the in-memory map is authoritative for
  // this process either way.
  std::ofstream marker(util::QuarantinePath(util::VersionPath(dir_, version)));
  if (marker) marker << reason << "\n";
}

bool ModelRegistry::IsQuarantined(uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_.count(version) > 0;
}

std::map<uint64_t, std::string> ModelRegistry::Quarantined() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_;
}

util::Result<uint64_t> PublishModelWithFingerprint(
    const std::string& dir, const core::BigCityModel& model,
    const std::string& fingerprint, int64_t parent_version) {
  if (auto s = util::EnsureDirectory(dir); !s.ok()) return s;
  const std::vector<uint64_t> existing = util::ListVersions(dir);
  const uint64_t version = existing.empty() ? 1 : existing.back() + 1;
  const std::string version_dir = util::VersionPath(dir, version);
  if (auto s = util::EnsureDirectory(version_dir); !s.ok()) return s;

  const std::string weights = util::WeightsPath(version_dir);
  if (auto s = model.SaveStateToFile(weights); !s.ok()) return s;

  util::VersionManifest manifest;
  manifest.version = version;
  manifest.parent_version = parent_version;
  manifest.config_fingerprint = fingerprint;
  if (auto s = util::FileCrc32(weights, &manifest.weight_crc,
                               &manifest.weight_bytes);
      !s.ok()) {
    return s;
  }
  if (auto s = util::WriteManifest(version_dir, manifest); !s.ok()) return s;
  // The version directory itself (weights + manifest entries) must be
  // durable before the pointer makes it reachable.
  if (auto s = util::SyncDir(version_dir); !s.ok()) return s;
  if (auto s = util::PublishCurrent(dir, version); !s.ok()) return s;
  BIGCITY_COUNTER_INC("serve.rollout.published");
  return version;
}

util::Result<uint64_t> PublishModel(const std::string& dir,
                                    const core::BigCityModel& model,
                                    int64_t parent_version) {
  return PublishModelWithFingerprint(
      dir, model, core::ConfigFingerprint(model.config()), parent_version);
}

}  // namespace bigcity::serve
