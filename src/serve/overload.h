#ifndef BIGCITY_SERVE_OVERLOAD_H_
#define BIGCITY_SERVE_OVERLOAD_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>

namespace bigcity::serve {

/// Memory-aware overload control for the serving runtime (DESIGN.md
/// §4.16). The controller turns a configurable process memory budget into
/// *pre-failure* back-pressure: the supervisor thread samples tensor
/// memory (mem.* tracker), plan-arena bytes, and injected leak bytes
/// against the budget every tick, and the server consults the resulting
/// state to shed at admission, shrink the continuous batcher's batch_max,
/// trim KV-session capacity, and tighten the admission-queue bound —
/// before an allocation ever fails.
///
/// State machine (one-way per tick, hysteresis on the way down):
///
///   kNormal --pressure >= low--> kPressure --pressure >= high--> kShedding
///   kShedding --pressure < low--> kNormal (never back to kPressure first)
///   kPressure --pressure < low--> kNormal
///
/// The gap between the high and low watermarks makes recovery monotone: a
/// shedding server keeps shedding until pressure falls all the way below
/// the low watermark, so the state never flaps across the shed threshold
/// while memory hovers there.
///
/// Queue residency gets a CoDel-style sojourn bound: when dequeued
/// requests have waited above `sojourn_target_ms` continuously for one
/// `sojourn_interval_ms`, the controller starts dropping stale requests at
/// dequeue (next drops at interval/sqrt(n), the CoDel control law), so a
/// backlog drains by shedding its oldest entries early instead of burning
/// a worker forward on requests that will miss their deadline anyway.
///
/// Thread safety: Sample runs on the supervisor thread; AdmitOk /
/// EffectiveBatchMax / EffectiveKvCapacity / EffectiveQueueCapacity are
/// lock-free reads from any thread; ShouldDropStale serializes the CoDel
/// law under its own mutex (workers call it once per dequeued item).
class OverloadController {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    /// Process memory budget in bytes; <= 0 disables memory-based control
    /// (the sojourn bound still applies when configured).
    int64_t mem_budget_bytes = 0;
    /// Enter kShedding at pressure >= high_watermark (fraction of budget).
    double high_watermark = 0.90;
    /// Enter kPressure at pressure >= low_watermark; leave any degraded
    /// state only when pressure < low_watermark.
    double low_watermark = 0.75;
    /// Smallest batch_max the pressure shrink may impose.
    int min_batch_max = 1;
    /// CoDel queue-sojourn target; <= 0 disables stale-request dropping.
    double sojourn_target_ms = 0;
    /// CoDel initial interval: sojourn must stay above target this long
    /// before the first drop.
    double sojourn_interval_ms = 100.0;
  };

  enum class State : int {
    kNormal = 0,    // Full batch/KV/queue capacity, admission open.
    kPressure = 1,  // Above low watermark: halve batch/KV/queue capacity.
    kShedding = 2,  // Above high watermark: additionally shed at admission.
  };

  explicit OverloadController(Options options);

  /// Sums the live tensor bytes (obs::MemoryTracker), the plan.arena.bytes
  /// gauge, and util::FaultInjection::LeakedBytes() — the serving
  /// process's tensor-memory picture in every build flavor.
  static int64_t CurrentMemoryBytes();

  /// Supervisor tick: samples CurrentMemoryBytes, runs the hysteresis
  /// state machine, publishes the serve.overload.* gauges.
  State Sample() { return SampleBytes(CurrentMemoryBytes()); }
  /// Testable core of Sample with an explicit byte sample.
  State SampleBytes(int64_t bytes);

  /// False while shedding: the server rejects new admissions with
  /// kResourceExhausted instead of letting them allocate.
  bool AdmitOk() const { return state() != State::kShedding; }

  /// Configured limit while kNormal; halved (floored at min_batch_max)
  /// under pressure so in-flight batch footprints shrink first.
  int EffectiveBatchMax(int configured) const;

  /// KV-session capacity under the same halving policy (0 stays 0).
  size_t EffectiveKvCapacity(size_t configured) const;

  /// Admission-queue bound under the same halving policy (floored at 1 so
  /// the server never wedges with an unpoppable queue).
  size_t EffectiveQueueCapacity(size_t configured) const;

  /// CoDel stale-drop decision for one dequeued request that waited
  /// `sojourn_us` in the admission queue. True means drop it now with
  /// kDeadlineExceeded instead of forwarding.
  bool ShouldDropStale(double sojourn_us, Clock::time_point now);

  State state() const {
    return static_cast<State>(state_.load(std::memory_order_relaxed));
  }
  int64_t sampled_bytes() const {
    return sampled_bytes_.load(std::memory_order_relaxed);
  }
  /// High-water mark of sampled bytes since construction — the "peak RSS
  /// stays under budget" invariant is checked against this.
  int64_t peak_sampled_bytes() const {
    return peak_sampled_bytes_.load(std::memory_order_relaxed);
  }
  /// Last sample as a fraction of the budget (0 when no budget is set).
  double pressure() const;
  const Options& options() const { return options_; }

  /// Stable lowercase state label ("normal", "pressure", "shedding").
  static const char* StateName(State state);

 private:
  const Options options_;
  std::atomic<int> state_{static_cast<int>(State::kNormal)};
  std::atomic<int64_t> sampled_bytes_{0};
  std::atomic<int64_t> peak_sampled_bytes_{0};

  // CoDel law state, serialized because drop spacing is sequential by
  // definition.
  std::mutex sojourn_mu_;
  std::optional<Clock::time_point> first_above_;  // When sojourn crossed
                                                  // target + interval ends.
  bool dropping_ = false;
  int drop_count_ = 0;
  Clock::time_point drop_next_{};
};

}  // namespace bigcity::serve

#endif  // BIGCITY_SERVE_OVERLOAD_H_
