#include "serve/baseline.h"

#include <vector>

#include "data/st_unit.h"
#include "util/check.h"

namespace bigcity::serve {

BaselinePredictor::BaselinePredictor(const data::CityDataset* dataset)
    : dataset_(dataset) {
  BIGCITY_CHECK(dataset != nullptr);
}

nn::Tensor BaselinePredictor::NextHopScores(
    const data::Trajectory& prefix) const {
  const auto& network = dataset_->network();
  const int num_segments = network.num_segments();
  std::vector<float> scores(static_cast<size_t>(num_segments), 0.0f);
  const int last = prefix.points.back().segment;
  const auto& popularity = dataset_->popularity();
  for (int successor : network.successors(last)) {
    // Popularity is strictly positive after aggregation smoothing; +1
    // keeps dead-end successors above the zero floor of non-successors.
    scores[static_cast<size_t>(successor)] =
        1.0f + static_cast<float>(popularity[static_cast<size_t>(successor)]);
  }
  return nn::Tensor::FromData({1, num_segments}, std::move(scores));
}

nn::Tensor BaselinePredictor::TravelTimeDeltas(
    const data::Trajectory& trajectory) const {
  const auto& network = dataset_->network();
  const int length = trajectory.length();
  std::vector<float> minutes;
  minutes.reserve(static_cast<size_t>(length - 1));
  for (int l = 1; l < length; ++l) {
    const int segment = trajectory.points[static_cast<size_t>(l)].segment;
    minutes.push_back(data::MinutesTarget(
        static_cast<double>(network.FreeFlowSeconds(segment))));
  }
  return nn::Tensor::FromData({length - 1, 1}, std::move(minutes));
}

nn::Tensor BaselinePredictor::PredictTraffic(int segment, int start_slice,
                                             int input_steps,
                                             int horizon) const {
  const auto& traffic = dataset_->traffic();
  float mean[data::kTrafficChannels] = {};
  for (int t = 0; t < input_steps; ++t) {
    for (int c = 0; c < data::kTrafficChannels; ++c) {
      mean[c] += traffic.Get(start_slice + t, segment, c);
    }
  }
  for (float& m : mean) m /= static_cast<float>(input_steps);
  std::vector<float> tiled;
  tiled.reserve(static_cast<size_t>(horizon * data::kTrafficChannels));
  for (int h = 0; h < horizon; ++h) {
    for (int c = 0; c < data::kTrafficChannels; ++c) tiled.push_back(mean[c]);
  }
  return nn::Tensor::FromData({horizon, data::kTrafficChannels},
                              std::move(tiled));
}

bool DegradableTask(core::Task task) {
  switch (task) {
    case core::Task::kNextHop:
    case core::Task::kTravelTimeEstimation:
    case core::Task::kTrafficOneStep:
    case core::Task::kTrafficMultiStep:
      return true;
    default:
      return false;
  }
}

}  // namespace bigcity::serve
