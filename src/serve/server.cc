#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "data/validate.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/model_dir.h"
#include "util/rng.h"

namespace bigcity::serve {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

/// Remaining budget in microseconds; +inf semantics via a large sentinel
/// are avoided — callers gate on `has_deadline` first.
double RemainingUs(const Clock::time_point deadline, Clock::time_point now) {
  return std::chrono::duration<double, std::micro>(deadline - now).count();
}

Outcome OutcomeForStatus(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kResourceExhausted:
      return Outcome::kShed;
    case util::StatusCode::kDeadlineExceeded:
      return Outcome::kDeadline;
    case util::StatusCode::kInvalidArgument:
      return Outcome::kQuarantined;
    default:
      return Outcome::kFailed;
  }
}

bool AllFinite(const nn::Tensor& tensor) {
  for (float value : tensor.data()) {
    if (!std::isfinite(value)) return false;
  }
  return true;
}

/// True when `served` is a point-for-point prefix of `next` (any length
/// from 2 up to and including next's own) — the autoregressive decode
/// pattern whose shared prompt prefix the KV cache can serve. Each ST
/// token depends only on its own trajectory point, so equal prefix points
/// mean bit-identical cached prompt rows.
bool IsServedPrefix(const data::Trajectory& served,
                    const data::Trajectory& next) {
  if (served.length() < 2 || served.length() > next.length()) return false;
  for (int l = 0; l < served.length(); ++l) {
    const data::TrajPoint& a = served.points[static_cast<size_t>(l)];
    const data::TrajPoint& b = next.points[static_cast<size_t>(l)];
    if (a.segment != b.segment || a.timestamp != b.timestamp) return false;
  }
  return true;
}

/// Batchable tasks are exactly those with a batched model entry point.
int BatchKeyFor(const core::Task task) {
  switch (task) {
    case core::Task::kNextHop:
    case core::Task::kTravelTimeEstimation:
    case core::Task::kTrafficOneStep:
    case core::Task::kTrafficMultiStep:
      return static_cast<int>(task);
    default:
      return -1;
  }
}

}  // namespace

// --- LatencyEstimator -------------------------------------------------------

void InferenceServer::LatencyEstimator::Record(double us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.size() < kWindow) {
    samples_.push_back(us);
  } else {
    samples_[next_] = us;
    next_ = (next_ + 1) % kWindow;
  }
  ++count_;
}

void InferenceServer::LatencyEstimator::Seed(double us, int copies) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < copies && samples_.size() < kWindow; ++i) {
    samples_.push_back(us);
  }
  count_ += static_cast<size_t>(copies);
}

double InferenceServer::LatencyEstimator::P95(int min_samples) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ < static_cast<size_t>(min_samples) || samples_.empty()) return 0;
  std::vector<double> sorted = samples_;
  const size_t rank =
      std::min(sorted.size() - 1,
               static_cast<size_t>(0.95 * static_cast<double>(sorted.size())));
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<ptrdiff_t>(rank), sorted.end());
  return sorted[rank];
}

// --- InferenceServer --------------------------------------------------------

InferenceServer::InferenceServer(const data::CityDataset* dataset,
                                 core::BigCityConfig model_config,
                                 ServeOptions options,
                                 const core::BigCityModel* prototype)
    : dataset_(dataset),
      model_config_(model_config),
      options_(options),
      prototype_(prototype),
      baseline_(dataset),
      queue_(static_cast<size_t>(std::max(1, options.queue_capacity))) {
  BIGCITY_CHECK(dataset != nullptr);
  BIGCITY_CHECK(options_.num_workers >= 1);
}

InferenceServer::~InferenceServer() { Stop(); }

util::Status InferenceServer::LoadReplicaWeights(
    core::BigCityModel* replica, const std::string& path) const {
  util::Status status = util::Status::Ok();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      BIGCITY_COUNTER_INC("serve.reload.retries");
      const double backoff_ms =
          options_.retry_backoff_ms *
          static_cast<double>(1 << std::min(attempt - 1, 3));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
    }
    if (util::FaultInjection::Fire(util::kFaultServeReloadFail)) {
      status = util::Status::Unavailable(
          "checkpoint reload transient fault (injected)");
      continue;
    }
    status = replica->LoadStateFromFile(path);
    if (status.ok()) return status;
    // Real I/O errors other than kUnavailable are not retryable (a missing
    // or corrupt file will not heal itself between attempts).
    if (status.code() != util::StatusCode::kUnavailable) return status;
  }
  return status;
}

std::shared_ptr<InferenceServer::Replica> InferenceServer::MakeReplica(
    uint64_t version, CohortStats* cohort) const {
  auto replica = std::make_shared<Replica>();
  replica->version = version;
  replica->cohort.store(cohort, std::memory_order_relaxed);
  replica->model =
      std::make_unique<core::BigCityModel>(dataset_, model_config_);
  if (options_.attach_lora) {
    util::Rng lora_rng(model_config_.seed ^ 0x10A5EEDULL);
    replica->model->backbone()->EnableLora(&lora_rng);
  }
  if (shared_reps_ != nullptr) {
    // Version-tagged sharing: a hot-swapped replica reads and writes its
    // own version's entries only, so stale representations never leak
    // across a weight change.
    replica->model->tokenizer()->SetSharedRepCache(shared_reps_.get(),
                                                   version);
  }
  return replica;
}

util::Status InferenceServer::Start() {
  BIGCITY_CHECK(!running_);
  breakers_.clear();
  breakers_.reserve(core::kNumTasks);
  for (int i = 0; i < core::kNumTasks; ++i) {
    breakers_.push_back(std::make_unique<CircuitBreaker>(
        options_.breaker_failure_threshold, options_.breaker_cooldown_ms));
  }
#if BIGCITY_OBS
  // serve.breaker.state.<TaskName> gauges; resolved once because the
  // names are dynamic (the macro fast path caches per call site only).
  for (int i = 0; i < core::kNumTasks; ++i) {
    breaker_gauges_[static_cast<size_t>(i)] =
        obs::MetricsRegistry::Global().GetGauge(
            "serve.breaker.state." +
            core::TaskName(static_cast<core::Task>(i)));
    breaker_gauges_[static_cast<size_t>(i)]->Set(0);
  }
  // serve.outcome.<TaskName>.<outcome> counters plus one SLO window per
  // task (handle == task index by construction; RegisterTask is
  // idempotent by name, so a restarted server reuses its windows).
  for (int i = 0; i < core::kNumTasks; ++i) {
    const std::string& task_name =
        core::TaskName(static_cast<core::Task>(i));
    for (int o = 0; o < kNumOutcomes; ++o) {
      outcome_counters_[static_cast<size_t>(i)][static_cast<size_t>(o)] =
          obs::MetricsRegistry::Global().GetCounter(
              "serve.outcome." + task_name + "." +
              OutcomeName(static_cast<Outcome>(o)));
    }
    obs::SloObjective objective;
    objective.success_rate = options_.slo_success_objective;
    objective.p99_us = options_.slo_p99_ms * 1000.0;
    objective.window = static_cast<size_t>(std::max(1, options_.slo_window));
    slo_.RegisterTask(task_name, objective);
  }
#endif
  if (options_.initial_forward_estimate_us > 0) {
    forward_latency_.Seed(options_.initial_forward_estimate_us,
                          options_.latency_min_samples);
  }
  if (options_.tokenizer_cache_slices > 0) {
    shared_reps_ = std::make_unique<core::SpatialRepCache>(
        static_cast<size_t>(options_.tokenizer_cache_slices));
  }
  {
    std::lock_guard<std::mutex> lock(kv_sessions_.mu);
    kv_sessions_.capacity.store(
        static_cast<size_t>(std::max(0, options_.kv_sessions)) *
            static_cast<size_t>(options_.num_workers),
        std::memory_order_relaxed);
    kv_sessions_.sessions.clear();
  }
  {
    // The overload controller exists in every configuration (budget 0 =
    // memory control disabled) so the batcher's batch_max callback and
    // the serve.overload.* gauges are uniform.
    OverloadController::Options overload_options;
    overload_options.mem_budget_bytes = options_.mem_budget_bytes;
    overload_options.high_watermark = options_.overload_high_watermark;
    overload_options.low_watermark = options_.overload_low_watermark;
    overload_options.sojourn_target_ms = options_.sojourn_target_ms;
    overload_options.sojourn_interval_ms = options_.sojourn_interval_ms;
    overload_ = std::make_unique<OverloadController>(overload_options);
  }
  if (options_.batching) {
    Batcher<WorkItem>::Options batch_options;
    batch_options.batch_max = std::max(1, options_.batch_max);
    batch_options.window_us = std::max(0.0, options_.batch_window_us);
    batcher_ = std::make_unique<Batcher<WorkItem>>(
        &queue_, batch_options,
        [](const WorkItem& item) { return BatchKeyFor(item.request.task); },
        [](const WorkItem& item) {
          if (!item.has_deadline) {
            return std::numeric_limits<double>::infinity();
          }
          return RemainingUs(item.deadline, Clock::now());
        },
        [this] {
          // Urgency margin: the item must still fit one forward after the
          // batcher releases it, so window + max(p95, window) of slack
          // triggers immediate dispatch.
          const double window = std::max(0.0, options_.batch_window_us);
          const double p95 =
              forward_latency_.P95(options_.latency_min_samples);
          return window + std::max(p95, window);
        },
        [](WorkItem& item, double waited_us) {
          // Batch-dispatch stamp: pending time inside the batcher, split
          // out of queue_wait in the stage breakdown and recorded as the
          // serve.batch.wait_us histogram at dequeue.
          item.batch_wait_us = waited_us;
        },
        [this] {
          // Memory pressure halves the batch ceiling (per dispatch
          // decision, so recovery is immediate once pressure clears).
          const int configured = std::max(1, options_.batch_max);
          return overload_ != nullptr
                     ? overload_->EffectiveBatchMax(configured)
                     : configured;
        });
  }

  // Version discovery before any replica is built: when the model dir
  // already holds a valid CURRENT version, the fleet boots from it.
  uint64_t initial_version = 0;
  std::string initial_weights;
  if (!options_.rollout.model_dir.empty()) {
    registry_ = std::make_unique<ModelRegistry>(
        options_.rollout.model_dir, core::ConfigFingerprint(model_config_));
    util::Result<VersionInfo> candidate = registry_->PollOnce(0);
    if (candidate.ok()) {
      initial_version = candidate.value().version;
      initial_weights = candidate.value().weights_path;
    }
  }

  slots_.clear();
  slots_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    std::shared_ptr<Replica> replica =
        MakeReplica(initial_version, &stable_stats_);
    if (prototype_ != nullptr) {
      replica->model->CopyStateFrom(*prototype_);
    }
    if (!options_.checkpoint_path.empty()) {
      util::Status status =
          LoadReplicaWeights(replica->model.get(), options_.checkpoint_path);
      if (!status.ok()) {
        slots_.clear();
        registry_.reset();
        return status;
      }
    }
    if (!initial_weights.empty()) {
      // The registry CRC-validated the file; load it once from disk and
      // fan the weights out to the other replicas in memory.
      util::Status status =
          i == 0 ? LoadReplicaWeights(replica->model.get(), initial_weights)
                 : util::Status::Ok();
      if (!status.ok()) {
        slots_.clear();
        registry_.reset();
        return status;
      }
      if (i > 0) replica->model->CopyStateFrom(*slots_[0]->replica->model);
    }
    auto slot = std::make_unique<WorkerSlot>();
    slot->replica = std::move(replica);
    slots_.push_back(std::move(slot));
  }
  stable_version_.store(initial_version, std::memory_order_relaxed);
  generation_.store(0, std::memory_order_relaxed);
  BIGCITY_GAUGE_SET("serve.rollout.generation", 0);
  BIGCITY_GAUGE_SET("serve.rollout.stable_version", initial_version);

  heartbeats_.clear();
  for (int i = 0; i < options_.num_workers; ++i) {
    heartbeats_.push_back(std::make_unique<Heartbeat>());
  }
  running_ = true;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers_.reserve(static_cast<size_t>(options_.num_workers));
    for (int i = 0; i < options_.num_workers; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i, /*generation=*/0); });
    }
  }
  if (registry_ != nullptr) {
    rollout_stop_ = false;
    SetRolloutState(RolloutState::kIdle);
    rollout_thread_ = std::thread([this] { RolloutLoop(); });
  }
  supervisor_stop_ = false;
  supervisor_thread_ = std::thread([this] { SupervisorLoop(); });
  return util::Status::Ok();
}

void InferenceServer::Stop() {
  if (!running_) return;
  // Controller first: an undecided canary is rolled back before the
  // workers drain, so shutdown never promotes without evidence.
  {
    std::lock_guard<std::mutex> lock(rollout_mu_);
    rollout_stop_ = true;
  }
  rollout_cv_.notify_all();
  if (rollout_thread_.joinable()) rollout_thread_.join();
  // Supervisor before the queue closes: no reap/replace churn while the
  // workers drain. Parked (wedged) threads join after the live ones —
  // injected stalls are finite and disarm-released, so the joins finish.
  {
    std::lock_guard<std::mutex> lock(supervisor_mu_);
    supervisor_stop_ = true;
  }
  supervisor_cv_.notify_all();
  if (supervisor_thread_.joinable()) supervisor_thread_.join();
  queue_.Close();
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    to_join.swap(workers_);
    for (std::thread& parked : parked_) to_join.push_back(std::move(parked));
    parked_.clear();
  }
  for (std::thread& worker : to_join) {
    if (worker.joinable()) worker.join();
  }
  // Final gauge push so short runs export their complete SLO windows
  // even when no task reached the tracker's self-publish cadence.
  slo_.Publish();
  running_ = false;
}

void InferenceServer::Finish(WorkItem& item, Response response) {
  // Claim the shared completion first: exactly one of {owning worker,
  // watchdog reap} resolves the promise. A worker that lost the race —
  // its request was reaped off it while it was wedged — drops its late
  // result here, counters and all (the reap already accounted for it).
  if (item.completion == nullptr ||
      item.completion->done.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  BIGCITY_TRACE_ID_SCOPE(item.trace_id);
  BIGCITY_TRACE_SPAN("serve.finish", "serve");
  response.id = item.request.id;
  response.trace_id = item.trace_id;
  response.total_us = MicrosSince(item.submitted, Clock::now());
  response.queue_wait_us = item.queue_wait_us;
  response.batch_size = item.batch_size;
  response.stages = item.stages;
  if (response.status.ok()) {
    response.outcome = response.degraded ? Outcome::kDegraded : Outcome::kOk;
  } else if (response.outcome == Outcome::kOk) {
    // Not pre-set by a stage (the breaker sets kRejected itself).
    response.outcome = OutcomeForStatus(response.status);
  }
  BIGCITY_HISTOGRAM_RECORD("serve.e2e_us", response.total_us);
  // Flow terminus: the 'f' event inside the finish span closes this
  // request's chrome://tracing flow on whichever thread resolved it.
  BIGCITY_TRACE_FLOW("serve.request", "serve", 'f', item.trace_id);
#if BIGCITY_OBS
  const size_t task_index = static_cast<size_t>(item.request.task);
  const size_t outcome_index = static_cast<size_t>(response.outcome);
  if (task_index < outcome_counters_.size() &&
      outcome_index < static_cast<size_t>(kNumOutcomes) &&
      outcome_counters_[task_index][outcome_index] != nullptr) {
    outcome_counters_[task_index][outcome_index]->Add(1);
  }
  // SLO accounting sees every terminal outcome: shed and expired requests
  // burn error budget exactly like forward failures.
  slo_.Record(static_cast<int>(task_index), response.status.ok(),
              response.total_us);
#endif
  item.completion->promise.set_value(std::move(response));
}

void InferenceServer::FinishReaped(const InflightRecord& record) {
  if (record.completion == nullptr ||
      record.completion->done.exchange(true, std::memory_order_acq_rel)) {
    return;  // The worker finished it in the instant before the reap.
  }
  BIGCITY_TRACE_ID_SCOPE(record.trace_id);
  BIGCITY_TRACE_SPAN("serve.watchdog.reap", "serve");
  Response response;
  response.status =
      util::Status::DeadlineExceeded("request reaped off hung worker");
  response.outcome = Outcome::kReaped;
  response.id = record.id;
  response.trace_id = record.trace_id;
  response.total_us = MicrosSince(record.submitted, Clock::now());
  response.queue_wait_us = record.queue_wait_us;
  response.model_version = record.model_version;
  BIGCITY_HISTOGRAM_RECORD("serve.e2e_us", response.total_us);
  // Flow terminus on the supervisor thread: the reaped request's trace
  // still reads submit -> worker step -> reap, end to end.
  BIGCITY_TRACE_FLOW("serve.request", "serve", 'f', record.trace_id);
#if BIGCITY_OBS
  const size_t task_index = static_cast<size_t>(record.task);
  const size_t outcome_index = static_cast<size_t>(Outcome::kReaped);
  if (task_index < outcome_counters_.size() &&
      outcome_counters_[task_index][outcome_index] != nullptr) {
    outcome_counters_[task_index][outcome_index]->Add(1);
  }
  slo_.Record(static_cast<int>(task_index), false, response.total_us);
#endif
  watchdog_reaps_.fetch_add(1, std::memory_order_relaxed);
  BIGCITY_COUNTER_INC("serve.watchdog.reaped");
  record.completion->promise.set_value(std::move(response));
}

std::future<Response> InferenceServer::Submit(Request request) {
  BIGCITY_COUNTER_INC("serve.submitted");
  WorkItem item;
  // Trace-id allocation is always-on plain code (one relaxed atomic): the
  // id is part of the response contract in every build flavor, only the
  // span/flow recording below compiles out.
  item.trace_id = obs::NextTraceId();
  item.submitted = Clock::now();
  BIGCITY_TRACE_ID_SCOPE(item.trace_id);
  BIGCITY_TRACE_SPAN("serve.submit", "serve");
  // Flow origin: the 's' event inside the submit span starts this
  // request's chrome://tracing flow; Process/ProcessBatch step it ('t')
  // on the worker thread and Finish terminates it ('f').
  BIGCITY_TRACE_FLOW("serve.request", "serve", 's', item.trace_id);
  const double deadline_ms = request.deadline_ms > 0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  item.has_deadline = deadline_ms > 0;
  if (item.has_deadline) {
    item.deadline =
        item.submitted +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(deadline_ms));
  }
  item.request = std::move(request);
  item.completion = std::make_shared<Completion>();
  std::future<Response> future = item.completion->promise.get_future();

  // Checkpoint 1 (pre-queue): a request that arrives already expired never
  // occupies a queue slot.
  const bool expired =
      util::FaultInjection::Fire(util::kFaultServeExpireAtAdmit) ||
      (item.has_deadline && Clock::now() >= item.deadline);
  if (expired) {
    BIGCITY_COUNTER_INC("serve.deadline.pre_queue");
    Response response;
    response.status =
        util::Status::DeadlineExceeded("deadline expired before admission");
    Finish(item, std::move(response));
    return future;
  }

  // Memory-aware shed (DESIGN.md §4.16): while the overload controller is
  // in its shedding state, new admissions fail fast with the same typed
  // status as a full queue — before they can allocate anything.
  if (overload_ != nullptr && !overload_->AdmitOk()) {
    BIGCITY_COUNTER_INC("serve.overload.shed");
    overload_sheds_.fetch_add(1, std::memory_order_relaxed);
    Response response;
    response.status = util::Status::ResourceExhausted(
        "memory overload: shedding admissions");
    Finish(item, std::move(response));
    return future;
  }

  if (!queue_.TryPush(std::move(item))) {
    // TryPush takes an rvalue reference and only moves on success, so the
    // promise is still ours to resolve.
    BIGCITY_COUNTER_INC("serve.shed");
    Response response;
    response.status = util::Status::ResourceExhausted(
        running_ ? "admission queue full" : "server not running");
    Finish(item, std::move(response));
    return future;
  }
  BIGCITY_GAUGE_SET("serve.queue_depth", queue_.depth());
  return future;
}

Response InferenceServer::ServeSync(Request request) {
  return Submit(std::move(request)).get();
}

CircuitBreaker& InferenceServer::BreakerFor(core::Task task) {
  const size_t index = static_cast<size_t>(task);
  BIGCITY_CHECK(index < breakers_.size());
  return *breakers_[index];
}

void InferenceServer::PublishBreakerState(core::Task task) {
#if BIGCITY_OBS
  const size_t index = static_cast<size_t>(task);
  if (index < breakers_.size() && breaker_gauges_[index] != nullptr) {
    breaker_gauges_[index]->Set(
        static_cast<double>(static_cast<int>(breakers_[index]->state())));
  }
#endif
}

CircuitBreaker::State InferenceServer::breaker_state(core::Task task) const {
  const size_t index = static_cast<size_t>(task);
  if (index >= breakers_.size()) return CircuitBreaker::State::kClosed;
  return breakers_[index]->state();
}

double InferenceServer::forward_p95_us() const {
  return forward_latency_.P95(options_.latency_min_samples);
}

util::Status InferenceServer::ValidateRequest(const Request& request) const {
  const int num_segments = dataset_->network().num_segments();
  switch (request.task) {
    case core::Task::kNextHop:
    case core::Task::kTravelTimeEstimation:
    case core::Task::kTrajClassification:
    case core::Task::kMostSimilarSearch: {
      util::Status status =
          data::ValidateTrajectory(request.trajectory, num_segments);
      if (!status.ok()) return status;
      if (request.trajectory.length() < 2) {
        return util::Status::InvalidArgument(
            "trajectory needs at least 2 points");
      }
      return util::Status::Ok();
    }
    case core::Task::kTrajRecovery: {
      util::Status status =
          data::ValidateTrajectory(request.trajectory, num_segments);
      if (!status.ok()) return status;
      if (request.kept.size() < 2) {
        return util::Status::InvalidArgument(
            "recovery needs at least 2 kept indices");
      }
      return util::Status::Ok();
    }
    case core::Task::kTrafficOneStep:
    case core::Task::kTrafficMultiStep: {
      const int horizon =
          request.task == core::Task::kTrafficOneStep ? 1 : request.horizon;
      if (horizon < 1) {
        return util::Status::InvalidArgument("horizon must be >= 1");
      }
      // Only the observed input window must exist; the horizon is a pure
      // prediction and may extend past the end of the series.
      return data::ValidateTrafficWindow(dataset_->traffic(), request.segment,
                                         request.start_slice,
                                         model_config_.traffic_input_steps);
    }
    case core::Task::kTrafficImputation: {
      util::Status status =
          data::ValidateTrafficWindow(dataset_->traffic(), request.segment,
                                      request.start_slice, request.window);
      if (!status.ok()) return status;
      for (int position : request.masked) {
        if (position < 0 || position >= request.window) {
          return util::Status::InvalidArgument(
              "imputation mask position out of window");
        }
      }
      return util::Status::Ok();
    }
  }
  return util::Status::InvalidArgument("unknown task");
}

util::Result<nn::Tensor> InferenceServer::RunModel(
    const Request& request, core::BigCityModel* model) {
  switch (request.task) {
    case core::Task::kNextHop:
      return model->TryNextHopLogits(request.trajectory);
    case core::Task::kTravelTimeEstimation:
      return model->TryTravelTimeDeltas(request.trajectory);
    case core::Task::kTrajClassification:
      return model->TryClassifyLogits(request.trajectory);
    case core::Task::kMostSimilarSearch:
      return model->TryEmbed(request.trajectory);
    case core::Task::kTrajRecovery:
      return model->TryRecoverLogits(request.trajectory, request.kept);
    case core::Task::kTrafficOneStep:
      return model->TryPredictTraffic(request.segment, request.start_slice,
                                      1);
    case core::Task::kTrafficMultiStep:
      return model->TryPredictTraffic(request.segment, request.start_slice,
                                      request.horizon);
    case core::Task::kTrafficImputation:
      return model->TryImputeTraffic(request.segment, request.start_slice,
                                     request.window, request.masked);
  }
  return util::Status::InvalidArgument("unknown task");
}

util::Result<nn::Tensor> InferenceServer::RunBaseline(
    const Request& request) const {
  switch (request.task) {
    case core::Task::kNextHop:
      return baseline_.NextHopScores(request.trajectory);
    case core::Task::kTravelTimeEstimation:
      return baseline_.TravelTimeDeltas(request.trajectory);
    case core::Task::kTrafficOneStep:
      return baseline_.PredictTraffic(request.segment, request.start_slice,
                                      model_config_.traffic_input_steps, 1);
    case core::Task::kTrafficMultiStep:
      return baseline_.PredictTraffic(request.segment, request.start_slice,
                                      model_config_.traffic_input_steps,
                                      request.horizon);
    default:
      return util::Status::Unavailable("task has no degraded fallback");
  }
}

/// Plan identity for a request: task name plus a power-of-two bucket of
/// the size knob that drives the forward's footprint, so a handful of
/// plans cover every request size without per-length captures.
nn::PlanKey PlanKeyFor(const Request& request) {
  int64_t size = 0;
  switch (request.task) {
    case core::Task::kNextHop:
    case core::Task::kTravelTimeEstimation:
    case core::Task::kTrajClassification:
    case core::Task::kMostSimilarSearch:
    case core::Task::kTrajRecovery:
      size = request.trajectory.length();
      break;
    case core::Task::kTrafficOneStep:
      size = 1;
      break;
    case core::Task::kTrafficMultiStep:
      size = request.horizon;
      break;
    case core::Task::kTrafficImputation:
      size = request.window;
      break;
  }
  int64_t bucket = 1;
  while (bucket < size) bucket <<= 1;
  return nn::PlanKey{core::TaskName(request.task), bucket};
}

Response InferenceServer::Process(WorkItem& item, Replica& replica,
                                  nn::PlanCache* plans, KvSessionStore* kv) {
  // Id scope first so the span's destructor still sees it when stamping.
  BIGCITY_TRACE_ID_SCOPE(item.trace_id);
  BIGCITY_TRACE_SPAN("serve.process", "serve");
  BIGCITY_TRACE_FLOW("serve.request", "serve", 't', item.trace_id);
  // Deterministic wedge site (after the flow step so a reaped request's
  // trace is still submit -> worker -> reap): the thread spins here for
  // the armed Param ms, exactly like a forward stuck in a pathological
  // input, and the watchdog must recover without its cooperation.
  util::FaultInjection::MaybeStall(util::kFaultServeWorkerStall);
  Response response;
  response.model_version = replica.version;
  const Request& request = item.request;
  CohortStats* cohort = replica.cohort.load(std::memory_order_relaxed);
  const bool is_canary = cohort == &canary_stats_;

  // Checkpoint 2 (pre-tokenize / post-dequeue): time spent queued counts
  // against the budget.
  if (util::FaultInjection::Fire(util::kFaultServeExpireAtTokenize) ||
      (item.has_deadline && Clock::now() >= item.deadline)) {
    BIGCITY_COUNTER_INC("serve.deadline.pre_tokenize");
    response.status =
        util::Status::DeadlineExceeded("deadline expired before tokenize");
    return response;
  }

  {
    BIGCITY_TIMED_SCOPE_NAMED("serve.validate_us", "serve.validate", "serve");
    const Clock::time_point validate_start = Clock::now();
    util::Status status = ValidateRequest(request);
    item.stages.validate_us += MicrosSince(validate_start, Clock::now());
    if (!status.ok()) {
      BIGCITY_COUNTER_INC("serve.quarantined");
      response.status = std::move(status);
      return response;
    }
  }

  // Checkpoint 3 (pre-forward): last exit before the expensive stage.
  if (util::FaultInjection::Fire(util::kFaultServeExpireAtForward) ||
      (item.has_deadline && Clock::now() >= item.deadline)) {
    BIGCITY_COUNTER_INC("serve.deadline.pre_forward");
    response.status =
        util::Status::DeadlineExceeded("deadline expired before forward");
    return response;
  }

  // Graceful degradation, path 1: circuit breaker.
  CircuitBreaker& breaker = BreakerFor(request.task);
  const CircuitBreaker::Decision decision = breaker.Admit(Clock::now());
  PublishBreakerState(request.task);
  if (decision == CircuitBreaker::Decision::kReject) {
    if (options_.degrade_when_breaker_open && DegradableTask(request.task)) {
      BIGCITY_COUNTER_INC("serve.degraded.breaker");
      util::Result<nn::Tensor> fallback = RunBaseline(request);
      response.status = fallback.status();
      if (fallback.ok()) {
        response.output = std::move(fallback).value();
        response.degraded = true;
      }
      return response;
    }
    BIGCITY_COUNTER_INC("serve.breaker.rejected");
    response.status = util::Status::Unavailable("circuit breaker open");
    response.outcome = Outcome::kRejected;
    return response;
  }
  if (decision == CircuitBreaker::Decision::kProbe) {
    BIGCITY_COUNTER_INC("serve.breaker.probes");
  }

  // Graceful degradation, path 2: remaining budget below p95 forward time.
  // A probe is exempt — its whole point is to exercise the real path.
  if (decision == CircuitBreaker::Decision::kAllow && item.has_deadline &&
      options_.degrade_on_tight_budget && DegradableTask(request.task)) {
    const double p95_us = forward_latency_.P95(options_.latency_min_samples);
    if (p95_us > 0 && RemainingUs(item.deadline, Clock::now()) < p95_us) {
      BIGCITY_COUNTER_INC("serve.degraded.budget");
      util::Result<nn::Tensor> fallback = RunBaseline(request);
      response.status = fallback.status();
      if (fallback.ok()) {
        response.output = std::move(fallback).value();
        response.degraded = true;
      }
      return response;
    }
  }

  // Forward with bounded-backoff retries around transient failures.
  // Everything between here and the start of the attempt that succeeds —
  // backoff sleeps plus failed attempts — is the request's retry
  // overhead in the stage breakdown.
  const Clock::time_point attempts_start = Clock::now();
  util::Status last_status = util::Status::Ok();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      BIGCITY_COUNTER_INC("serve.retries");
      ++response.retries;
      double backoff_ms = options_.retry_backoff_ms *
                          static_cast<double>(1 << std::min(attempt - 1, 3));
      if (item.has_deadline) {
        const double remaining_ms =
            RemainingUs(item.deadline, Clock::now()) / 1000.0;
        if (remaining_ms <= 0) {
          BIGCITY_COUNTER_INC("serve.deadline.pre_forward");
          response.status = util::Status::DeadlineExceeded(
              "deadline expired during retry backoff");
          if (breaker.RecordFailure(Clock::now())) {
            BIGCITY_COUNTER_INC("serve.breaker.opened");
          }
          PublishBreakerState(request.task);
          return response;
        }
        backoff_ms = std::min(backoff_ms, remaining_ms);
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
    }

    if (util::FaultInjection::Fire(util::kFaultServeTokenizeFail)) {
      last_status =
          util::Status::Unavailable("tokenizer transient fault (injected)");
      continue;
    }
    if (util::FaultInjection::Fire(util::kFaultServeForwardFail)) {
      last_status =
          util::Status::Unavailable("forward transient fault (injected)");
      continue;
    }

    // The thread-local stage accumulator carves tokenize/cache time out
    // of the forward wall time below; cleared per attempt so a retried
    // forward never double-counts the failed attempt's stages.
    obs::RequestStagesClear();
    const Clock::time_point forward_start = Clock::now();
    const bool use_kv = kv != nullptr &&
                        kv->capacity.load(std::memory_order_relaxed) > 0 &&
                        request.task == core::Task::kNextHop &&
                        request.trajectory.length() >= 2;
    util::Result<nn::Tensor> result = use_kv
        ? RunNextHopCached(request, replica, kv)
        : [&] {
            // No autograd on the hot path (intermediates die
            // immediately), and the whole forward allocates inside this
            // worker's plan arena; the output is cloned onto the heap
            // before the scope rewinds it.
            nn::NoGradGuard no_grad;
            nn::PlanScope plan_scope(plans, PlanKeyFor(request));
            util::Result<nn::Tensor> r =
                RunModel(request, replica.model.get());
            if (r.ok() && plan_scope.active()) {
              nn::ArenaPin pin;
              r = util::Result<nn::Tensor>(r.value().Detached());
            }
            return r;
          }();
    last_status = result.status();
    if (result.ok()) {
      const double forward_us = MicrosSince(forward_start, Clock::now());
      const double tokenize_us =
          obs::RequestStageValue(obs::RequestStage::kTokenize);
      const double cache_us =
          obs::RequestStageValue(obs::RequestStage::kCacheLookup);
      item.stages.retry_us += MicrosSince(attempts_start, forward_start);
      item.stages.tokenize_us += tokenize_us;
      item.stages.cache_lookup_us += cache_us;
      item.stages.forward_us +=
          std::max(0.0, forward_us - tokenize_us - cache_us);
      nn::Tensor output = std::move(result).value();
      if (!AllFinite(output)) {
        // A NaN/Inf output is a model-health defect, not a transient: no
        // retry (the same weights produce the same poison), and it stays
        // out of the circuit breaker — the breaker protects against
        // failing *tasks*, the rollout health gate against bad *weights*.
        BIGCITY_COUNTER_INC("serve.nonfinite_outputs");
        if (cohort != nullptr) cohort->RecordNonFinite();
        response.status =
            util::Status::Internal("model produced non-finite output");
        return response;
      }
      forward_latency_.Record(forward_us);
      BIGCITY_HISTOGRAM_RECORD("serve.forward_us", forward_us);
      double cohort_us = forward_us;
      if (is_canary &&
          util::FaultInjection::Fire(util::kFaultRolloutCanaryLatency)) {
        // Inflation is applied to the cohort sample only: the gate must
        // see it, the budget-degradation estimator must not.
        cohort_us += static_cast<double>(
            util::FaultInjection::Param(util::kFaultRolloutCanaryLatency));
      }
      if (cohort != nullptr) cohort->RecordSuccess(cohort_us);
      breaker.RecordSuccess();
      PublishBreakerState(request.task);
      response.status = util::Status::Ok();
      response.output = std::move(output);
      return response;
    }
    // Validation errors are deterministic — retrying cannot help, and they
    // must not trip the breaker (the input is at fault, not the model).
    if (last_status.code() == util::StatusCode::kInvalidArgument) {
      BIGCITY_COUNTER_INC("serve.quarantined");
      response.status = std::move(last_status);
      return response;
    }
  }

  item.stages.retry_us += MicrosSince(attempts_start, Clock::now());
  BIGCITY_COUNTER_INC("serve.failures");
  if (cohort != nullptr) cohort->RecordFailure();
  if (breaker.RecordFailure(Clock::now())) {
    BIGCITY_COUNTER_INC("serve.breaker.opened");
  }
  PublishBreakerState(request.task);
  response.status = std::move(last_status);
  return response;
}

std::optional<InferenceServer::KvSession> InferenceServer::CheckoutKvSession(
    KvSessionStore* kv, uint64_t version,
    const data::Trajectory& trajectory) {
  std::lock_guard<std::mutex> lock(kv->mu);
  auto best = kv->sessions.end();
  for (auto it = kv->sessions.begin(); it != kv->sessions.end(); ++it) {
    if (it->version != version) continue;
    if (it->cache.length() == 0) continue;
    if (!IsServedPrefix(it->served, trajectory)) continue;
    if (best == kv->sessions.end() ||
        it->served.length() > best->served.length()) {
      best = it;
    }
  }
  if (best == kv->sessions.end()) return std::nullopt;
  KvSession session = std::move(*best);
  kv->sessions.erase(best);
  return session;
}

bool InferenceServer::HasKvSession(KvSessionStore* kv, uint64_t version,
                                   const data::Trajectory& trajectory) {
  std::lock_guard<std::mutex> lock(kv->mu);
  for (const KvSession& candidate : kv->sessions) {
    if (candidate.version == version && candidate.cache.length() > 0 &&
        IsServedPrefix(candidate.served, trajectory)) {
      return true;
    }
  }
  return false;
}

void InferenceServer::CheckinKvSession(KvSessionStore* kv,
                                       KvSession session) {
  std::lock_guard<std::mutex> lock(kv->mu);
  if (kv->sessions.size() >= kv->capacity.load(std::memory_order_relaxed)) {
    auto oldest = kv->sessions.begin();
    for (auto it = kv->sessions.begin(); it != kv->sessions.end(); ++it) {
      if (it->tick < oldest->tick) oldest = it;
    }
    kv->sessions.erase(oldest);
  }
  session.tick = ++kv->tick;
  kv->sessions.push_back(std::move(session));
}

util::Result<nn::Tensor> InferenceServer::RunNextHopCached(
    const Request& request, Replica& replica, KvSessionStore* kv) {
  const data::Trajectory& trajectory = request.trajectory;
  // Longest-prefix session checkout: any session whose served trajectory
  // is a point-for-point prefix of this one resumes its cached attention
  // state (the longest leaves the fewest rows to decode). Sessions are
  // version-scoped so a hot-swapped replica never reuses attention state
  // computed by different weights.
  std::optional<KvSession> session =
      CheckoutKvSession(kv, replica.version, trajectory);
  if (session.has_value()) {
    BIGCITY_COUNTER_INC("serve.cache.kv.hit");
  } else {
    BIGCITY_COUNTER_INC("serve.cache.kv.miss");
    session.emplace();
    session->version = replica.version;
  }
  // KV state must survive across requests, so this forward allocates on
  // the heap (no plan scope): the savings come from skipping the cached
  // prefix, not from arena recycling.
  nn::NoGradGuard no_grad;
  util::Result<nn::Tensor> result =
      replica.model->TryNextHopLogitsCached(trajectory, &session->cache);
  if (!result.ok()) {
    // Dropping the checked-out session is the failure path's cleanup: the
    // store never sees a poisoned cache.
    return result;
  }
  session->cache.DetachToHeap();
  session->served = trajectory;
  CheckinKvSession(kv, std::move(*session));
  return result;
}

util::Result<std::vector<nn::Tensor>> InferenceServer::RunModelBatch(
    core::Task task, const std::vector<WorkItem*>& items, Replica& replica,
    KvSessionStore* kv) {
  core::BigCityModel* model = replica.model.get();
  switch (task) {
    case core::Task::kNextHop: {
      std::vector<data::Trajectory> prefixes;
      prefixes.reserve(items.size());
      for (const WorkItem* item : items) {
        prefixes.push_back(item->request.trajectory);
      }
      if (kv == nullptr ||
          kv->capacity.load(std::memory_order_relaxed) == 0) {
        return model->TryBatchNextHopLogits(prefixes);
      }
      // Continuous batching over the shared KV store: members extending a
      // cached decode check their session out (the batched forward runs
      // only their suffix rows against it), the rest get fresh sessions
      // the same forward prefills. Stacking hits and misses into one tall
      // forward is what amortizes the frozen weights' memory traffic — the
      // dominant cost of a short decode — across the whole batch. Sessions
      // are worker-local while checked out and only returned to the store
      // on success; a failed batch leaves no trace.
      std::vector<KvSession> sessions(items.size());
      std::vector<nn::KvCache*> caches(items.size(), nullptr);
      for (size_t i = 0; i < items.size(); ++i) {
        const data::Trajectory& trajectory = items[i]->request.trajectory;
        if (trajectory.length() < 2) continue;
        std::optional<KvSession> hit =
            CheckoutKvSession(kv, replica.version, trajectory);
        if (hit.has_value()) {
          BIGCITY_COUNTER_INC("serve.cache.kv.hit");
          sessions[i] = std::move(*hit);
        } else {
          BIGCITY_COUNTER_INC("serve.cache.kv.miss");
          sessions[i].version = replica.version;
        }
        caches[i] = &sessions[i].cache;
      }
      util::Result<std::vector<nn::Tensor>> result =
          model->TryBatchNextHopLogits(prefixes, &caches);
      if (result.ok()) {
        // The new K/V slices live in the batch's plan arena; pin the
        // copies to the heap so the sessions outlive the arena rewind.
        nn::ArenaPin pin;
        for (size_t i = 0; i < items.size(); ++i) {
          if (caches[i] == nullptr) continue;
          sessions[i].cache.DetachToHeap();
          sessions[i].served = items[i]->request.trajectory;
          CheckinKvSession(kv, std::move(sessions[i]));
        }
      }
      return result;
    }
    case core::Task::kTravelTimeEstimation: {
      std::vector<data::Trajectory> trajectories;
      trajectories.reserve(items.size());
      for (const WorkItem* item : items) {
        trajectories.push_back(item->request.trajectory);
      }
      return model->TryBatchTravelTimeDeltas(trajectories);
    }
    case core::Task::kTrafficOneStep:
    case core::Task::kTrafficMultiStep: {
      std::vector<core::BigCityModel::TrafficQuery> queries;
      queries.reserve(items.size());
      for (const WorkItem* item : items) {
        const Request& request = item->request;
        const int horizon =
            task == core::Task::kTrafficOneStep ? 1 : request.horizon;
        queries.push_back(core::BigCityModel::TrafficQuery{
            request.segment, request.start_slice, horizon});
      }
      return model->TryBatchPredictTraffic(queries);
    }
    default:
      return util::Status::InvalidArgument("task has no batched forward");
  }
}

void InferenceServer::ProcessBatch(std::vector<WorkItem>& items,
                                   Replica& replica, nn::PlanCache* plans,
                                   KvSessionStore* kv) {
  BIGCITY_TRACE_SPAN("serve.process_batch", "serve");
  // One 't' step per member inside the batch span binds every member's
  // flow to the shared forward: chrome://tracing renders each request as
  // submit -> this batch -> its finish, all on one connected flow.
  for (const WorkItem& item : items) {
    BIGCITY_TRACE_FLOW("serve.request", "serve", 't', item.trace_id);
  }
  // Same deterministic wedge site as the per-request path: every member
  // of a stalled batch gets reaped together.
  util::FaultInjection::MaybeStall(util::kFaultServeWorkerStall);
  const core::Task task = items[0].request.task;
  CohortStats* cohort = replica.cohort.load(std::memory_order_relaxed);

  // Per-item admission stages first: every request keeps its own typed
  // failure; only the survivors share the batched forward.
  std::vector<WorkItem*> live;
  live.reserve(items.size());
  for (WorkItem& item : items) {
    Response response;
    response.model_version = replica.version;
    if (util::FaultInjection::Fire(util::kFaultServeExpireAtTokenize) ||
        (item.has_deadline && Clock::now() >= item.deadline)) {
      BIGCITY_COUNTER_INC("serve.deadline.pre_tokenize");
      response.status =
          util::Status::DeadlineExceeded("deadline expired before tokenize");
      Finish(item, std::move(response));
      continue;
    }
    const Clock::time_point validate_start = Clock::now();
    util::Status status = ValidateRequest(item.request);
    item.stages.validate_us += MicrosSince(validate_start, Clock::now());
    if (!status.ok()) {
      BIGCITY_COUNTER_INC("serve.quarantined");
      response.status = std::move(status);
      Finish(item, std::move(response));
      continue;
    }
    if (util::FaultInjection::Fire(util::kFaultServeExpireAtForward) ||
        (item.has_deadline && Clock::now() >= item.deadline)) {
      BIGCITY_COUNTER_INC("serve.deadline.pre_forward");
      response.status =
          util::Status::DeadlineExceeded("deadline expired before forward");
      Finish(item, std::move(response));
      continue;
    }
    live.push_back(&item);
  }
  if (live.empty()) return;

  // One batched forward is one unit of breaker accounting; a rejection
  // degrades (or rejects) every member individually.
  CircuitBreaker& breaker = BreakerFor(task);
  const CircuitBreaker::Decision decision = breaker.Admit(Clock::now());
  PublishBreakerState(task);
  if (decision == CircuitBreaker::Decision::kReject) {
    for (WorkItem* item : live) {
      Response response;
      response.model_version = replica.version;
      if (options_.degrade_when_breaker_open && DegradableTask(task)) {
        BIGCITY_COUNTER_INC("serve.degraded.breaker");
        util::Result<nn::Tensor> fallback = RunBaseline(item->request);
        response.status = fallback.status();
        if (fallback.ok()) {
          response.output = std::move(fallback).value();
          response.degraded = true;
        }
      } else {
        BIGCITY_COUNTER_INC("serve.breaker.rejected");
        response.status = util::Status::Unavailable("circuit breaker open");
        response.outcome = Outcome::kRejected;
      }
      Finish(*item, std::move(response));
    }
    return;
  }
  if (decision == CircuitBreaker::Decision::kProbe) {
    BIGCITY_COUNTER_INC("serve.breaker.probes");
  }

  // Budget degradation stays per item — deadlines differ across the batch.
  if (decision == CircuitBreaker::Decision::kAllow &&
      options_.degrade_on_tight_budget && DegradableTask(task)) {
    const double p95_us = forward_latency_.P95(options_.latency_min_samples);
    if (p95_us > 0) {
      std::vector<WorkItem*> kept;
      kept.reserve(live.size());
      for (WorkItem* item : live) {
        if (item->has_deadline &&
            RemainingUs(item->deadline, Clock::now()) < p95_us) {
          BIGCITY_COUNTER_INC("serve.degraded.budget");
          Response response;
          response.model_version = replica.version;
          util::Result<nn::Tensor> fallback = RunBaseline(item->request);
          response.status = fallback.status();
          if (fallback.ok()) {
            response.output = std::move(fallback).value();
            response.degraded = true;
          }
          Finish(*item, std::move(response));
        } else {
          kept.push_back(item);
        }
      }
      live = std::move(kept);
      if (live.empty()) return;
    }
  }

  // One shared forward. Plans are keyed by task + batch size, so a stable
  // traffic mix replays a recycled arena; varying member lengths at the
  // same size just regrow it (still bit-identical).
  for (WorkItem* item : live) {
    item->batch_size = static_cast<int>(live.size());
  }
  obs::RequestStagesClear();
  const Clock::time_point forward_start = Clock::now();
  const bool injected_fault =
      util::FaultInjection::Fire(util::kFaultServeTokenizeFail) ||
      util::FaultInjection::Fire(util::kFaultServeForwardFail);
  util::Result<std::vector<nn::Tensor>> result =
      injected_fault
          ? util::Result<std::vector<nn::Tensor>>(util::Status::Unavailable(
                "batched forward transient fault (injected)"))
          : [&] {
              nn::NoGradGuard no_grad;
              int64_t bucket = 1;
              while (bucket < static_cast<int64_t>(live.size())) bucket <<= 1;
              nn::PlanScope plan_scope(
                  plans,
                  nn::PlanKey{core::TaskName(task) + ".batch", bucket});
              util::Result<std::vector<nn::Tensor>> r =
                  RunModelBatch(task, live, replica, kv);
              if (r.ok() && plan_scope.active()) {
                nn::ArenaPin pin;
                std::vector<nn::Tensor> detached;
                detached.reserve(r.value().size());
                for (const nn::Tensor& tensor : r.value()) {
                  detached.push_back(tensor.Detached());
                }
                r = util::Result<std::vector<nn::Tensor>>(
                    std::move(detached));
              }
              return r;
            }();

  if (result.ok()) {
    const double forward_us = MicrosSince(forward_start, Clock::now());
    forward_latency_.Record(forward_us);
    BIGCITY_HISTOGRAM_RECORD("serve.forward_us", forward_us);
    // Shared-forward attribution: every member waited the whole batched
    // forward, so each gets the identical tokenize/cache/forward split.
    const double tokenize_us =
        obs::RequestStageValue(obs::RequestStage::kTokenize);
    const double cache_us =
        obs::RequestStageValue(obs::RequestStage::kCacheLookup);
    const double net_forward_us =
        std::max(0.0, forward_us - tokenize_us - cache_us);
    for (WorkItem* item : live) {
      item->stages.tokenize_us += tokenize_us;
      item->stages.cache_lookup_us += cache_us;
      item->stages.forward_us += net_forward_us;
    }
    std::vector<nn::Tensor> outputs = std::move(result).value();
    bool any_ok = false;
    for (size_t i = 0; i < live.size(); ++i) {
      Response response;
      response.model_version = replica.version;
      if (!AllFinite(outputs[i])) {
        // Same policy as the per-request path: non-finite output is a
        // model-health defect — no retry, no breaker involvement.
        BIGCITY_COUNTER_INC("serve.nonfinite_outputs");
        if (cohort != nullptr) cohort->RecordNonFinite();
        response.status =
            util::Status::Internal("model produced non-finite output");
      } else {
        if (cohort != nullptr) cohort->RecordSuccess(forward_us);
        response.status = util::Status::Ok();
        response.output = std::move(outputs[i]);
        BIGCITY_COUNTER_INC("serve.completed");
        any_ok = true;
      }
      Finish(*live[i], std::move(response));
    }
    if (any_ok) {
      breaker.RecordSuccess();
      PublishBreakerState(task);
    }
    return;
  }

  // Batched attempt failed (transient fault or a member failed batch
  // screening): fall back to per-request processing, which retries,
  // quarantines, and feeds the breaker with exact per-item attribution.
  BIGCITY_COUNTER_INC("serve.batch.fallback");
  const double failed_batch_us = MicrosSince(forward_start, Clock::now());
  for (WorkItem* item : live) {
    // The abandoned batched attempt is retry overhead for every member —
    // attributed so the stage partition still sums to ~total_us.
    item->stages.retry_us += failed_batch_us;
    Response response = Process(*item, replica, plans, kv);
    if (response.status.ok()) BIGCITY_COUNTER_INC("serve.completed");
    Finish(*item, std::move(response));
  }
}

std::shared_ptr<InferenceServer::Replica> InferenceServer::AcquireReplica(
    size_t worker) {
  WorkerSlot& slot = *slots_[worker];
  std::lock_guard<std::mutex> lock(slot.mu);
  return slot.replica;
}

std::shared_ptr<InferenceServer::Replica> InferenceServer::SwapWorker(
    size_t worker, std::shared_ptr<Replica> next) {
  WorkerSlot& slot = *slots_[worker];
  std::lock_guard<std::mutex> lock(slot.mu);
  std::swap(slot.replica, next);
  return next;  // The displaced replica.
}

void InferenceServer::RegisterInflight(Heartbeat& hb,
                                       const std::vector<WorkItem*>& items,
                                       uint64_t model_version) {
  std::lock_guard<std::mutex> lock(hb.inflight_mu);
  hb.inflight.clear();
  hb.inflight.reserve(items.size());
  for (const WorkItem* item : items) {
    InflightRecord record;
    record.completion = item->completion;
    record.id = item->request.id;
    record.trace_id = item->trace_id;
    record.task = item->request.task;
    record.submitted = item->submitted;
    record.queue_wait_us = item->queue_wait_us;
    record.model_version = model_version;
    hb.inflight.push_back(std::move(record));
  }
}

void InferenceServer::ClearInflight(Heartbeat& hb) {
  std::lock_guard<std::mutex> lock(hb.inflight_mu);
  hb.inflight.clear();
}

void InferenceServer::WorkerLoop(int worker_index, uint64_t generation) {
  // Per-worker plan cache: plans are single-threaded by contract, and a
  // worker's arena footprint is fixed once its (task, bucket) mix has
  // been captured. A replacement worker starts with a cold cache; the
  // wedged incarnation's arena slabs are retired by the plan cache's
  // poison valve when its thread finally unwinds.
  nn::PlanCache plan_cache(/*capacity=*/16, options_.plans);
  // KV decode sessions live in the server-wide store (kv_sessions_) so a
  // walk keeps hitting no matter which worker serves each step; version
  // scoping retires them naturally across hot-swaps.
  KvSessionStore* kv_sessions = &kv_sessions_;
  Heartbeat& hb = *heartbeats_[static_cast<size_t>(worker_index)];
  // Incarnation check: the watchdog bumps the slot's generation when it
  // replaces a wedged worker, and the superseded thread must neither
  // serve new requests nor write the heartbeat the replacement now owns.
  const auto superseded = [&hb, generation] {
    return hb.generation.load(std::memory_order_acquire) != generation;
  };
  for (;;) {
    if (superseded()) return;
    // Idle beat before blocking: the supervisor treats a non-busy worker
    // as healthy, so a quiet queue never looks like a hang.
    hb.epoch.fetch_add(1, std::memory_order_release);
    std::vector<WorkItem> batch;
    if (batcher_ != nullptr) {
      batch = batcher_->NextBatch();
    } else {
      std::optional<WorkItem> item = queue_.Pop();
      if (item.has_value()) batch.push_back(std::move(*item));
    }
    if (batch.empty()) return;  // Closed and drained.
    BIGCITY_GAUGE_SET("serve.queue_depth", queue_.depth());
    BIGCITY_HISTOGRAM_RECORD("serve.batch.size",
                             static_cast<double>(batch.size()));

    if (util::FaultInjection::Fire(util::kFaultServeWorkerHold)) {
      // Park until the test disarms the site (worker occupancy control;
      // Param doubles as the poll flag so disarming releases immediately).
      while (util::FaultInjection::Param(util::kFaultServeWorkerHold) != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    // Deterministic memory-pressure site: retains Param bytes per firing
    // so chaos scenarios drive the overload controller with real resident
    // memory instead of mocked gauges.
    util::FaultInjection::MaybeLeak(util::kFaultServeWorkerLeak);

    const Clock::time_point dequeued = Clock::now();
    for (WorkItem& item : batch) {
      // Response::queue_wait_us keeps its historical admission-to-dequeue
      // meaning; the stage breakdown splits it into pure queue wait and
      // batcher-pending wait (stamped by the batch-dispatch callback),
      // which partition it exactly.
      item.queue_wait_us = MicrosSince(item.submitted, dequeued);
      item.batch_size = static_cast<int>(batch.size());
      item.stages.batch_wait_us = item.batch_wait_us;
      item.stages.queue_wait_us =
          std::max(0.0, item.queue_wait_us - item.batch_wait_us);
      BIGCITY_HISTOGRAM_RECORD("serve.queue_wait_us", item.queue_wait_us);
      if (batcher_ != nullptr) {
        BIGCITY_HISTOGRAM_RECORD("serve.batch.wait_us", item.batch_wait_us);
      }
    }

    // CoDel sojourn bound (DESIGN.md §4.16): when queue residency has sat
    // above target for a full interval, drop the stalest requests at
    // dequeue with a definite kDeadlineExceeded instead of burning a
    // forward on work that already missed its useful latency.
    if (overload_ != nullptr && overload_->options().sojourn_target_ms > 0) {
      std::vector<WorkItem> kept;
      kept.reserve(batch.size());
      for (WorkItem& item : batch) {
        if (overload_->ShouldDropStale(item.queue_wait_us, dequeued)) {
          stale_drops_.fetch_add(1, std::memory_order_relaxed);
          BIGCITY_COUNTER_INC("serve.overload.stale_dropped");
          Response response;
          response.status = util::Status::DeadlineExceeded(
              "stale request dropped: queue sojourn above target");
          Finish(item, std::move(response));
        } else {
          kept.push_back(std::move(item));
        }
      }
      batch = std::move(kept);
      if (batch.empty()) continue;
    }

    // The replica is pinned for the whole batch: a concurrent hot-swap
    // replaces the slot's pointer but never this in-flight forward's.
    std::shared_ptr<Replica> replica =
        AcquireReplica(static_cast<size_t>(worker_index));

    // Busy heartbeat + in-flight registration, gated on still owning the
    // slot: a superseded incarnation serves what it already popped (its
    // Finish calls lose the completion race harmlessly) but never touches
    // the replacement's heartbeat.
    std::vector<WorkItem*> members;
    members.reserve(batch.size());
    for (WorkItem& item : batch) members.push_back(&item);
    const bool current = !superseded();
    if (current) {
      hb.trace_id.store(batch[0].trace_id, std::memory_order_release);
      hb.busy.store(true, std::memory_order_release);
      hb.epoch.fetch_add(1, std::memory_order_release);
      RegisterInflight(hb, members, replica->version);
    }

    if (batch.size() == 1) {
      Response response =
          Process(batch[0], *replica, &plan_cache, kv_sessions);
      if (response.status.ok()) BIGCITY_COUNTER_INC("serve.completed");
      Finish(batch[0], std::move(response));
    } else {
      ProcessBatch(batch, *replica, &plan_cache, kv_sessions);
    }

    if (current && !superseded()) {
      ClearInflight(hb);
      hb.busy.store(false, std::memory_order_release);
      hb.trace_id.store(0, std::memory_order_release);
      hb.epoch.fetch_add(1, std::memory_order_release);
    }
  }
}

// --- Watchdog supervisor ----------------------------------------------------

std::shared_ptr<InferenceServer::Replica>
InferenceServer::MakeReplicaFromStable(size_t exclude_worker) {
  const uint64_t version = stable_version_.load(std::memory_order_relaxed);
  std::shared_ptr<Replica> replica = MakeReplica(version, &stable_stats_);
  // Weight source preference: a healthy sibling already serving the stable
  // version is a pure in-memory copy (replica params are immutable while
  // serving, so the copy races with nothing). The reaped worker's own
  // replica is excluded — it is being quarantined.
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (i == exclude_worker) continue;
    std::shared_ptr<Replica> sibling = AcquireReplica(i);
    if (sibling != nullptr && sibling->version == version &&
        sibling->model != nullptr) {
      replica->model->CopyStateFrom(*sibling->model);
      return replica;
    }
  }
  if (version == 0) {
    // Initial in-memory weights: the same sources Start() used.
    if (prototype_ != nullptr) {
      replica->model->CopyStateFrom(*prototype_);
    } else if (!options_.checkpoint_path.empty()) {
      util::Status status = LoadReplicaWeights(replica->model.get(),
                                               options_.checkpoint_path);
      if (!status.ok()) {
        BIGCITY_LOG(Warning) << "watchdog: replacement checkpoint reload "
                                "failed: "
                             << status.message();
        return nullptr;
      }
    }
    return replica;
  }
  // Registry version: reload its CRC-validated weights from disk.
  const std::string weights = util::WeightsPath(
      util::VersionPath(options_.rollout.model_dir, version));
  util::Status status = LoadReplicaWeights(replica->model.get(), weights);
  if (!status.ok()) {
    BIGCITY_LOG(Warning) << "watchdog: replacement weights reload failed: "
                         << status.message();
    return nullptr;
  }
  return replica;
}

void InferenceServer::ReapWorker(size_t worker) {
  Heartbeat& hb = *heartbeats_[worker];
  BIGCITY_TRACE_SPAN("serve.watchdog.reap_worker", "serve");
  watchdog_hangs_.fetch_add(1, std::memory_order_relaxed);
  BIGCITY_COUNTER_INC("serve.watchdog.hangs");
  BIGCITY_LOG(Warning) << "watchdog: worker " << worker
                       << " hung mid-request (trace "
                       << hb.trace_id.load(std::memory_order_acquire)
                       << "); reaping";

  // Supersede the wedged incarnation first: from here its heartbeat
  // writes stop and its eventual results lose the completion race.
  const uint64_t next_generation =
      hb.generation.fetch_add(1, std::memory_order_acq_rel) + 1;

  // Resolve its in-flight requests with a definite status — the caller
  // gets kDeadlineExceeded now, not a promise that hangs with the thread.
  std::vector<InflightRecord> records;
  {
    std::lock_guard<std::mutex> lock(hb.inflight_mu);
    records.swap(hb.inflight);
  }
  for (const InflightRecord& record : records) FinishReaped(record);

  // The heartbeat now describes the replacement incarnation.
  hb.busy.store(false, std::memory_order_release);
  hb.trace_id.store(0, std::memory_order_release);
  hb.epoch.fetch_add(1, std::memory_order_release);

  // Quarantine the wedged worker's replica: the slot gets a fresh replica
  // rebuilt from the stable version's weights, and the old one is
  // released by shared_ptr refcount once the wedged thread unwinds. If no
  // weight source is loadable the old replica stays — a serving worker
  // beats an empty slot.
  std::shared_ptr<Replica> replacement = MakeReplicaFromStable(worker);
  if (replacement != nullptr) {
    SwapWorker(worker, std::move(replacement));
  }

  // Park the wedged thread (joined at Stop; stalls are finite) and start
  // the replacement incarnation in its slot.
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    parked_.push_back(std::move(workers_[worker]));
    BIGCITY_GAUGE_SET("serve.watchdog.parked",
                      static_cast<double>(parked_.size()));
    workers_[worker] = std::thread([this, worker, next_generation] {
      WorkerLoop(static_cast<int>(worker), next_generation);
    });
  }
  watchdog_replacements_.fetch_add(1, std::memory_order_relaxed);
  BIGCITY_COUNTER_INC("serve.watchdog.replacements");
}

void InferenceServer::ApplyOverloadState() {
  queue_.SetEffectiveCapacity(overload_->EffectiveQueueCapacity(
      static_cast<size_t>(std::max(1, options_.queue_capacity))));
  const size_t base_kv =
      static_cast<size_t>(std::max(0, options_.kv_sessions)) *
      static_cast<size_t>(options_.num_workers);
  const size_t effective_kv = overload_->EffectiveKvCapacity(base_kv);
  std::lock_guard<std::mutex> lock(kv_sessions_.mu);
  kv_sessions_.capacity.store(effective_kv, std::memory_order_relaxed);
  // Evict LRU overflow now — shrinking the cap must release memory, not
  // merely stop growth.
  while (kv_sessions_.sessions.size() > effective_kv) {
    auto oldest = kv_sessions_.sessions.begin();
    for (auto it = kv_sessions_.sessions.begin();
         it != kv_sessions_.sessions.end(); ++it) {
      if (it->tick < oldest->tick) oldest = it;
    }
    kv_sessions_.sessions.erase(oldest);
  }
}

void InferenceServer::SupervisorLoop() {
  struct Watch {
    uint64_t epoch = 0;
    Clock::time_point changed;
  };
  std::vector<Watch> watches(heartbeats_.size());
  const Clock::time_point started = Clock::now();
  for (Watch& watch : watches) watch.changed = started;
  const double poll_ms = std::max(1.0, options_.watchdog_poll_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(supervisor_mu_);
      supervisor_cv_.wait_for(
          lock, std::chrono::duration<double, std::milli>(poll_ms),
          [this] { return supervisor_stop_; });
      if (supervisor_stop_) return;
    }
    const Clock::time_point now = Clock::now();
    if (options_.hang_threshold_ms > 0) {
      for (size_t i = 0; i < heartbeats_.size(); ++i) {
        Heartbeat& hb = *heartbeats_[i];
        const uint64_t epoch = hb.epoch.load(std::memory_order_acquire);
        if (epoch != watches[i].epoch) {
          watches[i].epoch = epoch;
          watches[i].changed = now;
          continue;
        }
        if (!hb.busy.load(std::memory_order_acquire)) {
          // Idle workers beat only around dequeue; quiet is not hung.
          watches[i].changed = now;
          continue;
        }
        const double stalled_ms =
            std::chrono::duration<double, std::milli>(now - watches[i].changed)
                .count();
        if (stalled_ms >= options_.hang_threshold_ms) {
          ReapWorker(i);
          watches[i].epoch = hb.epoch.load(std::memory_order_acquire);
          watches[i].changed = Clock::now();
        }
      }
    }
    if (overload_ != nullptr) {
      overload_->Sample();
      ApplyOverloadState();
    }
  }
}

// --- Rollout controller -----------------------------------------------------

void InferenceServer::SetRolloutState(RolloutState state) {
  rollout_state_.store(static_cast<int>(state), std::memory_order_relaxed);
  BIGCITY_GAUGE_SET("serve.rollout.state", static_cast<int>(state));
  BIGCITY_LOG(Info) << "rollout state -> " << RolloutStateName(state);
}

bool InferenceServer::RolloutWait(double ms) {
  std::unique_lock<std::mutex> lock(rollout_mu_);
  rollout_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(ms),
                       [this] { return rollout_stop_; });
  return rollout_stop_;
}

void InferenceServer::RolloutLoop() {
  for (;;) {
    if (RolloutWait(options_.rollout.poll_interval_ms)) return;
    util::Result<VersionInfo> candidate =
        registry_->PollOnce(stable_version_.load(std::memory_order_relaxed));
    if (!candidate.ok()) continue;  // Nothing new (or quarantined).
    RunRollout(candidate.value());
  }
}

void InferenceServer::RunRollout(const VersionInfo& info) {
  BIGCITY_TRACE_SPAN("serve.rollout", "rollout");
  SetRolloutState(RolloutState::kStaged);
  BIGCITY_COUNTER_INC("serve.rollout.staged");
  BIGCITY_LOG(Info) << "rollout: staging version " << info.version
                    << " (parent " << info.manifest.parent_version << ")";

  // Stage: build + load entirely off the request path.
  std::shared_ptr<Replica> staged;
  {
    BIGCITY_TRACE_SPAN("serve.rollout.stage", "rollout");
    staged = MakeReplica(info.version, &canary_stats_);
    if (util::FaultInjection::Fire(util::kFaultRolloutSlowLoad)) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          static_cast<double>(
              util::FaultInjection::Param(util::kFaultRolloutSlowLoad))));
    }
    util::Status load =
        LoadReplicaWeights(staged->model.get(), info.weights_path);
    if (!load.ok()) {
      registry_->Quarantine(info.version,
                            "staged load failed: " + load.message());
      SetRolloutState(RolloutState::kQuarantined);
      return;
    }
    // Warm the candidate's tokenizer/GAT caches off the request path, so
    // the canary's first measured forwards are not cold-start outliers
    // that would false-trip the latency gate. Results are discarded; a
    // genuinely bad model is still judged on real canary traffic.
    int warmed = 0;
    nn::NoGradGuard no_grad;  // Warm caches the way workers will use them.
    for (const data::Trajectory& trajectory : dataset_->train()) {
      if (trajectory.length() < 2) continue;
      (void)staged->model->TryNextHopLogits(trajectory);
      if (++warmed >= 3) break;
    }
    (void)staged->model->TryPredictTraffic(0, 0, 1);
  }

  // Canary: worker 0 swaps to the candidate; both cohorts restart so the
  // gate compares like-for-like windows. The canary cohort additionally
  // discards its slow-start latency samples (cold caches).
  stable_stats_.Reset();
  canary_stats_.Reset(options_.rollout.canary_slow_start_samples);
  std::shared_ptr<Replica> previous = SwapWorker(0, staged);
  SetRolloutState(RolloutState::kCanary);
  BIGCITY_COUNTER_INC("serve.rollout.canary_started");

  GateVerdict verdict = GateVerdict::kNotReady;
  std::string reason;
  const Clock::time_point gate_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             options_.rollout.canary_timeout_ms));
  {
    BIGCITY_TRACE_SPAN("serve.rollout.canary", "rollout");
    while (Clock::now() < gate_deadline) {
      double slo_burn_rate = 0.0;
#if BIGCITY_OBS
      // Fleet-wide burn rate feeds the gate only when the deployment set
      // canary_max_burn_rate; a 16-request floor keeps a near-empty SLO
      // window from deciding a rollout.
      slo_burn_rate = slo_.MaxBurnRate(/*min_requests=*/16);
#endif
      verdict = EvaluateCanary(stable_stats_.Get(), canary_stats_.Get(),
                               options_.rollout, &reason, slo_burn_rate);
      if (verdict != GateVerdict::kNotReady) break;
      if (RolloutWait(2.0)) {
        // Shutdown mid-canary: restore the pinned stable replica and
        // leave the candidate unjudged (it stays eligible next start).
        SwapWorker(0, previous);
        SetRolloutState(RolloutState::kIdle);
        return;
      }
    }
  }

  if (verdict == GateVerdict::kPass) {
    SetRolloutState(RolloutState::kRolling);
    BIGCITY_TRACE_SPAN("serve.rollout.rolling", "rollout");
    // Promote the canary into the stable cohort, then roll the remaining
    // workers one by one; each swap lands between that worker's requests.
    staged->cohort.store(&stable_stats_, std::memory_order_relaxed);
    for (size_t worker = 1; worker < slots_.size(); ++worker) {
      std::shared_ptr<Replica> next =
          MakeReplica(info.version, &stable_stats_);
      next->model->CopyStateFrom(*staged->model);
      SwapWorker(worker, std::move(next));
    }
    stable_version_.store(info.version, std::memory_order_relaxed);
    const uint64_t generation =
        generation_.fetch_add(1, std::memory_order_relaxed) + 1;
    BIGCITY_COUNTER_INC("serve.rollout.completed");
    BIGCITY_GAUGE_SET("serve.rollout.generation", generation);
    BIGCITY_GAUGE_SET("serve.rollout.stable_version", info.version);
    SetRolloutState(RolloutState::kStable);
    BIGCITY_LOG(Info) << "rollout: version " << info.version
                      << " is stable (generation " << generation << ")";
  } else {
    if (verdict == GateVerdict::kNotReady) {
      reason = "canary starved: fewer than " +
               std::to_string(options_.rollout.canary_min_requests) +
               " canary requests within " +
               std::to_string(options_.rollout.canary_timeout_ms) +
               "ms (never promote without evidence)";
    }
    // Roll back: the pinned stable replica returns untouched, so
    // post-rollback outputs are bit-identical to pre-canary ones.
    SwapWorker(0, previous);
    registry_->Quarantine(info.version, reason);
    BIGCITY_COUNTER_INC("serve.rollout.rolled_back");
    SetRolloutState(RolloutState::kRolledBack);
    BIGCITY_LOG(Warning) << "rollout: version " << info.version
                         << " rolled back: " << reason;
  }
}

bool InferenceServer::WaitForRolloutState(RolloutState state,
                                          double timeout_ms) const {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(timeout_ms));
  while (rollout_state() != state) {
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

bool InferenceServer::WaitForStableVersion(uint64_t version,
                                           double timeout_ms) const {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(timeout_ms));
  while (stable_version() != version) {
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

}  // namespace bigcity::serve
