#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "data/validate.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace bigcity::serve {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

/// Remaining budget in microseconds; +inf semantics via a large sentinel
/// are avoided — callers gate on `has_deadline` first.
double RemainingUs(const Clock::time_point deadline, Clock::time_point now) {
  return std::chrono::duration<double, std::micro>(deadline - now).count();
}

Outcome OutcomeForStatus(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kResourceExhausted:
      return Outcome::kShed;
    case util::StatusCode::kDeadlineExceeded:
      return Outcome::kDeadline;
    case util::StatusCode::kInvalidArgument:
      return Outcome::kQuarantined;
    default:
      return Outcome::kFailed;
  }
}

}  // namespace

// --- LatencyEstimator -------------------------------------------------------

void InferenceServer::LatencyEstimator::Record(double us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.size() < kWindow) {
    samples_.push_back(us);
  } else {
    samples_[next_] = us;
    next_ = (next_ + 1) % kWindow;
  }
  ++count_;
}

void InferenceServer::LatencyEstimator::Seed(double us, int copies) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < copies && samples_.size() < kWindow; ++i) {
    samples_.push_back(us);
  }
  count_ += static_cast<size_t>(copies);
}

double InferenceServer::LatencyEstimator::P95(int min_samples) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ < static_cast<size_t>(min_samples) || samples_.empty()) return 0;
  std::vector<double> sorted = samples_;
  const size_t rank =
      std::min(sorted.size() - 1,
               static_cast<size_t>(0.95 * static_cast<double>(sorted.size())));
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<ptrdiff_t>(rank), sorted.end());
  return sorted[rank];
}

// --- InferenceServer --------------------------------------------------------

InferenceServer::InferenceServer(const data::CityDataset* dataset,
                                 core::BigCityConfig model_config,
                                 ServeOptions options,
                                 const core::BigCityModel* prototype)
    : dataset_(dataset),
      model_config_(model_config),
      options_(options),
      prototype_(prototype),
      baseline_(dataset),
      queue_(static_cast<size_t>(std::max(1, options.queue_capacity))) {
  BIGCITY_CHECK(dataset != nullptr);
  BIGCITY_CHECK(options_.num_workers >= 1);
}

InferenceServer::~InferenceServer() { Stop(); }

util::Status InferenceServer::LoadReplicaWeights(
    core::BigCityModel* replica) const {
  util::Status status = util::Status::Ok();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      BIGCITY_COUNTER_INC("serve.reload.retries");
      const double backoff_ms =
          options_.retry_backoff_ms *
          static_cast<double>(1 << std::min(attempt - 1, 3));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
    }
    if (util::FaultInjection::Fire(util::kFaultServeReloadFail)) {
      status = util::Status::Unavailable(
          "checkpoint reload transient fault (injected)");
      continue;
    }
    status = replica->LoadStateFromFile(options_.checkpoint_path);
    if (status.ok()) return status;
    // Real I/O errors other than kUnavailable are not retryable (a missing
    // or corrupt file will not heal itself between attempts).
    if (status.code() != util::StatusCode::kUnavailable) return status;
  }
  return status;
}

util::Status InferenceServer::Start() {
  BIGCITY_CHECK(!running_);
  breakers_.clear();
  breakers_.reserve(core::kNumTasks);
  for (int i = 0; i < core::kNumTasks; ++i) {
    breakers_.push_back(std::make_unique<CircuitBreaker>(
        options_.breaker_failure_threshold, options_.breaker_cooldown_ms));
  }
  if (options_.initial_forward_estimate_us > 0) {
    forward_latency_.Seed(options_.initial_forward_estimate_us,
                          options_.latency_min_samples);
  }

  replicas_.clear();
  replicas_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    auto replica =
        std::make_unique<core::BigCityModel>(dataset_, model_config_);
    if (options_.attach_lora) {
      util::Rng lora_rng(model_config_.seed ^ 0x10A5EEDULL);
      replica->backbone()->EnableLora(&lora_rng);
    }
    if (prototype_ != nullptr) {
      replica->CopyStateFrom(*prototype_);
    }
    if (!options_.checkpoint_path.empty()) {
      util::Status status = LoadReplicaWeights(replica.get());
      if (!status.ok()) {
        replicas_.clear();
        return status;
      }
    }
    replicas_.push_back(std::move(replica));
  }

  workers_.reserve(static_cast<size_t>(options_.num_workers));
  running_ = true;
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return util::Status::Ok();
}

void InferenceServer::Stop() {
  if (!running_) return;
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  running_ = false;
}

void InferenceServer::Finish(WorkItem& item, Response response) {
  response.id = item.request.id;
  response.total_us = MicrosSince(item.submitted, Clock::now());
  if (response.status.ok()) {
    response.outcome = response.degraded ? Outcome::kDegraded : Outcome::kOk;
  } else if (response.outcome == Outcome::kOk) {
    // Not pre-set by a stage (the breaker sets kRejected itself).
    response.outcome = OutcomeForStatus(response.status);
  }
  BIGCITY_HISTOGRAM_RECORD("serve.e2e_us", response.total_us);
  item.promise.set_value(std::move(response));
}

std::future<Response> InferenceServer::Submit(Request request) {
  BIGCITY_COUNTER_INC("serve.submitted");
  WorkItem item;
  item.submitted = Clock::now();
  const double deadline_ms = request.deadline_ms > 0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  item.has_deadline = deadline_ms > 0;
  if (item.has_deadline) {
    item.deadline =
        item.submitted +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(deadline_ms));
  }
  item.request = std::move(request);
  std::future<Response> future = item.promise.get_future();

  // Checkpoint 1 (pre-queue): a request that arrives already expired never
  // occupies a queue slot.
  const bool expired =
      util::FaultInjection::Fire(util::kFaultServeExpireAtAdmit) ||
      (item.has_deadline && Clock::now() >= item.deadline);
  if (expired) {
    BIGCITY_COUNTER_INC("serve.deadline.pre_queue");
    Response response;
    response.status =
        util::Status::DeadlineExceeded("deadline expired before admission");
    Finish(item, std::move(response));
    return future;
  }

  if (!queue_.TryPush(std::move(item))) {
    // TryPush takes an rvalue reference and only moves on success, so the
    // promise is still ours to resolve.
    BIGCITY_COUNTER_INC("serve.shed");
    Response response;
    response.status = util::Status::ResourceExhausted(
        running_ ? "admission queue full" : "server not running");
    Finish(item, std::move(response));
    return future;
  }
  BIGCITY_GAUGE_SET("serve.queue_depth", queue_.depth());
  return future;
}

Response InferenceServer::ServeSync(Request request) {
  return Submit(std::move(request)).get();
}

CircuitBreaker& InferenceServer::BreakerFor(core::Task task) {
  const size_t index = static_cast<size_t>(task);
  BIGCITY_CHECK(index < breakers_.size());
  return *breakers_[index];
}

CircuitBreaker::State InferenceServer::breaker_state(core::Task task) const {
  const size_t index = static_cast<size_t>(task);
  if (index >= breakers_.size()) return CircuitBreaker::State::kClosed;
  return breakers_[index]->state();
}

double InferenceServer::forward_p95_us() const {
  return forward_latency_.P95(options_.latency_min_samples);
}

util::Status InferenceServer::ValidateRequest(const Request& request) const {
  const int num_segments = dataset_->network().num_segments();
  switch (request.task) {
    case core::Task::kNextHop:
    case core::Task::kTravelTimeEstimation:
    case core::Task::kTrajClassification:
    case core::Task::kMostSimilarSearch: {
      util::Status status =
          data::ValidateTrajectory(request.trajectory, num_segments);
      if (!status.ok()) return status;
      if (request.trajectory.length() < 2) {
        return util::Status::InvalidArgument(
            "trajectory needs at least 2 points");
      }
      return util::Status::Ok();
    }
    case core::Task::kTrajRecovery: {
      util::Status status =
          data::ValidateTrajectory(request.trajectory, num_segments);
      if (!status.ok()) return status;
      if (request.kept.size() < 2) {
        return util::Status::InvalidArgument(
            "recovery needs at least 2 kept indices");
      }
      return util::Status::Ok();
    }
    case core::Task::kTrafficOneStep:
    case core::Task::kTrafficMultiStep: {
      const int horizon =
          request.task == core::Task::kTrafficOneStep ? 1 : request.horizon;
      if (horizon < 1) {
        return util::Status::InvalidArgument("horizon must be >= 1");
      }
      // Only the observed input window must exist; the horizon is a pure
      // prediction and may extend past the end of the series.
      return data::ValidateTrafficWindow(dataset_->traffic(), request.segment,
                                         request.start_slice,
                                         model_config_.traffic_input_steps);
    }
    case core::Task::kTrafficImputation: {
      util::Status status =
          data::ValidateTrafficWindow(dataset_->traffic(), request.segment,
                                      request.start_slice, request.window);
      if (!status.ok()) return status;
      for (int position : request.masked) {
        if (position < 0 || position >= request.window) {
          return util::Status::InvalidArgument(
              "imputation mask position out of window");
        }
      }
      return util::Status::Ok();
    }
  }
  return util::Status::InvalidArgument("unknown task");
}

util::Result<nn::Tensor> InferenceServer::RunModel(
    const Request& request, core::BigCityModel* model) {
  switch (request.task) {
    case core::Task::kNextHop:
      return model->TryNextHopLogits(request.trajectory);
    case core::Task::kTravelTimeEstimation:
      return model->TryTravelTimeDeltas(request.trajectory);
    case core::Task::kTrajClassification:
      return model->TryClassifyLogits(request.trajectory);
    case core::Task::kMostSimilarSearch:
      return model->TryEmbed(request.trajectory);
    case core::Task::kTrajRecovery:
      return model->TryRecoverLogits(request.trajectory, request.kept);
    case core::Task::kTrafficOneStep:
      return model->TryPredictTraffic(request.segment, request.start_slice,
                                      1);
    case core::Task::kTrafficMultiStep:
      return model->TryPredictTraffic(request.segment, request.start_slice,
                                      request.horizon);
    case core::Task::kTrafficImputation:
      return model->TryImputeTraffic(request.segment, request.start_slice,
                                     request.window, request.masked);
  }
  return util::Status::InvalidArgument("unknown task");
}

util::Result<nn::Tensor> InferenceServer::RunBaseline(
    const Request& request) const {
  switch (request.task) {
    case core::Task::kNextHop:
      return baseline_.NextHopScores(request.trajectory);
    case core::Task::kTravelTimeEstimation:
      return baseline_.TravelTimeDeltas(request.trajectory);
    case core::Task::kTrafficOneStep:
      return baseline_.PredictTraffic(request.segment, request.start_slice,
                                      model_config_.traffic_input_steps, 1);
    case core::Task::kTrafficMultiStep:
      return baseline_.PredictTraffic(request.segment, request.start_slice,
                                      model_config_.traffic_input_steps,
                                      request.horizon);
    default:
      return util::Status::Unavailable("task has no degraded fallback");
  }
}

Response InferenceServer::Process(WorkItem& item,
                                  core::BigCityModel* model) {
  BIGCITY_TRACE_SPAN("serve.process", "serve");
  Response response;
  const Request& request = item.request;

  // Checkpoint 2 (pre-tokenize / post-dequeue): time spent queued counts
  // against the budget.
  if (util::FaultInjection::Fire(util::kFaultServeExpireAtTokenize) ||
      (item.has_deadline && Clock::now() >= item.deadline)) {
    BIGCITY_COUNTER_INC("serve.deadline.pre_tokenize");
    response.status =
        util::Status::DeadlineExceeded("deadline expired before tokenize");
    return response;
  }

  {
    BIGCITY_TIMED_SCOPE_NAMED("serve.validate_us", "serve.validate", "serve");
    util::Status status = ValidateRequest(request);
    if (!status.ok()) {
      BIGCITY_COUNTER_INC("serve.quarantined");
      response.status = std::move(status);
      return response;
    }
  }

  // Checkpoint 3 (pre-forward): last exit before the expensive stage.
  if (util::FaultInjection::Fire(util::kFaultServeExpireAtForward) ||
      (item.has_deadline && Clock::now() >= item.deadline)) {
    BIGCITY_COUNTER_INC("serve.deadline.pre_forward");
    response.status =
        util::Status::DeadlineExceeded("deadline expired before forward");
    return response;
  }

  // Graceful degradation, path 1: circuit breaker.
  CircuitBreaker& breaker = BreakerFor(request.task);
  const CircuitBreaker::Decision decision = breaker.Admit(Clock::now());
  if (decision == CircuitBreaker::Decision::kReject) {
    if (options_.degrade_when_breaker_open && DegradableTask(request.task)) {
      BIGCITY_COUNTER_INC("serve.degraded.breaker");
      util::Result<nn::Tensor> fallback = RunBaseline(request);
      response.status = fallback.status();
      if (fallback.ok()) {
        response.output = std::move(fallback).value();
        response.degraded = true;
      }
      return response;
    }
    BIGCITY_COUNTER_INC("serve.breaker.rejected");
    response.status = util::Status::Unavailable("circuit breaker open");
    response.outcome = Outcome::kRejected;
    return response;
  }
  if (decision == CircuitBreaker::Decision::kProbe) {
    BIGCITY_COUNTER_INC("serve.breaker.probes");
  }

  // Graceful degradation, path 2: remaining budget below p95 forward time.
  // A probe is exempt — its whole point is to exercise the real path.
  if (decision == CircuitBreaker::Decision::kAllow && item.has_deadline &&
      options_.degrade_on_tight_budget && DegradableTask(request.task)) {
    const double p95_us = forward_latency_.P95(options_.latency_min_samples);
    if (p95_us > 0 && RemainingUs(item.deadline, Clock::now()) < p95_us) {
      BIGCITY_COUNTER_INC("serve.degraded.budget");
      util::Result<nn::Tensor> fallback = RunBaseline(request);
      response.status = fallback.status();
      if (fallback.ok()) {
        response.output = std::move(fallback).value();
        response.degraded = true;
      }
      return response;
    }
  }

  // Forward with bounded-backoff retries around transient failures.
  util::Status last_status = util::Status::Ok();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      BIGCITY_COUNTER_INC("serve.retries");
      ++response.retries;
      double backoff_ms = options_.retry_backoff_ms *
                          static_cast<double>(1 << std::min(attempt - 1, 3));
      if (item.has_deadline) {
        const double remaining_ms =
            RemainingUs(item.deadline, Clock::now()) / 1000.0;
        if (remaining_ms <= 0) {
          BIGCITY_COUNTER_INC("serve.deadline.pre_forward");
          response.status = util::Status::DeadlineExceeded(
              "deadline expired during retry backoff");
          if (breaker.RecordFailure(Clock::now())) {
            BIGCITY_COUNTER_INC("serve.breaker.opened");
          }
          return response;
        }
        backoff_ms = std::min(backoff_ms, remaining_ms);
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
    }

    if (util::FaultInjection::Fire(util::kFaultServeTokenizeFail)) {
      last_status =
          util::Status::Unavailable("tokenizer transient fault (injected)");
      continue;
    }
    if (util::FaultInjection::Fire(util::kFaultServeForwardFail)) {
      last_status =
          util::Status::Unavailable("forward transient fault (injected)");
      continue;
    }

    const Clock::time_point forward_start = Clock::now();
    util::Result<nn::Tensor> result = RunModel(request, model);
    last_status = result.status();
    if (result.ok()) {
      const double forward_us = MicrosSince(forward_start, Clock::now());
      forward_latency_.Record(forward_us);
      BIGCITY_HISTOGRAM_RECORD("serve.forward_us", forward_us);
      breaker.RecordSuccess();
      response.status = util::Status::Ok();
      response.output = std::move(result).value();
      return response;
    }
    // Validation errors are deterministic — retrying cannot help, and they
    // must not trip the breaker (the input is at fault, not the model).
    if (last_status.code() == util::StatusCode::kInvalidArgument) {
      BIGCITY_COUNTER_INC("serve.quarantined");
      response.status = std::move(last_status);
      return response;
    }
  }

  BIGCITY_COUNTER_INC("serve.failures");
  if (breaker.RecordFailure(Clock::now())) {
    BIGCITY_COUNTER_INC("serve.breaker.opened");
  }
  response.status = std::move(last_status);
  return response;
}

void InferenceServer::WorkerLoop(int worker_index) {
  core::BigCityModel* model = replicas_[static_cast<size_t>(worker_index)].get();
  for (;;) {
    std::optional<WorkItem> item = queue_.Pop();
    if (!item.has_value()) return;  // Closed and drained.
    BIGCITY_GAUGE_SET("serve.queue_depth", queue_.depth());

    if (util::FaultInjection::Fire(util::kFaultServeWorkerHold)) {
      // Park until the test disarms the site (worker occupancy control;
      // Param doubles as the poll flag so disarming releases immediately).
      while (util::FaultInjection::Param(util::kFaultServeWorkerHold) != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }

    const double wait_us = MicrosSince(item->submitted, Clock::now());
    BIGCITY_HISTOGRAM_RECORD("serve.queue_wait_us", wait_us);

    Response response = Process(*item, model);
    response.queue_wait_us = wait_us;
    if (response.status.ok()) BIGCITY_COUNTER_INC("serve.completed");
    Finish(*item, std::move(response));
  }
}

}  // namespace bigcity::serve
