#ifndef BIGCITY_SERVE_ROLLOUT_H_
#define BIGCITY_SERVE_ROLLOUT_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bigcity::serve {

/// Lifecycle state of the model-version rollout machinery (DESIGN.md
/// §4.12):
///
///   IDLE ──publish──▶ STAGED ──load ok──▶ CANARY ──gate pass──▶ ROLLING
///     ▲                  │                   │                     │
///     │              load fail           gate fail             all swapped
///     │                  ▼                   ▼                     ▼
///     └── QUARANTINED ◀──┘              ROLLED_BACK             STABLE
///
/// QUARANTINED / ROLLED_BACK / STABLE are terminal per candidate; the
/// controller returns to IDLE and keeps polling. Numeric values are
/// stable (exported as the `serve.rollout.state` gauge).
enum class RolloutState {
  kIdle = 0,
  kStaged = 1,
  kCanary = 2,
  kRolling = 3,
  kStable = 4,
  kRolledBack = 5,
  kQuarantined = 6,
};

const char* RolloutStateName(RolloutState state);

/// Knobs of the canary health gate and version poller.
struct RolloutOptions {
  /// Model directory to watch (util/model_dir layout). Empty disables the
  /// whole lifecycle machinery.
  std::string model_dir;

  /// Version-poll cadence of the controller thread.
  double poll_interval_ms = 50;

  /// Requests the canary cohort must serve before the gate decides.
  int canary_min_requests = 8;

  /// Gate fails when canary error rate exceeds stable error rate by more
  /// than this margin (absolute, 0..1).
  double canary_error_margin = 0.05;

  /// Gate fails when the canary produced more than this many non-finite
  /// outputs (default: any NaN/Inf output fails the candidate).
  int canary_max_nonfinite = 0;

  /// Gate fails when canary p95 forward latency exceeds stable p95 by
  /// this factor (only once both cohorts have latency samples).
  double canary_latency_inflation = 3.0;

  /// Slow start: the canary cohort discards its first this-many latency
  /// samples before the latency criterion judges (a freshly staged
  /// replica's cold tokenizer/GAT caches make its earliest forwards look
  /// pathological under a diverse load mix). Requests/failures/non-finite
  /// counts are never discarded. Keep below canary_min_requests or the
  /// latency criterion may be skipped for lack of samples.
  int canary_slow_start_samples = 0;

  /// Wall-clock cap on the canary phase; a canary that cannot accumulate
  /// canary_min_requests in time is rolled back (starvation is treated as
  /// failure — never promote without evidence).
  double canary_timeout_ms = 10000;

  /// SLO burn-rate gate (DESIGN.md §4.15): the gate fails when the live
  /// max slo.*.burn_rate across tasks exceeds this during the canary
  /// window. 0 disables the criterion (error-budget math only means
  /// something once SLO objectives are configured for the deployment).
  double canary_max_burn_rate = 0;
};

/// Thread-safe per-cohort (stable vs canary) health accumulator: request
/// and failure counts, non-finite output count, and a sliding window of
/// forward latencies for percentile comparison.
class CohortStats {
 public:
  struct Snapshot {
    uint64_t requests = 0;
    uint64_t failures = 0;
    uint64_t nonfinite = 0;
    double p95_us = 0;       // 0 until at least one latency sample.
    uint64_t latency_samples = 0;

    double ErrorRate() const {
      return requests > 0
                 ? static_cast<double>(failures) / static_cast<double>(requests)
                 : 0.0;
    }
  };

  void RecordSuccess(double forward_us);
  void RecordFailure();
  void RecordNonFinite();
  Snapshot Get() const;
  /// Zeroes all counts; the next `discard_latency_samples` successful
  /// forwards contribute to `requests` but not to the latency window
  /// (canary slow start).
  void Reset(int discard_latency_samples = 0);

 private:
  static constexpr size_t kWindow = 128;
  mutable std::mutex mu_;
  uint64_t requests_ = 0;
  uint64_t failures_ = 0;
  uint64_t nonfinite_ = 0;
  int discard_latency_ = 0;
  std::vector<double> latencies_;  // Ring once kWindow is reached.
  size_t next_ = 0;
  uint64_t latency_count_ = 0;
};

enum class GateVerdict {
  kNotReady = 0,  // Canary has not served canary_min_requests yet.
  kPass,
  kFail,
};

/// Pure decision function of the canary health gate: compares the canary
/// cohort against the stable cohort over the current window. On kFail,
/// `reason` names the tripped criterion (quarantine bookkeeping).
/// `slo_burn_rate` is the serving fleet's current max SLO burn rate
/// (SloTracker::MaxBurnRate); judged against canary_max_burn_rate when
/// that knob is set, ignored otherwise.
GateVerdict EvaluateCanary(const CohortStats::Snapshot& stable,
                           const CohortStats::Snapshot& canary,
                           const RolloutOptions& options,
                           std::string* reason,
                           double slo_burn_rate = 0.0);

}  // namespace bigcity::serve

#endif  // BIGCITY_SERVE_ROLLOUT_H_
