#ifndef BIGCITY_SERVE_CIRCUIT_BREAKER_H_
#define BIGCITY_SERVE_CIRCUIT_BREAKER_H_

#include <chrono>
#include <mutex>

namespace bigcity::serve {

/// Per-task circuit breaker. Closed until `failure_threshold` consecutive
/// request failures, then open for `cooldown_ms`; after the cooldown one
/// probe request is let through (half-open). A successful probe closes the
/// breaker, a failed probe re-opens it and restarts the cooldown. While
/// open, the server answers eligible tasks from the baseline predictor
/// (degraded) and rejects the rest with kUnavailable — the expensive
/// forward path is never entered, so a persistently failing task cannot
/// drag down the worker pool.
class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen, kHalfOpen };
  enum class Decision { kAllow = 0, kProbe, kReject };

  CircuitBreaker(int failure_threshold, double cooldown_ms)
      : failure_threshold_(failure_threshold), cooldown_ms_(cooldown_ms) {}

  /// Admission decision for a new request. kProbe claims the single
  /// half-open probe slot; concurrent requests during the probe reject.
  Decision Admit(std::chrono::steady_clock::time_point now);

  /// Call exactly once per request that reached the forward stage.
  void RecordSuccess();
  /// Returns true when this failure transitioned the breaker to open
  /// (callers count open events without re-reading state racily).
  bool RecordFailure(std::chrono::steady_clock::time_point now);

  State state() const;
  int consecutive_failures() const;

 private:
  const int failure_threshold_;
  const double cooldown_ms_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  std::chrono::steady_clock::time_point opened_at_{};
};

}  // namespace bigcity::serve

#endif  // BIGCITY_SERVE_CIRCUIT_BREAKER_H_
