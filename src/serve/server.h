#ifndef BIGCITY_SERVE_SERVER_H_
#define BIGCITY_SERVE_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/bigcity_model.h"
#include "nn/plan.h"
#include "core/config.h"
#include "core/st_tokenizer.h"
#include "core/task.h"
#include "data/dataset.h"
#include "serve/admission_queue.h"
#include "serve/baseline.h"
#include "serve/batcher.h"
#include "serve/circuit_breaker.h"
#include "obs/slo.h"
#include "serve/model_registry.h"
#include "serve/overload.h"
#include "serve/request.h"
#include "serve/rollout.h"
#include "util/status.h"

namespace bigcity::obs {
class Counter;
class Gauge;
}  // namespace bigcity::obs

namespace bigcity::serve {

/// Knobs of the inference serving runtime. Defaults favor determinism and
/// small-footprint tests; bench/bench_serve.cc and `bigcity_cli serve`
/// override them from the command line.
struct ServeOptions {
  /// Worker threads; each owns a private model replica so forwards never
  /// share mutable tokenizer caches.
  int num_workers = 2;

  /// Admission queue bound; a full queue sheds with kResourceExhausted.
  int queue_capacity = 16;

  /// Deadline applied to requests that do not carry their own
  /// (Request::deadline_ms <= 0). <= 0 disables the server default too.
  double default_deadline_ms = 0;

  /// Transient-failure retries per request (attempts = max_retries + 1).
  int max_retries = 2;

  /// First retry backoff; doubles per attempt, capped at 8x. Sleeps never
  /// exceed the remaining deadline budget.
  double retry_backoff_ms = 1.0;

  /// Consecutive forward failures that open a task's circuit breaker.
  int breaker_failure_threshold = 5;

  /// Open-state cooldown before the breaker admits a half-open probe.
  double breaker_cooldown_ms = 1000.0;

  /// Answer breaker-rejected requests from the baseline predictor when the
  /// task is degradable (otherwise they fail with kUnavailable).
  bool degrade_when_breaker_open = true;

  /// Degrade when the remaining deadline budget is below the observed p95
  /// forward time (only once `latency_min_samples` forwards were seen).
  bool degrade_on_tight_budget = true;
  int latency_min_samples = 16;

  /// Seeds the forward-latency estimator so budget degradation is testable
  /// before any real samples exist. <= 0 leaves the estimator empty.
  double initial_forward_estimate_us = 0;

  /// Optional checkpoint loaded into every replica at Start(), with
  /// bounded retries around transient read failures.
  std::string checkpoint_path;

  /// Attach LoRA adapters to each replica's backbone before weight copy /
  /// checkpoint load (must match how the source weights were produced).
  bool attach_lora = false;

  /// Continuous batching (DESIGN.md §4.14): a batcher stage between the
  /// admission queue and the workers coalesces queued same-task requests
  /// into one batched forward. Outputs are bit-identical to per-request
  /// execution; dispatch is deadline-aware, so a nearly-expired request
  /// never waits for batch fill. Disabling restores the direct
  /// queue-to-worker path.
  bool batching = true;

  /// Maximum requests per batched forward.
  int batch_max = 8;

  /// How long a request may wait for co-batchable peers before its group
  /// dispatches anyway.
  double batch_window_us = 200.0;

  /// Cross-worker ST-tokenizer representation cache: fused per-segment
  /// spatial representations keyed by (model version, time slice) and
  /// shared by every replica, so one worker's GAT pass warms the whole
  /// fleet. Version keying makes hot-swap invalidation free. This is the
  /// entry capacity; 0 disables sharing (each replica then keeps only its
  /// private per-slice cache).
  int tokenizer_cache_slices = 64;

  /// KV decode sessions for autoregressive next-hop serving: a client
  /// extending a trajectory hop by hop reuses the frozen backbone's
  /// cached attention state for the shared prompt prefix. The store is
  /// shared across workers (checkout/checkin, so a walk keeps hitting no
  /// matter which worker serves each step) with total capacity
  /// kv_sessions * num_workers. 0 disables KV caching.
  int kv_sessions = 8;

  /// Per-worker inference execution plans (DESIGN.md §4.13): each worker
  /// caches a no-autograd ExecutionPlan per (task, size-bucket) and
  /// replays the hot-path forward into its recycled TensorArena. Outputs
  /// are bit-identical either way; disabling falls back to plain heap
  /// allocation.
  bool plans = true;

  /// Model lifecycle (hot-swap / canary rollout) knobs. Setting
  /// rollout.model_dir enables the version poller and controller thread;
  /// when the directory already holds a valid CURRENT version at Start(),
  /// the replicas boot from it.
  RolloutOptions rollout;

  /// Worker watchdog (DESIGN.md §4.16): each worker publishes a heartbeat
  /// every loop iteration; a supervisor thread reaps a worker whose beat
  /// stalls mid-request past this threshold — resolving its in-flight
  /// requests with kDeadlineExceeded without touching the wedged thread,
  /// then replacing the worker from the stable version's weights. <= 0
  /// disables supervision.
  double hang_threshold_ms = 5000.0;

  /// Supervisor tick: heartbeat scan + overload sample cadence.
  double watchdog_poll_ms = 10.0;

  /// Memory-aware overload control (DESIGN.md §4.16): process tensor-memory
  /// budget in bytes. Above overload_low_watermark the server halves
  /// batch_max / KV capacity / queue bound; above overload_high_watermark
  /// it additionally sheds new admissions with kResourceExhausted, and
  /// recovery is hysteretic (shedding ends only below the low watermark).
  /// 0 disables memory-based control.
  int64_t mem_budget_bytes = 0;
  double overload_high_watermark = 0.90;
  double overload_low_watermark = 0.75;

  /// CoDel-style queue-residency bound: once dequeued requests have spent
  /// more than sojourn_target_ms queued continuously for one
  /// sojourn_interval_ms, workers start dropping the stalest entries at
  /// dequeue with kDeadlineExceeded. <= 0 disables the bound.
  double sojourn_target_ms = 0;
  double sojourn_interval_ms = 100.0;

  /// Per-task SLO objectives (DESIGN.md §4.15): every task is registered
  /// with the server's SloTracker at Start() using these values, and each
  /// finished request feeds its task's sliding window (success = OK
  /// status, latency = total_us). The tracker exports slo.<task>.*
  /// gauges; rollout.canary_max_burn_rate gates canaries on them.
  double slo_success_objective = 0.99;
  double slo_p99_ms = 250.0;
  int slo_window = 512;
};

/// Multi-threaded inference server over core::BigCityModel (DESIGN.md
/// §4.11, lifecycle §4.12). The request path is
///
///   Submit -> [deadline] -> bounded queue -> worker: [deadline] ->
///   validate -> [deadline] -> breaker/budget -> forward (retries) -> head
///
/// with explicit, typed failure at every stage: kResourceExhausted when
/// the queue is full, kDeadlineExceeded at the three cancellation
/// checkpoints, kInvalidArgument for malformed inputs (quarantined before
/// they can reach a CHECK in the model), kUnavailable when retries are
/// exhausted or a breaker rejects, kInternal when the model emits a
/// non-finite output. Degradable tasks fall back to BaselinePredictor
/// instead of failing when the breaker is open or the remaining budget
/// cannot fit a p95 forward.
///
/// Model lifecycle: when options.rollout.model_dir is set, a controller
/// thread polls the versioned model directory. A validated new version is
/// STAGED (loaded off the request path), swapped onto worker 0 as a CANARY,
/// and health-gated against the stable cohort (error rate, non-finite
/// outputs, p95 forward latency). A passing canary is ROLLED across the
/// remaining workers between requests; a failing one is rolled back to the
/// pinned stable replica and the version quarantined. Workers pick up
/// their replica at the top of each request — a swap never happens
/// mid-forward, and displaced replicas are retired by shared_ptr refcount
/// once their last in-flight request completes.
///
/// Thread safety: Submit/ServeSync may be called from any thread. Workers
/// never share mutable model state (one replica each); the dataset is
/// read-only.
class InferenceServer {
 public:
  /// `dataset` must outlive the server. When `prototype` is non-null its
  /// weights are copied into every replica (it must have been built with a
  /// matching config, including LoRA attachment per options.attach_lora).
  InferenceServer(const data::CityDataset* dataset,
                  core::BigCityConfig model_config, ServeOptions options,
                  const core::BigCityModel* prototype = nullptr);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Builds the worker replicas (checkpoint reload with bounded retries
  /// when options.checkpoint_path is set; model-dir CURRENT version when
  /// the rollout machinery is enabled and one is published) and launches
  /// the worker threads plus, if enabled, the rollout controller.
  util::Status Start();

  /// Drain-then-stop: stops the rollout controller (rolling back an
  /// undecided canary), closes admissions, serves what is already queued,
  /// joins the workers. Idempotent; also run by the destructor.
  void Stop();

  /// Non-blocking admission. The future always becomes ready — shed,
  /// expired, and failed requests resolve it with the matching error
  /// status rather than abandoning it.
  std::future<Response> Submit(Request request);

  /// Convenience: Submit + wait.
  Response ServeSync(Request request);

  // --- Introspection (tests, bench, CLI) ---------------------------------

  size_t queue_depth() const { return queue_.depth(); }
  const ServeOptions& options() const { return options_; }
  bool running() const { return running_; }

  /// Breaker state for one task (kClosed for tasks never seen).
  CircuitBreaker::State breaker_state(core::Task task) const;

  /// Current forward-time estimate consulted by budget degradation, in
  /// microseconds; 0 while below latency_min_samples.
  double forward_p95_us() const;

  /// Shared tokenizer representation cache (null when disabled); exposes
  /// hit/miss counts to tests and the bench harness.
  const core::SpatialRepCache* tokenizer_cache() const {
    return shared_reps_.get();
  }

  /// Lifecycle introspection. rollout_state() is sticky: it holds the
  /// terminal state of the last candidate (STABLE / ROLLED_BACK /
  /// QUARANTINED) between rollouts and the live state during one.
  RolloutState rollout_state() const {
    return static_cast<RolloutState>(
        rollout_state_.load(std::memory_order_relaxed));
  }
  /// Version the stable cohort serves (0 = initial in-memory weights).
  uint64_t stable_version() const {
    return stable_version_.load(std::memory_order_relaxed);
  }
  /// Completed hot-swaps since Start(); tags the serve.rollout.* metrics.
  uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }
  /// Null unless options.rollout.model_dir was set.
  ModelRegistry* registry() { return registry_.get(); }

  /// Polls rollout_state() until it equals `state` or `timeout_ms`
  /// elapses. Returns whether the state was reached.
  bool WaitForRolloutState(RolloutState state, double timeout_ms) const;
  /// Same for stable_version() == `version`.
  bool WaitForStableVersion(uint64_t version, double timeout_ms) const;

  /// Watchdog introspection (plain code, valid in every build flavor):
  /// hung-worker incidents detected, requests reaped off hung workers,
  /// replacement workers started.
  uint64_t watchdog_hangs() const {
    return watchdog_hangs_.load(std::memory_order_relaxed);
  }
  uint64_t watchdog_reaps() const {
    return watchdog_reaps_.load(std::memory_order_relaxed);
  }
  uint64_t watchdog_replacements() const {
    return watchdog_replacements_.load(std::memory_order_relaxed);
  }
  /// Admissions shed by the overload controller (kShedding state) and
  /// stale requests dropped at dequeue by the CoDel sojourn bound.
  uint64_t overload_sheds() const {
    return overload_sheds_.load(std::memory_order_relaxed);
  }
  uint64_t stale_drops() const {
    return stale_drops_.load(std::memory_order_relaxed);
  }
  /// Memory-aware overload controller; null before Start().
  const OverloadController* overload() const { return overload_.get(); }

  /// Live per-task SLO windows (success rate, burn rate, p50/p99);
  /// task handles equal core::Task indices after Start().
  const obs::SloTracker& slo_tracker() const { return slo_; }
  /// Pushes every task's current SLO window into the slo.* gauges (the
  /// tracker also self-publishes periodically; telemetry exporters call
  /// this as their prelude so short windows are never stale).
  void PublishSlo() { slo_.Publish(); }

 private:
  /// Shared resolution point for one request's promise. Either the owning
  /// worker (via Finish) or the watchdog (via reap) resolves it — never
  /// both: the winner of done.exchange(true) sets the value, the loser's
  /// result becomes a no-op. This is what lets the supervisor hand the
  /// caller a definite kDeadlineExceeded while the wedged worker still
  /// holds the WorkItem.
  struct Completion {
    std::promise<Response> promise;
    std::atomic<bool> done{false};
  };

  struct WorkItem {
    Request request;
    std::shared_ptr<Completion> completion;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    double queue_wait_us = 0;  // Set at dequeue; echoed in the response.
    int batch_size = 1;        // Requests sharing this item's forward.
    /// Process-unique id allocated at Submit; stamps this request's spans
    /// and binds its chrome://tracing flow events (DESIGN.md §4.15).
    uint64_t trace_id = 0;
    /// Batcher pending time, stamped by the batch-dispatch callback
    /// (stays 0 on the direct queue-to-worker path).
    double batch_wait_us = 0;
    /// Per-stage latency attribution accumulated along the request path.
    StageBreakdown stages;
  };

  /// One KV decode session: the exact trajectory it served, the model
  /// version that computed the state, and the cached attention
  /// keys/values. Reuse is gated on full point-for-point prefix
  /// comparison — bit-identity is never entrusted to a probabilistic
  /// match.
  struct KvSession {
    uint64_t version = 0;
    data::Trajectory served;
    nn::KvCache cache;
    uint64_t tick = 0;
  };
  /// LRU of KV sessions, shared by every worker so an autoregressive walk
  /// keeps hitting no matter which worker serves each step. The mutex
  /// only guards the checkout/checkin list operations: a checked-out
  /// session is exclusively owned by one worker, which mutates its cache
  /// lock-free during the forward and checks it back in afterwards.
  struct KvSessionStore {
    /// Atomic because the hot path peeks at it lock-free (use_kv gate)
    /// while ApplyOverloadState shrinks it under memory pressure.
    std::atomic<size_t> capacity{0};
    std::mutex mu;
    uint64_t tick = 0;
    std::list<KvSession> sessions;
  };

  /// One immutable-weights model instance plus its lifecycle tag. Held by
  /// shared_ptr: the worker's per-request copy keeps a displaced replica
  /// alive exactly until its last in-flight forward returns.
  struct Replica {
    uint64_t version = 0;
    /// Which health cohort this replica's requests feed. Atomic because
    /// promotion (canary -> stable) retags the pointer while the worker
    /// is serving.
    std::atomic<CohortStats*> cohort{nullptr};
    std::unique_ptr<core::BigCityModel> model;
  };

  /// Per-worker slot; the mutex only guards the shared_ptr swap/copy, so
  /// a swap waits at most for a pointer copy, never for a forward.
  struct WorkerSlot {
    std::mutex mu;
    std::shared_ptr<Replica> replica;
  };

  /// What the watchdog needs to resolve one in-flight request without
  /// touching the WorkItem the wedged worker still owns.
  struct InflightRecord {
    std::shared_ptr<Completion> completion;
    uint64_t id = 0;
    uint64_t trace_id = 0;
    core::Task task = core::Task::kNextHop;
    std::chrono::steady_clock::time_point submitted;
    double queue_wait_us = 0;
    uint64_t model_version = 0;
  };

  /// Per-worker heartbeat slot (DESIGN.md §4.16). The worker bumps `epoch`
  /// at every loop iteration and flags `busy` around request processing;
  /// the supervisor polls the epochs and declares a hang when a busy
  /// worker's epoch has not moved for hang_threshold_ms. `generation`
  /// counts worker incarnations in this slot: the supervisor bumps it when
  /// replacing a wedged worker, and the superseded thread sees the
  /// mismatch and exits instead of double-serving. `inflight` mirrors the
  /// requests the current incarnation is processing so a reap can resolve
  /// them from outside the wedged thread.
  struct alignas(64) Heartbeat {
    std::atomic<uint64_t> epoch{0};
    std::atomic<bool> busy{false};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> generation{0};
    std::mutex inflight_mu;
    std::vector<InflightRecord> inflight;
  };

  /// Sliding window of forward times; p95 over the last `kWindow` samples.
  class LatencyEstimator {
   public:
    void Record(double us);
    void Seed(double us, int copies);
    double P95(int min_samples) const;

   private:
    static constexpr size_t kWindow = 128;
    mutable std::mutex mu_;
    std::vector<double> samples_;  // Ring once kWindow is reached.
    size_t next_ = 0;
    size_t count_ = 0;
  };

  void WorkerLoop(int worker_index, uint64_t generation);
  void Finish(WorkItem& item, Response response);
  /// Watchdog-side completion of one reaped request: claims the shared
  /// Completion and resolves it with kDeadlineExceeded / Outcome::kReaped,
  /// feeding the same outcome counters and SLO window as Finish.
  void FinishReaped(const InflightRecord& record);
  /// Registers / clears the worker's current requests in its heartbeat
  /// slot so the supervisor can reap them without the worker's help.
  void RegisterInflight(Heartbeat& hb, const std::vector<WorkItem*>& items,
                        uint64_t model_version);
  void ClearInflight(Heartbeat& hb);
  /// Supervisor thread body: heartbeat hang scan + overload sampling at
  /// watchdog_poll_ms cadence.
  void SupervisorLoop();
  /// Reaps a hung worker: resolves its in-flight requests, supersedes the
  /// wedged incarnation (generation bump), parks its thread, and starts a
  /// replacement worker on a fresh stable-version replica.
  void ReapWorker(size_t worker);
  /// Replacement replica built from the stable version's weights: a
  /// healthy sibling slot (not `exclude_worker`, whose replica is being
  /// quarantined) serving the same version is preferred (pure in-memory
  /// copy); otherwise the prototype / checkpoint (version 0) or the
  /// registry's versioned weights file. Null when no source is loadable.
  std::shared_ptr<Replica> MakeReplicaFromStable(size_t exclude_worker);
  /// Applies the overload controller's current state to the live knobs
  /// (queue bound, KV capacity); the batcher reads its shrunken batch_max
  /// through its own callback.
  void ApplyOverloadState();
  Response Process(WorkItem& item, Replica& replica, nn::PlanCache* plans,
                   KvSessionStore* kv);
  /// Batched request path (size >= 2, one task): per-item checkpoints,
  /// validation, and budget degradation, then one shared batched forward.
  /// Finishes every item; falls back to per-item Process on batch failure.
  void ProcessBatch(std::vector<WorkItem>& items, Replica& replica,
                    nn::PlanCache* plans, KvSessionStore* kv);
  util::Status ValidateRequest(const Request& request) const;
  util::Result<nn::Tensor> RunModel(const Request& request,
                                    core::BigCityModel* model);
  /// Batched forward dispatch. For next-hop with KV enabled this is also
  /// the batched prefill: every member gets a fresh KV session filled
  /// with the attention state of the shared forward, so later extension
  /// requests decode incrementally.
  util::Result<std::vector<nn::Tensor>> RunModelBatch(
      core::Task task, const std::vector<WorkItem*>& items, Replica& replica,
      KvSessionStore* kv);
  /// Next-hop forward through the worker's KV session store: a session
  /// whose served trajectory is a prefix of the request's resumes its
  /// cached attention state and decodes only the new suffix + [CLAS].
  util::Result<nn::Tensor> RunNextHopCached(const Request& request,
                                            Replica& replica,
                                            KvSessionStore* kv);
  /// Longest-prefix session checkout: among stored sessions of `version`
  /// whose served trajectory is a point-for-point prefix of `trajectory`,
  /// removes and returns the one covering the most points (nullopt when
  /// none qualifies). The caller owns the session — and mutates its cache
  /// without locking — until CheckinKvSession.
  static std::optional<KvSession> CheckoutKvSession(
      KvSessionStore* kv, uint64_t version,
      const data::Trajectory& trajectory);
  /// Non-consuming form of the CheckoutKvSession predicate.
  static bool HasKvSession(KvSessionStore* kv, uint64_t version,
                           const data::Trajectory& trajectory);
  /// Returns a session to the store, evicting the least-recently-used
  /// stored session at capacity and stamping the LRU tick.
  static void CheckinKvSession(KvSessionStore* kv, KvSession session);
  util::Result<nn::Tensor> RunBaseline(const Request& request) const;
  CircuitBreaker& BreakerFor(core::Task task);
  void PublishBreakerState(core::Task task);
  util::Status LoadReplicaWeights(core::BigCityModel* replica,
                                  const std::string& path) const;

  std::shared_ptr<Replica> MakeReplica(uint64_t version,
                                       CohortStats* cohort) const;
  std::shared_ptr<Replica> AcquireReplica(size_t worker);
  /// Installs `next` on `worker`'s slot; returns the displaced replica.
  std::shared_ptr<Replica> SwapWorker(size_t worker,
                                      std::shared_ptr<Replica> next);
  void RolloutLoop();
  /// Sleeps up to `ms` on the controller condvar; true when stopping.
  bool RolloutWait(double ms);
  void RunRollout(const VersionInfo& info);
  void SetRolloutState(RolloutState state);

  const data::CityDataset* dataset_;
  const core::BigCityConfig model_config_;
  const ServeOptions options_;
  const core::BigCityModel* prototype_;

  BaselinePredictor baseline_;
  AdmissionQueue<WorkItem> queue_;
  std::unique_ptr<Batcher<WorkItem>> batcher_;  // Null when batching off.
  std::unique_ptr<core::SpatialRepCache> shared_reps_;  // Null when off.
  KvSessionStore kv_sessions_;  // Capacity 0 when KV caching is off.
  LatencyEstimator forward_latency_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  /// Worker threads by slot, guarded by workers_mu_ because the supervisor
  /// replaces entries while Stop may be joining. A replaced (wedged)
  /// thread moves to parked_ and is joined at Stop — stalls are finite and
  /// disarm-released, so the joins terminate.
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
  std::vector<std::thread> parked_;
  std::vector<std::unique_ptr<Heartbeat>> heartbeats_;

  // Watchdog + overload machinery (DESIGN.md §4.16).
  std::unique_ptr<OverloadController> overload_;
  std::thread supervisor_thread_;
  std::mutex supervisor_mu_;
  std::condition_variable supervisor_cv_;
  bool supervisor_stop_ = false;
  // Plain-code introspection for tests in the probes-compiled-out flavor.
  std::atomic<uint64_t> watchdog_hangs_{0};
  std::atomic<uint64_t> watchdog_reaps_{0};
  std::atomic<uint64_t> watchdog_replacements_{0};
  std::atomic<uint64_t> overload_sheds_{0};
  std::atomic<uint64_t> stale_drops_{0};
  // One breaker per task, indexed by core::Task. Constructed in Start()
  // (breaker knobs come from options_), read-only pointers afterwards.
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  // Per-task serve.breaker.state.<name> gauge handles; null when the obs
  // build flavor compiles probes out.
  std::array<obs::Gauge*, core::kNumTasks> breaker_gauges_{};
  // serve.outcome.<TaskName>.<outcome> counter handles, resolved once in
  // Start() (names are dynamic, so the macro fast path cannot cache
  // them); null in the probes-compiled-out flavor.
  std::array<std::array<obs::Counter*, kNumOutcomes>, core::kNumTasks>
      outcome_counters_{};
  // Per-task SLO sliding windows; task handles equal core::Task indices.
  obs::SloTracker slo_;

  // Lifecycle machinery (all unused when rollout.model_dir is empty).
  std::unique_ptr<ModelRegistry> registry_;
  CohortStats stable_stats_;
  CohortStats canary_stats_;
  std::thread rollout_thread_;
  std::mutex rollout_mu_;
  std::condition_variable rollout_cv_;
  bool rollout_stop_ = false;
  std::atomic<int> rollout_state_{static_cast<int>(RolloutState::kIdle)};
  std::atomic<uint64_t> stable_version_{0};
  std::atomic<uint64_t> generation_{0};

  bool running_ = false;
};

}  // namespace bigcity::serve

#endif  // BIGCITY_SERVE_SERVER_H_
