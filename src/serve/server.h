#ifndef BIGCITY_SERVE_SERVER_H_
#define BIGCITY_SERVE_SERVER_H_

#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/bigcity_model.h"
#include "core/config.h"
#include "core/task.h"
#include "data/dataset.h"
#include "serve/admission_queue.h"
#include "serve/baseline.h"
#include "serve/circuit_breaker.h"
#include "serve/request.h"
#include "util/status.h"

namespace bigcity::serve {

/// Knobs of the inference serving runtime. Defaults favor determinism and
/// small-footprint tests; bench/bench_serve.cc and `bigcity_cli serve`
/// override them from the command line.
struct ServeOptions {
  /// Worker threads; each owns a private model replica so forwards never
  /// share mutable tokenizer caches.
  int num_workers = 2;

  /// Admission queue bound; a full queue sheds with kResourceExhausted.
  int queue_capacity = 16;

  /// Deadline applied to requests that do not carry their own
  /// (Request::deadline_ms <= 0). <= 0 disables the server default too.
  double default_deadline_ms = 0;

  /// Transient-failure retries per request (attempts = max_retries + 1).
  int max_retries = 2;

  /// First retry backoff; doubles per attempt, capped at 8x. Sleeps never
  /// exceed the remaining deadline budget.
  double retry_backoff_ms = 1.0;

  /// Consecutive forward failures that open a task's circuit breaker.
  int breaker_failure_threshold = 5;

  /// Open-state cooldown before the breaker admits a half-open probe.
  double breaker_cooldown_ms = 1000.0;

  /// Answer breaker-rejected requests from the baseline predictor when the
  /// task is degradable (otherwise they fail with kUnavailable).
  bool degrade_when_breaker_open = true;

  /// Degrade when the remaining deadline budget is below the observed p95
  /// forward time (only once `latency_min_samples` forwards were seen).
  bool degrade_on_tight_budget = true;
  int latency_min_samples = 16;

  /// Seeds the forward-latency estimator so budget degradation is testable
  /// before any real samples exist. <= 0 leaves the estimator empty.
  double initial_forward_estimate_us = 0;

  /// Optional checkpoint loaded into every replica at Start(), with
  /// bounded retries around transient read failures.
  std::string checkpoint_path;

  /// Attach LoRA adapters to each replica's backbone before weight copy /
  /// checkpoint load (must match how the source weights were produced).
  bool attach_lora = false;
};

/// Multi-threaded inference server over core::BigCityModel (DESIGN.md
/// §4.11). The request path is
///
///   Submit -> [deadline] -> bounded queue -> worker: [deadline] ->
///   validate -> [deadline] -> breaker/budget -> forward (retries) -> head
///
/// with explicit, typed failure at every stage: kResourceExhausted when
/// the queue is full, kDeadlineExceeded at the three cancellation
/// checkpoints, kInvalidArgument for malformed inputs (quarantined before
/// they can reach a CHECK in the model), kUnavailable when retries are
/// exhausted or a breaker rejects. Degradable tasks fall back to
/// BaselinePredictor instead of failing when the breaker is open or the
/// remaining budget cannot fit a p95 forward.
///
/// Thread safety: Submit/ServeSync may be called from any thread. Workers
/// never share mutable model state (one replica each); the dataset is
/// read-only.
class InferenceServer {
 public:
  /// `dataset` must outlive the server. When `prototype` is non-null its
  /// weights are copied into every replica (it must have been built with a
  /// matching config, including LoRA attachment per options.attach_lora).
  InferenceServer(const data::CityDataset* dataset,
                  core::BigCityConfig model_config, ServeOptions options,
                  const core::BigCityModel* prototype = nullptr);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Builds the worker replicas (checkpoint reload with bounded retries
  /// when options.checkpoint_path is set) and launches the worker threads.
  util::Status Start();

  /// Drain-then-stop: closes admissions, serves what is already queued,
  /// joins the workers. Idempotent; also run by the destructor.
  void Stop();

  /// Non-blocking admission. The future always becomes ready — shed,
  /// expired, and failed requests resolve it with the matching error
  /// status rather than abandoning it.
  std::future<Response> Submit(Request request);

  /// Convenience: Submit + wait.
  Response ServeSync(Request request);

  // --- Introspection (tests, bench, CLI) ---------------------------------

  size_t queue_depth() const { return queue_.depth(); }
  const ServeOptions& options() const { return options_; }
  bool running() const { return running_; }

  /// Breaker state for one task (kClosed for tasks never seen).
  CircuitBreaker::State breaker_state(core::Task task) const;

  /// Current forward-time estimate consulted by budget degradation, in
  /// microseconds; 0 while below latency_min_samples.
  double forward_p95_us() const;

 private:
  struct WorkItem {
    Request request;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
  };

  /// Sliding window of forward times; p95 over the last `kWindow` samples.
  class LatencyEstimator {
   public:
    void Record(double us);
    void Seed(double us, int copies);
    double P95(int min_samples) const;

   private:
    static constexpr size_t kWindow = 128;
    mutable std::mutex mu_;
    std::vector<double> samples_;  // Ring once kWindow is reached.
    size_t next_ = 0;
    size_t count_ = 0;
  };

  void WorkerLoop(int worker_index);
  void Finish(WorkItem& item, Response response);
  Response Process(WorkItem& item, core::BigCityModel* model);
  util::Status ValidateRequest(const Request& request) const;
  util::Result<nn::Tensor> RunModel(const Request& request,
                                    core::BigCityModel* model);
  util::Result<nn::Tensor> RunBaseline(const Request& request) const;
  CircuitBreaker& BreakerFor(core::Task task);
  util::Status LoadReplicaWeights(core::BigCityModel* replica) const;

  const data::CityDataset* dataset_;
  const core::BigCityConfig model_config_;
  const ServeOptions options_;
  const core::BigCityModel* prototype_;

  BaselinePredictor baseline_;
  AdmissionQueue<WorkItem> queue_;
  LatencyEstimator forward_latency_;
  std::vector<std::unique_ptr<core::BigCityModel>> replicas_;
  std::vector<std::thread> workers_;
  // One breaker per task, indexed by core::Task. Constructed in Start()
  // (breaker knobs come from options_), read-only pointers afterwards.
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  bool running_ = false;
};

}  // namespace bigcity::serve

#endif  // BIGCITY_SERVE_SERVER_H_
