#ifndef BIGCITY_SERVE_BASELINE_H_
#define BIGCITY_SERVE_BASELINE_H_

#include "core/task.h"
#include "data/dataset.h"
#include "nn/tensor.h"

namespace bigcity::serve {

/// Cheap, model-free fallback predictors for graceful degradation. When
/// the circuit breaker is open or the remaining deadline budget is below
/// the observed p95 forward time, eligible tasks answer from these instead
/// of the transformer: orders of magnitude cheaper, same output shapes as
/// the model heads, clearly marked `degraded` in the response. All methods
/// are const and thread-safe (read-only over the bound dataset).
class BaselinePredictor {
 public:
  explicit BaselinePredictor(const data::CityDataset* dataset);

  /// Next-hop fallback: popularity-weighted scores over the successors of
  /// the trajectory's last segment, zero elsewhere. Shape [1, I], matching
  /// GeneralTaskHeads::SegmentLogits.
  nn::Tensor NextHopScores(const data::Trajectory& prefix) const;

  /// TTE fallback: free-flow traversal minutes of the segment entered at
  /// each position 1..L-1. Shape [L-1, 1] in the MinutesTarget unit the
  /// time-regression head predicts.
  nn::Tensor TravelTimeDeltas(const data::Trajectory& trajectory) const;

  /// Traffic-prediction fallback: per-channel mean of the observed input
  /// window, tiled over the horizon (a persistence forecast). Shape
  /// [horizon, kTrafficChannels]. Reads only [start_slice,
  /// start_slice + input_steps) — never the future it predicts.
  nn::Tensor PredictTraffic(int segment, int start_slice, int input_steps,
                            int horizon) const;

 private:
  const data::CityDataset* dataset_;
};

/// True for tasks the degradation path can answer (traffic prediction,
/// next-hop, travel time).
bool DegradableTask(core::Task task);

}  // namespace bigcity::serve

#endif  // BIGCITY_SERVE_BASELINE_H_
