#include "serve/overload.h"

#include <algorithm>
#include <cmath>

#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/fault_injection.h"

namespace bigcity::serve {

OverloadController::OverloadController(Options options)
    : options_(options) {
  BIGCITY_GAUGE_SET("serve.overload.budget_bytes",
                    static_cast<double>(options_.mem_budget_bytes));
  BIGCITY_GAUGE_SET("serve.overload.state", 0);
}

int64_t OverloadController::CurrentMemoryBytes() {
  // Tensor payloads (models, in-flight activations) + recycled plan
  // arenas + injected leak-site bytes. The first two read 0 in the
  // probes-compiled-out flavor; the leak tally is plain code, so pressure
  // scenarios stay testable under BIGCITY_OBS=OFF.
  const int64_t tensors = obs::MemoryTracker::Global().live_bytes();
  const int64_t arenas = static_cast<int64_t>(
      obs::MetricsRegistry::Global().GetGauge("plan.arena.bytes")->Value());
  return tensors + arenas + util::FaultInjection::LeakedBytes();
}

OverloadController::State OverloadController::SampleBytes(int64_t bytes) {
  sampled_bytes_.store(bytes, std::memory_order_relaxed);
  int64_t peak = peak_sampled_bytes_.load(std::memory_order_relaxed);
  while (bytes > peak && !peak_sampled_bytes_.compare_exchange_weak(
                             peak, bytes, std::memory_order_relaxed)) {
  }
  State next = state();
  if (options_.mem_budget_bytes > 0) {
    const double pressure = static_cast<double>(bytes) /
                            static_cast<double>(options_.mem_budget_bytes);
    switch (state()) {
      case State::kNormal:
        if (pressure >= options_.high_watermark) {
          next = State::kShedding;
        } else if (pressure >= options_.low_watermark) {
          next = State::kPressure;
        }
        break;
      case State::kPressure:
        if (pressure >= options_.high_watermark) {
          next = State::kShedding;
        } else if (pressure < options_.low_watermark) {
          next = State::kNormal;
        }
        break;
      case State::kShedding:
        // Hysteresis: recovery is monotone — shedding ends only below the
        // low watermark, never by hovering under the high one.
        if (pressure < options_.low_watermark) next = State::kNormal;
        break;
    }
    if (next != state()) {
      if (next == State::kShedding) {
        BIGCITY_COUNTER_INC("serve.overload.entered_shedding");
      } else if (next == State::kNormal) {
        BIGCITY_COUNTER_INC("serve.overload.recovered");
      }
      state_.store(static_cast<int>(next), std::memory_order_relaxed);
    }
  }
  BIGCITY_GAUGE_SET("serve.overload.state", static_cast<int>(next));
  BIGCITY_GAUGE_SET("serve.overload.sampled_bytes",
                    static_cast<double>(bytes));
  BIGCITY_GAUGE_SET(
      "serve.overload.peak_bytes",
      static_cast<double>(peak_sampled_bytes_.load(std::memory_order_relaxed)));
  return next;
}

int OverloadController::EffectiveBatchMax(int configured) const {
  if (state() == State::kNormal) return configured;
  return std::max(options_.min_batch_max, configured / 2);
}

size_t OverloadController::EffectiveKvCapacity(size_t configured) const {
  if (state() == State::kNormal) return configured;
  return configured / 2;
}

size_t OverloadController::EffectiveQueueCapacity(size_t configured) const {
  if (state() == State::kNormal) return configured;
  return std::max<size_t>(1, configured / 2);
}

bool OverloadController::ShouldDropStale(double sojourn_us,
                                         Clock::time_point now) {
  if (options_.sojourn_target_ms <= 0) return false;
  const double target_us = options_.sojourn_target_ms * 1000.0;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(options_.sojourn_interval_ms));
  std::lock_guard<std::mutex> lock(sojourn_mu_);
  if (sojourn_us < target_us) {
    // Sojourn back under target: the backlog drained, reset the law.
    first_above_.reset();
    dropping_ = false;
    drop_count_ = 0;
    return false;
  }
  if (!first_above_.has_value()) {
    first_above_ = now + interval;
    return false;
  }
  if (!dropping_) {
    if (now < *first_above_) return false;
    // Above target for a full interval: start dropping.
    dropping_ = true;
    drop_count_ = 1;
    drop_next_ =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(
                      std::chrono::duration<double>(interval).count() /
                      std::sqrt(static_cast<double>(drop_count_ + 1))));
    return true;
  }
  if (now >= drop_next_) {
    ++drop_count_;
    drop_next_ =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(
                      std::chrono::duration<double>(interval).count() /
                      std::sqrt(static_cast<double>(drop_count_ + 1))));
    return true;
  }
  return false;
}

double OverloadController::pressure() const {
  if (options_.mem_budget_bytes <= 0) return 0;
  return static_cast<double>(sampled_bytes()) /
         static_cast<double>(options_.mem_budget_bytes);
}

const char* OverloadController::StateName(State state) {
  switch (state) {
    case State::kNormal:
      return "normal";
    case State::kPressure:
      return "pressure";
    case State::kShedding:
      return "shedding";
  }
  return "unknown";
}

}  // namespace bigcity::serve
