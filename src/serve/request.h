#ifndef BIGCITY_SERVE_REQUEST_H_
#define BIGCITY_SERVE_REQUEST_H_

#include <cstdint>
#include <vector>

#include "core/task.h"
#include "data/trajectory.h"
#include "nn/tensor.h"
#include "util/status.h"

namespace bigcity::serve {

/// One inference request against the task-prompted BIGCity model. Which
/// fields are read depends on `task`:
///   trajectory tasks  — `trajectory` (+ `kept` for recovery)
///   traffic tasks     — `segment`, `start_slice`, `horizon` / `window`
///                       (+ `masked` for imputation)
struct Request {
  core::Task task = core::Task::kNextHop;

  data::Trajectory trajectory;  // Trajectory tasks.
  std::vector<int> kept;        // Recovery: surviving indices (sorted).

  int segment = 0;              // Traffic tasks.
  int start_slice = 0;
  int horizon = 1;              // Prediction steps.
  int window = 12;              // Imputation window length.
  std::vector<int> masked;      // Imputation mask positions.

  /// Wall-clock budget from submission; <= 0 means no deadline (the
  /// server's default_deadline_ms still applies if set).
  double deadline_ms = 0;

  /// Caller-chosen correlation id, echoed in the response.
  uint64_t id = 0;
};

/// Where a request's lifecycle ended; `util::Status` carries the matching
/// code (kResourceExhausted for kShed, kDeadlineExceeded for kDeadline,
/// kInvalidArgument for kQuarantined, kUnavailable for kRejected/kFailed).
enum class Outcome {
  kOk = 0,       // Full-model result.
  kDegraded,     // Baseline fallback result (status is still OK).
  kShed,         // Admission queue full.
  kDeadline,     // Deadline expired at a cancellation checkpoint.
  kQuarantined,  // Malformed input.
  kRejected,     // Circuit breaker open, no fallback eligible.
  kFailed,       // Transient failures exhausted retries.
};

struct Response {
  util::Status status;
  Outcome outcome = Outcome::kOk;
  /// Task output tensor; invalid (is_valid() == false) unless the status
  /// is OK. Bit-identical to the direct model call when not degraded.
  nn::Tensor output;
  /// True when the baseline predictor answered instead of the model.
  bool degraded = false;
  /// Transient-failure retries consumed by this request.
  int retries = 0;
  double queue_wait_us = 0;  // Admission-to-dequeue.
  double total_us = 0;       // Submission-to-completion.
  uint64_t id = 0;           // Echo of Request::id.
  /// Model version that served this request (0 = initial in-memory
  /// weights; pre-worker failures like shed/expired keep 0).
  uint64_t model_version = 0;
  /// Requests that shared this request's batched forward (1 on the
  /// per-request path and for requests that never reached a worker).
  int batch_size = 1;
};

}  // namespace bigcity::serve

#endif  // BIGCITY_SERVE_REQUEST_H_
