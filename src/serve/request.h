#ifndef BIGCITY_SERVE_REQUEST_H_
#define BIGCITY_SERVE_REQUEST_H_

#include <cstdint>
#include <vector>

#include "core/task.h"
#include "data/trajectory.h"
#include "nn/tensor.h"
#include "util/status.h"

namespace bigcity::serve {

/// One inference request against the task-prompted BIGCity model. Which
/// fields are read depends on `task`:
///   trajectory tasks  — `trajectory` (+ `kept` for recovery)
///   traffic tasks     — `segment`, `start_slice`, `horizon` / `window`
///                       (+ `masked` for imputation)
struct Request {
  core::Task task = core::Task::kNextHop;

  data::Trajectory trajectory;  // Trajectory tasks.
  std::vector<int> kept;        // Recovery: surviving indices (sorted).

  int segment = 0;              // Traffic tasks.
  int start_slice = 0;
  int horizon = 1;              // Prediction steps.
  int window = 12;              // Imputation window length.
  std::vector<int> masked;      // Imputation mask positions.

  /// Wall-clock budget from submission; <= 0 means no deadline (the
  /// server's default_deadline_ms still applies if set).
  double deadline_ms = 0;

  /// Caller-chosen correlation id, echoed in the response.
  uint64_t id = 0;
};

/// Where a request's lifecycle ended; `util::Status` carries the matching
/// code (kResourceExhausted for kShed, kDeadlineExceeded for kDeadline,
/// kInvalidArgument for kQuarantined, kUnavailable for kRejected/kFailed).
enum class Outcome {
  kOk = 0,       // Full-model result.
  kDegraded,     // Baseline fallback result (status is still OK).
  kShed,         // Admission queue full.
  kDeadline,     // Deadline expired at a cancellation checkpoint.
  kQuarantined,  // Malformed input.
  kRejected,     // Circuit breaker open, no fallback eligible.
  kFailed,       // Transient failures exhausted retries.
  kReaped,       // Watchdog reaped it off a hung worker (status carries
                 // kDeadlineExceeded; the replacement serves later load).
};

inline constexpr int kNumOutcomes = 8;

/// Stable lowercase outcome label ("ok", "degraded", ...), used in
/// serve.outcome.<task>.<outcome> metric names and CLI tables.
inline const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk:
      return "ok";
    case Outcome::kDegraded:
      return "degraded";
    case Outcome::kShed:
      return "shed";
    case Outcome::kDeadline:
      return "deadline";
    case Outcome::kQuarantined:
      return "quarantined";
    case Outcome::kRejected:
      return "rejected";
    case Outcome::kFailed:
      return "failed";
    case Outcome::kReaped:
      return "reaped";
  }
  return "unknown";
}

/// Per-stage latency attribution for one request (DESIGN.md §4.15). The
/// stages partition the request's wall time against the same steady
/// clock as total_us, so Total() ≈ Response::total_us; stages a request
/// never reached stay 0. `forward_us` is the forward wall time minus the
/// tokenize/cache time carved out of it; in a build with probes compiled
/// out (BIGCITY_OBS=OFF) tokenize_us and cache_lookup_us read 0 and
/// forward_us absorbs them, so the partition still holds.
struct StageBreakdown {
  double queue_wait_us = 0;    // Submit -> admission-queue drain.
  double batch_wait_us = 0;    // Batcher pending -> batch dispatch.
  double validate_us = 0;      // Input validation.
  double tokenize_us = 0;      // ST tokenization inside the forward.
  double cache_lookup_us = 0;  // Tokenizer rep-cache probes.
  double forward_us = 0;       // Model forward minus tokenize/cache.
  double retry_us = 0;         // Backoff sleeps + failed attempts.

  double Total() const {
    return queue_wait_us + batch_wait_us + validate_us + tokenize_us +
           cache_lookup_us + forward_us + retry_us;
  }
};

struct Response {
  util::Status status;
  Outcome outcome = Outcome::kOk;
  /// Task output tensor; invalid (is_valid() == false) unless the status
  /// is OK. Bit-identical to the direct model call when not degraded.
  nn::Tensor output;
  /// True when the baseline predictor answered instead of the model.
  bool degraded = false;
  /// Transient-failure retries consumed by this request.
  int retries = 0;
  double queue_wait_us = 0;  // Admission-to-dequeue.
  double total_us = 0;       // Submission-to-completion.
  uint64_t id = 0;           // Echo of Request::id.
  /// Process-unique trace id allocated at Submit; stamps every span the
  /// request touches and binds its chrome://tracing flow. Never 0.
  uint64_t trace_id = 0;
  /// Where the time went (stages sum to ~total_us; see StageBreakdown).
  StageBreakdown stages;
  /// Model version that served this request (0 = initial in-memory
  /// weights; pre-worker failures like shed/expired keep 0).
  uint64_t model_version = 0;
  /// Requests that shared this request's batched forward (1 on the
  /// per-request path and for requests that never reached a worker).
  int batch_size = 1;
};

}  // namespace bigcity::serve

#endif  // BIGCITY_SERVE_REQUEST_H_
