#include "serve/circuit_breaker.h"

namespace bigcity::serve {

CircuitBreaker::Decision CircuitBreaker::Admit(
    std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return Decision::kAllow;
    case State::kOpen: {
      const double open_ms =
          std::chrono::duration<double, std::milli>(now - opened_at_)
              .count();
      if (open_ms < cooldown_ms_) return Decision::kReject;
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return Decision::kProbe;
    }
    case State::kHalfOpen:
      if (probe_in_flight_) return Decision::kReject;
      probe_in_flight_ = true;
      return Decision::kProbe;
  }
  return Decision::kAllow;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

bool CircuitBreaker::RecordFailure(
    std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  probe_in_flight_ = false;
  if (state_ == State::kHalfOpen ||
      consecutive_failures_ >= failure_threshold_) {
    const bool newly_opened = state_ != State::kOpen;
    state_ = State::kOpen;
    opened_at_ = now;
    return newly_opened;
  }
  return false;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

}  // namespace bigcity::serve
