#ifndef BIGCITY_SERVE_BATCHER_H_
#define BIGCITY_SERVE_BATCHER_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "serve/admission_queue.h"

namespace bigcity::serve {

/// Continuous-batching stage between the admission queue and the workers
/// (DESIGN.md §4.14). Workers call NextBatch() instead of popping the
/// queue directly; the batcher drains arrivals into per-key pending
/// groups and hands out same-key batches. A group dispatches when
///   - it reaches `batch_max` items,
///   - its oldest item has waited `window_us` since the batcher saw it,
///   - any member is urgent — remaining deadline within the caller's
///     margin — so a nearly-expired request never waits for batch fill, or
///   - the queue is closed (drain-then-stop shutdown).
/// Items with a negative key are never batched: they dispatch alone,
/// immediately. Thread-safe: any number of workers may call NextBatch()
/// concurrently; group selection is serialized under one mutex while the
/// blocking wait happens inside the queue, so a new arrival wakes exactly
/// one idle worker. Header-only template for the same reason as
/// AdmissionQueue — the item type stays private to the server.
template <typename T>
class Batcher {
 public:
  struct Options {
    int batch_max = 8;
    double window_us = 200.0;
  };

  /// `key_fn` maps an item to its batch group (< 0 = dispatch alone);
  /// `remaining_us_fn` returns the item's remaining deadline budget in
  /// microseconds (infinity when it carries no deadline); `margin_us_fn`
  /// is the urgency threshold, typically window + max(p95 forward,
  /// window) so an urgent item still fits one forward after dispatch.
  /// Optional `dispatch_fn` runs (under the batcher mutex) for every
  /// dispatched item with the microseconds it waited pending — the
  /// server stamps per-request batch-wait attribution from it. Optional
  /// `batch_max_fn` overrides Options::batch_max per dispatch decision;
  /// the overload controller shrinks batches under memory pressure
  /// through it without restarting the batcher.
  Batcher(AdmissionQueue<T>* queue, Options options,
          std::function<int(const T&)> key_fn,
          std::function<double(const T&)> remaining_us_fn,
          std::function<double()> margin_us_fn,
          std::function<void(T&, double)> dispatch_fn = nullptr,
          std::function<int()> batch_max_fn = nullptr)
      : queue_(queue),
        options_(options),
        key_fn_(std::move(key_fn)),
        remaining_us_fn_(std::move(remaining_us_fn)),
        margin_us_fn_(std::move(margin_us_fn)),
        dispatch_fn_(std::move(dispatch_fn)),
        batch_max_fn_(std::move(batch_max_fn)) {}

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Blocks for the next batch; an empty result means the queue is closed
  /// and every pending item has been handed out (worker shutdown).
  std::vector<T> NextBatch() {
    for (;;) {
      while (std::optional<T> item = queue_->TryPop()) Add(std::move(*item));
      double wait_us = kIdleWaitUs;
      {
        std::lock_guard<std::mutex> lock(mu_);
        std::vector<T> batch = ExtractLocked();
        if (!batch.empty()) {
          // Leftover pending items need a babysitter: wake an idle worker
          // so their window timer keeps running while this one forwards.
          if (!groups_.empty()) queue_->Kick();
          return batch;
        }
        if (groups_.empty()) {
          if (queue_->closed() && queue_->depth() == 0) return {};
        } else {
          wait_us = WaitHintLocked();
        }
      }
      if (std::optional<T> item = queue_->PopFor(wait_us)) {
        Add(std::move(*item));
      }
    }
  }

  /// Items drained from the queue but not yet dispatched (tests).
  size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const Group& group : groups_) total += group.items.size();
    return total;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct PendingItem {
    T item;
    Clock::time_point arrived;
  };
  struct Group {
    int key = 0;
    std::vector<PendingItem> items;  // FIFO by arrival.
  };

  // Idle workers park this long in PopFor; Close() and Kick() both wake
  // them immediately, so the constant only bounds lock-free idling.
  static constexpr double kIdleWaitUs = 1e6;

  int CurrentBatchMax() const {
    return batch_max_fn_ ? batch_max_fn_() : options_.batch_max;
  }

  void Add(T&& item) {
    const int key = key_fn_(item);
    std::lock_guard<std::mutex> lock(mu_);
    const Clock::time_point now = Clock::now();
    for (Group& group : groups_) {
      if (group.key == key) {
        group.items.push_back(PendingItem{std::move(item), now});
        return;
      }
    }
    groups_.push_back(Group{key, {}});
    groups_.back().items.push_back(PendingItem{std::move(item), now});
  }

  bool DispatchableLocked(const Group& group, Clock::time_point now,
                          double margin_us) const {
    if (group.key < 0) return true;  // Unbatchable: alone, immediately.
    if (queue_->closed()) return true;
    if (static_cast<int>(group.items.size()) >= CurrentBatchMax()) {
      return true;
    }
    const double oldest_us = std::chrono::duration<double, std::micro>(
                                 now - group.items.front().arrived)
                                 .count();
    if (oldest_us >= options_.window_us) return true;
    for (const PendingItem& pending : group.items) {
      if (remaining_us_fn_(pending.item) <= margin_us) return true;
    }
    return false;
  }

  /// Removes and returns the dispatchable group with the oldest head
  /// (fairness across tasks); empty when nothing may dispatch yet.
  std::vector<T> ExtractLocked() {
    const Clock::time_point now = Clock::now();
    const double margin_us = margin_us_fn_();
    size_t best = groups_.size();
    for (size_t i = 0; i < groups_.size(); ++i) {
      if (groups_[i].items.empty()) continue;
      if (!DispatchableLocked(groups_[i], now, margin_us)) continue;
      if (best == groups_.size() ||
          groups_[i].items.front().arrived <
              groups_[best].items.front().arrived) {
        best = i;
      }
    }
    std::vector<T> batch;
    if (best == groups_.size()) return batch;
    Group& group = groups_[best];
    const size_t take =
        group.key < 0
            ? 1
            : std::min(group.items.size(),
                       static_cast<size_t>(std::max(1, CurrentBatchMax())));
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      if (dispatch_fn_) {
        dispatch_fn_(group.items[i].item,
                     std::chrono::duration<double, std::micro>(
                         now - group.items[i].arrived)
                         .count());
      }
      batch.push_back(std::move(group.items[i].item));
    }
    group.items.erase(group.items.begin(),
                      group.items.begin() + static_cast<ptrdiff_t>(take));
    groups_.erase(
        std::remove_if(groups_.begin(), groups_.end(),
                       [](const Group& g) { return g.items.empty(); }),
        groups_.end());
    return batch;
  }

  /// Microseconds until the nearest dispatch trigger among pending items
  /// (window expiry or deadline urgency), floored so a wait is never a
  /// pure spin.
  double WaitHintLocked() const {
    const Clock::time_point now = Clock::now();
    const double margin_us = margin_us_fn_();
    double hint = options_.window_us;
    for (const Group& group : groups_) {
      if (group.items.empty() || group.key < 0) continue;
      const double oldest_us = std::chrono::duration<double, std::micro>(
                                   now - group.items.front().arrived)
                                   .count();
      hint = std::min(hint, options_.window_us - oldest_us);
      for (const PendingItem& pending : group.items) {
        const double remaining = remaining_us_fn_(pending.item);
        if (std::isfinite(remaining)) {
          hint = std::min(hint, remaining - margin_us);
        }
      }
    }
    return std::max(hint, 50.0);
  }

  AdmissionQueue<T>* queue_;
  const Options options_;
  const std::function<int(const T&)> key_fn_;
  const std::function<double(const T&)> remaining_us_fn_;
  const std::function<double()> margin_us_fn_;
  const std::function<void(T&, double)> dispatch_fn_;
  const std::function<int()> batch_max_fn_;

  mutable std::mutex mu_;
  std::vector<Group> groups_;
};

}  // namespace bigcity::serve

#endif  // BIGCITY_SERVE_BATCHER_H_
