#ifndef BIGCITY_SERVE_MODEL_REGISTRY_H_
#define BIGCITY_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/bigcity_model.h"
#include "util/model_dir.h"
#include "util/status.h"

namespace bigcity::serve {

/// A fully-validated candidate version as discovered by the registry.
struct VersionInfo {
  uint64_t version = 0;
  util::VersionManifest manifest;
  std::string weights_path;
};

/// Watches a versioned model directory (util/model_dir layout) and hands
/// the rollout controller validated candidates. Validation before a single
/// weight byte is loaded: manifest container CRC + parse, version/dir
/// agreement, config-fingerprint match, and a full CRC of the weights
/// file against the manifest. Anything that fails is quarantined — an
/// in-memory reason plus a best-effort QUARANTINED marker file so a
/// restarted server does not re-try a known-bad version — and the server
/// keeps serving its current weights.
///
/// Thread safety: all methods may be called concurrently (the controller
/// thread polls while tests/introspection read the quarantine map).
class ModelRegistry {
 public:
  ModelRegistry(std::string dir, std::string expected_fingerprint);

  /// One poll: reads CURRENT and validates the version it names. Returns
  ///   - the validated VersionInfo when CURRENT names a version newer
  ///     than `after` that is not quarantined;
  ///   - kNotFound when there is nothing new (no CURRENT, CURRENT <=
  ///     after, or CURRENT quarantined earlier);
  ///   - never a validation error: those quarantine the version and
  ///     report kNotFound, because "bad candidate" must look exactly like
  ///     "no candidate" to the serving path.
  util::Result<VersionInfo> PollOnce(uint64_t after);

  /// Marks `version` bad with a human-readable reason (also used by the
  /// rollout controller for staged-load failures and failed canaries).
  void Quarantine(uint64_t version, const std::string& reason);

  bool IsQuarantined(uint64_t version) const;
  /// version -> reason, for introspection and test assertions.
  std::map<uint64_t, std::string> Quarantined() const;

  const std::string& dir() const { return dir_; }

 private:
  util::Status Validate(uint64_t version, VersionInfo* info) const;

  const std::string dir_;
  const std::string expected_fingerprint_;
  mutable std::mutex mu_;
  std::map<uint64_t, std::string> quarantined_;
};

/// Publishes `model`'s weights into `dir` as the next version (one past
/// the highest existing version directory, starting at 1): writes
/// `vNNNNNN/weights.ckpt`, computes its file CRC, writes the manifest, and
/// atomically flips CURRENT. Returns the published version number.
/// `parent_version` records provenance (-1 for an initial publication).
util::Result<uint64_t> PublishModel(const std::string& dir,
                                    const core::BigCityModel& model,
                                    int64_t parent_version = -1);

/// Test/chaos hook: like PublishModel but with an explicit manifest
/// fingerprint (e.g. a deliberately mismatched one) instead of the
/// model's own.
util::Result<uint64_t> PublishModelWithFingerprint(
    const std::string& dir, const core::BigCityModel& model,
    const std::string& fingerprint, int64_t parent_version = -1);

}  // namespace bigcity::serve

#endif  // BIGCITY_SERVE_MODEL_REGISTRY_H_
