#ifndef BIGCITY_BASELINES_TRAFFIC_RECURRENT_MODELS_H_
#define BIGCITY_BASELINES_TRAFFIC_RECURRENT_MODELS_H_

#include <memory>

#include "baselines/traffic/traffic_model.h"
#include "nn/layers.h"

namespace bigcity::baselines {

/// DCRNN (Li et al., 2018): diffusion-convolutional recurrent network.
/// Each step applies forward/backward diffusion convolutions inside a
/// GRU-style update over all segments jointly.
class Dcrnn : public TrafficModel {
 public:
  Dcrnn(const data::CityDataset* dataset, int window, int in_channels,
        int out_dim, int64_t hidden, util::Rng* rng);

  std::string name() const override { return "DCRNN"; }
  nn::Tensor Forward(const nn::Tensor& window_input) override;

 private:
  /// Diffusion convolution: W0 X + W1 (A_fwd X) + W2 (A_bwd X).
  nn::Tensor DiffusionConv(const nn::Tensor& x,
                           const nn::Linear& w0, const nn::Linear& w1,
                           const nn::Linear& w2) const;

  int64_t hidden_;
  nn::Tensor adj_fwd_, adj_bwd_;
  // Gate / candidate diffusion convolutions over [x || h].
  std::unique_ptr<nn::Linear> gate0_, gate1_, gate2_;
  std::unique_ptr<nn::Linear> cand0_, cand1_, cand2_;
  std::unique_ptr<nn::Linear> readout_;
};

/// TrGNN (Li et al., 2021): traffic prediction with vehicle trajectories —
/// the graph convolution uses trajectory transition frequencies instead of
/// pure road topology, feeding a GRU over time.
class TrGnn : public TrafficModel {
 public:
  TrGnn(const data::CityDataset* dataset, int window, int in_channels,
        int out_dim, int64_t hidden, util::Rng* rng);

  std::string name() const override { return "TrGNN"; }
  nn::Tensor Forward(const nn::Tensor& window_input) override;

 private:
  int64_t hidden_;
  nn::Tensor transition_adj_;
  std::unique_ptr<nn::Linear> graph_proj_;
  // Node-shared GRU cell applied to all segments jointly.
  std::unique_ptr<nn::Linear> gate_x_, gate_h_, cand_x_, cand_h_;
  std::unique_ptr<nn::Linear> readout_;
};

}  // namespace bigcity::baselines

#endif  // BIGCITY_BASELINES_TRAFFIC_RECURRENT_MODELS_H_
