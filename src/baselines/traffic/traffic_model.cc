#include "baselines/traffic/traffic_model.h"

namespace bigcity::baselines {

namespace {

nn::Tensor RowNormalize(std::vector<float> dense, int n) {
  for (int i = 0; i < n; ++i) {
    float total = 0;
    for (int j = 0; j < n; ++j) total += dense[static_cast<size_t>(i * n + j)];
    if (total <= 0) continue;
    for (int j = 0; j < n; ++j) dense[static_cast<size_t>(i * n + j)] /= total;
  }
  return nn::Tensor::FromData({n, n}, std::move(dense));
}

}  // namespace

nn::Tensor NormalizedAdjacency(const roadnet::RoadNetwork& network) {
  const int n = network.num_segments();
  std::vector<float> dense(static_cast<size_t>(n) * n, 0.0f);
  for (int i = 0; i < n; ++i) {
    dense[static_cast<size_t>(i * n + i)] = 1.0f;  // Self loop.
    for (int j : network.successors(i)) {
      dense[static_cast<size_t>(i * n + j)] = 1.0f;
    }
  }
  return RowNormalize(std::move(dense), n);
}

nn::Tensor NormalizedReverseAdjacency(const roadnet::RoadNetwork& network) {
  const int n = network.num_segments();
  std::vector<float> dense(static_cast<size_t>(n) * n, 0.0f);
  for (int i = 0; i < n; ++i) {
    dense[static_cast<size_t>(i * n + i)] = 1.0f;
    for (int j : network.predecessors(i)) {
      dense[static_cast<size_t>(i * n + j)] = 1.0f;
    }
  }
  return RowNormalize(std::move(dense), n);
}

nn::Tensor TransitionAdjacency(const data::CityDataset& dataset) {
  const int n = dataset.network().num_segments();
  std::vector<float> dense(static_cast<size_t>(n) * n, 0.0f);
  for (int i = 0; i < n; ++i) dense[static_cast<size_t>(i * n + i)] = 1.0f;
  for (const auto& trip : dataset.train()) {
    for (int l = 0; l + 1 < trip.length(); ++l) {
      const int a = trip.points[static_cast<size_t>(l)].segment;
      const int b = trip.points[static_cast<size_t>(l + 1)].segment;
      dense[static_cast<size_t>(a) * n + b] += 1.0f;
    }
  }
  return RowNormalize(std::move(dense), n);
}

}  // namespace bigcity::baselines
