#ifndef BIGCITY_BASELINES_TRAFFIC_TRAFFIC_HARNESS_H_
#define BIGCITY_BASELINES_TRAFFIC_TRAFFIC_HARNESS_H_

#include "baselines/traffic/traffic_model.h"
#include "train/evaluator.h"
#include "util/rng.h"

namespace bigcity::baselines {

/// Trains and evaluates a traffic-state baseline for one task. Prediction
/// models output [I, horizon * C]; imputation models take a (masked input +
/// mask indicator) window of in_channels = C + 1 and output [I, window * C].
/// Training samples come from the first half of the timeline, evaluation
/// from the second half — the same protocol as train::Evaluator.
struct TrafficHarnessConfig {
  int epochs = 6;
  float lr = 3e-3f;
  int train_samples = 100;   // Window start positions per epoch.
  int eval_samples = 60;
  int window = 12;
  uint64_t seed = 9;
};

class TrafficTaskHarness {
 public:
  TrafficTaskHarness(const data::CityDataset* dataset,
                     TrafficHarnessConfig config);

  /// Input window [I, window * C] starting at `start`.
  nn::Tensor BuildPredictionInput(int start) const;
  /// Ground truth [I, horizon * C] following the window.
  nn::Tensor PredictionTarget(int start, int horizon) const;

  /// Masked window [I, window * (C+1)] (zeroed states + mask flags).
  nn::Tensor BuildImputationInput(int start,
                                  const std::vector<int>& masked) const;
  /// Full-window ground truth [I, window * C].
  nn::Tensor ImputationTarget(int start) const;

  /// Trains `model` for h-step prediction and reports test-range MAE /
  /// MAPE / RMSE on the speed channel (m/s).
  train::RegressionMetrics TrainAndEvalPrediction(TrafficModel* model,
                                                  int horizon);

  /// Trains `model` for imputation at the given mask ratio.
  train::RegressionMetrics TrainAndEvalImputation(TrafficModel* model,
                                                  double mask_ratio);

  const TrafficHarnessConfig& config() const { return config_; }

 private:
  int MaxTrainStart(int horizon) const;

  const data::CityDataset* dataset_;
  TrafficHarnessConfig config_;
  util::Rng rng_;
};

}  // namespace bigcity::baselines

#endif  // BIGCITY_BASELINES_TRAFFIC_TRAFFIC_HARNESS_H_
