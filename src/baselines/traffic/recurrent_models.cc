#include "baselines/traffic/recurrent_models.h"

#include "nn/ops.h"
#include "util/check.h"

namespace bigcity::baselines {

using nn::Tensor;

namespace {
/// Extracts step t of a [I, W*C] window as [I, C].
Tensor StepSlice(const Tensor& window_input, int t, int channels) {
  return nn::SliceCols(window_input, t * channels, (t + 1) * channels);
}
}  // namespace

// --- DCRNN -------------------------------------------------------------------

Dcrnn::Dcrnn(const data::CityDataset* dataset, int window, int in_channels,
             int out_dim, int64_t hidden, util::Rng* rng)
    : TrafficModel(dataset->network().num_segments(), window, in_channels,
                   out_dim),
      hidden_(hidden) {
  adj_fwd_ = NormalizedAdjacency(dataset->network());
  adj_bwd_ = NormalizedReverseAdjacency(dataset->network());
  const int64_t in = in_channels + hidden;
  gate0_ = std::make_unique<nn::Linear>(in, 2 * hidden, rng);
  gate1_ = std::make_unique<nn::Linear>(in, 2 * hidden, rng, false);
  gate2_ = std::make_unique<nn::Linear>(in, 2 * hidden, rng, false);
  cand0_ = std::make_unique<nn::Linear>(in, hidden, rng);
  cand1_ = std::make_unique<nn::Linear>(in, hidden, rng, false);
  cand2_ = std::make_unique<nn::Linear>(in, hidden, rng, false);
  readout_ = std::make_unique<nn::Linear>(hidden, out_dim, rng);
  RegisterModule("gate0", gate0_.get());
  RegisterModule("gate1", gate1_.get());
  RegisterModule("gate2", gate2_.get());
  RegisterModule("cand0", cand0_.get());
  RegisterModule("cand1", cand1_.get());
  RegisterModule("cand2", cand2_.get());
  RegisterModule("readout", readout_.get());
}

Tensor Dcrnn::DiffusionConv(const Tensor& x, const nn::Linear& w0,
                            const nn::Linear& w1,
                            const nn::Linear& w2) const {
  return nn::Add(nn::Add(w0.Forward(x), w1.Forward(nn::MatMul(adj_fwd_, x))),
                 w2.Forward(nn::MatMul(adj_bwd_, x)));
}

Tensor Dcrnn::Forward(const Tensor& window_input) {
  Tensor h = Tensor::Zeros({num_segments_, hidden_});
  for (int t = 0; t < window_; ++t) {
    Tensor x = StepSlice(window_input, t, in_channels_);
    Tensor xh = nn::Concat({x, h}, 1);
    Tensor gates = nn::Sigmoid(DiffusionConv(xh, *gate0_, *gate1_, *gate2_));
    Tensor z = nn::SliceCols(gates, 0, hidden_);
    Tensor r = nn::SliceCols(gates, hidden_, 2 * hidden_);
    Tensor xrh = nn::Concat({x, nn::Mul(r, h)}, 1);
    Tensor candidate =
        nn::Tanh(DiffusionConv(xrh, *cand0_, *cand1_, *cand2_));
    // h = (1-z) * h + z * candidate.
    Tensor one_minus_z = nn::AddConst(nn::Neg(z), 1.0f);
    h = nn::Add(nn::Mul(one_minus_z, h), nn::Mul(z, candidate));
  }
  return readout_->Forward(h);
}

// --- TrGNN -------------------------------------------------------------------

TrGnn::TrGnn(const data::CityDataset* dataset, int window, int in_channels,
             int out_dim, int64_t hidden, util::Rng* rng)
    : TrafficModel(dataset->network().num_segments(), window, in_channels,
                   out_dim),
      hidden_(hidden) {
  transition_adj_ = TransitionAdjacency(*dataset);
  graph_proj_ = std::make_unique<nn::Linear>(in_channels, hidden, rng);
  gate_x_ = std::make_unique<nn::Linear>(hidden, 2 * hidden, rng);
  gate_h_ = std::make_unique<nn::Linear>(hidden, 2 * hidden, rng, false);
  cand_x_ = std::make_unique<nn::Linear>(hidden, hidden, rng);
  cand_h_ = std::make_unique<nn::Linear>(hidden, hidden, rng, false);
  readout_ = std::make_unique<nn::Linear>(hidden, out_dim, rng);
  RegisterModule("graph_proj", graph_proj_.get());
  RegisterModule("gate_x", gate_x_.get());
  RegisterModule("gate_h", gate_h_.get());
  RegisterModule("cand_x", cand_x_.get());
  RegisterModule("cand_h", cand_h_.get());
  RegisterModule("readout", readout_.get());
}

Tensor TrGnn::Forward(const Tensor& window_input) {
  Tensor h = Tensor::Zeros({num_segments_, hidden_});
  for (int t = 0; t < window_; ++t) {
    Tensor x = StepSlice(window_input, t, in_channels_);
    // Trajectory-informed graph convolution on the inputs.
    Tensor gx = nn::Relu(
        graph_proj_->Forward(nn::MatMul(transition_adj_, x)));
    Tensor gates =
        nn::Sigmoid(nn::Add(gate_x_->Forward(gx), gate_h_->Forward(h)));
    Tensor z = nn::SliceCols(gates, 0, hidden_);
    Tensor r = nn::SliceCols(gates, hidden_, 2 * hidden_);
    Tensor candidate = nn::Tanh(
        nn::Add(cand_x_->Forward(gx), cand_h_->Forward(nn::Mul(r, h))));
    Tensor one_minus_z = nn::AddConst(nn::Neg(z), 1.0f);
    h = nn::Add(nn::Mul(one_minus_z, h), nn::Mul(z, candidate));
  }
  return readout_->Forward(h);
}

}  // namespace bigcity::baselines
