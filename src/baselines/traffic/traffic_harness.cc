#include "baselines/traffic/traffic_harness.h"

#include <algorithm>

#include "data/masking.h"
#include "data/traffic_aggregator.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "train/metrics.h"
#include "util/check.h"

namespace bigcity::baselines {

using data::kTrafficChannels;
using nn::Tensor;

TrafficTaskHarness::TrafficTaskHarness(const data::CityDataset* dataset,
                                       TrafficHarnessConfig config)
    : dataset_(dataset), config_(config), rng_(config.seed) {
  BIGCITY_CHECK(dataset != nullptr);
  BIGCITY_CHECK(dataset->config().has_dynamic_features);
}

Tensor TrafficTaskHarness::BuildPredictionInput(int start) const {
  const int num_segments = dataset_->network().num_segments();
  std::vector<float> values(static_cast<size_t>(num_segments) *
                            config_.window * kTrafficChannels);
  for (int i = 0; i < num_segments; ++i) {
    for (int t = 0; t < config_.window; ++t) {
      for (int c = 0; c < kTrafficChannels; ++c) {
        values[(static_cast<size_t>(i) * config_.window + t) *
                   kTrafficChannels +
               c] = dataset_->traffic().Get(start + t, i, c);
      }
    }
  }
  return Tensor::FromData({num_segments, config_.window * kTrafficChannels},
                          std::move(values));
}

Tensor TrafficTaskHarness::PredictionTarget(int start, int horizon) const {
  const int num_segments = dataset_->network().num_segments();
  std::vector<float> values(static_cast<size_t>(num_segments) * horizon *
                            kTrafficChannels);
  for (int i = 0; i < num_segments; ++i) {
    for (int h = 0; h < horizon; ++h) {
      for (int c = 0; c < kTrafficChannels; ++c) {
        values[(static_cast<size_t>(i) * horizon + h) * kTrafficChannels +
               c] = dataset_->traffic().Get(start + config_.window + h, i, c);
      }
    }
  }
  return Tensor::FromData({num_segments, horizon * kTrafficChannels},
                          std::move(values));
}

Tensor TrafficTaskHarness::BuildImputationInput(
    int start, const std::vector<int>& masked) const {
  const int num_segments = dataset_->network().num_segments();
  const int in_channels = kTrafficChannels + 1;
  std::vector<bool> is_masked(static_cast<size_t>(config_.window), false);
  for (int m : masked) is_masked[static_cast<size_t>(m)] = true;
  std::vector<float> values(static_cast<size_t>(num_segments) *
                                config_.window * in_channels,
                            0.0f);
  for (int i = 0; i < num_segments; ++i) {
    for (int t = 0; t < config_.window; ++t) {
      float* cell = values.data() +
                    (static_cast<size_t>(i) * config_.window + t) *
                        in_channels;
      if (is_masked[static_cast<size_t>(t)]) {
        cell[kTrafficChannels] = 1.0f;  // Mask indicator.
      } else {
        for (int c = 0; c < kTrafficChannels; ++c) {
          cell[c] = dataset_->traffic().Get(start + t, i, c);
        }
      }
    }
  }
  return Tensor::FromData({num_segments, config_.window * in_channels},
                          std::move(values));
}

Tensor TrafficTaskHarness::ImputationTarget(int start) const {
  return BuildPredictionInput(start);
}

int TrafficTaskHarness::MaxTrainStart(int horizon) const {
  return std::max(1, dataset_->num_slices() / 2 - config_.window - horizon -
                         1);
}

train::RegressionMetrics TrafficTaskHarness::TrainAndEvalPrediction(
    TrafficModel* model, int horizon) {
  BIGCITY_CHECK_EQ(model->out_dim(), horizon * kTrafficChannels);
  BIGCITY_CHECK_EQ(model->in_channels(), kTrafficChannels);
  nn::Adam optimizer(model->TrainableParameters(), config_.lr);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (int s = 0; s < config_.train_samples; ++s) {
      const int start = rng_.UniformInt(0, MaxTrainStart(horizon));
      optimizer.ZeroGrad();
      Tensor predicted = model->Forward(BuildPredictionInput(start));
      nn::Mse(predicted, PredictionTarget(start, horizon)).Backward();
      optimizer.Step();
    }
  }

  // Evaluate on the held-out later half of the timeline, speed channel.
  std::vector<double> predictions, targets;
  const int lo = dataset_->num_slices() / 2;
  const int hi =
      std::max(lo + 1, dataset_->num_slices() - config_.window - horizon - 1);
  for (int s = 0; s < config_.eval_samples; ++s) {
    const int start = rng_.UniformInt(lo, hi);
    Tensor predicted = model->Forward(BuildPredictionInput(start));
    Tensor target = PredictionTarget(start, horizon);
    for (int i = 0; i < predicted.shape()[0]; ++i) {
      for (int h = 0; h < horizon; ++h) {
        predictions.push_back(predicted.at(i, h * kTrafficChannels) *
                              data::TrafficAggregator::kSpeedScale);
        targets.push_back(target.at(i, h * kTrafficChannels) *
                          data::TrafficAggregator::kSpeedScale);
      }
    }
  }
  train::RegressionMetrics metrics;
  metrics.mae = train::MeanAbsoluteError(predictions, targets);
  metrics.rmse = train::RootMeanSquaredError(predictions, targets);
  metrics.mape = train::MeanAbsolutePercentageError(predictions, targets);
  return metrics;
}

train::RegressionMetrics TrafficTaskHarness::TrainAndEvalImputation(
    TrafficModel* model, double mask_ratio) {
  BIGCITY_CHECK_EQ(model->out_dim(), config_.window * kTrafficChannels);
  BIGCITY_CHECK_EQ(model->in_channels(), kTrafficChannels + 1);
  const int k =
      std::max(1, static_cast<int>(config_.window * mask_ratio));
  nn::Adam optimizer(model->TrainableParameters(), config_.lr);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (int s = 0; s < config_.train_samples; ++s) {
      const int start = rng_.UniformInt(0, MaxTrainStart(0));
      auto masked = data::RandomMaskIndices(config_.window, k, &rng_);
      optimizer.ZeroGrad();
      Tensor predicted = model->Forward(BuildImputationInput(start, masked));
      nn::Mse(predicted, ImputationTarget(start)).Backward();
      optimizer.Step();
    }
  }

  std::vector<double> predictions, targets;
  const int lo = dataset_->num_slices() / 2;
  const int hi = std::max(lo + 1,
                          dataset_->num_slices() - config_.window - 1);
  for (int s = 0; s < config_.eval_samples; ++s) {
    const int start = rng_.UniformInt(lo, hi);
    auto masked = data::RandomMaskIndices(config_.window, k, &rng_);
    Tensor predicted = model->Forward(BuildImputationInput(start, masked));
    for (int i = 0; i < predicted.shape()[0]; ++i) {
      for (int m : masked) {
        predictions.push_back(predicted.at(i, m * kTrafficChannels) *
                              data::TrafficAggregator::kSpeedScale);
        targets.push_back(dataset_->traffic().Get(start + m, i, 0) *
                          data::TrafficAggregator::kSpeedScale);
      }
    }
  }
  train::RegressionMetrics metrics;
  metrics.mae = train::MeanAbsoluteError(predictions, targets);
  metrics.rmse = train::RootMeanSquaredError(predictions, targets);
  metrics.mape = train::MeanAbsolutePercentageError(predictions, targets);
  return metrics;
}

}  // namespace bigcity::baselines
