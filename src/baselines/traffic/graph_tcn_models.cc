#include "baselines/traffic/graph_tcn_models.h"

#include "nn/ops.h"

namespace bigcity::baselines {

using nn::Tensor;

// --- Graph WaveNet -------------------------------------------------------------

GraphWaveNet::GraphWaveNet(const data::CityDataset* dataset, int window,
                           int in_channels, int out_dim, int64_t hidden,
                           util::Rng* rng)
    : TrafficModel(dataset->network().num_segments(), window, in_channels,
                   out_dim) {
  adj_ = NormalizedAdjacency(dataset->network());
  node_emb1_ = RegisterParameter(
      "node_emb1", Tensor::Randn({num_segments_, 8}, rng, 0.1f, true));
  node_emb2_ = RegisterParameter(
      "node_emb2", Tensor::Randn({num_segments_, 8}, rng, 0.1f, true));
  const int64_t in = static_cast<int64_t>(window) * in_channels;
  tcn_filter_ = std::make_unique<nn::Linear>(in, hidden, rng);
  tcn_gate_ = std::make_unique<nn::Linear>(in, hidden, rng);
  graph_w_ = std::make_unique<nn::Linear>(hidden, hidden, rng);
  adaptive_w_ = std::make_unique<nn::Linear>(hidden, hidden, rng);
  readout_ = std::make_unique<nn::Linear>(hidden, out_dim, rng);
  RegisterModule("tcn_filter", tcn_filter_.get());
  RegisterModule("tcn_gate", tcn_gate_.get());
  RegisterModule("graph_w", graph_w_.get());
  RegisterModule("adaptive_w", adaptive_w_.get());
  RegisterModule("readout", readout_.get());
}

Tensor GraphWaveNet::AdaptiveAdjacency() const {
  return nn::Softmax(nn::Relu(nn::MatMul(node_emb1_,
                                         nn::Transpose(node_emb2_))));
}

Tensor GraphWaveNet::Forward(const Tensor& window_input) {
  // Gated temporal convolution collapsing the window.
  Tensor h = nn::Mul(nn::Tanh(tcn_filter_->Forward(window_input)),
                     nn::Sigmoid(tcn_gate_->Forward(window_input)));
  // Physical + adaptive graph convolutions with residual.
  Tensor physical = graph_w_->Forward(nn::MatMul(adj_, h));
  Tensor adaptive = adaptive_w_->Forward(nn::MatMul(AdaptiveAdjacency(), h));
  h = nn::Relu(nn::Add(h, nn::Add(physical, adaptive)));
  return readout_->Forward(h);
}

// --- MTGNN ----------------------------------------------------------------------

Mtgnn::Mtgnn(const data::CityDataset* dataset, int window, int in_channels,
             int out_dim, int64_t hidden, util::Rng* rng)
    : TrafficModel(dataset->network().num_segments(), window, in_channels,
                   out_dim) {
  node_emb1_ = RegisterParameter(
      "node_emb1", Tensor::Randn({num_segments_, 8}, rng, 0.1f, true));
  node_emb2_ = RegisterParameter(
      "node_emb2", Tensor::Randn({num_segments_, 8}, rng, 0.1f, true));
  const int64_t in = static_cast<int64_t>(window) * in_channels;
  temporal_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{in, hidden, hidden}, rng);
  hop1_ = std::make_unique<nn::Linear>(hidden, hidden, rng);
  hop2_ = std::make_unique<nn::Linear>(hidden, hidden, rng);
  readout_ = std::make_unique<nn::Linear>(hidden, out_dim, rng);
  RegisterModule("temporal", temporal_.get());
  RegisterModule("hop1", hop1_.get());
  RegisterModule("hop2", hop2_.get());
  RegisterModule("readout", readout_.get());
}

Tensor Mtgnn::LearnedAdjacency() const {
  // Uni-directional: relu(tanh(E1 E2^T - E2 E1^T)) row-softmaxed.
  Tensor m1 = nn::MatMul(node_emb1_, nn::Transpose(node_emb2_));
  Tensor m2 = nn::MatMul(node_emb2_, nn::Transpose(node_emb1_));
  return nn::Softmax(nn::Relu(nn::Tanh(nn::Sub(m1, m2))));
}

Tensor Mtgnn::Forward(const Tensor& window_input) {
  Tensor h0 = temporal_->Forward(window_input);
  Tensor adj = LearnedAdjacency();
  // Mix-hop propagation: beta-weighted residual over two hops.
  Tensor h1 = nn::Relu(hop1_->Forward(nn::MatMul(adj, h0)));
  Tensor h2 = nn::Relu(hop2_->Forward(nn::MatMul(adj, h1)));
  Tensor mixed = nn::Add(nn::Scale(h0, beta_),
                         nn::Scale(nn::Add(h1, h2), (1.0f - beta_) * 0.5f));
  return readout_->Forward(mixed);
}

// --- STGODE --------------------------------------------------------------------

StgOde::StgOde(const data::CityDataset* dataset, int window, int in_channels,
               int out_dim, int64_t hidden, util::Rng* rng)
    : TrafficModel(dataset->network().num_segments(), window, in_channels,
                   out_dim) {
  adj_ = NormalizedAdjacency(dataset->network());
  const int64_t in = static_cast<int64_t>(window) * in_channels;
  temporal_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{in, hidden, hidden}, rng);
  ode_w_ = std::make_unique<nn::Linear>(hidden, hidden, rng, /*bias=*/false);
  readout_ = std::make_unique<nn::Linear>(hidden, out_dim, rng);
  RegisterModule("temporal", temporal_.get());
  RegisterModule("ode_w", ode_w_.get());
  RegisterModule("readout", readout_.get());
}

Tensor StgOde::Forward(const Tensor& window_input) {
  Tensor h = temporal_->Forward(window_input);
  // Euler integration of dH/dt = tanh(A H W) - H (restart-regularized).
  for (int step = 0; step < euler_steps_; ++step) {
    Tensor flow =
        nn::Sub(nn::Tanh(ode_w_->Forward(nn::MatMul(adj_, h))), h);
    h = nn::Add(h, nn::Scale(flow, dt_));
  }
  return readout_->Forward(h);
}

}  // namespace bigcity::baselines
