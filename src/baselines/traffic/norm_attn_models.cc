#include "baselines/traffic/norm_attn_models.h"

#include <cmath>

#include "nn/ops.h"

namespace bigcity::baselines {

using nn::Tensor;

// --- ST-Norm --------------------------------------------------------------------

StNorm::StNorm(const data::CityDataset* dataset, int window, int in_channels,
               int out_dim, int64_t hidden, util::Rng* rng)
    : TrafficModel(dataset->network().num_segments(), window, in_channels,
                   out_dim) {
  // Input = raw window + spatially-normalized + temporally-normalized.
  const int64_t in = static_cast<int64_t>(window) * in_channels * 3;
  body_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{in, hidden, hidden, out_dim}, rng);
  RegisterModule("body", body_.get());
}

Tensor StNorm::Forward(const Tensor& window_input) {
  const int64_t rows = window_input.shape()[0];
  const int64_t cols = window_input.shape()[1];
  const auto& values = window_input.data();

  // Spatial normalization: z-score each column (time-channel) across
  // segments. Computed on raw values (no gradient through statistics),
  // matching the normalization-as-feature design.
  std::vector<float> spatial(values.size());
  for (int64_t c = 0; c < cols; ++c) {
    double mean = 0;
    for (int64_t r = 0; r < rows; ++r) mean += values[r * cols + c];
    mean /= static_cast<double>(rows);
    double var = 0;
    for (int64_t r = 0; r < rows; ++r) {
      const double d = values[r * cols + c] - mean;
      var += d * d;
    }
    const double stddev = std::sqrt(var / rows + 1e-6);
    for (int64_t r = 0; r < rows; ++r) {
      spatial[static_cast<size_t>(r * cols + c)] =
          static_cast<float>((values[r * cols + c] - mean) / stddev);
    }
  }
  // Temporal normalization: z-score each row (segment) across the window.
  std::vector<float> temporal(values.size());
  for (int64_t r = 0; r < rows; ++r) {
    double mean = 0;
    for (int64_t c = 0; c < cols; ++c) mean += values[r * cols + c];
    mean /= static_cast<double>(cols);
    double var = 0;
    for (int64_t c = 0; c < cols; ++c) {
      const double d = values[r * cols + c] - mean;
      var += d * d;
    }
    const double stddev = std::sqrt(var / cols + 1e-6);
    for (int64_t c = 0; c < cols; ++c) {
      temporal[static_cast<size_t>(r * cols + c)] =
          static_cast<float>((values[r * cols + c] - mean) / stddev);
    }
  }
  Tensor spatial_t = Tensor::FromData({rows, cols}, std::move(spatial));
  Tensor temporal_t = Tensor::FromData({rows, cols}, std::move(temporal));
  return body_->Forward(
      nn::Concat({window_input, spatial_t, temporal_t}, 1));
}

// --- SSTBAN --------------------------------------------------------------------

Sstban::Sstban(const data::CityDataset* dataset, int window, int in_channels,
               int out_dim, int64_t hidden, util::Rng* rng)
    : TrafficModel(dataset->network().num_segments(), window, in_channels,
                   out_dim),
      hidden_(hidden) {
  constexpr int64_t kBottleneckTokens = 8;
  bottleneck_ = RegisterParameter(
      "bottleneck",
      Tensor::Randn({kBottleneckTokens, hidden}, rng, 0.1f, true));
  const int64_t in = static_cast<int64_t>(window) * in_channels;
  input_proj_ = std::make_unique<nn::Linear>(in, hidden, rng);
  to_bottleneck_q_ = std::make_unique<nn::Linear>(hidden, hidden, rng);
  from_bottleneck_q_ = std::make_unique<nn::Linear>(hidden, hidden, rng);
  readout_ = std::make_unique<nn::Linear>(hidden, out_dim, rng);
  RegisterModule("input_proj", input_proj_.get());
  RegisterModule("to_bottleneck_q", to_bottleneck_q_.get());
  RegisterModule("from_bottleneck_q", from_bottleneck_q_.get());
  RegisterModule("readout", readout_.get());
}

Tensor Sstban::Forward(const Tensor& window_input) {
  const float inv = 1.0f / std::sqrt(static_cast<float>(hidden_));
  Tensor h = nn::Relu(input_proj_->Forward(window_input));  // [I, H]
  // Bottleneck gathers: B tokens attend over segments.
  Tensor gather_scores = nn::Scale(
      nn::MatMul(to_bottleneck_q_->Forward(bottleneck_), nn::Transpose(h)),
      inv);
  Tensor bottleneck_state =
      nn::MatMul(nn::Softmax(gather_scores), h);  // [B, H]
  // Segments read back: attention from segments over bottleneck tokens.
  Tensor read_scores = nn::Scale(
      nn::MatMul(from_bottleneck_q_->Forward(h),
                 nn::Transpose(bottleneck_state)),
      inv);
  Tensor update = nn::MatMul(nn::Softmax(read_scores), bottleneck_state);
  return readout_->Forward(nn::Add(h, update));
}

}  // namespace bigcity::baselines
