#ifndef BIGCITY_BASELINES_TRAFFIC_NORM_ATTN_MODELS_H_
#define BIGCITY_BASELINES_TRAFFIC_NORM_ATTN_MODELS_H_

#include <memory>

#include "baselines/traffic/traffic_model.h"
#include "nn/layers.h"

namespace bigcity::baselines {

/// ST-Norm (Deng et al., 2021): spatial normalization (per slice, across
/// segments) and temporal normalization (per segment, across the window)
/// refine the raw inputs into de-trended channels consumed by an MLP.
class StNorm : public TrafficModel {
 public:
  StNorm(const data::CityDataset* dataset, int window, int in_channels,
         int out_dim, int64_t hidden, util::Rng* rng);

  std::string name() const override { return "ST-Norm"; }
  nn::Tensor Forward(const nn::Tensor& window_input) override;

 private:
  std::unique_ptr<nn::Mlp> body_;
};

/// SSTBAN (Guo et al., 2023): self-supervised spatial-temporal bottleneck
/// attention — segments attend through a small set of learned bottleneck
/// tokens (cheap global mixing) before a temporal readout.
class Sstban : public TrafficModel {
 public:
  Sstban(const data::CityDataset* dataset, int window, int in_channels,
         int out_dim, int64_t hidden, util::Rng* rng);

  std::string name() const override { return "SSTBAN"; }
  nn::Tensor Forward(const nn::Tensor& window_input) override;

 private:
  int64_t hidden_;
  nn::Tensor bottleneck_;  // [B, hidden] learned tokens.
  std::unique_ptr<nn::Linear> input_proj_;
  std::unique_ptr<nn::Linear> to_bottleneck_q_;
  std::unique_ptr<nn::Linear> from_bottleneck_q_;
  std::unique_ptr<nn::Linear> readout_;
};

}  // namespace bigcity::baselines

#endif  // BIGCITY_BASELINES_TRAFFIC_NORM_ATTN_MODELS_H_
