#ifndef BIGCITY_BASELINES_TRAFFIC_GRAPH_TCN_MODELS_H_
#define BIGCITY_BASELINES_TRAFFIC_GRAPH_TCN_MODELS_H_

#include <memory>

#include "baselines/traffic/traffic_model.h"
#include "nn/layers.h"

namespace bigcity::baselines {

/// Graph WaveNet (Wu et al., 2019): gated temporal convolutions over the
/// window plus graph convolution with a LEARNED adaptive adjacency
/// A = softmax(relu(E1 E2^T)) alongside the physical one.
class GraphWaveNet : public TrafficModel {
 public:
  GraphWaveNet(const data::CityDataset* dataset, int window, int in_channels,
               int out_dim, int64_t hidden, util::Rng* rng);

  std::string name() const override { return "GWNET"; }
  nn::Tensor Forward(const nn::Tensor& window_input) override;

 private:
  nn::Tensor AdaptiveAdjacency() const;

  nn::Tensor adj_;
  nn::Tensor node_emb1_, node_emb2_;  // [I, r] each.
  std::unique_ptr<nn::Linear> tcn_filter_, tcn_gate_;
  std::unique_ptr<nn::Linear> graph_w_, adaptive_w_;
  std::unique_ptr<nn::Linear> readout_;
};

/// MTGNN (Wu et al., 2020): uni-directional learned graph with mix-hop
/// propagation (beta-weighted residual of multi-hop graph convolutions)
/// plus a temporal MLP over the window.
class Mtgnn : public TrafficModel {
 public:
  Mtgnn(const data::CityDataset* dataset, int window, int in_channels,
        int out_dim, int64_t hidden, util::Rng* rng);

  std::string name() const override { return "MTGNN"; }
  nn::Tensor Forward(const nn::Tensor& window_input) override;

 private:
  nn::Tensor LearnedAdjacency() const;

  nn::Tensor node_emb1_, node_emb2_;
  std::unique_ptr<nn::Mlp> temporal_;
  std::unique_ptr<nn::Linear> hop1_, hop2_;
  std::unique_ptr<nn::Linear> readout_;
  float beta_ = 0.6f;
};

/// STGODE (Fang et al., 2021): a continuous graph ODE — Euler-integrated
/// residual graph convolutions H <- H + dt * (A H W - H) capture deep
/// multi-hop propagation without over-smoothing; temporal MLP front-end.
class StgOde : public TrafficModel {
 public:
  StgOde(const data::CityDataset* dataset, int window, int in_channels,
         int out_dim, int64_t hidden, util::Rng* rng);

  std::string name() const override { return "STGODE"; }
  nn::Tensor Forward(const nn::Tensor& window_input) override;

 private:
  nn::Tensor adj_;
  std::unique_ptr<nn::Mlp> temporal_;
  std::unique_ptr<nn::Linear> ode_w_;
  std::unique_ptr<nn::Linear> readout_;
  int euler_steps_ = 4;
  float dt_ = 0.25f;
};

}  // namespace bigcity::baselines

#endif  // BIGCITY_BASELINES_TRAFFIC_GRAPH_TCN_MODELS_H_
