#ifndef BIGCITY_BASELINES_TRAFFIC_TRAFFIC_MODEL_H_
#define BIGCITY_BASELINES_TRAFFIC_TRAFFIC_MODEL_H_

#include <string>

#include "data/dataset.h"
#include "nn/module.h"
#include "nn/tensor.h"

namespace bigcity::baselines {

/// Base class for the seven traffic-state baselines (Table V). Models map a
/// windowed input [I, window * in_channels] (all segments jointly) to
/// [I, out_dim]; the harness decides what the output means (h-step
/// prediction or full-window imputation) and builds the inputs.
class TrafficModel : public nn::Module {
 public:
  TrafficModel(int num_segments, int window, int in_channels, int out_dim)
      : num_segments_(num_segments), window_(window),
        in_channels_(in_channels), out_dim_(out_dim) {}
  ~TrafficModel() override = default;

  virtual std::string name() const = 0;

  /// window_input [I, window * in_channels] -> [I, out_dim].
  virtual nn::Tensor Forward(const nn::Tensor& window_input) = 0;

  int num_segments() const { return num_segments_; }
  int window() const { return window_; }
  int in_channels() const { return in_channels_; }
  int out_dim() const { return out_dim_; }

 protected:
  int num_segments_;
  int window_;
  int in_channels_;
  int out_dim_;
};

/// Dense row-normalized adjacency of the segment graph (with self loops),
/// [I, I]; constant (no gradient).
nn::Tensor NormalizedAdjacency(const roadnet::RoadNetwork& network);

/// Reverse-direction normalized adjacency (for diffusion convolutions).
nn::Tensor NormalizedReverseAdjacency(const roadnet::RoadNetwork& network);

/// Trajectory-informed adjacency (TrGNN): transition frequencies observed
/// in the training trips, row-normalized with self loops.
nn::Tensor TransitionAdjacency(const data::CityDataset& dataset);

}  // namespace bigcity::baselines

#endif  // BIGCITY_BASELINES_TRAFFIC_TRAFFIC_MODEL_H_
