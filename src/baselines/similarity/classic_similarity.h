#ifndef BIGCITY_BASELINES_SIMILARITY_CLASSIC_SIMILARITY_H_
#define BIGCITY_BASELINES_SIMILARITY_CLASSIC_SIMILARITY_H_

#include <string>
#include <vector>

#include "data/trajectory.h"
#include "roadnet/road_network.h"

namespace bigcity::baselines {

/// 2-D point sequence of a trajectory (segment midpoints, meters).
std::vector<std::pair<float, float>> ToPointSequence(
    const roadnet::RoadNetwork& network, const data::Trajectory& trajectory);

// Classic trajectory distances used in the scalability study (Fig. 6).
// All are O(|a| * |b|) dynamic programs over point sequences; LOWER is more
// similar for DTW / Frechet / EDR, HIGHER is more similar for LCSS.

/// Dynamic Time Warping (Yi et al., 1998) with Euclidean ground distance.
double DtwDistance(const std::vector<std::pair<float, float>>& a,
                   const std::vector<std::pair<float, float>>& b);

/// Longest Common SubSequence similarity (Vlachos et al., 2002):
/// match when points are within `epsilon` meters; returns |LCSS| /
/// min(|a|, |b|) in [0, 1].
double LcssSimilarity(const std::vector<std::pair<float, float>>& a,
                      const std::vector<std::pair<float, float>>& b,
                      float epsilon_m = 300.0f);

/// Discrete Frechet distance (Alt & Godau, 1995).
double FrechetDistance(const std::vector<std::pair<float, float>>& a,
                       const std::vector<std::pair<float, float>>& b);

/// Edit Distance on Real sequence (Chen et al., 2005) with threshold
/// `epsilon` meters; returns the (integer) edit cost.
double EdrDistance(const std::vector<std::pair<float, float>>& a,
                   const std::vector<std::pair<float, float>>& b,
                   float epsilon_m = 300.0f);

/// Named wrapper so benches can sweep over the four measures uniformly.
/// Returns a SIMILARITY (higher = more similar) for every measure.
struct ClassicMeasure {
  std::string name;
  double (*similarity)(const std::vector<std::pair<float, float>>&,
                       const std::vector<std::pair<float, float>>&);
};
const std::vector<ClassicMeasure>& AllClassicMeasures();

}  // namespace bigcity::baselines

#endif  // BIGCITY_BASELINES_SIMILARITY_CLASSIC_SIMILARITY_H_
