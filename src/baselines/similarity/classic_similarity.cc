#include "baselines/similarity/classic_similarity.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bigcity::baselines {

namespace {

using Point = std::pair<float, float>;

double Euclidean(const Point& p, const Point& q) {
  const double dx = p.first - q.first;
  const double dy = p.second - q.second;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

std::vector<Point> ToPointSequence(const roadnet::RoadNetwork& network,
                                   const data::Trajectory& trajectory) {
  std::vector<Point> points;
  points.reserve(trajectory.points.size());
  for (const auto& sample : trajectory.points) {
    const auto& segment = network.segment(sample.segment);
    points.emplace_back(segment.mid_x, segment.mid_y);
  }
  return points;
}

double DtwDistance(const std::vector<Point>& a, const std::vector<Point>& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return std::numeric_limits<double>::infinity();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> previous(m + 1, kInf), current(m + 1, kInf);
  previous[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    current[0] = kInf;
    for (size_t j = 1; j <= m; ++j) {
      const double cost = Euclidean(a[i - 1], b[j - 1]);
      current[j] = cost + std::min({previous[j], current[j - 1],
                                    previous[j - 1]});
    }
    std::swap(previous, current);
  }
  return previous[m];
}

double LcssSimilarity(const std::vector<Point>& a,
                      const std::vector<Point>& b, float epsilon_m) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return 0.0;
  std::vector<int> previous(m + 1, 0), current(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (Euclidean(a[i - 1], b[j - 1]) <= epsilon_m) {
        current[j] = previous[j - 1] + 1;
      } else {
        current[j] = std::max(previous[j], current[j - 1]);
      }
    }
    std::swap(previous, current);
  }
  return static_cast<double>(previous[m]) /
         static_cast<double>(std::min(n, m));
}

double FrechetDistance(const std::vector<Point>& a,
                       const std::vector<Point>& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(n, std::vector<double>(m, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double d = Euclidean(a[i], b[j]);
      if (i == 0 && j == 0) {
        dp[i][j] = d;
      } else if (i == 0) {
        dp[i][j] = std::max(dp[i][j - 1], d);
      } else if (j == 0) {
        dp[i][j] = std::max(dp[i - 1][j], d);
      } else {
        dp[i][j] = std::max(
            std::min({dp[i - 1][j], dp[i][j - 1], dp[i - 1][j - 1]}), d);
      }
    }
  }
  return dp[n - 1][m - 1];
}

double EdrDistance(const std::vector<Point>& a, const std::vector<Point>& b,
                   float epsilon_m) {
  const size_t n = a.size(), m = b.size();
  std::vector<int> previous(m + 1), current(m + 1);
  for (size_t j = 0; j <= m; ++j) previous[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    current[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int subcost =
          Euclidean(a[i - 1], b[j - 1]) <= epsilon_m ? 0 : 1;
      current[j] = std::min({previous[j - 1] + subcost, previous[j] + 1,
                             current[j - 1] + 1});
    }
    std::swap(previous, current);
  }
  return previous[m];
}

namespace {
double DtwSimilarity(const std::vector<Point>& a,
                     const std::vector<Point>& b) {
  return -DtwDistance(a, b);
}
double LcssSim(const std::vector<Point>& a, const std::vector<Point>& b) {
  return LcssSimilarity(a, b);
}
double FrechetSimilarity(const std::vector<Point>& a,
                         const std::vector<Point>& b) {
  return -FrechetDistance(a, b);
}
double EdrSimilarity(const std::vector<Point>& a,
                     const std::vector<Point>& b) {
  return -EdrDistance(a, b);
}
}  // namespace

const std::vector<ClassicMeasure>& AllClassicMeasures() {
  static const std::vector<ClassicMeasure>* kMeasures =
      new std::vector<ClassicMeasure>{
          {"DTW", &DtwSimilarity},
          {"LCSS", &LcssSim},
          {"Frechet", &FrechetSimilarity},
          {"EDR", &EdrSimilarity},
      };
  return *kMeasures;
}

}  // namespace bigcity::baselines
