#ifndef BIGCITY_BASELINES_TRAJ_ATTN_ENCODERS_H_
#define BIGCITY_BASELINES_TRAJ_ATTN_ENCODERS_H_

#include <memory>

#include "baselines/traj/traj_encoder.h"
#include "nn/transformer.h"

namespace bigcity::baselines {

/// Toast (Chen et al., 2021): skip-gram "road2vec" pre-training of the
/// segment embeddings on random walks over the road network, followed by a
/// bidirectional transformer with masked-segment recovery on trajectories.
class Toast : public TrajEncoder {
 public:
  Toast(const data::CityDataset* dataset, int64_t dim, util::Rng* rng);

  std::string name() const override { return "Toast"; }
  nn::Tensor SequenceRepresentations(
      const data::Trajectory& trajectory) override;
  void Pretrain(const std::vector<data::Trajectory>& trips,
                int epochs) override;

 private:
  void SkipGramPretrain(int walks, int walk_length);

  std::unique_ptr<nn::Transformer> transformer_;
  std::unique_ptr<nn::Linear> mlm_head_;
  nn::Tensor positional_;
  nn::Tensor mask_vector_;
};

/// JCLRNT (Mao et al., 2022): jointly contrastive learning — InfoNCE
/// between two stochastic augmentations (crop / mask) of the same
/// trajectory against in-batch negatives, over a transformer encoder.
class Jclrnt : public TrajEncoder {
 public:
  Jclrnt(const data::CityDataset* dataset, int64_t dim, util::Rng* rng);

  std::string name() const override { return "JCLRNT"; }
  nn::Tensor SequenceRepresentations(
      const data::Trajectory& trajectory) override;
  void Pretrain(const std::vector<data::Trajectory>& trips,
                int epochs) override;

 private:
  data::Trajectory Augment(const data::Trajectory& trajectory);

  std::unique_ptr<nn::Transformer> transformer_;
  std::unique_ptr<nn::Linear> projection_;
  nn::Tensor positional_;
};

}  // namespace bigcity::baselines

#endif  // BIGCITY_BASELINES_TRAJ_ATTN_ENCODERS_H_
