#ifndef BIGCITY_BASELINES_TRAJ_RNN_ENCODERS_H_
#define BIGCITY_BASELINES_TRAJ_RNN_ENCODERS_H_

#include <memory>

#include "baselines/traj/traj_encoder.h"

namespace bigcity::baselines {

/// Trajectory2vec (Yao et al., 2017): a GRU sequence autoencoder; the
/// pre-training objective reconstructs the input feature sequence from the
/// hidden states (MSE).
class Trajectory2Vec : public TrajEncoder {
 public:
  Trajectory2Vec(const data::CityDataset* dataset, int64_t dim,
                 util::Rng* rng);

  std::string name() const override { return "Trajectory2vec"; }
  nn::Tensor SequenceRepresentations(
      const data::Trajectory& trajectory) override;
  void Pretrain(const std::vector<data::Trajectory>& trips,
                int epochs) override;

 private:
  std::unique_ptr<nn::Gru> encoder_;
  std::unique_ptr<nn::Linear> reconstructor_;
};

/// T2vec (Li et al., 2018): a denoising GRU — the encoder reads a
/// downsampled trajectory, and training predicts the segment ids of the
/// FULL trajectory (cross-entropy), making representations robust to
/// low sampling rates.
class T2Vec : public TrajEncoder {
 public:
  T2Vec(const data::CityDataset* dataset, int64_t dim, util::Rng* rng);

  std::string name() const override { return "T2vec"; }
  nn::Tensor SequenceRepresentations(
      const data::Trajectory& trajectory) override;
  void Pretrain(const std::vector<data::Trajectory>& trips,
                int epochs) override;

 private:
  std::unique_ptr<nn::Gru> encoder_;
  std::unique_ptr<nn::Linear> segment_decoder_;
};

/// TremBR (Fu & Lee, 2020): a GRU over segment+time inputs trained with
/// next-segment prediction plus travel-time reconstruction, capturing
/// temporal regularities.
class TremBr : public TrajEncoder {
 public:
  TremBr(const data::CityDataset* dataset, int64_t dim, util::Rng* rng);

  std::string name() const override { return "TremBR"; }
  nn::Tensor SequenceRepresentations(
      const data::Trajectory& trajectory) override;
  void Pretrain(const std::vector<data::Trajectory>& trips,
                int epochs) override;

 private:
  std::unique_ptr<nn::Gru> encoder_;
  std::unique_ptr<nn::Linear> next_segment_head_;
  std::unique_ptr<nn::Linear> time_head_;
};

}  // namespace bigcity::baselines

#endif  // BIGCITY_BASELINES_TRAJ_RNN_ENCODERS_H_
