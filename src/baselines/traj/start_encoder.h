#ifndef BIGCITY_BASELINES_TRAJ_START_ENCODER_H_
#define BIGCITY_BASELINES_TRAJ_START_ENCODER_H_

#include <memory>

#include "baselines/traj/traj_encoder.h"
#include "nn/gat.h"
#include "nn/transformer.h"

namespace bigcity::baselines {

/// START (Jiang et al., 2023): the strongest trajectory-representation
/// baseline. Combines (a) GAT-refined segment embeddings over the road
/// network, (b) a time-aware transformer, and (c) joint masked-recovery +
/// contrastive pre-training with temporal-regularity augmentation.
class StartEncoder : public TrajEncoder {
 public:
  StartEncoder(const data::CityDataset* dataset, int64_t dim,
               util::Rng* rng);

  std::string name() const override { return "START"; }
  nn::Tensor SequenceRepresentations(
      const data::Trajectory& trajectory) override;
  void Pretrain(const std::vector<data::Trajectory>& trips,
                int epochs) override;

 private:
  /// GAT-refined segment embedding matrix, cached per optimizer step.
  nn::Tensor RefinedSegmentTable();

  nn::GraphEdges graph_;
  std::unique_ptr<nn::GatLayer> gat_;
  std::unique_ptr<nn::Transformer> transformer_;
  std::unique_ptr<nn::Linear> mlm_head_;
  std::unique_ptr<nn::Linear> projection_;
  nn::Tensor positional_;
  nn::Tensor mask_vector_;
  nn::Tensor cached_table_;
};

}  // namespace bigcity::baselines

#endif  // BIGCITY_BASELINES_TRAJ_START_ENCODER_H_
