#include "baselines/traj/traj_encoder.h"

#include <algorithm>

#include "data/st_unit.h"
#include "nn/ops.h"
#include "util/check.h"

namespace bigcity::baselines {

TrajEncoder::TrajEncoder(const data::CityDataset* dataset, int64_t dim,
                         util::Rng* rng)
    : dataset_(dataset), dim_(dim), rng_(rng->engine()()) {
  BIGCITY_CHECK(dataset != nullptr);
  segment_embedding_ = std::make_unique<nn::EmbeddingTable>(
      dataset->network().num_segments(), dim, &rng_);
  time_projection_ = std::make_unique<nn::Linear>(
      data::kTimeFeatureDim + 1, dim, &rng_);
  RegisterModule("segment_embedding", segment_embedding_.get());
  RegisterModule("time_projection", time_projection_.get());
}

nn::Tensor TrajEncoder::Embed(const data::Trajectory& trajectory) {
  return nn::MeanRows(SequenceRepresentations(trajectory));
}

nn::Tensor TrajEncoder::InputFeatures(
    const data::Trajectory& trajectory) const {
  const int length = trajectory.length();
  BIGCITY_CHECK_GT(length, 0);
  nn::Tensor segments = segment_embedding_->Forward(Segments(trajectory));
  std::vector<float> time_data(static_cast<size_t>(length) *
                               (data::kTimeFeatureDim + 1));
  for (int l = 0; l < length; ++l) {
    float* row =
        time_data.data() + static_cast<size_t>(l) * (data::kTimeFeatureDim + 1);
    auto features = data::TimeFeatures(
        trajectory.points[static_cast<size_t>(l)].timestamp);
    std::copy(features.begin(), features.end(), row);
    const double delta =
        l == 0 ? 0.0
               : trajectory.points[static_cast<size_t>(l)].timestamp -
                     trajectory.points[static_cast<size_t>(l - 1)].timestamp;
    row[data::kTimeFeatureDim] = data::DeltaFeature(delta);
  }
  nn::Tensor time = nn::Tensor::FromData(
      {length, data::kTimeFeatureDim + 1}, std::move(time_data));
  return nn::Add(segments, time_projection_->Forward(time));
}

std::vector<int> TrajEncoder::Segments(const data::Trajectory& trajectory) {
  std::vector<int> segments;
  segments.reserve(trajectory.points.size());
  for (const auto& point : trajectory.points) {
    segments.push_back(point.segment);
  }
  return segments;
}

data::Trajectory ClipForBaseline(const data::Trajectory& trajectory,
                                 int max_len) {
  if (trajectory.length() <= max_len) return trajectory;
  data::Trajectory clipped;
  clipped.user_id = trajectory.user_id;
  clipped.pattern_label = trajectory.pattern_label;
  const double step = static_cast<double>(trajectory.length() - 1) /
                      static_cast<double>(max_len - 1);
  int previous = -1;
  for (int k = 0; k < max_len; ++k) {
    int index = std::clamp(static_cast<int>(k * step + 0.5), 0,
                           trajectory.length() - 1);
    if (index == previous) continue;
    previous = index;
    clipped.points.push_back(trajectory.points[static_cast<size_t>(index)]);
  }
  return clipped;
}

}  // namespace bigcity::baselines
