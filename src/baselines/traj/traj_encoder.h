#ifndef BIGCITY_BASELINES_TRAJ_TRAJ_ENCODER_H_
#define BIGCITY_BASELINES_TRAJ_TRAJ_ENCODER_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/trajectory.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "util/rng.h"

namespace bigcity::baselines {

/// Base class for the seven trajectory-representation baselines (Table III).
/// Each derived model implements a distinct self-supervised pre-training
/// objective and sequence encoder, but shares the input featurization
/// (segment embedding + projected time features) so differences between
/// baselines reflect architecture, not feature engineering.
class TrajEncoder : public nn::Module {
 public:
  TrajEncoder(const data::CityDataset* dataset, int64_t dim, util::Rng* rng);
  ~TrajEncoder() override = default;

  virtual std::string name() const = 0;

  /// Per-position representations [L, dim] for a trajectory.
  virtual nn::Tensor SequenceRepresentations(
      const data::Trajectory& trajectory) = 0;

  /// One round of the model's self-supervised pre-training objective.
  virtual void Pretrain(const std::vector<data::Trajectory>& trips,
                        int epochs) = 0;

  /// Mean-pooled trajectory embedding [1, dim].
  nn::Tensor Embed(const data::Trajectory& trajectory);

  int64_t dim() const { return dim_; }
  const data::CityDataset* dataset() const { return dataset_; }

 protected:
  /// Input features per position: segment embedding + time projection,
  /// [L, dim].
  nn::Tensor InputFeatures(const data::Trajectory& trajectory) const;

  /// Segment ids of a trajectory.
  static std::vector<int> Segments(const data::Trajectory& trajectory);

  const data::CityDataset* dataset_;
  int64_t dim_;
  util::Rng rng_;
  std::unique_ptr<nn::EmbeddingTable> segment_embedding_;
  std::unique_ptr<nn::Linear> time_projection_;
};

/// Shared helpers for pre-training objectives.

/// Trajectories clipped to a max length with endpoints kept.
data::Trajectory ClipForBaseline(const data::Trajectory& trajectory,
                                 int max_len);

}  // namespace bigcity::baselines

#endif  // BIGCITY_BASELINES_TRAJ_TRAJ_ENCODER_H_
