#include "baselines/traj/start_encoder.h"

#include <algorithm>
#include <cmath>

#include "data/masking.h"
#include "data/st_unit.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace bigcity::baselines {

namespace {
constexpr int kMaxLen = 24;
constexpr float kLr = 2e-3f;
}  // namespace

StartEncoder::StartEncoder(const data::CityDataset* dataset, int64_t dim,
                           util::Rng* rng)
    : TrajEncoder(dataset, dim, rng) {
  graph_ = dataset->network().ToGraphEdges();
  gat_ = std::make_unique<nn::GatLayer>(dim, dim, 2, &rng_);
  transformer_ = std::make_unique<nn::Transformer>(dim, 2, 2, &rng_,
                                                   /*causal=*/false);
  mlm_head_ = std::make_unique<nn::Linear>(
      dim, dataset->network().num_segments(), &rng_);
  projection_ = std::make_unique<nn::Linear>(dim, dim, &rng_);
  RegisterModule("gat", gat_.get());
  RegisterModule("transformer", transformer_.get());
  RegisterModule("mlm_head", mlm_head_.get());
  RegisterModule("projection", projection_.get());
  positional_ = RegisterParameter(
      "positional",
      nn::Tensor::Randn({kMaxLen + 8, dim}, &rng_, 0.02f, true));
  mask_vector_ = RegisterParameter(
      "mask_vector", nn::Tensor::Randn({1, dim}, &rng_, 0.02f, true));
}

nn::Tensor StartEncoder::RefinedSegmentTable() {
  if (!cached_table_.is_valid()) {
    cached_table_ = gat_->Forward(segment_embedding_->table(), graph_);
  }
  return cached_table_;
}

nn::Tensor StartEncoder::SequenceRepresentations(
    const data::Trajectory& trajectory) {
  // Time-aware inputs: GAT-refined segment vectors + time projection.
  cached_table_ = nn::Tensor();  // Re-derive under the current parameters.
  nn::Tensor table = RefinedSegmentTable();
  nn::Tensor segments = nn::Rows(table, Segments(trajectory));
  const int length = trajectory.length();
  std::vector<float> time_data(static_cast<size_t>(length) *
                               (data::kTimeFeatureDim + 1));
  for (int l = 0; l < length; ++l) {
    float* row = time_data.data() +
                 static_cast<size_t>(l) * (data::kTimeFeatureDim + 1);
    auto features = data::TimeFeatures(
        trajectory.points[static_cast<size_t>(l)].timestamp);
    std::copy(features.begin(), features.end(), row);
    const double delta =
        l == 0 ? 0.0
               : trajectory.points[static_cast<size_t>(l)].timestamp -
                     trajectory.points[static_cast<size_t>(l - 1)].timestamp;
    row[data::kTimeFeatureDim] = data::DeltaFeature(delta);
  }
  nn::Tensor time = nn::Tensor::FromData(
      {length, data::kTimeFeatureDim + 1}, std::move(time_data));
  nn::Tensor inputs = nn::Add(segments, time_projection_->Forward(time));
  nn::Tensor positions = nn::SliceRows(positional_, 0, inputs.shape()[0]);
  return transformer_->Forward(nn::Add(inputs, positions));
}

void StartEncoder::Pretrain(const std::vector<data::Trajectory>& trips,
                            int epochs) {
  constexpr int kBatch = 6;
  constexpr float kTemperature = 0.2f;
  nn::Adam optimizer(TrainableParameters(), kLr);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (size_t begin = 0; begin + kBatch <= trips.size();
         begin += kBatch) {
      optimizer.ZeroGrad();
      nn::Tensor loss;
      std::vector<nn::Tensor> anchors, positives;
      for (int b = 0; b < kBatch; ++b) {
        const auto& raw = trips[begin + static_cast<size_t>(b)];
        if (raw.length() < 5) continue;
        data::Trajectory trip = ClipForBaseline(raw, kMaxLen);

        // Masked recovery branch.
        const int k = std::max(1, trip.length() / 5);
        auto masked = data::RandomMaskIndices(trip.length(), k, &rng_);
        nn::Tensor reps = SequenceRepresentations(trip);
        nn::Tensor logits = mlm_head_->Forward(nn::Rows(reps, masked));
        std::vector<int> targets;
        for (int index : masked) {
          targets.push_back(
              trip.points[static_cast<size_t>(index)].segment);
        }
        nn::Tensor mlm = nn::CrossEntropy(logits, targets);
        loss = loss.is_valid() ? nn::Add(loss, mlm) : mlm;

        // Contrastive branch: temporal shift augmentation (shift all
        // timestamps by up to 15 minutes keeps the route, changes times).
        data::Trajectory shifted = trip;
        const double shift = rng_.Uniform(-900.0, 900.0);
        for (auto& point : shifted.points) point.timestamp += shift;
        anchors.push_back(projection_->Forward(nn::MeanRows(reps)));
        positives.push_back(projection_->Forward(
            nn::MeanRows(SequenceRepresentations(shifted))));
      }
      if (anchors.size() >= 2) {
        nn::Tensor a = nn::Concat(anchors, 0);
        nn::Tensor b = nn::Concat(positives, 0);
        nn::Tensor scores = nn::Scale(nn::MatMul(a, nn::Transpose(b)),
                                      1.0f / kTemperature);
        std::vector<int> diagonal(anchors.size());
        for (size_t i = 0; i < diagonal.size(); ++i) {
          diagonal[i] = static_cast<int>(i);
        }
        nn::Tensor contrastive = nn::CrossEntropy(scores, diagonal);
        loss = loss.is_valid() ? nn::Add(loss, contrastive) : contrastive;
      }
      if (!loss.is_valid()) continue;
      loss.Backward();
      optimizer.Step();
    }
  }
}

}  // namespace bigcity::baselines
