#include "baselines/traj/jgrm_encoder.h"

#include <algorithm>
#include <cmath>

#include "data/masking.h"
#include "data/st_unit.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace bigcity::baselines {

namespace {
constexpr int kMaxLen = 24;
constexpr float kLr = 2e-3f;
}  // namespace

JgrmEncoder::JgrmEncoder(const data::CityDataset* dataset, int64_t dim,
                         util::Rng* rng)
    : TrajEncoder(dataset, dim, rng) {
  route_view_ = std::make_unique<nn::Transformer>(dim, 2, 2, &rng_,
                                                  /*causal=*/false);
  gps_view_ = std::make_unique<nn::Gru>(dim, dim, &rng_);
  gps_input_ = std::make_unique<nn::Linear>(3, dim, &rng_);
  mlm_head_ = std::make_unique<nn::Linear>(
      dim, dataset->network().num_segments(), &rng_);
  RegisterModule("route_view", route_view_.get());
  RegisterModule("gps_view", gps_view_.get());
  RegisterModule("gps_input", gps_input_.get());
  RegisterModule("mlm_head", mlm_head_.get());
  positional_ = RegisterParameter(
      "positional",
      nn::Tensor::Randn({kMaxLen + 8, dim}, &rng_, 0.02f, true));
  for (const auto& segment : dataset->network().segments()) {
    max_x_ = std::max(max_x_, segment.mid_x);
    max_y_ = std::max(max_y_, segment.mid_y);
  }
}

nn::Tensor JgrmEncoder::GpsFeatures(
    const data::Trajectory& trajectory) const {
  const int length = trajectory.length();
  std::vector<float> gps(static_cast<size_t>(length) * 3);
  for (int l = 0; l < length; ++l) {
    const auto& segment = dataset_->network().segment(
        trajectory.points[static_cast<size_t>(l)].segment);
    gps[static_cast<size_t>(l) * 3 + 0] = segment.mid_x / max_x_;
    gps[static_cast<size_t>(l) * 3 + 1] = segment.mid_y / max_y_;
    gps[static_cast<size_t>(l) * 3 + 2] = static_cast<float>(
        std::fmod(trajectory.points[static_cast<size_t>(l)].timestamp,
                  86400.0) /
        86400.0);
  }
  return nn::Tensor::FromData({length, 3}, std::move(gps));
}

nn::Tensor JgrmEncoder::SequenceRepresentations(
    const data::Trajectory& trajectory) {
  nn::Tensor route_inputs = InputFeatures(trajectory);
  nn::Tensor positions =
      nn::SliceRows(positional_, 0, route_inputs.shape()[0]);
  nn::Tensor route = route_view_->Forward(nn::Add(route_inputs, positions));
  nn::Tensor gps =
      gps_view_->Forward(gps_input_->Forward(GpsFeatures(trajectory)));
  return nn::Add(route, gps);  // View fusion.
}

void JgrmEncoder::Pretrain(const std::vector<data::Trajectory>& trips,
                           int epochs) {
  nn::Adam optimizer(TrainableParameters(), kLr);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (const auto& raw : trips) {
      if (raw.length() < 5) continue;
      data::Trajectory trip = ClipForBaseline(raw, kMaxLen);
      const int k = std::max(1, trip.length() / 4);
      auto masked = data::RandomMaskIndices(trip.length(), k, &rng_);
      // Mask the route view's segments (replace by segment 0's embedding
      // absence — here: zero the masked rows after fusion is too easy, so
      // corrupt the trajectory's masked segments with random ones and ask
      // the model to recover the originals from GPS context).
      data::Trajectory corrupted = trip;
      for (int index : masked) {
        corrupted.points[static_cast<size_t>(index)].segment =
            rng_.UniformInt(0, dataset_->network().num_segments() - 1);
      }
      optimizer.ZeroGrad();
      nn::Tensor reps = SequenceRepresentations(corrupted);
      nn::Tensor logits = mlm_head_->Forward(nn::Rows(reps, masked));
      std::vector<int> targets;
      for (int index : masked) {
        targets.push_back(trip.points[static_cast<size_t>(index)].segment);
      }
      nn::CrossEntropy(logits, targets).Backward();
      optimizer.Step();
    }
  }
}

}  // namespace bigcity::baselines
