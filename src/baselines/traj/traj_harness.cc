#include "baselines/traj/traj_harness.h"

#include <algorithm>
#include <cmath>

#include "nn/ops.h"
#include "nn/optim.h"
#include "train/metrics.h"
#include "util/check.h"

namespace bigcity::baselines {

namespace {
constexpr int kMaxLen = 24;

double Cosine(const nn::Tensor& a, const nn::Tensor& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    dot += static_cast<double>(a.data()[i]) * b.data()[i];
    na += static_cast<double>(a.data()[i]) * a.data()[i];
    nb += static_cast<double>(b.data()[i]) * b.data()[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0 ? dot / denom : 0.0;
}

data::Trajectory EveryOther(const data::Trajectory& trip, int parity) {
  data::Trajectory result;
  result.user_id = trip.user_id;
  result.pattern_label = trip.pattern_label;
  for (int l = parity; l < trip.length(); l += 2) {
    result.points.push_back(trip.points[static_cast<size_t>(l)]);
  }
  return result;
}

}  // namespace

TrajTaskHarness::TrajTaskHarness(TrajEncoder* encoder,
                                 TrajHarnessConfig config)
    : encoder_(encoder), config_(config), rng_(config.seed) {
  BIGCITY_CHECK(encoder != nullptr);
}

void TrajTaskHarness::Pretrain() {
  encoder_->Pretrain(TrainTrips(3), config_.pretrain_epochs);
}

std::vector<data::Trajectory> TrajTaskHarness::TrainTrips(int min_len) const {
  std::vector<data::Trajectory> trips;
  for (const auto& trip : encoder_->dataset()->train()) {
    if (trip.length() < min_len) continue;
    trips.push_back(ClipForBaseline(trip, kMaxLen));
    if (static_cast<int>(trips.size()) >= config_.max_train_samples) break;
  }
  return trips;
}

std::vector<data::Trajectory> TrajTaskHarness::TestTrips(int min_len) const {
  std::vector<data::Trajectory> trips;
  for (const auto& trip : encoder_->dataset()->test()) {
    if (trip.length() < min_len) continue;
    trips.push_back(ClipForBaseline(trip, kMaxLen));
    if (static_cast<int>(trips.size()) >= config_.eval.max_samples) break;
  }
  return trips;
}

data::Trajectory TrajTaskHarness::HideTimes(
    const data::Trajectory& trajectory) {
  data::Trajectory hidden = trajectory;
  const double departure = trajectory.points.front().timestamp;
  for (auto& point : hidden.points) point.timestamp = departure;
  return hidden;
}

train::RegressionMetrics TrajTaskHarness::TrainAndEvalTravelTime() {
  nn::Linear head(encoder_->dim(), 1, &rng_);
  auto params = encoder_->TrainableParameters();
  auto head_params = head.Parameters();
  params.insert(params.end(), head_params.begin(), head_params.end());
  nn::Adam optimizer(params, config_.lr);

  auto trips = TrainTrips(4);
  for (int epoch = 0; epoch < config_.task_epochs; ++epoch) {
    for (const auto& trip : trips) {
      optimizer.ZeroGrad();
      nn::Tensor reps =
          encoder_->SequenceRepresentations(HideTimes(trip));
      nn::Tensor context = nn::SliceRows(reps, 0, reps.shape()[0] - 1);
      std::vector<float> deltas;
      for (int l = 1; l < trip.length(); ++l) {
        deltas.push_back(data::MinutesTarget(
            trip.points[static_cast<size_t>(l)].timestamp -
            trip.points[static_cast<size_t>(l - 1)].timestamp));
      }
      const auto count = static_cast<int64_t>(deltas.size());
      nn::Tensor target = nn::Tensor::FromData({count, 1}, std::move(deltas));
      nn::Mse(head.Forward(context), target).Backward();
      optimizer.Step();
    }
  }

  std::vector<double> predictions, targets;
  for (const auto& trip : TestTrips(4)) {
    nn::Tensor reps = encoder_->SequenceRepresentations(HideTimes(trip));
    nn::Tensor context = nn::SliceRows(reps, 0, reps.shape()[0] - 1);
    nn::Tensor deltas = head.Forward(context);
    double minutes = 0;  // Head outputs are minutes per hop.
    for (int l = 0; l < deltas.shape()[0]; ++l) {
      minutes += std::max(0.0f, deltas.at(l, 0));
    }
    predictions.push_back(minutes);
    targets.push_back(trip.duration_seconds() / 60.0);
  }
  train::RegressionMetrics metrics;
  metrics.mae = train::MeanAbsoluteError(predictions, targets);
  metrics.rmse = train::RootMeanSquaredError(predictions, targets);
  metrics.mape = train::MeanAbsolutePercentageError(predictions, targets);
  return metrics;
}

train::RankingMetrics TrajTaskHarness::TrainAndEvalNextHop() {
  const int num_segments = encoder_->dataset()->network().num_segments();
  nn::Linear head(encoder_->dim(), num_segments, &rng_);
  auto params = encoder_->TrainableParameters();
  auto head_params = head.Parameters();
  params.insert(params.end(), head_params.begin(), head_params.end());
  nn::Adam optimizer(params, config_.lr);

  auto trips = TrainTrips(4);
  for (int epoch = 0; epoch < config_.task_epochs; ++epoch) {
    for (const auto& trip : trips) {
      optimizer.ZeroGrad();
      data::Trajectory prefix = trip;
      const int target = prefix.points.back().segment;
      prefix.points.pop_back();
      nn::Tensor reps = encoder_->SequenceRepresentations(prefix);
      nn::Tensor last = nn::SliceRows(reps, reps.shape()[0] - 1,
                                      reps.shape()[0]);
      nn::CrossEntropy(head.Forward(last), {target}).Backward();
      optimizer.Step();
    }
  }

  std::vector<std::vector<int>> ranked;
  std::vector<int> targets;
  for (const auto& trip : TestTrips(4)) {
    data::Trajectory prefix = trip;
    const int target = prefix.points.back().segment;
    prefix.points.pop_back();
    nn::Tensor reps = encoder_->SequenceRepresentations(prefix);
    nn::Tensor last = nn::SliceRows(reps, reps.shape()[0] - 1,
                                    reps.shape()[0]);
    nn::Tensor logits = head.Forward(last);
    ranked.push_back(nn::TopKRow(logits, 0, 5));
    targets.push_back(target);
  }
  train::RankingMetrics metrics;
  std::vector<int> top1;
  for (const auto& r : ranked) top1.push_back(r.empty() ? -1 : r[0]);
  metrics.accuracy = train::Accuracy(top1, targets);
  metrics.mrr5 = train::MrrAtK(ranked, targets, 5);
  metrics.ndcg5 = train::NdcgAtK(ranked, targets, 5);
  return metrics;
}

train::MultiClassMetrics TrajTaskHarness::TrainAndEvalUserClassification() {
  const int num_users = encoder_->dataset()->num_users();
  nn::Linear head(encoder_->dim(), num_users, &rng_);
  auto params = encoder_->TrainableParameters();
  auto head_params = head.Parameters();
  params.insert(params.end(), head_params.begin(), head_params.end());
  nn::Adam optimizer(params, config_.lr);

  auto trips = TrainTrips(4);
  for (int epoch = 0; epoch < config_.task_epochs; ++epoch) {
    for (const auto& trip : trips) {
      optimizer.ZeroGrad();
      nn::Tensor embedding = encoder_->Embed(trip);
      nn::CrossEntropy(head.Forward(embedding), {trip.user_id}).Backward();
      optimizer.Step();
    }
  }

  std::vector<int> predictions, targets;
  for (const auto& trip : TestTrips(4)) {
    nn::Tensor logits = head.Forward(encoder_->Embed(trip));
    predictions.push_back(nn::ArgmaxRows(logits)[0]);
    targets.push_back(trip.user_id);
  }
  train::MultiClassMetrics metrics;
  metrics.micro_f1 = train::MicroF1(predictions, targets, num_users);
  metrics.macro_f1 = train::MacroF1(predictions, targets, num_users);
  metrics.macro_recall = train::MacroRecall(predictions, targets, num_users);
  return metrics;
}

train::BinaryClassMetrics
TrajTaskHarness::TrainAndEvalBinaryClassification() {
  nn::Linear head(encoder_->dim(), 2, &rng_);
  auto params = encoder_->TrainableParameters();
  auto head_params = head.Parameters();
  params.insert(params.end(), head_params.begin(), head_params.end());
  nn::Adam optimizer(params, config_.lr);

  auto trips = TrainTrips(4);
  for (int epoch = 0; epoch < config_.task_epochs; ++epoch) {
    for (const auto& trip : trips) {
      optimizer.ZeroGrad();
      nn::Tensor embedding = encoder_->Embed(trip);
      nn::CrossEntropy(head.Forward(embedding), {trip.pattern_label})
          .Backward();
      optimizer.Step();
    }
  }

  std::vector<int> predictions, targets;
  std::vector<double> scores;
  for (const auto& trip : TestTrips(4)) {
    nn::Tensor probs = nn::Softmax(head.Forward(encoder_->Embed(trip)));
    predictions.push_back(probs.at(0, 1) > probs.at(0, 0) ? 1 : 0);
    scores.push_back(probs.at(0, 1));
    targets.push_back(trip.pattern_label);
  }
  train::BinaryClassMetrics metrics;
  metrics.accuracy = train::Accuracy(predictions, targets);
  metrics.f1 = train::BinaryF1(predictions, targets);
  metrics.auc = train::BinaryAuc(scores, targets);
  return metrics;
}

train::SimilarityMetrics TrajTaskHarness::EvalSimilarity() {
  std::vector<data::Trajectory> queries, database;
  for (const auto& trip : encoder_->dataset()->test()) {
    if (trip.length() < 8) continue;
    data::Trajectory clipped = ClipForBaseline(trip, kMaxLen);
    queries.push_back(EveryOther(clipped, 0));
    database.push_back(EveryOther(clipped, 1));
    if (static_cast<int>(queries.size()) >= config_.eval.max_queries) break;
  }
  train::SimilarityMetrics metrics;
  if (queries.empty()) return metrics;
  std::vector<nn::Tensor> db_embeddings;
  for (const auto& entry : database) {
    db_embeddings.push_back(encoder_->Embed(entry).Detached());
  }
  std::vector<std::vector<int>> ranked;
  std::vector<int> targets;
  for (size_t q = 0; q < queries.size(); ++q) {
    nn::Tensor query_embedding = encoder_->Embed(queries[q]).Detached();
    std::vector<std::pair<double, int>> scored;
    for (size_t d = 0; d < db_embeddings.size(); ++d) {
      scored.emplace_back(Cosine(query_embedding, db_embeddings[d]),
                          static_cast<int>(d));
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<int> order;
    for (const auto& [score, index] : scored) order.push_back(index);
    ranked.push_back(std::move(order));
    targets.push_back(static_cast<int>(q));
  }
  metrics.hr1 = train::HitRateAtK(ranked, targets, 1);
  metrics.hr5 = train::HitRateAtK(ranked, targets, 5);
  metrics.hr10 = train::HitRateAtK(ranked, targets, 10);
  metrics.mean_rank = train::MeanRank(ranked, targets);
  return metrics;
}

}  // namespace bigcity::baselines
