#include "baselines/traj/rnn_encoders.h"

#include "data/masking.h"
#include "data/st_unit.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "util/check.h"

namespace bigcity::baselines {

namespace {
constexpr int kMaxLen = 24;
constexpr float kLr = 2e-3f;
}  // namespace

// --- Trajectory2vec ---------------------------------------------------------

Trajectory2Vec::Trajectory2Vec(const data::CityDataset* dataset, int64_t dim,
                               util::Rng* rng)
    : TrajEncoder(dataset, dim, rng) {
  encoder_ = std::make_unique<nn::Gru>(dim, dim, &rng_);
  reconstructor_ = std::make_unique<nn::Linear>(dim, dim, &rng_);
  RegisterModule("encoder", encoder_.get());
  RegisterModule("reconstructor", reconstructor_.get());
}

nn::Tensor Trajectory2Vec::SequenceRepresentations(
    const data::Trajectory& trajectory) {
  return encoder_->Forward(InputFeatures(trajectory));
}

void Trajectory2Vec::Pretrain(const std::vector<data::Trajectory>& trips,
                              int epochs) {
  nn::Adam optimizer(TrainableParameters(), kLr);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (const auto& raw : trips) {
      if (raw.length() < 3) continue;
      data::Trajectory trip = ClipForBaseline(raw, kMaxLen);
      optimizer.ZeroGrad();
      nn::Tensor inputs = InputFeatures(trip);
      nn::Tensor states = encoder_->Forward(inputs);
      // Autoencoding: reconstruct the (detached) input features.
      nn::Tensor loss = nn::Mse(reconstructor_->Forward(states),
                                inputs.Detached());
      loss.Backward();
      optimizer.Step();
    }
  }
}

// --- T2vec ----------------------------------------------------------------

T2Vec::T2Vec(const data::CityDataset* dataset, int64_t dim, util::Rng* rng)
    : TrajEncoder(dataset, dim, rng) {
  encoder_ = std::make_unique<nn::Gru>(dim, dim, &rng_);
  segment_decoder_ = std::make_unique<nn::Linear>(
      dim, dataset->network().num_segments(), &rng_);
  RegisterModule("encoder", encoder_.get());
  RegisterModule("segment_decoder", segment_decoder_.get());
}

nn::Tensor T2Vec::SequenceRepresentations(
    const data::Trajectory& trajectory) {
  return encoder_->Forward(InputFeatures(trajectory));
}

void T2Vec::Pretrain(const std::vector<data::Trajectory>& trips,
                     int epochs) {
  nn::Adam optimizer(TrainableParameters(), kLr);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (const auto& raw : trips) {
      if (raw.length() < 5) continue;
      data::Trajectory trip = ClipForBaseline(raw, kMaxLen);
      // Denoising: encode a downsampled copy, predict the final-state
      // distribution over ALL original segments (bag-of-segments decode).
      auto kept = data::DownsampleKeepIndices(trip.length(), 0.4, &rng_);
      data::Trajectory sparse;
      for (int index : kept) {
        sparse.points.push_back(trip.points[static_cast<size_t>(index)]);
      }
      optimizer.ZeroGrad();
      nn::Tensor states = encoder_->Forward(InputFeatures(sparse));
      nn::Tensor final_state = nn::SliceRows(states, states.shape()[0] - 1,
                                             states.shape()[0]);
      nn::Tensor logits = segment_decoder_->Forward(final_state);
      // Average CE against every original segment.
      nn::Tensor loss;
      for (const auto& point : trip.points) {
        nn::Tensor ce = nn::CrossEntropy(logits, {point.segment});
        loss = loss.is_valid() ? nn::Add(loss, ce) : ce;
      }
      loss = nn::Scale(loss, 1.0f / static_cast<float>(trip.length()));
      loss.Backward();
      optimizer.Step();
    }
  }
}

// --- TremBR ------------------------------------------------------------------

TremBr::TremBr(const data::CityDataset* dataset, int64_t dim, util::Rng* rng)
    : TrajEncoder(dataset, dim, rng) {
  encoder_ = std::make_unique<nn::Gru>(dim, dim, &rng_);
  next_segment_head_ = std::make_unique<nn::Linear>(
      dim, dataset->network().num_segments(), &rng_);
  time_head_ = std::make_unique<nn::Linear>(dim, 1, &rng_);
  RegisterModule("encoder", encoder_.get());
  RegisterModule("next_segment_head", next_segment_head_.get());
  RegisterModule("time_head", time_head_.get());
}

nn::Tensor TremBr::SequenceRepresentations(
    const data::Trajectory& trajectory) {
  return encoder_->Forward(InputFeatures(trajectory));
}

void TremBr::Pretrain(const std::vector<data::Trajectory>& trips,
                      int epochs) {
  nn::Adam optimizer(TrainableParameters(), kLr);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (const auto& raw : trips) {
      if (raw.length() < 3) continue;
      data::Trajectory trip = ClipForBaseline(raw, kMaxLen);
      optimizer.ZeroGrad();
      nn::Tensor states = encoder_->Forward(InputFeatures(trip));
      const int64_t length = states.shape()[0];
      // Predict segment l+1 and delta_{l+1} from state l.
      nn::Tensor context = nn::SliceRows(states, 0, length - 1);
      std::vector<int> next_segments;
      std::vector<float> deltas;
      for (int l = 1; l < trip.length(); ++l) {
        next_segments.push_back(
            trip.points[static_cast<size_t>(l)].segment);
        deltas.push_back(data::MinutesTarget(
            trip.points[static_cast<size_t>(l)].timestamp -
            trip.points[static_cast<size_t>(l - 1)].timestamp));
      }
      nn::Tensor loss = nn::CrossEntropy(
          next_segment_head_->Forward(context), next_segments);
      const auto num_deltas = static_cast<int64_t>(deltas.size());
      nn::Tensor delta_target =
          nn::Tensor::FromData({num_deltas, 1}, std::move(deltas));
      loss = nn::Add(loss, nn::Mse(time_head_->Forward(context),
                                   delta_target));
      loss.Backward();
      optimizer.Step();
    }
  }
}

}  // namespace bigcity::baselines
