#ifndef BIGCITY_BASELINES_TRAJ_TRAJ_HARNESS_H_
#define BIGCITY_BASELINES_TRAJ_TRAJ_HARNESS_H_

#include <memory>

#include "baselines/traj/traj_encoder.h"
#include "nn/layers.h"
#include "train/evaluator.h"

namespace bigcity::baselines {

/// Per-task training/evaluation harness for the trajectory-representation
/// baselines. Mirrors the paper's protocol: each baseline is pre-trained
/// self-supervised once, then FINE-TUNED SEPARATELY per task (encoder +
/// fresh task head), unlike BIGCity which serves all tasks with one
/// parameter set. Evaluation protocols match train::Evaluator exactly.
struct TrajHarnessConfig {
  int pretrain_epochs = 2;
  int task_epochs = 2;
  int max_train_samples = 200;
  float lr = 2e-3f;
  train::EvalConfig eval;
  uint64_t seed = 5;
};

class TrajTaskHarness {
 public:
  TrajTaskHarness(TrajEncoder* encoder, TrajHarnessConfig config);

  /// Runs the encoder's self-supervised pre-training on the train split.
  void Pretrain();

  // Per-task fine-tune + evaluate (test split).
  train::RegressionMetrics TrainAndEvalTravelTime();
  train::RankingMetrics TrainAndEvalNextHop();
  train::MultiClassMetrics TrainAndEvalUserClassification();
  train::BinaryClassMetrics TrainAndEvalBinaryClassification();
  /// Similarity needs no task training (pure representation ranking).
  train::SimilarityMetrics EvalSimilarity();

 private:
  std::vector<data::Trajectory> TrainTrips(int min_len) const;
  std::vector<data::Trajectory> TestTrips(int min_len) const;
  /// Copy of a trajectory with all timestamps collapsed to the departure
  /// time (the TTE protocol's "masked timestamps" for baselines).
  static data::Trajectory HideTimes(const data::Trajectory& trajectory);

  TrajEncoder* encoder_;
  TrajHarnessConfig config_;
  util::Rng rng_;
};

}  // namespace bigcity::baselines

#endif  // BIGCITY_BASELINES_TRAJ_TRAJ_HARNESS_H_
