#include "baselines/traj/attn_encoders.h"

#include <cmath>

#include "data/masking.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "util/check.h"

namespace bigcity::baselines {

namespace {
constexpr int kMaxLen = 24;
constexpr float kLr = 2e-3f;
constexpr int64_t kLayers = 2;
constexpr int64_t kHeads = 2;
}  // namespace

// --- Toast -------------------------------------------------------------------

Toast::Toast(const data::CityDataset* dataset, int64_t dim, util::Rng* rng)
    : TrajEncoder(dataset, dim, rng) {
  transformer_ = std::make_unique<nn::Transformer>(dim, kHeads, kLayers,
                                                   &rng_, /*causal=*/false);
  mlm_head_ = std::make_unique<nn::Linear>(
      dim, dataset->network().num_segments(), &rng_);
  RegisterModule("transformer", transformer_.get());
  RegisterModule("mlm_head", mlm_head_.get());
  positional_ = RegisterParameter(
      "positional",
      nn::Tensor::Randn({kMaxLen + 8, dim}, &rng_, 0.02f, true));
  mask_vector_ = RegisterParameter(
      "mask_vector", nn::Tensor::Randn({1, dim}, &rng_, 0.02f, true));
}

nn::Tensor Toast::SequenceRepresentations(
    const data::Trajectory& trajectory) {
  nn::Tensor inputs = InputFeatures(trajectory);
  nn::Tensor positions = nn::SliceRows(positional_, 0, inputs.shape()[0]);
  return transformer_->Forward(nn::Add(inputs, positions));
}

void Toast::SkipGramPretrain(int walks, int walk_length) {
  // road2vec: embeddings of segments co-occurring on random walks are
  // pulled together against random negatives.
  const auto& network = dataset_->network();
  nn::Adam optimizer(segment_embedding_->Parameters(), kLr);
  for (int w = 0; w < walks; ++w) {
    int current = rng_.UniformInt(0, network.num_segments() - 1);
    std::vector<int> walk = {current};
    for (int s = 0; s < walk_length; ++s) {
      const auto& successors = network.successors(current);
      if (successors.empty()) break;
      current = successors[static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int>(successors.size()) - 1))];
      walk.push_back(current);
    }
    if (walk.size() < 3) continue;
    optimizer.ZeroGrad();
    nn::Tensor embedded = segment_embedding_->Forward(walk);
    // Score adjacent pairs high, random pairs low (logistic loss via
    // softmax over in-walk negatives).
    nn::Tensor scores =
        nn::MatMul(embedded, nn::Transpose(embedded));  // [W, W]
    std::vector<int> next(walk.size());
    for (size_t i = 0; i < walk.size(); ++i) {
      next[i] = static_cast<int>(i + 1 < walk.size() ? i + 1 : i - 1);
    }
    nn::CrossEntropy(scores, next).Backward();
    optimizer.Step();
  }
}

void Toast::Pretrain(const std::vector<data::Trajectory>& trips,
                     int epochs) {
  SkipGramPretrain(/*walks=*/120, /*walk_length=*/10);
  nn::Adam optimizer(TrainableParameters(), kLr);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (const auto& raw : trips) {
      if (raw.length() < 4) continue;
      data::Trajectory trip = ClipForBaseline(raw, kMaxLen);
      const int k = std::max(1, trip.length() / 5);
      auto masked = data::RandomMaskIndices(trip.length(), k, &rng_);
      optimizer.ZeroGrad();
      nn::Tensor inputs = InputFeatures(trip);
      // Replace masked rows with the learned mask vector.
      std::vector<nn::Tensor> rows;
      size_t cursor = 0;
      for (int l = 0; l < trip.length(); ++l) {
        if (cursor < masked.size() && masked[cursor] == l) {
          rows.push_back(mask_vector_);
          ++cursor;
        } else {
          rows.push_back(nn::SliceRows(inputs, l, l + 1));
        }
      }
      nn::Tensor assembled = nn::Concat(rows, 0);
      nn::Tensor positions =
          nn::SliceRows(positional_, 0, assembled.shape()[0]);
      nn::Tensor hidden =
          transformer_->Forward(nn::Add(assembled, positions));
      nn::Tensor logits = mlm_head_->Forward(nn::Rows(hidden, masked));
      std::vector<int> targets;
      for (int index : masked) {
        targets.push_back(trip.points[static_cast<size_t>(index)].segment);
      }
      nn::CrossEntropy(logits, targets).Backward();
      optimizer.Step();
    }
  }
}

// --- JCLRNT ------------------------------------------------------------------

Jclrnt::Jclrnt(const data::CityDataset* dataset, int64_t dim, util::Rng* rng)
    : TrajEncoder(dataset, dim, rng) {
  transformer_ = std::make_unique<nn::Transformer>(dim, kHeads, kLayers,
                                                   &rng_, /*causal=*/false);
  projection_ = std::make_unique<nn::Linear>(dim, dim, &rng_);
  RegisterModule("transformer", transformer_.get());
  RegisterModule("projection", projection_.get());
  positional_ = RegisterParameter(
      "positional",
      nn::Tensor::Randn({kMaxLen + 8, dim}, &rng_, 0.02f, true));
}

nn::Tensor Jclrnt::SequenceRepresentations(
    const data::Trajectory& trajectory) {
  nn::Tensor inputs = InputFeatures(trajectory);
  nn::Tensor positions = nn::SliceRows(positional_, 0, inputs.shape()[0]);
  return transformer_->Forward(nn::Add(inputs, positions));
}

data::Trajectory Jclrnt::Augment(const data::Trajectory& trajectory) {
  data::Trajectory augmented;
  augmented.user_id = trajectory.user_id;
  if (rng_.Bernoulli(0.5)) {
    // Random contiguous crop of >= 60%.
    const int length = trajectory.length();
    const int crop = std::max(3, static_cast<int>(length * 0.6));
    const int start = rng_.UniformInt(0, length - crop);
    for (int l = start; l < start + crop; ++l) {
      augmented.points.push_back(
          trajectory.points[static_cast<size_t>(l)]);
    }
  } else {
    // Random point dropout (keep ~70%).
    for (const auto& point : trajectory.points) {
      if (!rng_.Bernoulli(0.3)) augmented.points.push_back(point);
    }
    if (augmented.length() < 3) augmented = trajectory;
  }
  return augmented;
}

void Jclrnt::Pretrain(const std::vector<data::Trajectory>& trips,
                      int epochs) {
  constexpr int kBatch = 8;
  constexpr float kTemperature = 0.2f;
  nn::Adam optimizer(TrainableParameters(), kLr);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (size_t begin = 0; begin + kBatch <= trips.size();
         begin += kBatch) {
      optimizer.ZeroGrad();
      std::vector<nn::Tensor> view_a, view_b;
      for (int b = 0; b < kBatch; ++b) {
        const auto& raw = trips[begin + static_cast<size_t>(b)];
        if (raw.length() < 5) continue;
        data::Trajectory trip = ClipForBaseline(raw, kMaxLen);
        view_a.push_back(projection_->Forward(
            nn::MeanRows(SequenceRepresentations(Augment(trip)))));
        view_b.push_back(projection_->Forward(
            nn::MeanRows(SequenceRepresentations(Augment(trip)))));
      }
      if (view_a.size() < 2) continue;
      // InfoNCE: match view_a[i] with view_b[i] against the batch.
      nn::Tensor a = nn::Concat(view_a, 0);
      nn::Tensor b = nn::Concat(view_b, 0);
      nn::Tensor scores =
          nn::Scale(nn::MatMul(a, nn::Transpose(b)), 1.0f / kTemperature);
      std::vector<int> diagonal(view_a.size());
      for (size_t i = 0; i < diagonal.size(); ++i) {
        diagonal[i] = static_cast<int>(i);
      }
      nn::CrossEntropy(scores, diagonal).Backward();
      optimizer.Step();
    }
  }
}

}  // namespace bigcity::baselines
