#ifndef BIGCITY_BASELINES_TRAJ_JGRM_ENCODER_H_
#define BIGCITY_BASELINES_TRAJ_JGRM_ENCODER_H_

#include <memory>

#include "baselines/traj/traj_encoder.h"
#include "nn/transformer.h"

namespace bigcity::baselines {

/// JGRM (Ma et al., 2024): joint GPS-and-route modeling. A route-view
/// transformer over segment embeddings and a GPS-view GRU over raw
/// coordinate/time traces are fused by summation after per-view encoding;
/// pre-training recovers masked segments from the fused representation so
/// the two views align.
class JgrmEncoder : public TrajEncoder {
 public:
  JgrmEncoder(const data::CityDataset* dataset, int64_t dim, util::Rng* rng);

  std::string name() const override { return "JGRM"; }
  nn::Tensor SequenceRepresentations(
      const data::Trajectory& trajectory) override;
  void Pretrain(const std::vector<data::Trajectory>& trips,
                int epochs) override;

 private:
  /// GPS-view features: normalized coordinates + time, [L, 3].
  nn::Tensor GpsFeatures(const data::Trajectory& trajectory) const;

  std::unique_ptr<nn::Transformer> route_view_;
  std::unique_ptr<nn::Gru> gps_view_;
  std::unique_ptr<nn::Linear> gps_input_;
  std::unique_ptr<nn::Linear> mlm_head_;
  nn::Tensor positional_;
  float max_x_ = 1.0f, max_y_ = 1.0f;
};

}  // namespace bigcity::baselines

#endif  // BIGCITY_BASELINES_TRAJ_JGRM_ENCODER_H_
