#include "baselines/recovery/seq2seq_recovery.h"

#include <algorithm>
#include <cmath>

#include "baselines/traj/traj_encoder.h"
#include "data/masking.h"
#include "data/st_unit.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "util/check.h"

namespace bigcity::baselines {

using nn::Tensor;

namespace {
constexpr int kMaxLen = 24;
constexpr float kLr = 2e-3f;
constexpr int kTrainEpochs = 2;

data::Trajectory KeptOnly(const data::Trajectory& original,
                          const std::vector<int>& kept) {
  data::Trajectory result;
  result.user_id = original.user_id;
  for (int index : kept) {
    result.points.push_back(original.points[static_cast<size_t>(index)]);
  }
  return result;
}
}  // namespace

MTrajRec::MTrajRec(const data::CityDataset* dataset, int64_t dim,
                   util::Rng* rng)
    : dataset_(dataset), dim_(dim), rng_(rng->engine()()) {
  segment_embedding_ = std::make_unique<nn::EmbeddingTable>(
      dataset->network().num_segments(), dim, &rng_);
  time_projection_ = std::make_unique<nn::Linear>(
      data::kTimeFeatureDim + 1, dim, &rng_);
  encoder_ = std::make_unique<nn::Gru>(dim, dim, &rng_);
  query_builder_ = std::make_unique<nn::Linear>(2, dim, &rng_);
  output_head_ = std::make_unique<nn::Linear>(
      dim, dataset->network().num_segments(), &rng_);
  RegisterModule("segment_embedding", segment_embedding_.get());
  RegisterModule("time_projection", time_projection_.get());
  RegisterModule("encoder", encoder_.get());
  RegisterModule("query_builder", query_builder_.get());
  RegisterModule("output_head", output_head_.get());
}

Tensor MTrajRec::EncodeKept(const data::Trajectory& kept_trajectory) {
  const int length = kept_trajectory.length();
  std::vector<int> segments;
  std::vector<float> time_data(static_cast<size_t>(length) *
                               (data::kTimeFeatureDim + 1));
  for (int l = 0; l < length; ++l) {
    segments.push_back(kept_trajectory.points[static_cast<size_t>(l)].segment);
    auto features = data::TimeFeatures(
        kept_trajectory.points[static_cast<size_t>(l)].timestamp);
    float* row = time_data.data() +
                 static_cast<size_t>(l) * (data::kTimeFeatureDim + 1);
    std::copy(features.begin(), features.end(), row);
    const double delta =
        l == 0 ? 0.0
               : kept_trajectory.points[static_cast<size_t>(l)].timestamp -
                     kept_trajectory.points[static_cast<size_t>(l - 1)]
                         .timestamp;
    row[data::kTimeFeatureDim] = data::DeltaFeature(delta);
  }
  Tensor inputs = nn::Add(
      segment_embedding_->Forward(segments),
      time_projection_->Forward(Tensor::FromData(
          {length, data::kTimeFeatureDim + 1}, std::move(time_data))));
  return encoder_->Forward(inputs);
}

Tensor MTrajRec::DroppedLogits(const data::Trajectory& original,
                               const std::vector<int>& kept) {
  const int length = original.length();
  Tensor encoded = EncodeKept(KeptOnly(original, kept));
  auto dropped = data::ComplementIndices(length, kept);
  BIGCITY_CHECK(!dropped.empty());
  // Queries from (global position fraction, local gap fraction).
  std::vector<float> query_features;
  query_features.reserve(dropped.size() * 2);
  for (int index : dropped) {
    const float global = static_cast<float>(index) /
                         static_cast<float>(length - 1);
    // Fraction within the surrounding kept gap.
    auto upper = std::upper_bound(kept.begin(), kept.end(), index);
    const int next = *upper;
    const int previous = *(upper - 1);
    const float local = static_cast<float>(index - previous) /
                        static_cast<float>(next - previous);
    query_features.push_back(global);
    query_features.push_back(local);
  }
  const auto num_dropped = static_cast<int64_t>(dropped.size());
  Tensor queries = query_builder_->Forward(Tensor::FromData(
      {num_dropped, 2}, std::move(query_features)));
  // Dot-product attention over encoder states.
  const float inv = 1.0f / std::sqrt(static_cast<float>(dim_));
  Tensor attention = nn::Softmax(
      nn::Scale(nn::MatMul(queries, nn::Transpose(encoded)), inv));
  Tensor context = nn::MatMul(attention, encoded);
  return output_head_->Forward(nn::Add(context, queries));
}

void MTrajRec::Train(const std::vector<data::Trajectory>& trips,
                     double mask_ratio) {
  nn::Adam optimizer(TrainableParameters(), kLr);
  for (int epoch = 0; epoch < kTrainEpochs; ++epoch) {
    for (const auto& raw : trips) {
      if (raw.length() < 6) continue;
      data::Trajectory trip = ClipForBaseline(raw, kMaxLen);
      auto kept = data::DownsampleKeepIndices(trip.length(), mask_ratio,
                                              &rng_);
      auto dropped = data::ComplementIndices(trip.length(), kept);
      if (dropped.empty()) continue;
      optimizer.ZeroGrad();
      Tensor logits = DroppedLogits(trip, kept);
      std::vector<int> targets;
      for (int index : dropped) {
        targets.push_back(trip.points[static_cast<size_t>(index)].segment);
      }
      nn::CrossEntropy(logits, targets).Backward();
      optimizer.Step();
    }
  }
}

std::vector<int> MTrajRec::Recover(const data::Trajectory& original,
                                   const std::vector<int>& kept) {
  Tensor logits = DroppedLogits(original, kept);
  return nn::ArgmaxRows(logits);
}

RnTrajRec::RnTrajRec(const data::CityDataset* dataset, int64_t dim,
                     util::Rng* rng)
    : MTrajRec(dataset, dim, rng) {
  graph_ = dataset->network().ToGraphEdges();
  gat_ = std::make_unique<nn::GatLayer>(dim, dim, 2, &rng_);
  transformer_ = std::make_unique<nn::Transformer>(dim, 2, 2, &rng_,
                                                   /*causal=*/false);
  RegisterModule("gat", gat_.get());
  RegisterModule("transformer", transformer_.get());
  positional_ = RegisterParameter(
      "positional",
      Tensor::Randn({kMaxLen + 8, dim}, &rng_, 0.02f, true));
}

Tensor RnTrajRec::EncodeKept(const data::Trajectory& kept_trajectory) {
  // Road-network-enhanced embeddings: GAT over the full segment table.
  Tensor table = gat_->Forward(segment_embedding_->table(), graph_);
  std::vector<int> segments;
  for (const auto& point : kept_trajectory.points) {
    segments.push_back(point.segment);
  }
  const int length = kept_trajectory.length();
  std::vector<float> time_data(static_cast<size_t>(length) *
                               (data::kTimeFeatureDim + 1));
  for (int l = 0; l < length; ++l) {
    auto features = data::TimeFeatures(
        kept_trajectory.points[static_cast<size_t>(l)].timestamp);
    float* row = time_data.data() +
                 static_cast<size_t>(l) * (data::kTimeFeatureDim + 1);
    std::copy(features.begin(), features.end(), row);
  }
  Tensor inputs = nn::Add(
      nn::Rows(table, segments),
      time_projection_->Forward(Tensor::FromData(
          {length, data::kTimeFeatureDim + 1}, std::move(time_data))));
  Tensor positions = nn::SliceRows(positional_, 0, length);
  return transformer_->Forward(nn::Add(inputs, positions));
}

}  // namespace bigcity::baselines
