#ifndef BIGCITY_BASELINES_RECOVERY_RECOVERY_MODEL_H_
#define BIGCITY_BASELINES_RECOVERY_RECOVERY_MODEL_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/trajectory.h"

namespace bigcity::baselines {

/// Base class for the four trajectory-recovery baselines (Table IV). Given
/// a downsampled trajectory (the original plus the kept indices), a model
/// predicts the road segment at every dropped position. Models must not
/// read the segments/timestamps of dropped positions.
class RecoveryModel {
 public:
  virtual ~RecoveryModel() = default;

  virtual std::string name() const = 0;

  /// Task-specific training (no-op for the non-learned HMM baselines).
  virtual void Train(const std::vector<data::Trajectory>& trips,
                     double mask_ratio) {
    (void)trips;
    (void)mask_ratio;
  }

  /// Predicted segment ids for the dropped positions of `original`, in
  /// increasing position order. `kept` is sorted and includes 0 and L-1.
  virtual std::vector<int> Recover(const data::Trajectory& original,
                                   const std::vector<int>& kept) = 0;
};

/// Viterbi map-matching decode shared by the HMM baselines: given per-
/// position observation coordinates, finds the most likely segment
/// sequence under (a) Gaussian emission around segment midpoints and
/// (b) road-network successor transitions; kept positions are pinned to
/// their known segments.
std::vector<int> ViterbiDecode(
    const roadnet::RoadNetwork& network,
    const std::vector<std::pair<float, float>>& observations,
    const std::vector<int>& pinned_segments,  // -1 where unknown.
    float emission_sigma_m = 200.0f);

}  // namespace bigcity::baselines

#endif  // BIGCITY_BASELINES_RECOVERY_RECOVERY_MODEL_H_
