#include "baselines/recovery/hmm_recovery.h"

#include <cmath>

#include "roadnet/shortest_path.h"
#include "util/check.h"

namespace bigcity::baselines {

namespace {

std::pair<float, float> Midpoint(const roadnet::RoadNetwork& network,
                                 int segment) {
  const auto& s = network.segment(segment);
  return {s.mid_x, s.mid_y};
}

/// Gathers predictions for dropped slots from a full-length decode.
std::vector<int> DroppedOnly(const std::vector<int>& full,
                             const std::vector<int>& kept, int length) {
  std::vector<bool> is_kept(static_cast<size_t>(length), false);
  for (int index : kept) is_kept[static_cast<size_t>(index)] = true;
  std::vector<int> result;
  for (int l = 0; l < length; ++l) {
    if (!is_kept[static_cast<size_t>(l)]) {
      result.push_back(full[static_cast<size_t>(l)]);
    }
  }
  return result;
}

}  // namespace

std::vector<int> LinearHmmRecovery::Recover(const data::Trajectory& original,
                                            const std::vector<int>& kept) {
  const auto& network = dataset_->network();
  const int length = original.length();
  std::vector<std::pair<float, float>> observations(
      static_cast<size_t>(length));
  std::vector<int> pinned(static_cast<size_t>(length), -1);
  for (int index : kept) {
    pinned[static_cast<size_t>(index)] =
        original.points[static_cast<size_t>(index)].segment;
    observations[static_cast<size_t>(index)] = Midpoint(
        network, original.points[static_cast<size_t>(index)].segment);
  }
  // Linear interpolation between surrounding kept anchors.
  for (size_t k = 0; k + 1 < kept.size(); ++k) {
    const int a = kept[k], b = kept[k + 1];
    const auto pa = observations[static_cast<size_t>(a)];
    const auto pb = observations[static_cast<size_t>(b)];
    for (int l = a + 1; l < b; ++l) {
      const float alpha = static_cast<float>(l - a) /
                          static_cast<float>(b - a);
      observations[static_cast<size_t>(l)] = {
          pa.first + alpha * (pb.first - pa.first),
          pa.second + alpha * (pb.second - pa.second)};
    }
  }
  auto full = ViterbiDecode(network, observations, pinned);
  return DroppedOnly(full, kept, length);
}

std::vector<int> DthrHmmRecovery::Recover(const data::Trajectory& original,
                                          const std::vector<int>& kept) {
  const auto& network = dataset_->network();
  const int length = original.length();
  std::vector<std::pair<float, float>> observations(
      static_cast<size_t>(length));
  std::vector<int> pinned(static_cast<size_t>(length), -1);
  for (int index : kept) {
    pinned[static_cast<size_t>(index)] =
        original.points[static_cast<size_t>(index)].segment;
    observations[static_cast<size_t>(index)] = Midpoint(
        network, original.points[static_cast<size_t>(index)].segment);
  }
  // Detour-aware: route the gap along the shortest path and spread its
  // segments over the dropped slots proportionally.
  for (size_t k = 0; k + 1 < kept.size(); ++k) {
    const int a = kept[k], b = kept[k + 1];
    if (b - a <= 1) continue;
    auto path = roadnet::ShortestPath(
        network, original.points[static_cast<size_t>(a)].segment,
        original.points[static_cast<size_t>(b)].segment);
    for (int l = a + 1; l < b; ++l) {
      if (path.size() >= 2) {
        const float alpha = static_cast<float>(l - a) /
                            static_cast<float>(b - a);
        const auto path_index = static_cast<size_t>(
            alpha * static_cast<float>(path.size() - 1) + 0.5f);
        observations[static_cast<size_t>(l)] =
            Midpoint(network, path[std::min(path_index, path.size() - 1)]);
      } else {
        observations[static_cast<size_t>(l)] =
            observations[static_cast<size_t>(a)];
      }
    }
  }
  auto full = ViterbiDecode(network, observations, pinned);
  return DroppedOnly(full, kept, length);
}

}  // namespace bigcity::baselines
