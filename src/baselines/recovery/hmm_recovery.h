#ifndef BIGCITY_BASELINES_RECOVERY_HMM_RECOVERY_H_
#define BIGCITY_BASELINES_RECOVERY_HMM_RECOVERY_H_

#include "baselines/recovery/recovery_model.h"

namespace bigcity::baselines {

/// Linear+HMM (Hoteit et al., 2014): dropped positions are linearly
/// interpolated in coordinate space between the surrounding kept samples,
/// then Viterbi map-matching snaps the interpolated points to segments.
class LinearHmmRecovery : public RecoveryModel {
 public:
  explicit LinearHmmRecovery(const data::CityDataset* dataset)
      : dataset_(dataset) {}

  std::string name() const override { return "Linear+HMM"; }
  std::vector<int> Recover(const data::Trajectory& original,
                           const std::vector<int>& kept) override;

 private:
  const data::CityDataset* dataset_;
};

/// DTHR+HMM: a detour-aware heuristic — instead of straight-line
/// interpolation, the observation for a dropped slot comes from walking the
/// time-weighted shortest path between the surrounding kept segments,
/// followed by the same HMM decode.
class DthrHmmRecovery : public RecoveryModel {
 public:
  explicit DthrHmmRecovery(const data::CityDataset* dataset)
      : dataset_(dataset) {}

  std::string name() const override { return "DTHR+HMM"; }
  std::vector<int> Recover(const data::Trajectory& original,
                           const std::vector<int>& kept) override;

 private:
  const data::CityDataset* dataset_;
};

}  // namespace bigcity::baselines

#endif  // BIGCITY_BASELINES_RECOVERY_HMM_RECOVERY_H_
