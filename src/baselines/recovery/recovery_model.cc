#include "baselines/recovery/recovery_model.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace bigcity::baselines {

std::vector<int> ViterbiDecode(
    const roadnet::RoadNetwork& network,
    const std::vector<std::pair<float, float>>& observations,
    const std::vector<int>& pinned_segments, float emission_sigma_m) {
  const int length = static_cast<int>(observations.size());
  const int num_segments = network.num_segments();
  BIGCITY_CHECK_EQ(pinned_segments.size(), observations.size());
  BIGCITY_CHECK_GT(length, 0);

  const float inv_two_sigma_sq =
      1.0f / (2.0f * emission_sigma_m * emission_sigma_m);
  auto emission = [&](int position, int segment) -> float {
    if (pinned_segments[static_cast<size_t>(position)] >= 0) {
      return pinned_segments[static_cast<size_t>(position)] == segment
                 ? 0.0f
                 : -std::numeric_limits<float>::infinity();
    }
    const auto& s = network.segment(segment);
    const float dx = s.mid_x - observations[static_cast<size_t>(position)].first;
    const float dy = s.mid_y - observations[static_cast<size_t>(position)].second;
    return -(dx * dx + dy * dy) * inv_two_sigma_sq;
  };

  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  std::vector<float> score(static_cast<size_t>(num_segments), kNegInf);
  std::vector<std::vector<int>> backpointer(
      static_cast<size_t>(length),
      std::vector<int>(static_cast<size_t>(num_segments), -1));
  for (int i = 0; i < num_segments; ++i) {
    score[static_cast<size_t>(i)] = emission(0, i);
  }
  for (int position = 1; position < length; ++position) {
    std::vector<float> next(static_cast<size_t>(num_segments), kNegInf);
    for (int i = 0; i < num_segments; ++i) {
      if (score[static_cast<size_t>(i)] == kNegInf) continue;
      // Successor transitions (uniform log-prob) plus a penalized self loop
      // so runs of identical observations stay decodable.
      auto relax = [&](int j, float penalty) {
        const float candidate =
            score[static_cast<size_t>(i)] + emission(position, j) - penalty;
        if (candidate > next[static_cast<size_t>(j)]) {
          next[static_cast<size_t>(j)] = candidate;
          backpointer[static_cast<size_t>(position)]
                     [static_cast<size_t>(j)] = i;
        }
      };
      for (int j : network.successors(i)) relax(j, 0.0f);
      relax(i, 2.0f);
    }
    // Dead-end escape: if no state is reachable, restart from emissions.
    bool any = false;
    for (float v : next) any = any || v != kNegInf;
    if (!any) {
      for (int j = 0; j < num_segments; ++j) {
        next[static_cast<size_t>(j)] = emission(position, j) - 10.0f;
      }
    }
    score = std::move(next);
  }

  int best = 0;
  for (int i = 1; i < num_segments; ++i) {
    if (score[static_cast<size_t>(i)] > score[static_cast<size_t>(best)]) {
      best = i;
    }
  }
  std::vector<int> path(static_cast<size_t>(length));
  path[static_cast<size_t>(length - 1)] = best;
  for (int position = length - 1; position > 0; --position) {
    int previous = backpointer[static_cast<size_t>(position)]
                              [static_cast<size_t>(path[
                                  static_cast<size_t>(position)])];
    if (previous < 0) previous = path[static_cast<size_t>(position)];
    path[static_cast<size_t>(position - 1)] = previous;
  }
  return path;
}

}  // namespace bigcity::baselines
