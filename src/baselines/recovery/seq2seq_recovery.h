#ifndef BIGCITY_BASELINES_RECOVERY_SEQ2SEQ_RECOVERY_H_
#define BIGCITY_BASELINES_RECOVERY_SEQ2SEQ_RECOVERY_H_

#include <memory>

#include "baselines/recovery/recovery_model.h"
#include "nn/gat.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/transformer.h"
#include "util/rng.h"

namespace bigcity::baselines {

/// MTrajRec (Ren et al., 2021): GRU encoder over the kept (low-frequency)
/// samples; per dropped slot, an attention query built from the slot's
/// relative position attends over encoder states and a linear head emits
/// segment logits. Trained with cross-entropy on dropped segments.
class MTrajRec : public RecoveryModel, public nn::Module {
 public:
  MTrajRec(const data::CityDataset* dataset, int64_t dim, util::Rng* rng);

  std::string name() const override { return "MTrajRec"; }
  void Train(const std::vector<data::Trajectory>& trips,
             double mask_ratio) override;
  std::vector<int> Recover(const data::Trajectory& original,
                           const std::vector<int>& kept) override;

  /// Segment logits [num_dropped, I] for the dropped slots; shared by
  /// training and inference, and used by constrained decoders.
  nn::Tensor DroppedLogits(const data::Trajectory& original,
                           const std::vector<int>& kept);

 protected:
  virtual nn::Tensor EncodeKept(const data::Trajectory& kept_trajectory);

  const data::CityDataset* dataset_;
  int64_t dim_;
  util::Rng rng_;
  std::unique_ptr<nn::EmbeddingTable> segment_embedding_;
  std::unique_ptr<nn::Linear> time_projection_;
  std::unique_ptr<nn::Gru> encoder_;
  std::unique_ptr<nn::Linear> query_builder_;  // Position fraction -> query.
  std::unique_ptr<nn::Linear> output_head_;
};

/// RNTrajRec (Chen et al., 2023): same decoding scheme but the encoder is a
/// bidirectional transformer over GAT-refined (road-network-enhanced)
/// segment embeddings — the paper's stronger recovery baseline.
class RnTrajRec : public MTrajRec {
 public:
  RnTrajRec(const data::CityDataset* dataset, int64_t dim, util::Rng* rng);

  std::string name() const override { return "RNTrajRec"; }

 protected:
  nn::Tensor EncodeKept(const data::Trajectory& kept_trajectory) override;

 private:
  nn::GraphEdges graph_;
  std::unique_ptr<nn::GatLayer> gat_;
  std::unique_ptr<nn::Transformer> transformer_;
  nn::Tensor positional_;
};

}  // namespace bigcity::baselines

#endif  // BIGCITY_BASELINES_RECOVERY_SEQ2SEQ_RECOVERY_H_
