#ifndef BIGCITY_NN_OPTIM_H_
#define BIGCITY_NN_OPTIM_H_

#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "nn/tensor.h"
#include "util/status.h"

namespace bigcity::nn {

/// Base optimizer over an explicit parameter list. Parameters with
/// requires_grad == false are skipped (supports LoRA-style freezing without
/// rebuilding the optimizer).
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> parameters)
      : parameters_(std::move(parameters)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the accumulated gradients.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most max_norm;
  /// returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  const std::vector<Tensor>& parameters() const { return parameters_; }

 protected:
  std::vector<Tensor> parameters_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> parameters, float lr, float momentum = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::unordered_map<TensorImpl*, std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba, 2015) with optional decoupled weight decay (AdamW).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> parameters, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  /// Serializes the learning rate, step count, and per-parameter moment
  /// buffers, aligned with the constructor's parameter order (a training
  /// snapshot must restore them for bit-identical resume).
  void SaveState(std::ostream& out) const;
  /// Restores state written by SaveState; the optimizer must hold the same
  /// parameter list (count and sizes are validated).
  util::Status LoadState(std::istream& in);

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::unordered_map<TensorImpl*, std::vector<float>> m_;
  std::unordered_map<TensorImpl*, std::vector<float>> v_;
};

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_OPTIM_H_
