#ifndef BIGCITY_NN_OPTIM_H_
#define BIGCITY_NN_OPTIM_H_

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "nn/tensor.h"
#include "util/status.h"

namespace bigcity::nn {

/// Base optimizer over an explicit parameter list. Parameters with
/// requires_grad == false are skipped (supports LoRA-style freezing without
/// rebuilding the optimizer).
///
/// Per-parameter optimizer state lives in contiguous slabs indexed by
/// parameter position (offset_of()), not in pointer-keyed hash maps: the
/// slabs are allocated once at construction on the plain heap, survive
/// arena recycling of everything around them, and cost zero lookups per
/// step.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> parameters);
  virtual ~Optimizer() = default;

  /// Applies one update using the accumulated gradients.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most max_norm;
  /// returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  const std::vector<Tensor>& parameters() const { return parameters_; }

 protected:
  /// Offset of parameter `i`'s state slice within a slab of
  /// total_numel() floats (frozen parameters keep a slice too — simple
  /// indexing beats special cases; their slices stay zero).
  size_t offset_of(size_t i) const { return offsets_[i]; }
  /// Total floats across all parameters (slab length per state kind).
  size_t total_numel() const { return offsets_.back(); }

  std::vector<Tensor> parameters_;

 private:
  std::vector<size_t> offsets_;  // parameters_.size() + 1 entries.
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> parameters, float lr, float momentum = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<float> velocity_;  // One slab; empty when momentum == 0.
};

/// Adam (Kingma & Ba, 2015) with optional decoupled weight decay (AdamW).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> parameters, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  /// Serializes the learning rate, step count, and per-parameter moment
  /// buffers, aligned with the constructor's parameter order (a training
  /// snapshot must restore them for bit-identical resume). Format is
  /// unchanged from the map-based implementation: untouched moments
  /// (never stepped / frozen parameter) are written as empty vectors.
  void SaveState(std::ostream& out) const;
  /// Restores state written by SaveState; the optimizer must hold the same
  /// parameter list (count and sizes are validated).
  util::Status LoadState(std::istream& in);

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<float> m_;  // First-moment slab, total_numel() floats.
  std::vector<float> v_;  // Second-moment slab.
};

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_OPTIM_H_
