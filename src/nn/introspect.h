#ifndef BIGCITY_NN_INTROSPECT_H_
#define BIGCITY_NN_INTROSPECT_H_

// Autograd-graph introspection (DESIGN.md §4.10): locates the first
// non-finite value in a computation graph so a guard trip can name the
// offending op/module instead of just skipping the step. Cold path only —
// the walk touches every activation and is run when a step already failed.

#include <cstdint>
#include <string>

#include "nn/tensor.h"

namespace bigcity::nn {

/// Where a non-finite value first appeared.
struct NonFiniteSite {
  bool found = false;
  /// Creation-order tag of the node (TensorImpl::seq); among all nodes
  /// holding a non-finite value the one created earliest is reported, so
  /// this is the most upstream corruption the graph still remembers.
  uint64_t seq = 0;
  std::string op;      // Producing op ("" when probes are compiled out).
  std::string module;  // Owning module path ("" = untagged).
  std::string shape;   // "[rows, cols]" for log messages.
  bool in_grad = false;  // Value was in .grad rather than .data.
};

/// Walks the graph reachable from `root` through stored parents and
/// returns the earliest-created node whose data (or grad, when
/// `check_grads`) holds a NaN/Inf. found == false when everything is
/// finite.
NonFiniteSite FindFirstNonFinite(const Tensor& root, bool check_grads = false);

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_INTROSPECT_H_
