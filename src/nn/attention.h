#ifndef BIGCITY_NN_ATTENTION_H_
#define BIGCITY_NN_ATTENTION_H_

#include <memory>
#include <vector>

#include "nn/lora.h"
#include "nn/module.h"

namespace bigcity::nn {

/// Cached projected keys/values of one attention layer (all heads packed in
/// columns), covering the first `length()` positions of a causal sequence.
/// Used for incremental decoding: a forward over just the suffix rows reuses
/// the cached prefix state and is bit-identical to a fresh full forward.
struct AttentionKv {
  Tensor k;  // [P, dim]
  Tensor v;  // [P, dim]

  int64_t length() const { return k.is_valid() ? k.shape()[0] : 0; }
  /// Drops cached positions >= rows (no-op when already shorter).
  void Truncate(int64_t rows);
  /// Re-copies the cached tensors in the current allocation scope; call
  /// under an ArenaPin to let the cache outlive a plan/arena step.
  void DetachToHeap();
};

/// Multi-head (optionally causal) self-attention over a single sequence
/// x [L, D]. Q/K/V/output projections are LoraLinear so the BIGCity
/// backbone can attach adapters (Sec. V-B); plain models simply never call
/// EnableLora.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t dim, int64_t num_heads, util::Rng* rng,
                         bool causal);

  Tensor Forward(const Tensor& x) const;
  /// Forward(x) + residual with the residual fused into the output
  /// projection (the transformer block's pre-norm skip connection).
  Tensor Forward(const Tensor& x, const Tensor& residual) const;

  /// Batched forward over the row-concatenation of independent sequences:
  /// x [sum(lens), D] stacks the sequences back to back. All projections
  /// run on the tall matrix (one GEMM instead of lens.size()); the
  /// attention core runs per sequence on its row span, so every output row
  /// is bit-identical to Forward() on that sequence alone. When `kv_out`
  /// is given (one entry per sequence, entries may be null) each non-null
  /// EMPTY entry receives that sequence's projected keys/values — the same
  /// state a ForwardCached prefill would have produced. A non-null entry
  /// that already holds state is a prefix: that sequence's rows in x are
  /// its suffix, attended with the causal offset (a batched ForwardCached
  /// decode), and the entry is extended in place. Either way later cached
  /// calls stay bit-identical.
  Tensor ForwardBatched(const Tensor& x, const Tensor& residual,
                        const std::vector<int64_t>& lens,
                        const std::vector<AttentionKv*>* kv_out =
                            nullptr) const;

  /// KV-cached incremental forward (causal only): x holds the suffix rows
  /// of a sequence whose first kv->length() positions were already
  /// processed into `kv`. Appends the suffix keys/values to the cache and
  /// returns outputs for the suffix rows, bit-identical to the trailing
  /// rows of a full-sequence Forward().
  Tensor ForwardCached(const Tensor& x, const Tensor& residual,
                       AttentionKv* kv) const;

  LoraLinear* wq() { return wq_.get(); }
  LoraLinear* wk() { return wk_.get(); }
  LoraLinear* wv() { return wv_.get(); }
  LoraLinear* wo() { return wo_.get(); }

  int64_t dim() const { return dim_; }
  int64_t num_heads() const { return num_heads_; }
  bool causal() const { return causal_; }

 private:
  int64_t dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  bool causal_;
  std::unique_ptr<LoraLinear> wq_;
  std::unique_ptr<LoraLinear> wk_;
  std::unique_ptr<LoraLinear> wv_;
  std::unique_ptr<LoraLinear> wo_;
};

/// Cross-attention with learnable per-query-slot query matrix, used by the
/// ST tokenizer's fusion encoder (Eq. 6-7): queries are I learned vectors,
/// keys/values are the fused segment representations. Unlike GAT this
/// attends across ALL segments (long-range dependencies).
class LearnedQueryAttention : public Module {
 public:
  /// num_queries learned query slots of dimension dim.
  LearnedQueryAttention(int64_t num_queries, int64_t dim, util::Rng* rng);

  /// h [I, dim] (I == num_queries) -> fused representations [I, dim].
  Tensor Forward(const Tensor& h) const;

 private:
  int64_t dim_;
  Tensor query_;  // [num_queries, dim] learnable W_Q.
};

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_ATTENTION_H_
