#ifndef BIGCITY_NN_ATTENTION_H_
#define BIGCITY_NN_ATTENTION_H_

#include <memory>

#include "nn/lora.h"
#include "nn/module.h"

namespace bigcity::nn {

/// Multi-head (optionally causal) self-attention over a single sequence
/// x [L, D]. Q/K/V/output projections are LoraLinear so the BIGCity
/// backbone can attach adapters (Sec. V-B); plain models simply never call
/// EnableLora.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t dim, int64_t num_heads, util::Rng* rng,
                         bool causal);

  Tensor Forward(const Tensor& x) const;
  /// Forward(x) + residual with the residual fused into the output
  /// projection (the transformer block's pre-norm skip connection).
  Tensor Forward(const Tensor& x, const Tensor& residual) const;

  LoraLinear* wq() { return wq_.get(); }
  LoraLinear* wk() { return wk_.get(); }
  LoraLinear* wv() { return wv_.get(); }
  LoraLinear* wo() { return wo_.get(); }

  int64_t dim() const { return dim_; }
  int64_t num_heads() const { return num_heads_; }
  bool causal() const { return causal_; }

 private:
  int64_t dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  bool causal_;
  std::unique_ptr<LoraLinear> wq_;
  std::unique_ptr<LoraLinear> wk_;
  std::unique_ptr<LoraLinear> wv_;
  std::unique_ptr<LoraLinear> wo_;
};

/// Cross-attention with learnable per-query-slot query matrix, used by the
/// ST tokenizer's fusion encoder (Eq. 6-7): queries are I learned vectors,
/// keys/values are the fused segment representations. Unlike GAT this
/// attends across ALL segments (long-range dependencies).
class LearnedQueryAttention : public Module {
 public:
  /// num_queries learned query slots of dimension dim.
  LearnedQueryAttention(int64_t num_queries, int64_t dim, util::Rng* rng);

  /// h [I, dim] (I == num_queries) -> fused representations [I, dim].
  Tensor Forward(const Tensor& h) const;

 private:
  int64_t dim_;
  Tensor query_;  // [num_queries, dim] learnable W_Q.
};

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_ATTENTION_H_
