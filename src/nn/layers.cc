#include "nn/layers.h"

#include <memory>

#include "nn/kernels/fused.h"
#include "util/check.h"
#include "obs/profiler.h"

namespace bigcity::nn {

Linear::Linear(int64_t in_features, int64_t out_features, util::Rng* rng,
               bool bias) {
  weight_ = RegisterParameter(
      "weight", Tensor::Xavier(in_features, out_features, rng));
  if (bias) {
    bias_ = RegisterParameter(
        "bias", Tensor::Zeros({out_features}, /*requires_grad=*/true));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  return Affine(x, weight_, bias_);
}

Tensor Linear::ForwardGelu(const Tensor& x) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  if (!bias_.is_valid()) return Gelu(MatMul(x, weight_));
  return BiasGelu(MatMul(x, weight_), bias_);
}

Tensor Linear::ForwardResidual(const Tensor& x, const Tensor& residual) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  return AffineResidual(x, weight_, bias_, residual);
}

EmbeddingTable::EmbeddingTable(int64_t vocab_size, int64_t dim,
                               util::Rng* rng) {
  table_ = RegisterParameter(
      "table",
      Tensor::Randn({vocab_size, dim}, rng, 0.02f, /*requires_grad=*/true));
}

Tensor EmbeddingTable::Forward(const std::vector<int>& indices) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  return Embedding(table_, indices);
}

LayerNormLayer::LayerNormLayer(int64_t dim) {
  gamma_ = RegisterParameter("gamma",
                             Tensor::Ones({dim}, /*requires_grad=*/true));
  beta_ = RegisterParameter("beta",
                            Tensor::Zeros({dim}, /*requires_grad=*/true));
}

Tensor LayerNormLayer::Forward(const Tensor& x) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  return LayerNorm(x, gamma_, beta_);
}

Mlp::Mlp(const std::vector<int64_t>& dims, util::Rng* rng) {
  BIGCITY_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule("fc" + std::to_string(i), layers_.back().get());
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = i + 1 < layers_.size() ? layers_[i]->ForwardGelu(h)
                               : layers_[i]->Forward(h);
  }
  return h;
}

Gru::Gru(int64_t input_dim, int64_t hidden_dim, util::Rng* rng)
    : hidden_dim_(hidden_dim) {
  gates_x_ = std::make_unique<Linear>(input_dim, 2 * hidden_dim, rng);
  gates_h_ = std::make_unique<Linear>(hidden_dim, 2 * hidden_dim, rng,
                                      /*bias=*/false);
  cand_x_ = std::make_unique<Linear>(input_dim, hidden_dim, rng);
  cand_h_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng,
                                     /*bias=*/false);
  RegisterModule("gates_x", gates_x_.get());
  RegisterModule("gates_h", gates_h_.get());
  RegisterModule("cand_x", cand_x_.get());
  RegisterModule("cand_h", cand_h_.get());
}

Tensor Gru::Step(const Tensor& x, const Tensor& h) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  Tensor gates = Sigmoid(Add(gates_x_->Forward(x), gates_h_->Forward(h)));
  Tensor z = SliceCols(gates, 0, hidden_dim_);
  Tensor r = SliceCols(gates, hidden_dim_, 2 * hidden_dim_);
  Tensor candidate =
      Tanh(Add(cand_x_->Forward(x), cand_h_->Forward(Mul(r, h))));
  // h' = (1-z)*h + z*candidate.
  return Add(Mul(Sub(Tensor::Ones({1, hidden_dim_}), z), h),
             Mul(z, candidate));
}

Tensor Gru::Forward(const Tensor& x) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  BIGCITY_CHECK_EQ(x.shape().size(), 2u);
  const int64_t length = x.shape()[0];
  Tensor h = Tensor::Zeros({1, hidden_dim_});
  std::vector<Tensor> states;
  states.reserve(static_cast<size_t>(length));
  for (int64_t t = 0; t < length; ++t) {
    h = Step(SliceRows(x, t, t + 1), h);
    states.push_back(h);
  }
  return Concat(states, /*axis=*/0);
}

}  // namespace bigcity::nn
