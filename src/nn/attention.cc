#include "nn/attention.h"

#include <cmath>

#include "nn/kernels/fused.h"
#include "nn/ops.h"
#include "util/check.h"
#include "obs/profiler.h"

namespace bigcity::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t dim, int64_t num_heads,
                                               util::Rng* rng, bool causal)
    : dim_(dim), num_heads_(num_heads), head_dim_(dim / num_heads),
      causal_(causal) {
  BIGCITY_CHECK_EQ(head_dim_ * num_heads_, dim_)
      << "dim must be divisible by num_heads";
  wq_ = std::make_unique<LoraLinear>(dim, dim, rng);
  wk_ = std::make_unique<LoraLinear>(dim, dim, rng);
  wv_ = std::make_unique<LoraLinear>(dim, dim, rng);
  wo_ = std::make_unique<LoraLinear>(dim, dim, rng);
  RegisterModule("wq", wq_.get());
  RegisterModule("wk", wk_.get());
  RegisterModule("wv", wv_.get());
  RegisterModule("wo", wo_.get());
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  return Forward(x, Tensor());
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x,
                                       const Tensor& residual) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  BIGCITY_CHECK_EQ(x.shape().size(), 2u);
  BIGCITY_CHECK_EQ(x.shape()[1], dim_);
  Tensor q = wq_->Forward(x);
  Tensor k = wk_->Forward(x);
  Tensor v = wv_->Forward(x);

  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Tensor> head_outputs;
  head_outputs.reserve(static_cast<size_t>(num_heads_));
  for (int64_t h = 0; h < num_heads_; ++h) {
    const int64_t lo = h * head_dim_, hi = (h + 1) * head_dim_;
    Tensor qh = SliceCols(q, lo, hi);
    Tensor kh = SliceCols(k, lo, hi);
    Tensor vh = SliceCols(v, lo, hi);
    // q·k^T, scaling, causal mask, and softmax in one fused node — no
    // transposed copy of K and no [L,L] mask tensor.
    Tensor attn = ScaledMaskedSoftmax(MatMulNT(qh, kh), inv_sqrt, causal_);
    head_outputs.push_back(MatMul(attn, vh));
  }
  Tensor merged = Concat(head_outputs, /*axis=*/1);
  return residual.is_valid() ? wo_->ForwardResidual(merged, residual)
                             : wo_->Forward(merged);
}

LearnedQueryAttention::LearnedQueryAttention(int64_t num_queries, int64_t dim,
                                             util::Rng* rng)
    : dim_(dim) {
  query_ = RegisterParameter(
      "query", Tensor::Randn({num_queries, dim}, rng, 0.02f,
                             /*requires_grad=*/true));
}

Tensor LearnedQueryAttention::Forward(const Tensor& h) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  BIGCITY_CHECK_EQ(h.shape().size(), 2u);
  BIGCITY_CHECK_EQ(h.shape()[0], query_.shape()[0]);
  BIGCITY_CHECK_EQ(h.shape()[1], dim_);
  // alpha_ij = (q_i . h_j) / sqrt(2 * D_h) per Eq. 6; rows softmax (Eq. 7).
  const float inv = 1.0f / std::sqrt(2.0f * static_cast<float>(dim_));
  Tensor attn = ScaledMaskedSoftmax(MatMulNT(query_, h), inv,
                                    /*causal=*/false);
  return MatMul(attn, h);
}

}  // namespace bigcity::nn
