#include "nn/attention.h"

#include <cmath>

#include "nn/arena.h"
#include "nn/kernels/fused.h"
#include "nn/ops.h"
#include "util/check.h"
#include "obs/profiler.h"

namespace bigcity::nn {

void AttentionKv::Truncate(int64_t rows) {
  BIGCITY_CHECK_GE(rows, 0);
  if (rows == 0) {
    k = Tensor();
    v = Tensor();
    return;
  }
  if (!k.is_valid() || k.shape()[0] <= rows) return;
  k = SliceRows(k, 0, rows);
  v = SliceRows(v, 0, rows);
}

void AttentionKv::DetachToHeap() {
  ArenaPin pin;
  if (k.is_valid()) k = k.Detached();
  if (v.is_valid()) v = v.Detached();
}

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t dim, int64_t num_heads,
                                               util::Rng* rng, bool causal)
    : dim_(dim), num_heads_(num_heads), head_dim_(dim / num_heads),
      causal_(causal) {
  BIGCITY_CHECK_EQ(head_dim_ * num_heads_, dim_)
      << "dim must be divisible by num_heads";
  wq_ = std::make_unique<LoraLinear>(dim, dim, rng);
  wk_ = std::make_unique<LoraLinear>(dim, dim, rng);
  wv_ = std::make_unique<LoraLinear>(dim, dim, rng);
  wo_ = std::make_unique<LoraLinear>(dim, dim, rng);
  RegisterModule("wq", wq_.get());
  RegisterModule("wk", wk_.get());
  RegisterModule("wv", wv_.get());
  RegisterModule("wo", wo_.get());
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  return Forward(x, Tensor());
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x,
                                       const Tensor& residual) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  BIGCITY_CHECK_EQ(x.shape().size(), 2u);
  BIGCITY_CHECK_EQ(x.shape()[1], dim_);
  Tensor q = wq_->Forward(x);
  Tensor k = wk_->Forward(x);
  Tensor v = wv_->Forward(x);

  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Tensor> head_outputs;
  head_outputs.reserve(static_cast<size_t>(num_heads_));
  for (int64_t h = 0; h < num_heads_; ++h) {
    const int64_t lo = h * head_dim_, hi = (h + 1) * head_dim_;
    Tensor qh = SliceCols(q, lo, hi);
    Tensor kh = SliceCols(k, lo, hi);
    Tensor vh = SliceCols(v, lo, hi);
    // q·k^T, scaling, causal mask, and softmax in one fused node — no
    // transposed copy of K and no [L,L] mask tensor.
    Tensor attn = ScaledMaskedSoftmax(MatMulNT(qh, kh), inv_sqrt, causal_);
    head_outputs.push_back(MatMul(attn, vh));
  }
  Tensor merged = Concat(head_outputs, /*axis=*/1);
  return residual.is_valid() ? wo_->ForwardResidual(merged, residual)
                             : wo_->Forward(merged);
}

Tensor MultiHeadSelfAttention::ForwardBatched(
    const Tensor& x, const Tensor& residual,
    const std::vector<int64_t>& lens,
    const std::vector<AttentionKv*>* kv_out) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  BIGCITY_CHECK_EQ(x.shape().size(), 2u);
  BIGCITY_CHECK_EQ(x.shape()[1], dim_);
  if (kv_out != nullptr) BIGCITY_CHECK_EQ(kv_out->size(), lens.size());
  int64_t total = 0;
  for (int64_t len : lens) {
    BIGCITY_CHECK_GT(len, 0);
    total += len;
  }
  BIGCITY_CHECK_EQ(total, x.shape()[0]);
  // One tall projection GEMM per matrix; each output row only depends on
  // its own input row, so rows match the per-sequence Forward() bit for
  // bit.
  Tensor q = wq_->Forward(x);
  Tensor k = wk_->Forward(x);
  Tensor v = wv_->Forward(x);

  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Tensor> seq_outputs;
  seq_outputs.reserve(lens.size());
  int64_t off = 0;
  for (size_t seq = 0; seq < lens.size(); ++seq) {
    const int64_t len = lens[seq];
    Tensor qs = SliceRows(q, off, off + len);
    Tensor ks = SliceRows(k, off, off + len);
    Tensor vs = SliceRows(v, off, off + len);
    // A non-empty cache entry holds the projected prefix state of this
    // sequence: its rows in x are the suffix, attended with the causal
    // offset exactly as in ForwardCached. An empty (or absent) entry means
    // the rows are the whole sequence, and the cache — if any — captures a
    // prefill.
    AttentionKv* cache =
        kv_out != nullptr ? (*kv_out)[seq] : nullptr;
    const int64_t offset = cache != nullptr ? cache->length() : 0;
    if (offset > 0) {
      BIGCITY_CHECK(causal_) << "KV-cached decode requires causal attention";
      ks = Concat({cache->k, ks}, /*axis=*/0);
      vs = Concat({cache->v, vs}, /*axis=*/0);
    }
    if (cache != nullptr) {
      cache->k = ks;
      cache->v = vs;
    }
    std::vector<Tensor> head_outputs;
    head_outputs.reserve(static_cast<size_t>(num_heads_));
    for (int64_t h = 0; h < num_heads_; ++h) {
      const int64_t lo = h * head_dim_, hi = (h + 1) * head_dim_;
      Tensor qh = SliceCols(qs, lo, hi);
      Tensor kh = SliceCols(ks, lo, hi);
      Tensor vh = SliceCols(vs, lo, hi);
      Tensor attn =
          ScaledMaskedSoftmax(MatMulNT(qh, kh), inv_sqrt, causal_, offset);
      head_outputs.push_back(MatMul(attn, vh));
    }
    seq_outputs.push_back(Concat(head_outputs, /*axis=*/1));
    off += len;
  }
  Tensor merged = Concat(seq_outputs, /*axis=*/0);
  return residual.is_valid() ? wo_->ForwardResidual(merged, residual)
                             : wo_->Forward(merged);
}

Tensor MultiHeadSelfAttention::ForwardCached(const Tensor& x,
                                             const Tensor& residual,
                                             AttentionKv* kv) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  BIGCITY_CHECK(causal_) << "KV caching requires causal attention";
  BIGCITY_CHECK(kv != nullptr);
  BIGCITY_CHECK_EQ(x.shape().size(), 2u);
  BIGCITY_CHECK_EQ(x.shape()[1], dim_);
  Tensor q = wq_->Forward(x);
  Tensor k_new = wk_->Forward(x);
  Tensor v_new = wv_->Forward(x);
  const int64_t offset = kv->length();
  Tensor k_full = offset > 0 ? Concat({kv->k, k_new}, /*axis=*/0) : k_new;
  Tensor v_full = offset > 0 ? Concat({kv->v, v_new}, /*axis=*/0) : v_new;

  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Tensor> head_outputs;
  head_outputs.reserve(static_cast<size_t>(num_heads_));
  for (int64_t h = 0; h < num_heads_; ++h) {
    const int64_t lo = h * head_dim_, hi = (h + 1) * head_dim_;
    Tensor qh = SliceCols(q, lo, hi);
    Tensor kh = SliceCols(k_full, lo, hi);
    Tensor vh = SliceCols(v_full, lo, hi);
    // Suffix row i is global position offset + i: the offset-causal
    // softmax keeps exactly the entries a full-sequence forward would.
    Tensor attn =
        ScaledMaskedSoftmax(MatMulNT(qh, kh), inv_sqrt, causal_, offset);
    head_outputs.push_back(MatMul(attn, vh));
  }
  kv->k = k_full;
  kv->v = v_full;
  Tensor merged = Concat(head_outputs, /*axis=*/1);
  return residual.is_valid() ? wo_->ForwardResidual(merged, residual)
                             : wo_->Forward(merged);
}

LearnedQueryAttention::LearnedQueryAttention(int64_t num_queries, int64_t dim,
                                             util::Rng* rng)
    : dim_(dim) {
  query_ = RegisterParameter(
      "query", Tensor::Randn({num_queries, dim}, rng, 0.02f,
                             /*requires_grad=*/true));
}

Tensor LearnedQueryAttention::Forward(const Tensor& h) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  BIGCITY_CHECK_EQ(h.shape().size(), 2u);
  BIGCITY_CHECK_EQ(h.shape()[0], query_.shape()[0]);
  BIGCITY_CHECK_EQ(h.shape()[1], dim_);
  // alpha_ij = (q_i . h_j) / sqrt(2 * D_h) per Eq. 6; rows softmax (Eq. 7).
  const float inv = 1.0f / std::sqrt(2.0f * static_cast<float>(dim_));
  Tensor attn = ScaledMaskedSoftmax(MatMulNT(query_, h), inv,
                                    /*causal=*/false);
  return MatMul(attn, h);
}

}  // namespace bigcity::nn
