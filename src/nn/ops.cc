#include "nn/ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/kernels/kernels.h"
#include "obs/profiler.h"
#include "util/check.h"

namespace bigcity::nn {

namespace {

// Profiling convention (DESIGN.md §4.10): every *primitive* op — one that
// calls MakeOpResult directly — opens a BIGCITY_PROFILE_OP scope with FLOP
// and byte estimates for both directions. Composites built from primitives
// (Neg, Mean, Embedding, Mse, L1) deliberately do not, so per-op self
// times partition wall time without double counting.
inline uint64_t U64(int64_t value) { return static_cast<uint64_t>(value); }

constexpr float kPi = 3.14159265358979323846f;

enum class BroadcastMode { kSame, kRowwise, kScalarRhs };

BroadcastMode ResolveBroadcast(const Tensor& a, const Tensor& b) {
  if (a.shape() == b.shape()) return BroadcastMode::kSame;
  if (b.numel() == 1) return BroadcastMode::kScalarRhs;
  if (a.shape().size() == 2 && b.shape().size() == 1 &&
      a.shape()[1] == b.shape()[0]) {
    return BroadcastMode::kRowwise;
  }
  BIGCITY_CHECK(false) << "incompatible shapes for broadcast";
  return BroadcastMode::kSame;
}

/// Index of b's element corresponding to flat index i of a.
inline size_t BIndex(BroadcastMode mode, size_t i, int64_t cols) {
  switch (mode) {
    case BroadcastMode::kSame: return i;
    case BroadcastMode::kRowwise: return i % static_cast<size_t>(cols);
    case BroadcastMode::kScalarRhs: return 0;
  }
  return 0;
}

using BinaryFwd = float (*)(float, float);
using BinaryBwdA = float (*)(float a, float b, float g);
using BinaryBwdB = float (*)(float a, float b, float g);

Tensor BinaryOp(const char* name, const Tensor& a, const Tensor& b,
                BinaryFwd fwd, BinaryBwdA bwd_a, BinaryBwdB bwd_b) {
  BIGCITY_PROFILE_OP(name);
  const BroadcastMode mode = ResolveBroadcast(a, b);
  const int64_t cols =
      a.shape().size() == 2 ? a.shape()[1] : a.numel();
  const auto& ad = a.data();
  const auto& bd = b.data();
  BIGCITY_PROFILE_OP_COST(U64(a.numel()), U64(3 * a.numel()) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(2 * a.numel()), U64(4 * a.numel()) * 4);
  FloatVec out(ad.size());
  for (size_t i = 0; i < ad.size(); ++i) {
    out[i] = fwd(ad[i], bd[BIndex(mode, i, cols)]);
  }
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeOpResult(
      a.shape(), std::move(out), {ai, bi},
      [ai, bi, mode, cols, bwd_a, bwd_b](TensorImpl& self) {
        const auto& g = self.grad;
        if (ai->needs_grad) {
          ai->EnsureGrad();
          for (size_t i = 0; i < g.size(); ++i) {
            ai->grad[i] +=
                bwd_a(ai->data[i], bi->data[BIndex(mode, i, cols)], g[i]);
          }
        }
        if (bi->needs_grad) {
          bi->EnsureGrad();
          for (size_t i = 0; i < g.size(); ++i) {
            const size_t j = BIndex(mode, i, cols);
            bi->grad[j] += bwd_b(ai->data[i], bi->data[j], g[i]);
          }
        }
      });
}

using UnaryFwd = float (*)(float);
/// Derivative expressed in terms of input x and output y.
using UnaryBwd = float (*)(float x, float y);

Tensor UnaryOp(const char* name, const Tensor& a, UnaryFwd fwd,
               UnaryBwd bwd) {
  BIGCITY_PROFILE_OP(name);
  BIGCITY_PROFILE_OP_COST(U64(a.numel()), U64(2 * a.numel()) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(2 * a.numel()), U64(3 * a.numel()) * 4);
  const auto& ad = a.data();
  FloatVec out(ad.size());
  for (size_t i = 0; i < ad.size(); ++i) out[i] = fwd(ad[i]);
  auto ai = a.impl();
  auto out_copy = out;  // Captured for derivative-in-terms-of-output.
  return MakeOpResult(
      a.shape(), std::move(out), {ai},
      [ai, bwd, out_copy = std::move(out_copy)](TensorImpl& self) {
        if (!ai->needs_grad) return;
        ai->EnsureGrad();
        for (size_t i = 0; i < self.grad.size(); ++i) {
          ai->grad[i] += self.grad[i] * bwd(ai->data[i], out_copy[i]);
        }
      });
}

}  // namespace

// --- Elementwise / arithmetic ------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "Add", a, b, [](float x, float y) { return x + y; },
      [](float, float, float g) { return g; },
      [](float, float, float g) { return g; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "Sub", a, b, [](float x, float y) { return x - y; },
      [](float, float, float g) { return g; },
      [](float, float, float g) { return -g; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "Mul", a, b, [](float x, float y) { return x * y; },
      [](float, float y, float g) { return g * y; },
      [](float x, float, float g) { return g * x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "Div", a, b, [](float x, float y) { return x / y; },
      [](float, float y, float g) { return g / y; },
      [](float x, float y, float g) { return -g * x / (y * y); });
}

Tensor Neg(const Tensor& a) { return Scale(a, -1.0f); }

Tensor Scale(const Tensor& a, float factor) {
  BIGCITY_PROFILE_OP("Scale");
  BIGCITY_PROFILE_OP_COST(U64(a.numel()), U64(2 * a.numel()) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(a.numel()), U64(2 * a.numel()) * 4);
  const auto& ad = a.data();
  FloatVec out(ad.size());
  for (size_t i = 0; i < ad.size(); ++i) out[i] = ad[i] * factor;
  auto ai = a.impl();
  return MakeOpResult(a.shape(), std::move(out), {ai},
                      [ai, factor](TensorImpl& self) {
                        if (!ai->needs_grad) return;
                        ai->EnsureGrad();
                        for (size_t i = 0; i < self.grad.size(); ++i) {
                          ai->grad[i] += self.grad[i] * factor;
                        }
                      });
}

Tensor AddConst(const Tensor& a, float value) {
  BIGCITY_PROFILE_OP("AddConst");
  BIGCITY_PROFILE_OP_COST(U64(a.numel()), U64(2 * a.numel()) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(a.numel()), U64(2 * a.numel()) * 4);
  const auto& ad = a.data();
  FloatVec out(ad.size());
  for (size_t i = 0; i < ad.size(); ++i) out[i] = ad[i] + value;
  auto ai = a.impl();
  return MakeOpResult(a.shape(), std::move(out), {ai},
                      [ai](TensorImpl& self) {
                        if (!ai->needs_grad) return;
                        ai->EnsureGrad();
                        for (size_t i = 0; i < self.grad.size(); ++i) {
                          ai->grad[i] += self.grad[i];
                        }
                      });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      "Log", a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      "Exp", a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      "Sqrt", a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / y; });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      "Square", a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(
      "Abs", a, [](float x) { return std::fabs(x); },
      [](float x, float) { return x >= 0.0f ? 1.0f : -1.0f; });
}

// --- Activations ----------------------------------------------------------------

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      "Relu", a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  BIGCITY_PROFILE_OP("LeakyRelu");
  BIGCITY_PROFILE_OP_COST(U64(a.numel()), U64(2 * a.numel()) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(2 * a.numel()), U64(3 * a.numel()) * 4);
  const auto& ad = a.data();
  FloatVec out(ad.size());
  for (size_t i = 0; i < ad.size(); ++i) {
    out[i] = ad[i] > 0.0f ? ad[i] : negative_slope * ad[i];
  }
  auto ai = a.impl();
  return MakeOpResult(
      a.shape(), std::move(out), {ai},
      [ai, negative_slope](TensorImpl& self) {
        if (!ai->needs_grad) return;
        ai->EnsureGrad();
        for (size_t i = 0; i < self.grad.size(); ++i) {
          ai->grad[i] +=
              self.grad[i] * (ai->data[i] > 0.0f ? 1.0f : negative_slope);
        }
      });
}

Tensor Gelu(const Tensor& a) {
  return UnaryOp(
      "Gelu", a,
      [](float x) {
        const float c = std::sqrt(2.0f / kPi);
        return 0.5f * x * (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
      },
      [](float x, float) {
        const float c = std::sqrt(2.0f / kPi);
        const float u = c * (x + 0.044715f * x * x * x);
        const float t = std::tanh(u);
        const float du = c * (1.0f + 3.0f * 0.044715f * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
      });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      "Tanh", a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      "Sigmoid", a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

// --- Linear algebra ----------------------------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  BIGCITY_CHECK_EQ(a.shape().size(), 2u);
  BIGCITY_CHECK_EQ(b.shape().size(), 2u);
  const int64_t n = a.shape()[0], k = a.shape()[1], m = b.shape()[1];
  BIGCITY_CHECK_EQ(k, b.shape()[0]) << "matmul inner dims mismatch";
  BIGCITY_PROFILE_OP("MatMul");
  BIGCITY_PROFILE_OP_COST(U64(2 * n * k * m),
                          U64(n * k + k * m + n * m) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(4 * n * k * m),
                              U64(2 * (n * k + k * m + n * m)) * 4);
  // Write-mode GEMM: the kernel fully overwrites `out`, so no zero-filled
  // accumulation pass over the buffer is ever read.
  FloatVec out(static_cast<size_t>(n * m));
  kernels::GemmAB(a.data().data(), b.data().data(), out.data(), n, k, m,
                  /*accumulate=*/false);
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeOpResult(
      {n, m}, std::move(out), {ai, bi}, [ai, bi, n, k, m](TensorImpl& self) {
        if (ai->needs_grad) {
          ai->EnsureGrad();
          // dA += G * B^T : [N,M] x [M,K]^T-of-[K,M].
          kernels::GemmABt(self.grad.data(), bi->data.data(),
                           ai->grad.data(), n, m, k, /*accumulate=*/true);
        }
        if (bi->needs_grad) {
          bi->EnsureGrad();
          // dB += A^T * G.
          kernels::GemmAtB(ai->data.data(), self.grad.data(),
                           bi->grad.data(), n, k, m, /*accumulate=*/true);
        }
      });
}

Tensor Transpose(const Tensor& a) {
  BIGCITY_CHECK_EQ(a.shape().size(), 2u);
  const int64_t n = a.shape()[0], m = a.shape()[1];
  BIGCITY_PROFILE_OP("Transpose");
  BIGCITY_PROFILE_OP_COST(0, U64(2 * n * m) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(0, U64(2 * n * m) * 4);
  // Write-through in destination order: reserve + push_back instead of
  // value-initializing a buffer that is then fully overwritten.
  FloatVec out;
  out.reserve(static_cast<size_t>(n * m));
  const auto& ad = a.data();
  for (int64_t j = 0; j < m; ++j) {
    for (int64_t i = 0; i < n; ++i) {
      out.push_back(ad[static_cast<size_t>(i * m + j)]);
    }
  }
  auto ai = a.impl();
  return MakeOpResult({m, n}, std::move(out), {ai},
                      [ai, n, m](TensorImpl& self) {
                        if (!ai->needs_grad) return;
                        ai->EnsureGrad();
                        for (int64_t i = 0; i < n; ++i) {
                          for (int64_t j = 0; j < m; ++j) {
                            ai->grad[static_cast<size_t>(i * m + j)] +=
                                self.grad[static_cast<size_t>(j * n + i)];
                          }
                        }
                      });
}

// --- Reductions ------------------------------------------------------------------

Tensor Sum(const Tensor& a) {
  BIGCITY_PROFILE_OP("Sum");
  BIGCITY_PROFILE_OP_COST(U64(a.numel()), U64(a.numel()) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(a.numel()), U64(a.numel()) * 4);
  float total = std::accumulate(a.data().begin(), a.data().end(), 0.0f);
  auto ai = a.impl();
  return MakeOpResult({1}, {total}, {ai}, [ai](TensorImpl& self) {
    if (!ai->needs_grad) return;
    ai->EnsureGrad();
    const float g = self.grad[0];
    for (auto& v : ai->grad) v += g;
  });
}

Tensor Mean(const Tensor& a) {
  return Scale(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor MeanRows(const Tensor& a) {
  BIGCITY_CHECK_EQ(a.shape().size(), 2u);
  const int64_t n = a.shape()[0], d = a.shape()[1];
  BIGCITY_CHECK_GT(n, 0);
  BIGCITY_PROFILE_OP("MeanRows");
  BIGCITY_PROFILE_OP_COST(U64(n * d), U64(n * d) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(n * d), U64(n * d) * 4);
  FloatVec out(static_cast<size_t>(d), 0.0f);
  const auto& ad = a.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      out[static_cast<size_t>(j)] += ad[static_cast<size_t>(i * d + j)];
    }
  }
  const float inv = 1.0f / static_cast<float>(n);
  for (auto& v : out) v *= inv;
  auto ai = a.impl();
  return MakeOpResult({1, d}, std::move(out), {ai},
                      [ai, n, d, inv](TensorImpl& self) {
                        if (!ai->needs_grad) return;
                        ai->EnsureGrad();
                        for (int64_t i = 0; i < n; ++i) {
                          for (int64_t j = 0; j < d; ++j) {
                            ai->grad[static_cast<size_t>(i * d + j)] +=
                                self.grad[static_cast<size_t>(j)] * inv;
                          }
                        }
                      });
}

Tensor SumCols(const Tensor& a) {
  BIGCITY_CHECK_EQ(a.shape().size(), 2u);
  const int64_t n = a.shape()[0], d = a.shape()[1];
  BIGCITY_PROFILE_OP("SumCols");
  BIGCITY_PROFILE_OP_COST(U64(n * d), U64(n * d) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(n * d), U64(n * d) * 4);
  FloatVec out(static_cast<size_t>(n), 0.0f);
  const auto& ad = a.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      out[static_cast<size_t>(i)] += ad[static_cast<size_t>(i * d + j)];
    }
  }
  auto ai = a.impl();
  return MakeOpResult({n}, std::move(out), {ai},
                      [ai, n, d](TensorImpl& self) {
                        if (!ai->needs_grad) return;
                        ai->EnsureGrad();
                        for (int64_t i = 0; i < n; ++i) {
                          for (int64_t j = 0; j < d; ++j) {
                            ai->grad[static_cast<size_t>(i * d + j)] +=
                                self.grad[static_cast<size_t>(i)];
                          }
                        }
                      });
}

// --- Softmax family -----------------------------------------------------------------

Tensor Softmax(const Tensor& a) {
  BIGCITY_CHECK_EQ(a.shape().size(), 2u);
  const int64_t n = a.shape()[0], d = a.shape()[1];
  BIGCITY_PROFILE_OP("Softmax");
  BIGCITY_PROFILE_OP_COST(U64(5 * n * d), U64(2 * n * d) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(4 * n * d), U64(3 * n * d) * 4);
  FloatVec out(a.data().size());
  const auto& ad = a.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = ad.data() + i * d;
    float* out_row = out.data() + i * d;
    float mx = row[0];
    for (int64_t j = 1; j < d; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < d; ++j) {
      out_row[j] = std::exp(row[j] - mx);
      sum += out_row[j];
    }
    const float inv = 1.0f / sum;
    for (int64_t j = 0; j < d; ++j) out_row[j] *= inv;
  }
  auto ai = a.impl();
  auto y = out;  // Copy for backward.
  return MakeOpResult(
      a.shape(), std::move(out), {ai},
      [ai, n, d, y = std::move(y)](TensorImpl& self) {
        if (!ai->needs_grad) return;
        ai->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          const float* yr = y.data() + i * d;
          const float* gr = self.grad.data() + i * d;
          float dot = 0.0f;
          for (int64_t j = 0; j < d; ++j) dot += yr[j] * gr[j];
          float* ar = ai->grad.data() + i * d;
          for (int64_t j = 0; j < d; ++j) ar[j] += yr[j] * (gr[j] - dot);
        }
      });
}

Tensor LogSoftmax(const Tensor& a) {
  BIGCITY_CHECK_EQ(a.shape().size(), 2u);
  const int64_t n = a.shape()[0], d = a.shape()[1];
  BIGCITY_PROFILE_OP("LogSoftmax");
  BIGCITY_PROFILE_OP_COST(U64(5 * n * d), U64(2 * n * d) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(4 * n * d), U64(3 * n * d) * 4);
  FloatVec out(a.data().size());
  const auto& ad = a.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = ad.data() + i * d;
    float* out_row = out.data() + i * d;
    float mx = row[0];
    for (int64_t j = 1; j < d; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < d; ++j) sum += std::exp(row[j] - mx);
    const float lse = mx + std::log(sum);
    for (int64_t j = 0; j < d; ++j) out_row[j] = row[j] - lse;
  }
  auto ai = a.impl();
  auto y = out;
  return MakeOpResult(
      a.shape(), std::move(out), {ai},
      [ai, n, d, y = std::move(y)](TensorImpl& self) {
        if (!ai->needs_grad) return;
        ai->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          const float* yr = y.data() + i * d;
          const float* gr = self.grad.data() + i * d;
          float gsum = 0.0f;
          for (int64_t j = 0; j < d; ++j) gsum += gr[j];
          float* ar = ai->grad.data() + i * d;
          for (int64_t j = 0; j < d; ++j) {
            ar[j] += gr[j] - std::exp(yr[j]) * gsum;
          }
        }
      });
}

// --- Normalization --------------------------------------------------------------------

Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps) {
  BIGCITY_CHECK_EQ(x.shape().size(), 2u);
  const int64_t n = x.shape()[0], d = x.shape()[1];
  BIGCITY_CHECK_EQ(gamma.numel(), d);
  BIGCITY_CHECK_EQ(beta.numel(), d);
  BIGCITY_PROFILE_OP("LayerNorm");
  BIGCITY_PROFILE_OP_COST(U64(8 * n * d), U64(4 * n * d) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(12 * n * d), U64(5 * n * d) * 4);
  const auto& xd = x.data();
  const auto& gd = gamma.data();
  const auto& bd = beta.data();
  FloatVec out(xd.size());
  FloatVec xhat(xd.size());
  FloatVec inv_std(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const float* row = xd.data() + i * d;
    float mean = 0.0f;
    for (int64_t j = 0; j < d; ++j) mean += row[j];
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (int64_t j = 0; j < d; ++j) {
      const float c = row[j] - mean;
      var += c * c;
    }
    var /= static_cast<float>(d);
    const float istd = 1.0f / std::sqrt(var + eps);
    inv_std[static_cast<size_t>(i)] = istd;
    for (int64_t j = 0; j < d; ++j) {
      const float xh = (row[j] - mean) * istd;
      xhat[static_cast<size_t>(i * d + j)] = xh;
      out[static_cast<size_t>(i * d + j)] = gd[j] * xh + bd[j];
    }
  }
  auto xi = x.impl();
  auto gi = gamma.impl();
  auto bi = beta.impl();
  return MakeOpResult(
      x.shape(), std::move(out), {xi, gi, bi},
      [xi, gi, bi, n, d, xhat = std::move(xhat),
       inv_std = std::move(inv_std)](TensorImpl& self) {
        const auto& g = self.grad;
        if (gi->needs_grad) gi->EnsureGrad();
        if (bi->needs_grad) bi->EnsureGrad();
        if (xi->needs_grad) xi->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          const float* gr = g.data() + i * d;
          const float* xh = xhat.data() + i * d;
          if (gi->needs_grad || bi->needs_grad) {
            for (int64_t j = 0; j < d; ++j) {
              if (gi->needs_grad) gi->grad[j] += gr[j] * xh[j];
              if (bi->needs_grad) bi->grad[j] += gr[j];
            }
          }
          if (xi->needs_grad) {
            // dx = istd * (dy*gamma - mean(dy*gamma) - xhat*mean(dy*gamma*xhat))
            float m1 = 0.0f, m2 = 0.0f;
            for (int64_t j = 0; j < d; ++j) {
              const float dg = gr[j] * gi->data[j];
              m1 += dg;
              m2 += dg * xh[j];
            }
            m1 /= static_cast<float>(d);
            m2 /= static_cast<float>(d);
            const float istd = inv_std[static_cast<size_t>(i)];
            float* xr = xi->grad.data() + i * d;
            for (int64_t j = 0; j < d; ++j) {
              const float dg = gr[j] * gi->data[j];
              xr[j] += istd * (dg - m1 - xh[j] * m2);
            }
          }
        }
      });
}

// --- Shape manipulation ------------------------------------------------------------------

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  BIGCITY_CHECK(!parts.empty());
  BIGCITY_CHECK(axis == 0 || axis == 1);
  BIGCITY_PROFILE_OP("Concat");
  ParentVec parents;
  parents.reserve(parts.size());
  for (const auto& p : parts) {
    BIGCITY_CHECK_EQ(p.shape().size(), 2u);
    parents.push_back(p.impl());
  }
  int64_t rows = 0, cols = 0;
  if (axis == 0) {
    cols = parts[0].shape()[1];
    for (const auto& p : parts) {
      BIGCITY_CHECK_EQ(p.shape()[1], cols);
      rows += p.shape()[0];
    }
  } else {
    rows = parts[0].shape()[0];
    for (const auto& p : parts) {
      BIGCITY_CHECK_EQ(p.shape()[0], rows);
      cols += p.shape()[1];
    }
  }
  FloatVec out(static_cast<size_t>(rows * cols));
  BIGCITY_PROFILE_OP_COST(0, U64(2 * rows * cols) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(0, U64(2 * rows * cols) * 4);
  if (axis == 0) {
    size_t offset = 0;
    for (const auto& p : parts) {
      std::copy(p.data().begin(), p.data().end(), out.begin() + offset);
      offset += p.data().size();
    }
  } else {
    int64_t col_offset = 0;
    for (const auto& p : parts) {
      const int64_t pc = p.shape()[1];
      for (int64_t i = 0; i < rows; ++i) {
        std::copy(p.data().begin() + i * pc, p.data().begin() + (i + 1) * pc,
                  out.begin() + i * cols + col_offset);
      }
      col_offset += pc;
    }
  }
  return MakeOpResult(
      {rows, cols}, std::move(out), parents,
      [parents, axis, rows, cols](TensorImpl& self) {
        if (axis == 0) {
          size_t offset = 0;
          for (const auto& p : parents) {
            if (p->needs_grad) {
              p->EnsureGrad();
              for (size_t i = 0; i < p->data.size(); ++i) {
                p->grad[i] += self.grad[offset + i];
              }
            }
            offset += p->data.size();
          }
        } else {
          int64_t col_offset = 0;
          for (const auto& p : parents) {
            const int64_t pc = p->shape[1];
            if (p->needs_grad) {
              p->EnsureGrad();
              for (int64_t i = 0; i < rows; ++i) {
                for (int64_t j = 0; j < pc; ++j) {
                  p->grad[static_cast<size_t>(i * pc + j)] +=
                      self.grad[static_cast<size_t>(i * cols + col_offset + j)];
                }
              }
            }
            col_offset += pc;
          }
        }
      });
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t end) {
  BIGCITY_CHECK_EQ(a.shape().size(), 2u);
  const int64_t n = a.shape()[0], d = a.shape()[1];
  BIGCITY_CHECK(0 <= start && start <= end && end <= n);
  const int64_t m = end - start;
  BIGCITY_PROFILE_OP("SliceRows");
  BIGCITY_PROFILE_OP_COST(0, U64(2 * m * d) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(0, U64(2 * m * d) * 4);
  FloatVec out(a.data().begin() + start * d,
                         a.data().begin() + end * d);
  auto ai = a.impl();
  return MakeOpResult({m, d}, std::move(out), {ai},
                      [ai, start, d, m](TensorImpl& self) {
                        if (!ai->needs_grad) return;
                        ai->EnsureGrad();
                        for (int64_t i = 0; i < m * d; ++i) {
                          ai->grad[static_cast<size_t>(start * d + i)] +=
                              self.grad[static_cast<size_t>(i)];
                        }
                      });
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t end) {
  BIGCITY_CHECK_EQ(a.shape().size(), 2u);
  const int64_t n = a.shape()[0], d = a.shape()[1];
  BIGCITY_CHECK(0 <= start && start <= end && end <= d);
  const int64_t m = end - start;
  BIGCITY_PROFILE_OP("SliceCols");
  BIGCITY_PROFILE_OP_COST(0, U64(2 * n * m) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(0, U64(2 * n * m) * 4);
  FloatVec out(static_cast<size_t>(n * m));
  const auto& ad = a.data();
  for (int64_t i = 0; i < n; ++i) {
    std::copy(ad.begin() + i * d + start, ad.begin() + i * d + end,
              out.begin() + i * m);
  }
  auto ai = a.impl();
  return MakeOpResult({n, m}, std::move(out), {ai},
                      [ai, start, n, d, m](TensorImpl& self) {
                        if (!ai->needs_grad) return;
                        ai->EnsureGrad();
                        for (int64_t i = 0; i < n; ++i) {
                          for (int64_t j = 0; j < m; ++j) {
                            ai->grad[static_cast<size_t>(i * d + start + j)] +=
                                self.grad[static_cast<size_t>(i * m + j)];
                          }
                        }
                      });
}

Tensor Rows(const Tensor& a, const std::vector<int>& indices) {
  BIGCITY_CHECK_EQ(a.shape().size(), 2u);
  const int64_t n = a.shape()[0], d = a.shape()[1];
  BIGCITY_PROFILE_OP("Rows");
  BIGCITY_PROFILE_OP_COST(0, U64(2 * static_cast<int64_t>(indices.size()) *
                                 d) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(
      0, U64(2 * static_cast<int64_t>(indices.size()) * d) * 4);
  FloatVec out(indices.size() * static_cast<size_t>(d));
  const auto& ad = a.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    BIGCITY_CHECK(indices[i] >= 0 && indices[i] < n);
    std::copy(ad.begin() + indices[i] * d, ad.begin() + (indices[i] + 1) * d,
              out.begin() + static_cast<int64_t>(i) * d);
  }
  auto ai = a.impl();
  return MakeOpResult(
      {static_cast<int64_t>(indices.size()), d}, std::move(out), {ai},
      [ai, indices, d](TensorImpl& self) {
        if (!ai->needs_grad) return;
        ai->EnsureGrad();
        for (size_t i = 0; i < indices.size(); ++i) {
          for (int64_t j = 0; j < d; ++j) {
            ai->grad[static_cast<size_t>(indices[i] * d + j)] +=
                self.grad[i * static_cast<size_t>(d) + static_cast<size_t>(j)];
          }
        }
      });
}

Tensor Reshape(const Tensor& a, std::vector<int64_t> shape) {
  BIGCITY_PROFILE_OP("Reshape");
  BIGCITY_PROFILE_OP_COST(0, U64(2 * a.numel()) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(0, U64(2 * a.numel()) * 4);
  int64_t n = 1;
  for (int64_t s : shape) n *= s;
  BIGCITY_CHECK_EQ(n, a.numel());
  auto ai = a.impl();
  return MakeOpResult(std::move(shape), a.data(), {ai},
                      [ai](TensorImpl& self) {
                        if (!ai->needs_grad) return;
                        ai->EnsureGrad();
                        for (size_t i = 0; i < self.grad.size(); ++i) {
                          ai->grad[i] += self.grad[i];
                        }
                      });
}

// --- Lookup / graph ops --------------------------------------------------------------------

Tensor Embedding(const Tensor& table, const std::vector<int>& indices) {
  return Rows(table, indices);
}

Tensor SegmentSoftmax(const Tensor& scores, const std::vector<int>& segment_ids,
                      int num_segments) {
  BIGCITY_CHECK_EQ(scores.numel(), static_cast<int64_t>(segment_ids.size()));
  BIGCITY_PROFILE_OP("SegmentSoftmax");
  BIGCITY_PROFILE_OP_COST(U64(5 * scores.numel()),
                          U64(3 * scores.numel()) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(4 * scores.numel()),
                              U64(3 * scores.numel()) * 4);
  const auto& sd = scores.data();
  const size_t e = sd.size();
  FloatVec seg_max(static_cast<size_t>(num_segments),
                             -1e30f);
  for (size_t i = 0; i < e; ++i) {
    BIGCITY_CHECK(segment_ids[i] >= 0 && segment_ids[i] < num_segments);
    seg_max[segment_ids[i]] = std::max(seg_max[segment_ids[i]], sd[i]);
  }
  FloatVec out(e);
  FloatVec seg_sum(static_cast<size_t>(num_segments), 0.0f);
  for (size_t i = 0; i < e; ++i) {
    out[i] = std::exp(sd[i] - seg_max[segment_ids[i]]);
    seg_sum[segment_ids[i]] += out[i];
  }
  for (size_t i = 0; i < e; ++i) out[i] /= seg_sum[segment_ids[i]];
  auto si = scores.impl();
  auto y = out;
  return MakeOpResult(
      scores.shape(), std::move(out), {si},
      [si, segment_ids, num_segments, y = std::move(y)](TensorImpl& self) {
        if (!si->needs_grad) return;
        si->EnsureGrad();
        FloatVec seg_dot(static_cast<size_t>(num_segments), 0.0f);
        for (size_t i = 0; i < y.size(); ++i) {
          seg_dot[segment_ids[i]] += y[i] * self.grad[i];
        }
        for (size_t i = 0; i < y.size(); ++i) {
          si->grad[i] += y[i] * (self.grad[i] - seg_dot[segment_ids[i]]);
        }
      });
}

Tensor SegmentWeightedSum(const Tensor& weights, const Tensor& values,
                          const std::vector<int>& segment_ids,
                          int num_segments) {
  BIGCITY_CHECK_EQ(values.shape().size(), 2u);
  const int64_t e = values.shape()[0], d = values.shape()[1];
  BIGCITY_CHECK_EQ(weights.numel(), e);
  BIGCITY_CHECK_EQ(static_cast<int64_t>(segment_ids.size()), e);
  BIGCITY_PROFILE_OP("SegmentWeightedSum");
  BIGCITY_PROFILE_OP_COST(U64(2 * e * d), U64(3 * e * d) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(4 * e * d), U64(4 * e * d) * 4);
  FloatVec out(static_cast<size_t>(num_segments) *
                             static_cast<size_t>(d),
                         0.0f);
  const auto& wd = weights.data();
  const auto& vd = values.data();
  for (int64_t i = 0; i < e; ++i) {
    float* out_row = out.data() + segment_ids[static_cast<size_t>(i)] * d;
    const float* v_row = vd.data() + i * d;
    const float w = wd[static_cast<size_t>(i)];
    for (int64_t j = 0; j < d; ++j) out_row[j] += w * v_row[j];
  }
  auto wi = weights.impl();
  auto vi = values.impl();
  return MakeOpResult(
      {num_segments, d}, std::move(out), {wi, vi},
      [wi, vi, segment_ids, e, d](TensorImpl& self) {
        if (wi->needs_grad) wi->EnsureGrad();
        if (vi->needs_grad) vi->EnsureGrad();
        for (int64_t i = 0; i < e; ++i) {
          const float* g_row =
              self.grad.data() + segment_ids[static_cast<size_t>(i)] * d;
          if (wi->needs_grad) {
            const float* v_row = vi->data.data() + i * d;
            float acc = 0.0f;
            for (int64_t j = 0; j < d; ++j) acc += g_row[j] * v_row[j];
            wi->grad[static_cast<size_t>(i)] += acc;
          }
          if (vi->needs_grad) {
            const float w = wi->data[static_cast<size_t>(i)];
            float* v_grad = vi->grad.data() + i * d;
            for (int64_t j = 0; j < d; ++j) v_grad[j] += w * g_row[j];
          }
        }
      });
}

// --- Regularization ----------------------------------------------------------------------

Tensor Dropout(const Tensor& a, float p, util::Rng* rng, bool training) {
  if (!training || p <= 0.0f) return a;
  BIGCITY_CHECK_LT(p, 1.0f);
  BIGCITY_PROFILE_OP("Dropout");
  BIGCITY_PROFILE_OP_COST(U64(a.numel()), U64(3 * a.numel()) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(a.numel()), U64(3 * a.numel()) * 4);
  const float scale = 1.0f / (1.0f - p);
  FloatVec mask(a.data().size());
  for (auto& m : mask) m = rng->Bernoulli(p) ? 0.0f : scale;
  const auto& ad = a.data();
  FloatVec out(ad.size());
  for (size_t i = 0; i < ad.size(); ++i) out[i] = ad[i] * mask[i];
  auto ai = a.impl();
  return MakeOpResult(a.shape(), std::move(out), {ai},
                      [ai, mask = std::move(mask)](TensorImpl& self) {
                        if (!ai->needs_grad) return;
                        ai->EnsureGrad();
                        for (size_t i = 0; i < self.grad.size(); ++i) {
                          ai->grad[i] += self.grad[i] * mask[i];
                        }
                      });
}

// --- Losses ------------------------------------------------------------------------------

Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets) {
  BIGCITY_CHECK_EQ(logits.shape().size(), 2u);
  const int64_t n = logits.shape()[0], c = logits.shape()[1];
  BIGCITY_CHECK_EQ(static_cast<int64_t>(targets.size()), n);
  BIGCITY_PROFILE_OP("CrossEntropy");
  BIGCITY_PROFILE_OP_COST(U64(5 * n * c), U64(2 * n * c) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(2 * n * c), U64(2 * n * c) * 4);
  const auto& ld = logits.data();
  // Forward: mean of -log softmax at target indices; store probs for bwd.
  FloatVec probs(ld.size());
  float loss = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    BIGCITY_CHECK(targets[static_cast<size_t>(i)] >= 0 &&
                  targets[static_cast<size_t>(i)] < c);
    const float* row = ld.data() + i * c;
    float* prow = probs.data() + i * c;
    float mx = row[0];
    for (int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < c; ++j) {
      prow[j] = std::exp(row[j] - mx);
      sum += prow[j];
    }
    const float inv = 1.0f / sum;
    for (int64_t j = 0; j < c; ++j) prow[j] *= inv;
    loss -= std::log(
        std::max(prow[targets[static_cast<size_t>(i)]], 1e-12f));
  }
  loss /= static_cast<float>(n);
  auto li = logits.impl();
  return MakeOpResult(
      {1}, {loss}, {li},
      [li, targets, n, c, probs = std::move(probs)](TensorImpl& self) {
        if (!li->needs_grad) return;
        li->EnsureGrad();
        const float g = self.grad[0] / static_cast<float>(n);
        for (int64_t i = 0; i < n; ++i) {
          const float* prow = probs.data() + i * c;
          float* grow = li->grad.data() + i * c;
          for (int64_t j = 0; j < c; ++j) grow[j] += g * prow[j];
          grow[targets[static_cast<size_t>(i)]] -= g;
        }
      });
}

Tensor Mse(const Tensor& pred, const Tensor& target) {
  BIGCITY_CHECK_EQ(pred.numel(), target.numel());
  return Mean(Square(Sub(pred, target)));
}

Tensor L1(const Tensor& pred, const Tensor& target) {
  BIGCITY_CHECK_EQ(pred.numel(), target.numel());
  return Mean(Abs(Sub(pred, target)));
}

// --- Non-differentiable helpers ---------------------------------------------------------------

std::vector<int> ArgmaxRows(const Tensor& a) {
  BIGCITY_CHECK_EQ(a.shape().size(), 2u);
  const int64_t n = a.shape()[0], d = a.shape()[1];
  std::vector<int> result(static_cast<size_t>(n));
  const auto& ad = a.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = ad.data() + i * d;
    result[static_cast<size_t>(i)] = static_cast<int>(
        std::max_element(row, row + d) - row);
  }
  return result;
}

std::vector<int> TopKRow(const Tensor& a, int64_t row, int k) {
  BIGCITY_CHECK_EQ(a.shape().size(), 2u);
  const int64_t d = a.shape()[1];
  BIGCITY_CHECK(row >= 0 && row < a.shape()[0]);
  k = static_cast<int>(std::min<int64_t>(k, d));
  const float* r = a.data().data() + row * d;
  std::vector<int> order(static_cast<size_t>(d));
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [r](int x, int y) { return r[x] > r[y]; });
  order.resize(static_cast<size_t>(k));
  return order;
}

}  // namespace bigcity::nn
