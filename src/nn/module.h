#ifndef BIGCITY_NN_MODULE_H_
#define BIGCITY_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "nn/tensor.h"
#include "util/status.h"

namespace bigcity::nn {

/// Base class for neural-network modules. Subclasses register their
/// parameters and child modules so that Parameters()/NamedParameters()
/// enumerate the full tree (used by optimizers, freezing, checkpointing).
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its registered children.
  std::vector<Tensor> Parameters() const;

  /// Parameters with hierarchical dotted names ("block0.attn.wq").
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Only parameters with requires_grad == true.
  std::vector<Tensor> TrainableParameters() const;

  /// Sets requires_grad on every parameter in the subtree (freezing).
  void SetTrainable(bool trainable);

  /// Total number of scalar parameters in the subtree.
  int64_t NumParameters() const;

  /// Walks the subtree assigning module_path(): this module gets
  /// `root_path`, each child "<parent path>.<registered name>" — the same
  /// dotted prefixes NamedParameters() produces, so profiler and health
  /// attribution share one key space. Call once on the root after the
  /// module tree is fully constructed (it is static afterwards; LoRA only
  /// adds parameters, not modules).
  void AssignModulePaths(const std::string& root_path = "");

  /// Dotted path assigned by AssignModulePaths ("" before assignment and
  /// for the root itself).
  const std::string& module_path() const { return module_path_; }

  /// Serializes all named parameters to a binary stream / file.
  void SaveState(std::ostream& out) const;
  util::Status LoadState(std::istream& in);
  util::Status SaveStateToFile(const std::string& path) const;
  util::Status LoadStateFromFile(const std::string& path);

  /// Copies parameter values from another module with an identical
  /// parameter tree (shape-checked).
  void CopyStateFrom(const Module& other);

 protected:
  /// Registers a parameter tensor under this module; returns it for
  /// convenient member initialization.
  Tensor RegisterParameter(std::string name, Tensor parameter);

  /// Registers a child module (not owned).
  void RegisterModule(std::string name, Module* child);

 private:
  std::vector<std::pair<std::string, Tensor>> parameters_;
  std::vector<std::pair<std::string, Module*>> children_;
  std::string module_path_;
};

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_MODULE_H_
