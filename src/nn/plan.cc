#include "nn/plan.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace bigcity::nn {

ExecutionPlan* PlanCache::Acquire(const PlanKey& key) {
  if (!enabled_ || capacity_ == 0) return nullptr;
  ++tick_;
  for (Entry& entry : entries_) {
    if (entry.key == key) {
      entry.tick = tick_;
      ++hits_;
      BIGCITY_COUNTER_INC("plan.cache.hit");
      return entry.plan.get();
    }
  }
  ++misses_;
  BIGCITY_COUNTER_INC("plan.cache.miss");
  if (entries_.size() >= capacity_) {
    auto lru = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.tick < b.tick; });
    // Eviction only happens between scopes, where the plan's arena is
    // fully drained; a poisoned arena (stale tensors alive) must not be
    // destroyed, so it is deliberately leaked into a fresh entry swap.
    BIGCITY_CHECK_EQ(lru->plan->arena.outstanding(), 0)
        << "evicting a plan whose arena still has live allocations";
    ++evictions_;
    BIGCITY_COUNTER_INC("plan.cache.evict");
    entries_.erase(lru);
  }
  entries_.push_back(Entry{key, std::make_unique<ExecutionPlan>(), tick_});
  return entries_.back().plan.get();
}

PlanScope::PlanScope(PlanCache* cache, PlanKey key) {
  if (cache == nullptr) return;
  plan_ = cache->Acquire(key);
  if (plan_ == nullptr) return;  // Disabled cache: eager fallback.
  capturing_ = plan_->captures == 0;
  entry_capacity_ = plan_->arena.capacity_bytes();
#if BIGCITY_OBS
  if (capturing_) capture_span_.emplace("plan.capture", "plan");
#endif
  arena_scope_.emplace(&plan_->arena);
}

PlanScope::~PlanScope() {
  if (plan_ == nullptr) return;
  arena_scope_.reset();  // Deactivate before touching statistics.
  TensorArena& arena = plan_->arena;
  // A step that had to grow the arena is a (re)capture, not a replay:
  // replays are the steps served entirely from recycled slabs.
  const bool grew = arena.capacity_bytes() > entry_capacity_;
  plan_->footprint_bytes = std::max(plan_->footprint_bytes,
                                    arena.step_bytes());
  plan_->footprint_allocs =
      std::max(plan_->footprint_allocs, arena.step_allocs());
  if (capturing_ || grew) {
    ++plan_->captures;
  } else {
    ++plan_->replays;
  }
  arena.Reset();
  BIGCITY_GAUGE_SET("plan.arena.bytes", TensorArena::TotalBytes());
}

}  // namespace bigcity::nn
