#ifndef BIGCITY_NN_GAT_H_
#define BIGCITY_NN_GAT_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

namespace bigcity::nn {

/// Edge list of a directed graph for GAT layers. Self-loops are expected to
/// be present (AddSelfLoops) so every node attends at least to itself.
struct GraphEdges {
  std::vector<int> src;  // Message source node per edge.
  std::vector<int> dst;  // Message target node per edge.
  int num_nodes = 0;

  /// Appends (i, i) edges for all nodes that are missing them.
  void AddSelfLoops();
};

/// Graph attention layer (Velickovic et al., 2018): per edge (j -> i),
/// e_ij = LeakyReLU(a^T [W h_i || W h_j]); attention is softmax over the
/// incoming edges of i; output h'_i = sum_j alpha_ij W h_j. Multiple heads
/// are concatenated.
class GatLayer : public Module {
 public:
  GatLayer(int64_t in_dim, int64_t out_dim, int64_t num_heads,
           util::Rng* rng);

  /// h [N, in_dim] -> [N, out_dim] (out_dim split across heads).
  Tensor Forward(const Tensor& h, const GraphEdges& graph) const;

  int64_t out_dim() const { return head_dim_ * num_heads_; }

 private:
  int64_t num_heads_;
  int64_t head_dim_;
  std::vector<std::unique_ptr<Linear>> head_proj_;  // W per head.
  std::vector<Tensor> attn_dst_;  // a_1 per head: [head_dim, 1].
  std::vector<Tensor> attn_src_;  // a_2 per head: [head_dim, 1].
};

/// Two-layer GAT encoder with an FFN output, matching the paper's
/// FFN(GAT(.)) encoders (Eq. 4 / Eq. 5).
class GatEncoder : public Module {
 public:
  GatEncoder(int64_t in_dim, int64_t hidden_dim, int64_t out_dim,
             int64_t num_heads, util::Rng* rng);

  Tensor Forward(const Tensor& features, const GraphEdges& graph) const;

 private:
  std::unique_ptr<GatLayer> gat1_;
  std::unique_ptr<GatLayer> gat2_;
  std::unique_ptr<Mlp> ffn_;
};

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_GAT_H_
