#include "nn/module.h"

#include "util/check.h"
#include "util/checkpoint.h"
#include "util/io.h"

namespace bigcity::nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> result;
  for (const auto& [name, p] : NamedParameters()) result.push_back(p);
  return result;
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> result;
  for (const auto& [name, p] : parameters_) result.emplace_back(name, p);
  for (const auto& [name, child] : children_) {
    for (auto& [child_name, p] : child->NamedParameters()) {
      result.emplace_back(name + "." + child_name, p);
    }
  }
  return result;
}

std::vector<Tensor> Module::TrainableParameters() const {
  std::vector<Tensor> result;
  for (const auto& p : Parameters()) {
    if (p.requires_grad()) result.push_back(p);
  }
  return result;
}

void Module::SetTrainable(bool trainable) {
  for (auto& p : Parameters()) p.set_requires_grad(trainable);
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const auto& p : Parameters()) total += p.numel();
  return total;
}

void Module::AssignModulePaths(const std::string& root_path) {
  module_path_ = root_path;
  for (const auto& [name, child] : children_) {
    child->AssignModulePaths(root_path.empty() ? name
                                               : root_path + "." + name);
  }
}

void Module::SaveState(std::ostream& out) const {
  const auto named = NamedParameters();
  util::WriteU64(out, named.size());
  for (const auto& [name, p] : named) {
    util::WriteString(out, name);
    util::WriteFloatSpan(out, p.data().data(), p.data().size());
  }
}

util::Status Module::LoadState(std::istream& in) {
  uint64_t count = 0;
  if (auto s = util::ReadU64(in, &count); !s.ok()) return s;
  auto named = NamedParameters();
  if (count != named.size()) {
    return util::Status::InvalidArgument(
        "checkpoint parameter count mismatch");
  }
  for (auto& [name, p] : named) {
    std::string stored_name;
    std::vector<float> values;
    if (auto s = util::ReadString(in, &stored_name); !s.ok()) return s;
    if (auto s = util::ReadFloatVector(in, &values); !s.ok()) return s;
    if (stored_name != name) {
      return util::Status::InvalidArgument("checkpoint name mismatch: " +
                                           stored_name + " vs " + name);
    }
    if (values.size() != p.data().size()) {
      return util::Status::InvalidArgument("checkpoint shape mismatch for " +
                                           name);
    }
    p.data().assign(values.begin(), values.end());
  }
  return util::Status::Ok();
}

util::Status Module::SaveStateToFile(const std::string& path) const {
  // Crash-safe container write: header + CRC, temp file, fsync, rename.
  util::CheckpointWriter writer;
  SaveState(writer.stream());
  return writer.Commit(path);
}

util::Status Module::LoadStateFromFile(const std::string& path) {
  util::CheckpointReader reader;
  if (auto s = reader.Open(path); !s.ok()) return s;
  return LoadState(reader.stream());
}

void Module::CopyStateFrom(const Module& other) {
  auto dst = NamedParameters();
  auto src = other.NamedParameters();
  BIGCITY_CHECK_EQ(dst.size(), src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    BIGCITY_CHECK_EQ(dst[i].second.data().size(), src[i].second.data().size())
        << "parameter " << dst[i].first;
    dst[i].second.data() = src[i].second.data();
  }
}

Tensor Module::RegisterParameter(std::string name, Tensor parameter) {
  BIGCITY_CHECK(parameter.is_valid());
  parameters_.emplace_back(std::move(name), parameter);
  return parameter;
}

void Module::RegisterModule(std::string name, Module* child) {
  BIGCITY_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

}  // namespace bigcity::nn
