#ifndef BIGCITY_NN_TENSOR_H_
#define BIGCITY_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/arena.h"
#include "obs/memory.h"
#include "util/rng.h"

namespace bigcity::nn {

struct TensorImpl;

/// Parent edges of a graph node; arena-backed inside a plan scope like
/// the payloads they keep alive.
using ParentVec =
    std::vector<std::shared_ptr<TensorImpl>,
                ArenaAllocator<std::shared_ptr<TensorImpl>>>;

/// Internal node of the autograd graph. Users interact with Tensor handles.
/// All payload storage (data, grad, parent edges, and — via
/// allocate_shared — the node itself) is allocator-routed: inside a
/// PlanScope it lands in the step's TensorArena and is recycled at the
/// step boundary; outside (parameters, persistent caches) it lives on the
/// heap with obs::MemoryTracker accounting at the allocator level.
struct TensorImpl {
  std::vector<int64_t> shape;
  FloatVec data;
  FloatVec grad;  // Same size as data once materialized.

  /// True for leaf parameters the optimizer should update.
  bool requires_grad = false;
  /// True if gradients must flow through this node (requires_grad for
  /// leaves; "any parent needs grad" for op outputs).
  bool needs_grad = false;

  ParentVec parents;
  /// Accumulates this node's grad into its parents' grads.
  std::function<void(TensorImpl&)> backward_fn;

  /// Introspection tags (DESIGN.md §4.10): creation order (monotonic per
  /// process, 0 = untagged) plus, under BIGCITY_OBS, the producing op and
  /// the innermost module scope active when the node was created. They let
  /// a non-finite guard trip name the first offending node/module.
  uint64_t seq = 0;
  const char* op_name = "";      // String literal; "" = untagged.
  const char* module_path = "";  // Owned by the module tree; "" = untagged.

  int64_t numel() const {
    int64_t n = 1;
    for (int64_t d : shape) n *= d;
    return n;
  }
  /// Zero-fills and sizes the gradient buffer if not yet materialized.
  /// The buffer comes from grad's own allocator — the arena for step
  /// tensors, the heap for parameters created outside any scope — so a
  /// backward pass never needs a pinning dance.
  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

/// True unless a NoGradGuard is active on this thread. Ops skip graph
/// construction (parents/backward_fn) entirely while disabled, so
/// inference forwards free every intermediate as soon as its handle dies.
bool GradEnabled();

/// Thread-local RAII guard disabling autograd graph construction — the
/// serving hot path runs under one, which is what gives inference plans
/// their fixed arena footprint.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Value-semantic handle to a node in the autograd graph. Copies share the
/// underlying storage (like torch.Tensor). Tensors are dense row-major
/// float32, typically 1-D (vectors) or 2-D (matrices [rows, cols]).
class Tensor {
 public:
  /// Null handle; most APIs check for validity with is_valid().
  Tensor() = default;

  // --- Factories -----------------------------------------------------------

  /// All-zero tensor of the given shape.
  static Tensor Zeros(std::vector<int64_t> shape, bool requires_grad = false);
  /// All-one tensor.
  static Tensor Ones(std::vector<int64_t> shape, bool requires_grad = false);
  /// Constant-filled tensor.
  static Tensor Full(std::vector<int64_t> shape, float value,
                     bool requires_grad = false);
  /// Tensor initialized from an explicit buffer (size must match shape).
  static Tensor FromData(std::vector<int64_t> shape, std::vector<float> data,
                         bool requires_grad = false);
  /// Same, from a payload with any allocator flavor (e.g. another
  /// tensor's data()).
  template <typename Alloc>
  static Tensor FromData(std::vector<int64_t> shape,
                         const std::vector<float, Alloc>& data,
                         bool requires_grad = false) {
    return FromSpan(std::move(shape), data.data(), data.size(),
                    requires_grad);
  }
  /// Same, from a raw (pointer, count) span.
  static Tensor FromSpan(std::vector<int64_t> shape, const float* values,
                         size_t count, bool requires_grad = false);
  /// Gaussian-initialized tensor (mean 0).
  static Tensor Randn(std::vector<int64_t> shape, util::Rng* rng,
                      float stddev = 1.0f, bool requires_grad = false);
  /// Uniform[-bound, bound]-initialized tensor.
  static Tensor RandUniform(std::vector<int64_t> shape, util::Rng* rng,
                            float bound, bool requires_grad = false);
  /// Xavier/Glorot-uniform initialization for a [fan_in, fan_out] matrix.
  static Tensor Xavier(int64_t fan_in, int64_t fan_out, util::Rng* rng,
                       bool requires_grad = true);
  /// 1-element tensor holding a scalar.
  static Tensor Scalar(float value, bool requires_grad = false);

  // --- Introspection -------------------------------------------------------

  bool is_valid() const { return impl_ != nullptr; }
  const std::vector<int64_t>& shape() const;
  int64_t numel() const;
  /// 2-D conveniences; CHECK-fail on other ranks.
  int64_t rows() const;
  int64_t cols() const;

  FloatVec& data();
  const FloatVec& data() const;
  FloatVec& grad();
  const FloatVec& grad() const;

  /// Element accessors (2-D and flat).
  float at(int64_t r, int64_t c) const;
  float at(int64_t i) const;
  /// Scalar value of a 1-element tensor.
  float item() const;

  bool requires_grad() const;
  /// Marks/unmarks this tensor as a trainable leaf. Only meaningful on
  /// leaves (no parents).
  void set_requires_grad(bool value);

  // --- Autograd ------------------------------------------------------------

  /// Runs reverse-mode differentiation from this (scalar) tensor, seeding
  /// d(self)/d(self) = 1 and accumulating into the .grad of every reachable
  /// node that needs gradients.
  void Backward();

  /// Clears this tensor's gradient buffer.
  void ZeroGrad();

  /// Returns a leaf copy of the data (no graph history, no grad).
  Tensor Detached() const;

  std::shared_ptr<TensorImpl> impl() const { return impl_; }
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Creates an op-output node: shape/data as given, wired to parents with the
/// given backward function. needs_grad is derived from the parents and
/// forced off (graph edges dropped) while a NoGradGuard is active.
Tensor MakeOpResult(std::vector<int64_t> shape, FloatVec data,
                    ParentVec parents,
                    std::function<void(TensorImpl&)> backward_fn);

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_TENSOR_H_
