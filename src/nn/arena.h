#ifndef BIGCITY_NN_ARENA_H_
#define BIGCITY_NN_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "obs/memory.h"

// The ASan lane cannot see into a bump arena (sub-allocations of one big
// slab all look live to it), so sanitized builds switch the arena to a
// shadow-heap mode: every Allocate is a real ::operator new tracked in a
// per-arena table, preserving the arena's lifetime semantics while a
// use-after-recycle becomes a genuine heap-use-after-free ASan reports.
#ifndef BIGCITY_ARENA_SHADOW
#if defined(__SANITIZE_ADDRESS__)
#define BIGCITY_ARENA_SHADOW 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define BIGCITY_ARENA_SHADOW 1
#endif
#endif
#endif
#ifndef BIGCITY_ARENA_SHADOW
#define BIGCITY_ARENA_SHADOW 0
#endif

namespace bigcity::nn {

/// Bump-pointer arena with block recycling for the per-step autograd
/// working set (DESIGN.md §4.13). One training step / inference forward
/// allocates every graph node, activation, and gradient buffer from the
/// arena; when the step's tensors have all been released, Reset() rewinds
/// the whole arena in O(1) so the next step reuses the same slab — steady
/// state performs zero heap allocations.
///
/// Within a step, freed blocks go on exact-size free lists and are handed
/// back LIFO to later same-size requests. Tensor shapes repeat heavily
/// inside a step, so this keeps the arena's high-water mark near the
/// step's LIVE peak (not its total churn) and keeps reused buffers hot in
/// cache — without it a pure bump arena would hold every transient the
/// step ever allocated.
///
/// Lifetime contract: an arena is single-threaded (one trainer thread or
/// one serve worker owns it; activation via ArenaScope is thread-local).
/// Reset() with live allocations outstanding does NOT recycle: the active
/// slabs are retired — kept alive so stale tensors still point at valid
/// memory — and `poisoned_resets()` is incremented. That converts a
/// lifetime bug from use-after-free into a bounded leak the tests can
/// assert on. Retired slabs are reclaimed at the next fully-drained
/// Reset() or at destruction.
class TensorArena {
 public:
  static constexpr bool kShadowHeap = BIGCITY_ARENA_SHADOW != 0;

  explicit TensorArena(size_t initial_slab_bytes = 256 * 1024);
  ~TensorArena();

  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

  /// Thread-local active arena consulted by ArenaAllocator's default
  /// constructor; null means "allocate from the heap".
  static TensorArena* Current();
  /// Installs `next` as the thread's active arena, returns the previous
  /// one (RAII wrappers below are the intended interface).
  static TensorArena* Exchange(TensorArena* next);

  /// Allocates `bytes` (64-byte aligned): recycles a same-size freed
  /// block when one is available, else bump-allocates, growing by a
  /// doubling slab when the current one is full.
  void* Allocate(size_t bytes);
  /// True when `p` points into an active or retired slab of this arena.
  bool Owns(const void* p) const;
  /// Releases one allocation. Returns false when `p` is not arena memory
  /// (the caller must free it as an ordinary heap block); this happens
  /// when allocator propagation pairs an arena-bound allocator with a
  /// buffer that predates the arena scope.
  bool Deallocate(void* p, size_t bytes);

  /// End-of-step rewind. All allocations drained: frees retired slabs,
  /// consolidates multiple active slabs into one big slab (so the next
  /// step bump-allocates from a single block with no growth), and zeroes
  /// the step counters. Allocations outstanding: poisons instead (see
  /// class comment).
  void Reset();

  // --- Introspection -------------------------------------------------------

  /// Total bytes of active slabs (what one steady-state step can hold).
  size_t capacity_bytes() const;
  /// Fresh bytes bump-allocated since the last Reset (the step's
  /// high-water footprint; recycled blocks don't count).
  size_t step_bytes() const { return step_bytes_; }
  /// Allocations served since the last Reset.
  uint64_t step_allocs() const { return step_allocs_; }
  /// Live allocations (allocate minus deallocate); 0 before a clean Reset.
  int64_t outstanding() const { return outstanding_; }
  /// Resets that found allocations still live and retired slabs instead
  /// of recycling them.
  uint64_t poisoned_resets() const { return poisoned_resets_; }
  /// Heap slabs created over the arena's lifetime (steady state: stops
  /// growing once the consolidated slab fits a whole step).
  uint64_t slab_allocs() const { return slab_allocs_; }

  /// Process-wide bytes currently held in arena slabs across all arenas
  /// (feeds the plan.arena.bytes gauge).
  static int64_t TotalBytes();

 private:
  struct Slab {
    std::unique_ptr<char[]> bytes;
    size_t size = 0;
    size_t used = 0;
  };

  void AddSlab(size_t min_bytes);
  void ReleaseSlabs(std::vector<Slab>* slabs);

  bool OwnsActive(const void* p) const;

  std::vector<Slab> slabs_;
  /// Bump cursor: index of the slab currently being filled. Rewinds to 0
  /// at Reset and advances monotonically through the chain within a step.
  size_t active_slab_ = 0;
  std::vector<Slab> retired_;
#if !BIGCITY_ARENA_SHADOW
  /// Freed blocks by aligned size, reused LIFO within the step. Cleared
  /// (not freed) at Reset; entries never point into retired slabs.
  std::unordered_map<size_t, std::vector<void*>> free_lists_;
#endif
  size_t initial_slab_bytes_;  // Floor for the first slab.
  /// Largest per-step fresh-bump footprint seen (lifetime high-water):
  /// the consolidation target. Comparing slack against this — not the
  /// current step's usage — keeps small steps from shrinking capacity a
  /// later large step would immediately re-grow.
  size_t max_step_used_ = 0;
  size_t step_bytes_ = 0;
  uint64_t step_allocs_ = 0;
  int64_t outstanding_ = 0;
  uint64_t poisoned_resets_ = 0;
  uint64_t slab_allocs_ = 0;

#if BIGCITY_ARENA_SHADOW
  /// Shadow-heap mode: live blocks by base pointer (value = size).
  std::unordered_map<const void*, size_t> shadow_live_;
#endif
};

/// Activates `arena` as the thread's allocation target for the enclosing
/// scope. Passing null suspends any active arena (see ArenaPin).
class ArenaScope {
 public:
  explicit ArenaScope(TensorArena* arena)
      : previous_(TensorArena::Exchange(arena)) {}
  ~ArenaScope() { TensorArena::Exchange(previous_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  TensorArena* previous_;
};

/// Forces heap allocation inside an arena scope — for tensors that must
/// outlive the step (caches that persist across requests, results that
/// escape to the caller).
class ArenaPin : public ArenaScope {
 public:
  ArenaPin() : ArenaScope(nullptr) {}
};

/// Minimal stateful allocator backing every tensor payload. The target
/// arena is captured ONCE, from the thread-local scope active when the
/// allocator (and thus its container) is constructed; buffers therefore
/// live exactly as long as the step arena they were born into, while
/// containers constructed outside any scope — parameters, optimizer
/// slabs, persistent caches — transparently stay on the heap. The
/// heap-fallback path carries the obs::MemoryTracker accounting for float
/// payloads, so BENCH alloc_bytes/allocs measure true allocation churn:
/// bump allocations inside an arena cost (and count) nothing per step.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  // Propagate on assignment/swap so a buffer always travels with the
  // allocator that created it; Deallocate's Owns() check covers the one
  // remaining mismatch (copy-assignment freeing the destination's old
  // heap buffer through an arena-bound allocator).
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  /// Payload accounting policy: only float buffers (tensor data/grad)
  /// report to obs::MemoryTracker, matching what BENCH_train.json has
  /// always measured; graph-node and bookkeeping allocations do not.
  static constexpr bool kTracked = std::is_same_v<T, float>;

  ArenaAllocator() noexcept : arena_(TensorArena::Current()) {}
  explicit ArenaAllocator(TensorArena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  /// Container copies re-capture the CURRENT scope instead of inheriting
  /// the source's arena: copying a heap tensor inside a step lands in the
  /// arena, and copying an arena tensor under an ArenaPin lands on the
  /// heap (how results escape a step).
  ArenaAllocator select_on_container_copy_construction() const noexcept {
    return ArenaAllocator();
  }

  T* allocate(size_t n) {
    const size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->Allocate(bytes));
    }
    if constexpr (kTracked) {
      BIGCITY_MEM_ALLOC(static_cast<int64_t>(bytes));
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, size_t n) noexcept {
    const size_t bytes = n * sizeof(T);
    if (arena_ != nullptr && arena_->Deallocate(p, bytes)) return;
    if constexpr (kTracked) {
      BIGCITY_MEM_FREE(static_cast<int64_t>(bytes));
    }
    ::operator delete(p);
  }

  TensorArena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const noexcept {
    return arena_ != other.arena();
  }

 private:
  TensorArena* arena_;
};

/// Tensor payload vector: arena-backed inside a step scope, plain heap
/// (with MemoryTracker accounting) everywhere else.
using FloatVec = std::vector<float, ArenaAllocator<float>>;

// Value comparison across allocator flavors (tests compare payloads
// against plain std::vector<float> literals).
inline bool operator==(const FloatVec& a, const std::vector<float>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}
inline bool operator==(const std::vector<float>& a, const FloatVec& b) {
  return b == a;
}
inline bool operator!=(const FloatVec& a, const std::vector<float>& b) {
  return !(a == b);
}
inline bool operator!=(const std::vector<float>& a, const FloatVec& b) {
  return !(b == a);
}

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_ARENA_H_
