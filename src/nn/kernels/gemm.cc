#include "nn/kernels/kernels.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "obs/obs.h"
#include "util/thread_pool.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define BIGCITY_KERNEL_X86 1
#include <immintrin.h>
#else
#define BIGCITY_KERNEL_X86 0
#endif

namespace bigcity::nn::kernels {

namespace {

// Blocking parameters. MR x NR is the register tile; a full tile keeps 64
// accumulators live across the whole inner loop. MC rows is both the L2
// panel height and the static parallel-partition grain (fixed so chunk
// boundaries never depend on the thread count). KC bounds the packed-panel
// depth so an A panel (MC x KC) stays L2-resident and a B slab (KC x NR)
// stays L1-resident.
constexpr int64_t MR = 4;
constexpr int64_t NR = 16;
constexpr int64_t MC = 64;
constexpr int64_t KC = 256;
constexpr int64_t NC = 256;

inline int64_t RoundUp(int64_t x, int64_t to) {
  return (x + to - 1) / to * to;
}

/// Packs the mc x kc block of a logical matrix whose element (i, p) lives at
/// src[i*rs + p*cs] into MR-row slabs: dst slab s holds rows
/// [s*MR, s*MR+MR) laid out p-major (dst[s*kc*MR + p*MR + i]). Rows past mc
/// are zero-padded; padded lanes are never stored back to C.
void PackA(const float* src, int64_t rs, int64_t cs, int64_t mc, int64_t kc,
           float* dst) {
  for (int64_t i0 = 0; i0 < mc; i0 += MR) {
    const int64_t mr = std::min(MR, mc - i0);
    for (int64_t p = 0; p < kc; ++p) {
      for (int64_t i = 0; i < mr; ++i) {
        dst[p * MR + i] = src[(i0 + i) * rs + p * cs];
      }
      for (int64_t i = mr; i < MR; ++i) dst[p * MR + i] = 0.0f;
    }
    dst += kc * MR;
  }
}

/// Packs the kc x nc block of a logical matrix whose element (p, j) lives at
/// src[p*rs + j*cs] into NR-column slabs (dst[s*kc*NR + p*NR + j]), columns
/// past nc zero-padded.
void PackB(const float* src, int64_t rs, int64_t cs, int64_t kc, int64_t nc,
           float* dst) {
  for (int64_t j0 = 0; j0 < nc; j0 += NR) {
    const int64_t nr = std::min(NR, nc - j0);
    for (int64_t p = 0; p < kc; ++p) {
      for (int64_t j = 0; j < nr; ++j) {
        dst[p * NR + j] = src[p * rs + (j0 + j) * cs];
      }
      for (int64_t j = nr; j < NR; ++j) dst[p * NR + j] = 0.0f;
    }
    dst += kc * NR;
  }
}

// MR x NR register-tiled micro-kernels over a depth-kc packed pair.
// Accumulators are seeded from C (load_c) or zero, advance in ascending p
// order, and only the live mr x nr sub-tile is stored back — this is what
// makes the blocked backend bit-identical to the naive reference.
//
// The SIMD variants use explicit mul-then-add intrinsics, NEVER fused
// multiply-add: an FMA's single rounding would break bit-equality with the
// scalar reference. Vector width only changes how many independent output
// elements advance per instruction, not any element's summation order, so
// every variant produces identical bits. The widest ISA the CPU supports
// is picked once at startup (the build stays baseline-portable).

using MicroKernelFn = void (*)(const float* pa, const float* pb, float* c,
                               int64_t ldc, int64_t kc, int64_t mr,
                               int64_t nr, bool load_c);

void MicroKernelScalar(const float* pa, const float* pb, float* c,
                       int64_t ldc, int64_t kc, int64_t mr, int64_t nr,
                       bool load_c) {
  float acc[MR][NR] = {};
  if (load_c) {
    for (int64_t i = 0; i < mr; ++i) {
      for (int64_t j = 0; j < nr; ++j) acc[i][j] = c[i * ldc + j];
    }
  }
  for (int64_t p = 0; p < kc; ++p) {
    const float* a = pa + p * MR;
    const float* b = pb + p * NR;
    for (int64_t i = 0; i < MR; ++i) {
      const float av = a[i];
      for (int64_t j = 0; j < NR; ++j) acc[i][j] += av * b[j];
    }
  }
  for (int64_t i = 0; i < mr; ++i) {
    for (int64_t j = 0; j < nr; ++j) c[i * ldc + j] = acc[i][j];
  }
}

#if BIGCITY_KERNEL_X86

/// One 512-bit lane covers a full NR=16 output row, so the tile is 4 zmm
/// accumulators + 1 b vector + 1 broadcast — far inside the register file.
/// Partial tiles stage through a zero-padded stack buffer (padded lanes are
/// computed but never reach C).
__attribute__((target("avx512f"))) void MicroKernelAvx512(
    const float* pa, const float* pb, float* c, int64_t ldc, int64_t kc,
    int64_t mr, int64_t nr, bool load_c) {
  static_assert(NR == 16, "one zmm register per tile row");
  const bool full = mr == MR && nr == NR;
  float tmp[MR][NR] = {};
  if (load_c && !full) {
    for (int64_t i = 0; i < mr; ++i) {
      for (int64_t j = 0; j < nr; ++j) tmp[i][j] = c[i * ldc + j];
    }
  }
  __m512 acc[MR];
  for (int64_t i = 0; i < MR; ++i) {
    acc[i] = !load_c ? _mm512_setzero_ps()
                     : full ? _mm512_loadu_ps(c + i * ldc)
                            : _mm512_loadu_ps(tmp[i]);
  }
  for (int64_t p = 0; p < kc; ++p) {
    const __m512 b = _mm512_loadu_ps(pb + p * NR);
    const float* a = pa + p * MR;
    for (int64_t i = 0; i < MR; ++i) {
      acc[i] = _mm512_add_ps(acc[i], _mm512_mul_ps(_mm512_set1_ps(a[i]), b));
    }
  }
  if (full) {
    for (int64_t i = 0; i < MR; ++i) _mm512_storeu_ps(c + i * ldc, acc[i]);
  } else {
    for (int64_t i = 0; i < MR; ++i) _mm512_storeu_ps(tmp[i], acc[i]);
    for (int64_t i = 0; i < mr; ++i) {
      for (int64_t j = 0; j < nr; ++j) c[i * ldc + j] = tmp[i][j];
    }
  }
}

/// Two 256-bit lanes per NR=16 row: 8 ymm accumulators + 2 b vectors + 1
/// broadcast also fit the 16-register file.
__attribute__((target("avx2"))) void MicroKernelAvx2(
    const float* pa, const float* pb, float* c, int64_t ldc, int64_t kc,
    int64_t mr, int64_t nr, bool load_c) {
  static_assert(NR == 16, "two ymm registers per tile row");
  const bool full = mr == MR && nr == NR;
  float tmp[MR][NR] = {};
  if (load_c && !full) {
    for (int64_t i = 0; i < mr; ++i) {
      for (int64_t j = 0; j < nr; ++j) tmp[i][j] = c[i * ldc + j];
    }
  }
  __m256 lo[MR], hi[MR];
  for (int64_t i = 0; i < MR; ++i) {
    const float* src = full ? c + i * ldc : tmp[i];
    lo[i] = !load_c ? _mm256_setzero_ps() : _mm256_loadu_ps(src);
    hi[i] = !load_c ? _mm256_setzero_ps() : _mm256_loadu_ps(src + 8);
  }
  for (int64_t p = 0; p < kc; ++p) {
    const __m256 b_lo = _mm256_loadu_ps(pb + p * NR);
    const __m256 b_hi = _mm256_loadu_ps(pb + p * NR + 8);
    const float* a = pa + p * MR;
    for (int64_t i = 0; i < MR; ++i) {
      const __m256 av = _mm256_set1_ps(a[i]);
      lo[i] = _mm256_add_ps(lo[i], _mm256_mul_ps(av, b_lo));
      hi[i] = _mm256_add_ps(hi[i], _mm256_mul_ps(av, b_hi));
    }
  }
  if (full) {
    for (int64_t i = 0; i < MR; ++i) {
      _mm256_storeu_ps(c + i * ldc, lo[i]);
      _mm256_storeu_ps(c + i * ldc + 8, hi[i]);
    }
  } else {
    for (int64_t i = 0; i < MR; ++i) {
      _mm256_storeu_ps(tmp[i], lo[i]);
      _mm256_storeu_ps(tmp[i] + 8, hi[i]);
    }
    for (int64_t i = 0; i < mr; ++i) {
      for (int64_t j = 0; j < nr; ++j) c[i * ldc + j] = tmp[i][j];
    }
  }
}

#endif  // BIGCITY_KERNEL_X86

MicroKernelFn PickMicroKernel() {
#if BIGCITY_KERNEL_X86
  if (__builtin_cpu_supports("avx512f")) return MicroKernelAvx512;
  if (__builtin_cpu_supports("avx2")) return MicroKernelAvx2;
#endif
  return MicroKernelScalar;
}

const MicroKernelFn g_micro_kernel = PickMicroKernel();

inline void MicroKernel(const float* pa, const float* pb, float* c,
                        int64_t ldc, int64_t kc, int64_t mr, int64_t nr,
                        bool load_c) {
  g_micro_kernel(pa, pb, c, ldc, kc, mr, nr, load_c);
}

// Rank-1-update kernels for short outputs (decode-sized calls: a KV-cached
// extension runs the whole backbone over two rows, so n*k*m work rides on
// an O(k*m) weight read). The blocked path packs all of B — O(k*m) extra
// traffic that dwarfs the math when n is tiny — so instead stream each B
// row exactly once, in order, and axpy it into every (L1-resident) output
// row. Each C element still accumulates in ascending p order with separate
// mul-then-add, so results are bit-identical to the blocked and naive
// backends. Requires unit B column stride and contiguous row-major C.

using RankOneFn = void (*)(const float* a, int64_t a_rs, int64_t a_cs,
                           const float* b, int64_t b_rs, float* c, int64_t n,
                           int64_t k, int64_t m, bool accumulate);

void RankOneScalar(const float* a, int64_t a_rs, int64_t a_cs,
                   const float* b, int64_t b_rs, float* c, int64_t n,
                   int64_t k, int64_t m, bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, static_cast<size_t>(n) * m * sizeof(float));
  }
  for (int64_t p = 0; p < k; ++p) {
    const float* b_row = b + p * b_rs;
    for (int64_t i = 0; i < n; ++i) {
      const float av = a[i * a_rs + p * a_cs];
      float* c_row = c + i * m;
      for (int64_t j = 0; j < m; ++j) c_row[j] += av * b_row[j];
    }
  }
}

#if BIGCITY_KERNEL_X86

__attribute__((target("avx512f"))) void RankOneAvx512(
    const float* a, int64_t a_rs, int64_t a_cs, const float* b, int64_t b_rs,
    float* c, int64_t n, int64_t k, int64_t m, bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, static_cast<size_t>(n) * m * sizeof(float));
  }
  const int64_t mv = m / 16 * 16;
  for (int64_t p = 0; p < k; ++p) {
    const float* b_row = b + p * b_rs;
    for (int64_t i = 0; i < n; ++i) {
      const float av_s = a[i * a_rs + p * a_cs];
      const __m512 av = _mm512_set1_ps(av_s);
      float* c_row = c + i * m;
      int64_t j = 0;
      for (; j < mv; j += 16) {
        const __m512 prod = _mm512_mul_ps(av, _mm512_loadu_ps(b_row + j));
        _mm512_storeu_ps(c_row + j,
                         _mm512_add_ps(_mm512_loadu_ps(c_row + j), prod));
      }
      for (; j < m; ++j) c_row[j] += av_s * b_row[j];
    }
  }
}

__attribute__((target("avx2"))) void RankOneAvx2(
    const float* a, int64_t a_rs, int64_t a_cs, const float* b, int64_t b_rs,
    float* c, int64_t n, int64_t k, int64_t m, bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, static_cast<size_t>(n) * m * sizeof(float));
  }
  const int64_t mv = m / 8 * 8;
  for (int64_t p = 0; p < k; ++p) {
    const float* b_row = b + p * b_rs;
    for (int64_t i = 0; i < n; ++i) {
      const float av_s = a[i * a_rs + p * a_cs];
      const __m256 av = _mm256_set1_ps(av_s);
      float* c_row = c + i * m;
      int64_t j = 0;
      for (; j < mv; j += 8) {
        const __m256 prod = _mm256_mul_ps(av, _mm256_loadu_ps(b_row + j));
        _mm256_storeu_ps(c_row + j,
                         _mm256_add_ps(_mm256_loadu_ps(c_row + j), prod));
      }
      for (; j < m; ++j) c_row[j] += av_s * b_row[j];
    }
  }
}

#endif  // BIGCITY_KERNEL_X86

RankOneFn PickRankOne() {
#if BIGCITY_KERNEL_X86
  if (__builtin_cpu_supports("avx512f")) return RankOneAvx512;
  if (__builtin_cpu_supports("avx2")) return RankOneAvx2;
#endif
  return RankOneScalar;
}

const RankOneFn g_rank_one = PickRankOne();

/// Blocked, panel-packed GEMM over logical operands given by strides:
/// C[n,m] (+)= A·B with A element (i,p) at a[i*a_rs + p*a_cs] and B element
/// (p,j) at b[p*b_rs + j*b_cs]. C is contiguous row-major.
void GemmBlockedStrided(const float* a, int64_t a_rs, int64_t a_cs,
                        const float* b, int64_t b_rs, int64_t b_cs, float* c,
                        int64_t n, int64_t k, int64_t m, bool accumulate) {
  if (n <= 0 || m <= 0) return;
  if (k <= 0) {
    // Empty inner dimension: write mode must still define the output.
    if (!accumulate) {
      for (int64_t i = 0; i < n; ++i) {
        std::memset(c + i * m, 0, static_cast<size_t>(m) * sizeof(float));
      }
    }
    return;
  }
  if (b_cs == 1 && n <= 2 * MR) {
    BIGCITY_TRACE_SPAN("gemm.compute", "kernels");
    g_rank_one(a, a_rs, a_cs, b, b_rs, c, n, k, m, accumulate);
    return;
  }
  // The pack buffer is thread-local: at serve sizes it exceeds the malloc
  // mmap threshold, and a fresh mmap/munmap plus page faults per GEMM call
  // costs more than the math of a small forward.
  thread_local std::vector<float> pb;
  pb.resize(static_cast<size_t>(std::min(KC, k) *
                                RoundUp(std::min(NC, m), NR)));
  util::ThreadPool& pool = util::GlobalThreadPool();
  for (int64_t jc = 0; jc < m; jc += NC) {
    const int64_t nc = std::min(NC, m - jc);
    for (int64_t pc = 0; pc < k; pc += KC) {
      const int64_t kc = std::min(KC, k - pc);
      {
        // Pack/compute split per depth panel. Compute includes the
        // per-chunk A packing done inside the parallel body. Trace-only
        // (inert unless tracing is on): this loop runs hundreds of
        // thousands of times per training run and always-on clock reads
        // here cost several percent of total wall time.
        BIGCITY_TRACE_SPAN("gemm.pack", "kernels");
        PackB(b + pc * b_rs + jc * b_cs, b_rs, b_cs, kc, nc, pb.data());
      }
      BIGCITY_TRACE_SPAN("gemm.compute", "kernels");
      const bool load_c = accumulate || pc > 0;
      // A raw pointer, not the thread_local vector: a lambda body resolves
      // a thread_local to the *executing* thread's instance, and pooled
      // chunks run on worker threads that never packed anything.
      const float* pb_data = pb.data();
      pool.ParallelFor(0, n, MC, [&](int64_t row_begin, int64_t row_end) {
        thread_local std::vector<float> pa;
        const int64_t mc = row_end - row_begin;
        pa.resize(static_cast<size_t>(RoundUp(mc, MR) * kc));
        PackA(a + row_begin * a_rs + pc * a_cs, a_rs, a_cs, mc, kc,
              pa.data());
        for (int64_t i0 = 0; i0 < mc; i0 += MR) {
          const float* pa_slab = pa.data() + (i0 / MR) * kc * MR;
          for (int64_t j0 = 0; j0 < nc; j0 += NR) {
            MicroKernel(pa_slab, pb_data + (j0 / NR) * kc * NR,
                        c + (row_begin + i0) * m + jc + j0, m, kc,
                        std::min(MR, mc - i0), std::min(NR, nc - j0),
                        load_c);
          }
        }
      });
    }
  }
}

GemmBackend DefaultBackend() {
  const char* env = std::getenv("BIGCITY_GEMM");
  if (env != nullptr && std::strcmp(env, "naive") == 0) {
    return GemmBackend::kNaive;
  }
  return GemmBackend::kBlocked;
}

GemmBackend g_backend = DefaultBackend();

}  // namespace

void SetBackend(GemmBackend backend) { g_backend = backend; }

GemmBackend backend() { return g_backend; }

void SetNumThreads(int num_threads) {
  util::SetGlobalThreadCount(num_threads);
}

int NumThreads() { return util::GlobalThreadCount(); }

// --- Naive reference --------------------------------------------------------

// The scalar triple-loop kernels the blocked backend must match bit-for-bit.
// No zero-skip shortcuts: 0 * Inf must produce NaN, not silently vanish.

void GemmABNaive(const float* a, const float* b, float* c, int64_t n,
                 int64_t k, int64_t m, bool accumulate) {
  for (int64_t i = 0; i < n; ++i) {
    float* c_row = c + i * m;
    if (!accumulate) {
      std::memset(c_row, 0, static_cast<size_t>(m) * sizeof(float));
    }
    const float* a_row = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float av = a_row[p];
      const float* b_row = b + p * m;
      for (int64_t j = 0; j < m; ++j) c_row[j] += av * b_row[j];
    }
  }
}

void GemmABtNaive(const float* a, const float* b, float* c, int64_t n,
                  int64_t k, int64_t m, bool accumulate) {
  for (int64_t i = 0; i < n; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * m;
    for (int64_t j = 0; j < m; ++j) {
      const float* b_row = b + j * k;
      float acc = accumulate ? c_row[j] : 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] = acc;
    }
  }
}

void GemmAtBNaive(const float* a, const float* b, float* c, int64_t n,
                  int64_t k, int64_t m, bool accumulate) {
  if (!accumulate) {
    for (int64_t p = 0; p < k; ++p) {
      std::memset(c + p * m, 0, static_cast<size_t>(m) * sizeof(float));
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    const float* a_row = a + i * k;
    const float* b_row = b + i * m;
    for (int64_t p = 0; p < k; ++p) {
      const float av = a_row[p];
      float* c_row = c + p * m;
      for (int64_t j = 0; j < m; ++j) c_row[j] += av * b_row[j];
    }
  }
}

// --- Blocked backend --------------------------------------------------------

void GemmABBlocked(const float* a, const float* b, float* c, int64_t n,
                   int64_t k, int64_t m, bool accumulate) {
  GemmBlockedStrided(a, k, 1, b, m, 1, c, n, k, m, accumulate);
}

void GemmABtBlocked(const float* a, const float* b, float* c, int64_t n,
                    int64_t k, int64_t m, bool accumulate) {
  // B[M,K] read as its transpose: element (p, j) of the logical [K,M]
  // operand is b[j*k + p].
  GemmBlockedStrided(a, k, 1, b, 1, k, c, n, k, m, accumulate);
}

void GemmAtBBlocked(const float* a, const float* b, float* c, int64_t n,
                    int64_t k, int64_t m, bool accumulate) {
  // A[N,K] read as its transpose: output rows are K, inner dimension is N,
  // and element (i, p) of the logical [K,N] operand is a[p*k + i].
  GemmBlockedStrided(a, 1, k, b, m, 1, c, k, n, m, accumulate);
}

// --- Dispatch ----------------------------------------------------------------

// Dispatch-tier probes: every product in the library flows through these
// three functions, so one call counter + one FLOP counter here gives exact
// model-level arithmetic totals (all three patterns do 2*n*k*m flops).

void GemmAB(const float* a, const float* b, float* c, int64_t n, int64_t k,
            int64_t m, bool accumulate) {
  BIGCITY_COUNTER_INC("kernels.gemm.calls");
  BIGCITY_COUNTER_ADD("kernels.gemm.flops",
                      2ull * static_cast<uint64_t>(n * k * m));
  BIGCITY_TRACE_SPAN("gemm.AB", "kernels");
  if (g_backend == GemmBackend::kNaive) {
    GemmABNaive(a, b, c, n, k, m, accumulate);
  } else {
    GemmABBlocked(a, b, c, n, k, m, accumulate);
  }
}

void GemmABt(const float* a, const float* b, float* c, int64_t n, int64_t k,
             int64_t m, bool accumulate) {
  BIGCITY_COUNTER_INC("kernels.gemm.calls");
  BIGCITY_COUNTER_ADD("kernels.gemm.flops",
                      2ull * static_cast<uint64_t>(n * k * m));
  BIGCITY_TRACE_SPAN("gemm.ABt", "kernels");
  if (g_backend == GemmBackend::kNaive) {
    GemmABtNaive(a, b, c, n, k, m, accumulate);
  } else {
    GemmABtBlocked(a, b, c, n, k, m, accumulate);
  }
}

void GemmAtB(const float* a, const float* b, float* c, int64_t n, int64_t k,
             int64_t m, bool accumulate) {
  BIGCITY_COUNTER_INC("kernels.gemm.calls");
  BIGCITY_COUNTER_ADD("kernels.gemm.flops",
                      2ull * static_cast<uint64_t>(n * k * m));
  BIGCITY_TRACE_SPAN("gemm.AtB", "kernels");
  if (g_backend == GemmBackend::kNaive) {
    GemmAtBNaive(a, b, c, n, k, m, accumulate);
  } else {
    GemmAtBBlocked(a, b, c, n, k, m, accumulate);
  }
}

}  // namespace bigcity::nn::kernels
