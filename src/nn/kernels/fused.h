#ifndef BIGCITY_NN_KERNELS_FUSED_H_
#define BIGCITY_NN_KERNELS_FUSED_H_

#include "nn/tensor.h"

namespace bigcity::nn {

// Fused autograd ops over the kernel layer. Each call builds ONE graph node
// where the unfused formulation builds two or three, materializes no
// intermediate tensors, and runs both its forward and backward as single
// passes. Shapes follow ops.h conventions (row-major 2-D [rows, cols]).

/// y = x·W + b in one node: the bias row is broadcast into the output and
/// the GEMM accumulates on top of it. `bias` {M} may be an invalid handle
/// (no bias), making this a write-mode matmul.
Tensor Affine(const Tensor& x, const Tensor& w, const Tensor& bias);

/// y = x·W + b + residual in one node (the transformer's bias+residual
/// chain). residual must match the output shape [N,M]; bias {M} may be
/// invalid.
Tensor AffineResidual(const Tensor& x, const Tensor& w, const Tensor& bias,
                      const Tensor& residual);

/// y = GELU(x + b), b either {M} (row-wise broadcast) or x-shaped. The
/// pre-activation is never materialized; backward recomputes it from the
/// inputs instead of storing it.
Tensor BiasGelu(const Tensor& x, const Tensor& b);

/// y = LeakyReLU(x + b, slope), same broadcast rules as BiasGelu (the GAT
/// edge-score chain).
Tensor BiasLeakyRelu(const Tensor& x, const Tensor& b, float slope = 0.2f);

/// Row-wise softmax(scale * scores) with an optional causal mask, fused
/// into one node: no scaled copy, no mask tensor, no masked-scores copy.
/// With causal=true (requires square scores [L,L]) entries j > i get
/// probability exactly 0.
Tensor ScaledMaskedSoftmax(const Tensor& scores, float scale, bool causal);

/// Offset-causal variant for KV-cached incremental decoding: scores are
/// [S, P+S] where row i is global sequence position row_offset + i, so
/// entries j > row_offset + i get probability exactly 0. Requires
/// row_offset + S == cols when causal; row_offset 0 is the plain causal
/// softmax. Computes each kept entry with the exact same operation order as
/// the full-sequence path, so cached decoding is bit-identical to a fresh
/// forward.
Tensor ScaledMaskedSoftmax(const Tensor& scores, float scale, bool causal,
                           int64_t row_offset);

/// a[N,K] · b[M,K]^T -> [N,M] without materializing the transpose
/// (attention q·k^T and tied-embedding logit projections).
Tensor MatMulNT(const Tensor& a, const Tensor& b);

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_KERNELS_FUSED_H_
