#include "nn/kernels/fused.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "nn/kernels/kernels.h"
#include "obs/profiler.h"
#include "util/check.h"

namespace bigcity::nn {

namespace {

constexpr float kPi = 3.14159265358979323846f;

inline uint64_t U64(int64_t value) { return static_cast<uint64_t>(value); }

/// tanh-approximation GELU (GPT-2), same formula as ops.cc Gelu.
inline float GeluFwd(float x) {
  const float c = std::sqrt(2.0f / kPi);
  return 0.5f * x * (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
}

inline float GeluGrad(float x) {
  const float c = std::sqrt(2.0f / kPi);
  const float u = c * (x + 0.044715f * x * x * x);
  const float t = std::tanh(u);
  const float du = c * (1.0f + 3.0f * 0.044715f * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
}

inline float LeakyFwd(float x, float slope) { return x > 0.0f ? x : slope * x; }
inline float LeakyGrad(float x, float slope) { return x > 0.0f ? 1.0f : slope; }

/// Fills out[N,M] with bias rows ({M} broadcast), residual, their sum, or
/// zero — the epilogue values the GEMM then accumulates onto.
void FillEpilogue(float* out, int64_t n, int64_t m, const float* bias,
                  const float* residual) {
  const size_t row_bytes = static_cast<size_t>(m) * sizeof(float);
  if (residual != nullptr) {
    std::memcpy(out, residual, static_cast<size_t>(n) * row_bytes);
    if (bias != nullptr) {
      for (int64_t i = 0; i < n; ++i) {
        float* row = out + i * m;
        for (int64_t j = 0; j < m; ++j) row[j] += bias[j];
      }
    }
  } else if (bias != nullptr) {
    for (int64_t i = 0; i < n; ++i) std::memcpy(out + i * m, bias, row_bytes);
  } else {
    std::memset(out, 0, static_cast<size_t>(n) * row_bytes);
  }
}

/// Shared core of Affine / AffineResidual. residual may be invalid.
Tensor AffineImpl(const char* name, const Tensor& x, const Tensor& w,
                  const Tensor& bias, const Tensor& residual) {
  BIGCITY_CHECK_EQ(x.shape().size(), 2u);
  BIGCITY_CHECK_EQ(w.shape().size(), 2u);
  const int64_t n = x.shape()[0], k = x.shape()[1], m = w.shape()[1];
  BIGCITY_CHECK_EQ(k, w.shape()[0]) << "affine inner dims mismatch";
  BIGCITY_PROFILE_OP(name);
  BIGCITY_PROFILE_OP_COST(U64(2 * n * k * m + 2 * n * m),
                          U64(n * k + k * m + 2 * n * m) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(4 * n * k * m + 2 * n * m),
                              U64(2 * (n * k + k * m + n * m)) * 4);
  const bool has_bias = bias.is_valid();
  const bool has_residual = residual.is_valid();
  if (has_bias) BIGCITY_CHECK_EQ(bias.numel(), m);
  if (has_residual) {
    BIGCITY_CHECK(residual.shape() == (std::vector<int64_t>{n, m}));
  }
  FloatVec out(static_cast<size_t>(n * m));
  const bool epilogue = has_bias || has_residual;
  if (epilogue) {
    FillEpilogue(out.data(), n, m,
                 has_bias ? bias.data().data() : nullptr,
                 has_residual ? residual.data().data() : nullptr);
  }
  // Write mode fully overwrites `out` when there is no epilogue to
  // accumulate onto — the kernel never reads the zero-initialized buffer.
  kernels::GemmAB(x.data().data(), w.data().data(), out.data(), n, k, m,
                  /*accumulate=*/epilogue);
  auto xi = x.impl();
  auto wi = w.impl();
  auto bi = has_bias ? bias.impl() : nullptr;
  auto ri = has_residual ? residual.impl() : nullptr;
  ParentVec parents{xi, wi};
  if (bi) parents.push_back(bi);
  if (ri) parents.push_back(ri);
  return MakeOpResult(
      {n, m}, std::move(out), std::move(parents),
      [xi, wi, bi, ri, n, k, m](TensorImpl& self) {
        const float* g = self.grad.data();
        if (xi->needs_grad) {
          xi->EnsureGrad();
          // dX = G · W^T.
          kernels::GemmABt(g, wi->data.data(), xi->grad.data(), n, m, k,
                           /*accumulate=*/true);
        }
        if (wi->needs_grad) {
          wi->EnsureGrad();
          // dW = X^T · G.
          kernels::GemmAtB(xi->data.data(), g, wi->grad.data(), n, k, m,
                           /*accumulate=*/true);
        }
        if (bi && bi->needs_grad) {
          bi->EnsureGrad();
          for (int64_t i = 0; i < n; ++i) {
            const float* g_row = g + i * m;
            for (int64_t j = 0; j < m; ++j) bi->grad[j] += g_row[j];
          }
        }
        if (ri && ri->needs_grad) {
          ri->EnsureGrad();
          for (size_t i = 0; i < self.grad.size(); ++i) {
            ri->grad[i] += self.grad[i];
          }
        }
      });
}

enum class AddBroadcast { kSame, kRowwise };

AddBroadcast ResolveAddBroadcast(const Tensor& x, const Tensor& b) {
  if (x.shape() == b.shape()) return AddBroadcast::kSame;
  BIGCITY_CHECK(x.shape().size() == 2 && b.shape().size() == 1 &&
                x.shape()[1] == b.shape()[0])
      << "fused bias op: b must match x or be a {cols} row vector";
  return AddBroadcast::kRowwise;
}

/// Shared core of BiasGelu / BiasLeakyRelu: y = act(x + b). `slope` < 0
/// selects GELU, otherwise LeakyReLU with that slope.
Tensor BiasActImpl(const char* name, const Tensor& x, const Tensor& b,
                   float slope) {
  BIGCITY_PROFILE_OP(name);
  BIGCITY_PROFILE_OP_COST(U64(8 * x.numel()), U64(3 * x.numel()) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(10 * x.numel()), U64(4 * x.numel()) * 4);
  const AddBroadcast mode = ResolveAddBroadcast(x, b);
  const int64_t cols = x.shape().size() == 2 ? x.shape()[1] : x.numel();
  const auto& xd = x.data();
  const auto& bd = b.data();
  FloatVec out(xd.size());
  const bool gelu = slope < 0.0f;
  for (size_t i = 0; i < xd.size(); ++i) {
    const float u =
        xd[i] + bd[mode == AddBroadcast::kSame
                       ? i
                       : i % static_cast<size_t>(cols)];
    out[i] = gelu ? GeluFwd(u) : LeakyFwd(u, slope);
  }
  auto xi = x.impl();
  auto bi = b.impl();
  return MakeOpResult(
      x.shape(), std::move(out), {xi, bi},
      [xi, bi, mode, cols, gelu, slope](TensorImpl& self) {
        if (!xi->needs_grad && !bi->needs_grad) return;
        if (xi->needs_grad) xi->EnsureGrad();
        if (bi->needs_grad) bi->EnsureGrad();
        for (size_t i = 0; i < self.grad.size(); ++i) {
          const size_t j = mode == AddBroadcast::kSame
                               ? i
                               : i % static_cast<size_t>(cols);
          // Recompute the pre-activation instead of having stored it.
          const float u = xi->data[i] + bi->data[j];
          const float d =
              self.grad[i] * (gelu ? GeluGrad(u) : LeakyGrad(u, slope));
          if (xi->needs_grad) xi->grad[i] += d;
          if (bi->needs_grad) bi->grad[j] += d;
        }
      });
}

}  // namespace

Tensor Affine(const Tensor& x, const Tensor& w, const Tensor& bias) {
  return AffineImpl("Affine", x, w, bias, Tensor());
}

Tensor AffineResidual(const Tensor& x, const Tensor& w, const Tensor& bias,
                      const Tensor& residual) {
  BIGCITY_CHECK(residual.is_valid());
  return AffineImpl("AffineResidual", x, w, bias, residual);
}

Tensor BiasGelu(const Tensor& x, const Tensor& b) {
  return BiasActImpl("BiasGelu", x, b, /*slope=*/-1.0f);
}

Tensor BiasLeakyRelu(const Tensor& x, const Tensor& b, float slope) {
  BIGCITY_CHECK_GE(slope, 0.0f);
  return BiasActImpl("BiasLeakyRelu", x, b, slope);
}

Tensor ScaledMaskedSoftmax(const Tensor& scores, float scale, bool causal) {
  return ScaledMaskedSoftmax(scores, scale, causal, /*row_offset=*/0);
}

Tensor ScaledMaskedSoftmax(const Tensor& scores, float scale, bool causal,
                           int64_t row_offset) {
  BIGCITY_CHECK_EQ(scores.shape().size(), 2u);
  BIGCITY_CHECK_GE(row_offset, 0);
  const int64_t n = scores.shape()[0], d = scores.shape()[1];
  if (causal) {
    BIGCITY_CHECK_EQ(row_offset + n, d)
        << "causal softmax: queries must be the trailing rows of the keys";
  }
  BIGCITY_PROFILE_OP("ScaledMaskedSoftmax");
  BIGCITY_PROFILE_OP_COST(U64(6 * n * d), U64(2 * n * d) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(5 * n * d), U64(3 * n * d) * 4);
  const auto& sd = scores.data();
  FloatVec out(sd.size());
  for (int64_t i = 0; i < n; ++i) {
    const float* row = sd.data() + i * d;
    float* out_row = out.data() + i * d;
    const int64_t limit = causal ? row_offset + i + 1 : d;
    float mx = scale * row[0];
    for (int64_t j = 1; j < limit; ++j) mx = std::max(mx, scale * row[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < limit; ++j) {
      out_row[j] = std::exp(scale * row[j] - mx);
      sum += out_row[j];
    }
    const float inv = 1.0f / sum;
    for (int64_t j = 0; j < limit; ++j) out_row[j] *= inv;
    for (int64_t j = limit; j < d; ++j) out_row[j] = 0.0f;
  }
  auto si = scores.impl();
  auto y = out;  // Copy kept for the backward pass.
  return MakeOpResult(
      scores.shape(), std::move(out), {si},
      [si, n, d, scale, causal, row_offset, y = std::move(y)](
          TensorImpl& self) {
        if (!si->needs_grad) return;
        si->EnsureGrad();
        for (int64_t i = 0; i < n; ++i) {
          const float* yr = y.data() + i * d;
          const float* gr = self.grad.data() + i * d;
          const int64_t limit = causal ? row_offset + i + 1 : d;
          float dot = 0.0f;
          for (int64_t j = 0; j < limit; ++j) dot += yr[j] * gr[j];
          float* sr = si->grad.data() + i * d;
          for (int64_t j = 0; j < limit; ++j) {
            sr[j] += scale * yr[j] * (gr[j] - dot);
          }
        }
      });
}

Tensor MatMulNT(const Tensor& a, const Tensor& b) {
  BIGCITY_CHECK_EQ(a.shape().size(), 2u);
  BIGCITY_CHECK_EQ(b.shape().size(), 2u);
  const int64_t n = a.shape()[0], k = a.shape()[1], m = b.shape()[0];
  BIGCITY_CHECK_EQ(k, b.shape()[1]) << "matmul-NT inner dims mismatch";
  BIGCITY_PROFILE_OP("MatMulNT");
  BIGCITY_PROFILE_OP_COST(U64(2 * n * k * m),
                          U64(n * k + k * m + n * m) * 4);
  BIGCITY_PROFILE_OP_BWD_COST(U64(4 * n * k * m),
                              U64(2 * (n * k + k * m + n * m)) * 4);
  FloatVec out(static_cast<size_t>(n * m));
  kernels::GemmABt(a.data().data(), b.data().data(), out.data(), n, k, m,
                   /*accumulate=*/false);
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeOpResult(
      {n, m}, std::move(out), {ai, bi},
      [ai, bi, n, k, m](TensorImpl& self) {
        const float* g = self.grad.data();
        if (ai->needs_grad) {
          ai->EnsureGrad();
          // dA = G · B.
          kernels::GemmAB(g, bi->data.data(), ai->grad.data(), n, m, k,
                          /*accumulate=*/true);
        }
        if (bi->needs_grad) {
          bi->EnsureGrad();
          // dB = G^T · A.
          kernels::GemmAtB(g, ai->data.data(), bi->grad.data(), n, m, k,
                          /*accumulate=*/true);
        }
      });
}

}  // namespace bigcity::nn
