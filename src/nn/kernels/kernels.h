#ifndef BIGCITY_NN_KERNELS_KERNELS_H_
#define BIGCITY_NN_KERNELS_KERNELS_H_

#include <cstdint>

namespace bigcity::nn::kernels {

// High-performance GEMM layer shared by every nn op. Three access patterns
// cover all forward/backward products in the models:
//
//   GemmAB  : C[N,M] (+)= A[N,K]  · B[K,M]
//   GemmABt : C[N,M] (+)= A[N,K]  · B[M,K]^T
//   GemmAtB : C[K,M] (+)= A[N,K]^T · B[N,M]
//
// `accumulate` selects += (gradient accumulation) vs = (write mode; the
// destination is fully overwritten and need not be initialized).
//
// Numerical contract: for every output element, products are added in
// ascending order of the inner dimension, starting from the destination
// value (accumulate) or 0 (write). The blocked and naive backends follow
// this contract exactly, so they produce bit-identical results for any
// shape, and the blocked backend is bit-identical for any thread count
// (rows are partitioned statically; see util/thread_pool.h).
//
// Unlike the pre-kernel-layer loops, no backend skips zero multiplicands:
// 0 · Inf and 0 · NaN propagate NaN per IEEE-754, which the trainer's
// non-finite step guards rely on.

/// Backend selection. The blocked backend packs operand panels and uses a
/// register-tiled micro-kernel; the naive backend is the scalar triple-loop
/// reference. Default is blocked, overridable via the BIGCITY_GEMM
/// environment variable ("naive" or "blocked") read at first use.
enum class GemmBackend { kBlocked, kNaive };

void SetBackend(GemmBackend backend);
GemmBackend backend();

/// Sets the worker-thread count for the blocked backend (clamped to >= 1).
/// Any value yields bit-identical results.
void SetNumThreads(int num_threads);
int NumThreads();

// --- Dispatching entry points (honor backend()) ----------------------------

void GemmAB(const float* a, const float* b, float* c, int64_t n, int64_t k,
            int64_t m, bool accumulate);
void GemmABt(const float* a, const float* b, float* c, int64_t n, int64_t k,
             int64_t m, bool accumulate);
void GemmAtB(const float* a, const float* b, float* c, int64_t n, int64_t k,
             int64_t m, bool accumulate);

// --- Fixed-backend variants (equivalence tests, benchmarks) ----------------

void GemmABNaive(const float* a, const float* b, float* c, int64_t n,
                 int64_t k, int64_t m, bool accumulate);
void GemmABtNaive(const float* a, const float* b, float* c, int64_t n,
                  int64_t k, int64_t m, bool accumulate);
void GemmAtBNaive(const float* a, const float* b, float* c, int64_t n,
                  int64_t k, int64_t m, bool accumulate);

void GemmABBlocked(const float* a, const float* b, float* c, int64_t n,
                   int64_t k, int64_t m, bool accumulate);
void GemmABtBlocked(const float* a, const float* b, float* c, int64_t n,
                    int64_t k, int64_t m, bool accumulate);
void GemmAtBBlocked(const float* a, const float* b, float* c, int64_t n,
                    int64_t k, int64_t m, bool accumulate);

}  // namespace bigcity::nn::kernels

#endif  // BIGCITY_NN_KERNELS_KERNELS_H_
