#include "nn/introspect.h"

#include <cmath>
#include <unordered_set>
#include <vector>

#include "util/check.h"

namespace bigcity::nn {

namespace {

bool AnyNonFinite(const FloatVec& values) {
  for (const float v : values) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

std::string ShapeString(const std::vector<int64_t>& shape) {
  std::string out = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out.append(", ");
    out.append(std::to_string(shape[i]));
  }
  out.push_back(']');
  return out;
}

}  // namespace

NonFiniteSite FindFirstNonFinite(const Tensor& root, bool check_grads) {
  NonFiniteSite site;
  if (!root.is_valid()) return site;
  std::vector<TensorImpl*> stack{root.impl().get()};
  std::unordered_set<TensorImpl*> visited{root.impl().get()};
  while (!stack.empty()) {
    TensorImpl* node = stack.back();
    stack.pop_back();
    bool bad = AnyNonFinite(node->data);
    bool in_grad = false;
    if (!bad && check_grads && AnyNonFinite(node->grad)) {
      bad = true;
      in_grad = true;
    }
    if (bad && (!site.found || node->seq < site.seq)) {
      site.found = true;
      site.seq = node->seq;
      site.op = node->op_name;
      site.module = node->module_path;
      site.shape = ShapeString(node->shape);
      site.in_grad = in_grad;
    }
    for (const auto& parent : node->parents) {
      if (visited.insert(parent.get()).second) {
        stack.push_back(parent.get());
      }
    }
  }
  return site;
}

}  // namespace bigcity::nn
