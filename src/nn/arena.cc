#include "nn/arena.h"

#include <algorithm>
#include <atomic>

#include "util/check.h"

namespace bigcity::nn {

namespace {

constexpr size_t kAlign = 64;

inline size_t AlignUp(size_t n) { return (n + (kAlign - 1)) & ~(kAlign - 1); }

/// Allocation granularity: small blocks align to 64 B; larger blocks
/// round up to ~1/16th of their magnitude (<12.5% internal slack) so
/// near-miss sizes — variable-length sequences, mostly — share free-list
/// buckets instead of bumping fresh arena memory.
inline size_t RoundSize(size_t n) {
  if (n <= 4096) return AlignUp(n);
  size_t granule = kAlign;
  while (granule * 16 < n) granule <<= 1;
  return (n + granule - 1) & ~(granule - 1);
}

thread_local TensorArena* g_current_arena = nullptr;

/// Process-wide slab bytes across every arena (plan.arena.bytes gauge).
std::atomic<int64_t> g_total_arena_bytes{0};

}  // namespace

TensorArena* TensorArena::Current() { return g_current_arena; }

TensorArena* TensorArena::Exchange(TensorArena* next) {
  TensorArena* previous = g_current_arena;
  g_current_arena = next;
  return previous;
}

int64_t TensorArena::TotalBytes() {
  return g_total_arena_bytes.load(std::memory_order_relaxed);
}

TensorArena::TensorArena(size_t initial_slab_bytes)
    : initial_slab_bytes_(std::max<size_t>(initial_slab_bytes, 4 * 1024)) {}

TensorArena::~TensorArena() {
  // Stale allocations at destruction would be a hard use-after-free no
  // poison valve can soften; the plan layer only destroys arenas between
  // scopes, where outstanding_ == 0 holds by construction.
  BIGCITY_CHECK_EQ(outstanding_, 0)
      << "TensorArena destroyed with live allocations";
  ReleaseSlabs(&slabs_);
  ReleaseSlabs(&retired_);
}

void TensorArena::AddSlab(size_t min_bytes) {
  // Growth slabs carry 25% headroom over the current capacity, not a
  // doubling schedule: clean Resets consolidate the chain anyway, and a
  // step that slightly outgrows a large consolidated slab must not pay
  // for (or transiently hold) a second copy of it.
  Slab slab;
  slab.size = std::max({AlignUp(min_bytes), capacity_bytes() / 4,
                        initial_slab_bytes_});
  slab.bytes.reset(new char[slab.size]);
  ++slab_allocs_;
  g_total_arena_bytes.fetch_add(static_cast<int64_t>(slab.size),
                                std::memory_order_relaxed);
  BIGCITY_MEM_ALLOC(static_cast<int64_t>(slab.size));
  slabs_.push_back(std::move(slab));
}

void TensorArena::ReleaseSlabs(std::vector<Slab>* slabs) {
  for (Slab& slab : *slabs) {
    g_total_arena_bytes.fetch_sub(static_cast<int64_t>(slab.size),
                                  std::memory_order_relaxed);
    BIGCITY_MEM_FREE(static_cast<int64_t>(slab.size));
  }
  slabs->clear();
}

size_t TensorArena::capacity_bytes() const {
  size_t total = 0;
  for (const Slab& slab : slabs_) total += slab.size;
  return total;
}

#if BIGCITY_ARENA_SHADOW

void* TensorArena::Allocate(size_t bytes) {
  void* p = ::operator new(bytes > 0 ? bytes : 1);
  shadow_live_.emplace(p, bytes);
  step_bytes_ += AlignUp(bytes);
  ++step_allocs_;
  ++outstanding_;
  g_total_arena_bytes.fetch_add(static_cast<int64_t>(bytes),
                                std::memory_order_relaxed);
  BIGCITY_MEM_ALLOC(static_cast<int64_t>(bytes));
  return p;
}

bool TensorArena::Owns(const void* p) const {
  return shadow_live_.count(p) != 0;
}

bool TensorArena::Deallocate(void* p, size_t /*bytes*/) {
  auto it = shadow_live_.find(p);
  if (it == shadow_live_.end()) return false;
  g_total_arena_bytes.fetch_sub(static_cast<int64_t>(it->second),
                                std::memory_order_relaxed);
  BIGCITY_MEM_FREE(static_cast<int64_t>(it->second));
  shadow_live_.erase(it);
  --outstanding_;
  ::operator delete(p);
  return true;
}

void TensorArena::Reset() {
  if (outstanding_ != 0) ++poisoned_resets_;
  step_bytes_ = 0;
  step_allocs_ = 0;
}

#else  // !BIGCITY_ARENA_SHADOW

void* TensorArena::Allocate(size_t bytes) {
  const size_t need = RoundSize(bytes > 0 ? bytes : 1);
  ++step_allocs_;
  ++outstanding_;
  // Recycle a same-size freed block first: shapes repeat within a step,
  // so this serves most requests from hot, just-released memory and caps
  // the bump high-water mark near the step's live peak.
  if (auto it = free_lists_.find(need);
      it != free_lists_.end() && !it->second.empty()) {
    void* p = it->second.back();
    it->second.pop_back();
    return p;
  }
  while (active_slab_ < slabs_.size() &&
         slabs_[active_slab_].used + need > slabs_[active_slab_].size) {
    ++active_slab_;  // Space skipped here is reclaimed at the next Reset.
  }
  if (active_slab_ == slabs_.size()) AddSlab(need);
  Slab& slab = slabs_[active_slab_];
  void* p = slab.bytes.get() + slab.used;
  slab.used += need;
  step_bytes_ += need;
  return p;
}

bool TensorArena::OwnsActive(const void* p) const {
  const char* c = static_cast<const char*>(p);
  for (const Slab& slab : slabs_) {
    if (c >= slab.bytes.get() && c < slab.bytes.get() + slab.size) {
      return true;
    }
  }
  return false;
}

bool TensorArena::Owns(const void* p) const {
  if (OwnsActive(p)) return true;
  const char* c = static_cast<const char*>(p);
  for (const Slab& slab : retired_) {
    if (c >= slab.bytes.get() && c < slab.bytes.get() + slab.size) {
      return true;
    }
  }
  return false;
}

bool TensorArena::Deallocate(void* p, size_t bytes) {
  if (OwnsActive(p)) {
    // Only active-slab blocks are recycled; a stale block in a retired
    // slab is just forgotten (its slab is reclaimed at the next clean
    // Reset).
    free_lists_[RoundSize(bytes > 0 ? bytes : 1)].push_back(p);
    --outstanding_;
    return true;
  }
  if (!Owns(p)) return false;
  --outstanding_;
  return true;
}

void TensorArena::Reset() {
  // Drop free-list contents either way (the blocks live in slabs that are
  // about to be rewound or retired); the per-size vectors keep their
  // capacity so steady-state steps do no bookkeeping allocation.
  for (auto& [size, list] : free_lists_) list.clear();
  if (outstanding_ != 0) {
    // Live allocations survive the step boundary: retire the slabs so the
    // stale tensors keep pointing at valid memory (bounded leak, not UB).
    ++poisoned_resets_;
    for (Slab& slab : slabs_) retired_.push_back(std::move(slab));
    slabs_.clear();
    active_slab_ = 0;
  } else {
    ReleaseSlabs(&retired_);
    if (slabs_.size() > 1) {
      // Consolidate the chain into one slab sized to the bytes the step
      // actually bumped — but only when there is real slack to reclaim or
      // the chain has grown long (Owns() scans it per free). Without the
      // hysteresis, steps that alternate around the high-water mark would
      // free and re-fault a ~100 MB slab every Reset.
      size_t used_total = 0;
      for (const Slab& slab : slabs_) used_total += slab.used;
      max_step_used_ = std::max(max_step_used_, used_total);
      const size_t capacity = capacity_bytes();
      if (slabs_.size() > 8 ||
          capacity > max_step_used_ + max_step_used_ / 2) {
        ReleaseSlabs(&slabs_);
        AddSlab(max_step_used_);
      }
    }
    for (Slab& slab : slabs_) slab.used = 0;
    active_slab_ = 0;
  }
  step_bytes_ = 0;
  step_allocs_ = 0;
}

#endif  // BIGCITY_ARENA_SHADOW

}  // namespace bigcity::nn
