#include "nn/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_set>

#include "obs/profiler.h"
#include "util/check.h"

namespace bigcity::nn {

namespace {

/// Process-wide creation order for autograd nodes (1-based; 0 = untagged).
/// Always on: one relaxed fetch_add per tensor is noise next to the
/// allocation it accompanies, and keeping it unconditional means a
/// BIGCITY_OBS=OFF binary still has a stable node ordering.
uint64_t NextSeq() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Grad-construction switch flipped by NoGradGuard (thread-local so a
/// no-grad serve worker never affects a concurrently training thread).
thread_local bool g_grad_enabled = true;

/// Allocates the graph node itself through the arena allocator, so inside
/// a plan scope the node + shared_ptr control block are recycled with the
/// payloads they manage.
std::shared_ptr<TensorImpl> NewImpl() {
  return std::allocate_shared<TensorImpl>(ArenaAllocator<TensorImpl>());
}

std::shared_ptr<TensorImpl> NewLeaf(std::vector<int64_t> shape,
                                    FloatVec data, bool requires_grad) {
  auto impl = NewImpl();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  impl->requires_grad = requires_grad;
  impl->needs_grad = requires_grad;
  impl->seq = NextSeq();
  BIGCITY_CHECK_EQ(static_cast<int64_t>(impl->data.size()), impl->numel())
      << "data size " << impl->data.size() << " vs numel " << impl->numel()
      << " (rank " << impl->shape.size() << ")";
  return impl;
}

}  // namespace

bool GradEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

Tensor Tensor::Zeros(std::vector<int64_t> shape, bool requires_grad) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return Tensor(NewLeaf(std::move(shape), FloatVec(n, 0.0f),
                        requires_grad));
}

Tensor Tensor::Ones(std::vector<int64_t> shape, bool requires_grad) {
  return Full(std::move(shape), 1.0f, requires_grad);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value,
                    bool requires_grad) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return Tensor(NewLeaf(std::move(shape), FloatVec(n, value),
                        requires_grad));
}

Tensor Tensor::FromData(std::vector<int64_t> shape, std::vector<float> data,
                        bool requires_grad) {
  return Tensor(NewLeaf(std::move(shape),
                        FloatVec(data.begin(), data.end()), requires_grad));
}

Tensor Tensor::FromSpan(std::vector<int64_t> shape, const float* values,
                        size_t count, bool requires_grad) {
  return Tensor(
      NewLeaf(std::move(shape), FloatVec(values, values + count),
              requires_grad));
}

Tensor Tensor::Randn(std::vector<int64_t> shape, util::Rng* rng, float stddev,
                     bool requires_grad) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  FloatVec data(n);
  for (auto& v : data) v = static_cast<float>(rng->Normal(0.0, stddev));
  return Tensor(NewLeaf(std::move(shape), std::move(data), requires_grad));
}

Tensor Tensor::RandUniform(std::vector<int64_t> shape, util::Rng* rng,
                           float bound, bool requires_grad) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  FloatVec data(n);
  for (auto& v : data) v = static_cast<float>(rng->Uniform(-bound, bound));
  return Tensor(NewLeaf(std::move(shape), std::move(data), requires_grad));
}

Tensor Tensor::Xavier(int64_t fan_in, int64_t fan_out, util::Rng* rng,
                      bool requires_grad) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandUniform({fan_in, fan_out}, rng, bound, requires_grad);
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromData({1}, {value}, requires_grad);
}

const std::vector<int64_t>& Tensor::shape() const {
  BIGCITY_CHECK(is_valid());
  return impl_->shape;
}

int64_t Tensor::numel() const {
  BIGCITY_CHECK(is_valid());
  return impl_->numel();
}

int64_t Tensor::rows() const {
  BIGCITY_CHECK(is_valid());
  BIGCITY_CHECK_EQ(impl_->shape.size(), 2u);
  return impl_->shape[0];
}

int64_t Tensor::cols() const {
  BIGCITY_CHECK(is_valid());
  BIGCITY_CHECK_EQ(impl_->shape.size(), 2u);
  return impl_->shape[1];
}

FloatVec& Tensor::data() {
  BIGCITY_CHECK(is_valid());
  return impl_->data;
}

const FloatVec& Tensor::data() const {
  BIGCITY_CHECK(is_valid());
  return impl_->data;
}

FloatVec& Tensor::grad() {
  BIGCITY_CHECK(is_valid());
  impl_->EnsureGrad();
  return impl_->grad;
}

const FloatVec& Tensor::grad() const {
  BIGCITY_CHECK(is_valid());
  impl_->EnsureGrad();
  return impl_->grad;
}

float Tensor::at(int64_t r, int64_t c) const {
  BIGCITY_CHECK(is_valid());
  BIGCITY_CHECK_EQ(impl_->shape.size(), 2u);
  BIGCITY_CHECK(r >= 0 && r < impl_->shape[0]);
  BIGCITY_CHECK(c >= 0 && c < impl_->shape[1]);
  return impl_->data[static_cast<size_t>(r * impl_->shape[1] + c)];
}

float Tensor::at(int64_t i) const {
  BIGCITY_CHECK(is_valid());
  BIGCITY_CHECK(i >= 0 && i < impl_->numel());
  return impl_->data[static_cast<size_t>(i)];
}

float Tensor::item() const {
  BIGCITY_CHECK(is_valid());
  BIGCITY_CHECK_EQ(impl_->numel(), 1);
  return impl_->data[0];
}

bool Tensor::requires_grad() const {
  BIGCITY_CHECK(is_valid());
  return impl_->requires_grad;
}

void Tensor::set_requires_grad(bool value) {
  BIGCITY_CHECK(is_valid());
  BIGCITY_CHECK(impl_->parents.empty())
      << "set_requires_grad is only meaningful on leaf tensors";
  impl_->requires_grad = value;
  impl_->needs_grad = value;
}

void Tensor::Backward() {
  BIGCITY_CHECK(is_valid());
  BIGCITY_CHECK_EQ(impl_->numel(), 1)
      << "Backward() must start from a scalar loss";

  // Iterative post-order DFS producing a topological order (parents before
  // children in `topo`, so we execute in reverse).
  std::vector<TensorImpl*> topo;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      TensorImpl* parent = frame.node->parents[frame.next_parent].get();
      ++frame.next_parent;
      if (parent->needs_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      topo.push_back(frame.node);
      stack.pop_back();
    }
  }

  impl_->EnsureGrad();
  impl_->grad[0] += 1.0f;

  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn) {
      node->EnsureGrad();
      node->backward_fn(*node);
    }
  }
}

void Tensor::ZeroGrad() {
  BIGCITY_CHECK(is_valid());
  if (impl_->grad.size() != impl_->data.size()) {
    impl_->EnsureGrad();
  } else {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

Tensor Tensor::Detached() const {
  BIGCITY_CHECK(is_valid());
  // The copy re-captures the CURRENT allocation scope: detaching under an
  // ArenaPin is how a result escapes its step arena onto the heap.
  return Tensor(NewLeaf(impl_->shape,
                        FloatVec(impl_->data.begin(), impl_->data.end()),
                        /*requires_grad=*/false));
}

Tensor MakeOpResult(std::vector<int64_t> shape, FloatVec data,
                    ParentVec parents,
                    std::function<void(TensorImpl&)> backward_fn) {
  auto impl = NewImpl();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  BIGCITY_CHECK_EQ(static_cast<int64_t>(impl->data.size()), impl->numel());
  bool needs = false;
  if (g_grad_enabled) {
    for (const auto& p : parents) needs = needs || p->needs_grad;
  }
  impl->needs_grad = needs;
  if (needs) {
    impl->parents = std::move(parents);
    impl->backward_fn = std::move(backward_fn);
  }
  impl->seq = NextSeq();
#if BIGCITY_OBS
  // Tag the node with the producing op and innermost module scope; when
  // the profiler is armed, also wrap backward_fn so the backward pass is
  // billed to the same (module, op) row with the cost estimate the
  // forward op stashed.
  if (const obs::internal::OpFrame* frame =
          obs::internal::CurrentOpFrame()) {
    impl->op_name = frame->op;
    impl->module_path = frame->module;
    if (obs::ProfilerEnabled() && impl->backward_fn) {
      impl->backward_fn = [op = frame->op, module = frame->module,
                           bwd_flops = frame->bwd_flops,
                           bwd_bytes = frame->bwd_bytes,
                           inner = std::move(impl->backward_fn)](
                              TensorImpl& self) {
        obs::ScopedOp profile_op(op, /*backward=*/true, module);
        profile_op.SetCost(bwd_flops, bwd_bytes);
        inner(self);
      };
    }
  }
#endif
  return Tensor(std::move(impl));
}

}  // namespace bigcity::nn
