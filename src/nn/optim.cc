#include "nn/optim.h"

#include <cmath>
#include <cstring>

#include "util/check.h"
#include "util/io.h"

namespace bigcity::nn {

Optimizer::Optimizer(std::vector<Tensor> parameters)
    : parameters_(std::move(parameters)) {
  offsets_.reserve(parameters_.size() + 1);
  size_t total = 0;
  for (const auto& p : parameters_) {
    offsets_.push_back(total);
    total += p.data().size();
  }
  offsets_.push_back(total);
}

void Optimizer::ZeroGrad() {
  for (auto& p : parameters_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (auto& p : parameters_) {
    if (!p.requires_grad()) continue;
    for (float g : p.grad()) total += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& p : parameters_) {
      if (!p.requires_grad()) continue;
      for (float& g : p.grad()) g *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> parameters, float lr, float momentum)
    : Optimizer(std::move(parameters)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.0f) velocity_.assign(total_numel(), 0.0f);
}

void Sgd::Step() {
  for (size_t pi = 0; pi < parameters_.size(); ++pi) {
    Tensor& p = parameters_[pi];
    if (!p.requires_grad()) continue;
    auto& data = p.data();
    auto& grad = p.grad();
    if (momentum_ > 0.0f) {
      float* vel = velocity_.data() + offset_of(pi);
      for (size_t i = 0; i < data.size(); ++i) {
        vel[i] = momentum_ * vel[i] + grad[i];
        data[i] -= lr_ * vel[i];
      }
    } else {
      for (size_t i = 0; i < data.size(); ++i) data[i] -= lr_ * grad[i];
    }
  }
}

Adam::Adam(std::vector<Tensor> parameters, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(parameters)), lr_(lr), beta1_(beta1),
      beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {
  m_.assign(total_numel(), 0.0f);
  v_.assign(total_numel(), 0.0f);
}

void Adam::Step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t pi = 0; pi < parameters_.size(); ++pi) {
    Tensor& p = parameters_[pi];
    if (!p.requires_grad()) continue;
    auto& data = p.data();
    auto& grad = p.grad();
    float* m = m_.data() + offset_of(pi);
    float* v = v_.data() + offset_of(pi);
    for (size_t i = 0; i < data.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * grad[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * grad[i] * grad[i];
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      data[i] -= lr_ * (m_hat / (std::sqrt(v_hat) + eps_) +
                        weight_decay_ * data[i]);
    }
  }
}

void Adam::SaveState(std::ostream& out) const {
  util::WriteFloat(out, lr_);
  util::WriteU64(out, static_cast<uint64_t>(t_));
  util::WriteU64(out, parameters_.size());
  for (size_t pi = 0; pi < parameters_.size(); ++pi) {
    const Tensor& p = parameters_[pi];
    // Untouched slices (frozen parameter, or no step taken yet) serialize
    // as empty vectors — the format the map-based implementation wrote.
    const bool touched = t_ > 0 && p.requires_grad();
    const size_t count = touched ? p.data().size() : 0;
    util::WriteFloatSpan(out, m_.data() + offset_of(pi), count);
    util::WriteFloatSpan(out, v_.data() + offset_of(pi), count);
  }
}

util::Status Adam::LoadState(std::istream& in) {
  float lr = 0;
  uint64_t t = 0;
  uint64_t count = 0;
  if (auto s = util::ReadFloat(in, &lr); !s.ok()) return s;
  if (auto s = util::ReadU64(in, &t); !s.ok()) return s;
  if (auto s = util::ReadU64(in, &count); !s.ok()) return s;
  if (count != parameters_.size()) {
    return util::Status::InvalidArgument(
        "optimizer state parameter count mismatch");
  }
  std::vector<float> m(total_numel(), 0.0f);
  std::vector<float> v(total_numel(), 0.0f);
  for (size_t pi = 0; pi < parameters_.size(); ++pi) {
    const Tensor& p = parameters_[pi];
    std::vector<float> pm, pv;
    if (auto s = util::ReadFloatVector(in, &pm); !s.ok()) return s;
    if (auto s = util::ReadFloatVector(in, &pv); !s.ok()) return s;
    if ((!pm.empty() && pm.size() != p.data().size()) ||
        (!pv.empty() && pv.size() != p.data().size())) {
      return util::Status::InvalidArgument(
          "optimizer moment size mismatch with parameter");
    }
    if (!pm.empty()) {
      std::memcpy(m.data() + offset_of(pi), pm.data(),
                  pm.size() * sizeof(float));
    }
    if (!pv.empty()) {
      std::memcpy(v.data() + offset_of(pi), pv.data(),
                  pv.size() * sizeof(float));
    }
  }
  lr_ = lr;
  t_ = static_cast<int64_t>(t);
  m_ = std::move(m);
  v_ = std::move(v);
  return util::Status::Ok();
}

}  // namespace bigcity::nn
