#ifndef BIGCITY_NN_LORA_H_
#define BIGCITY_NN_LORA_H_

#include <memory>

#include "nn/layers.h"
#include "nn/module.h"

namespace bigcity::nn {

/// Linear layer with an optional Low-Rank Adaptation branch (Hu et al.,
/// 2021), as used for the BIGCity backbone (Sec. V-B): the base weight is
/// frozen after pre-training and only the low-rank matrices A (in x r) and
/// B (r x out) train, with y = x W + b + (alpha / r) * x A B.
class LoraLinear : public Module {
 public:
  LoraLinear(int64_t in_features, int64_t out_features, util::Rng* rng,
             bool bias = true);

  /// Attaches a LoRA branch of rank r. A is Gaussian-initialized, B zero
  /// (so the adapted layer starts identical to the base).
  void EnableLora(int64_t rank, float alpha, util::Rng* rng);

  /// Detaches the LoRA branch (used by ablations / rate sweeps).
  void DisableLora();

  /// Freezes the base weight/bias; LoRA matrices (if any) stay trainable.
  void FreezeBase();

  bool lora_enabled() const { return lora_a_.is_valid(); }
  int64_t lora_rank() const {
    return lora_enabled() ? lora_a_.shape()[1] : 0;
  }

  Tensor Forward(const Tensor& x) const;
  /// GELU(Forward(x)) with the final bias/activation (and LoRA delta add,
  /// when enabled) fused.
  Tensor ForwardGelu(const Tensor& x) const;
  /// Forward(x) + residual with the residual add fused into the base GEMM.
  Tensor ForwardResidual(const Tensor& x, const Tensor& residual) const;

 private:
  /// (alpha / r) * x A B, only valid when the branch is active.
  Tensor ScaledDelta(const Tensor& x) const;

  std::unique_ptr<Linear> base_;
  Tensor lora_a_;  // [in, r]; invalid when disabled.
  Tensor lora_b_;  // [r, out].
  float scale_ = 0.0f;
};

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_LORA_H_
