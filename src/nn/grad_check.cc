#include "nn/grad_check.h"

#include <cmath>

#include "util/check.h"

namespace bigcity::nn {

float MaxGradError(Tensor input, const std::function<Tensor()>& loss_fn,
                   float epsilon) {
  BIGCITY_CHECK(input.requires_grad());
  // Analytic gradient.
  input.ZeroGrad();
  Tensor loss = loss_fn();
  loss.Backward();
  const std::vector<float> analytic(input.grad().begin(),
                                    input.grad().end());

  float max_error = 0.0f;
  auto& data = input.data();
  for (size_t i = 0; i < data.size(); ++i) {
    const float saved = data[i];
    data[i] = saved + epsilon;
    const float up = loss_fn().item();
    data[i] = saved - epsilon;
    const float down = loss_fn().item();
    data[i] = saved;
    const float numeric = (up - down) / (2.0f * epsilon);
    max_error = std::max(max_error, std::fabs(numeric - analytic[i]));
  }
  return max_error;
}

}  // namespace bigcity::nn
