#ifndef BIGCITY_NN_PLAN_H_
#define BIGCITY_NN_PLAN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nn/arena.h"
#include "obs/obs.h"

namespace bigcity::nn {

/// Identity of a reusable execution plan: the task (training stage or
/// serving task name) plus a shape bucket (0 when the task's footprint is
/// shape-independent; serving buckets trajectory lengths by power of two
/// so a handful of plans cover every request size).
struct PlanKey {
  std::string task;
  int64_t bucket = 0;

  bool operator==(const PlanKey& other) const {
    return bucket == other.bucket && task == other.task;
  }
};

/// One captured (task, shape-bucket) execution: the arena sized by the
/// first step ("capture") and recycled by every later one ("replay"),
/// plus the footprint fingerprint the capture recorded. Replay is
/// bit-identical to eager execution by construction — the same op code
/// runs either way, only the allocator behind the buffers differs.
struct ExecutionPlan {
  TensorArena arena;
  uint64_t captures = 0;  // Steps that grew the arena (first + regrowth).
  uint64_t replays = 0;   // Steps served entirely from recycled slabs.
  size_t footprint_bytes = 0;   // Largest step seen (bump bytes).
  uint64_t footprint_allocs = 0;  // Allocations in that step.
};

/// Small LRU cache of ExecutionPlans, one per owner thread (the trainer
/// owns one; each serve worker owns one — plans are never shared across
/// threads). Not thread-safe by design.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 8, bool enabled = true)
      : capacity_(capacity), enabled_(enabled) {}

  /// Looks up (or admits, evicting the least-recently-used plan at
  /// capacity) the plan for `key`. Returns null when the cache is
  /// disabled or has zero capacity — the caller falls back to eager
  /// heap execution. Counts plan.cache.{hit,miss,evict}.
  ExecutionPlan* Acquire(const PlanKey& key);

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }
  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    PlanKey key;
    std::unique_ptr<ExecutionPlan> plan;
    uint64_t tick = 0;
  };

  size_t capacity_;
  bool enabled_;
  std::vector<Entry> entries_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

/// RAII step scope: acquires the plan for `key` and routes every tensor
/// allocation in the enclosing scope into its arena; the destructor
/// updates the plan's footprint statistics and rewinds the arena for the
/// next step. Inert (transparent eager fallback) when `cache` is null or
/// disabled. The first scope on a key is the capture phase — it sizes the
/// arena and, under BIGCITY_OBS, is wrapped in a "plan.capture" span.
class PlanScope {
 public:
  PlanScope(PlanCache* cache, PlanKey key);
  ~PlanScope();

  PlanScope(const PlanScope&) = delete;
  PlanScope& operator=(const PlanScope&) = delete;

  /// True when a plan arena is active (false on eager fallback).
  bool active() const { return plan_ != nullptr; }
  bool capturing() const { return capturing_; }

 private:
  ExecutionPlan* plan_ = nullptr;
  bool capturing_ = false;
  size_t entry_capacity_ = 0;
#if BIGCITY_OBS
  std::optional<obs::TraceSpan> capture_span_;
#endif
  std::optional<ArenaScope> arena_scope_;
};

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_PLAN_H_
