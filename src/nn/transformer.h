#ifndef BIGCITY_NN_TRANSFORMER_H_
#define BIGCITY_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/lora.h"
#include "nn/module.h"

namespace bigcity::nn {

/// Per-layer attention KV state of a causal Transformer, for incremental
/// decoding. `length()` is the number of already-processed sequence
/// positions; Truncate() rolls the cache back to a shared prefix before
/// extending with different suffix tokens.
struct KvCache {
  std::vector<AttentionKv> layers;

  int64_t length() const { return layers.empty() ? 0 : layers[0].length(); }
  void Truncate(int64_t rows) {
    for (auto& layer : layers) layer.Truncate(rows);
  }
  void Clear() { layers.clear(); }
  /// Pins every cached tensor to the heap so the cache survives arena
  /// resets between plan-scoped inference steps.
  void DetachToHeap() {
    for (auto& layer : layers) layer.DetachToHeap();
  }
};

/// Pre-LayerNorm transformer block (GPT-2 style):
///   x = x + Attn(LN(x));  x = x + FFN(LN(x)),  FFN = GELU MLP (4x dim).
/// Attention projections and FFN matrices are LoraLinear so adapters can be
/// attached per the paper's LoRA placement.
class TransformerBlock : public Module {
 public:
  TransformerBlock(int64_t dim, int64_t num_heads, util::Rng* rng,
                   bool causal);

  Tensor Forward(const Tensor& x) const;
  /// Batched forward over row-concatenated independent sequences (see
  /// MultiHeadSelfAttention::ForwardBatched); LN/FFN run on the tall
  /// matrix, attention per sequence. Bit-identical per row to Forward().
  /// Non-null `kv_out` entries receive their sequence's attention state.
  Tensor ForwardBatched(const Tensor& x, const std::vector<int64_t>& lens,
                        const std::vector<AttentionKv*>* kv_out =
                            nullptr) const;
  /// KV-cached forward over the suffix rows of one sequence.
  Tensor ForwardCached(const Tensor& x, AttentionKv* kv) const;

  /// Attaches LoRA adapters (rank, alpha) to Wq/Wk/Wv and both FFN layers.
  void EnableLora(int64_t rank, float alpha, util::Rng* rng);
  /// Freezes all base (non-LoRA) weights in the block.
  void FreezeBase();
  bool lora_enabled() const;

 private:
  std::unique_ptr<LayerNormLayer> ln1_;
  std::unique_ptr<MultiHeadSelfAttention> attn_;
  std::unique_ptr<LayerNormLayer> ln2_;
  std::unique_ptr<LoraLinear> ffn_up_;
  std::unique_ptr<LoraLinear> ffn_down_;
};

/// Stack of transformer blocks with a final layer norm. This is the shared
/// sequence encoder for the BIGCity backbone (causal) and several baselines
/// (bidirectional).
class Transformer : public Module {
 public:
  Transformer(int64_t dim, int64_t num_heads, int64_t num_layers,
              util::Rng* rng, bool causal);

  /// x [L, dim] -> [L, dim].
  Tensor Forward(const Tensor& x) const;
  /// Row-concatenation of independent sequences [sum(lens), dim] ->
  /// [sum(lens), dim], every row bit-identical to the per-sequence
  /// Forward(). When `caches` is given (one entry per sequence, entries
  /// may be null) each non-null KvCache is filled with that sequence's
  /// per-layer attention state — a batched prefill, so a later
  /// ForwardCached over an extension decodes only its suffix rows.
  Tensor ForwardBatched(const Tensor& x, const std::vector<int64_t>& lens,
                        const std::vector<KvCache*>* caches = nullptr) const;
  /// Suffix rows [S, dim] of a sequence whose first cache->length()
  /// positions are cached -> suffix outputs [S, dim], bit-identical to the
  /// trailing rows of a full Forward(). Initializes cache->layers on first
  /// use and appends the suffix state. Causal stacks only.
  Tensor ForwardCached(const Tensor& x, KvCache* cache) const;

  int64_t num_layers() const { return static_cast<int64_t>(blocks_.size()); }
  TransformerBlock* block(int64_t i) { return blocks_[i].get(); }

  /// Attaches LoRA to the first `num_blocks` blocks (the paper's rate n
  /// sweep attaches adapters to a fraction of blocks).
  void EnableLora(int64_t rank, float alpha, int64_t num_blocks,
                  util::Rng* rng);
  void FreezeBase();

 private:
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  std::unique_ptr<LayerNormLayer> final_ln_;
};

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_TRANSFORMER_H_
