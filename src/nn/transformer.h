#ifndef BIGCITY_NN_TRANSFORMER_H_
#define BIGCITY_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/lora.h"
#include "nn/module.h"

namespace bigcity::nn {

/// Pre-LayerNorm transformer block (GPT-2 style):
///   x = x + Attn(LN(x));  x = x + FFN(LN(x)),  FFN = GELU MLP (4x dim).
/// Attention projections and FFN matrices are LoraLinear so adapters can be
/// attached per the paper's LoRA placement.
class TransformerBlock : public Module {
 public:
  TransformerBlock(int64_t dim, int64_t num_heads, util::Rng* rng,
                   bool causal);

  Tensor Forward(const Tensor& x) const;

  /// Attaches LoRA adapters (rank, alpha) to Wq/Wk/Wv and both FFN layers.
  void EnableLora(int64_t rank, float alpha, util::Rng* rng);
  /// Freezes all base (non-LoRA) weights in the block.
  void FreezeBase();
  bool lora_enabled() const;

 private:
  std::unique_ptr<LayerNormLayer> ln1_;
  std::unique_ptr<MultiHeadSelfAttention> attn_;
  std::unique_ptr<LayerNormLayer> ln2_;
  std::unique_ptr<LoraLinear> ffn_up_;
  std::unique_ptr<LoraLinear> ffn_down_;
};

/// Stack of transformer blocks with a final layer norm. This is the shared
/// sequence encoder for the BIGCity backbone (causal) and several baselines
/// (bidirectional).
class Transformer : public Module {
 public:
  Transformer(int64_t dim, int64_t num_heads, int64_t num_layers,
              util::Rng* rng, bool causal);

  /// x [L, dim] -> [L, dim].
  Tensor Forward(const Tensor& x) const;

  int64_t num_layers() const { return static_cast<int64_t>(blocks_.size()); }
  TransformerBlock* block(int64_t i) { return blocks_[i].get(); }

  /// Attaches LoRA to the first `num_blocks` blocks (the paper's rate n
  /// sweep attaches adapters to a fraction of blocks).
  void EnableLora(int64_t rank, float alpha, int64_t num_blocks,
                  util::Rng* rng);
  void FreezeBase();

 private:
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  std::unique_ptr<LayerNormLayer> final_ln_;
};

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_TRANSFORMER_H_
