#include "nn/gat.h"

#include <unordered_set>

#include "nn/kernels/fused.h"
#include "nn/ops.h"
#include "util/check.h"
#include "obs/profiler.h"

namespace bigcity::nn {

void GraphEdges::AddSelfLoops() {
  std::vector<bool> has_loop(static_cast<size_t>(num_nodes), false);
  for (size_t e = 0; e < src.size(); ++e) {
    if (src[e] == dst[e]) has_loop[static_cast<size_t>(src[e])] = true;
  }
  for (int i = 0; i < num_nodes; ++i) {
    if (!has_loop[static_cast<size_t>(i)]) {
      src.push_back(i);
      dst.push_back(i);
    }
  }
}

GatLayer::GatLayer(int64_t in_dim, int64_t out_dim, int64_t num_heads,
                   util::Rng* rng)
    : num_heads_(num_heads), head_dim_(out_dim / num_heads) {
  BIGCITY_CHECK_EQ(head_dim_ * num_heads_, out_dim)
      << "out_dim must be divisible by num_heads";
  for (int64_t h = 0; h < num_heads_; ++h) {
    head_proj_.push_back(std::make_unique<Linear>(in_dim, head_dim_, rng,
                                                  /*bias=*/false));
    RegisterModule("proj" + std::to_string(h), head_proj_.back().get());
    attn_dst_.push_back(RegisterParameter(
        "attn_dst" + std::to_string(h),
        Tensor::Randn({head_dim_, 1}, rng, 0.1f, /*requires_grad=*/true)));
    attn_src_.push_back(RegisterParameter(
        "attn_src" + std::to_string(h),
        Tensor::Randn({head_dim_, 1}, rng, 0.1f, /*requires_grad=*/true)));
  }
}

Tensor GatLayer::Forward(const Tensor& h, const GraphEdges& graph) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  BIGCITY_CHECK_EQ(h.shape()[0], graph.num_nodes);
  BIGCITY_CHECK(!graph.src.empty());
  std::vector<Tensor> heads;
  heads.reserve(static_cast<size_t>(num_heads_));
  const int64_t num_edges = static_cast<int64_t>(graph.src.size());
  for (int64_t head = 0; head < num_heads_; ++head) {
    Tensor hw = head_proj_[static_cast<size_t>(head)]->Forward(h);  // [N,F']
    // Per-node attention logits split into dst and src halves, so the edge
    // score e_ij = leakyrelu(dst_logit[i] + src_logit[j]).
    Tensor dst_logit = MatMul(hw, attn_dst_[static_cast<size_t>(head)]);
    Tensor src_logit = MatMul(hw, attn_src_[static_cast<size_t>(head)]);
    Tensor edge_dst = Rows(dst_logit, graph.dst);  // [E,1]
    Tensor edge_src = Rows(src_logit, graph.src);  // [E,1]
    Tensor scores =
        Reshape(BiasLeakyRelu(edge_dst, edge_src), {num_edges});
    Tensor alpha = SegmentSoftmax(scores, graph.dst, graph.num_nodes);
    Tensor messages = Rows(hw, graph.src);  // [E,F']
    heads.push_back(SegmentWeightedSum(alpha, messages, graph.dst,
                                       graph.num_nodes));
  }
  Tensor merged = num_heads_ == 1 ? heads[0] : Concat(heads, /*axis=*/1);
  // ELU-like nonlinearity; LeakyReLU keeps gradients alive everywhere.
  return LeakyRelu(merged, 0.1f);
}

GatEncoder::GatEncoder(int64_t in_dim, int64_t hidden_dim, int64_t out_dim,
                       int64_t num_heads, util::Rng* rng) {
  gat1_ = std::make_unique<GatLayer>(in_dim, hidden_dim, num_heads, rng);
  gat2_ = std::make_unique<GatLayer>(hidden_dim, hidden_dim, num_heads, rng);
  ffn_ = std::make_unique<Mlp>(std::vector<int64_t>{hidden_dim, out_dim},
                               rng);
  RegisterModule("gat1", gat1_.get());
  RegisterModule("gat2", gat2_.get());
  RegisterModule("ffn", ffn_.get());
}

Tensor GatEncoder::Forward(const Tensor& features,
                           const GraphEdges& graph) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  Tensor h = gat1_->Forward(features, graph);
  h = gat2_->Forward(h, graph);
  return ffn_->Forward(h);
}

}  // namespace bigcity::nn
