#ifndef BIGCITY_NN_GRAD_CHECK_H_
#define BIGCITY_NN_GRAD_CHECK_H_

#include <functional>

#include "nn/tensor.h"

namespace bigcity::nn {

/// Finite-difference gradient verification for tests. `loss_fn` must be a
/// pure function of `input`'s current data returning a scalar tensor
/// (rebuilding the graph on every call). Returns the maximum absolute
/// difference between analytic and numeric gradients over all elements.
float MaxGradError(Tensor input,
                   const std::function<Tensor()>& loss_fn,
                   float epsilon = 1e-3f);

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_GRAD_CHECK_H_
