#include "nn/lora.h"

#include <cmath>

#include "nn/kernels/fused.h"
#include "nn/ops.h"
#include "util/check.h"
#include "obs/profiler.h"

namespace bigcity::nn {

LoraLinear::LoraLinear(int64_t in_features, int64_t out_features,
                       util::Rng* rng, bool bias) {
  base_ = std::make_unique<Linear>(in_features, out_features, rng, bias);
  RegisterModule("base", base_.get());
}

void LoraLinear::EnableLora(int64_t rank, float alpha, util::Rng* rng) {
  BIGCITY_CHECK(!lora_enabled()) << "LoRA already enabled";
  BIGCITY_CHECK_GT(rank, 0);
  const int64_t in = base_->in_features();
  const int64_t out = base_->out_features();
  const float a_std = 1.0f / std::sqrt(static_cast<float>(in));
  lora_a_ = RegisterParameter(
      "lora_a", Tensor::Randn({in, rank}, rng, a_std, /*requires_grad=*/true));
  lora_b_ = RegisterParameter(
      "lora_b", Tensor::Zeros({rank, out}, /*requires_grad=*/true));
  scale_ = alpha / static_cast<float>(rank);
}

void LoraLinear::DisableLora() {
  // Parameters stay registered (shape bookkeeping) but are zeroed and
  // frozen, making the branch an exact no-op.
  if (!lora_enabled()) return;
  lora_b_.data().assign(lora_b_.data().size(), 0.0f);
  lora_a_.set_requires_grad(false);
  lora_b_.set_requires_grad(false);
  scale_ = 0.0f;
}

void LoraLinear::FreezeBase() {
  for (auto& p : base_->Parameters()) p.set_requires_grad(false);
}

Tensor LoraLinear::ScaledDelta(const Tensor& x) const {
  return Scale(MatMul(MatMul(x, lora_a_), lora_b_), scale_);
}

Tensor LoraLinear::Forward(const Tensor& x) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  Tensor y = base_->Forward(x);
  if (lora_enabled() && scale_ != 0.0f) y = Add(y, ScaledDelta(x));
  return y;
}

Tensor LoraLinear::ForwardGelu(const Tensor& x) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  if (!(lora_enabled() && scale_ != 0.0f)) return base_->ForwardGelu(x);
  // Same-shape BiasGelu fuses the delta add with the activation.
  return BiasGelu(base_->Forward(x), ScaledDelta(x));
}

Tensor LoraLinear::ForwardResidual(const Tensor& x,
                                   const Tensor& residual) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  Tensor y = base_->ForwardResidual(x, residual);
  if (lora_enabled() && scale_ != 0.0f) y = Add(y, ScaledDelta(x));
  return y;
}

}  // namespace bigcity::nn
