#ifndef BIGCITY_NN_OPS_H_
#define BIGCITY_NN_OPS_H_

#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace bigcity::nn {

// Autograd-aware tensor operations. All functions build graph nodes when any
// input needs gradients and are no-graph pure computations otherwise.
//
// Shape conventions: tensors are row-major; "2-D" means shape {rows, cols}.
// Broadcasting is supported in Add/Sub/Mul/Div for (a) identical shapes,
// (b) [N,D] op [D] (row-wise broadcast), and (c) anything op scalar-tensor.

// --- Elementwise / arithmetic ----------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Neg(const Tensor& a);
/// Multiplies by a compile-time constant (no second graph input).
Tensor Scale(const Tensor& a, float factor);
/// Adds a constant to every element.
Tensor AddConst(const Tensor& a, float value);
/// Elementwise natural log (inputs must be positive).
Tensor Log(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Sqrt(const Tensor& a);
/// Elementwise square.
Tensor Square(const Tensor& a);
Tensor Abs(const Tensor& a);

// --- Activations ------------------------------------------------------------

Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float negative_slope = 0.2f);
/// tanh-approximation GELU as used by GPT-2.
Tensor Gelu(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);

// --- Linear algebra ----------------------------------------------------------

/// [N,K] x [K,M] -> [N,M].
Tensor MatMul(const Tensor& a, const Tensor& b);
/// 2-D transpose.
Tensor Transpose(const Tensor& a);

// --- Reductions ---------------------------------------------------------------

/// Sum of all elements -> scalar tensor {1}.
Tensor Sum(const Tensor& a);
/// Mean of all elements -> scalar tensor {1}.
Tensor Mean(const Tensor& a);
/// Column-wise mean of a [N,D] tensor -> [1,D] (sequence pooling).
Tensor MeanRows(const Tensor& a);
/// Row-wise sum of a [N,D] tensor -> {N}.
Tensor SumCols(const Tensor& a);

// --- Softmax family ------------------------------------------------------------

/// Row-wise softmax of a 2-D tensor.
Tensor Softmax(const Tensor& a);
/// Row-wise log-softmax of a 2-D tensor (numerically stable).
Tensor LogSoftmax(const Tensor& a);

// --- Normalization ---------------------------------------------------------------

/// Layer normalization over the last dimension of a 2-D tensor, with learned
/// gain/bias of shape {D}.
Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5f);

// --- Shape manipulation ------------------------------------------------------------

/// Concatenates 2-D tensors along axis 0 (rows) or 1 (cols).
Tensor Concat(const std::vector<Tensor>& parts, int axis);
/// Rows [start, end) of a 2-D tensor.
Tensor SliceRows(const Tensor& a, int64_t start, int64_t end);
/// Columns [start, end) of a 2-D tensor.
Tensor SliceCols(const Tensor& a, int64_t start, int64_t end);
/// Gathers the given rows of a 2-D tensor -> [indices.size(), D].
Tensor Rows(const Tensor& a, const std::vector<int>& indices);
/// Reinterprets the data with a new shape of equal numel.
Tensor Reshape(const Tensor& a, std::vector<int64_t> shape);

// --- Lookup / graph ops --------------------------------------------------------------

/// Embedding lookup: table [V,D], indices (n) -> [n,D]. Gradients scatter-add
/// into the table.
Tensor Embedding(const Tensor& table, const std::vector<int>& indices);

/// Per-segment softmax: scores {E} grouped by segment_ids (values in
/// [0, num_segments)); softmax is computed within each segment.
Tensor SegmentSoftmax(const Tensor& scores, const std::vector<int>& segment_ids,
                      int num_segments);

/// Weighted segment sum: out[s] = sum over e with segment_ids[e]==s of
/// weights[e] * values[e,:]. weights {E}, values [E,D] -> [num_segments, D].
Tensor SegmentWeightedSum(const Tensor& weights, const Tensor& values,
                          const std::vector<int>& segment_ids,
                          int num_segments);

// --- Regularization -----------------------------------------------------------------

/// Inverted dropout; identity when !training or p == 0.
Tensor Dropout(const Tensor& a, float p, util::Rng* rng, bool training);

// --- Losses ------------------------------------------------------------------------

/// Mean cross-entropy of logits [N,C] against integer targets (n) -> scalar.
Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets);
/// Mean squared error between same-shaped tensors -> scalar.
Tensor Mse(const Tensor& pred, const Tensor& target);
/// Mean absolute error -> scalar (smooth near zero is NOT applied).
Tensor L1(const Tensor& pred, const Tensor& target);

// --- Non-differentiable helpers -------------------------------------------------------

/// Index of the max element in each row of a 2-D tensor.
std::vector<int> ArgmaxRows(const Tensor& a);
/// Indices of the k largest elements of row r (descending).
std::vector<int> TopKRow(const Tensor& a, int64_t row, int k);

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_OPS_H_
