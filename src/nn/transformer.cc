#include "nn/transformer.h"

#include "nn/ops.h"
#include "util/check.h"
#include "obs/profiler.h"

namespace bigcity::nn {

TransformerBlock::TransformerBlock(int64_t dim, int64_t num_heads,
                                   util::Rng* rng, bool causal) {
  ln1_ = std::make_unique<LayerNormLayer>(dim);
  attn_ = std::make_unique<MultiHeadSelfAttention>(dim, num_heads, rng,
                                                   causal);
  ln2_ = std::make_unique<LayerNormLayer>(dim);
  ffn_up_ = std::make_unique<LoraLinear>(dim, 4 * dim, rng);
  ffn_down_ = std::make_unique<LoraLinear>(4 * dim, dim, rng);
  RegisterModule("ln1", ln1_.get());
  RegisterModule("attn", attn_.get());
  RegisterModule("ln2", ln2_.get());
  RegisterModule("ffn_up", ffn_up_.get());
  RegisterModule("ffn_down", ffn_down_.get());
}

Tensor TransformerBlock::Forward(const Tensor& x) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  // Both pre-norm skip connections ride the fused residual epilogues of
  // the output / down projections; the FFN activation is fused with its
  // bias add.
  Tensor h = attn_->Forward(ln1_->Forward(x), /*residual=*/x);
  return ffn_down_->ForwardResidual(ffn_up_->ForwardGelu(ln2_->Forward(h)),
                                    h);
}

Tensor TransformerBlock::ForwardBatched(
    const Tensor& x, const std::vector<int64_t>& lens,
    const std::vector<AttentionKv*>* kv_out) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  // LN, FFN, and the fused residual epilogues are all row-wise, so only
  // the attention core needs the sequence boundaries.
  Tensor h =
      attn_->ForwardBatched(ln1_->Forward(x), /*residual=*/x, lens, kv_out);
  return ffn_down_->ForwardResidual(ffn_up_->ForwardGelu(ln2_->Forward(h)),
                                    h);
}

Tensor TransformerBlock::ForwardCached(const Tensor& x,
                                       AttentionKv* kv) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  Tensor h = attn_->ForwardCached(ln1_->Forward(x), /*residual=*/x, kv);
  return ffn_down_->ForwardResidual(ffn_up_->ForwardGelu(ln2_->Forward(h)),
                                    h);
}

void TransformerBlock::EnableLora(int64_t rank, float alpha, util::Rng* rng) {
  attn_->wq()->EnableLora(rank, alpha, rng);
  attn_->wk()->EnableLora(rank, alpha, rng);
  attn_->wv()->EnableLora(rank, alpha, rng);
  ffn_up_->EnableLora(rank, alpha, rng);
  ffn_down_->EnableLora(rank, alpha, rng);
}

void TransformerBlock::FreezeBase() {
  attn_->wq()->FreezeBase();
  attn_->wk()->FreezeBase();
  attn_->wv()->FreezeBase();
  attn_->wo()->FreezeBase();
  ffn_up_->FreezeBase();
  ffn_down_->FreezeBase();
  for (auto& p : ln1_->Parameters()) p.set_requires_grad(false);
  for (auto& p : ln2_->Parameters()) p.set_requires_grad(false);
}

bool TransformerBlock::lora_enabled() const {
  return attn_->wq()->lora_enabled();
}

Transformer::Transformer(int64_t dim, int64_t num_heads, int64_t num_layers,
                         util::Rng* rng, bool causal) {
  BIGCITY_CHECK_GT(num_layers, 0);
  for (int64_t i = 0; i < num_layers; ++i) {
    blocks_.push_back(
        std::make_unique<TransformerBlock>(dim, num_heads, rng, causal));
    RegisterModule("block" + std::to_string(i), blocks_.back().get());
  }
  final_ln_ = std::make_unique<LayerNormLayer>(dim);
  RegisterModule("final_ln", final_ln_.get());
}

Tensor Transformer::Forward(const Tensor& x) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  Tensor h = x;
  for (const auto& block : blocks_) h = block->Forward(h);
  return final_ln_->Forward(h);
}

Tensor Transformer::ForwardBatched(
    const Tensor& x, const std::vector<int64_t>& lens,
    const std::vector<KvCache*>* caches) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  if (caches != nullptr) {
    BIGCITY_CHECK_EQ(caches->size(), lens.size());
    for (KvCache* cache : *caches) {
      if (cache == nullptr) continue;
      if (cache->layers.empty()) {
        cache->layers.resize(static_cast<size_t>(num_layers()));
      }
      BIGCITY_CHECK_EQ(cache->layers.size(), blocks_.size());
    }
  }
  Tensor h = x;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    std::vector<AttentionKv*> layer_kvs;
    if (caches != nullptr) {
      layer_kvs.reserve(caches->size());
      for (KvCache* cache : *caches) {
        layer_kvs.push_back(cache == nullptr ? nullptr : &cache->layers[i]);
      }
    }
    h = blocks_[i]->ForwardBatched(h, lens,
                                   caches != nullptr ? &layer_kvs : nullptr);
  }
  return final_ln_->Forward(h);
}

Tensor Transformer::ForwardCached(const Tensor& x, KvCache* cache) const {
  BIGCITY_PROFILE_MODULE(module_path().c_str());
  BIGCITY_CHECK(cache != nullptr);
  if (cache->layers.empty()) {
    cache->layers.resize(static_cast<size_t>(num_layers()));
  }
  BIGCITY_CHECK_EQ(cache->layers.size(), blocks_.size());
  Tensor h = x;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    h = blocks_[i]->ForwardCached(h, &cache->layers[i]);
  }
  return final_ln_->Forward(h);
}

void Transformer::EnableLora(int64_t rank, float alpha, int64_t num_blocks,
                             util::Rng* rng) {
  BIGCITY_CHECK_LE(num_blocks, num_layers());
  for (int64_t i = 0; i < num_blocks; ++i) {
    blocks_[static_cast<size_t>(i)]->EnableLora(rank, alpha, rng);
  }
}

void Transformer::FreezeBase() {
  for (auto& block : blocks_) block->FreezeBase();
  for (auto& p : final_ln_->Parameters()) p.set_requires_grad(false);
}

}  // namespace bigcity::nn
