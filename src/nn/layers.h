#ifndef BIGCITY_NN_LAYERS_H_
#define BIGCITY_NN_LAYERS_H_

#include <vector>

#include "nn/module.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace bigcity::nn {

/// Fully-connected layer: y = x W + b, W [in, out].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, util::Rng* rng,
         bool bias = true);

  /// x [N, in] -> [N, out]. One fused graph node (GEMM + bias epilogue).
  Tensor Forward(const Tensor& x) const;
  /// GELU(x W + b) with the bias add and activation fused into one pass.
  Tensor ForwardGelu(const Tensor& x) const;
  /// x W + b + residual as one fused node (residual [N, out]).
  Tensor ForwardResidual(const Tensor& x, const Tensor& residual) const;

  int64_t in_features() const { return weight_.shape()[0]; }
  int64_t out_features() const { return weight_.shape()[1]; }
  const Tensor& weight() const { return weight_; }

 private:
  Tensor weight_;
  Tensor bias_;  // Invalid handle when bias is disabled.
};

/// Token embedding table with normal(0, 0.02) init (GPT-2 convention).
class EmbeddingTable : public Module {
 public:
  EmbeddingTable(int64_t vocab_size, int64_t dim, util::Rng* rng);

  /// indices (n) -> [n, dim].
  Tensor Forward(const std::vector<int>& indices) const;

  int64_t vocab_size() const { return table_.shape()[0]; }
  int64_t dim() const { return table_.shape()[1]; }
  const Tensor& table() const { return table_; }

 private:
  Tensor table_;
};

/// Learnable layer normalization over the last dimension.
class LayerNormLayer : public Module {
 public:
  explicit LayerNormLayer(int64_t dim);

  Tensor Forward(const Tensor& x) const;

 private:
  Tensor gamma_;
  Tensor beta_;
};

/// Multi-layer perceptron with GELU activations between layers.
class Mlp : public Module {
 public:
  /// dims = {in, hidden..., out}; at least {in, out}.
  Mlp(const std::vector<int64_t>& dims, util::Rng* rng);

  Tensor Forward(const Tensor& x) const;

  int64_t out_features() const { return layers_.back()->out_features(); }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
};

/// Single-layer GRU cell + sequence runner (used by RNN baselines).
class Gru : public Module {
 public:
  Gru(int64_t input_dim, int64_t hidden_dim, util::Rng* rng);

  /// One step: (x [1,in], h [1,hidden]) -> new h [1,hidden].
  Tensor Step(const Tensor& x, const Tensor& h) const;

  /// Runs the full sequence x [L,in]; returns all hidden states [L,hidden].
  Tensor Forward(const Tensor& x) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  std::unique_ptr<Linear> gates_x_;   // x -> [z r] (2*hidden).
  std::unique_ptr<Linear> gates_h_;   // h -> [z r].
  std::unique_ptr<Linear> cand_x_;    // x -> candidate.
  std::unique_ptr<Linear> cand_h_;    // (r*h) -> candidate.
};

}  // namespace bigcity::nn

#endif  // BIGCITY_NN_LAYERS_H_
