#ifndef BIGCITY_ROADNET_SHORTEST_PATH_H_
#define BIGCITY_ROADNET_SHORTEST_PATH_H_

#include <vector>

#include "roadnet/road_network.h"
#include "util/rng.h"

namespace bigcity::roadnet {

/// Dijkstra over the segment graph with free-flow travel time weights.
/// Returns the segment sequence from `source` to `target` inclusive, or an
/// empty vector when unreachable.
std::vector<int> ShortestPath(const RoadNetwork& network, int source,
                              int target);

/// Shortest path under per-segment multiplicative weight noise in
/// [1, 1 + noise]. Different noise draws yield plausibly different routes —
/// this models driver-specific route preferences for the trajectory
/// generator (distinct users take distinct habitual routes).
std::vector<int> NoisyShortestPath(const RoadNetwork& network, int source,
                                   int target, double noise, util::Rng* rng);

/// All-pairs-free BFS hop distance from `source` (used in tests and for
/// reachability checks). Unreachable -> -1.
std::vector<int> HopDistances(const RoadNetwork& network, int source);

}  // namespace bigcity::roadnet

#endif  // BIGCITY_ROADNET_SHORTEST_PATH_H_
