#include "roadnet/synthetic_city.h"

#include <cmath>
#include <vector>

#include "util/check.h"

namespace bigcity::roadnet {

namespace {

struct Street {
  int a;  // Intersection index.
  int b;
  RoadType type;
};

}  // namespace

RoadNetwork GenerateSyntheticCity(const SyntheticCityConfig& config) {
  BIGCITY_CHECK_GE(config.grid_width, 2);
  BIGCITY_CHECK_GE(config.grid_height, 2);
  util::Rng rng(config.seed);
  const int w = config.grid_width;
  const int h = config.grid_height;
  auto node = [w](int x, int y) { return y * w + x; };

  std::vector<Street> streets;
  auto classify = [&](int x0, int y0, int x1, int y1) -> RoadType {
    const bool horizontal = y0 == y1;
    // Border ring = highway; every k-th interior line = arterial.
    if (horizontal && (y0 == 0 || y0 == h - 1)) return RoadType::kHighway;
    if (!horizontal && (x0 == 0 || x0 == w - 1)) return RoadType::kHighway;
    if (horizontal && y0 % config.arterial_every == 0) {
      return RoadType::kArterial;
    }
    if (!horizontal && x0 % config.arterial_every == 0) {
      return RoadType::kArterial;
    }
    (void)x1;
    (void)y1;
    return RoadType::kLocal;
  };

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) {
        RoadType type = classify(x, y, x + 1, y);
        if (type != RoadType::kLocal || !rng.Bernoulli(config.drop_street_prob)) {
          streets.push_back({node(x, y), node(x + 1, y), type});
        }
      }
      if (y + 1 < h) {
        RoadType type = classify(x, y, x, y + 1);
        if (type != RoadType::kLocal || !rng.Bernoulli(config.drop_street_prob)) {
          streets.push_back({node(x, y), node(x, y + 1), type});
        }
      }
    }
  }

  auto coord_x = [&](int n) { return static_cast<float>(n % w) * config.block_m; };
  auto coord_y = [&](int n) { return static_cast<float>(n / w) * config.block_m; };

  std::vector<RoadSegment> segments;
  segments.reserve(streets.size() * 2);
  auto add_segment = [&](int from, int to, RoadType type) {
    RoadSegment s;
    s.id = static_cast<int>(segments.size());
    s.from_intersection = from;
    s.to_intersection = to;
    const float dx = coord_x(to) - coord_x(from);
    const float dy = coord_y(to) - coord_y(from);
    s.length_m = std::sqrt(dx * dx + dy * dy) *
                 static_cast<float>(rng.Uniform(0.95, 1.1));
    s.type = type;
    switch (type) {
      case RoadType::kLocal:
        s.lanes = 1;
        s.speed_limit_mps = 8.3f;  // 30 km/h.
        break;
      case RoadType::kArterial:
        s.lanes = 2;
        s.speed_limit_mps = 13.9f;  // 50 km/h.
        break;
      case RoadType::kHighway:
        s.lanes = 3;
        s.speed_limit_mps = 22.2f;  // 80 km/h.
        break;
    }
    s.mid_x = (coord_x(from) + coord_x(to)) * 0.5f;
    s.mid_y = (coord_y(from) + coord_y(to)) * 0.5f;
    segments.push_back(s);
  };
  for (const auto& street : streets) {
    add_segment(street.a, street.b, street.type);
    add_segment(street.b, street.a, street.type);
  }
  return RoadNetwork(std::move(segments));
}

}  // namespace bigcity::roadnet
