#include "roadnet/poi.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace bigcity::roadnet {

namespace {

/// Nearest segment by midpoint distance (cities here are small enough for
/// a linear scan; a real deployment would use a spatial index).
int NearestSegment(const RoadNetwork& network, float x, float y) {
  int best = 0;
  float best_distance = std::numeric_limits<float>::infinity();
  for (const auto& segment : network.segments()) {
    const float dx = segment.mid_x - x;
    const float dy = segment.mid_y - y;
    const float distance = dx * dx + dy * dy;
    if (distance < best_distance) {
      best_distance = distance;
      best = segment.id;
    }
  }
  return best;
}

}  // namespace

PoiLayer::PoiLayer(const RoadNetwork* network, int count, uint64_t seed)
    : network_(network) {
  BIGCITY_CHECK(network != nullptr);
  BIGCITY_CHECK_GT(network->num_segments(), 0);
  util::Rng rng(seed);
  float max_x = 1.0f, max_y = 1.0f;
  for (const auto& segment : network->segments()) {
    max_x = std::max(max_x, segment.mid_x);
    max_y = std::max(max_y, segment.mid_y);
  }
  const float cx = max_x / 2.0f, cy = max_y / 2.0f;

  pois_.reserve(static_cast<size_t>(count));
  by_segment_.assign(static_cast<size_t>(network->num_segments()), {});
  for (int i = 0; i < count; ++i) {
    Poi poi;
    poi.id = i;
    const double r = rng.Uniform();
    if (r < 0.35) {  // Residential: uniform over the city.
      poi.category = PoiCategory::kResidential;
      poi.x = static_cast<float>(rng.Uniform(0.0, max_x));
      poi.y = static_cast<float>(rng.Uniform(0.0, max_y));
    } else if (r < 0.55) {  // Offices: clustered near the center.
      poi.category = PoiCategory::kOffice;
      poi.x = static_cast<float>(cx + rng.Normal(0.0, max_x / 8.0));
      poi.y = static_cast<float>(cy + rng.Normal(0.0, max_y / 8.0));
    } else if (r < 0.75) {  // Shopping: near a random arterial segment.
      poi.category = PoiCategory::kShopping;
      std::vector<int> arterials;
      for (const auto& segment : network->segments()) {
        if (segment.type == RoadType::kArterial) arterials.push_back(segment.id);
      }
      const auto& anchor = network->segment(
          arterials.empty()
              ? rng.UniformInt(0, network->num_segments() - 1)
              : arterials[static_cast<size_t>(rng.UniformInt(
                    0, static_cast<int>(arterials.size()) - 1))]);
      poi.x = anchor.mid_x + static_cast<float>(rng.Normal(0.0, 80.0));
      poi.y = anchor.mid_y + static_cast<float>(rng.Normal(0.0, 80.0));
    } else if (r < 0.9) {  // Schools: uniform.
      poi.category = PoiCategory::kSchool;
      poi.x = static_cast<float>(rng.Uniform(0.0, max_x));
      poi.y = static_cast<float>(rng.Uniform(0.0, max_y));
    } else {  // Parks: uniform.
      poi.category = PoiCategory::kPark;
      poi.x = static_cast<float>(rng.Uniform(0.0, max_x));
      poi.y = static_cast<float>(rng.Uniform(0.0, max_y));
    }
    poi.x = std::clamp(poi.x, 0.0f, max_x);
    poi.y = std::clamp(poi.y, 0.0f, max_y);
    poi.nearest_segment = NearestSegment(*network, poi.x, poi.y);
    by_segment_[static_cast<size_t>(poi.nearest_segment)].push_back(poi.id);
    pois_.push_back(poi);
  }
}

const std::vector<int>& PoiLayer::PoisOfSegment(int segment) const {
  BIGCITY_CHECK(segment >= 0 && segment < network_->num_segments());
  return by_segment_[static_cast<size_t>(segment)];
}

nn::Tensor PoiLayer::SegmentPoiFeatures() const {
  const int num_segments = network_->num_segments();
  std::vector<float> data(
      static_cast<size_t>(num_segments) * kNumPoiCategories, 0.0f);
  for (const auto& poi : pois_) {
    data[static_cast<size_t>(poi.nearest_segment) * kNumPoiCategories +
         static_cast<int>(poi.category)] += 1.0f;
  }
  // Normalize by a soft cap so dense segments stay in a sane range.
  for (auto& value : data) value = std::min(value / 4.0f, 2.0f);
  return nn::Tensor::FromData({num_segments, kNumPoiCategories},
                              std::move(data));
}

}  // namespace bigcity::roadnet
