#include "roadnet/road_network.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace bigcity::roadnet {

RoadNetwork::RoadNetwork(std::vector<RoadSegment> segments)
    : segments_(std::move(segments)) {
  for (size_t i = 0; i < segments_.size(); ++i) {
    BIGCITY_CHECK_EQ(segments_[i].id, static_cast<int>(i))
        << "segment ids must be dense 0..I-1";
  }
  BuildAdjacency();
}

void RoadNetwork::BuildAdjacency() {
  successors_.assign(segments_.size(), {});
  predecessors_.assign(segments_.size(), {});
  // Group segments by their start intersection for fast lookups.
  std::map<int, std::vector<int>> by_start;
  for (const auto& s : segments_) {
    by_start[s.from_intersection].push_back(s.id);
  }
  for (auto& s : segments_) {
    auto it = by_start.find(s.to_intersection);
    if (it == by_start.end()) continue;
    for (int next : it->second) {
      // Exclude immediate U-turns onto the reverse twin of the same road.
      const auto& n = segments_[static_cast<size_t>(next)];
      if (n.to_intersection == s.from_intersection &&
          n.from_intersection == s.to_intersection) {
        continue;
      }
      successors_[static_cast<size_t>(s.id)].push_back(next);
      predecessors_[static_cast<size_t>(next)].push_back(s.id);
    }
  }
  for (auto& s : segments_) {
    s.out_degree = static_cast<int>(successors_[static_cast<size_t>(s.id)].size());
    s.in_degree = static_cast<int>(predecessors_[static_cast<size_t>(s.id)].size());
  }
}

const RoadSegment& RoadNetwork::segment(int id) const {
  BIGCITY_CHECK(id >= 0 && id < num_segments());
  return segments_[static_cast<size_t>(id)];
}

const std::vector<int>& RoadNetwork::successors(int id) const {
  BIGCITY_CHECK(id >= 0 && id < num_segments());
  return successors_[static_cast<size_t>(id)];
}

const std::vector<int>& RoadNetwork::predecessors(int id) const {
  BIGCITY_CHECK(id >= 0 && id < num_segments());
  return predecessors_[static_cast<size_t>(id)];
}

nn::Tensor RoadNetwork::StaticFeatureMatrix() const {
  const int n = num_segments();
  const int d = StaticFeatureDim();
  // Normalization scales chosen so typical values land in [0, ~2].
  float max_x = 1.0f, max_y = 1.0f;
  for (const auto& s : segments_) {
    max_x = std::max(max_x, s.mid_x);
    max_y = std::max(max_y, s.mid_y);
  }
  std::vector<float> data(static_cast<size_t>(n) * d, 0.0f);
  for (const auto& s : segments_) {
    float* row = data.data() + static_cast<size_t>(s.id) * d;
    row[0] = s.length_m / 500.0f;
    row[1] = static_cast<float>(s.lanes) / 3.0f;
    row[2] = s.speed_limit_mps / 20.0f;
    row[3] = static_cast<float>(s.in_degree) / 4.0f;
    row[4] = static_cast<float>(s.out_degree) / 4.0f;
    row[5] = s.mid_x / max_x;
    row[6] = s.mid_y / max_y;
    row[7 + static_cast<int>(s.type)] = 1.0f;
  }
  return nn::Tensor::FromData({n, d}, std::move(data));
}

nn::GraphEdges RoadNetwork::ToGraphEdges() const {
  nn::GraphEdges g;
  g.num_nodes = num_segments();
  for (const auto& s : segments_) {
    for (int next : successors_[static_cast<size_t>(s.id)]) {
      g.src.push_back(s.id);
      g.dst.push_back(next);
    }
  }
  g.AddSelfLoops();
  return g;
}

float RoadNetwork::FreeFlowSeconds(int id) const {
  const RoadSegment& s = segment(id);
  return s.length_m / s.speed_limit_mps;
}

}  // namespace bigcity::roadnet
