#ifndef BIGCITY_ROADNET_ROAD_NETWORK_H_
#define BIGCITY_ROADNET_ROAD_NETWORK_H_

#include <vector>

#include "nn/gat.h"
#include "nn/tensor.h"

namespace bigcity::roadnet {

/// Functional class of a road segment; encoded one-hot in static features.
enum class RoadType { kLocal = 0, kArterial = 1, kHighway = 2 };
inline constexpr int kNumRoadTypes = 3;

/// A directed road segment (Def. 1). Segments are the vertices of the
/// segment graph; two segments are connected when one ends where the other
/// begins (Def. 2).
struct RoadSegment {
  int id = 0;
  int from_intersection = 0;
  int to_intersection = 0;
  float length_m = 0.0f;
  int lanes = 1;
  RoadType type = RoadType::kLocal;
  float speed_limit_mps = 13.9f;  // ~50 km/h.
  int in_degree = 0;   // Number of predecessor segments.
  int out_degree = 0;  // Number of successor segments.
  // Midpoint coordinates (meters); used by geometric similarity baselines.
  float mid_x = 0.0f;
  float mid_y = 0.0f;
};

/// Directed road network over segments (Def. 2): vertices are segments,
/// edges connect consecutive segments, and every segment carries a static
/// feature vector e^(s).
class RoadNetwork {
 public:
  RoadNetwork() = default;
  explicit RoadNetwork(std::vector<RoadSegment> segments);

  int num_segments() const { return static_cast<int>(segments_.size()); }
  const RoadSegment& segment(int id) const;
  const std::vector<RoadSegment>& segments() const { return segments_; }

  /// Successor segment ids of `id` (segments drivable immediately after).
  const std::vector<int>& successors(int id) const;
  const std::vector<int>& predecessors(int id) const;

  /// Static feature matrix E^(s) [I, StaticFeatureDim()], normalized to
  /// roughly unit scale. Layout per row: length, lanes, speed limit,
  /// in-degree, out-degree, x, y, one-hot road type.
  nn::Tensor StaticFeatureMatrix() const;
  static int StaticFeatureDim() { return 7 + kNumRoadTypes; }

  /// The segment graph as a GAT edge list (with self loops).
  nn::GraphEdges ToGraphEdges() const;

  /// Expected traversal seconds at free flow.
  float FreeFlowSeconds(int id) const;

 private:
  void BuildAdjacency();

  std::vector<RoadSegment> segments_;
  std::vector<std::vector<int>> successors_;
  std::vector<std::vector<int>> predecessors_;
};

}  // namespace bigcity::roadnet

#endif  // BIGCITY_ROADNET_ROAD_NETWORK_H_
