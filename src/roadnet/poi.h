#ifndef BIGCITY_ROADNET_POI_H_
#define BIGCITY_ROADNET_POI_H_

#include <vector>

#include "nn/tensor.h"
#include "roadnet/road_network.h"
#include "util/rng.h"

namespace bigcity::roadnet {

/// Categories of points of interest. The paper's conclusion names POIs as
/// the primary future-work spatial element beyond road segments; this
/// module implements that extension: POIs attach to their nearest segment
/// and enrich the static features consumed by the ST tokenizer.
enum class PoiCategory {
  kResidential = 0,
  kOffice,
  kShopping,
  kSchool,
  kPark,
};
inline constexpr int kNumPoiCategories = 5;

/// One point of interest placed in the city plane.
struct Poi {
  int id = 0;
  PoiCategory category = PoiCategory::kResidential;
  float x = 0.0f;
  float y = 0.0f;
  int nearest_segment = 0;
};

/// A synthetic POI layer over a road network. Placement follows simple
/// urban priors: residential spreads everywhere, offices cluster near the
/// center, shopping along arterials.
class PoiLayer {
 public:
  /// Generates `count` POIs over the network (deterministic per seed).
  PoiLayer(const RoadNetwork* network, int count, uint64_t seed);

  const std::vector<Poi>& pois() const { return pois_; }

  /// POIs attached to a segment.
  const std::vector<int>& PoisOfSegment(int segment) const;

  /// Per-segment POI category counts, normalized: [I, kNumPoiCategories].
  /// Appending these columns to RoadNetwork::StaticFeatureMatrix() gives
  /// the POI-augmented static features.
  nn::Tensor SegmentPoiFeatures() const;

  int num_pois() const { return static_cast<int>(pois_.size()); }

 private:
  const RoadNetwork* network_;
  std::vector<Poi> pois_;
  std::vector<std::vector<int>> by_segment_;
};

}  // namespace bigcity::roadnet

#endif  // BIGCITY_ROADNET_POI_H_
