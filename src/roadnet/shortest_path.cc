#include "roadnet/shortest_path.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/check.h"

namespace bigcity::roadnet {

namespace {

std::vector<int> DijkstraPath(const RoadNetwork& network, int source,
                              int target, const std::vector<float>& weights) {
  const int n = network.num_segments();
  BIGCITY_CHECK(source >= 0 && source < n);
  BIGCITY_CHECK(target >= 0 && target < n);
  std::vector<float> dist(static_cast<size_t>(n),
                          std::numeric_limits<float>::infinity());
  std::vector<int> prev(static_cast<size_t>(n), -1);
  using Entry = std::pair<float, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[static_cast<size_t>(source)] = 0.0f;
  heap.push({0.0f, source});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<size_t>(u)]) continue;
    if (u == target) break;
    for (int v : network.successors(u)) {
      const float nd = d + weights[static_cast<size_t>(v)];
      if (nd < dist[static_cast<size_t>(v)]) {
        dist[static_cast<size_t>(v)] = nd;
        prev[static_cast<size_t>(v)] = u;
        heap.push({nd, v});
      }
    }
  }
  if (source != target &&
      !std::isfinite(dist[static_cast<size_t>(target)])) {
    return {};
  }
  std::vector<int> path;
  for (int cur = target; cur != -1; cur = prev[static_cast<size_t>(cur)]) {
    path.push_back(cur);
    if (cur == source) break;
  }
  if (path.back() != source) return {};
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

std::vector<int> ShortestPath(const RoadNetwork& network, int source,
                              int target) {
  std::vector<float> weights(static_cast<size_t>(network.num_segments()));
  for (int i = 0; i < network.num_segments(); ++i) {
    weights[static_cast<size_t>(i)] = network.FreeFlowSeconds(i);
  }
  return DijkstraPath(network, source, target, weights);
}

std::vector<int> NoisyShortestPath(const RoadNetwork& network, int source,
                                   int target, double noise, util::Rng* rng) {
  std::vector<float> weights(static_cast<size_t>(network.num_segments()));
  for (int i = 0; i < network.num_segments(); ++i) {
    weights[static_cast<size_t>(i)] =
        network.FreeFlowSeconds(i) *
        static_cast<float>(rng->Uniform(1.0, 1.0 + noise));
  }
  return DijkstraPath(network, source, target, weights);
}

std::vector<int> HopDistances(const RoadNetwork& network, int source) {
  const int n = network.num_segments();
  std::vector<int> dist(static_cast<size_t>(n), -1);
  std::queue<int> queue;
  dist[static_cast<size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    int u = queue.front();
    queue.pop();
    for (int v : network.successors(u)) {
      if (dist[static_cast<size_t>(v)] == -1) {
        dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
        queue.push(v);
      }
    }
  }
  return dist;
}

}  // namespace bigcity::roadnet
