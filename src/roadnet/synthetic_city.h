#ifndef BIGCITY_ROADNET_SYNTHETIC_CITY_H_
#define BIGCITY_ROADNET_SYNTHETIC_CITY_H_

#include "roadnet/road_network.h"
#include "util/rng.h"

namespace bigcity::roadnet {

/// Configuration for the procedural city generator — the substitute for the
/// paper's OSM-extracted road networks. A grid of intersections is connected
/// by bidirectional streets (two directed segments each); a fraction of
/// blocks is removed for irregularity, arterials cross at fixed intervals,
/// and a ring highway surrounds the grid.
struct SyntheticCityConfig {
  int grid_width = 8;       // Intersections along x.
  int grid_height = 8;      // Intersections along y.
  float block_m = 250.0f;   // Block edge length in meters.
  double drop_street_prob = 0.12;  // Fraction of streets removed.
  int arterial_every = 3;   // Every k-th row/column is an arterial.
  uint64_t seed = 17;
};

/// Generates a road network per the config. Segment count is roughly
/// 2 * (2 * W * H) minus dropped streets.
RoadNetwork GenerateSyntheticCity(const SyntheticCityConfig& config);

}  // namespace bigcity::roadnet

#endif  // BIGCITY_ROADNET_SYNTHETIC_CITY_H_
