#ifndef BIGCITY_UTIL_IO_H_
#define BIGCITY_UTIL_IO_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"

namespace bigcity::util {

/// Binary little-endian serialization helpers for model checkpoints.
/// Format: each primitive is written raw; vectors are (uint64 size, data).

void WriteU64(std::ostream& out, uint64_t value);
void WriteI32(std::ostream& out, int32_t value);
void WriteFloat(std::ostream& out, float value);
void WriteFloatVector(std::ostream& out, const std::vector<float>& values);
/// Same wire format as WriteFloatVector for a raw (pointer, count) span —
/// lets callers serialize slices of a slab or allocator-customized vectors.
void WriteFloatSpan(std::ostream& out, const float* values, size_t count);
void WriteString(std::ostream& out, const std::string& value);

Status ReadU64(std::istream& in, uint64_t* value);
Status ReadI32(std::istream& in, int32_t* value);
Status ReadFloat(std::istream& in, float* value);
Status ReadFloatVector(std::istream& in, std::vector<float>* values);
Status ReadString(std::istream& in, std::string* value);

}  // namespace bigcity::util

#endif  // BIGCITY_UTIL_IO_H_
