#include "util/rng.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace bigcity::util {

int Rng::Categorical(const std::vector<double>& weights) {
  BIGCITY_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  BIGCITY_CHECK_GT(total, 0.0) << "Categorical needs a positive weight";
  double r = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    acc += weights[i];
    if (r < acc) return static_cast<int>(i);
  }
  // Floating-point edge: return the last positive-weight index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return static_cast<int>(i);
  }
  return 0;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), engine_);
  return perm;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  BIGCITY_CHECK_LE(k, n);
  std::vector<int> perm = Permutation(n);
  perm.resize(k);
  std::sort(perm.begin(), perm.end());
  return perm;
}

}  // namespace bigcity::util
