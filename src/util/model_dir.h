#ifndef BIGCITY_UTIL_MODEL_DIR_H_
#define BIGCITY_UTIL_MODEL_DIR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace bigcity::util {

/// Versioned model-directory publication protocol (DESIGN.md §4.12). A
/// model directory holds one subdirectory per published version plus an
/// atomically-updated pointer file naming the latest publication:
///
///   <dir>/
///     v000001/
///       weights.ckpt    CRC-checked checkpoint container (util/checkpoint)
///       manifest.ckpt   version, parent, config fingerprint, weight CRC
///     v000002/...
///     CURRENT           text file naming the current version dir
///
/// Publication order is weights → manifest → CURRENT, each step crash-safe
/// (write-temp → fsync → atomic rename → parent-directory fsync), so a
/// crash at any point leaves readers either on the previous version or on
/// the fully-materialized new one — never on a half-visible directory.
/// Readers treat the version named by CURRENT as the only candidate; a
/// version directory without a CURRENT pointer to it does not exist as far
/// as consumers are concerned.

/// Per-version metadata, stored as `manifest.ckpt` inside the version
/// directory (a util/checkpoint container, so corruption is detected by
/// the container CRC before any field is parsed).
struct VersionManifest {
  uint64_t version = 0;
  /// Version this one was derived from; -1 for an initial publication.
  int64_t parent_version = -1;
  /// Fingerprint of the model configuration the weights were produced
  /// under (core::ConfigFingerprint). Consumers refuse to load weights
  /// whose fingerprint does not match their own config.
  std::string config_fingerprint;
  /// Size and CRC-32 of the entire weights container file, so bit rot or
  /// torn weight files are detected without parsing the container.
  uint64_t weight_bytes = 0;
  uint32_t weight_crc = 0;
};

/// "v%06llu" — sortable, fixed-width version directory name.
std::string VersionDirName(uint64_t version);
/// Parses a VersionDirName; false for anything else (tmp files, CURRENT).
bool ParseVersionDirName(const std::string& name, uint64_t* version);

/// Canonical paths inside a model directory.
std::string VersionPath(const std::string& dir, uint64_t version);
std::string ManifestPath(const std::string& version_dir);
std::string WeightsPath(const std::string& version_dir);
/// Quarantine marker dropped next to a rejected version's manifest so a
/// restarted consumer does not re-validate a known-bad version.
std::string QuarantinePath(const std::string& version_dir);

/// mkdir -p equivalent returning Status (EEXIST is success).
Status EnsureDirectory(const std::string& path);

/// Opens `dir` and fsyncs it, making directory-entry mutations (renames,
/// creates) durable. Rename alone orders the entry but does not persist
/// it; every atomic-publish step must be followed by this.
Status SyncDir(const std::string& dir);

/// Writes `manifest.ckpt` into `version_dir` crash-safely.
Status WriteManifest(const std::string& version_dir,
                     const VersionManifest& manifest);
/// Reads and validates `manifest.ckpt` (container CRC + field parse).
Result<VersionManifest> ReadManifest(const std::string& version_dir);

/// CRC-32 and size of an arbitrary file's raw bytes (streamed).
Status FileCrc32(const std::string& path, uint32_t* crc, uint64_t* bytes);

/// Atomically points `<dir>/CURRENT` at `version`: write CURRENT.tmp,
/// fsync, rename over CURRENT, fsync the directory. Fault site
/// `modeldir.publish.torn_pointer` simulates a crash mid-update; the
/// destination pointer is guaranteed untouched in that case.
Status PublishCurrent(const std::string& dir, uint64_t version);

/// Version named by `<dir>/CURRENT`; kNotFound when no version has ever
/// been published (readers keep whatever they are serving).
Result<uint64_t> ReadCurrent(const std::string& dir);

/// Sorted list of version numbers with a version directory present
/// (published or not). Missing/unreadable dir yields an empty list.
std::vector<uint64_t> ListVersions(const std::string& dir);

}  // namespace bigcity::util

#endif  // BIGCITY_UTIL_MODEL_DIR_H_
