#ifndef BIGCITY_UTIL_RNG_H_
#define BIGCITY_UTIL_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

namespace bigcity::util {

/// Deterministic random number generator used everywhere in the project so
/// that datasets, initializations, and experiments are reproducible from a
/// single seed. Thin wrapper over std::mt19937_64 with the distributions the
/// codebase needs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int UniformInt(int lo, int hi) {
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Normal with the given mean and stddev.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights need not be normalized; non-positive weights get probability 0.
  int Categorical(const std::vector<double>& weights);

  /// Returns a random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// Samples k distinct indices from {0, ..., n-1} (k <= n), sorted.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Shuffles a vector in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    std::shuffle(values->begin(), values->end(), engine_);
  }

  /// Serializes the full engine state (standard textual form) so training
  /// runs can resume with bit-identical draw sequences.
  std::string SaveState() const {
    std::ostringstream out;
    out << engine_;
    return out.str();
  }

  /// Restores a state produced by SaveState; false on malformed input
  /// (the engine is left unspecified in that case).
  bool LoadState(const std::string& state) {
    std::istringstream in(state);
    in >> engine_;
    return !in.fail();
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bigcity::util

#endif  // BIGCITY_UTIL_RNG_H_
