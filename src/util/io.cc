#include "util/io.h"

#include <istream>
#include <ostream>

namespace bigcity::util {

namespace {
constexpr uint64_t kMaxVectorBytes = uint64_t{1} << 33;  // 8 GiB sanity cap.
}

void WriteU64(std::ostream& out, uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteI32(std::ostream& out, int32_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteFloat(std::ostream& out, float value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteFloatVector(std::ostream& out, const std::vector<float>& values) {
  WriteFloatSpan(out, values.data(), values.size());
}

void WriteFloatSpan(std::ostream& out, const float* values, size_t count) {
  WriteU64(out, count);
  out.write(reinterpret_cast<const char*>(values),
            static_cast<std::streamsize>(count * sizeof(float)));
}

void WriteString(std::ostream& out, const std::string& value) {
  WriteU64(out, value.size());
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
}

Status ReadU64(std::istream& in, uint64_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  if (!in) return Status::IoError("truncated stream reading u64");
  return Status::Ok();
}

Status ReadI32(std::istream& in, int32_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  if (!in) return Status::IoError("truncated stream reading i32");
  return Status::Ok();
}

Status ReadFloat(std::istream& in, float* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  if (!in) return Status::IoError("truncated stream reading float");
  return Status::Ok();
}

Status ReadFloatVector(std::istream& in, std::vector<float>* values) {
  uint64_t size = 0;
  if (Status s = ReadU64(in, &size); !s.ok()) return s;
  // Divide instead of multiplying: `size * sizeof(float)` wraps for
  // size > 2^62, letting absurd length prefixes through the cap.
  if (size > kMaxVectorBytes / sizeof(float)) {
    return Status::IoError("implausible vector size in stream");
  }
  values->resize(size);
  in.read(reinterpret_cast<char*>(values->data()),
          static_cast<std::streamsize>(size * sizeof(float)));
  if (!in) return Status::IoError("truncated stream reading float vector");
  return Status::Ok();
}

Status ReadString(std::istream& in, std::string* value) {
  uint64_t size = 0;
  if (Status s = ReadU64(in, &size); !s.ok()) return s;
  if (size > kMaxVectorBytes) {
    return Status::IoError("implausible string size in stream");
  }
  value->resize(size);
  in.read(value->data(), static_cast<std::streamsize>(size));
  if (!in) return Status::IoError("truncated stream reading string");
  return Status::Ok();
}

}  // namespace bigcity::util
