#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace bigcity::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : num_columns_(header.size()) {
  BIGCITY_CHECK_GT(num_columns_, 0u);
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  BIGCITY_CHECK_EQ(row.size(), num_columns_);
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(num_columns_, 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_separator = [&](std::ostringstream& out) {
    out << '+';
    for (size_t c = 0; c < num_columns_; ++c) {
      out << std::string(widths[c] + 2, '-') << '+';
    }
    out << '\n';
  };

  std::ostringstream out;
  render_separator(out);
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (rows_[r].empty()) {
      render_separator(out);
      continue;
    }
    out << '|';
    for (size_t c = 0; c < num_columns_; ++c) {
      const std::string& cell = rows_[r][c];
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
    if (r == 0) render_separator(out);  // Underline the header.
  }
  render_separator(out);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::Num(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace bigcity::util
