#ifndef BIGCITY_UTIL_FAULT_INJECTION_H_
#define BIGCITY_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <string>

namespace bigcity::util {

/// Deterministic fault injection for exercising recovery paths in tests.
///
/// Production code declares *sites* — named points where a fault may be
/// injected — by calling FaultInjection::Fire("site.name") and reacting
/// when it returns true. Tests arm a site with ScopedFault, optionally
/// skipping the first `skip` hits and firing on the following `count`
/// hits, plus one integer parameter (byte offsets, truncation lengths).
///
/// Thread safety: all operations are safe to call concurrently (the serve
/// runtime fires sites from several worker threads at once). With no armed
/// sites the Fire() check is a single relaxed atomic load, so the harness
/// costs nothing in normal runs; armed sites take a mutex so skip/count
/// accounting stays exact under concurrency. Arming is never enabled
/// implicitly.
class FaultInjection {
 public:
  /// Arms `site`: after `skip` hits, the next `count` hits fire.
  static void Arm(const std::string& site, int skip = 0, int count = 1,
                  int64_t param = 0);
  static void Disarm(const std::string& site);
  static void DisarmAll();

  /// Called by production code at the fault site. True means "inject the
  /// fault now" and consumes one firing.
  static bool Fire(const std::string& site);

  /// Parameter attached when the site was armed; 0 when unarmed.
  static int64_t Param(const std::string& site);

  /// Times `site` has fired since it was (re-)armed — lets tests assert a
  /// recovery path actually executed rather than being skipped.
  static int FireCount(const std::string& site);

  // --- Structured fault kinds ---------------------------------------------
  // stall(site, ms) and leak(site, bytes) generalize the two failure
  // shapes the serving supervisor must heal: a wedged thread and runaway
  // memory growth. Both are deterministic (duration/size come from the
  // armed Param, firing order from the arm skip/count accounting) and
  // thread-safe, so tests drive them instead of ad-hoc sleeps/allocs.

  /// Stall kind: when `site` fires, blocks the calling thread for Param()
  /// milliseconds, sleeping in 1 ms slices and releasing early if the site
  /// is disarmed mid-stall (so a test can un-wedge a parked thread).
  /// Returns true when a stall was injected.
  static bool MaybeStall(const std::string& site);

  /// Leak kind: when `site` fires, allocates Param() bytes into a retained
  /// process-global sink (touched so the pages are really committed) and
  /// returns the byte count; 0 when the site did not fire. The sink stays
  /// reachable until FreeLeaks(), so leak-site runs are LeakSanitizer
  /// clean by construction.
  static int64_t MaybeLeak(const std::string& site);

  /// Bytes currently held by the leak sink (all sites). Memory-pressure
  /// controllers add this to their sample so injected leaks register even
  /// in build flavors whose allocation probes compile out.
  static int64_t LeakedBytes();

  /// Releases every injected leak (recovery half of a pressure scenario).
  static void FreeLeaks();
};

/// RAII arming of one fault site for the enclosing scope.
class ScopedFault {
 public:
  explicit ScopedFault(std::string site, int skip = 0, int count = 1,
                       int64_t param = 0)
      : site_(std::move(site)) {
    FaultInjection::Arm(site_, skip, count, param);
  }
  ~ScopedFault() { FaultInjection::Disarm(site_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  int fire_count() const { return FaultInjection::FireCount(site_); }

 private:
  std::string site_;
};

// --- Site names used by production code ------------------------------------

/// CheckpointWriter::Commit: stop after writing Param() bytes of the temp
/// file (simulated crash mid-write; destination stays intact).
inline constexpr char kFaultCheckpointTornWrite[] =
    "checkpoint.commit.torn_write";
/// CheckpointWriter::Commit: flip one bit at payload offset Param() after
/// the CRC was computed (in-flight corruption).
inline constexpr char kFaultCheckpointBitFlip[] = "checkpoint.commit.bitflip";
/// Trainer step: poison the batch loss with NaN before the guard check.
inline constexpr char kFaultTrainerNanLoss[] = "trainer.step.nan_loss";
/// Trainer step: poison one parameter gradient with NaN after backward.
inline constexpr char kFaultTrainerNanGrad[] = "trainer.step.nan_grad";
/// Trainer epoch boundary (after the snapshot is written): abort the run,
/// simulating a kill between epochs.
inline constexpr char kFaultTrainerInterrupt[] = "trainer.epoch.interrupt";

// Serve-runtime sites (src/serve, DESIGN.md §4.11). The three deadline
// sites force the matching cancellation checkpoint to treat the request's
// deadline as already expired, so each early-exit path is testable without
// real clock races.
/// Serve worker: park after dequeuing a request until the site is
/// disarmed (worker occupancy control for queue-full shed tests).
inline constexpr char kFaultServeWorkerHold[] = "serve.worker.hold";
/// Pre-queue admission checkpoint reports deadline expiry.
inline constexpr char kFaultServeExpireAtAdmit[] = "serve.deadline.admit";
/// Pre-tokenize (post-dequeue) checkpoint reports deadline expiry.
inline constexpr char kFaultServeExpireAtTokenize[] =
    "serve.deadline.tokenize";
/// Pre-forward checkpoint reports deadline expiry.
inline constexpr char kFaultServeExpireAtForward[] = "serve.deadline.forward";
/// Tokenize stage: transient (retryable) failure.
inline constexpr char kFaultServeTokenizeFail[] = "serve.tokenize.fail";
/// Forward stage: transient (retryable) failure.
inline constexpr char kFaultServeForwardFail[] = "serve.forward.fail";
/// Replica checkpoint reload at server start: transient failure.
inline constexpr char kFaultServeReloadFail[] = "serve.reload.fail";
/// Serve worker, mid-request (pre-forward): wedge the worker thread for
/// Param() milliseconds via MaybeStall — the watchdog's hang scenario.
inline constexpr char kFaultServeWorkerStall[] = "serve.worker.stall";
/// Serve worker, per batch: leak Param() bytes into the retained sink via
/// MaybeLeak — the overload controller's memory-pressure scenario.
inline constexpr char kFaultServeWorkerLeak[] = "serve.worker.leak";

// Model-lifecycle sites (util/model_dir, src/serve rollout; DESIGN.md
// §4.12).
/// PublishCurrent: stop after writing Param() bytes of CURRENT.tmp and
/// before the rename (simulated crash mid-publish; the CURRENT pointer —
/// and therefore every reader — must be unaffected).
inline constexpr char kFaultPublishTornPointer[] =
    "modeldir.publish.torn_pointer";
/// Rollout staging: sleep Param() milliseconds while loading a candidate
/// version's weights (slow disk / huge checkpoint; serving must continue
/// on the stable version throughout).
inline constexpr char kFaultRolloutSlowLoad[] = "serve.rollout.slow_load";
/// Canary forward path: inflate the recorded forward latency of canary
/// requests by Param() microseconds, so the health gate's latency
/// comparison is testable without a genuinely slow model.
inline constexpr char kFaultRolloutCanaryLatency[] =
    "serve.rollout.canary_latency";

}  // namespace bigcity::util

#endif  // BIGCITY_UTIL_FAULT_INJECTION_H_
