#include "util/thread_pool.h"

#include <algorithm>
#include <memory>

#include "obs/obs.h"
#include "util/check.h"

namespace bigcity::util {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::RunChunks(std::unique_lock<std::mutex>& lock) {
  // Chunks are claimed under the lock and executed outside it. Claiming is
  // cheap relative to a chunk's work (kernels use coarse grains), and doing
  // it under mu_ means no job field is ever read while another thread
  // rewrites it: the job cannot advance until every chunk is accounted for.
  while (next_chunk_ < num_chunks_) {
    const int64_t chunk = next_chunk_++;
    const int64_t lo = job_begin_ + chunk * job_grain_;
    const int64_t hi = std::min(job_end_, lo + job_grain_);
    const auto* fn = job_fn_;
    lock.unlock();
    (*fn)(lo, hi);
    lock.lock();
    if (++chunks_done_ == num_chunks_) done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_job = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || job_id_ != seen_job; });
    if (shutdown_) return;
    seen_job = job_id_;
    // Queue wait: submit-to-wakeup latency of this worker for this job.
    // Only measured while tracing (job_post_us_ == 0 otherwise): two extra
    // clock reads per pooled job are visible at GEMM dispatch rates.
    if (job_post_us_ != 0) {
      BIGCITY_HISTOGRAM_RECORD(
          "threadpool.queue_wait_us",
          static_cast<double>(obs::TraceNowMicros() - job_post_us_));
    }
    RunChunks(lock);
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  BIGCITY_CHECK_GT(grain, 0);
  const int64_t span = end - begin;
  const int64_t chunks = (span + grain - 1) / grain;
  if (num_threads_ == 1 || chunks == 1) {
    // Inline path: identical chunk boundaries, ascending order.
    BIGCITY_COUNTER_INC("threadpool.jobs.inline");
    BIGCITY_COUNTER_ADD("threadpool.chunks", chunks);
    for (int64_t c = 0; c < chunks; ++c) {
      const int64_t lo = begin + c * grain;
      fn(lo, std::min(end, lo + grain));
    }
    return;
  }
  BIGCITY_COUNTER_INC("threadpool.jobs.pooled");
  BIGCITY_COUNTER_ADD("threadpool.chunks", chunks);
  // One pooled job at a time: concurrent callers queue here in arrival
  // order. The inline path above stays lock-free (it touches no shared
  // job state), so single-threaded pools never contend.
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  std::unique_lock<std::mutex> lock(mu_);
#if BIGCITY_OBS
  job_post_us_ = obs::TracingEnabled() ? obs::TraceNowMicros() : 0;
#endif
  job_fn_ = &fn;
  job_begin_ = begin;
  job_end_ = end;
  job_grain_ = grain;
  num_chunks_ = chunks;
  chunks_done_ = 0;
  next_chunk_ = 0;
  ++job_id_;
  work_cv_.notify_all();
  RunChunks(lock);
  done_cv_.wait(lock, [&] { return chunks_done_ == num_chunks_; });
  job_fn_ = nullptr;
}

namespace {

std::unique_ptr<ThreadPool>& PoolSlot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>(1);
  return pool;
}

}  // namespace

ThreadPool& GlobalThreadPool() { return *PoolSlot(); }

void SetGlobalThreadCount(int num_threads) {
  num_threads = std::max(1, num_threads);
  if (PoolSlot()->num_threads() == num_threads) return;
  PoolSlot() = std::make_unique<ThreadPool>(num_threads);
}

int GlobalThreadCount() { return PoolSlot()->num_threads(); }

}  // namespace bigcity::util
