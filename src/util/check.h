#ifndef BIGCITY_UTIL_CHECK_H_
#define BIGCITY_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// Invariant-checking macros in the style of glog/absl CHECK.
//
// These are used for programmer errors (violated preconditions, impossible
// states). They abort the process with a message; they are NOT for
// recoverable runtime errors — use util::Status for those.

namespace bigcity::util::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Builds the optional streamed message for a failed check.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace bigcity::util::internal

#define BIGCITY_CHECK(condition)                                       \
  while (!(condition))                                                 \
  ::bigcity::util::internal::CheckMessageBuilder(__FILE__, __LINE__,   \
                                                 #condition)

#define BIGCITY_CHECK_EQ(a, b) BIGCITY_CHECK((a) == (b))
#define BIGCITY_CHECK_NE(a, b) BIGCITY_CHECK((a) != (b))
#define BIGCITY_CHECK_LT(a, b) BIGCITY_CHECK((a) < (b))
#define BIGCITY_CHECK_LE(a, b) BIGCITY_CHECK((a) <= (b))
#define BIGCITY_CHECK_GT(a, b) BIGCITY_CHECK((a) > (b))
#define BIGCITY_CHECK_GE(a, b) BIGCITY_CHECK((a) >= (b))

#endif  // BIGCITY_UTIL_CHECK_H_
