#ifndef BIGCITY_UTIL_TABLE_PRINTER_H_
#define BIGCITY_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace bigcity::util {

/// Renders aligned ASCII tables for the benchmark harnesses so their output
/// mirrors the paper's tables. Cells are strings; numeric helpers format
/// with fixed precision.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal separator before the next added row.
  void AddSeparator();

  /// Renders the table (header, separators, rows) as a string.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

  /// Formats a double with the given number of decimals.
  static std::string Num(double value, int decimals = 3);

 private:
  size_t num_columns_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace bigcity::util

#endif  // BIGCITY_UTIL_TABLE_PRINTER_H_
