#ifndef BIGCITY_UTIL_STATUS_H_
#define BIGCITY_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace bigcity::util {

/// Error categories for recoverable failures (I/O, malformed inputs, ...).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
};

/// Lightweight absl-style status for fallible operations. Invariant errors
/// use BIGCITY_CHECK instead; Status is reserved for conditions a caller can
/// reasonably handle (missing file, bad header, ...).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kInternal: return "INTERNAL";
      case StatusCode::kIoError: return "IO_ERROR";
    }
    return "UNKNOWN";
  }

  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a (non-OK) Status keeps call
  /// sites terse, mirroring absl::StatusOr.
  Result(T value) : data_(std::move(value)) {}          // NOLINT
  Result(Status status) : data_(std::move(status)) {    // NOLINT
    BIGCITY_CHECK(!std::get<Status>(data_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  /// Value accessors abort on error — call ok() first for recoverable flows.
  const T& value() const& {
    BIGCITY_CHECK(ok()) << status().ToString();
    return std::get<T>(data_);
  }
  T& value() & {
    BIGCITY_CHECK(ok()) << status().ToString();
    return std::get<T>(data_);
  }
  T&& value() && {
    BIGCITY_CHECK(ok()) << status().ToString();
    return std::get<T>(std::move(data_));
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace bigcity::util

#endif  // BIGCITY_UTIL_STATUS_H_
