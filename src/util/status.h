#ifndef BIGCITY_UTIL_STATUS_H_
#define BIGCITY_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace bigcity::util {

/// Error categories for recoverable failures (I/O, malformed inputs, ...).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kDeadlineExceeded,
  kUnavailable,
  kResourceExhausted,
};

/// Lightweight absl-style status for fallible operations. Invariant errors
/// use BIGCITY_CHECK instead; Status is reserved for conditions a caller can
/// reasonably handle (missing file, bad header, ...).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  /// A request missed its deadline; partial work was abandoned.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// A transient failure: retrying the same operation may succeed.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// A bounded resource (queue slot, memory, stream) is exhausted; the
  /// caller should shed load or back off rather than wait.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kInternal: return "INTERNAL";
      case StatusCode::kIoError: return "IO_ERROR";
      case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
      case StatusCode::kUnavailable: return "UNAVAILABLE";
      case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    }
    return "UNKNOWN";
  }

  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a (non-OK) Status keeps call
  /// sites terse, mirroring absl::StatusOr.
  Result(T value) : data_(std::move(value)) {}          // NOLINT
  Result(Status status) : data_(std::move(status)) {    // NOLINT
    BIGCITY_CHECK(!std::get<Status>(data_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  /// Value accessors abort on error — call ok() first for recoverable flows.
  const T& value() const& {
    BIGCITY_CHECK(ok()) << status().ToString();
    return std::get<T>(data_);
  }
  T& value() & {
    BIGCITY_CHECK(ok()) << status().ToString();
    return std::get<T>(data_);
  }
  T&& value() && {
    BIGCITY_CHECK(ok()) << status().ToString();
    return std::get<T>(std::move(data_));
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace bigcity::util

#endif  // BIGCITY_UTIL_STATUS_H_
