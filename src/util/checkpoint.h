#ifndef BIGCITY_UTIL_CHECKPOINT_H_
#define BIGCITY_UTIL_CHECKPOINT_H_

#include <cstdint>
#include <sstream>
#include <string>

#include "util/status.h"

namespace bigcity::util {

/// Versioned, integrity-checked checkpoint container used for every
/// on-disk model / training-state file. Layout:
///
///   [magic "BGCK" : 4 bytes]
///   [format version : u32 LE]
///   [payload size   : u64 LE]
///   [payload CRC-32 : u32 LE]
///   [payload bytes]
///
/// Writes are crash-safe: the full container goes to `<path>.tmp`, is
/// fsync'd, renamed over `path`, and the parent directory is then fsync'd
/// (a rename alone does not make the new directory entry durable), so a
/// crash at any point leaves either the old file or the new one — never a
/// torn mix and never a silently-vanishing commit. Readers validate
/// magic, version, size, and CRC before handing out a single payload byte,
/// so truncation and bit rot surface as descriptive Status errors instead
/// of garbage loads.

inline constexpr char kCheckpointMagic[4] = {'B', 'G', 'C', 'K'};
inline constexpr uint32_t kCheckpointFormatVersion = 1;

/// CRC-32 (IEEE, reflected polynomial 0xEDB88320). `seed` chains partial
/// computations: pass the previous return value to continue a running CRC.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// Buffers a checkpoint payload in memory, then commits it atomically.
/// Usage: serialize into stream() with the util/io.h helpers, then Commit().
class CheckpointWriter {
 public:
  CheckpointWriter() : payload_(std::ios::binary) {}

  std::ostream& stream() { return payload_; }

  /// Finalizes the container (header + CRC) and atomically replaces `path`.
  /// On any error the destination is left untouched (a stale `<path>.tmp`
  /// may remain and is overwritten by the next commit).
  Status Commit(const std::string& path);

 private:
  std::ostringstream payload_;
};

/// Opens and fully validates a checkpoint container; the payload is then
/// readable through stream() with the util/io.h helpers.
class CheckpointReader {
 public:
  /// Reads `path`, checking magic, format version, payload size, and CRC.
  /// Any mismatch yields a non-OK Status naming the failure and the file.
  Status Open(const std::string& path);

  std::istream& stream() { return payload_; }
  uint32_t format_version() const { return format_version_; }

 private:
  std::istringstream payload_{std::ios::binary};
  uint32_t format_version_ = 0;
};

}  // namespace bigcity::util

#endif  // BIGCITY_UTIL_CHECKPOINT_H_
