#ifndef BIGCITY_UTIL_LOGGING_H_
#define BIGCITY_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace bigcity::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted; defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and writes it to stderr on destruction if its
/// level passes the global threshold.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace bigcity::util

#define BIGCITY_LOG(level)                             \
  ::bigcity::util::internal::LogMessage(               \
      ::bigcity::util::LogLevel::k##level, __FILE__, __LINE__)

#endif  // BIGCITY_UTIL_LOGGING_H_
