#ifndef BIGCITY_UTIL_THREAD_POOL_H_
#define BIGCITY_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bigcity::util {

/// Small persistent thread pool for data-parallel loops.
///
/// Determinism contract: ParallelFor splits [begin, end) into fixed-size
/// chunks of `grain` iterations. Chunk boundaries depend only on
/// (begin, end, grain) — never on the thread count or on which thread picks
/// up which chunk. As long as the body writes a disjoint output region per
/// chunk and is itself deterministic, results are bit-identical for any
/// number of threads (including 1, where everything runs inline on the
/// calling thread).
class ThreadPool {
 public:
  /// Spawns num_threads - 1 workers; the calling thread participates in
  /// every ParallelFor, so num_threads == 1 spawns nothing.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(chunk_begin, chunk_end) for every grain-sized chunk of
  /// [begin, end). Blocks until all chunks finish. Not reentrant: fn must
  /// not call ParallelFor on the same pool. Safe to call from multiple
  /// threads concurrently: callers serialize on a submit mutex, so jobs
  /// run one at a time in caller-arrival order (the serve runtime's
  /// worker threads all forward through the one global pool).
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

 private:
  void WorkerLoop();
  /// Claims (under `lock`) and runs (outside it) chunks of the current job
  /// until none remain, bumping chunks_done_ per completed chunk.
  void RunChunks(std::unique_lock<std::mutex>& lock);

  const int num_threads_;
  std::vector<std::thread> workers_;

  /// Serializes concurrent ParallelFor callers: the job fields below
  /// describe exactly one in-flight job, so a second caller must wait for
  /// the first to drain before posting. Held across the whole pooled
  /// submission; never touched by pool workers (no deadlock).
  std::mutex submit_mu_;

  std::mutex mu_;  // Guards every field below.
  std::condition_variable work_cv_;  // Signals a new job (or shutdown).
  std::condition_variable done_cv_;  // Signals job completion to the caller.
  bool shutdown_ = false;

  uint64_t job_id_ = 0;
  uint64_t job_post_us_ = 0;  // Trace-clock submit time (obs queue-wait).
  const std::function<void(int64_t, int64_t)>* job_fn_ = nullptr;
  int64_t job_begin_ = 0;
  int64_t job_end_ = 0;
  int64_t job_grain_ = 1;
  int64_t num_chunks_ = 0;
  int64_t next_chunk_ = 0;
  int64_t chunks_done_ = 0;
};

/// Process-wide pool used by the nn kernel layer. Starts at 1 thread.
ThreadPool& GlobalThreadPool();

/// Replaces the global pool with one of `num_threads` (clamped to >= 1).
/// Must not race with in-flight ParallelFor calls.
void SetGlobalThreadCount(int num_threads);

/// Thread count of the global pool.
int GlobalThreadCount();

}  // namespace bigcity::util

#endif  // BIGCITY_UTIL_THREAD_POOL_H_
