#include "util/model_dir.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/checkpoint.h"
#include "util/fault_injection.h"
#include "util/io.h"

namespace bigcity::util {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

Status WriteAllFd(int fd, const char* data, size_t size,
                  const std::string& path) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("write failed for", path));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

std::string VersionDirName(uint64_t version) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "v%06llu",
                static_cast<unsigned long long>(version));
  return buffer;
}

bool ParseVersionDirName(const std::string& name, uint64_t* version) {
  if (name.size() < 2 || name[0] != 'v') return false;
  uint64_t value = 0;
  for (size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *version = value;
  return true;
}

std::string VersionPath(const std::string& dir, uint64_t version) {
  return dir + "/" + VersionDirName(version);
}

std::string ManifestPath(const std::string& version_dir) {
  return version_dir + "/manifest.ckpt";
}

std::string WeightsPath(const std::string& version_dir) {
  return version_dir + "/weights.ckpt";
}

std::string QuarantinePath(const std::string& version_dir) {
  return version_dir + "/QUARANTINED";
}

Status EnsureDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::Ok();
  }
  return Status::IoError(ErrnoMessage("cannot create directory", path));
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open directory", dir));
  }
  if (::fsync(fd) != 0) {
    const Status s = Status::IoError(ErrnoMessage("fsync failed for", dir));
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::Ok();
}

Status WriteManifest(const std::string& version_dir,
                     const VersionManifest& manifest) {
  CheckpointWriter writer;
  WriteU64(writer.stream(), manifest.version);
  // parent_version is biased by one so -1 (no parent) stores as 0.
  WriteU64(writer.stream(),
           static_cast<uint64_t>(manifest.parent_version + 1));
  WriteString(writer.stream(), manifest.config_fingerprint);
  WriteU64(writer.stream(), manifest.weight_bytes);
  WriteU64(writer.stream(), manifest.weight_crc);
  return writer.Commit(ManifestPath(version_dir));
}

Result<VersionManifest> ReadManifest(const std::string& version_dir) {
  CheckpointReader reader;
  if (auto s = reader.Open(ManifestPath(version_dir)); !s.ok()) return s;
  VersionManifest manifest;
  uint64_t parent_biased = 0;
  uint64_t crc = 0;
  if (auto s = ReadU64(reader.stream(), &manifest.version); !s.ok()) return s;
  if (auto s = ReadU64(reader.stream(), &parent_biased); !s.ok()) return s;
  if (auto s = ReadString(reader.stream(), &manifest.config_fingerprint);
      !s.ok()) {
    return s;
  }
  if (auto s = ReadU64(reader.stream(), &manifest.weight_bytes); !s.ok()) {
    return s;
  }
  if (auto s = ReadU64(reader.stream(), &crc); !s.ok()) return s;
  manifest.parent_version = static_cast<int64_t>(parent_biased) - 1;
  manifest.weight_crc = static_cast<uint32_t>(crc);
  return manifest;
}

Status FileCrc32(const std::string& path, uint32_t* crc, uint64_t* bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for CRC: " + path);
  char buffer[1 << 16];
  uint32_t running = 0;
  uint64_t total = 0;
  while (in) {
    in.read(buffer, sizeof(buffer));
    const std::streamsize n = in.gcount();
    if (n <= 0) break;
    running = Crc32(buffer, static_cast<size_t>(n), running);
    total += static_cast<uint64_t>(n);
  }
  if (in.bad()) return Status::IoError("read failed during CRC: " + path);
  *crc = running;
  if (bytes != nullptr) *bytes = total;
  return Status::Ok();
}

Status PublishCurrent(const std::string& dir, uint64_t version) {
  const std::string contents = VersionDirName(version) + "\n";
  const std::string current = dir + "/CURRENT";
  const std::string tmp = current + ".tmp";

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("cannot open", tmp));

  // Fault site: the process dies after writing Param() bytes of the temp
  // pointer, before the rename. CURRENT must remain exactly as it was —
  // the torn publish is invisible to every reader.
  if (FaultInjection::Fire(kFaultPublishTornPointer)) {
    const auto keep =
        static_cast<size_t>(FaultInjection::Param(kFaultPublishTornPointer));
    Status torn = WriteAllFd(fd, contents.data(),
                             std::min(keep, contents.size()), tmp);
    ::close(fd);
    if (!torn.ok()) return torn;
    return Status::IoError("CURRENT pointer write interrupted (fault "
                           "injection): " +
                           tmp);
  }

  if (Status s = WriteAllFd(fd, contents.data(), contents.size(), tmp);
      !s.ok()) {
    ::close(fd);
    return s;
  }
  if (::fsync(fd) != 0) {
    const Status s = Status::IoError(ErrnoMessage("fsync failed for", tmp));
    ::close(fd);
    return s;
  }
  if (::close(fd) != 0) {
    return Status::IoError(ErrnoMessage("close failed for", tmp));
  }
  if (std::rename(tmp.c_str(), current.c_str()) != 0) {
    return Status::IoError(ErrnoMessage("rename failed for", current));
  }
  // The rename ordered the directory entry but did not persist it; a crash
  // before this fsync could resurrect the old pointer. That is safe (old
  // version stays fully intact) but the publish would silently vanish, so
  // the protocol requires the directory fsync to report success.
  return SyncDir(dir);
}

Result<uint64_t> ReadCurrent(const std::string& dir) {
  std::ifstream in(dir + "/CURRENT");
  if (!in) return Status::NotFound("no CURRENT pointer in " + dir);
  std::string name;
  in >> name;
  uint64_t version = 0;
  if (!ParseVersionDirName(name, &version)) {
    return Status::InvalidArgument("corrupt CURRENT pointer in " + dir +
                                   ": \"" + name + "\"");
  }
  return version;
}

std::vector<uint64_t> ListVersions(const std::string& dir) {
  std::vector<uint64_t> versions;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return versions;
  while (struct dirent* entry = ::readdir(d)) {
    uint64_t version = 0;
    if (ParseVersionDirName(entry->d_name, &version)) {
      versions.push_back(version);
    }
  }
  ::closedir(d);
  std::sort(versions.begin(), versions.end());
  return versions;
}

}  // namespace bigcity::util
