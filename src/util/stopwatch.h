#ifndef BIGCITY_UTIL_STOPWATCH_H_
#define BIGCITY_UTIL_STOPWATCH_H_

#include <chrono>

namespace bigcity::util {

/// Wall-clock stopwatch used by the efficiency experiments (Table IX,
/// Fig. 6). Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bigcity::util

#endif  // BIGCITY_UTIL_STOPWATCH_H_
