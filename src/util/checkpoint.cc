#include "util/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/fault_injection.h"
#include "util/model_dir.h"

namespace bigcity::util {

namespace {

constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4;  // magic, version, size, crc.
// A container larger than this is certainly corrupt, not a real checkpoint.
constexpr uint64_t kMaxPayloadBytes = uint64_t{1} << 40;

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

void AppendU32(std::string* out, uint32_t value) {
  char bytes[4];
  std::memcpy(bytes, &value, sizeof(value));
  out->append(bytes, sizeof(bytes));
}

void AppendU64(std::string* out, uint64_t value) {
  char bytes[8];
  std::memcpy(bytes, &value, sizeof(value));
  out->append(bytes, sizeof(bytes));
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// Writes the whole buffer to fd, retrying on partial writes / EINTR.
Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("write failed for", path));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t crc = ~seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

Status CheckpointWriter::Commit(const std::string& path) {
  const std::string payload = payload_.str();
  if (!payload_.good()) {
    // A failed stringstream almost always means allocation exhaustion.
    return Status::ResourceExhausted(
        "checkpoint payload stream in failed state");
  }

  std::string blob;
  blob.reserve(kHeaderBytes + payload.size());
  blob.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  AppendU32(&blob, kCheckpointFormatVersion);
  AppendU64(&blob, payload.size());
  AppendU32(&blob, Crc32(payload.data(), payload.size()));
  blob += payload;

  // Fault site: flip one payload bit after the CRC was computed, modelling
  // in-flight corruption that the reader's CRC check must catch.
  if (FaultInjection::Fire(kFaultCheckpointBitFlip)) {
    const auto offset = static_cast<size_t>(
        FaultInjection::Param(kFaultCheckpointBitFlip));
    if (kHeaderBytes + offset < blob.size()) {
      blob[kHeaderBytes + offset] ^= 0x01;
    }
  }

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("cannot open", tmp));

  // Fault site: simulate the process dying after a partial write of the
  // temp file. The destination must remain untouched and loadable.
  if (FaultInjection::Fire(kFaultCheckpointTornWrite)) {
    const auto keep = static_cast<size_t>(
        FaultInjection::Param(kFaultCheckpointTornWrite));
    Status torn = WriteAll(fd, blob.data(), std::min(keep, blob.size()), tmp);
    ::close(fd);
    if (!torn.ok()) return torn;
    return Status::IoError("checkpoint write interrupted (fault injection): " +
                           tmp);
  }

  if (Status s = WriteAll(fd, blob.data(), blob.size(), tmp); !s.ok()) {
    ::close(fd);
    return s;
  }
  if (::fsync(fd) != 0) {
    const Status s = Status::IoError(ErrnoMessage("fsync failed for", tmp));
    ::close(fd);
    return s;
  }
  if (::close(fd) != 0) {
    return Status::IoError(ErrnoMessage("close failed for", tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError(ErrnoMessage("rename failed for", path));
  }
  // The rename alone does not make the new directory entry durable: a
  // crash after rename but before the directory's own fsync can surface
  // the *old* entry on recovery. Commit therefore only reports success
  // once the parent directory is synced.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  return SyncDir(dir);
}

Status CheckpointReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open checkpoint: " + path);

  char magic[sizeof(kCheckpointMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(
        "not a BIGCity checkpoint (bad magic): " + path);
  }
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint32_t expected_crc = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&payload_size), sizeof(payload_size));
  in.read(reinterpret_cast<char*>(&expected_crc), sizeof(expected_crc));
  if (!in) {
    return Status::IoError("truncated checkpoint header: " + path);
  }
  if (version == 0 || version > kCheckpointFormatVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint format version " + std::to_string(version) +
        " (expected 1.." + std::to_string(kCheckpointFormatVersion) +
        "): " + path);
  }
  if (payload_size > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "implausible checkpoint payload size (corrupt header): " + path);
  }

  std::string payload(payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_size));
  if (static_cast<uint64_t>(in.gcount()) != payload_size) {
    return Status::IoError(
        "truncated checkpoint payload (" + std::to_string(in.gcount()) +
        " of " + std::to_string(payload_size) + " bytes): " + path);
  }
  if (in.peek() != std::char_traits<char>::eof()) {
    return Status::InvalidArgument(
        "trailing bytes after checkpoint payload: " + path);
  }
  const uint32_t actual_crc = Crc32(payload.data(), payload.size());
  if (actual_crc != expected_crc) {
    return Status::IoError("checkpoint CRC mismatch (corrupted payload): " +
                           path);
  }
  format_version_ = version;
  payload_.str(std::move(payload));
  return Status::Ok();
}

}  // namespace bigcity::util
