#include "util/fault_injection.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bigcity::util {

namespace {

struct SiteState {
  int skip = 0;       // Hits to ignore before firing.
  int remaining = 0;  // Firings left.
  int fired = 0;      // Firings consumed since arming.
  int64_t param = 0;
};

std::mutex& Mu() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, SiteState>& Sites() {
  static std::map<std::string, SiteState> sites;
  return sites;
}

/// Number of armed sites. Fire()'s unarmed fast path is one relaxed load
/// of this counter — no lock, no map lookup — so production code pays
/// nothing when the harness is idle.
std::atomic<int> g_armed{0};

/// Retained allocations of the leak kind. Function-local static (never
/// destroyed before exit handlers) and always reachable, so LeakSanitizer
/// has nothing to report even when a test forgets FreeLeaks().
struct LeakSink {
  std::mutex mu;
  std::vector<std::unique_ptr<char[]>> blocks;
};

LeakSink& Leaks() {
  static LeakSink* sink = new LeakSink();
  return *sink;
}

/// Separate relaxed tally so pressure samplers never take the sink mutex.
std::atomic<int64_t> g_leaked_bytes{0};

}  // namespace

void FaultInjection::Arm(const std::string& site, int skip, int count,
                         int64_t param) {
  std::lock_guard<std::mutex> lock(Mu());
  Sites()[site] = SiteState{skip, count, 0, param};
  g_armed.store(static_cast<int>(Sites().size()), std::memory_order_relaxed);
}

void FaultInjection::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mu());
  Sites().erase(site);
  g_armed.store(static_cast<int>(Sites().size()), std::memory_order_relaxed);
}

void FaultInjection::DisarmAll() {
  std::lock_guard<std::mutex> lock(Mu());
  Sites().clear();
  g_armed.store(0, std::memory_order_relaxed);
}

bool FaultInjection::Fire(const std::string& site) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(Mu());
  auto& sites = Sites();
  auto it = sites.find(site);
  if (it == sites.end()) return false;
  SiteState& state = it->second;
  if (state.skip > 0) {
    --state.skip;
    return false;
  }
  if (state.remaining <= 0) return false;
  --state.remaining;
  ++state.fired;
  return true;
}

int64_t FaultInjection::Param(const std::string& site) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return 0;
  std::lock_guard<std::mutex> lock(Mu());
  auto it = Sites().find(site);
  return it == Sites().end() ? 0 : it->second.param;
}

int FaultInjection::FireCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mu());
  auto it = Sites().find(site);
  return it == Sites().end() ? 0 : it->second.fired;
}

bool FaultInjection::MaybeStall(const std::string& site) {
  if (!Fire(site)) return false;
  const int64_t stall_ms = Param(site);
  const auto start = std::chrono::steady_clock::now();
  // 1 ms slices, re-reading Param so Disarm releases a wedged thread
  // without waiting out the full stall.
  while (std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
             .count() < static_cast<double>(stall_ms)) {
    if (Param(site) == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

int64_t FaultInjection::MaybeLeak(const std::string& site) {
  if (!Fire(site)) return 0;
  const int64_t bytes = Param(site);
  if (bytes <= 0) return 0;
  auto block = std::make_unique<char[]>(static_cast<size_t>(bytes));
  // Touch every page so the leak shows up as real resident memory, not
  // just reserved address space.
  std::memset(block.get(), 0xAB, static_cast<size_t>(bytes));
  {
    std::lock_guard<std::mutex> lock(Leaks().mu);
    Leaks().blocks.push_back(std::move(block));
  }
  g_leaked_bytes.fetch_add(bytes, std::memory_order_relaxed);
  return bytes;
}

int64_t FaultInjection::LeakedBytes() {
  return g_leaked_bytes.load(std::memory_order_relaxed);
}

void FaultInjection::FreeLeaks() {
  std::lock_guard<std::mutex> lock(Leaks().mu);
  Leaks().blocks.clear();
  g_leaked_bytes.store(0, std::memory_order_relaxed);
}

}  // namespace bigcity::util
