#include "util/fault_injection.h"

#include <atomic>
#include <map>
#include <mutex>

namespace bigcity::util {

namespace {

struct SiteState {
  int skip = 0;       // Hits to ignore before firing.
  int remaining = 0;  // Firings left.
  int fired = 0;      // Firings consumed since arming.
  int64_t param = 0;
};

std::mutex& Mu() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, SiteState>& Sites() {
  static std::map<std::string, SiteState> sites;
  return sites;
}

/// Number of armed sites. Fire()'s unarmed fast path is one relaxed load
/// of this counter — no lock, no map lookup — so production code pays
/// nothing when the harness is idle.
std::atomic<int> g_armed{0};

}  // namespace

void FaultInjection::Arm(const std::string& site, int skip, int count,
                         int64_t param) {
  std::lock_guard<std::mutex> lock(Mu());
  Sites()[site] = SiteState{skip, count, 0, param};
  g_armed.store(static_cast<int>(Sites().size()), std::memory_order_relaxed);
}

void FaultInjection::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mu());
  Sites().erase(site);
  g_armed.store(static_cast<int>(Sites().size()), std::memory_order_relaxed);
}

void FaultInjection::DisarmAll() {
  std::lock_guard<std::mutex> lock(Mu());
  Sites().clear();
  g_armed.store(0, std::memory_order_relaxed);
}

bool FaultInjection::Fire(const std::string& site) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(Mu());
  auto& sites = Sites();
  auto it = sites.find(site);
  if (it == sites.end()) return false;
  SiteState& state = it->second;
  if (state.skip > 0) {
    --state.skip;
    return false;
  }
  if (state.remaining <= 0) return false;
  --state.remaining;
  ++state.fired;
  return true;
}

int64_t FaultInjection::Param(const std::string& site) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return 0;
  std::lock_guard<std::mutex> lock(Mu());
  auto it = Sites().find(site);
  return it == Sites().end() ? 0 : it->second.param;
}

int FaultInjection::FireCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mu());
  auto it = Sites().find(site);
  return it == Sites().end() ? 0 : it->second.fired;
}

}  // namespace bigcity::util
