#include "util/fault_injection.h"

#include <map>

namespace bigcity::util {

namespace {

struct SiteState {
  int skip = 0;       // Hits to ignore before firing.
  int remaining = 0;  // Firings left.
  int fired = 0;      // Firings consumed since arming.
  int64_t param = 0;
};

std::map<std::string, SiteState>& Sites() {
  static std::map<std::string, SiteState> sites;
  return sites;
}

}  // namespace

void FaultInjection::Arm(const std::string& site, int skip, int count,
                         int64_t param) {
  Sites()[site] = SiteState{skip, count, 0, param};
}

void FaultInjection::Disarm(const std::string& site) { Sites().erase(site); }

void FaultInjection::DisarmAll() { Sites().clear(); }

bool FaultInjection::Fire(const std::string& site) {
  auto& sites = Sites();
  if (sites.empty()) return false;
  auto it = sites.find(site);
  if (it == sites.end()) return false;
  SiteState& state = it->second;
  if (state.skip > 0) {
    --state.skip;
    return false;
  }
  if (state.remaining <= 0) return false;
  --state.remaining;
  ++state.fired;
  return true;
}

int64_t FaultInjection::Param(const std::string& site) {
  auto it = Sites().find(site);
  return it == Sites().end() ? 0 : it->second.param;
}

int FaultInjection::FireCount(const std::string& site) {
  auto it = Sites().find(site);
  return it == Sites().end() ? 0 : it->second.fired;
}

}  // namespace bigcity::util
