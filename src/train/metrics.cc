#include "train/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bigcity::train {

namespace {
void CheckSameSize(size_t a, size_t b) {
  BIGCITY_CHECK_EQ(a, b);
  BIGCITY_CHECK_GT(a, 0u);
}

/// 1-based rank of target in a ranking, or 0 if absent.
int RankOf(const std::vector<int>& ranked, int target, int k) {
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  for (int r = 0; r < limit; ++r) {
    if (ranked[static_cast<size_t>(r)] == target) return r + 1;
  }
  return 0;
}
}  // namespace

double MeanAbsoluteError(const std::vector<double>& predictions,
                         const std::vector<double>& targets) {
  CheckSameSize(predictions.size(), targets.size());
  double total = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    total += std::fabs(predictions[i] - targets[i]);
  }
  return total / static_cast<double>(predictions.size());
}

double RootMeanSquaredError(const std::vector<double>& predictions,
                            const std::vector<double>& targets) {
  CheckSameSize(predictions.size(), targets.size());
  double total = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double d = predictions[i] - targets[i];
    total += d * d;
  }
  return std::sqrt(total / static_cast<double>(predictions.size()));
}

double MeanAbsolutePercentageError(const std::vector<double>& predictions,
                                   const std::vector<double>& targets,
                                   double epsilon) {
  CheckSameSize(predictions.size(), targets.size());
  double total = 0;
  int counted = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (std::fabs(targets[i]) < epsilon) continue;
    total += std::fabs((predictions[i] - targets[i]) / targets[i]);
    ++counted;
  }
  return counted == 0 ? 0.0 : 100.0 * total / counted;
}

double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& targets) {
  CheckSameSize(predictions.size(), targets.size());
  int correct = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    correct += predictions[i] == targets[i] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(targets.size());
}

double MrrAtK(const std::vector<std::vector<int>>& ranked,
              const std::vector<int>& targets, int k) {
  CheckSameSize(ranked.size(), targets.size());
  double total = 0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    const int rank = RankOf(ranked[i], targets[i], k);
    if (rank > 0) total += 1.0 / rank;
  }
  return total / static_cast<double>(targets.size());
}

double NdcgAtK(const std::vector<std::vector<int>>& ranked,
               const std::vector<int>& targets, int k) {
  CheckSameSize(ranked.size(), targets.size());
  double total = 0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    const int rank = RankOf(ranked[i], targets[i], k);
    if (rank > 0) total += 1.0 / std::log2(rank + 1.0);
  }
  return total / static_cast<double>(targets.size());
}

double HitRateAtK(const std::vector<std::vector<int>>& ranked,
                  const std::vector<int>& targets, int k) {
  CheckSameSize(ranked.size(), targets.size());
  int hits = 0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    hits += RankOf(ranked[i], targets[i], k) > 0 ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(targets.size());
}

double MeanRank(const std::vector<std::vector<int>>& ranked,
                const std::vector<int>& targets) {
  CheckSameSize(ranked.size(), targets.size());
  double total = 0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    const int rank = RankOf(ranked[i], targets[i],
                            static_cast<int>(ranked[i].size()));
    total += rank > 0 ? rank : static_cast<int>(ranked[i].size()) + 1;
  }
  return total / static_cast<double>(targets.size());
}

double BinaryF1(const std::vector<int>& predictions,
                const std::vector<int>& targets) {
  CheckSameSize(predictions.size(), targets.size());
  int tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == 1 && targets[i] == 1) ++tp;
    if (predictions[i] == 1 && targets[i] == 0) ++fp;
    if (predictions[i] == 0 && targets[i] == 1) ++fn;
  }
  if (tp == 0) return 0.0;
  const double precision = static_cast<double>(tp) / (tp + fp);
  const double recall = static_cast<double>(tp) / (tp + fn);
  return 2.0 * precision * recall / (precision + recall);
}

double BinaryAuc(const std::vector<double>& scores,
                 const std::vector<int>& targets) {
  CheckSameSize(scores.size(), targets.size());
  // Mann-Whitney U statistic with midrank tie handling.
  std::vector<size_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<double> rank(scores.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double mid = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t t = i; t <= j; ++t) rank[order[t]] = mid;
    i = j + 1;
  }
  double rank_sum_pos = 0;
  int num_pos = 0, num_neg = 0;
  for (size_t s = 0; s < scores.size(); ++s) {
    if (targets[s] == 1) {
      rank_sum_pos += rank[s];
      ++num_pos;
    } else {
      ++num_neg;
    }
  }
  if (num_pos == 0 || num_neg == 0) return 0.5;
  const double u = rank_sum_pos - num_pos * (num_pos + 1.0) / 2.0;
  return u / (static_cast<double>(num_pos) * num_neg);
}

namespace {
struct ClassCounts {
  std::vector<int> tp, fp, fn;
};

ClassCounts CountPerClass(const std::vector<int>& predictions,
                          const std::vector<int>& targets, int num_classes) {
  ClassCounts counts;
  counts.tp.assign(static_cast<size_t>(num_classes), 0);
  counts.fp.assign(static_cast<size_t>(num_classes), 0);
  counts.fn.assign(static_cast<size_t>(num_classes), 0);
  for (size_t i = 0; i < predictions.size(); ++i) {
    BIGCITY_CHECK(targets[i] >= 0 && targets[i] < num_classes);
    if (predictions[i] == targets[i]) {
      ++counts.tp[static_cast<size_t>(targets[i])];
    } else {
      if (predictions[i] >= 0 && predictions[i] < num_classes) {
        ++counts.fp[static_cast<size_t>(predictions[i])];
      }
      ++counts.fn[static_cast<size_t>(targets[i])];
    }
  }
  return counts;
}
}  // namespace

double MicroF1(const std::vector<int>& predictions,
               const std::vector<int>& targets, int num_classes) {
  CheckSameSize(predictions.size(), targets.size());
  ClassCounts counts = CountPerClass(predictions, targets, num_classes);
  long tp = 0, fp = 0, fn = 0;
  for (int c = 0; c < num_classes; ++c) {
    tp += counts.tp[static_cast<size_t>(c)];
    fp += counts.fp[static_cast<size_t>(c)];
    fn += counts.fn[static_cast<size_t>(c)];
  }
  if (tp == 0) return 0.0;
  const double precision = static_cast<double>(tp) / (tp + fp);
  const double recall = static_cast<double>(tp) / (tp + fn);
  return 2.0 * precision * recall / (precision + recall);
}

double MacroF1(const std::vector<int>& predictions,
               const std::vector<int>& targets, int num_classes) {
  CheckSameSize(predictions.size(), targets.size());
  ClassCounts counts = CountPerClass(predictions, targets, num_classes);
  double total = 0;
  int present = 0;
  for (int c = 0; c < num_classes; ++c) {
    const int tp = counts.tp[static_cast<size_t>(c)];
    const int fp = counts.fp[static_cast<size_t>(c)];
    const int fn = counts.fn[static_cast<size_t>(c)];
    if (tp + fn == 0) continue;  // Class absent from targets.
    ++present;
    if (tp == 0) continue;
    const double precision = static_cast<double>(tp) / (tp + fp);
    const double recall = static_cast<double>(tp) / (tp + fn);
    total += 2.0 * precision * recall / (precision + recall);
  }
  return present == 0 ? 0.0 : total / present;
}

double MacroRecall(const std::vector<int>& predictions,
                   const std::vector<int>& targets, int num_classes) {
  CheckSameSize(predictions.size(), targets.size());
  ClassCounts counts = CountPerClass(predictions, targets, num_classes);
  double total = 0;
  int present = 0;
  for (int c = 0; c < num_classes; ++c) {
    const int tp = counts.tp[static_cast<size_t>(c)];
    const int fn = counts.fn[static_cast<size_t>(c)];
    if (tp + fn == 0) continue;
    ++present;
    total += static_cast<double>(tp) / (tp + fn);
  }
  return present == 0 ? 0.0 : total / present;
}

}  // namespace bigcity::train
