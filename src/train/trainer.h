#ifndef BIGCITY_TRAIN_TRAINER_H_
#define BIGCITY_TRAIN_TRAINER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/bigcity_model.h"
#include "core/task.h"
#include "nn/optim.h"
#include "nn/plan.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "util/rng.h"
#include "util/status.h"

namespace bigcity::train {

/// Training-schedule configuration for the two-stage strategy (Sec. VI)
/// plus the in-repo backbone pre-training (the GPT-2 substitute).
struct TrainConfig {
  int pretrain_lm_epochs = 8;
  int stage1_epochs = 2;
  int stage2_epochs = 3;
  int batch_size = 8;
  float lr_pretrain = 3e-3f;
  float lr_stage1 = 2e-3f;
  float lr_stage2 = 2e-3f;
  float clip_norm = 5.0f;
  /// Mixed trajectory + traffic sequences per stage-1 epoch.
  int max_stage1_sequences = 300;
  /// Prompt-tuning samples per task per stage-2 epoch.
  int max_task_samples = 150;
  double stage1_mask_fraction = 0.2;
  double recovery_train_mask = 0.5;
  double imputation_mask = 0.25;
  /// Tasks included in stage-2 co-training (Table VIII ablation). Empty
  /// means all trainable tasks.
  std::vector<core::Task> tasks;
  uint64_t seed = 31;
  bool verbose = false;

  // --- Resilience (crash-safe snapshots + divergence guards) -------------
  /// Directory for training-state snapshots, written crash-safely after
  /// every epoch and phase boundary. Empty disables checkpointing (and
  /// with it, divergence rollback).
  std::string checkpoint_dir;
  /// Detect non-finite losses / gradient norms per step; skip the update
  /// and back off the LR instead of corrupting the weights.
  bool guard_non_finite = true;
  /// LR multiplier applied on every skipped (non-finite) step and on every
  /// rollback.
  float lr_backoff = 0.5f;
  /// Consecutive bad steps tolerated before declaring divergence.
  int max_bad_steps = 3;
  /// Divergence rollbacks (to the last good snapshot) before giving up.
  int max_rollbacks = 2;

  // --- Observability (DESIGN.md §4.9) ------------------------------------
  /// JSONL run-report path: one record per finished epoch (loss, wall
  /// time, tokens/sec, GEMM FLOPs, per-phase µs, guard/checkpoint event
  /// counts) plus a final summary. Empty disables the report. The file is
  /// truncated when the trainer is constructed.
  std::string run_report_path;
  /// Training-health sampling (DESIGN.md §4.10): every N applied optimizer
  /// steps, append an event:"health" record with per-layer gradient norms,
  /// weight norms, and update-to-weight ratios. 0 disables sampling; the
  /// records go to run_report_path, so both must be set.
  int health_every_steps = 0;
  /// Layers kept per health record (largest gradient norm first).
  int health_top_layers = 8;

  // --- Execution plans (DESIGN.md §4.13) ---------------------------------
  /// Route every training step through a cached ExecutionPlan whose
  /// TensorArena recycles the step's entire allocation footprint. Replay
  /// is bit-identical to eager execution; disabling falls back to plain
  /// heap allocation (the pre-plan behavior).
  bool plans = true;
};

/// Orchestrates BIGCity training: backbone LM pre-training, LoRA
/// attachment + base freeze, stage-1 masked reconstruction, and stage-2
/// multi-task prompt tuning.
///
/// The trainer tracks a phase/epoch cursor (phase 0 = LM pre-training,
/// 1 = stage 1, 2 = stage 2, 3 = done). With `checkpoint_dir` set it
/// snapshots the full training state — model parameters, Adam moments,
/// RNG state, and the cursor — after every epoch; a run killed at any
/// epoch boundary resumes via ResumeFrom to bit-identical final weights.
class Trainer {
 public:
  Trainer(core::BigCityModel* model, TrainConfig config);

  /// Pre-trains the backbone as a tiny causal language model on a fixed
  /// instruction-style corpus — the stand-in for loading GPT-2 weights —
  /// then attaches LoRA adapters and freezes the base weights.
  util::Status PretrainBackbone();

  /// Stage 1 (Sec. VI-A): self-supervised masked reconstruction over mixed
  /// trajectory / traffic-state ST-unit sequences. Trains the tokenizer,
  /// LoRA adapters, placeholders, and task heads.
  util::Status RunStage1();

  /// Stage 2 (Sec. VI-B): task-oriented prompt tuning over the full
  /// multi-task training set. Tokenizer frozen; LoRA + heads train.
  util::Status RunStage2();

  /// Full pipeline: PretrainBackbone -> RunStage1 -> RunStage2. After a
  /// ResumeFrom, completed phases are skipped and the in-progress phase
  /// continues from its saved epoch.
  util::Status RunAll();

  /// Writes a crash-safe snapshot of the full training state (container
  /// format of util/checkpoint.h).
  util::Status SaveTrainingState(const std::string& path) const;

  /// Restores a snapshot into a freshly constructed model + trainer pair
  /// (same dataset, model config, and TrainConfig as the saved run),
  /// replaying structural transitions (LoRA attach, freezes) of completed
  /// phases before loading parameters. Continue with RunAll().
  util::Status ResumeFrom(const std::string& path);

  double stage1_seconds_per_epoch() const { return stage1_epoch_seconds_; }
  double stage2_seconds_per_epoch() const { return stage2_epoch_seconds_; }
  float last_stage1_loss() const { return last_stage1_loss_; }
  float last_stage2_loss() const { return last_stage2_loss_; }

  /// Phase/epoch cursor: the next unit of work (phase 3 = all done).
  int phase() const { return phase_; }
  int epoch() const { return epoch_; }
  /// Steps skipped by the non-finite guard since construction.
  int total_skipped_steps() const { return total_skipped_steps_; }
  /// Divergence rollbacks performed since construction.
  int rollbacks() const { return rollbacks_; }
  /// Snapshots committed since construction.
  int64_t checkpoint_writes() const { return checkpoint_writes_; }

  /// One stage-2 prompt-tuning sample (public for the ablation benches).
  struct TaskSample {
    core::Task task = core::Task::kNextHop;
    data::Trajectory trajectory;       // Trajectory tasks (clipped).
    std::vector<int> kept;             // Recovery: surviving indices.
    int segment = 0;                   // Traffic tasks.
    int start_slice = 0;
    std::vector<int> masked;           // Imputation mask positions.
  };

  /// Builds the stage-2 "full training set" for the configured tasks.
  std::vector<TaskSample> BuildTaskSamples();

  /// Loss for one prompt-tuning sample (graph-bearing).
  nn::Tensor TaskLoss(const TaskSample& sample);

 private:
  nn::Tensor Stage1Loss(const data::StUnitSequence& sequence,
                        const std::vector<int>& masked);

  /// Stage bodies: run the remaining epochs from the current cursor.
  util::Status DoPretrain();
  util::Status DoStage1();
  util::Status DoStage2();

  /// The stage-1 mixed sequence pool (clipped trajectories + random
  /// traffic windows); draws windows from `rng`.
  std::vector<data::StUnitSequence> BuildStage1Pool(util::Rng* rng);

  /// One guarded optimizer step: backward + clip + step on a finite loss
  /// (*applied = true, *loss_value = loss). On a non-finite loss or
  /// gradient norm, skips the update and backs off the LR
  /// (*applied = false); returns a divergence (kUnavailable — retryable
  /// via snapshot rollback) Status after max_bad_steps consecutive skips.
  util::Status GuardedStep(nn::Tensor batch_loss, bool* applied,
                           float* loss_value);

  /// Runs a stage body, rolling back to the last good snapshot (with an
  /// extra LR backoff) when it reports divergence, up to max_rollbacks.
  util::Status RunWithRollback(const std::function<util::Status()>& stage);

  /// Advances the cursor past a finished epoch, snapshots, and honors the
  /// injected-interrupt fault site.
  util::Status FinishEpoch(int next_epoch);

  /// Snapshot after every epoch when checkpoint_dir is configured.
  util::Status MaybeCheckpoint() const;
  util::Status LoadTrainingState(const std::string& path,
                                 bool replay_structure);
  std::string SnapshotPath() const;

  /// Appends one JSONL record for a finished epoch: schedule position,
  /// loss, wall time, tokens/sec, and deltas of the obs counters,
  /// per-phase duration histograms, guard/checkpoint event counts, and
  /// memory churn since the previous record (every count in an epoch
  /// record describes that epoch alone; the summary holds the totals).
  void ReportEpoch(const char* stage, int epoch, float loss, double seconds);
  /// Appends the final cumulative summary record, including queue-wait
  /// latency percentiles and the tensor-memory high-water mark.
  void ReportSummary();
  /// Appends an event:"health" record after a sampled applied step:
  /// per-layer gradient norm, weight norm, and update-to-weight ratio for
  /// the top-K layers by gradient norm. `params` lists the trainable
  /// parameters that took the step and `before` their pre-step values
  /// (parallel arrays).
  void ReportHealth(float loss, float grad_norm,
                    const std::vector<std::pair<std::string, nn::Tensor>>&
                        params,
                    const std::vector<std::vector<float>>& before);
  /// On a guard trip, walks the loss graph (or the parameter gradients,
  /// for kind == "grad") for the most upstream non-finite value and
  /// appends an event:"nonfinite" record naming the offending op/module.
  void ReportNonFinite(const char* kind, const nn::Tensor& batch_loss);

  core::BigCityModel* model_;
  TrainConfig config_;
  util::Rng rng_;
  std::unique_ptr<nn::Adam> optimizer_;
  /// Per-stage execution plans ("pretrain"/"stage1"/"stage2" keys; the
  /// trainer thread is the only user). Disabled when !config_.plans.
  nn::PlanCache plan_cache_;
  int phase_ = 0;
  int epoch_ = 0;
  int consecutive_bad_ = 0;
  int total_skipped_steps_ = 0;
  int rollbacks_ = 0;
  /// Cumulative LR reduction from backoffs/rollbacks, applied to fresh
  /// per-phase optimizers.
  float lr_penalty_ = 1.0f;
  /// RNG state at the current phase's entry; lets a resume rebuild the
  /// stage-1 pool with the exact draws of the interrupted run.
  std::string stage_entry_rng_;
  double stage1_epoch_seconds_ = 0;
  double stage2_epoch_seconds_ = 0;
  float last_stage1_loss_ = 0;
  float last_stage2_loss_ = 0;

  // --- Observability (run report + cached metric handles) ----------------
  obs::RunReport report_;
  /// ST units / text tokens consumed by the current epoch (reset per
  /// epoch; feeds the report's tokens/sec).
  int64_t epoch_tokens_ = 0;
  /// Mutable: MaybeCheckpoint() is const but the write count is pure
  /// bookkeeping.
  mutable int64_t checkpoint_writes_ = 0;
  /// Registry handles are stable for the process lifetime; with
  /// BIGCITY_OBS=OFF the instrumentation macros record nothing and these
  /// report zeros, which keeps the report valid in both build flavors.
  obs::Histogram* h_data_us_ = nullptr;
  obs::Histogram* h_forward_us_ = nullptr;
  obs::Histogram* h_backward_us_ = nullptr;
  obs::Histogram* h_optim_us_ = nullptr;
  obs::Histogram* h_checkpoint_us_ = nullptr;
  obs::Counter* c_gemm_flops_ = nullptr;
  obs::Counter* c_gemm_calls_ = nullptr;
  /// Optimizer steps actually applied (guard skips excluded); drives the
  /// health-sampling cadence.
  int64_t applied_steps_ = 0;
  /// Values already attributed to earlier report records (delta cursor).
  struct ObsCursor {
    double data_us = 0, forward_us = 0, backward_us = 0, optim_us = 0,
           checkpoint_us = 0;
    uint64_t gemm_flops = 0, gemm_calls = 0;
    int skipped_steps = 0, rollbacks = 0;
    int64_t checkpoint_writes = 0;
    int64_t mem_alloc_bytes = 0, mem_allocs = 0;
  };
  ObsCursor reported_;
};

/// The fixed pre-training corpus (instructions + templated mobility
/// sentences). Exposed for tests.
std::vector<std::string> PretrainCorpus();

}  // namespace bigcity::train

#endif  // BIGCITY_TRAIN_TRAINER_H_
