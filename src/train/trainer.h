#ifndef BIGCITY_TRAIN_TRAINER_H_
#define BIGCITY_TRAIN_TRAINER_H_

#include <memory>
#include <vector>

#include "core/bigcity_model.h"
#include "core/task.h"
#include "nn/optim.h"
#include "util/rng.h"

namespace bigcity::train {

/// Training-schedule configuration for the two-stage strategy (Sec. VI)
/// plus the in-repo backbone pre-training (the GPT-2 substitute).
struct TrainConfig {
  int pretrain_lm_epochs = 8;
  int stage1_epochs = 2;
  int stage2_epochs = 3;
  int batch_size = 8;
  float lr_pretrain = 3e-3f;
  float lr_stage1 = 2e-3f;
  float lr_stage2 = 2e-3f;
  float clip_norm = 5.0f;
  /// Mixed trajectory + traffic sequences per stage-1 epoch.
  int max_stage1_sequences = 300;
  /// Prompt-tuning samples per task per stage-2 epoch.
  int max_task_samples = 150;
  double stage1_mask_fraction = 0.2;
  double recovery_train_mask = 0.5;
  double imputation_mask = 0.25;
  /// Tasks included in stage-2 co-training (Table VIII ablation). Empty
  /// means all trainable tasks.
  std::vector<core::Task> tasks;
  uint64_t seed = 31;
  bool verbose = false;
};

/// Orchestrates BIGCity training: backbone LM pre-training, LoRA
/// attachment + base freeze, stage-1 masked reconstruction, and stage-2
/// multi-task prompt tuning.
class Trainer {
 public:
  Trainer(core::BigCityModel* model, TrainConfig config);

  /// Pre-trains the backbone as a tiny causal language model on a fixed
  /// instruction-style corpus — the stand-in for loading GPT-2 weights —
  /// then attaches LoRA adapters and freezes the base weights.
  void PretrainBackbone();

  /// Stage 1 (Sec. VI-A): self-supervised masked reconstruction over mixed
  /// trajectory / traffic-state ST-unit sequences. Trains the tokenizer,
  /// LoRA adapters, placeholders, and task heads.
  void RunStage1();

  /// Stage 2 (Sec. VI-B): task-oriented prompt tuning over the full
  /// multi-task training set. Tokenizer frozen; LoRA + heads train.
  void RunStage2();

  /// Full pipeline: PretrainBackbone -> RunStage1 -> RunStage2.
  void RunAll();

  double stage1_seconds_per_epoch() const { return stage1_epoch_seconds_; }
  double stage2_seconds_per_epoch() const { return stage2_epoch_seconds_; }
  float last_stage1_loss() const { return last_stage1_loss_; }
  float last_stage2_loss() const { return last_stage2_loss_; }

  /// One stage-2 prompt-tuning sample (public for the ablation benches).
  struct TaskSample {
    core::Task task = core::Task::kNextHop;
    data::Trajectory trajectory;       // Trajectory tasks (clipped).
    std::vector<int> kept;             // Recovery: surviving indices.
    int segment = 0;                   // Traffic tasks.
    int start_slice = 0;
    std::vector<int> masked;           // Imputation mask positions.
  };

  /// Builds the stage-2 "full training set" for the configured tasks.
  std::vector<TaskSample> BuildTaskSamples();

  /// Loss for one prompt-tuning sample (graph-bearing).
  nn::Tensor TaskLoss(const TaskSample& sample);

 private:
  nn::Tensor Stage1Loss(const data::StUnitSequence& sequence,
                        const std::vector<int>& masked);

  core::BigCityModel* model_;
  TrainConfig config_;
  util::Rng rng_;
  double stage1_epoch_seconds_ = 0;
  double stage2_epoch_seconds_ = 0;
  float last_stage1_loss_ = 0;
  float last_stage2_loss_ = 0;
};

/// The fixed pre-training corpus (instructions + templated mobility
/// sentences). Exposed for tests.
std::vector<std::string> PretrainCorpus();

}  // namespace bigcity::train

#endif  // BIGCITY_TRAIN_TRAINER_H_
