#include "train/transfer.h"

#include "nn/optim.h"
#include "nn/ops.h"
#include "util/check.h"
#include "util/logging.h"

namespace bigcity::train {

void TransferBackbone(core::BigCityModel* source,
                      core::BigCityModel* target) {
  BIGCITY_CHECK(source != nullptr && target != nullptr);
  // Both backbones must share architecture and (instruction) vocabulary.
  target->backbone()->CopyStateFrom(*source->backbone());
  // Freeze the transferred backbone entirely (base AND adapters): the
  // target city adapts through its tokenizer MLP + heads only.
  for (auto& p : target->backbone()->Parameters()) {
    p.set_requires_grad(false);
  }
  target->tokenizer()->FreezeAllButTemporalMlp();
}

void FineTuneTransferred(core::BigCityModel* target, TrainConfig config) {
  // Reuse the stage-2 sample construction / losses, but with the restricted
  // trainable set (tokenizer temporal MLP + heads) — Trainer::RunStage2
  // would re-freeze the tokenizer, so run the loop here.
  Trainer trainer(target, config);
  nn::Adam optimizer(target->TrainableParameters(), config.lr_stage2);
  for (int epoch = 0; epoch < config.stage2_epochs; ++epoch) {
    auto samples = trainer.BuildTaskSamples();
    float epoch_loss = 0;
    int batches = 0;
    for (size_t begin = 0; begin < samples.size();
         begin += static_cast<size_t>(config.batch_size)) {
      target->BeginStep();
      optimizer.ZeroGrad();
      nn::Tensor batch_loss;
      const size_t end = std::min(
          samples.size(), begin + static_cast<size_t>(config.batch_size));
      for (size_t s = begin; s < end; ++s) {
        nn::Tensor loss = trainer.TaskLoss(samples[s]);
        batch_loss = batch_loss.is_valid() ? nn::Add(batch_loss, loss) : loss;
      }
      batch_loss = nn::Scale(batch_loss,
                             1.0f / static_cast<float>(end - begin));
      epoch_loss += batch_loss.item();
      ++batches;
      batch_loss.Backward();
      optimizer.ClipGradNorm(config.clip_norm);
      optimizer.Step();
    }
    if (config.verbose) {
      BIGCITY_LOG(Info) << "transfer fine-tune epoch " << epoch << " loss "
                        << (batches > 0 ? epoch_loss / batches : 0.0f);
    }
  }
  target->BeginStep();
}

}  // namespace bigcity::train
