#ifndef BIGCITY_TRAIN_METRICS_H_
#define BIGCITY_TRAIN_METRICS_H_

#include <vector>

namespace bigcity::train {

// Evaluation metrics used across the paper's tables. All ranking metrics
// treat exactly one item as relevant (the ground truth).

// --- Regression -----------------------------------------------------------

double MeanAbsoluteError(const std::vector<double>& predictions,
                         const std::vector<double>& targets);
double RootMeanSquaredError(const std::vector<double>& predictions,
                            const std::vector<double>& targets);
/// Percentage (0-100); targets with |t| < epsilon are skipped.
double MeanAbsolutePercentageError(const std::vector<double>& predictions,
                                   const std::vector<double>& targets,
                                   double epsilon = 1e-6);

// --- Classification ----------------------------------------------------------

double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& targets);

/// Mean reciprocal rank truncated at k: per sample, `ranked` holds the
/// top-k predicted labels in order; reciprocal rank is 0 if absent.
double MrrAtK(const std::vector<std::vector<int>>& ranked,
              const std::vector<int>& targets, int k);

/// NDCG@k with a single relevant item: 1/log2(rank+1), 0 if absent.
double NdcgAtK(const std::vector<std::vector<int>>& ranked,
               const std::vector<int>& targets, int k);

/// Hit rate@k: fraction of samples whose target appears in the top k.
double HitRateAtK(const std::vector<std::vector<int>>& ranked,
                  const std::vector<int>& targets, int k);

/// Mean 1-based rank of the target within `ranked` (full orderings);
/// absent targets count as ranked.size() + 1.
double MeanRank(const std::vector<std::vector<int>>& ranked,
                const std::vector<int>& targets);

/// Binary F1 for label 1.
double BinaryF1(const std::vector<int>& predictions,
                const std::vector<int>& targets);

/// Area under the ROC curve from scores for class 1 (Mann-Whitney).
double BinaryAuc(const std::vector<double>& scores,
                 const std::vector<int>& targets);

/// Multi-class F1 variants over labels [0, num_classes).
double MicroF1(const std::vector<int>& predictions,
               const std::vector<int>& targets, int num_classes);
double MacroF1(const std::vector<int>& predictions,
               const std::vector<int>& targets, int num_classes);
double MacroRecall(const std::vector<int>& predictions,
                   const std::vector<int>& targets, int num_classes);

}  // namespace bigcity::train

#endif  // BIGCITY_TRAIN_METRICS_H_
