#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <utility>

#include "data/masking.h"
#include "nn/introspect.h"
#include "nn/ops.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/checkpoint.h"
#include "util/fault_injection.h"
#include "util/io.h"
#include "util/logging.h"

namespace bigcity::train {

using core::Task;
using data::StUnitSequence;
using nn::Tensor;

namespace {

/// All tasks that carry a stage-2 training loss (similarity search is
/// representation-based and has no dedicated loss).
std::vector<Task> TrainableTasks(bool has_dynamic) {
  std::vector<Task> tasks = {Task::kNextHop, Task::kTrajClassification,
                             Task::kTravelTimeEstimation, Task::kTrajRecovery};
  if (has_dynamic) {
    tasks.push_back(Task::kTrafficOneStep);
    tasks.push_back(Task::kTrafficMultiStep);
    tasks.push_back(Task::kTrafficImputation);
  }
  return tasks;
}

/// Distinguishes full training-state snapshots from plain module files.
constexpr char kTrainerStateTag[] = "bigcity-trainer-state";

constexpr int kPhasePretrain = 0;
constexpr int kPhaseStage1 = 1;
constexpr int kPhaseStage2 = 2;
constexpr int kPhaseDone = 3;

}  // namespace

std::vector<std::string> PretrainCorpus() {
  return core::InstructionCorpus();
}

Trainer::Trainer(core::BigCityModel* model, TrainConfig config)
    : model_(model), config_(config), rng_(config.seed),
      // Capacity 1: training stages run sequentially, so holding one plan
      // at a time means each stage transition evicts (and frees) the
      // previous stage's arena instead of keeping all three resident.
      plan_cache_(/*capacity=*/1, config.plans) {
  BIGCITY_CHECK(model != nullptr);
  if (config_.tasks.empty()) {
    config_.tasks =
        TrainableTasks(model_->dataset()->config().has_dynamic_features);
  }
  // Handles are process-stable; the names match the instrumentation macros
  // below, so ReportEpoch can read what the probes recorded.
  auto& registry = obs::MetricsRegistry::Global();
  h_data_us_ = registry.GetHistogram("train.data_us");
  h_forward_us_ = registry.GetHistogram("train.forward_us");
  h_backward_us_ = registry.GetHistogram("train.backward_us");
  h_optim_us_ = registry.GetHistogram("train.optim_us");
  h_checkpoint_us_ = registry.GetHistogram("train.checkpoint_us");
  c_gemm_flops_ = registry.GetCounter("kernels.gemm.flops");
  c_gemm_calls_ = registry.GetCounter("kernels.gemm.calls");
  reported_.gemm_flops = c_gemm_flops_->Value();
  reported_.gemm_calls = c_gemm_calls_->Value();
  reported_.data_us = h_data_us_->Sum();
  reported_.forward_us = h_forward_us_->Sum();
  reported_.backward_us = h_backward_us_->Sum();
  reported_.optim_us = h_optim_us_->Sum();
  reported_.checkpoint_us = h_checkpoint_us_->Sum();
  // Memory churn is process-global (model construction already allocated),
  // so the cursor starts at the current totals like the other metrics.
  reported_.mem_alloc_bytes = obs::MemoryTracker::Global().alloc_bytes();
  reported_.mem_allocs = obs::MemoryTracker::Global().alloc_count();
  if (!config_.run_report_path.empty() &&
      !report_.Open(config_.run_report_path)) {
    BIGCITY_LOG(Warning) << "cannot open run report "
                         << config_.run_report_path << "; disabled";
  }
}

// --- Run report -------------------------------------------------------------

void Trainer::ReportEpoch(const char* stage, int epoch, float loss,
                          double seconds) {
  BIGCITY_COUNTER_INC("train.epochs");
  BIGCITY_COUNTER_ADD("train.tokens", static_cast<uint64_t>(epoch_tokens_));
  if (!report_.is_open()) return;
  auto& memory = obs::MemoryTracker::Global();
  ObsCursor now;
  now.gemm_flops = c_gemm_flops_->Value();
  now.gemm_calls = c_gemm_calls_->Value();
  now.data_us = h_data_us_->Sum();
  now.forward_us = h_forward_us_->Sum();
  now.backward_us = h_backward_us_->Sum();
  now.optim_us = h_optim_us_->Sum();
  now.checkpoint_us = h_checkpoint_us_->Sum();
  now.skipped_steps = total_skipped_steps_;
  now.rollbacks = rollbacks_;
  now.checkpoint_writes = checkpoint_writes_;
  now.mem_alloc_bytes = memory.alloc_bytes();
  now.mem_allocs = memory.alloc_count();
  obs::RunReport::Record record;
  record.Str("event", "epoch")
      .Str("phase", stage)
      .Int("epoch", epoch)
      .Num("loss", loss)
      .Num("seconds", seconds)
      .Int("tokens", epoch_tokens_)
      .Num("tokens_per_sec",
           seconds > 0 ? static_cast<double>(epoch_tokens_) / seconds : 0.0)
      .Int("gemm_flops",
           static_cast<int64_t>(now.gemm_flops - reported_.gemm_flops))
      .Int("gemm_calls",
           static_cast<int64_t>(now.gemm_calls - reported_.gemm_calls))
      .Num("data_us", now.data_us - reported_.data_us)
      .Num("forward_us", now.forward_us - reported_.forward_us)
      .Num("backward_us", now.backward_us - reported_.backward_us)
      .Num("optim_us", now.optim_us - reported_.optim_us)
      .Num("checkpoint_us", now.checkpoint_us - reported_.checkpoint_us)
      .Int("guard_skipped_steps", now.skipped_steps - reported_.skipped_steps)
      .Int("rollbacks", now.rollbacks - reported_.rollbacks)
      .Int("checkpoint_writes",
           now.checkpoint_writes - reported_.checkpoint_writes)
      .Int("mem_live_bytes", memory.live_bytes())
      .Int("mem_peak_bytes", memory.peak_bytes())
      .Int("mem_alloc_bytes", now.mem_alloc_bytes - reported_.mem_alloc_bytes)
      .Int("mem_allocs", now.mem_allocs - reported_.mem_allocs);
  report_.Write(record);
  reported_ = now;
}

void Trainer::ReportSummary() {
  if (!report_.is_open()) return;
  // Queue-wait percentiles over the whole run: the histogram is populated
  // by the thread pool; single-threaded runs leave it empty and the
  // percentiles report 0.
  auto* queue_wait =
      obs::MetricsRegistry::Global().GetHistogram("threadpool.queue_wait_us");
  const auto queue_buckets = queue_wait->BucketCounts();
  const auto& queue_bounds = queue_wait->bounds();
  auto& memory = obs::MemoryTracker::Global();
  obs::RunReport::Record record;
  record.Str("event", "summary")
      .Int("phase", phase_)
      .Int("gemm_flops_total", static_cast<int64_t>(c_gemm_flops_->Value()))
      .Int("gemm_calls_total", static_cast<int64_t>(c_gemm_calls_->Value()))
      .Int("applied_steps", applied_steps_)
      .Int("guard_skipped_steps", total_skipped_steps_)
      .Int("rollbacks", rollbacks_)
      .Int("checkpoint_writes", checkpoint_writes_)
      .Num("queue_wait_p50_us",
           obs::HistogramPercentile(queue_bounds, queue_buckets, 0.50))
      .Num("queue_wait_p95_us",
           obs::HistogramPercentile(queue_bounds, queue_buckets, 0.95))
      .Num("queue_wait_p99_us",
           obs::HistogramPercentile(queue_bounds, queue_buckets, 0.99))
      .Int("mem_live_bytes", memory.live_bytes())
      .Int("mem_peak_bytes", memory.peak_bytes())
      // Events the trace ring overwrote before export; nonzero means the
      // run's trace JSON is missing its oldest spans.
      .Int("trace_dropped",
           static_cast<int64_t>(obs::TraceBuffer::Global().dropped()))
      .Num("stage1_seconds_per_epoch", stage1_epoch_seconds_)
      .Num("stage2_seconds_per_epoch", stage2_epoch_seconds_)
      .Num("stage1_loss", last_stage1_loss_)
      .Num("stage2_loss", last_stage2_loss_);
  report_.Write(record);
}

namespace {

/// Parameter name minus its trailing segment — the owning module's dotted
/// path as produced by Module::NamedParameters() / AssignModulePaths()
/// ("backbone.blocks.0.attn.wq.base.weight" -> ".../wq.base").
std::string LayerOf(const std::string& parameter_name) {
  const auto dot = parameter_name.rfind('.');
  return dot == std::string::npos ? parameter_name
                                  : parameter_name.substr(0, dot);
}

}  // namespace

void Trainer::ReportHealth(
    float loss, float grad_norm,
    const std::vector<std::pair<std::string, nn::Tensor>>& params,
    const std::vector<std::vector<float>>& before) {
  struct LayerAccumulator {
    double grad_sq = 0, weight_sq = 0, update_sq = 0;
    bool finite = true;
  };
  std::map<std::string, LayerAccumulator> layers;
  for (size_t i = 0; i < params.size(); ++i) {
    const auto& [name, parameter] = params[i];
    auto& acc = layers[LayerOf(name)];
    for (const float g : parameter.grad()) {
      acc.grad_sq += static_cast<double>(g) * g;
      if (!std::isfinite(g)) acc.finite = false;
    }
    const auto& after = parameter.data();
    const auto& prev = before[i];
    for (size_t j = 0; j < after.size(); ++j) {
      acc.weight_sq += static_cast<double>(prev[j]) * prev[j];
      const double d = static_cast<double>(after[j]) - prev[j];
      acc.update_sq += d * d;
    }
  }
  std::vector<std::pair<std::string, LayerAccumulator>> rows(layers.begin(),
                                                             layers.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.grad_sq > b.second.grad_sq;
  });
  if (config_.health_top_layers > 0 &&
      rows.size() > static_cast<size_t>(config_.health_top_layers)) {
    rows.resize(static_cast<size_t>(config_.health_top_layers));
  }
  std::string json = "[";
  char buffer[320];
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& [layer, acc] = rows[i];
    const double weight_norm = std::sqrt(acc.weight_sq);
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"module\":\"%s\",\"grad_norm\":%.6g,"
                  "\"weight_norm\":%.6g,\"update_ratio\":%.6g,\"finite\":%s}",
                  i == 0 ? "" : ",", layer.c_str(), std::sqrt(acc.grad_sq),
                  weight_norm,
                  std::sqrt(acc.update_sq) / (weight_norm + 1e-12),
                  acc.finite ? "true" : "false");
    json += buffer;
  }
  json += "]";
  obs::RunReport::Record record;
  record.Str("event", "health")
      .Int("phase", phase_)
      .Int("epoch", epoch_)
      .Int("step", applied_steps_)
      .Num("loss", loss)
      .Num("grad_norm", grad_norm)
      .Raw("layers", json);
  report_.Write(record);
}

void Trainer::ReportNonFinite(const char* kind, const Tensor& batch_loss) {
  nn::NonFiniteSite site;
  if (std::strcmp(kind, "grad") == 0) {
    // A non-finite clip norm means some parameter gradient went bad; the
    // parameter's dotted name localizes it directly.
    for (const auto& [name, parameter] : model_->NamedParameters()) {
      if (!parameter.requires_grad()) continue;
      bool hit = false;
      for (const float g : parameter.grad()) {
        if (!std::isfinite(g)) {
          hit = true;
          break;
        }
      }
      if (hit) {
        site.found = true;
        site.module = LayerOf(name);
        site.op = name.substr(name.rfind('.') + 1);
        site.in_grad = true;
        break;
      }
    }
    if (!site.found) {
      site = nn::FindFirstNonFinite(batch_loss, /*check_grads=*/true);
    }
  } else {
    site = nn::FindFirstNonFinite(batch_loss);
  }
  if (site.found) {
    BIGCITY_LOG(Warning) << "first non-finite value: op " << site.op
                         << " module "
                         << (site.module.empty() ? "(untagged)" : site.module)
                         << (site.in_grad ? " (gradient)" : "");
  }
  if (!report_.is_open()) return;
  obs::RunReport::Record record;
  record.Str("event", "nonfinite")
      .Str("kind", kind)
      .Int("phase", phase_)
      .Int("epoch", epoch_)
      .Int("found", site.found ? 1 : 0)
      .Str("module", site.module)
      .Str("op", site.op)
      .Int("seq", static_cast<int64_t>(site.seq))
      .Str("shape", site.shape)
      .Int("in_grad", site.in_grad ? 1 : 0);
  report_.Write(record);
}

// --- Guarded stepping + snapshots ------------------------------------------

/// Clears the model's per-step caches (tokenizer representations filled by
/// the step's forward, which live in the step's arena) when the scope
/// exits — on every path, including divergence early returns — so no
/// arena-backed tensor survives the enclosing PlanScope's rewind.
class StepCacheRelease {
 public:
  explicit StepCacheRelease(core::BigCityModel* model) : model_(model) {}
  ~StepCacheRelease() { model_->BeginStep(); }
  StepCacheRelease(const StepCacheRelease&) = delete;
  StepCacheRelease& operator=(const StepCacheRelease&) = delete;

 private:
  core::BigCityModel* model_;
};

util::Status Trainer::GuardedStep(Tensor batch_loss, bool* applied,
                                  float* loss_value) {
  if (util::FaultInjection::Fire(util::kFaultTrainerNanLoss)) {
    batch_loss.data()[0] = std::numeric_limits<float>::quiet_NaN();
  }
  const float value = batch_loss.item();
  const char* bad_kind = nullptr;
  if (config_.guard_non_finite && !std::isfinite(value)) bad_kind = "loss";
  if (bad_kind == nullptr) {
    float norm = 0;
    {
      // Backward phase includes gradient clipping: both walk the full
      // parameter set and neither updates weights.
      BIGCITY_TIMED_SCOPE_NAMED("train.backward_us", "backward", "train");
      BIGCITY_MEM_PHASE(kBackward);
      batch_loss.Backward();
      if (util::FaultInjection::Fire(util::kFaultTrainerNanGrad)) {
        for (auto p : optimizer_->parameters()) {
          if (p.requires_grad() && !p.grad().empty()) {
            p.grad()[0] = std::numeric_limits<float>::quiet_NaN();
            break;
          }
        }
      }
      norm = optimizer_->ClipGradNorm(config_.clip_norm);
    }
    if (config_.guard_non_finite && !std::isfinite(norm)) bad_kind = "grad";
    if (bad_kind == nullptr) {
      // Health sampling needs the pre-step weights for the update ratio,
      // so the (cheap, sampled) copy happens before Step().
      const bool sample_health =
          config_.health_every_steps > 0 && report_.is_open() &&
          (applied_steps_ + 1) % config_.health_every_steps == 0;
      std::vector<std::pair<std::string, Tensor>> health_params;
      std::vector<std::vector<float>> health_before;
      if (sample_health) {
        for (const auto& [name, parameter] : model_->NamedParameters()) {
          if (parameter.requires_grad() && !parameter.grad().empty()) {
            health_before.emplace_back(parameter.data().begin(),
                                       parameter.data().end());
            health_params.emplace_back(name, parameter);
          }
        }
      }
      {
        BIGCITY_TIMED_SCOPE_NAMED("train.optim_us", "optim", "train");
        BIGCITY_MEM_PHASE(kOptim);
        optimizer_->Step();
      }
      consecutive_bad_ = 0;
      ++applied_steps_;
      *applied = true;
      *loss_value = value;
      BIGCITY_COUNTER_INC("train.steps.applied");
      BIGCITY_GAUGE_SET("train.lr", optimizer_->lr());
      if (sample_health) {
        ReportHealth(value, norm, health_params, health_before);
      }
      return util::Status::Ok();
    }
  }
  // Non-finite loss or gradients: localize and report the first bad value,
  // skip the update, back off the LR, and report divergence once the bad
  // streak exceeds the budget.
  *applied = false;
  *loss_value = 0;
  ++consecutive_bad_;
  ++total_skipped_steps_;
  BIGCITY_COUNTER_INC("train.guard.skipped_steps");
  ReportNonFinite(bad_kind, batch_loss);
  optimizer_->set_lr(optimizer_->lr() * config_.lr_backoff);
  BIGCITY_GAUGE_SET("train.lr", optimizer_->lr());
  BIGCITY_LOG(Warning) << "non-finite loss/gradient at phase " << phase_
                       << " epoch " << epoch_ << "; skipped step ("
                       << consecutive_bad_ << " consecutive), lr -> "
                       << optimizer_->lr();
  if (consecutive_bad_ >= config_.max_bad_steps) {
    // Divergence is transient-retryable by contract: RunWithRollback
    // reloads the last good snapshot and retries, so it is kUnavailable,
    // not kInternal (which is reserved for library bugs).
    return util::Status::Unavailable(
        "training diverged: " + std::to_string(consecutive_bad_) +
        " consecutive non-finite steps at phase " + std::to_string(phase_) +
        " epoch " + std::to_string(epoch_));
  }
  return util::Status::Ok();
}

std::string Trainer::SnapshotPath() const {
  return config_.checkpoint_dir + "/train_state.ckpt";
}

util::Status Trainer::MaybeCheckpoint() const {
  if (config_.checkpoint_dir.empty()) return util::Status::Ok();
  BIGCITY_TIMED_SCOPE_NAMED("train.checkpoint_us", "checkpoint", "train");
  std::error_code ec;
  std::filesystem::create_directories(config_.checkpoint_dir, ec);
  if (ec) {
    return util::Status::IoError("cannot create checkpoint dir " +
                                 config_.checkpoint_dir + ": " + ec.message());
  }
  auto status = SaveTrainingState(SnapshotPath());
  if (status.ok()) {
    ++checkpoint_writes_;
    BIGCITY_COUNTER_INC("train.checkpoint.writes");
  }
  return status;
}

util::Status Trainer::FinishEpoch(int next_epoch) {
  epoch_ = next_epoch;
  if (auto s = MaybeCheckpoint(); !s.ok()) return s;
  if (util::FaultInjection::Fire(util::kFaultTrainerInterrupt)) {
    return util::Status::FailedPrecondition(
        "training interrupted (fault injection) at phase " +
        std::to_string(phase_) + " epoch " + std::to_string(epoch_));
  }
  return util::Status::Ok();
}

util::Status Trainer::SaveTrainingState(const std::string& path) const {
  util::CheckpointWriter writer;
  auto& out = writer.stream();
  util::WriteString(out, kTrainerStateTag);
  util::WriteI32(out, phase_);
  util::WriteI32(out, epoch_);
  util::WriteI32(out, consecutive_bad_);
  util::WriteFloat(out, lr_penalty_);
  util::WriteString(out, rng_.SaveState());
  util::WriteString(out, stage_entry_rng_);
  model_->SaveState(out);
  util::WriteI32(out, optimizer_ ? 1 : 0);
  if (optimizer_) optimizer_->SaveState(out);
  return writer.Commit(path);
}

util::Status Trainer::ResumeFrom(const std::string& path) {
  return LoadTrainingState(path, /*replay_structure=*/true);
}

util::Status Trainer::LoadTrainingState(const std::string& path,
                                        bool replay_structure) {
  util::CheckpointReader reader;
  if (auto s = reader.Open(path); !s.ok()) return s;
  auto& in = reader.stream();

  std::string tag;
  if (auto s = util::ReadString(in, &tag); !s.ok()) return s;
  if (tag != kTrainerStateTag) {
    return util::Status::InvalidArgument(
        "not a trainer-state checkpoint (model-only file?): " + path);
  }
  int32_t phase = 0, epoch = 0, bad = 0;
  float penalty = 1.0f;
  if (auto s = util::ReadI32(in, &phase); !s.ok()) return s;
  if (auto s = util::ReadI32(in, &epoch); !s.ok()) return s;
  if (auto s = util::ReadI32(in, &bad); !s.ok()) return s;
  if (auto s = util::ReadFloat(in, &penalty); !s.ok()) return s;
  if (phase < kPhasePretrain || phase > kPhaseDone || epoch < 0) {
    return util::Status::InvalidArgument(
        "corrupt phase/epoch cursor in checkpoint: " + path);
  }
  std::string rng_state, entry_rng;
  if (auto s = util::ReadString(in, &rng_state); !s.ok()) return s;
  if (auto s = util::ReadString(in, &entry_rng); !s.ok()) return s;

  if (replay_structure) {
    // Replay the structural transitions completed phases applied, so the
    // parameter tree and trainable set match the snapshot before loading.
    if (phase >= kPhaseStage1) {
      util::Rng lora_rng(config_.seed ^ 0xabc);
      model_->backbone()->EnableLora(&lora_rng);
      model_->backbone()->FreezeBase();
    }
    if (phase >= kPhaseStage2) model_->tokenizer()->SetTrainable(false);
  }
  if (auto s = model_->LoadState(in); !s.ok()) return s;

  int32_t has_optimizer = 0;
  if (auto s = util::ReadI32(in, &has_optimizer); !s.ok()) return s;
  if (has_optimizer != 0) {
    auto parameters = phase == kPhasePretrain
                          ? model_->backbone()->TrainableParameters()
                          : model_->TrainableParameters();
    auto optimizer =
        std::make_unique<nn::Adam>(std::move(parameters), 0.0f);
    if (auto s = optimizer->LoadState(in); !s.ok()) return s;
    optimizer_ = std::move(optimizer);
  } else {
    optimizer_.reset();
  }
  if (!rng_.LoadState(rng_state)) {
    return util::Status::InvalidArgument("corrupt RNG state in checkpoint: " +
                                         path);
  }
  phase_ = phase;
  epoch_ = epoch;
  consecutive_bad_ = bad;
  lr_penalty_ = penalty;
  stage_entry_rng_ = std::move(entry_rng);
  return util::Status::Ok();
}

util::Status Trainer::RunWithRollback(
    const std::function<util::Status()>& stage) {
  const int expected_phase = phase_;
  for (;;) {
    util::Status status = stage();
    if (status.ok() || status.code() != util::StatusCode::kUnavailable) {
      return status;
    }
    // Divergence: reload the last good snapshot with an extra LR backoff.
    if (config_.checkpoint_dir.empty() ||
        rollbacks_ >= config_.max_rollbacks) {
      return status;
    }
    ++rollbacks_;
    BIGCITY_COUNTER_INC("train.guard.rollbacks");
    lr_penalty_ *= config_.lr_backoff;
    if (auto s = LoadTrainingState(SnapshotPath(), false); !s.ok()) {
      return status;  // No usable snapshot: surface the divergence.
    }
    if (phase_ != expected_phase) return status;
    consecutive_bad_ = 0;
    if (optimizer_) {
      optimizer_->set_lr(optimizer_->lr() * config_.lr_backoff);
    }
    BIGCITY_LOG(Warning) << "rolled back to snapshot (phase " << phase_
                         << ", epoch " << epoch_ << ") after divergence, "
                         << "lr penalty " << lr_penalty_;
  }
}

// --- Phase 0: backbone LM pre-training -------------------------------------

util::Status Trainer::PretrainBackbone() {
  if (phase_ != kPhasePretrain) {
    phase_ = kPhasePretrain;
    epoch_ = 0;
    optimizer_.reset();
  }
  return RunWithRollback([this] { return DoPretrain(); });
}

util::Status Trainer::DoPretrain() {
  // Next-word prediction over the fixed corpus — the GPT-2 substitute.
  auto* backbone = model_->backbone();
  std::vector<std::vector<int>> corpus;
  for (const auto& line : PretrainCorpus()) {
    auto ids = model_->text_tokenizer().Encode(line);
    if (ids.size() >= 2) corpus.push_back(std::move(ids));
  }
  if (epoch_ == 0 || !optimizer_) {
    optimizer_ = std::make_unique<nn::Adam>(
        backbone->TrainableParameters(), config_.lr_pretrain * lr_penalty_);
  }
  obs::WallTimer epoch_watch;
  for (int epoch = epoch_; epoch < config_.pretrain_lm_epochs; ++epoch) {
    BIGCITY_TRACE_SPAN("pretrain.epoch", "train");
    epoch_watch.Restart();
    epoch_tokens_ = 0;
    float epoch_loss = 0;
    for (const auto& ids : corpus) {
      BIGCITY_TRACE_SPAN("step", "train");
      nn::PlanScope plan_scope(&plan_cache_, {"pretrain", 0});
      StepCacheRelease cache_release(model_);
      optimizer_->ZeroGrad();
      Tensor loss;
      {
        BIGCITY_TIMED_SCOPE_NAMED("train.forward_us", "forward", "train");
        BIGCITY_MEM_PHASE(kForward);
        Tensor logits = backbone->TextLmLogits(ids);
        // Predict token t+1 from position t.
        Tensor inputs = nn::SliceRows(logits, 0,
                                      static_cast<int64_t>(ids.size()) - 1);
        std::vector<int> targets(ids.begin() + 1, ids.end());
        loss = nn::CrossEntropy(inputs, targets);
      }
      epoch_tokens_ += static_cast<int64_t>(ids.size());
      bool applied = false;
      float value = 0;
      if (auto s = GuardedStep(loss, &applied, &value); !s.ok()) return s;
      epoch_loss += value;
      loss = nn::Tensor();  // Release the graph before the arena rewinds.
    }
    if (config_.verbose) {
      BIGCITY_LOG(Info) << "LM pretrain epoch " << epoch << " loss "
                        << epoch_loss / corpus.size();
    }
    ReportEpoch("pretrain", epoch,
                epoch_loss / static_cast<float>(corpus.size()),
                epoch_watch.ElapsedSeconds());
    if (auto s = FinishEpoch(epoch + 1); !s.ok()) return s;
  }
  // Attach adapters and freeze the pre-trained base (Sec. V-B).
  util::Rng lora_rng(config_.seed ^ 0xabc);
  backbone->EnableLora(&lora_rng);
  backbone->FreezeBase();
  phase_ = kPhaseStage1;
  epoch_ = 0;
  optimizer_.reset();
  return MaybeCheckpoint();
}

// --- Stage-1 masked reconstruction ------------------------------------------

Tensor Trainer::Stage1Loss(const StUnitSequence& sequence,
                           const std::vector<int>& masked) {
  auto reconstruction = model_->MaskedReconstruct(sequence, masked);
  const auto& config = model_->config();
  const data::CityDataset* dataset = model_->dataset();
  const bool has_dynamic = dataset->config().has_dynamic_features;

  // Ground truths (Eq. 15): segment id, dynamic features, timestamp delta.
  std::vector<int> segment_targets;
  std::vector<float> state_targets;
  std::vector<float> time_targets;
  for (int index : masked) {
    segment_targets.push_back(
        sequence.segments[static_cast<size_t>(index)]);
    if (has_dynamic) {
      const int slice = dataset->traffic().SliceOf(
          sequence.timestamps[static_cast<size_t>(index)]);
      auto features = dataset->traffic().Features(
          slice, sequence.segments[static_cast<size_t>(index)]);
      state_targets.insert(state_targets.end(), features.begin(),
                           features.end());
    }
    const double delta =
        index == 0 ? 0.0
                   : sequence.timestamps[static_cast<size_t>(index)] -
                         sequence.timestamps[static_cast<size_t>(index - 1)];
    time_targets.push_back(data::MinutesTarget(delta));
  }

  Tensor loss =
      nn::CrossEntropy(reconstruction.segment_logits, segment_targets);
  if (has_dynamic) {
    Tensor state_target = Tensor::FromData(
        {static_cast<int64_t>(masked.size()), data::kTrafficChannels},
        std::move(state_targets));
    loss = nn::Add(loss, nn::Scale(nn::Mse(reconstruction.states,
                                           state_target),
                                   config.lambda_reg));
  }
  // Timestamp reconstruction only applies to trajectories: traffic-state
  // series have constant 30-minute gaps, which would dominate the loss
  // without carrying information.
  if (sequence.is_trajectory) {
    const auto num_masked = static_cast<int64_t>(masked.size());
    Tensor time_target =
        Tensor::FromData({num_masked, 1}, std::move(time_targets));
    loss = nn::Add(loss, nn::Scale(nn::Mse(reconstruction.times, time_target),
                                   config.lambda_tim));
  }
  return loss;
}

std::vector<StUnitSequence> Trainer::BuildStage1Pool(util::Rng* rng) {
  const data::CityDataset* dataset = model_->dataset();
  const bool has_dynamic = dataset->config().has_dynamic_features;

  // Mixed sequence pool: clipped trajectories + random traffic windows.
  std::vector<StUnitSequence> pool;
  for (const auto& trip : dataset->train()) {
    if (trip.length() < 4) continue;
    pool.push_back(
        StUnitSequence::FromTrajectory(model_->ClipTrajectory(trip)));
    if (static_cast<int>(pool.size()) >= config_.max_stage1_sequences) break;
  }
  if (has_dynamic) {
    const int window = model_->config().traffic_input_steps;
    const int extra = config_.max_stage1_sequences / 3;
    for (int k = 0; k < extra; ++k) {
      const int segment =
          rng->UniformInt(0, dataset->network().num_segments() - 1);
      const int start = rng->UniformInt(
          0, std::max(0, dataset->num_slices() - window - 1));
      pool.push_back(StUnitSequence::FromTrafficSeries(
          dataset->traffic(), segment, start, window));
    }
  }
  return pool;
}

util::Status Trainer::RunStage1() {
  if (phase_ != kPhaseStage1) {
    phase_ = kPhaseStage1;
    epoch_ = 0;
    optimizer_.reset();
  }
  return RunWithRollback([this] { return DoStage1(); });
}

util::Status Trainer::DoStage1() {
  std::vector<StUnitSequence> pool;
  if (epoch_ == 0) {
    // Fresh entry: the pool consumes draws from the training RNG; record
    // the entry state so an interrupted run can rebuild the same pool.
    stage_entry_rng_ = rng_.SaveState();
    pool = BuildStage1Pool(&rng_);
    optimizer_ = std::make_unique<nn::Adam>(model_->TrainableParameters(),
                                            config_.lr_stage1 * lr_penalty_);
  } else {
    // Resume: replay the pool draws from the recorded entry state; the
    // training RNG already sits at the epoch boundary.
    util::Rng pool_rng;
    if (stage_entry_rng_.empty() || !pool_rng.LoadState(stage_entry_rng_)) {
      return util::Status::FailedPrecondition(
          "cannot resume stage 1: missing stage-entry RNG state");
    }
    pool = BuildStage1Pool(&pool_rng);
    if (!optimizer_) {
      optimizer_ = std::make_unique<nn::Adam>(
          model_->TrainableParameters(), config_.lr_stage1 * lr_penalty_);
    }
  }

  obs::WallTimer epoch_watch;
  for (int epoch = epoch_; epoch < config_.stage1_epochs; ++epoch) {
    BIGCITY_TRACE_SPAN("stage1.epoch", "train");
    epoch_watch.Restart();
    epoch_tokens_ = 0;
    // Visit the canonical pool through a fresh permutation instead of
    // shuffling it in place: the epoch's order then depends only on the
    // RNG state at the epoch boundary (which snapshots capture), not on
    // the compounded shuffles of earlier epochs.
    const std::vector<int> order =
        rng_.Permutation(static_cast<int>(pool.size()));
    float epoch_loss = 0;
    int batches = 0;
    for (size_t begin = 0; begin < pool.size();
         begin += static_cast<size_t>(config_.batch_size)) {
      BIGCITY_TRACE_SPAN("step", "train");
      nn::PlanScope plan_scope(&plan_cache_, {"stage1", 0});
      StepCacheRelease cache_release(model_);
      model_->BeginStep();
      optimizer_->ZeroGrad();
      const size_t end = std::min(
          pool.size(), begin + static_cast<size_t>(config_.batch_size));
      // Data phase: draw the batch's mask indices. This consumes rng_ in
      // the same per-sequence order as drawing inside the loss loop would
      // (the forward pass draws nothing), so the training stream is
      // unchanged by the phase split.
      std::vector<std::vector<int>> batch_masks;
      batch_masks.reserve(end - begin);
      {
        BIGCITY_TIMED_SCOPE_NAMED("train.data_us", "data", "train");
        BIGCITY_MEM_PHASE(kData);
        for (size_t s = begin; s < end; ++s) {
          const auto& sequence = pool[static_cast<size_t>(order[s])];
          const int k = std::max(
              1, static_cast<int>(sequence.length() *
                                  config_.stage1_mask_fraction));
          batch_masks.push_back(
              data::RandomMaskIndices(sequence.length(), k, &rng_));
          epoch_tokens_ += sequence.length();
        }
      }
      Tensor batch_loss;
      {
        BIGCITY_TIMED_SCOPE_NAMED("train.forward_us", "forward", "train");
        BIGCITY_MEM_PHASE(kForward);
        for (size_t s = begin; s < end; ++s) {
          const auto& sequence = pool[static_cast<size_t>(order[s])];
          Tensor loss = Stage1Loss(sequence, batch_masks[s - begin]);
          batch_loss =
              batch_loss.is_valid() ? nn::Add(batch_loss, loss) : loss;
        }
        batch_loss = nn::Scale(batch_loss,
                               1.0f / static_cast<float>(end - begin));
      }
      bool applied = false;
      float value = 0;
      if (auto s = GuardedStep(batch_loss, &applied, &value); !s.ok()) {
        return s;
      }
      if (applied) {
        epoch_loss += value;
        ++batches;
      }
      // Release the loss graph before the arena rewinds (the tokenizer
      // caches are released by cache_release above).
      batch_loss = nn::Tensor();
    }
    last_stage1_loss_ = batches > 0 ? epoch_loss / batches : 0.0f;
    stage1_epoch_seconds_ = epoch_watch.ElapsedSeconds();
    if (config_.verbose) {
      BIGCITY_LOG(Info) << "stage-1 epoch " << epoch << " loss "
                        << last_stage1_loss_ << " ("
                        << stage1_epoch_seconds_ << "s)";
    }
    ReportEpoch("stage1", epoch, last_stage1_loss_, stage1_epoch_seconds_);
    if (auto s = FinishEpoch(epoch + 1); !s.ok()) return s;
  }
  model_->BeginStep();
  phase_ = kPhaseStage2;
  epoch_ = 0;
  optimizer_.reset();
  return MaybeCheckpoint();
}

// --- Stage-2 prompt tuning ---------------------------------------------------

std::vector<Trainer::TaskSample> Trainer::BuildTaskSamples() {
  const data::CityDataset* dataset = model_->dataset();
  std::vector<TaskSample> samples;
  const auto& train = dataset->train();

  for (Task task : config_.tasks) {
    // Traffic tasks are over-sampled: each sample covers ONE segment while
    // the task-specific baselines consume all segments jointly per sample,
    // so parity requires more draws.
    const bool is_traffic = task == Task::kTrafficOneStep ||
                            task == Task::kTrafficMultiStep ||
                            task == Task::kTrafficImputation;
    const int budget =
        is_traffic ? 2 * config_.max_task_samples : config_.max_task_samples;
    int produced = 0;
    int cursor = 0;
    while (produced < budget &&
           cursor < static_cast<int>(train.size()) * 2) {
      const auto& trip = train[static_cast<size_t>(cursor++ % train.size())];
      TaskSample sample;
      sample.task = task;
      switch (task) {
        case Task::kNextHop:
        case Task::kTrajClassification:
        case Task::kTravelTimeEstimation: {
          if (trip.length() < 4) continue;
          sample.trajectory = model_->ClipTrajectory(trip);
          break;
        }
        case Task::kTrajRecovery: {
          if (trip.length() < 6) continue;
          sample.trajectory = model_->ClipTrajectory(trip);
          sample.kept = data::DownsampleKeepIndices(
              sample.trajectory.length(), config_.recovery_train_mask,
              &rng_);
          if (static_cast<int>(sample.kept.size()) ==
              sample.trajectory.length()) {
            continue;  // Nothing masked.
          }
          break;
        }
        case Task::kTrafficOneStep:
        case Task::kTrafficMultiStep:
        case Task::kTrafficImputation: {
          const int window = model_->config().traffic_input_steps;
          const int horizon = model_->config().traffic_horizon;
          sample.segment =
              rng_.UniformInt(0, dataset->network().num_segments() - 1);
          sample.start_slice = rng_.UniformInt(
              0, std::max(0, dataset->num_slices() - window - horizon - 1));
          if (task == Task::kTrafficImputation) {
            const int k = std::max(
                1, static_cast<int>(window * config_.imputation_mask));
            sample.masked = data::RandomMaskIndices(window, k, &rng_);
          }
          break;
        }
        case Task::kMostSimilarSearch:
          continue;  // No direct loss.
      }
      samples.push_back(std::move(sample));
      ++produced;
    }
  }
  rng_.Shuffle(&samples);
  return samples;
}

Tensor Trainer::TaskLoss(const TaskSample& sample) {
  const data::CityDataset* dataset = model_->dataset();
  const auto& config = model_->config();
  switch (sample.task) {
    case Task::kNextHop: {
      data::Trajectory prefix = sample.trajectory;
      const int target = prefix.points.back().segment;
      prefix.points.pop_back();
      return nn::CrossEntropy(model_->NextHopLogits(prefix), {target});
    }
    case Task::kTrajClassification: {
      const int label = model_->classifies_users()
                            ? sample.trajectory.user_id
                            : sample.trajectory.pattern_label;
      return nn::CrossEntropy(model_->ClassifyLogits(sample.trajectory),
                              {label});
    }
    case Task::kTravelTimeEstimation: {
      Tensor predicted = model_->TravelTimeDeltas(sample.trajectory);
      std::vector<float> targets;
      for (int l = 1; l < sample.trajectory.length(); ++l) {
        targets.push_back(data::MinutesTarget(
            sample.trajectory.points[static_cast<size_t>(l)].timestamp -
            sample.trajectory.points[static_cast<size_t>(l - 1)].timestamp));
      }
      const auto num_targets = static_cast<int64_t>(targets.size());
      Tensor target =
          Tensor::FromData({num_targets, 1}, std::move(targets));
      return nn::Scale(nn::Mse(predicted, target), config.lambda_tim);
    }
    case Task::kTrajRecovery: {
      Tensor logits = model_->RecoverLogits(sample.trajectory, sample.kept);
      auto dropped = data::ComplementIndices(sample.trajectory.length(),
                                             sample.kept);
      std::vector<int> targets;
      for (int index : dropped) {
        targets.push_back(
            sample.trajectory.points[static_cast<size_t>(index)].segment);
      }
      return nn::Scale(nn::CrossEntropy(logits, targets),
                       config.lambda_gen);
    }
    case Task::kTrafficOneStep:
    case Task::kTrafficMultiStep: {
      const int horizon =
          sample.task == Task::kTrafficOneStep ? 1 : config.traffic_horizon;
      Tensor predicted = model_->PredictTraffic(
          sample.segment, sample.start_slice, horizon);
      std::vector<float> targets;
      for (int h = 0; h < horizon; ++h) {
        auto features = dataset->traffic().Features(
            sample.start_slice + config.traffic_input_steps + h,
            sample.segment);
        targets.insert(targets.end(), features.begin(), features.end());
      }
      Tensor target = Tensor::FromData(
          {horizon, data::kTrafficChannels}, std::move(targets));
      return nn::Scale(nn::Mse(predicted, target), config.lambda_reg * 20.0f);
    }
    case Task::kTrafficImputation: {
      Tensor predicted = model_->ImputeTraffic(
          sample.segment, sample.start_slice, config.traffic_input_steps,
          sample.masked);
      std::vector<float> targets;
      for (int index : sample.masked) {
        auto features = dataset->traffic().Features(
            sample.start_slice + index, sample.segment);
        targets.insert(targets.end(), features.begin(), features.end());
      }
      Tensor target = Tensor::FromData(
          {static_cast<int64_t>(sample.masked.size()),
           data::kTrafficChannels},
          std::move(targets));
      return nn::Scale(nn::Mse(predicted, target), config.lambda_reg * 20.0f);
    }
    case Task::kMostSimilarSearch:
      break;
  }
  BIGCITY_CHECK(false) << "task has no training loss";
  return Tensor();
}

util::Status Trainer::RunStage2() {
  if (phase_ != kPhaseStage2) {
    phase_ = kPhaseStage2;
    epoch_ = 0;
    optimizer_.reset();
  }
  return RunWithRollback([this] { return DoStage2(); });
}

util::Status Trainer::DoStage2() {
  // Tokenizer frozen; only LoRA adapters (+ placeholders + heads) update.
  model_->tokenizer()->SetTrainable(false);
  if (epoch_ == 0 || !optimizer_) {
    optimizer_ = std::make_unique<nn::Adam>(model_->TrainableParameters(),
                                            config_.lr_stage2 * lr_penalty_);
  }
  const int traffic_window = model_->config().traffic_input_steps;
  obs::WallTimer epoch_watch;
  for (int epoch = epoch_; epoch < config_.stage2_epochs; ++epoch) {
    BIGCITY_TRACE_SPAN("stage2.epoch", "train");
    // Step decay stabilizes the late co-training epochs.
    if (config_.stage2_epochs >= 6 &&
        epoch == config_.stage2_epochs * 2 / 3) {
      optimizer_->set_lr(config_.lr_stage2 * 0.5f * lr_penalty_);
    }
    epoch_watch.Restart();
    epoch_tokens_ = 0;
    std::vector<TaskSample> samples;
    {
      // Data phase: stage 2 rebuilds its whole sample set per epoch.
      BIGCITY_TIMED_SCOPE_NAMED("train.data_us", "data", "train");
        BIGCITY_MEM_PHASE(kData);
      samples = BuildTaskSamples();
    }
    float epoch_loss = 0;
    int batches = 0;
    for (size_t begin = 0; begin < samples.size();
         begin += static_cast<size_t>(config_.batch_size)) {
      BIGCITY_TRACE_SPAN("step", "train");
      nn::PlanScope plan_scope(&plan_cache_, {"stage2", 0});
      StepCacheRelease cache_release(model_);
      model_->BeginStep();
      optimizer_->ZeroGrad();
      Tensor batch_loss;
      const size_t end = std::min(
          samples.size(), begin + static_cast<size_t>(config_.batch_size));
      {
        BIGCITY_TIMED_SCOPE_NAMED("train.forward_us", "forward", "train");
        BIGCITY_MEM_PHASE(kForward);
        for (size_t s = begin; s < end; ++s) {
          Tensor loss = TaskLoss(samples[s]);
          batch_loss =
              batch_loss.is_valid() ? nn::Add(batch_loss, loss) : loss;
          epoch_tokens_ += samples[s].trajectory.length() > 0
                               ? samples[s].trajectory.length()
                               : traffic_window;
        }
        batch_loss = nn::Scale(batch_loss,
                               1.0f / static_cast<float>(end - begin));
      }
      bool applied = false;
      float value = 0;
      if (auto s = GuardedStep(batch_loss, &applied, &value); !s.ok()) {
        return s;
      }
      if (applied) {
        epoch_loss += value;
        ++batches;
      }
      // Release the loss graph before the arena rewinds (the tokenizer
      // caches are released by cache_release above).
      batch_loss = nn::Tensor();
    }
    last_stage2_loss_ = batches > 0 ? epoch_loss / batches : 0.0f;
    stage2_epoch_seconds_ = epoch_watch.ElapsedSeconds();
    if (config_.verbose) {
      BIGCITY_LOG(Info) << "stage-2 epoch " << epoch << " loss "
                        << last_stage2_loss_ << " ("
                        << stage2_epoch_seconds_ << "s)";
    }
    ReportEpoch("stage2", epoch, last_stage2_loss_, stage2_epoch_seconds_);
    if (auto s = FinishEpoch(epoch + 1); !s.ok()) return s;
  }
  model_->BeginStep();
  phase_ = kPhaseDone;
  epoch_ = 0;
  optimizer_.reset();
  return MaybeCheckpoint();
}

util::Status Trainer::RunAll() {
  if (phase_ <= kPhasePretrain) {
    if (auto s = PretrainBackbone(); !s.ok()) return s;
  }
  if (phase_ <= kPhaseStage1) {
    if (auto s = RunStage1(); !s.ok()) return s;
  }
  if (phase_ <= kPhaseStage2) {
    if (auto s = RunStage2(); !s.ok()) return s;
  }
  ReportSummary();
  return util::Status::Ok();
}

}  // namespace bigcity::train
