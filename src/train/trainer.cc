#include "train/trainer.h"

#include <algorithm>

#include "data/masking.h"
#include "nn/ops.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace bigcity::train {

using core::Task;
using data::StUnitSequence;
using nn::Tensor;

namespace {

/// All tasks that carry a stage-2 training loss (similarity search is
/// representation-based and has no dedicated loss).
std::vector<Task> TrainableTasks(bool has_dynamic) {
  std::vector<Task> tasks = {Task::kNextHop, Task::kTrajClassification,
                             Task::kTravelTimeEstimation, Task::kTrajRecovery};
  if (has_dynamic) {
    tasks.push_back(Task::kTrafficOneStep);
    tasks.push_back(Task::kTrafficMultiStep);
    tasks.push_back(Task::kTrafficImputation);
  }
  return tasks;
}

}  // namespace

std::vector<std::string> PretrainCorpus() {
  return core::InstructionCorpus();
}

Trainer::Trainer(core::BigCityModel* model, TrainConfig config)
    : model_(model), config_(config), rng_(config.seed) {
  BIGCITY_CHECK(model != nullptr);
  if (config_.tasks.empty()) {
    config_.tasks =
        TrainableTasks(model_->dataset()->config().has_dynamic_features);
  }
}

void Trainer::PretrainBackbone() {
  // Next-word prediction over the fixed corpus — the GPT-2 substitute.
  auto* backbone = model_->backbone();
  std::vector<std::vector<int>> corpus;
  for (const auto& line : PretrainCorpus()) {
    auto ids = model_->text_tokenizer().Encode(line);
    if (ids.size() >= 2) corpus.push_back(std::move(ids));
  }
  nn::Adam optimizer(backbone->TrainableParameters(), config_.lr_pretrain);
  for (int epoch = 0; epoch < config_.pretrain_lm_epochs; ++epoch) {
    float epoch_loss = 0;
    for (const auto& ids : corpus) {
      optimizer.ZeroGrad();
      Tensor logits = backbone->TextLmLogits(ids);
      // Predict token t+1 from position t.
      Tensor inputs = nn::SliceRows(logits, 0,
                                    static_cast<int64_t>(ids.size()) - 1);
      std::vector<int> targets(ids.begin() + 1, ids.end());
      Tensor loss = nn::CrossEntropy(inputs, targets);
      epoch_loss += loss.item();
      loss.Backward();
      optimizer.ClipGradNorm(config_.clip_norm);
      optimizer.Step();
    }
    if (config_.verbose) {
      BIGCITY_LOG(Info) << "LM pretrain epoch " << epoch << " loss "
                        << epoch_loss / corpus.size();
    }
  }
  // Attach adapters and freeze the pre-trained base (Sec. V-B).
  util::Rng lora_rng(config_.seed ^ 0xabc);
  backbone->EnableLora(&lora_rng);
  backbone->FreezeBase();
}

Tensor Trainer::Stage1Loss(const StUnitSequence& sequence,
                           const std::vector<int>& masked) {
  auto reconstruction = model_->MaskedReconstruct(sequence, masked);
  const auto& config = model_->config();
  const data::CityDataset* dataset = model_->dataset();
  const bool has_dynamic = dataset->config().has_dynamic_features;

  // Ground truths (Eq. 15): segment id, dynamic features, timestamp delta.
  std::vector<int> segment_targets;
  std::vector<float> state_targets;
  std::vector<float> time_targets;
  for (int index : masked) {
    segment_targets.push_back(
        sequence.segments[static_cast<size_t>(index)]);
    if (has_dynamic) {
      const int slice = dataset->traffic().SliceOf(
          sequence.timestamps[static_cast<size_t>(index)]);
      auto features = dataset->traffic().Features(
          slice, sequence.segments[static_cast<size_t>(index)]);
      state_targets.insert(state_targets.end(), features.begin(),
                           features.end());
    }
    const double delta =
        index == 0 ? 0.0
                   : sequence.timestamps[static_cast<size_t>(index)] -
                         sequence.timestamps[static_cast<size_t>(index - 1)];
    time_targets.push_back(data::MinutesTarget(delta));
  }

  Tensor loss =
      nn::CrossEntropy(reconstruction.segment_logits, segment_targets);
  if (has_dynamic) {
    Tensor state_target = Tensor::FromData(
        {static_cast<int64_t>(masked.size()), data::kTrafficChannels},
        std::move(state_targets));
    loss = nn::Add(loss, nn::Scale(nn::Mse(reconstruction.states,
                                           state_target),
                                   config.lambda_reg));
  }
  // Timestamp reconstruction only applies to trajectories: traffic-state
  // series have constant 30-minute gaps, which would dominate the loss
  // without carrying information.
  if (sequence.is_trajectory) {
    const auto num_masked = static_cast<int64_t>(masked.size());
    Tensor time_target =
        Tensor::FromData({num_masked, 1}, std::move(time_targets));
    loss = nn::Add(loss, nn::Scale(nn::Mse(reconstruction.times, time_target),
                                   config.lambda_tim));
  }
  return loss;
}

void Trainer::RunStage1() {
  const data::CityDataset* dataset = model_->dataset();
  const bool has_dynamic = dataset->config().has_dynamic_features;

  // Mixed sequence pool: clipped trajectories + random traffic windows.
  std::vector<StUnitSequence> pool;
  for (const auto& trip : dataset->train()) {
    if (trip.length() < 4) continue;
    pool.push_back(
        StUnitSequence::FromTrajectory(model_->ClipTrajectory(trip)));
    if (static_cast<int>(pool.size()) >= config_.max_stage1_sequences) break;
  }
  if (has_dynamic) {
    const int window = model_->config().traffic_input_steps;
    const int extra = config_.max_stage1_sequences / 3;
    for (int k = 0; k < extra; ++k) {
      const int segment =
          rng_.UniformInt(0, dataset->network().num_segments() - 1);
      const int start = rng_.UniformInt(
          0, std::max(0, dataset->num_slices() - window - 1));
      pool.push_back(StUnitSequence::FromTrafficSeries(
          dataset->traffic(), segment, start, window));
    }
  }

  nn::Adam optimizer(model_->TrainableParameters(), config_.lr_stage1);
  util::Stopwatch epoch_watch;
  for (int epoch = 0; epoch < config_.stage1_epochs; ++epoch) {
    epoch_watch.Restart();
    rng_.Shuffle(&pool);
    float epoch_loss = 0;
    int batches = 0;
    for (size_t begin = 0; begin < pool.size();
         begin += static_cast<size_t>(config_.batch_size)) {
      model_->BeginStep();
      optimizer.ZeroGrad();
      Tensor batch_loss;
      const size_t end = std::min(
          pool.size(), begin + static_cast<size_t>(config_.batch_size));
      for (size_t s = begin; s < end; ++s) {
        const auto& sequence = pool[s];
        const int k = std::max(
            1, static_cast<int>(sequence.length() *
                                config_.stage1_mask_fraction));
        auto masked = data::RandomMaskIndices(sequence.length(), k, &rng_);
        Tensor loss = Stage1Loss(sequence, masked);
        batch_loss =
            batch_loss.is_valid() ? nn::Add(batch_loss, loss) : loss;
      }
      batch_loss = nn::Scale(batch_loss,
                             1.0f / static_cast<float>(end - begin));
      epoch_loss += batch_loss.item();
      ++batches;
      batch_loss.Backward();
      optimizer.ClipGradNorm(config_.clip_norm);
      optimizer.Step();
    }
    last_stage1_loss_ = batches > 0 ? epoch_loss / batches : 0.0f;
    stage1_epoch_seconds_ = epoch_watch.ElapsedSeconds();
    if (config_.verbose) {
      BIGCITY_LOG(Info) << "stage-1 epoch " << epoch << " loss "
                        << last_stage1_loss_ << " ("
                        << stage1_epoch_seconds_ << "s)";
    }
  }
  model_->BeginStep();
}

std::vector<Trainer::TaskSample> Trainer::BuildTaskSamples() {
  const data::CityDataset* dataset = model_->dataset();
  std::vector<TaskSample> samples;
  const auto& train = dataset->train();

  for (Task task : config_.tasks) {
    // Traffic tasks are over-sampled: each sample covers ONE segment while
    // the task-specific baselines consume all segments jointly per sample,
    // so parity requires more draws.
    const bool is_traffic = task == Task::kTrafficOneStep ||
                            task == Task::kTrafficMultiStep ||
                            task == Task::kTrafficImputation;
    const int budget =
        is_traffic ? 2 * config_.max_task_samples : config_.max_task_samples;
    int produced = 0;
    int cursor = 0;
    while (produced < budget &&
           cursor < static_cast<int>(train.size()) * 2) {
      const auto& trip = train[static_cast<size_t>(cursor++ % train.size())];
      TaskSample sample;
      sample.task = task;
      switch (task) {
        case Task::kNextHop:
        case Task::kTrajClassification:
        case Task::kTravelTimeEstimation: {
          if (trip.length() < 4) continue;
          sample.trajectory = model_->ClipTrajectory(trip);
          break;
        }
        case Task::kTrajRecovery: {
          if (trip.length() < 6) continue;
          sample.trajectory = model_->ClipTrajectory(trip);
          sample.kept = data::DownsampleKeepIndices(
              sample.trajectory.length(), config_.recovery_train_mask,
              &rng_);
          if (static_cast<int>(sample.kept.size()) ==
              sample.trajectory.length()) {
            continue;  // Nothing masked.
          }
          break;
        }
        case Task::kTrafficOneStep:
        case Task::kTrafficMultiStep:
        case Task::kTrafficImputation: {
          const int window = model_->config().traffic_input_steps;
          const int horizon = model_->config().traffic_horizon;
          sample.segment =
              rng_.UniformInt(0, dataset->network().num_segments() - 1);
          sample.start_slice = rng_.UniformInt(
              0, std::max(0, dataset->num_slices() - window - horizon - 1));
          if (task == Task::kTrafficImputation) {
            const int k = std::max(
                1, static_cast<int>(window * config_.imputation_mask));
            sample.masked = data::RandomMaskIndices(window, k, &rng_);
          }
          break;
        }
        case Task::kMostSimilarSearch:
          continue;  // No direct loss.
      }
      samples.push_back(std::move(sample));
      ++produced;
    }
  }
  rng_.Shuffle(&samples);
  return samples;
}

Tensor Trainer::TaskLoss(const TaskSample& sample) {
  const data::CityDataset* dataset = model_->dataset();
  const auto& config = model_->config();
  switch (sample.task) {
    case Task::kNextHop: {
      data::Trajectory prefix = sample.trajectory;
      const int target = prefix.points.back().segment;
      prefix.points.pop_back();
      return nn::CrossEntropy(model_->NextHopLogits(prefix), {target});
    }
    case Task::kTrajClassification: {
      const int label = model_->classifies_users()
                            ? sample.trajectory.user_id
                            : sample.trajectory.pattern_label;
      return nn::CrossEntropy(model_->ClassifyLogits(sample.trajectory),
                              {label});
    }
    case Task::kTravelTimeEstimation: {
      Tensor predicted = model_->TravelTimeDeltas(sample.trajectory);
      std::vector<float> targets;
      for (int l = 1; l < sample.trajectory.length(); ++l) {
        targets.push_back(data::MinutesTarget(
            sample.trajectory.points[static_cast<size_t>(l)].timestamp -
            sample.trajectory.points[static_cast<size_t>(l - 1)].timestamp));
      }
      const auto num_targets = static_cast<int64_t>(targets.size());
      Tensor target =
          Tensor::FromData({num_targets, 1}, std::move(targets));
      return nn::Scale(nn::Mse(predicted, target), config.lambda_tim);
    }
    case Task::kTrajRecovery: {
      Tensor logits = model_->RecoverLogits(sample.trajectory, sample.kept);
      auto dropped = data::ComplementIndices(sample.trajectory.length(),
                                             sample.kept);
      std::vector<int> targets;
      for (int index : dropped) {
        targets.push_back(
            sample.trajectory.points[static_cast<size_t>(index)].segment);
      }
      return nn::Scale(nn::CrossEntropy(logits, targets),
                       config.lambda_gen);
    }
    case Task::kTrafficOneStep:
    case Task::kTrafficMultiStep: {
      const int horizon =
          sample.task == Task::kTrafficOneStep ? 1 : config.traffic_horizon;
      Tensor predicted = model_->PredictTraffic(
          sample.segment, sample.start_slice, horizon);
      std::vector<float> targets;
      for (int h = 0; h < horizon; ++h) {
        auto features = dataset->traffic().Features(
            sample.start_slice + config.traffic_input_steps + h,
            sample.segment);
        targets.insert(targets.end(), features.begin(), features.end());
      }
      Tensor target = Tensor::FromData(
          {horizon, data::kTrafficChannels}, std::move(targets));
      return nn::Scale(nn::Mse(predicted, target), config.lambda_reg * 20.0f);
    }
    case Task::kTrafficImputation: {
      Tensor predicted = model_->ImputeTraffic(
          sample.segment, sample.start_slice, config.traffic_input_steps,
          sample.masked);
      std::vector<float> targets;
      for (int index : sample.masked) {
        auto features = dataset->traffic().Features(
            sample.start_slice + index, sample.segment);
        targets.insert(targets.end(), features.begin(), features.end());
      }
      Tensor target = Tensor::FromData(
          {static_cast<int64_t>(sample.masked.size()),
           data::kTrafficChannels},
          std::move(targets));
      return nn::Scale(nn::Mse(predicted, target), config.lambda_reg * 20.0f);
    }
    case Task::kMostSimilarSearch:
      break;
  }
  BIGCITY_CHECK(false) << "task has no training loss";
  return Tensor();
}

void Trainer::RunStage2() {
  // Tokenizer frozen; only LoRA adapters (+ placeholders + heads) update.
  model_->tokenizer()->SetTrainable(false);
  nn::Adam optimizer(model_->TrainableParameters(), config_.lr_stage2);
  util::Stopwatch epoch_watch;
  for (int epoch = 0; epoch < config_.stage2_epochs; ++epoch) {
    // Step decay stabilizes the late co-training epochs.
    if (config_.stage2_epochs >= 6 &&
        epoch == config_.stage2_epochs * 2 / 3) {
      optimizer.set_lr(config_.lr_stage2 * 0.5f);
    }
    epoch_watch.Restart();
    auto samples = BuildTaskSamples();
    float epoch_loss = 0;
    int batches = 0;
    for (size_t begin = 0; begin < samples.size();
         begin += static_cast<size_t>(config_.batch_size)) {
      model_->BeginStep();
      optimizer.ZeroGrad();
      Tensor batch_loss;
      const size_t end = std::min(
          samples.size(), begin + static_cast<size_t>(config_.batch_size));
      for (size_t s = begin; s < end; ++s) {
        Tensor loss = TaskLoss(samples[s]);
        batch_loss =
            batch_loss.is_valid() ? nn::Add(batch_loss, loss) : loss;
      }
      batch_loss = nn::Scale(batch_loss,
                             1.0f / static_cast<float>(end - begin));
      epoch_loss += batch_loss.item();
      ++batches;
      batch_loss.Backward();
      optimizer.ClipGradNorm(config_.clip_norm);
      optimizer.Step();
    }
    last_stage2_loss_ = batches > 0 ? epoch_loss / batches : 0.0f;
    stage2_epoch_seconds_ = epoch_watch.ElapsedSeconds();
    if (config_.verbose) {
      BIGCITY_LOG(Info) << "stage-2 epoch " << epoch << " loss "
                        << last_stage2_loss_ << " ("
                        << stage2_epoch_seconds_ << "s)";
    }
  }
  model_->BeginStep();
}

void Trainer::RunAll() {
  PretrainBackbone();
  RunStage1();
  RunStage2();
}

}  // namespace bigcity::train
