#ifndef BIGCITY_TRAIN_TRANSFER_H_
#define BIGCITY_TRAIN_TRANSFER_H_

#include "core/bigcity_model.h"
#include "train/trainer.h"

namespace bigcity::train {

/// Cross-city generalization protocol (Table VI): copy the backbone weights
/// of a model trained on a source city into a target-city model, then
/// fine-tune only the target tokenizer's last MLP (plus the task heads,
/// whose label spaces are city-specific) for a few epochs of prompt tuning.
/// Everything else (transformer base + LoRA adapters, placeholders) stays
/// frozen at the source values.
void TransferBackbone(core::BigCityModel* source,
                      core::BigCityModel* target);

/// Runs the target-side fine-tuning after TransferBackbone: stage-2 style
/// prompt tuning with only the tokenizer temporal MLP and heads trainable.
void FineTuneTransferred(core::BigCityModel* target, TrainConfig config);

}  // namespace bigcity::train

#endif  // BIGCITY_TRAIN_TRANSFER_H_
