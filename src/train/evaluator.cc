#include "train/evaluator.h"

#include <algorithm>
#include <cmath>

#include "data/masking.h"
#include "data/traffic_aggregator.h"
#include "nn/ops.h"
#include "train/metrics.h"
#include "util/check.h"

namespace bigcity::train {

using data::Trajectory;
using nn::Tensor;

namespace {

/// Cosine similarity between two [1, D] tensors.
double Cosine(const Tensor& a, const Tensor& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    dot += static_cast<double>(a.data()[i]) * b.data()[i];
    na += static_cast<double>(a.data()[i]) * a.data()[i];
    nb += static_cast<double>(b.data()[i]) * b.data()[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0 ? dot / denom : 0.0;
}

/// Every-other-point split used by the similarity protocol: the query is
/// the even-index subsequence, the database entry the odd-index one.
Trajectory EveryOther(const Trajectory& trip, int parity) {
  Trajectory result;
  result.user_id = trip.user_id;
  result.pattern_label = trip.pattern_label;
  for (int l = parity; l < trip.length(); l += 2) {
    result.points.push_back(trip.points[static_cast<size_t>(l)]);
  }
  return result;
}

}  // namespace

Evaluator::Evaluator(core::BigCityModel* model, EvalConfig config)
    : model_(model), config_(config), rng_(config.seed) {
  BIGCITY_CHECK(model != nullptr);
}

std::vector<Trajectory> Evaluator::TestTrips(int min_len) {
  std::vector<Trajectory> trips;
  for (const auto& trip : model_->dataset()->test()) {
    if (trip.length() < min_len) continue;
    trips.push_back(model_->ClipTrajectory(trip));
    if (static_cast<int>(trips.size()) >= config_.max_samples) break;
  }
  return trips;
}

RegressionMetrics Evaluator::EvaluateTravelTime() {
  std::vector<double> predictions, targets;
  for (const auto& trip : TestTrips(4)) {
    model_->BeginStep();
    Tensor deltas = model_->TravelTimeDeltas(trip);
    // Whole-trip ETA in minutes: sum of predicted per-hop intervals
    // (MLP_t outputs are in minutes).
    double predicted_minutes = 0;
    for (int l = 0; l < deltas.shape()[0]; ++l) {
      predicted_minutes += std::max(0.0f, deltas.at(l, 0));
    }
    predictions.push_back(predicted_minutes);
    targets.push_back(trip.duration_seconds() / 60.0);
  }
  RegressionMetrics metrics;
  metrics.mae = MeanAbsoluteError(predictions, targets);
  metrics.rmse = RootMeanSquaredError(predictions, targets);
  metrics.mape = MeanAbsolutePercentageError(predictions, targets);
  return metrics;
}

RankingMetrics Evaluator::EvaluateNextHop() {
  std::vector<std::vector<int>> ranked;
  std::vector<int> targets;
  for (const auto& trip : TestTrips(4)) {
    model_->BeginStep();
    Trajectory prefix = trip;
    const int target = prefix.points.back().segment;
    prefix.points.pop_back();
    Tensor logits = model_->NextHopLogits(prefix);
    ranked.push_back(nn::TopKRow(logits, 0, 5));
    targets.push_back(target);
  }
  RankingMetrics metrics;
  std::vector<int> top1;
  for (const auto& r : ranked) top1.push_back(r.empty() ? -1 : r[0]);
  metrics.accuracy = Accuracy(top1, targets);
  metrics.mrr5 = MrrAtK(ranked, targets, 5);
  metrics.ndcg5 = NdcgAtK(ranked, targets, 5);
  return metrics;
}

BinaryClassMetrics Evaluator::EvaluateBinaryClassification() {
  BIGCITY_CHECK(!model_->classifies_users());
  std::vector<int> predictions, targets;
  std::vector<double> scores;
  for (const auto& trip : TestTrips(4)) {
    model_->BeginStep();
    Tensor logits = model_->ClassifyLogits(trip);
    Tensor probs = nn::Softmax(logits);
    predictions.push_back(probs.at(0, 1) > probs.at(0, 0) ? 1 : 0);
    scores.push_back(probs.at(0, 1));
    targets.push_back(trip.pattern_label);
  }
  BinaryClassMetrics metrics;
  metrics.accuracy = Accuracy(predictions, targets);
  metrics.f1 = BinaryF1(predictions, targets);
  metrics.auc = BinaryAuc(scores, targets);
  return metrics;
}

MultiClassMetrics Evaluator::EvaluateUserClassification() {
  BIGCITY_CHECK(model_->classifies_users());
  std::vector<int> predictions, targets;
  for (const auto& trip : TestTrips(4)) {
    model_->BeginStep();
    Tensor logits = model_->ClassifyLogits(trip);
    predictions.push_back(nn::ArgmaxRows(logits)[0]);
    targets.push_back(trip.user_id);
  }
  MultiClassMetrics metrics;
  const int num_users = model_->dataset()->num_users();
  metrics.micro_f1 = MicroF1(predictions, targets, num_users);
  metrics.macro_f1 = MacroF1(predictions, targets, num_users);
  metrics.macro_recall = MacroRecall(predictions, targets, num_users);
  return metrics;
}

SimilarityMetrics Evaluator::EvaluateSimilarity() {
  // Standard odd/even protocol: query = even points, ground truth = the odd
  // half of the SAME trip among all odd halves.
  std::vector<Trajectory> queries, database;
  for (const auto& trip : model_->dataset()->test()) {
    if (trip.length() < 8) continue;
    Trajectory clipped = model_->ClipTrajectory(trip);
    queries.push_back(EveryOther(clipped, 0));
    database.push_back(EveryOther(clipped, 1));
    if (static_cast<int>(queries.size()) >= config_.max_queries) break;
  }
  SimilarityMetrics metrics;
  if (queries.empty()) return metrics;

  std::vector<Tensor> db_embeddings;
  for (const auto& entry : database) {
    model_->BeginStep();
    db_embeddings.push_back(model_->Embed(entry).Detached());
  }
  std::vector<std::vector<int>> ranked;
  std::vector<int> targets;
  for (size_t q = 0; q < queries.size(); ++q) {
    model_->BeginStep();
    Tensor query_embedding = model_->Embed(queries[q]).Detached();
    std::vector<std::pair<double, int>> scored;
    for (size_t d = 0; d < db_embeddings.size(); ++d) {
      scored.emplace_back(Cosine(query_embedding, db_embeddings[d]),
                          static_cast<int>(d));
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<int> order;
    for (const auto& [score, index] : scored) order.push_back(index);
    ranked.push_back(std::move(order));
    targets.push_back(static_cast<int>(q));
  }
  metrics.hr1 = HitRateAtK(ranked, targets, 1);
  metrics.hr5 = HitRateAtK(ranked, targets, 5);
  metrics.hr10 = HitRateAtK(ranked, targets, 10);
  metrics.mean_rank = MeanRank(ranked, targets);
  return metrics;
}

RecoveryMetrics Evaluator::EvaluateRecovery(double mask_ratio) {
  std::vector<int> predictions, targets;
  for (const auto& trip : TestTrips(8)) {
    model_->BeginStep();
    auto kept = data::DownsampleKeepIndices(trip.length(), mask_ratio, &rng_);
    auto dropped = data::ComplementIndices(trip.length(), kept);
    if (dropped.empty()) continue;
    Tensor logits = model_->RecoverLogits(trip, kept);
    auto predicted = nn::ArgmaxRows(logits);
    for (size_t k = 0; k < dropped.size(); ++k) {
      predictions.push_back(predicted[k]);
      targets.push_back(
          trip.points[static_cast<size_t>(dropped[k])].segment);
    }
  }
  RecoveryMetrics metrics;
  if (predictions.empty()) return metrics;
  metrics.accuracy = Accuracy(predictions, targets);
  metrics.macro_f1 = MacroF1(predictions, targets,
                             model_->dataset()->network().num_segments());
  return metrics;
}

RegressionMetrics Evaluator::EvaluateTrafficPrediction(int horizon) {
  const auto* dataset = model_->dataset();
  BIGCITY_CHECK(dataset->config().has_dynamic_features);
  const int window = model_->config().traffic_input_steps;
  std::vector<double> predictions, targets;
  for (int s = 0; s < config_.traffic_samples; ++s) {
    const int segment =
        rng_.UniformInt(0, dataset->network().num_segments() - 1);
    // Evaluate on the later half of the timeline (held-out in time).
    const int start = rng_.UniformInt(
        dataset->num_slices() / 2,
        std::max(dataset->num_slices() / 2,
                 dataset->num_slices() - window - horizon - 1));
    model_->BeginStep();
    Tensor predicted = model_->PredictTraffic(segment, start, horizon);
    for (int h = 0; h < horizon; ++h) {
      // Speed channel, de-normalized to m/s.
      predictions.push_back(predicted.at(h, 0) *
                            data::TrafficAggregator::kSpeedScale);
      targets.push_back(dataset->traffic().Get(start + window + h, segment,
                                               0) *
                        data::TrafficAggregator::kSpeedScale);
    }
  }
  RegressionMetrics metrics;
  metrics.mae = MeanAbsoluteError(predictions, targets);
  metrics.rmse = RootMeanSquaredError(predictions, targets);
  metrics.mape = MeanAbsolutePercentageError(predictions, targets);
  return metrics;
}

RegressionMetrics Evaluator::EvaluateTrafficImputation(double mask_ratio) {
  const auto* dataset = model_->dataset();
  BIGCITY_CHECK(dataset->config().has_dynamic_features);
  const int window = model_->config().traffic_input_steps;
  std::vector<double> predictions, targets;
  for (int s = 0; s < config_.traffic_samples; ++s) {
    const int segment =
        rng_.UniformInt(0, dataset->network().num_segments() - 1);
    const int start = rng_.UniformInt(
        0, std::max(0, dataset->num_slices() - window - 1));
    const int k = std::max(1, static_cast<int>(window * mask_ratio));
    auto masked = data::RandomMaskIndices(window, k, &rng_);
    model_->BeginStep();
    Tensor imputed = model_->ImputeTraffic(segment, start, window, masked);
    for (size_t m = 0; m < masked.size(); ++m) {
      predictions.push_back(imputed.at(static_cast<int64_t>(m), 0) *
                            data::TrafficAggregator::kSpeedScale);
      targets.push_back(
          dataset->traffic().Get(start + masked[m], segment, 0) *
          data::TrafficAggregator::kSpeedScale);
    }
  }
  RegressionMetrics metrics;
  metrics.mae = MeanAbsoluteError(predictions, targets);
  metrics.rmse = RootMeanSquaredError(predictions, targets);
  metrics.mape = MeanAbsolutePercentageError(predictions, targets);
  return metrics;
}

}  // namespace bigcity::train
