#ifndef BIGCITY_TRAIN_EVALUATOR_H_
#define BIGCITY_TRAIN_EVALUATOR_H_

#include <vector>

#include "core/bigcity_model.h"
#include "util/rng.h"

namespace bigcity::train {

// Per-task evaluation results mirroring the paper's metric columns.

struct RegressionMetrics {
  double mae = 0, rmse = 0, mape = 0;  // TTE in minutes; traffic in m/s.
};

struct RankingMetrics {
  double accuracy = 0, mrr5 = 0, ndcg5 = 0;
};

struct BinaryClassMetrics {
  double accuracy = 0, f1 = 0, auc = 0;
};

struct MultiClassMetrics {
  double micro_f1 = 0, macro_f1 = 0, macro_recall = 0;
};

struct SimilarityMetrics {
  double hr1 = 0, hr5 = 0, hr10 = 0, mean_rank = 0;
};

struct RecoveryMetrics {
  double accuracy = 0, macro_f1 = 0;
};

/// Evaluation options; max_samples bounds per-task cost on one core.
struct EvalConfig {
  int max_samples = 150;
  int max_queries = 60;       // Similarity search queries.
  int traffic_samples = 120;  // (segment, start) pairs for traffic tasks.
  uint64_t seed = 77;
};

/// Runs the eight ST tasks against a trained BIGCity model on a dataset's
/// test split. Every method calls model->BeginStep() internally.
class Evaluator {
 public:
  Evaluator(core::BigCityModel* model, EvalConfig config = {});

  RegressionMetrics EvaluateTravelTime();
  RankingMetrics EvaluateNextHop();
  BinaryClassMetrics EvaluateBinaryClassification();
  MultiClassMetrics EvaluateUserClassification();
  SimilarityMetrics EvaluateSimilarity();
  RecoveryMetrics EvaluateRecovery(double mask_ratio);
  RegressionMetrics EvaluateTrafficPrediction(int horizon);
  RegressionMetrics EvaluateTrafficImputation(double mask_ratio);

 private:
  /// Test trajectories with length >= min_len, clipped, up to max_samples.
  std::vector<data::Trajectory> TestTrips(int min_len);

  core::BigCityModel* model_;
  EvalConfig config_;
  util::Rng rng_;
};

}  // namespace bigcity::train

#endif  // BIGCITY_TRAIN_EVALUATOR_H_
