#include "data/csv_io.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

namespace bigcity::data {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  return fields;
}

util::Status ParseInt(const std::string& field, int* value) {
  auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(),
                                   *value);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    return util::Status::InvalidArgument("bad integer field: " + field);
  }
  return util::Status::Ok();
}

util::Status ParseDouble(const std::string& field, double* value) {
  // std::from_chars for double is not universally available; use strtod.
  char* end = nullptr;
  *value = std::strtod(field.c_str(), &end);
  if (end != field.c_str() + field.size() || field.empty()) {
    return util::Status::InvalidArgument("bad numeric field: " + field);
  }
  return util::Status::Ok();
}

}  // namespace

void WriteTrajectoriesCsv(std::ostream& out,
                          const std::vector<Trajectory>& trajectories) {
  out << "trip_id,user_id,pattern_label,segment,timestamp\n";
  for (size_t trip_id = 0; trip_id < trajectories.size(); ++trip_id) {
    const auto& trip = trajectories[trip_id];
    for (const auto& point : trip.points) {
      out << trip_id << ',' << trip.user_id << ',' << trip.pattern_label
          << ',' << point.segment << ',' << point.timestamp << '\n';
    }
  }
}

util::Result<std::vector<Trajectory>> ReadTrajectoriesCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    return util::Status::InvalidArgument("empty trajectory CSV");
  }
  if (line.rfind("trip_id,", 0) != 0) {
    return util::Status::InvalidArgument("missing trajectory CSV header");
  }
  std::vector<Trajectory> result;
  int current_trip = -1;
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    auto fields = SplitCsvLine(line);
    if (fields.size() != 5) {
      return util::Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": expected 5 fields");
    }
    int trip_id = 0, user_id = 0, label = 0, segment = 0;
    double timestamp = 0;
    if (auto s = ParseInt(fields[0], &trip_id); !s.ok()) return s;
    if (auto s = ParseInt(fields[1], &user_id); !s.ok()) return s;
    if (auto s = ParseInt(fields[2], &label); !s.ok()) return s;
    if (auto s = ParseInt(fields[3], &segment); !s.ok()) return s;
    if (auto s = ParseDouble(fields[4], &timestamp); !s.ok()) return s;
    if (trip_id != current_trip) {
      if (trip_id != static_cast<int>(result.size())) {
        return util::Status::InvalidArgument(
            "trip ids must be dense and contiguous (line " +
            std::to_string(line_number) + ")");
      }
      current_trip = trip_id;
      Trajectory trip;
      trip.user_id = user_id;
      trip.pattern_label = label;
      result.push_back(trip);
    }
    auto& trip = result.back();
    if (!trip.points.empty() && timestamp <= trip.points.back().timestamp) {
      return util::Status::InvalidArgument(
          "timestamps must strictly increase within a trip (line " +
          std::to_string(line_number) + ")");
    }
    trip.points.push_back({segment, timestamp});
  }
  return result;
}

void WriteTrafficCsv(std::ostream& out, const TrafficStateSeries& series) {
  out << "slice,segment,speed,flow\n";
  for (int t = 0; t < series.num_slices(); ++t) {
    for (int i = 0; i < series.num_segments(); ++i) {
      out << t << ',' << i << ',' << series.Get(t, i, 0) << ','
          << series.Get(t, i, 1) << '\n';
    }
  }
}

util::Result<TrafficStateSeries> ReadTrafficCsv(std::istream& in,
                                                double slice_seconds) {
  std::string line;
  if (!std::getline(in, line) || line.rfind("slice,", 0) != 0) {
    return util::Status::InvalidArgument("missing traffic CSV header");
  }
  struct Cell {
    int slice, segment;
    double speed, flow;
  };
  std::vector<Cell> cells;
  int max_slice = -1, max_segment = -1;
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    auto fields = SplitCsvLine(line);
    if (fields.size() != 4) {
      return util::Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": expected 4 fields");
    }
    Cell cell{};
    if (auto s = ParseInt(fields[0], &cell.slice); !s.ok()) return s;
    if (auto s = ParseInt(fields[1], &cell.segment); !s.ok()) return s;
    if (auto s = ParseDouble(fields[2], &cell.speed); !s.ok()) return s;
    if (auto s = ParseDouble(fields[3], &cell.flow); !s.ok()) return s;
    max_slice = std::max(max_slice, cell.slice);
    max_segment = std::max(max_segment, cell.segment);
    cells.push_back(cell);
  }
  if (cells.empty()) {
    return util::Status::InvalidArgument("traffic CSV has no data rows");
  }
  TrafficStateSeries series(max_slice + 1, max_segment + 1, slice_seconds);
  for (const auto& cell : cells) {
    series.Set(cell.slice, cell.segment, 0, static_cast<float>(cell.speed));
    series.Set(cell.slice, cell.segment, 1, static_cast<float>(cell.flow));
  }
  return series;
}

util::Status SaveTrajectoriesCsv(const std::string& path,
                                 const std::vector<Trajectory>& trajectories) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open for write: " + path);
  WriteTrajectoriesCsv(out, trajectories);
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

util::Result<std::vector<Trajectory>> LoadTrajectoriesCsv(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open for read: " + path);
  return ReadTrajectoriesCsv(in);
}

}  // namespace bigcity::data
