#include "data/st_unit.h"

#include <cmath>

#include "util/check.h"

namespace bigcity::data {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kSecondsPerDay = 86400.0;
}  // namespace

std::vector<float> TimeFeatures(double timestamp) {
  const double day_seconds = std::fmod(timestamp, kSecondsPerDay);
  const double hour = day_seconds / 3600.0;
  const double day_of_week = std::fmod(timestamp / kSecondsPerDay, 7.0);
  std::vector<float> f(kTimeFeatureDim);
  f[0] = static_cast<float>(std::sin(2.0 * kPi * hour / 24.0));
  f[1] = static_cast<float>(std::cos(2.0 * kPi * hour / 24.0));
  f[2] = static_cast<float>(std::sin(2.0 * kPi * day_of_week / 7.0));
  f[3] = static_cast<float>(std::cos(2.0 * kPi * day_of_week / 7.0));
  f[4] = static_cast<float>(day_seconds / kSecondsPerDay);
  return f;
}

float DeltaFeature(double delta_seconds) {
  return static_cast<float>(delta_seconds / 1800.0);
}

float MinutesTarget(double delta_seconds) {
  return static_cast<float>(delta_seconds / 60.0);
}

StUnitSequence StUnitSequence::FromTrajectory(const Trajectory& trajectory) {
  StUnitSequence seq;
  seq.is_trajectory = true;
  seq.segments.reserve(trajectory.points.size());
  seq.timestamps.reserve(trajectory.points.size());
  for (const auto& point : trajectory.points) {
    seq.segments.push_back(point.segment);
    seq.timestamps.push_back(point.timestamp);
  }
  return seq;
}

StUnitSequence StUnitSequence::FromTrafficSeries(
    const TrafficStateSeries& series, int segment, int first_slice,
    int count) {
  BIGCITY_CHECK(first_slice >= 0 &&
                first_slice + count <= series.num_slices());
  StUnitSequence seq;
  seq.is_trajectory = false;
  seq.series_segment = segment;
  seq.segments.assign(static_cast<size_t>(count), segment);
  seq.timestamps.reserve(static_cast<size_t>(count));
  for (int t = first_slice; t < first_slice + count; ++t) {
    seq.timestamps.push_back(series.SliceStart(t));
  }
  return seq;
}

}  // namespace bigcity::data
